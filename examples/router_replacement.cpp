// Router-replacement pre-check (the paper's §5.1 Scenario 2): before a
// scheduled Cisco→Juniper replacement, diff the old configuration against
// the proposed translation. Runs all 30 synthesized replacements and flags
// the ones with behavioral differences — including the route-reflector
// local-preference bug that would have caused a severe outage.

#include <iostream>

#include "core/config_diff.h"
#include "gen/scenarios.h"

int main() {
  campion::gen::DataCenterScenario scenario =
      campion::gen::BuildDataCenterScenario();

  int checked = 0;
  int flagged = 0;
  for (const auto& pair : scenario.replacements) {
    ++checked;
    campion::core::DiffReport report =
        campion::core::ConfigDiff(pair.config1, pair.config2);
    if (report.Equivalent()) continue;
    ++flagged;
    std::cout << "REPLACEMENT BLOCKED: " << pair.label << " ("
              << pair.config1.hostname << " -> " << pair.config2.hostname
              << ")\n";
    std::cout << report.Render() << "\n";
  }
  std::cout << "Checked " << checked << " proposed replacements; " << flagged
            << " had behavioral differences and were blocked.\n";
  return flagged == 0 ? 0 : 2;
}
