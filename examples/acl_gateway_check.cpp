// Gateway ACL consistency check (the paper's §5.1 Scenario 3): all gateway
// routers must enforce identical access-control policy. Compares each
// synthesized Cisco/Juniper gateway pair and prints localized ACL
// differences in the shape of Table 7.

#include <iostream>

#include "core/config_diff.h"
#include "gen/scenarios.h"

int main() {
  campion::gen::DataCenterScenario scenario =
      campion::gen::BuildDataCenterScenario();

  int differing_pairs = 0;
  for (const auto& pair : scenario.gateway_pairs) {
    auto diffs = campion::core::DiffAclPair(pair.config1, pair.config2,
                                            "VM_FILTER_1");
    std::cout << pair.label << ": " << diffs.size()
              << " ACL difference(s)\n";
    if (diffs.empty()) continue;
    ++differing_pairs;
    for (const auto& diff : diffs) {
      std::cout << diff.table << "\n";
    }
  }
  std::cout << differing_pairs
            << " gateway pair(s) have inconsistent access control.\n";
  return differing_pairs == 0 ? 0 : 2;
}
