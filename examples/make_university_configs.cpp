// Emits the synthesized university network as native configuration files
// (Cisco IOS and JunOS), padded to roughly the paper's real config sizes.
// The checked-in files under examples/configs/ were produced by this tool:
//
//   ./make_university_configs [output-dir]
//
// Compare them with the CLI afterwards:
//
//   ./campion university_core_cisco.cfg university_core_juniper.conf

#include <fstream>
#include <iostream>

#include "cisco/cisco_unparser.h"
#include "gen/scenarios.h"
#include "juniper/juniper_unparser.h"
#include "util/text_table.h"

namespace {

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) {
    std::cerr << "error: cannot write " << path << "\n";
    exit(1);
  }
  file << content;
  std::size_t lines = campion::util::SplitLines(content).size();
  std::cout << "wrote " << path << " (" << lines << " lines)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : ".";
  campion::gen::UniversityScenario scenario =
      campion::gen::BuildUniversityScenario(/*filler_components=*/900);

  WriteFile(dir + "/university_core_cisco.cfg",
            campion::cisco::UnparseCiscoConfig(scenario.core.config1));
  WriteFile(dir + "/university_core_juniper.conf",
            campion::juniper::UnparseJuniperConfig(scenario.core.config2));
  WriteFile(dir + "/university_border_cisco.cfg",
            campion::cisco::UnparseCiscoConfig(scenario.border.config1));
  WriteFile(dir + "/university_border_juniper.conf",
            campion::juniper::UnparseJuniperConfig(scenario.border.config2));
  return 0;
}
