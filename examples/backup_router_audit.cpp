// Backup-router audit (the paper's §5.2 university scenario): compare the
// Cisco/Juniper core pair and border pair of the synthesized university
// network and print per-policy difference counts in the shape of Table 8,
// followed by the full localized reports.

#include <iostream>

#include "core/config_diff.h"
#include "core/structural_diff.h"
#include "gen/scenarios.h"
#include "util/text_table.h"

int main() {
  campion::gen::UniversityScenario scenario =
      campion::gen::BuildUniversityScenario();

  std::cout << "University network audit: core pair ("
            << scenario.core.config1.hostname << " / "
            << scenario.core.config2.hostname << "), border pair ("
            << scenario.border.config1.hostname << " / "
            << scenario.border.config2.hostname << ")\n\n";

  campion::util::TextTable table(
      {"Router Pair", "Route Map", "Outputted Differences"});
  auto count = [](const campion::gen::RouterPair& pair,
                  const std::string& name) {
    return campion::core::DiffRouteMapPair(pair.config1, name, pair.config2,
                                           name)
        .size();
  };
  for (const auto& name : scenario.core_exports) {
    table.AddRow({"Core Routers", name,
                  std::to_string(count(scenario.core, name))});
  }
  table.AddRow({"Core Routers", scenario.import_policy,
                std::to_string(count(scenario.core, scenario.import_policy))});
  for (const auto& name : scenario.border_exports) {
    table.AddRow({"Border Routers", name,
                  std::to_string(count(scenario.border, name))});
  }
  std::cout << table.Render() << "\n";

  std::cout << "Structural differences (core pair):\n";
  auto statics = campion::core::DiffStaticRoutes(scenario.core.config1,
                                                 scenario.core.config2);
  auto bgp = campion::core::DiffBgpProperties(scenario.core.config1,
                                              scenario.core.config2);
  std::cout << "  static routes: " << statics.size()
            << " difference(s)\n  BGP properties: " << bgp.size()
            << " difference(s)\n\n";

  std::cout << "--- Full localized reports ---\n\n";
  for (const auto* pair : {&scenario.core, &scenario.border}) {
    campion::core::DiffReport report =
        campion::core::ConfigDiff(pair->config1, pair->config2);
    std::cout << "### " << pair->label << " ###\n" << report.Render() << "\n";
  }
  return 0;
}
