// Quickstart: compare two router configurations and print every behavioral
// difference Campion finds, with header and text localization.
//
//   ./quickstart <cisco-config> <juniper-config>
//
// With no arguments it runs on the paper's Figure 1 configurations
// (examples/configs/fig1_cisco.cfg and fig1_juniper.cfg), reproducing the
// output of Table 2 and Table 4.

#include <iostream>
#include <string>

#include "cisco/cisco_parser.h"
#include "core/config_diff.h"
#include "juniper/juniper_parser.h"

namespace {

// Locates the bundled example configs relative to the binary when run from
// the build tree, falling back to the source-tree path.
std::string DefaultConfig(const std::string& name) {
  for (const std::string& prefix :
       {std::string("examples/configs/"), std::string("../examples/configs/"),
        std::string("../../examples/configs/")}) {
    std::string path = prefix + name;
    if (FILE* f = fopen(path.c_str(), "r")) {
      fclose(f);
      return path;
    }
  }
  return "examples/configs/" + name;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cisco_path =
      argc > 1 ? argv[1] : DefaultConfig("fig1_cisco.cfg");
  std::string juniper_path =
      argc > 2 ? argv[2] : DefaultConfig("fig1_juniper.cfg");

  campion::cisco::ParseResult cisco;
  campion::juniper::ParseResult juniper;
  try {
    cisco = campion::cisco::ParseCiscoFile(cisco_path);
    juniper = campion::juniper::ParseJuniperFile(juniper_path);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  for (const auto& diagnostic : cisco.diagnostics) {
    std::cerr << "warning: " << diagnostic << "\n";
  }
  for (const auto& diagnostic : juniper.diagnostics) {
    std::cerr << "warning: " << diagnostic << "\n";
  }

  std::cout << "Comparing " << cisco.config.hostname << " ("
            << cisco_path << ") with " << juniper.config.hostname << " ("
            << juniper_path << ")\n\n";

  campion::core::DiffReport report =
      campion::core::ConfigDiff(cisco.config, juniper.config);
  std::cout << report.Render();
  std::cout << "Total: " << report.entries.size() << " reported item(s)\n";
  return report.Equivalent() ? 0 : 2;
}
