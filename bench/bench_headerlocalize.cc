// Regenerates Figure 3: the ddNF prefix-range DAG and the GetMatch result
// {B - D, C - F, G} on the paper's seven-range example, then times
// HeaderLocalize as the number of configuration ranges grows (an ablation
// of the localization stage on top of SemanticDiff).

#include "bench/bench_util.h"
#include "core/header_localize.h"
#include "encode/route_adv.h"

namespace {

using campion::util::Ipv4Address;
using campion::util::Prefix;
using campion::util::PrefixRange;

// The Figure 3 shape: A contains B and C; B contains D and E; C contains E
// and F; F contains G. S is chosen so GetMatch returns {B-D, C-F, G}.
struct Fig3 {
  PrefixRange a{Prefix(Ipv4Address(10, 0, 0, 0), 8), 8, 32};
  PrefixRange b{Prefix(Ipv4Address(10, 16, 0, 0), 12), 12, 32};
  PrefixRange c{Prefix(Ipv4Address(10, 0, 0, 0), 8), 24, 32};
  PrefixRange d{Prefix(Ipv4Address(10, 16, 0, 0), 12), 14, 20};
  PrefixRange e{Prefix(Ipv4Address(10, 16, 0, 0), 12), 24, 32};
  PrefixRange f{Prefix(Ipv4Address(10, 32, 0, 0), 11), 24, 32};
  PrefixRange g{Prefix(Ipv4Address(10, 32, 0, 0), 11), 28, 32};
};

void PrintFig3() {
  Fig3 ranges;
  campion::bdd::BddManager mgr;
  campion::encode::RouteAdvLayout layout(mgr, {});
  auto to_bdd = [&](const PrefixRange& r) {
    return layout.MatchPrefixRange(r);
  };

  // S = (B - D) u (C - F) u G.
  campion::bdd::BddRef s = mgr.Or(
      mgr.Or(mgr.Diff(to_bdd(ranges.b), to_bdd(ranges.d)),
             mgr.Diff(to_bdd(ranges.c), to_bdd(ranges.f))),
      to_bdd(ranges.g));

  auto result = campion::core::HeaderLocalize(
      mgr, s,
      {ranges.a, ranges.b, ranges.c, ranges.d, ranges.e, ranges.f, ranges.g},
      to_bdd);
  std::cout << "S = (B - D) u (C - F) u G over the Figure 3 DAG\n";
  std::cout << "GetMatch representation (paper: {B - D, C - F, G}):\n";
  for (const auto& term : result.terms) {
    std::cout << "  " << term.ToString() << "\n";
  }
}

void BM_HeaderLocalizeRangeCount(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  campion::bdd::BddManager mgr;
  campion::encode::RouteAdvLayout layout(mgr, {});
  auto to_bdd = [&](const PrefixRange& r) {
    return layout.MatchPrefixRange(r);
  };
  std::vector<PrefixRange> ranges;
  for (int i = 0; i < count; ++i) {
    ranges.emplace_back(
        Prefix(Ipv4Address(10, static_cast<std::uint8_t>(i % 250), 0, 0),
               16),
        16, 16 + (i % 17));
  }
  // S: the union of every third range.
  campion::bdd::BddRef s = mgr.False();
  for (int i = 0; i < count; i += 3) s = mgr.Or(s, to_bdd(ranges[i]));
  for (auto _ : state) {
    auto result = campion::core::HeaderLocalize(mgr, s, ranges, to_bdd);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HeaderLocalizeRangeCount)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "Figure 3: ddNF DAG and GetMatch", PrintFig3);
}
