// Empirical check of Theorem 3.3 (soundness): if Campion reports no
// differences between two configurations, swapping one for the other in
// any network leaves the routing solution unchanged — and conversely, the
// Figure 1 differences Campion reports do manifest in the simulator. Also
// demonstrates the §5.3 latent (false-positive) case: a reported
// difference in a component the current network never exercises leaves
// the solution unchanged until some other change activates it.

#include "bench/bench_util.h"
#include "core/config_diff.h"
#include "sim/network.h"
#include "tests/testdata.h"

namespace {

using campion::util::Ipv4Address;
using campion::util::Prefix;

// A two-router internet: the device under test (Fig. 1 router) exporting
// to an external peer through POL.
campion::sim::Network BuildWorld(const campion::ir::RouterConfig& dut) {
  campion::sim::Network network;
  campion::ir::RouterConfig device = dut;
  device.hostname = "dut";
  // The device originates a prefix inside the NETS window (not exact):
  // 10.9.1.0/24 — the space where the Figure 1 route maps disagree.
  device.bgp->networks.push_back(Prefix(Ipv4Address(10, 9, 1, 0), 24));
  device.bgp->networks.push_back(Prefix(Ipv4Address(172, 20, 0, 0), 16));
  network.AddRouter(std::move(device));

  campion::ir::RouterConfig peer;
  peer.hostname = "peer";
  peer.vendor = campion::ir::Vendor::kCisco;
  campion::ir::BgpProcess bgp;
  bgp.asn = 65001;
  campion::ir::BgpNeighbor neighbor;
  neighbor.ip = Ipv4Address(10, 0, 12, 1);
  neighbor.remote_as = 65000;
  neighbor.send_community = true;
  bgp.neighbors.push_back(neighbor);
  peer.bgp = std::move(bgp);
  network.AddRouter(std::move(peer));

  network.AddBgpSession("dut", Ipv4Address(10, 0, 12, 1), "peer",
                        Ipv4Address(10, 0, 12, 9));
  return network;
}

void PrintExperiment() {
  auto cisco = campion::testing::ParseCiscoOrDie(campion::testing::kFig1Cisco);
  auto juniper =
      campion::testing::ParseJuniperOrDie(campion::testing::kFig1Juniper);

  // 1. Locally equivalent configs => same routing solution.
  auto base = campion::sim::Solve(BuildWorld(cisco));
  auto same = campion::sim::Solve(BuildWorld(cisco));
  std::cout << "identical configs -> identical solutions: "
            << (base.SameAs(same) ? "yes" : "NO (bug)") << "\n";

  // 2. The Figure 1 differences manifest: the Juniper router exports
  // 10.9.1.0/24 (accepted by rule3) where the Cisco router rejects it.
  auto changed = campion::sim::Solve(BuildWorld(juniper));
  bool peer_sees_cisco =
      base.ribs["peer"].contains(Prefix(Ipv4Address(10, 9, 1, 0), 24));
  bool peer_sees_juniper =
      changed.ribs["peer"].contains(Prefix(Ipv4Address(10, 9, 1, 0), 24));
  std::cout << "peer learns 10.9.1.0/24 from the Cisco DUT: "
            << (peer_sees_cisco ? "yes" : "no")
            << "  (paper: rejected by route-map POL deny 10)\n";
  std::cout << "peer learns 10.9.1.0/24 from the Juniper DUT: "
            << (peer_sees_juniper ? "yes" : "no")
            << "  (paper: accepted by term rule3)\n";
  std::cout << "Campion-reported difference manifests in the simulator: "
            << (peer_sees_cisco != peer_sees_juniper ? "yes" : "NO (bug)")
            << "\n";

  // 3. Latent difference (§5.3): remove the static route from the Cisco
  // config — Campion reports it (Table 4), but no BGP/OSPF behavior in this
  // network depends on it, so the *BGP* solution at the peer is unchanged.
  auto no_static = cisco;
  no_static.static_routes.clear();
  auto latent = campion::sim::Solve(BuildWorld(no_static));
  std::cout << "static-route difference changes the peer's RIB: "
            << (latent.ribs["peer"] == base.ribs["peer"] ? "no (latent)"
                                                          : "yes")
            << "  (paper S5.3: reported differences can be latent)\n";
}

void BM_SolveChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  campion::sim::Network network;
  for (int i = 0; i < n; ++i) {
    campion::ir::RouterConfig router;
    router.hostname = "r" + std::to_string(i);
    campion::ir::BgpProcess bgp;
    bgp.asn = 65000u + static_cast<std::uint32_t>(i);
    if (i > 0) {
      campion::ir::BgpNeighbor left;
      left.ip = Ipv4Address(10, 255, static_cast<std::uint8_t>(i - 1), 1);
      left.remote_as = 65000u + static_cast<std::uint32_t>(i - 1);
      left.send_community = true;
      bgp.neighbors.push_back(left);
    }
    if (i + 1 < n) {
      campion::ir::BgpNeighbor right;
      right.ip = Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 2);
      right.remote_as = 65000u + static_cast<std::uint32_t>(i + 1);
      right.send_community = true;
      bgp.neighbors.push_back(right);
    }
    bgp.networks.push_back(
        Prefix(Ipv4Address(10, static_cast<std::uint8_t>(i), 0, 0), 24));
    router.bgp = std::move(bgp);
    network.AddRouter(std::move(router));
  }
  for (int i = 0; i + 1 < n; ++i) {
    network.AddBgpSession(
        "r" + std::to_string(i),
        Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 1),
        "r" + std::to_string(i + 1),
        Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 2));
  }
  for (auto _ : state) {
    auto solution = campion::sim::Solve(network, 4 * n);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_SolveChain)->Arg(4)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv,
      "Theorem 3.3: local equivalence vs routing solutions (simulator)",
      PrintExperiment);
}
