#!/usr/bin/env bash
# Runs the perf-trajectory benchmarks and records their metrics as JSON
# (BENCH_bdd.json, BENCH_full_pipeline.json) in the repo root, so each PR
# can diff its numbers against the committed baseline.
#
# Also captures a campion-format trace of the university-core comparison
# (BENCH_trace_full_pipeline.json). The previous trace, if any, is archived
# to BENCH_trace_full_pipeline.prev.json first, and the run ends with a
# campion_trace_diff table of previous vs current (report only — the CI
# smoke job is what gates).
#
# Usage: bench/run_bench.sh [BUILD_DIR]   (default: build)
# Also wired as a CMake target: cmake --build build --target bench
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

if [[ ! -x "$BUILD_DIR/bench/bench_bdd" ]]; then
  echo "error: $BUILD_DIR/bench/bench_bdd not built (run: cmake --build $BUILD_DIR)" >&2
  exit 1
fi

run() {
  local name="$1"
  echo "--- $name ---"
  "$BUILD_DIR/bench/$name" --bench_out="BENCH_${name#bench_}.json" \
      --benchmark_min_time=0.1
  echo
}

run bench_bdd
run bench_full_pipeline
run bench_reorder
run bench_serve
run bench_fleet
run bench_scalability_acl

# Trace capture: one serial run of the committed university-core pair.
# --threads=1 plus the deterministic trace structure make the file
# diffable across machines and PRs (only timings and RSS vary).
TRACE=BENCH_trace_full_pipeline.json
echo "--- trace capture ($TRACE) ---"
if [[ -f "$TRACE" ]]; then
  cp "$TRACE" "${TRACE%.json}.prev.json"
fi
"$BUILD_DIR/src/tools/campion" --threads=1 --quiet --trace_out="$TRACE" \
    examples/configs/university_core_cisco.cfg \
    examples/configs/university_core_juniper.conf || status=$?
case "${status:-0}" in
  0|2) ;;  # 2 = differences found, expected for this pair.
  *) echo "error: trace capture failed (exit ${status})" >&2; exit 1 ;;
esac

if [[ -f "${TRACE%.json}.prev.json" ]]; then
  echo
  echo "--- trace diff (previous run vs this run) ---"
  "$BUILD_DIR/src/tools/campion_trace_diff" \
      "${TRACE%.json}.prev.json" "$TRACE" || true
fi

# Encoding-template A/B on the same committed pair: the template must be
# invisible in the report (byte-identical stdout with the flag off or on)
# and visible in the trace (an encode_template span and a smaller encode
# phase). The trace diff is report-only here — the extra encode_template
# span is a deliberate structural difference between the two traces, so
# --fail_if_unmatched does not apply; the CI smoke job runs the same A/B.
echo
echo "--- encoding template A/B (off vs on) ---"
AB_DIR="$(mktemp -d)"
trap 'rm -rf "$AB_DIR"' EXIT
run_ab() {
  local mode="$1"
  "$BUILD_DIR/src/tools/campion" --threads=1 --encoding_template="$mode" \
      --trace_out="$AB_DIR/trace_$mode.json" \
      examples/configs/university_core_cisco.cfg \
      examples/configs/university_core_juniper.conf \
      > "$AB_DIR/report_$mode.txt" || test $? -eq 2
}
run_ab off
run_ab on
cmp "$AB_DIR/report_off.txt" "$AB_DIR/report_on.txt"
echo "stdout parity: OK (report byte-identical with the template off and on)"
"$BUILD_DIR/src/tools/campion_trace_diff" \
    "$AB_DIR/trace_off.json" "$AB_DIR/trace_on.json" || true

# Reorder A/B on the same pair: like the template, dynamic variable
# reordering must be invisible in the report (byte-identical stdout with
# --reorder off or sift) and visible in the trace (a bdd_sift span,
# bdd.sift_* metrics). Report-only trace diff — the bdd_sift span is a
# deliberate structural difference.
echo
echo "--- reorder A/B (off vs sift) ---"
run_reorder() {
  local mode="$1"
  "$BUILD_DIR/src/tools/campion" --threads=1 --reorder="$mode" \
      --trace_out="$AB_DIR/trace_reorder_$mode.json" \
      examples/configs/university_core_cisco.cfg \
      examples/configs/university_core_juniper.conf \
      > "$AB_DIR/report_reorder_$mode.txt" || test $? -eq 2
}
run_reorder off
run_reorder sift
cmp "$AB_DIR/report_reorder_off.txt" "$AB_DIR/report_reorder_sift.txt"
echo "stdout parity: OK (report byte-identical with reordering off and on)"
"$BUILD_DIR/src/tools/campion_trace_diff" \
    "$AB_DIR/trace_reorder_off.json" "$AB_DIR/trace_reorder_sift.json" || true

# Dual-stack (IPv6) parity on the committed dual-stack edge pair: 128-bit
# symbolic address fields run through the same pipeline, so the same
# threads/template invariants must hold there.
echo
echo "--- dual-stack parity (threads x template) ---"
run_v6() {
  local threads="$1" tmpl="$2"
  "$BUILD_DIR/src/tools/campion" --threads="$threads" \
      --encoding_template="$tmpl" \
      examples/configs/dualstack_edge_cisco.cfg \
      examples/configs/dualstack_edge_juniper.conf \
      > "$AB_DIR/report_v6_${threads}_${tmpl}.txt" || test $? -eq 2
}
run_v6 1 on
run_v6 4 on
run_v6 1 off
run_v6 4 off
cmp "$AB_DIR/report_v6_1_on.txt" "$AB_DIR/report_v6_4_on.txt"
cmp "$AB_DIR/report_v6_1_on.txt" "$AB_DIR/report_v6_1_off.txt"
cmp "$AB_DIR/report_v6_1_on.txt" "$AB_DIR/report_v6_4_off.txt"
echo "stdout parity: OK (dual-stack report byte-identical at 1/4 threads, template off/on)"

echo
echo "Wrote BENCH_bdd.json, BENCH_full_pipeline.json, BENCH_reorder.json," \
     "BENCH_serve.json, BENCH_fleet.json, BENCH_scalability_acl.json, and $TRACE"
