#!/usr/bin/env bash
# Runs the perf-trajectory benchmarks and records their metrics as JSON
# (BENCH_bdd.json, BENCH_full_pipeline.json) in the repo root, so each PR
# can diff its numbers against the committed baseline.
#
# Usage: bench/run_bench.sh [BUILD_DIR]   (default: build)
# Also wired as a CMake target: cmake --build build --target bench
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

if [[ ! -x "$BUILD_DIR/bench/bench_bdd" ]]; then
  echo "error: $BUILD_DIR/bench/bench_bdd not built (run: cmake --build $BUILD_DIR)" >&2
  exit 1
fi

run() {
  local name="$1"
  echo "--- $name ---"
  "$BUILD_DIR/bench/$name" --bench_out="BENCH_${name#bench_}.json" \
      --benchmark_min_time=0.1
  echo
}

run bench_bdd
run bench_full_pipeline

echo "Wrote BENCH_bdd.json and BENCH_full_pipeline.json"
