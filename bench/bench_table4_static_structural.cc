// Regenerates Table 4: Campion's structural check of static routes — the
// full route tuple (prefix, next hop, admin distance) and the exact
// configuration line, for every differing route.

#include "bench/bench_util.h"
#include "core/config_diff.h"
#include "core/structural_diff.h"
#include "tests/testdata.h"

namespace {

void PrintTable4() {
  auto cisco = campion::testing::ParseCiscoOrDie(campion::testing::kFig1Cisco);
  auto juniper =
      campion::testing::ParseJuniperOrDie(campion::testing::kFig1Juniper);
  auto diffs = campion::core::DiffStaticRoutes(cisco, juniper);
  std::cout << diffs.size() << " static route difference(s) (paper: 1)\n\n";
  for (const auto& diff : diffs) {
    auto presented =
        campion::core::PresentStructuralDifference(diff, cisco, juniper);
    std::cout << presented.table << "\n";
  }
}

void BM_StructuralDiffStaticRoutes(benchmark::State& state) {
  auto cisco = campion::testing::ParseCiscoOrDie(campion::testing::kFig1Cisco);
  auto juniper =
      campion::testing::ParseJuniperOrDie(campion::testing::kFig1Juniper);
  for (auto _ : state) {
    auto diffs = campion::core::DiffStaticRoutes(cisco, juniper);
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_StructuralDiffStaticRoutes);

// Structural checks scale linearly; sweep the number of static routes.
void BM_StructuralDiffScale(benchmark::State& state) {
  campion::ir::RouterConfig config1;
  campion::ir::RouterConfig config2;
  config1.hostname = "r1";
  config2.hostname = "r2";
  const int routes = static_cast<int>(state.range(0));
  for (int i = 0; i < routes; ++i) {
    campion::ir::StaticRoute route;
    route.prefix = campion::util::Prefix(
        campion::util::Ipv4Address(10, static_cast<std::uint8_t>(i / 256),
                                   static_cast<std::uint8_t>(i % 256), 0),
        24);
    route.next_hop = campion::util::Ipv4Address(10, 0, 0, 1);
    config1.static_routes.push_back(route);
    if (i % 100 == 7) route.next_hop = campion::util::Ipv4Address(10, 0, 0, 2);
    config2.static_routes.push_back(route);
  }
  for (auto _ : state) {
    auto diffs = campion::core::DiffStaticRoutes(config1, config2);
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_StructuralDiffScale)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "Table 4: static route structural differences",
      PrintTable4);
}
