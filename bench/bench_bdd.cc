// Microbenchmarks for the BDD substrate (an ablation: the paper's
// SemanticDiff cost is dominated by BDD operations, so these bound what
// the higher layers can achieve). Covers node construction, ITE, prefix
// range encoding, quantification, and satisfying-assignment extraction.

#include "bench/bench_util.h"
#include "bdd/bdd.h"
#include "encode/route_adv.h"

namespace {

using campion::bdd::BddManager;
using campion::bdd::BddRef;

void BM_VarAndChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BddManager mgr(static_cast<campion::bdd::Var>(n));
    BddRef f = mgr.True();
    for (int i = 0; i < n; ++i) f = mgr.And(f, mgr.VarTrue(i));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_VarAndChain)->Arg(64)->Arg(512);

void BM_IteDeep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BddManager mgr(static_cast<campion::bdd::Var>(n));
  // A parity function: the classic worst case without complement edges.
  BddRef f = mgr.False();
  for (int i = 0; i < n; ++i) f = mgr.Xor(f, mgr.VarTrue(i));
  for (auto _ : state) {
    BddRef g = mgr.Not(f);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_IteDeep)->Arg(32)->Arg(128);

void BM_PrefixRangeEncode(benchmark::State& state) {
  BddManager mgr;
  campion::encode::RouteAdvLayout layout(mgr, {});
  for (auto _ : state) {
    for (int octet = 0; octet < 64; ++octet) {
      BddRef f = layout.MatchPrefixRange(campion::util::PrefixRange(
          campion::util::Prefix(
              campion::util::Ipv4Address(
                  10, static_cast<std::uint8_t>(octet), 0, 0),
              16),
          16, 24));
      benchmark::DoNotOptimize(f);
    }
  }
}
BENCHMARK(BM_PrefixRangeEncode);

void BM_ExistsProjection(benchmark::State& state) {
  BddManager mgr;
  campion::encode::RouteAdvLayout layout(
      mgr, {campion::util::Community(10, 10), campion::util::Community(10, 11)});
  BddRef f = mgr.And(
      layout.MatchPrefixRange(campion::util::PrefixRange(
          campion::util::Prefix(campion::util::Ipv4Address(10, 9, 0, 0), 16),
          16, 32)),
      layout.HasCommunity(campion::util::Community(10, 10)));
  auto mask = layout.NonPrefixVarMask();
  for (auto _ : state) {
    BddRef g = mgr.Exists(f, mask);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_ExistsProjection);

void BM_SatCount(benchmark::State& state) {
  BddManager mgr(64);
  BddRef f = mgr.False();
  for (int i = 0; i < 64; i += 2) {
    f = mgr.Or(f, mgr.And(mgr.VarTrue(i), mgr.VarTrue(i + 1)));
  }
  for (auto _ : state) {
    double count = mgr.SatCount(f);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SatCount);

void PrintSummary() {
  BddManager mgr(64);
  BddRef f = mgr.False();
  for (int i = 0; i < 64; i += 2) {
    f = mgr.Or(f, mgr.And(mgr.VarTrue(i), mgr.VarTrue(i + 1)));
  }
  std::cout << "64-variable pairwise-AND union: " << mgr.NodeCount(f)
            << " nodes, satcount=" << mgr.SatCount(f) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(argc, argv,
                                      "BDD substrate microbenchmarks",
                                      PrintSummary);
}
