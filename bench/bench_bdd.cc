// Microbenchmarks for the BDD substrate (an ablation: the paper's
// SemanticDiff cost is dominated by BDD operations, so these bound what
// the higher layers can achieve). Covers node construction, ITE, prefix
// range encoding, quantification, and satisfying-assignment extraction.
//
// With --bench_out=PATH the summary also records kernel counters (arena
// size, unique-table probe lengths, computed-cache hit rate) and ITE
// throughput numbers as JSON, so the perf trajectory across PRs is
// machine-diffable.

#include <chrono>

#include "bench/bench_util.h"
#include "bdd/bdd.h"
#include "encode/route_adv.h"

namespace {

using campion::bdd::BddManager;
using campion::bdd::BddRef;

void BM_VarAndChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BddManager mgr(static_cast<campion::bdd::Var>(n));
    BddRef f = mgr.True();
    for (int i = 0; i < n; ++i) f = mgr.And(f, mgr.VarTrue(i));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_VarAndChain)->Arg(64)->Arg(512);

void BM_IteDeep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BddManager mgr(static_cast<campion::bdd::Var>(n));
  // A parity function: the classic worst case without complement edges.
  BddRef f = mgr.False();
  for (int i = 0; i < n; ++i) f = mgr.Xor(f, mgr.VarTrue(i));
  for (auto _ : state) {
    BddRef g = mgr.Not(f);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_IteDeep)->Arg(32)->Arg(128);

void BM_IteParityBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Rebuilds parity in a fresh manager each iteration: cold caches, so
  // this measures real ITE recursion + node interning rather than the
  // warm top-level cache hit BM_IteDeep degenerates to.
  for (auto _ : state) {
    BddManager mgr(static_cast<campion::bdd::Var>(n));
    BddRef f = mgr.False();
    for (int i = 0; i < n; ++i) f = mgr.Xor(f, mgr.VarTrue(i));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_IteParityBuild)->Arg(32)->Arg(96);

void BM_PrefixRangeEncode(benchmark::State& state) {
  BddManager mgr;
  campion::encode::RouteAdvLayout layout(mgr, {});
  for (auto _ : state) {
    for (int octet = 0; octet < 64; ++octet) {
      BddRef f = layout.MatchPrefixRange(campion::util::PrefixRange(
          campion::util::Prefix(
              campion::util::Ipv4Address(
                  10, static_cast<std::uint8_t>(octet), 0, 0),
              16),
          16, 24));
      benchmark::DoNotOptimize(f);
    }
  }
}
BENCHMARK(BM_PrefixRangeEncode);

void BM_ExistsProjection(benchmark::State& state) {
  BddManager mgr;
  campion::encode::RouteAdvLayout layout(
      mgr, {campion::util::Community(10, 10), campion::util::Community(10, 11)});
  BddRef f = mgr.And(
      layout.MatchPrefixRange(campion::util::PrefixRange(
          campion::util::Prefix(campion::util::Ipv4Address(10, 9, 0, 0), 16),
          16, 32)),
      layout.HasCommunity(campion::util::Community(10, 10)));
  auto mask = layout.NonPrefixVarMask();
  for (auto _ : state) {
    BddRef g = mgr.Exists(f, mask);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_ExistsProjection);

void BM_SatCount(benchmark::State& state) {
  BddManager mgr(64);
  BddRef f = mgr.False();
  for (int i = 0; i < 64; i += 2) {
    f = mgr.Or(f, mgr.And(mgr.VarTrue(i), mgr.VarTrue(i + 1)));
  }
  for (auto _ : state) {
    double count = mgr.SatCount(f);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SatCount);

// Times `reps` runs of `workload` and records ops/sec under `name`.
// `unit` says what one "op" is — the workloads differ by orders of
// magnitude in per-op work (a 512-variable manager build vs a single cached
// negation), so every rate carries its unit descriptor into the JSON.
template <typename Fn>
double TimeWorkload(const std::string& name, int reps, const std::string& unit,
                    Fn&& workload) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) workload();
  auto stop = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(stop - start).count();
  double ops_per_sec = seconds > 0 ? reps / seconds : 0.0;
  campion::benchutil::BenchMetrics::Instance().RecordRate(
      name + "_ops_per_sec", ops_per_sec, "1 op = " + unit);
  std::cout << "  " << name << ": " << ops_per_sec << " ops/s (1 op = "
            << unit << ")\n";
  return ops_per_sec;
}

void PrintSummary() {
  auto& metrics = campion::benchutil::BenchMetrics::Instance();

  BddManager mgr(64);
  BddRef f = mgr.False();
  for (int i = 0; i < 64; i += 2) {
    f = mgr.Or(f, mgr.And(mgr.VarTrue(i), mgr.VarTrue(i + 1)));
  }
  std::cout << "64-variable pairwise-AND union: " << mgr.NodeCount(f)
            << " nodes, satcount=" << mgr.SatCount(f) << "\n";

  std::cout << "ITE throughput (kernel hot path):\n";
  // Workload 1: fresh-manager conjunction chain — exercises MakeNode and
  // the unique table's growth path.
  TimeWorkload("var_and_chain_512", 200,
               "one fresh 512-variable manager + 512-term AND chain", [] {
    BddManager m(512);
    BddRef g = m.True();
    for (int i = 0; i < 512; ++i) g = m.And(g, m.VarTrue(i));
    benchmark::DoNotOptimize(g);
  });
  // Workload 2: parity negation in a warm manager — exercises the ITE
  // computed cache and recursion machinery.
  BddManager parity_mgr(128);
  BddRef parity = parity_mgr.False();
  for (int i = 0; i < 128; ++i) {
    parity = parity_mgr.Xor(parity, parity_mgr.VarTrue(i));
  }
  BddRef sink = campion::bdd::kFalse;
  TimeWorkload("parity_not_128", 200000,
               "one Not() of a 128-variable parity (warm cache)", [&] {
    sink = parity_mgr.Not(parity);
    benchmark::DoNotOptimize(sink);
  });
  // Workload 3: prefix-range encoding — the encoder's dominant primitive.
  TimeWorkload("prefix_range_encode_64", 500,
               "one fresh manager + 64 prefix-range encodings", [] {
    BddManager m;
    campion::encode::RouteAdvLayout layout(m, {});
    for (int octet = 0; octet < 64; ++octet) {
      BddRef g = layout.MatchPrefixRange(campion::util::PrefixRange(
          campion::util::Prefix(
              campion::util::Ipv4Address(
                  10, static_cast<std::uint8_t>(octet), 0, 0),
              16),
          16, 24));
      benchmark::DoNotOptimize(g);
    }
  });

  // Workload 4: NAND chain — negation interleaved with conjunction. This is
  // the shape complement edges exist for: every Not is a bit flip, and each
  // intermediate function shares its node DAG with its complement, so the
  // chain allocates half the nodes a plain-edge kernel needs.
  TimeWorkload("not_chain_96", 2000,
               "one fresh 96-variable manager + 95-step NAND chain", [] {
    BddManager m(96);
    BddRef g = m.VarTrue(0);
    for (int i = 1; i < 96; ++i) g = m.Not(m.And(g, m.VarTrue(i)));
    benchmark::DoNotOptimize(g);
  });
  {
    BddManager m(96);
    BddRef g = m.VarTrue(0);
    for (int i = 1; i < 96; ++i) g = m.Not(m.And(g, m.VarTrue(i)));
    metrics.Record("not_chain_96_nodes", static_cast<double>(m.NodeCount(g)));
    metrics.Record("not_chain_96_arena",
                   static_cast<double>(m.Stats().arena_size));
  }
  // Workload 5: pairwise difference probes over a pool of prefix-range
  // sets — Campion's semantic-diff pattern (A ∧ ¬B for every route-map
  // clause pair). Standardized triples let Diff(a, b) and Subset(b, a)
  // share computed-cache entries.
  TimeWorkload("diff_pairs_16", 100,
               "one fresh manager + 16x16 Diff/Subset pair sweep", [] {
    BddManager m;
    campion::encode::RouteAdvLayout layout(m, {});
    std::vector<BddRef> pool;
    for (int i = 0; i < 16; ++i) {
      pool.push_back(layout.MatchPrefixRange(campion::util::PrefixRange(
          campion::util::Prefix(
              campion::util::Ipv4Address(
                  10, static_cast<std::uint8_t>(i * 8), 0, 0),
              16),
          16, static_cast<std::uint8_t>(17 + (i % 8)))));
    }
    for (BddRef a : pool) {
      for (BddRef b : pool) {
        BddRef d = m.Diff(a, b);
        benchmark::DoNotOptimize(d);
        bool sub = m.Subset(a, b);
        benchmark::DoNotOptimize(sub);
      }
    }
  });
  {
    BddManager m;
    campion::encode::RouteAdvLayout layout(m, {});
    std::vector<BddRef> pool;
    for (int i = 0; i < 16; ++i) {
      pool.push_back(layout.MatchPrefixRange(campion::util::PrefixRange(
          campion::util::Prefix(
              campion::util::Ipv4Address(
                  10, static_cast<std::uint8_t>(i * 8), 0, 0),
              16),
          16, static_cast<std::uint8_t>(17 + (i % 8)))));
    }
    for (BddRef a : pool) {
      for (BddRef b : pool) benchmark::DoNotOptimize(m.Diff(a, b));
    }
    metrics.Record("diff_pairs_16_arena",
                   static_cast<double>(m.Stats().arena_size));
  }

  // Kernel counters from a representative ITE-heavy manager.
  campion::bdd::BddStats stats = parity_mgr.Stats();
  std::cout << "parity manager kernel stats:\n"
            << "  arena size:        " << stats.arena_size << " nodes\n"
            << "  unique capacity:   " << stats.unique_capacity << " slots\n"
            << "  avg probe length:  " << stats.AvgProbeLength() << "\n"
            << "  cache capacity:    " << stats.cache_capacity << " slots\n"
            << "  cache hit rate:    " << stats.CacheHitRate() << "\n";
  metrics.Record("arena_size", static_cast<double>(stats.arena_size));
  metrics.Record("unique_capacity", static_cast<double>(stats.unique_capacity));
  metrics.Record("unique_probes", static_cast<double>(stats.unique_probes));
  metrics.Record("unique_lookups", static_cast<double>(stats.unique_lookups));
  metrics.Record("avg_probe_length", stats.AvgProbeLength());
  metrics.Record("cache_capacity", static_cast<double>(stats.cache_capacity));
  metrics.Record("cache_lookups", static_cast<double>(stats.cache_lookups));
  metrics.Record("cache_hits", static_cast<double>(stats.cache_hits));
  metrics.Record("cache_hit_rate", stats.CacheHitRate());
}

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(argc, argv,
                                      "BDD substrate microbenchmarks",
                                      PrintSummary);
}
