// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//  1. SemanticDiff's disagreement-set pruning: the pairwise class
//     comparison restricted to classes overlapping permit1 XOR permit2,
//     vs comparing every class pair (both produce the same differences;
//     the asymptotics differ).
//  2. HeaderLocalize's GetMatch minimality: the number of output terms vs
//     a naive "list every touched leaf/remainder region" representation.
//  3. Route-map diff cost as the clause count grows (SemanticDiff's class
//     construction dominates once fall-through terms fork states).

#include "bench/bench_util.h"
#include "core/header_localize.h"
#include "core/semantic_diff.h"
#include "gen/acl_gen.h"
#include "gen/route_map_gen.h"

namespace {

void BM_AclDiffPruned(benchmark::State& state) {
  campion::gen::AclGenOptions options;
  options.rules = static_cast<int>(state.range(0));
  options.differences = 10;
  options.seed = 11;
  auto pair = campion::gen::GenerateAclPair(options);
  for (auto _ : state) {
    campion::bdd::BddManager mgr;
    campion::encode::PacketLayout layout(mgr);
    auto diffs =
        campion::core::SemanticDiffAcls(layout, pair.acl1, pair.acl2);
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_AclDiffPruned)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_AclDiffUnpruned(benchmark::State& state) {
  campion::gen::AclGenOptions options;
  options.rules = static_cast<int>(state.range(0));
  options.differences = 10;
  options.seed = 11;
  auto pair = campion::gen::GenerateAclPair(options);
  campion::core::AclDiffOptions no_prune;
  no_prune.prune_with_disagreement_set = false;
  for (auto _ : state) {
    campion::bdd::BddManager mgr;
    campion::encode::PacketLayout layout(mgr);
    auto diffs = campion::core::SemanticDiffAcls(layout, pair.acl1,
                                                 pair.acl2, no_prune);
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_AclDiffUnpruned)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_RouteMapDiffClauses(benchmark::State& state) {
  campion::gen::RouteMapGenOptions options;
  options.clauses = static_cast<int>(state.range(0));
  options.differences = 2;
  options.seed = 5;
  auto pair = campion::gen::GenerateRouteMapPair(options);
  for (auto _ : state) {
    campion::bdd::BddManager mgr;
    std::vector<campion::util::Community> communities =
        pair.config1.AllCommunities();
    auto more = pair.config2.AllCommunities();
    communities.insert(communities.end(), more.begin(), more.end());
    campion::encode::RouteAdvLayout layout(mgr, std::move(communities));
    auto diffs = campion::core::SemanticDiffRouteMaps(
        layout, pair.config1, *pair.config1.FindRouteMap(pair.map_name),
        pair.config2, *pair.config2.FindRouteMap(pair.map_name));
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_RouteMapDiffClauses)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void PrintMinimalityComparison() {
  using campion::util::Ipv4Address;
  using campion::util::Prefix;
  using campion::util::PrefixRange;
  campion::bdd::BddManager mgr;
  campion::encode::RouteAdvLayout layout(mgr, {});
  auto to_bdd = [&](const PrefixRange& r) {
    return layout.MatchPrefixRange(r);
  };

  // A set built from 16 nested /16 windows; GetMatch should represent it
  // with one term per contiguous region instead of one per leaf.
  std::vector<PrefixRange> pool;
  for (int i = 0; i < 16; ++i) {
    pool.emplace_back(
        Prefix(Ipv4Address(10, static_cast<std::uint8_t>(i), 0, 0), 16), 16,
        32);
    pool.emplace_back(
        Prefix(Ipv4Address(10, static_cast<std::uint8_t>(i), 0, 0), 16), 16,
        16);
  }
  campion::bdd::BddRef s = mgr.False();
  for (int i = 0; i < 16; ++i) {
    // window minus exact: the Table 2(a) shape, repeated.
    s = mgr.Or(s, mgr.Diff(to_bdd(pool[2 * i]), to_bdd(pool[2 * i + 1])));
  }
  auto localized = campion::core::HeaderLocalize(mgr, s, pool, to_bdd);
  // Naive representation size: every (range, in/out) leaf region.
  std::size_t naive_terms = 0;
  for (const auto& range : pool) {
    if (mgr.Intersects(to_bdd(range), s)) ++naive_terms;
  }
  std::cout << "HeaderLocalize minimality on 16 window-minus-exact sets:\n"
            << "  GetMatch terms: " << localized.terms.size()
            << " (one per window, each with one exclusion)\n"
            << "  touched ranges (naive lower bound): " << naive_terms
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "Ablations: pruning, minimality, clause scaling",
      PrintMinimalityComparison);
}
