// Regenerates Table 8: university network results — per-route-map raw
// difference counts for the core and border pairs (8a) and the structural
// static-route / BGP-property classes (8b).

#include "bench/bench_util.h"
#include "core/config_diff.h"
#include "core/structural_diff.h"
#include "gen/scenarios.h"
#include "util/text_table.h"

namespace {

void PrintTable8() {
  campion::gen::UniversityScenario scenario =
      campion::gen::BuildUniversityScenario();

  auto count = [](const campion::gen::RouterPair& pair,
                  const std::string& name) {
    return campion::core::DiffRouteMapPair(pair.config1, name, pair.config2,
                                           name)
        .size();
  };

  std::cout << "(a) SemanticDiff results on route maps\n";
  campion::util::TextTable a(
      {"Router Pair", "Route Map", "Outputted Differences", "Paper"});
  const char* paper_core[] = {"5", "1"};
  int index = 0;
  for (const auto& name : scenario.core_exports) {
    a.AddRow({"Core Routers", name,
              std::to_string(count(scenario.core, name)),
              paper_core[index++]});
  }
  const char* paper_border[] = {"1", "1", "2"};
  index = 0;
  for (const auto& name : scenario.border_exports) {
    a.AddRow({"Border Routers", name,
              std::to_string(count(scenario.border, name)),
              paper_border[index++]});
  }
  a.AddRow({"Core Routers", scenario.import_policy,
            std::to_string(count(scenario.core, scenario.import_policy)),
            "0"});
  std::cout << a.Render() << "\n";

  std::cout << "(b) StructuralDiff results\n";
  auto statics = campion::core::DiffStaticRoutes(scenario.core.config1,
                                                 scenario.core.config2);
  int next_hop = 0;
  int presence = 0;
  for (const auto& diff : statics) {
    if (diff.field == "next hop") ++next_hop;
    if (diff.field == "presence") ++presence;
  }
  auto bgp = campion::core::DiffBgpProperties(scenario.core.config1,
                                              scenario.core.config2);
  campion::util::TextTable b(
      {"Router Pair", "Component", "Classes of Errors", "Paper"});
  b.AddRow({"Core Routers", "Static Routes",
            std::to_string((next_hop > 0 ? 1 : 0) + (presence > 0 ? 1 : 0)),
            "2"});
  b.AddRow({"Core Routers", "BGP Properties",
            std::to_string(bgp.empty() ? 0 : 1), "1"});
  std::cout << b.Render();
}

void BM_CompareCorePair(benchmark::State& state) {
  auto scenario = campion::gen::BuildUniversityScenario();
  for (auto _ : state) {
    auto report = campion::core::ConfigDiff(scenario.core.config1,
                                            scenario.core.config2);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CompareCorePair)->Unit(benchmark::kMillisecond);

void BM_CompareBorderPair(benchmark::State& state) {
  auto scenario = campion::gen::BuildUniversityScenario();
  for (auto _ : state) {
    auto report = campion::core::ConfigDiff(scenario.border.config1,
                                            scenario.border.config2);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CompareBorderPair)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "Table 8: university network results", PrintTable8);
}
