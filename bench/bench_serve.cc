// Daemon A/B benchmark for campion_serve (src/server): measures what the
// resident service buys over the one-shot CLI pipeline.
//
//   1. Cold vs warm template cache on the university-core pair: the first
//      request pays the encoding-template build plus its one-time sift;
//      subsequent requests with the same structural keys reuse the cached,
//      sifted, compacted template. The acceptance bar is warm < 0.5x cold
//      wall, and the response body must be byte-identical either way.
//   2. Cache-off baseline: every request pays the full build, which is the
//      per-request cost the cache amortizes away.
//   3. GC on/off over a long request sequence (>= 100, cycling three
//      distinct config pairs): per-request bdd.mem_arena_bytes (from the
//      obs envelope) must not grow across rounds, and the daemon-side
//      server.template_cache_resident_bytes must plateau once every
//      template is cached — with the ratio off/on showing what
//      mark-and-compact reclaims.
//   4. Latency quantiles as the daemon itself reports them: after a warm
//      request burst, server.latency.diff.{p50,p99}_ns are scraped from
//      /metrics and recorded — the daemon's own histogram, not a
//      client-side stopwatch.
//   5. Flight recorder on/off A/B: mean warm-request wall over a burst
//      with the recorder enabled vs disabled. The recorder's Record() is
//      one mutex acquisition plus a summary copy per request; target
//      overhead is < 2% (noise-dominated on small configs).
//   6. HTTP-thread scaling: wall for a fixed request count pushed by 4
//      concurrent client connections against 1 vs 4 connection workers.
//      Requests run the pipeline concurrently (no serialization), so on
//      multi-core hosts the 4-worker wall should approach 1/4x; on a
//      single-CPU container the ratio stays ~1x — the recorded number is
//      honest about where it ran.
//
// Requests go over real loopback HTTP (in-process HttpServer + HttpFetch),
// so the timings include the transport the daemon's users actually see.
// With --bench_out=PATH the numbers land in BENCH_serve.json.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cisco/cisco_unparser.h"
#include "gen/scenarios.h"
#include "juniper/juniper_unparser.h"
#include "server/http.h"
#include "server/service.h"
#include "util/json.h"

namespace {

using campion::server::DiffService;
using campion::server::HttpClientResponse;
using campion::server::HttpFetch;
using campion::server::HttpServer;
using campion::server::ServiceOptions;

// An in-process daemon on an ephemeral loopback port.
struct Daemon {
  explicit Daemon(const ServiceOptions& options, int http_threads = 1)
      : service(options),
        server(
            "127.0.0.1", 0,
            [this](const campion::server::HttpRequest& request) {
              return service.Handle(request);
            },
            /*num_workers=*/http_threads) {
    std::string error;
    if (!server.Start(&error)) {
      std::cerr << "error: cannot start daemon: " << error << "\n";
      std::exit(1);
    }
  }
  ~Daemon() { server.Stop(); }

  HttpClientResponse Post(const std::string& target, const std::string& body) {
    HttpClientResponse response;
    std::string error;
    if (!HttpFetch("127.0.0.1", server.port(), "POST", target, body, &response,
                   &error)) {
      std::cerr << "error: request failed: " << error << "\n";
      std::exit(1);
    }
    return response;
  }

  HttpClientResponse Get(const std::string& target) {
    HttpClientResponse response;
    std::string error;
    if (!HttpFetch("127.0.0.1", server.port(), "GET", target, "", &response,
                   &error)) {
      std::cerr << "error: request failed: " << error << "\n";
      std::exit(1);
    }
    return response;
  }

  DiffService service;
  HttpServer server;
};

ServiceOptions DaemonDefaults() {
  // Mirrors campion_serve's defaults: cache on, one-time sift per cache
  // entry, GC on. Serial diff execution keeps the wall times comparable.
  // The result cache is OFF here — every section measures the template
  // cache / GC / recorder pipeline, and a result-cache replay would short-
  // circuit exactly the machinery under test (bench_fleet covers it).
  ServiceOptions options;
  options.diff.num_threads = 1;
  options.diff.reorder = campion::core::DiffOptions::ReorderMode::kSift;
  options.result_cache = false;
  return options;
}

std::string DiffBody(const std::string& config1, const std::string& config2,
                     bool want_obs) {
  std::string body = "{\"config1\":\"" + campion::util::JsonEscape(config1) +
                     "\",\"config2\":\"" + campion::util::JsonEscape(config2) +
                     "\"";
  if (want_obs) body += ",\"obs\":true";
  body += "}";
  return body;
}

struct ConfigPair {
  std::string name;
  std::string config1;  // Cisco text.
  std::string config2;  // Juniper text.
};

// Three pairs with distinct structural keys, so the long sequence exercises
// three cache entries rather than hammering one.
std::vector<ConfigPair> BuildPairs() {
  campion::gen::UniversityScenario university =
      campion::gen::BuildUniversityScenario();
  std::vector<ConfigPair> pairs;
  pairs.push_back(
      {"university_core",
       campion::cisco::UnparseCiscoConfig(university.core.config1),
       campion::juniper::UnparseJuniperConfig(university.core.config2)});
  pairs.push_back(
      {"university_border",
       campion::cisco::UnparseCiscoConfig(university.border.config1),
       campion::juniper::UnparseJuniperConfig(university.border.config2)});
  // Cross pair: core vs border differ structurally, giving a third key.
  pairs.push_back(
      {"core_vs_border",
       campion::cisco::UnparseCiscoConfig(university.core.config1),
       campion::juniper::UnparseJuniperConfig(university.border.config2)});
  return pairs;
}

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

// Scrapes one "name value" line from the /metrics exposition.
double ScrapeMetric(const std::string& metrics, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t pos = metrics.find(needle);
  if (pos == std::string::npos) return 0.0;
  // Guard against suffix collisions ("x.y" matching "prefix.x.y").
  while (pos != 0 && metrics[pos - 1] != '\n') {
    pos = metrics.find(needle, pos + 1);
    if (pos == std::string::npos) return 0.0;
  }
  return std::strtod(metrics.c_str() + pos + needle.size(), nullptr);
}

// Per-request bdd.mem_arena_bytes out of the obs response envelope.
double ArenaBytesOf(const HttpClientResponse& response) {
  campion::util::JsonValue envelope;
  if (!campion::util::ParseJson(response.body, envelope)) return 0.0;
  const campion::util::JsonValue* obs = envelope.Find("obs");
  if (obs == nullptr) return 0.0;
  const campion::util::JsonValue* metrics = obs->Find("metrics");
  if (metrics == nullptr) return 0.0;
  return metrics->NumberOr("bdd.mem_arena_bytes", 0.0);
}

void PrintSummary() {
  auto& metrics = campion::benchutil::BenchMetrics::Instance();
  const std::vector<ConfigPair> pairs = BuildPairs();
  const ConfigPair& core = pairs[0];
  const std::string core_body = DiffBody(core.config1, core.config2, false);

  // --- 1. cold vs warm cache on university-core -------------------------
  std::cout << "cold vs warm template cache (university core):\n";
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  std::string cold_report;
  bool parity = true;
  {
    Daemon daemon(DaemonDefaults());
    auto t0 = std::chrono::steady_clock::now();
    HttpClientResponse cold = daemon.Post("/diff", core_body);
    auto t1 = std::chrono::steady_clock::now();
    cold_seconds = Seconds(t0, t1);
    cold_report = cold.body;
    constexpr int kWarmRuns = 10;
    warm_seconds = 1e9;
    for (int i = 0; i < kWarmRuns; ++i) {
      auto w0 = std::chrono::steady_clock::now();
      HttpClientResponse warm = daemon.Post("/diff", core_body);
      auto w1 = std::chrono::steady_clock::now();
      warm_seconds = std::min(warm_seconds, Seconds(w0, w1));
      parity = parity && warm.body == cold_report;
    }
  }
  const double ratio = cold_seconds > 0 ? warm_seconds / cold_seconds : 1.0;
  std::cout << "  cold (cache miss, build+sift): " << std::fixed
            << std::setprecision(4) << cold_seconds << " s\n"
            << "  warm (cache hit, best of 10):  " << warm_seconds << " s\n"
            << "  warm/cold ratio: " << std::setprecision(3) << ratio
            << (ratio < 0.5 ? "  (< 0.5: PASS)" : "  (>= 0.5: FAIL)") << "\n"
            << "  response parity: "
            << (parity ? "OK (byte-identical)" : "BROKEN") << "\n";
  metrics.Record("cold_request_seconds", cold_seconds);
  metrics.Record("warm_request_seconds", warm_seconds);
  metrics.RecordUnit("warm_request_seconds",
                     "best of 10 cache-hit requests over loopback HTTP");
  metrics.Record("warm_over_cold_ratio", ratio);
  metrics.RecordUnit("warm_over_cold_ratio",
                     "warm request wall / cold request wall (< 0.5 required)");
  metrics.Record("cold_warm_parity", parity ? 1.0 : 0.0);

  // --- 2. cache-off baseline -------------------------------------------
  {
    ServiceOptions options = DaemonDefaults();
    options.cache = false;
    Daemon daemon(options);
    daemon.Post("/diff", core_body);  // Warm allocators and page cache.
    auto t0 = std::chrono::steady_clock::now();
    HttpClientResponse response = daemon.Post("/diff", core_body);
    auto t1 = std::chrono::steady_clock::now();
    const double nocache_seconds = Seconds(t0, t1);
    std::cout << "  cache off (every request rebuilds): " << std::fixed
              << std::setprecision(4) << nocache_seconds << " s\n";
    metrics.Record("nocache_request_seconds", nocache_seconds);
    metrics.Record("nocache_parity", response.body == cold_report ? 1.0 : 0.0);
  }

  // --- 3. GC on/off over a long request sequence ------------------------
  constexpr int kSequenceRequests = 120;  // >= 100 per the acceptance bar.
  std::cout << "\n" << kSequenceRequests
            << " sequential requests cycling " << pairs.size()
            << " config pairs:\n";
  double resident_final_gc_on = 0.0;
  for (const bool gc : {true, false}) {
    ServiceOptions options = DaemonDefaults();
    options.gc = gc;
    Daemon daemon(options);
    // Arena bytes per pair, first and last round, from the obs envelope.
    std::vector<double> first_round(pairs.size(), 0.0);
    std::vector<double> last_round(pairs.size(), 0.0);
    double resident_peak = 0.0;
    double resident_after_first_cycle = 0.0;
    for (int i = 0; i < kSequenceRequests; ++i) {
      const std::size_t which = i % pairs.size();
      HttpClientResponse response = daemon.Post(
          "/diff",
          DiffBody(pairs[which].config1, pairs[which].config2, true));
      const double arena = ArenaBytesOf(response);
      if (first_round[which] == 0.0) first_round[which] = arena;
      last_round[which] = arena;
      const double resident = ScrapeMetric(
          daemon.Get("/metrics").body, "server.template_cache_resident_bytes");
      resident_peak = std::max(resident_peak, resident);
      if (i == static_cast<int>(pairs.size()) - 1) {
        resident_after_first_cycle = resident;
      }
    }
    const std::string metrics_body = daemon.Get("/metrics").body;
    const double resident_final =
        ScrapeMetric(metrics_body, "server.template_cache_resident_bytes");
    bool arena_bounded = true;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      arena_bounded = arena_bounded && last_round[i] <= first_round[i];
    }
    // Bounded = the cache plateaus after the first full cycle (every
    // template built) and per-request arena bytes never grow.
    const bool resident_bounded = resident_final <= resident_after_first_cycle;
    const std::string tag = gc ? "gc_on" : "gc_off";
    std::cout << "  " << (gc ? "gc on: " : "gc off:")
              << "  resident " << static_cast<long long>(resident_final)
              << " B (peak " << static_cast<long long>(resident_peak)
              << " B), per-request arena "
              << (arena_bounded ? "bounded" : "GROWING (BUG)")
              << ", cache resident "
              << (resident_bounded ? "plateaued" : "GROWING (BUG)") << "\n";
    metrics.Record(tag + "_resident_bytes_final", resident_final);
    metrics.RecordUnit(tag + "_resident_bytes_final",
                       "server.template_cache_resident_bytes after " +
                           std::to_string(kSequenceRequests) + " requests");
    metrics.Record(tag + "_resident_bytes_peak", resident_peak);
    metrics.Record(tag + "_arena_bounded", arena_bounded ? 1.0 : 0.0);
    metrics.Record(tag + "_resident_bounded", resident_bounded ? 1.0 : 0.0);
    if (gc) {
      resident_final_gc_on = resident_final;
      metrics.Record(
          "gc_reclaimed_nodes",
          ScrapeMetric(metrics_body,
                       "server.template_cache_gc_reclaimed_nodes"));
      metrics.Record(
          "gc_compacted_bytes",
          ScrapeMetric(metrics_body,
                       "server.template_cache_gc_compacted_bytes"));
    } else if (resident_final > 0.0 && resident_final_gc_on > 0.0) {
      const double shrink = resident_final_gc_on / resident_final;
      std::cout << "  gc on/off resident ratio: " << std::setprecision(3)
                << shrink << "\n";
      metrics.Record("gc_resident_ratio", shrink);
      metrics.RecordUnit("gc_resident_ratio",
                         "cached template resident bytes with GC / without "
                         "(< 1 = compaction reclaims memory)");
    }
  }
  metrics.Record("sequence_requests", kSequenceRequests);

  // --- 4. daemon-reported latency quantiles -----------------------------
  constexpr int kQuantileBurst = 50;
  std::cout << "\ndaemon-reported diff latency over " << kQuantileBurst
            << " warm requests:\n";
  {
    Daemon daemon(DaemonDefaults());
    daemon.Post("/diff", core_body);  // The one cache miss.
    for (int i = 0; i < kQuantileBurst; ++i) daemon.Post("/diff", core_body);
    const std::string metrics_body = daemon.Get("/metrics").body;
    const double p50_ns = ScrapeMetric(metrics_body, "server.latency.diff.p50_ns");
    const double p99_ns = ScrapeMetric(metrics_body, "server.latency.diff.p99_ns");
    const double mean_ns =
        ScrapeMetric(metrics_body, "server.latency.diff.mean_ns");
    std::cout << "  p50 " << std::fixed << std::setprecision(4)
              << p50_ns / 1e6 << " ms, p99 " << p99_ns / 1e6 << " ms, mean "
              << mean_ns / 1e6 << " ms (server.latency.diff.*)\n";
    metrics.Record("diff_latency_p50_seconds", p50_ns / 1e9);
    metrics.RecordUnit("diff_latency_p50_seconds",
                       "server.latency.diff.p50_ns from the daemon's "
                       "log-scale histogram (<= 25% relative bucket width)");
    metrics.Record("diff_latency_p99_seconds", p99_ns / 1e9);
    metrics.Record("diff_latency_mean_seconds", mean_ns / 1e9);
  }

  // --- 5. flight recorder on/off A/B ------------------------------------
  constexpr int kRecorderBurst = 60;
  std::cout << "\nflight recorder on/off (" << kRecorderBurst
            << " warm requests each):\n";
  double recorder_on_seconds = 0.0;
  for (const bool recorder : {true, false}) {
    ServiceOptions options = DaemonDefaults();
    options.flight_recorder = recorder;
    Daemon daemon(options);
    daemon.Post("/diff", core_body);  // Cache miss outside the timed burst.
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kRecorderBurst; ++i) daemon.Post("/diff", core_body);
    auto t1 = std::chrono::steady_clock::now();
    const double mean_seconds = Seconds(t0, t1) / kRecorderBurst;
    const std::string tag =
        recorder ? "flight_recorder_on" : "flight_recorder_off";
    std::cout << "  " << (recorder ? "on:  " : "off: ") << std::fixed
              << std::setprecision(6) << mean_seconds << " s/request\n";
    metrics.Record(tag + "_request_seconds", mean_seconds);
    if (recorder) {
      recorder_on_seconds = mean_seconds;
    } else if (mean_seconds > 0.0) {
      const double overhead = recorder_on_seconds / mean_seconds - 1.0;
      std::cout << "  overhead: " << std::setprecision(2) << overhead * 100.0
                << "% (target < 2%; single-run walls on small configs are "
                   "noise-dominated)\n";
      metrics.Record("flight_recorder_overhead_ratio", overhead);
      metrics.RecordUnit("flight_recorder_overhead_ratio",
                         "mean warm request wall with recorder / without - 1 "
                         "(< 0.02 target)");
    }
  }

  // --- 6. HTTP-thread scaling -------------------------------------------
  if (std::thread::hardware_concurrency() <= 1) {
    // A 1-vs-4-worker wall ratio is meaningless without CPUs to scale
    // onto; recording the ~1x it produces would read as a scaling failure.
    std::cout << "\nHTTP-thread scaling: skipped "
                 "(hardware_concurrency == 1)\n";
    metrics.Record("http_threads_scaling_skipped", 1.0);
    metrics.RecordUnit("http_threads_scaling_skipped",
                       "1 = probe skipped on a single-CPU host instead of "
                       "recording a misleading ~1x speedup");
    metrics.Record("hardware_concurrency",
                   static_cast<double>(std::thread::hardware_concurrency()));
    return;
  }
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 15;
  std::cout << "\n" << kClients << " concurrent clients x "
            << kRequestsPerClient << " warm requests:\n";
  metrics.Record("http_threads_scaling_skipped", 0.0);
  double single_thread_seconds = 0.0;
  for (const int http_threads : {1, 4}) {
    Daemon daemon(DaemonDefaults(), http_threads);
    daemon.Post("/diff", core_body);  // Populate the cache first.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&daemon, &core_body] {
        for (int i = 0; i < kRequestsPerClient; ++i) {
          daemon.Post("/diff", core_body);
        }
      });
    }
    for (std::thread& client : clients) client.join();
    auto t1 = std::chrono::steady_clock::now();
    const double wall = Seconds(t0, t1);
    std::cout << "  http_threads=" << http_threads << ": " << std::fixed
              << std::setprecision(4) << wall << " s\n";
    metrics.Record("http_threads_" + std::to_string(http_threads) +
                       "_wall_seconds",
                   wall);
    if (http_threads == 1) {
      single_thread_seconds = wall;
    } else if (wall > 0.0) {
      const double speedup = single_thread_seconds / wall;
      std::cout << "  speedup: " << std::setprecision(3) << speedup
                << "x over " << std::thread::hardware_concurrency()
                << " hardware threads (~1x expected on a single CPU — "
                   "requests are concurrent, not parallel, there)\n";
      metrics.Record("http_threads_speedup", speedup);
      metrics.RecordUnit("http_threads_speedup",
                         "4-client wall with 1 worker / with 4 workers "
                         "(bounded by available CPUs)");
      metrics.Record("hardware_concurrency",
                     static_cast<double>(std::thread::hardware_concurrency()));
    }
  }
}

void BM_WarmDiffRequest(benchmark::State& state) {
  const std::vector<ConfigPair> pairs = BuildPairs();
  const std::string body = DiffBody(pairs[0].config1, pairs[0].config2, false);
  Daemon daemon(DaemonDefaults());
  daemon.Post("/diff", body);  // Populate the cache.
  for (auto _ : state) {
    HttpClientResponse response = daemon.Post("/diff", body);
    benchmark::DoNotOptimize(response.body);
  }
}
BENCHMARK(BM_WarmDiffRequest)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv,
      "campion_serve daemon A/B (template cache cold/warm, GC on/off)",
      PrintSummary);
}
