// Regenerates the §5.4 end-to-end runtime claims: a full router-pair
// comparison (parse + all checks + localization) completes within seconds
// — the paper reports under 5 s per data-center pair and ~3 s for the
// university core+border pairs, with parsing dominating.

#include <chrono>

#include "bench/bench_util.h"
#include "cisco/cisco_parser.h"
#include "cisco/cisco_unparser.h"
#include "core/config_diff.h"
#include "gen/scenarios.h"
#include "juniper/juniper_parser.h"
#include "juniper/juniper_unparser.h"

namespace {

void PrintRuntime() {
  // Padded to the paper's real config sizes (~1300-3300 lines per file).
  campion::gen::UniversityScenario scenario =
      campion::gen::BuildUniversityScenario(/*filler_components=*/900);

  // Round-trip the configs through native text so parsing is part of the
  // measured pipeline, as in the paper.
  std::string cisco_core =
      campion::cisco::UnparseCiscoConfig(scenario.core.config1);
  std::string juniper_core =
      campion::juniper::UnparseJuniperConfig(scenario.core.config2);
  std::string cisco_border =
      campion::cisco::UnparseCiscoConfig(scenario.border.config1);
  std::string juniper_border =
      campion::juniper::UnparseJuniperConfig(scenario.border.config2);

  auto start = std::chrono::steady_clock::now();
  auto parsed_cisco_core = campion::cisco::ParseCiscoConfig(cisco_core);
  auto parsed_juniper_core =
      campion::juniper::ParseJuniperConfig(juniper_core);
  auto parsed_cisco_border = campion::cisco::ParseCiscoConfig(cisco_border);
  auto parsed_juniper_border =
      campion::juniper::ParseJuniperConfig(juniper_border);
  auto parsed = std::chrono::steady_clock::now();
  auto core_report = campion::core::ConfigDiff(parsed_cisco_core.config,
                                               parsed_juniper_core.config);
  auto border_report = campion::core::ConfigDiff(
      parsed_cisco_border.config, parsed_juniper_border.config);
  auto done = std::chrono::steady_clock::now();

  double parse_seconds =
      std::chrono::duration<double>(parsed - start).count();
  double diff_seconds = std::chrono::duration<double>(done - parsed).count();
  std::cout << "University core+border pairs, full pipeline:\n"
            << "  parse:    " << parse_seconds << " s\n"
            << "  compare:  " << diff_seconds << " s\n"
            << "  total:    " << parse_seconds + diff_seconds
            << " s   (paper: ~3 s compare, < 10 s total)\n"
            << "  core differences reported:   " << core_report.entries.size()
            << "\n"
            << "  border differences reported: "
            << border_report.entries.size() << "\n";
}

void BM_FullPipelineUniversityPairs(benchmark::State& state) {
  auto scenario = campion::gen::BuildUniversityScenario(900);
  std::string cisco_text =
      campion::cisco::UnparseCiscoConfig(scenario.core.config1);
  std::string juniper_text =
      campion::juniper::UnparseJuniperConfig(scenario.core.config2);
  for (auto _ : state) {
    auto cisco = campion::cisco::ParseCiscoConfig(cisco_text);
    auto juniper = campion::juniper::ParseJuniperConfig(juniper_text);
    auto report = campion::core::ConfigDiff(cisco.config, juniper.config);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FullPipelineUniversityPairs)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "S5.4 runtime: full pipeline on the university pairs",
      PrintRuntime);
}
