// Regenerates the §5.4 end-to-end runtime claims: a full router-pair
// comparison (parse + all checks + localization) completes within seconds
// — the paper reports under 5 s per data-center pair and ~3 s for the
// university core+border pairs, with parsing dominating.
//
// The summary additionally times the compare phase serially
// (num_threads=1) and with the worker pool (num_threads=0 = hardware
// concurrency), checks the reports are byte-identical, and records both
// wall-clocks with --bench_out so the parallel pipeline's trajectory is
// tracked across PRs.

#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "cisco/cisco_parser.h"
#include "cisco/cisco_unparser.h"
#include "core/config_diff.h"
#include "frontend/loader.h"
#include "gen/scenarios.h"
#include "juniper/juniper_parser.h"
#include "juniper/juniper_unparser.h"

namespace {

void PrintRuntime() {
  auto& metrics = campion::benchutil::BenchMetrics::Instance();

  // Padded to the paper's real config sizes (~1300-3300 lines per file).
  campion::gen::UniversityScenario scenario =
      campion::gen::BuildUniversityScenario(/*filler_components=*/900);

  // Round-trip the configs through native text so parsing is part of the
  // measured pipeline, as in the paper.
  std::string cisco_core =
      campion::cisco::UnparseCiscoConfig(scenario.core.config1);
  std::string juniper_core =
      campion::juniper::UnparseJuniperConfig(scenario.core.config2);
  std::string cisco_border =
      campion::cisco::UnparseCiscoConfig(scenario.border.config1);
  std::string juniper_border =
      campion::juniper::UnparseJuniperConfig(scenario.border.config2);

  // The measured pipeline goes through the frontend loader (not the raw
  // parsers) and runs traced, so this binary's --bench_out JSON carries the
  // same per-phase spans and kernel counters `campion --trace_out` emits.
  campion::frontend::LoadResult parsed_cisco_core, parsed_juniper_core;
  campion::frontend::LoadResult parsed_cisco_border, parsed_juniper_border;
  campion::core::DiffReport core_report, border_report;
  auto start = std::chrono::steady_clock::now();
  auto parsed = start;
  campion::benchutil::RecordTracedRun([&] {
    start = std::chrono::steady_clock::now();
    parsed_cisco_core = campion::frontend::LoadConfig(
        cisco_core, "university_core_cisco.cfg", campion::ir::Vendor::kCisco);
    parsed_juniper_core = campion::frontend::LoadConfig(
        juniper_core, "university_core_juniper.conf",
        campion::ir::Vendor::kJuniper);
    parsed_cisco_border = campion::frontend::LoadConfig(
        cisco_border, "university_border_cisco.cfg",
        campion::ir::Vendor::kCisco);
    parsed_juniper_border = campion::frontend::LoadConfig(
        juniper_border, "university_border_juniper.conf",
        campion::ir::Vendor::kJuniper);
    parsed = std::chrono::steady_clock::now();
    core_report = campion::core::ConfigDiff(parsed_cisco_core.config,
                                            parsed_juniper_core.config);
    border_report = campion::core::ConfigDiff(parsed_cisco_border.config,
                                              parsed_juniper_border.config);
  });
  auto done = std::chrono::steady_clock::now();

  double parse_seconds =
      std::chrono::duration<double>(parsed - start).count();
  double diff_seconds = std::chrono::duration<double>(done - parsed).count();
  std::cout << "University core+border pairs, full pipeline:\n"
            << "  parse:    " << parse_seconds << " s\n"
            << "  compare:  " << diff_seconds << " s\n"
            << "  total:    " << parse_seconds + diff_seconds
            << " s   (paper: ~3 s compare, < 10 s total)\n"
            << "  core differences reported:   " << core_report.entries.size()
            << "\n"
            << "  border differences reported: "
            << border_report.entries.size() << "\n";
  metrics.Record("parse_seconds", parse_seconds);
  metrics.Record("compare_seconds", diff_seconds);

  // Serial vs pooled compare phase on the same parsed pairs. The pooled
  // report must render byte-identically — the pipeline merges per-pair
  // results in declaration order regardless of completion order.
  auto timed_compare = [&](unsigned num_threads) {
    campion::core::DiffOptions options;
    options.num_threads = num_threads;
    auto t0 = std::chrono::steady_clock::now();
    auto core = campion::core::ConfigDiff(parsed_cisco_core.config,
                                          parsed_juniper_core.config, options);
    auto border = campion::core::ConfigDiff(
        parsed_cisco_border.config, parsed_juniper_border.config, options);
    auto t1 = std::chrono::steady_clock::now();
    return std::make_pair(std::chrono::duration<double>(t1 - t0).count(),
                          core.Render() + border.Render());
  };
  auto [serial_seconds, serial_text] = timed_compare(1);
  auto [parallel_seconds, parallel_text] = timed_compare(0);
  unsigned hw = std::thread::hardware_concurrency();
  std::cout << "  compare serial (1 thread):   " << serial_seconds << " s\n"
            << "  compare pooled (" << (hw == 0 ? 1 : hw)
            << " threads):  " << parallel_seconds << " s\n"
            << "  reports byte-identical:      "
            << (serial_text == parallel_text ? "yes" : "NO (BUG)") << "\n";
  metrics.Record("compare_serial_seconds", serial_seconds);
  metrics.Record("compare_parallel_seconds", parallel_seconds);
  metrics.Record("parallel_threads", hw == 0 ? 1.0 : hw);
  metrics.Record("parallel_speedup",
                 parallel_seconds > 0 ? serial_seconds / parallel_seconds
                                      : 0.0);
  metrics.Record("parallel_output_identical",
                 serial_text == parallel_text ? 1.0 : 0.0);
}

void BM_FullPipelineUniversityPairs(benchmark::State& state) {
  auto scenario = campion::gen::BuildUniversityScenario(900);
  std::string cisco_text =
      campion::cisco::UnparseCiscoConfig(scenario.core.config1);
  std::string juniper_text =
      campion::juniper::UnparseJuniperConfig(scenario.core.config2);
  for (auto _ : state) {
    auto cisco = campion::cisco::ParseCiscoConfig(cisco_text);
    auto juniper = campion::juniper::ParseJuniperConfig(juniper_text);
    auto report = campion::core::ConfigDiff(cisco.config, juniper.config);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FullPipelineUniversityPairs)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "S5.4 runtime: full pipeline on the university pairs",
      PrintRuntime);
}
