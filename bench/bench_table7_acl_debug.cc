// Regenerates Table 7: a localized ACL difference between a Cisco gateway
// router and its Juniper reference — included/excluded packet spaces, a
// concrete example for the non-address fields, and the responsible lines
// on each side.

#include "bench/bench_util.h"
#include "core/config_diff.h"
#include "gen/scenarios.h"

namespace {

void PrintTable7() {
  campion::gen::DataCenterScenario scenario =
      campion::gen::BuildDataCenterScenario();
  // The first bugged gateway pair (action flip on one line).
  const campion::gen::RouterPair& pair = scenario.gateway_pairs[0];
  auto diffs = campion::core::DiffAclPair(pair.config1, pair.config2,
                                          "VM_FILTER_1");
  std::cout << diffs.size() << " ACL difference(s) on " << pair.label
            << " (paper shows one of its three as Table 7)\n\n";
  for (const auto& diff : diffs) {
    std::cout << diff.table << "\n";
  }
}

void BM_DiffGatewayAcls(benchmark::State& state) {
  auto scenario = campion::gen::BuildDataCenterScenario();
  const auto& pair = scenario.gateway_pairs[0];
  for (auto _ : state) {
    auto diffs = campion::core::DiffAclPair(pair.config1, pair.config2,
                                            "VM_FILTER_1");
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_DiffGatewayAcls)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "Table 7: gateway ACL debugging", PrintTable7);
}
