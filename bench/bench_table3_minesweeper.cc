// Regenerates Tables 3 and 5: the Minesweeper-style monolithic baseline on
// the Figure 1 route maps (a single concrete counterexample with no
// localization) and on the static routes (a single packet, no prefix, no
// attributes, no text). Contrast with bench_table2 / bench_table4.

#include "baseline/monolithic.h"
#include "bench/bench_util.h"
#include "tests/testdata.h"

namespace {

void PrintTables() {
  auto cisco = campion::testing::ParseCiscoOrDie(campion::testing::kFig1Cisco);
  auto juniper =
      campion::testing::ParseJuniperOrDie(campion::testing::kFig1Juniper);

  std::cout << "--- Table 3: monolithic check of the Figure 1 route maps "
               "---\n";
  campion::baseline::MonolithicRouteMapChecker checker(
      cisco, *cisco.FindRouteMap("POL"), juniper,
      *juniper.FindRouteMap("POL"));
  std::cout << (checker.Equivalent() ? "equivalent\n" : "NOT equivalent\n");
  if (auto counterexample = checker.Next()) {
    std::cout << counterexample->ToString("cisco_router", "juniper_router");
  }
  std::cout << "(one counterexample; no set of affected prefixes, no "
               "responsible lines)\n\n";

  std::cout << "--- Table 5: monolithic check of the static routes ---\n";
  if (auto counterexample =
          campion::baseline::MonolithicStaticRouteCheck(cisco, juniper)) {
    std::cout << counterexample->ToString("cisco_router", "juniper_router");
  }
  std::cout << "(no prefix, no admin distance, no configuration text)\n";
}

void BM_MonolithicCheckFig1(benchmark::State& state) {
  auto cisco = campion::testing::ParseCiscoOrDie(campion::testing::kFig1Cisco);
  auto juniper =
      campion::testing::ParseJuniperOrDie(campion::testing::kFig1Juniper);
  for (auto _ : state) {
    campion::baseline::MonolithicRouteMapChecker checker(
        cisco, *cisco.FindRouteMap("POL"), juniper,
        *juniper.FindRouteMap("POL"));
    auto counterexample = checker.Next();
    benchmark::DoNotOptimize(counterexample);
  }
}
BENCHMARK(BM_MonolithicCheckFig1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv,
      "Tables 3 and 5: Minesweeper-style baseline (single counterexamples)",
      PrintTables);
}
