// Regenerates Table 2: Campion's output on the Figure 1 route maps — two
// complete differences with Included/Excluded prefix ranges, community
// example, actions, and responsible text. Then times SemanticDiff +
// HeaderLocalize on the pair.

#include "bench/bench_util.h"
#include "core/config_diff.h"
#include "tests/testdata.h"

namespace {

campion::ir::RouterConfig Cisco() {
  return campion::testing::ParseCiscoOrDie(campion::testing::kFig1Cisco);
}
campion::ir::RouterConfig Juniper() {
  return campion::testing::ParseJuniperOrDie(campion::testing::kFig1Juniper);
}

void PrintTable2() {
  auto cisco = Cisco();
  auto juniper = Juniper();
  auto diffs = campion::core::DiffRouteMapPair(cisco, "POL", juniper, "POL");
  std::cout << "Campion finds " << diffs.size()
            << " differences between the Figure 1 route maps (paper: 2)\n\n";
  int index = 1;
  for (const auto& diff : diffs) {
    std::cout << "(" << index++ << ") " << diff.title << "\n"
              << diff.table << "\n";
  }
}

void BM_SemanticDiffFig1(benchmark::State& state) {
  auto cisco = Cisco();
  auto juniper = Juniper();
  for (auto _ : state) {
    auto diffs =
        campion::core::DiffRouteMapPair(cisco, "POL", juniper, "POL");
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_SemanticDiffFig1)->Unit(benchmark::kMillisecond);

void BM_ParseFig1Pair(benchmark::State& state) {
  for (auto _ : state) {
    auto cisco = Cisco();
    auto juniper = Juniper();
    benchmark::DoNotOptimize(cisco);
    benchmark::DoNotOptimize(juniper);
  }
}
BENCHMARK(BM_ParseFig1Pair)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "Table 2: route map differences (Figure 1)", PrintTable2);
}
