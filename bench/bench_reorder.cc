// A/B benchmark for dynamic variable reordering (Rudell sifting,
// src/bdd): runs the same comparisons with --reorder off, sift, and
// group_sift and reports total live BDD nodes (bdd.arena_nodes) and
// compare wall-clock per mode, across the src/gen workloads. The report
// text must be byte-identical in every mode — reordering is a pure
// performance lever — and the summary asserts that parity on every
// workload.
//
// With --bench_out=PATH the per-workload numbers land in
// BENCH_reorder.json (node counts, wall times, and the sifted/declared
// node ratio the EXPERIMENTS.md claim quotes).

#include <chrono>
#include <iomanip>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/config_diff.h"
#include "gen/acl_gen.h"
#include "gen/route_map_gen.h"
#include "gen/scenarios.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using campion::core::DiffOptions;

struct Workload {
  std::string name;
  campion::ir::RouterConfig config1;
  campion::ir::RouterConfig config2;
  DiffOptions options;  // Check toggles; reorder mode is set per run.
};

// Only the semantic checks build BDDs; structural checks would just add
// constant noise to the wall times.
DiffOptions ChecksOnly(bool route_maps, bool acls) {
  DiffOptions options;
  options.check_route_maps = route_maps;
  options.check_acls = acls;
  options.check_static_routes = false;
  options.check_connected_routes = false;
  options.check_ospf = false;
  options.check_bgp_properties = false;
  options.check_admin_distances = false;
  options.num_threads = 1;  // Serial: wall times are comparable per mode.
  return options;
}

std::vector<Workload> BuildWorkloads() {
  std::vector<Workload> workloads;

  // Seeded route-map pair with injected differences: the route-side
  // encoding (prefix ranges, communities, tags, metrics).
  campion::gen::RouteMapGenOptions rm_options;
  rm_options.clauses = 16;
  rm_options.prefix_lists = 6;
  rm_options.entries_per_list = 6;
  rm_options.communities = 8;
  rm_options.seed = 11;
  rm_options.differences = 4;
  campion::gen::GeneratedRouteMapPair rm =
      campion::gen::GenerateRouteMapPair(rm_options);
  // The generator emits bare configs; ConfigDiff pairs route maps through
  // BGP neighbor references, so attach the map to a matching neighbor on
  // both sides.
  for (campion::ir::RouterConfig* config : {&rm.config1, &rm.config2}) {
    campion::ir::BgpProcess bgp;
    bgp.asn = 65000;
    campion::ir::BgpNeighbor neighbor;
    neighbor.ip = campion::util::Ipv4Address(10, 0, 0, 1);
    neighbor.remote_as = 65001;
    neighbor.export_policy = rm.map_name;
    bgp.neighbors.push_back(neighbor);
    config->bgp = bgp;
  }
  workloads.push_back({"routemap_gen", rm.config1, rm.config2,
                       ChecksOnly(/*route_maps=*/true, /*acls=*/false)});

  // Seeded ACL pair: the packet-side encoding (IPs, ports, protocol).
  campion::gen::AclGenOptions acl_options;
  acl_options.rules = 200;
  acl_options.seed = 5;
  acl_options.differences = 6;
  campion::gen::GeneratedAclPair acl =
      campion::gen::GenerateAclPair(acl_options);
  workloads.push_back(
      {"acl_gen",
       campion::gen::WrapAclInConfig(acl.acl1, "acl-r1",
                                     campion::ir::Vendor::kCisco),
       campion::gen::WrapAclInConfig(acl.acl2, "acl-r2",
                                     campion::ir::Vendor::kCisco),
       ChecksOnly(/*route_maps=*/false, /*acls=*/true)});

  // The university core pair: the committed end-to-end scenario with both
  // route-map and ACL sides live.
  campion::gen::UniversityScenario university =
      campion::gen::BuildUniversityScenario();
  workloads.push_back({"university_core", university.core.config1,
                       university.core.config2,
                       ChecksOnly(/*route_maps=*/true, /*acls=*/true)});

  return workloads;
}

struct ModeRun {
  double arena_nodes = 0.0;  // Sum of live nodes across run managers.
  double seconds = 0.0;
  std::string report;
};

ModeRun RunMode(const Workload& workload, DiffOptions::ReorderMode mode) {
  // Traced run so the metrics registry accumulates bdd.arena_nodes across
  // every manager (template + pairs) exactly as `campion --stats` would.
  campion::obs::ResetThreadTrace();
  campion::obs::ProcessMetrics().Reset();
  campion::obs::SetEnabled(true);
  DiffOptions options = workload.options;
  options.reorder = mode;
  auto t0 = std::chrono::steady_clock::now();
  campion::core::DiffReport report = campion::core::ConfigDiff(
      workload.config1, workload.config2, options);
  auto t1 = std::chrono::steady_clock::now();
  campion::obs::SetEnabled(false);
  campion::obs::TakeThreadSpans();

  ModeRun run;
  run.seconds = std::chrono::duration<double>(t1 - t0).count();
  run.report = report.Render();
  for (const auto& [name, value] :
       campion::obs::ProcessMetrics().Snapshot()) {
    if (name == "bdd.arena_nodes") run.arena_nodes = value;
  }
  campion::obs::ProcessMetrics().Reset();
  return run;
}

const char* ModeName(DiffOptions::ReorderMode mode) {
  switch (mode) {
    case DiffOptions::ReorderMode::kOff:
      return "off";
    case DiffOptions::ReorderMode::kSift:
      return "sift";
    case DiffOptions::ReorderMode::kGroupSift:
      return "group_sift";
  }
  return "?";
}

void PrintSummary() {
  auto& metrics = campion::benchutil::BenchMetrics::Instance();
  const DiffOptions::ReorderMode kModes[] = {
      DiffOptions::ReorderMode::kOff, DiffOptions::ReorderMode::kSift,
      DiffOptions::ReorderMode::kGroupSift};

  bool all_identical = true;
  for (const Workload& workload : BuildWorkloads()) {
    std::cout << workload.name << ":\n";
    ModeRun off;
    for (DiffOptions::ReorderMode mode : kModes) {
      ModeRun run = RunMode(workload, mode);
      bool identical = true;
      if (mode == DiffOptions::ReorderMode::kOff) {
        off = run;
      } else {
        identical = run.report == off.report;
        all_identical = all_identical && identical;
      }
      std::cout << "  " << std::left << std::setw(11) << ModeName(mode)
                << std::right << std::setw(9)
                << static_cast<long long>(run.arena_nodes) << " live nodes  "
                << std::fixed << std::setprecision(4) << run.seconds << " s"
                << (identical ? "" : "  REPORT MISMATCH (BUG)") << "\n";
      std::string prefix = workload.name + "_" + ModeName(mode);
      metrics.Record(prefix + "_arena_nodes", run.arena_nodes);
      metrics.RecordUnit(prefix + "_arena_nodes",
                         "live BDD nodes summed over all managers "
                         "(bdd.arena_nodes)");
      metrics.Record(prefix + "_compare_seconds", run.seconds);
      if (mode != DiffOptions::ReorderMode::kOff && off.arena_nodes > 0) {
        double ratio = run.arena_nodes / off.arena_nodes;
        std::cout << "    " << ModeName(mode)
                  << "/off node ratio: " << std::setprecision(3) << ratio
                  << "\n";
        metrics.Record(prefix + "_node_ratio", ratio);
        metrics.RecordUnit(prefix + "_node_ratio",
                           "sifted live nodes / declaration-order live "
                           "nodes (< 1 = reorder shrank the run)");
      }
    }
  }
  std::cout << "report parity across modes: "
            << (all_identical ? "OK (byte-identical)" : "BROKEN") << "\n";
  metrics.Record("report_parity_all_modes", all_identical ? 1.0 : 0.0);
}

void BM_UniversityCoreCompare(benchmark::State& state) {
  campion::gen::UniversityScenario university =
      campion::gen::BuildUniversityScenario();
  DiffOptions options = ChecksOnly(true, true);
  options.reorder = state.range(0) == 0 ? DiffOptions::ReorderMode::kOff
                                        : DiffOptions::ReorderMode::kSift;
  for (auto _ : state) {
    auto report = campion::core::ConfigDiff(university.core.config1,
                                            university.core.config2, options);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_UniversityCoreCompare)
    ->Arg(0)  // reorder off
    ->Arg(1)  // reorder sift
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "BDD variable reordering A/B (off vs sift vs group_sift)",
      PrintSummary);
}
