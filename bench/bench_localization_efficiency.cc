// Regenerates the §5.1 "localization efficiency" claim: for every
// difference Campion reports, the localized configuration text is a
// handful of lines, out of configuration files hundreds to thousands of
// lines long ("all localization results were less than five lines of
// configuration code ... the number of lines that are part of an ACL or
// route map definition is typically more than 100").

#include <algorithm>

#include "bench/bench_util.h"
#include "cisco/cisco_parser.h"
#include "cisco/cisco_unparser.h"
#include "core/config_diff.h"
#include "gen/scenarios.h"
#include "juniper/juniper_parser.h"
#include "juniper/juniper_unparser.h"
#include "util/text_table.h"

namespace {

std::size_t LineCount(const std::string& text) {
  if (text.empty()) return 0;
  return campion::util::SplitLines(text).size();
}

void PrintEfficiency() {
  campion::gen::UniversityScenario scenario =
      campion::gen::BuildUniversityScenario(/*filler_components=*/900);

  // Localization is measured on configurations parsed from native text, so
  // the Text rows carry real source spans (as in the paper's deployments).
  std::string cisco_text =
      campion::cisco::UnparseCiscoConfig(scenario.core.config1);
  std::string juniper_text =
      campion::juniper::UnparseJuniperConfig(scenario.core.config2);
  std::size_t config_lines = LineCount(cisco_text) + LineCount(juniper_text);

  std::size_t policy_lines = 0;
  for (const auto& [name, map] : scenario.core.config1.route_maps) {
    policy_lines += LineCount(campion::cisco::UnparseRouteMap(map));
  }
  for (const auto& [name, acl] : scenario.core.config1.acls) {
    policy_lines += LineCount(campion::cisco::UnparseAcl(acl));
  }

  auto cisco = campion::cisco::ParseCiscoConfig(cisco_text, "core.cfg");
  auto juniper =
      campion::juniper::ParseJuniperConfig(juniper_text, "core.conf");
  campion::core::DiffReport report =
      campion::core::ConfigDiff(cisco.config, juniper.config);

  std::size_t max_text_lines = 0;
  double total_text_lines = 0;
  int localized = 0;
  for (const auto& entry : report.entries) {
    if (entry.kind != campion::core::DifferenceEntry::Kind::kRouteMapSemantic &&
        entry.kind != campion::core::DifferenceEntry::Kind::kAclSemantic &&
        entry.kind != campion::core::DifferenceEntry::Kind::kStructural) {
      continue;
    }
    std::size_t lines = std::max(LineCount(entry.detail.text1),
                                 LineCount(entry.detail.text2));
    max_text_lines = std::max(max_text_lines, lines);
    total_text_lines += static_cast<double>(lines);
    ++localized;
  }

  std::cout << "University core pair (padded to realistic size):\n"
            << "  total configuration lines (both routers): " << config_lines
            << "\n"
            << "  lines inside route maps / ACLs (cisco side): "
            << policy_lines << "  (paper: typically > 100)\n"
            << "  differences localized: " << localized << "\n"
            << "  average localized text size: "
            << (localized > 0 ? total_text_lines / localized : 0)
            << " lines\n"
            << "  maximum localized text size: " << max_text_lines
            << " lines  (paper: all < 5 lines, modulo one Juniper term)\n";
}

void BM_LocalizeUniversityCore(benchmark::State& state) {
  auto scenario = campion::gen::BuildUniversityScenario(200);
  for (auto _ : state) {
    auto report = campion::core::ConfigDiff(scenario.core.config1,
                                            scenario.core.config2);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_LocalizeUniversityCore)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "S5.1 localization efficiency", PrintEfficiency);
}
