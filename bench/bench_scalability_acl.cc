// Regenerates the §5.4 scalability experiment: SemanticDiff on randomly
// generated near-equivalent ACL pairs with 10 injected differences, at
// increasing rule counts. The paper (2.2 GHz CPU): 1000 rules -> under a
// second; 10,000 rules -> ~15 s, with Batfish's parse time (13 s)
// comparable to the diff time. We print the measured diff and parse times
// for the same sweep (absolute numbers differ with hardware; the shape —
// superlinear-but-tractable growth, parse comparable to diff — is the
// reproduced result).

#include <chrono>

#include "bench/bench_util.h"
#include "cisco/cisco_parser.h"
#include "cisco/cisco_unparser.h"
#include "core/semantic_diff.h"
#include "gen/acl_gen.h"
#include "juniper/juniper_parser.h"
#include "juniper/juniper_unparser.h"
#include "util/text_table.h"

namespace {

double DiffSeconds(const campion::ir::Acl& acl1,
                   const campion::ir::Acl& acl2, std::size_t* diffs_found) {
  auto start = std::chrono::steady_clock::now();
  campion::bdd::BddManager mgr;
  campion::encode::PacketLayout layout(mgr, acl1.family);
  auto diffs = campion::core::SemanticDiffAcls(layout, acl1, acl2);
  auto stop = std::chrono::steady_clock::now();
  *diffs_found = diffs.size();
  return std::chrono::duration<double>(stop - start).count();
}

void PrintSweep() {
  campion::util::TextTable table({"Rules", "Injected diffs", "Found diffs",
                                  "SemanticDiff (s)", "Parse both (s)"});
  for (int rules : {100, 500, 1000, 5000, 10000}) {
    campion::gen::AclGenOptions options;
    options.rules = rules;
    options.differences = 10;
    options.seed = 42;
    campion::gen::GeneratedAclPair pair = campion::gen::GenerateAclPair(options);

    std::size_t found = 0;
    double diff_seconds = DiffSeconds(pair.acl1, pair.acl2, &found);
    campion::benchutil::BenchMetrics::Instance().Record(
        "v4_diff_seconds_" + std::to_string(rules), diff_seconds);

    // Parse time: unparse both ACLs to native configs, then re-parse —
    // the analogue of the paper's Batfish parse-time comparison.
    auto cisco_config = campion::gen::WrapAclInConfig(
        pair.acl1, "gw-c", campion::ir::Vendor::kCisco);
    auto juniper_config = campion::gen::WrapAclInConfig(
        pair.acl2, "gw-j", campion::ir::Vendor::kJuniper);
    std::string cisco_text = campion::cisco::UnparseCiscoConfig(cisco_config);
    std::string juniper_text =
        campion::juniper::UnparseJuniperConfig(juniper_config);
    auto start = std::chrono::steady_clock::now();
    auto parsed_cisco = campion::cisco::ParseCiscoConfig(cisco_text);
    auto parsed_juniper = campion::juniper::ParseJuniperConfig(juniper_text);
    auto stop = std::chrono::steady_clock::now();
    double parse_seconds =
        std::chrono::duration<double>(stop - start).count();
    benchmark::DoNotOptimize(parsed_cisco);
    benchmark::DoNotOptimize(parsed_juniper);

    char diff_buffer[32];
    char parse_buffer[32];
    snprintf(diff_buffer, sizeof(diff_buffer), "%.3f", diff_seconds);
    snprintf(parse_buffer, sizeof(parse_buffer), "%.3f", parse_seconds);
    table.AddRow({std::to_string(rules), "10", std::to_string(found),
                  diff_buffer, parse_buffer});
  }
  std::cout << table.Render();
  std::cout << "\nPaper (2.2 GHz): 1000 rules < 1 s; 10,000 rules ~15 s; "
               "Batfish parse ~13 s for the 10,000 case.\n";

  // The same sweep on IPv6 ACLs: the symbolic address fields widen from 32
  // to 128 bits (the paper's experiment is v4-only; this quantifies the
  // width-parametric encoding's cost on the same rule counts).
  campion::util::TextTable table6({"Rules (IPv6)", "Injected diffs",
                                   "Found diffs", "SemanticDiff (s)"});
  for (int rules : {100, 500, 1000, 5000}) {
    campion::gen::AclGenOptions options;
    options.rules = rules;
    options.differences = 10;
    options.seed = 42;
    options.family = campion::util::AddressFamily::kIpv6;
    campion::gen::GeneratedAclPair pair =
        campion::gen::GenerateAclPair(options);
    std::size_t found = 0;
    double diff_seconds = DiffSeconds(pair.acl1, pair.acl2, &found);
    campion::benchutil::BenchMetrics::Instance().Record(
        "v6_diff_seconds_" + std::to_string(rules), diff_seconds);
    char diff_buffer[32];
    snprintf(diff_buffer, sizeof(diff_buffer), "%.3f", diff_seconds);
    table6.AddRow({std::to_string(rules), "10", std::to_string(found),
                   diff_buffer});
  }
  std::cout << "\n" << table6.Render();
}

void BM_SemanticDiffAcl(benchmark::State& state) {
  campion::gen::AclGenOptions options;
  options.rules = static_cast<int>(state.range(0));
  options.differences = 10;
  options.seed = 42;
  campion::gen::GeneratedAclPair pair = campion::gen::GenerateAclPair(options);
  for (auto _ : state) {
    campion::bdd::BddManager mgr;
    campion::encode::PacketLayout layout(mgr);
    auto diffs =
        campion::core::SemanticDiffAcls(layout, pair.acl1, pair.acl2);
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_SemanticDiffAcl)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_SemanticDiffAclV6(benchmark::State& state) {
  campion::gen::AclGenOptions options;
  options.rules = static_cast<int>(state.range(0));
  options.differences = 10;
  options.seed = 42;
  options.family = campion::util::AddressFamily::kIpv6;
  campion::gen::GeneratedAclPair pair = campion::gen::GenerateAclPair(options);
  for (auto _ : state) {
    campion::bdd::BddManager mgr;
    campion::encode::PacketLayout layout(mgr,
                                         campion::util::AddressFamily::kIpv6);
    auto diffs =
        campion::core::SemanticDiffAcls(layout, pair.acl1, pair.acl2);
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_SemanticDiffAclV6)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "S5.4 scalability: SemanticDiff on generated ACLs",
      PrintSweep);
}
