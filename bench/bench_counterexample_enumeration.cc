// Regenerates the §2.1 counterexample-enumeration experiment: how many
// one-at-a-time counterexamples does the Minesweeper-style baseline need
// before the operator has seen (a) both difference classes of Figure 1 and
// (b) every prefix range relevant to Difference 1? The paper measured 7
// samples for (b), and 27 to see a Difference-1 violation at all after
// weakening the Cisco config from `le 32` to `le 31`. Our deterministic
// model order stands in for Z3's, so the exact counts differ; the *shape*
// — one complete Campion report vs. many baseline samples — is the result.

#include <algorithm>
#include <string>

#include "baseline/monolithic.h"
#include "bench/bench_util.h"
#include "core/semantic_diff.h"
#include "encode/policy_encoder.h"
#include "tests/testdata.h"

namespace {

using campion::bdd::BddManager;
using campion::bdd::BddRef;

struct Enumeration {
  int samples_until_both_classes = -1;
  int samples_until_all_d1_ranges = -1;
  int samples_until_first_d1 = -1;
  int total_samples = 0;
};

// How each returned model is excluded from later queries:
//   kConcrete — block exactly the concrete route advertisement (every
//               encoding of it), like a blocking clause over all atoms;
//               successive models then differ minimally and enumeration
//               crawls (the pathological end of "fragile").
//   kPathCube — block the whole satisfying path cube (don't-cares left
//               free), like a blocking clause over the atoms the solver
//               actually decided; this is the closer analogue of the
//               paper's Z3 behavior and yields small finite counts.
enum class BlockMode { kConcrete, kPathCube };

// Runs the baseline enumeration against ground-truth difference classes
// computed by Campion in the same symbolic space.
Enumeration Enumerate(const campion::ir::RouterConfig& cisco,
                      const campion::ir::RouterConfig& juniper,
                      campion::baseline::CounterexampleOrder order,
                      BlockMode block_mode, int max_samples) {
  BddManager mgr;
  std::vector<campion::util::Community> communities = cisco.AllCommunities();
  auto more = juniper.AllCommunities();
  communities.insert(communities.end(), more.begin(), more.end());
  campion::encode::RouteAdvLayout layout(mgr, std::move(communities));

  auto diffs = campion::core::SemanticDiffRouteMaps(
      layout, cisco, *cisco.FindRouteMap("POL"), juniper,
      *juniper.FindRouteMap("POL"));
  // Ground truth: the two difference classes (Table 2a = the one not
  // covering the whole space; Table 2b = the one that does).
  BddRef d1 = campion::bdd::kFalse;
  BddRef d2 = campion::bdd::kFalse;
  for (const auto& diff : diffs) {
    // Difference 1 mentions the NETS prefix list in its Cisco text.
    if (diff.text1.find("deny 10") != std::string::npos) {
      d1 = mgr.Or(d1, diff.input_set);
    } else {
      d2 = mgr.Or(d2, diff.input_set);
    }
  }
  // The prefix ranges relevant to Difference 1: its two NETS windows.
  std::vector<BddRef> d1_ranges;
  for (const auto& prefix :
       {campion::util::Prefix(campion::util::Ipv4Address(10, 9, 0, 0), 16),
        campion::util::Prefix(campion::util::Ipv4Address(10, 100, 0, 0),
                              16)}) {
    d1_ranges.push_back(layout.MatchPrefixRange(
        campion::util::PrefixRange(prefix, 16, 32)));
  }

  BddRef remaining = mgr.Or(d1, d2);
  std::vector<bool> range_seen(d1_ranges.size(), false);
  bool class1_seen = false;
  bool class2_seen = false;

  Enumeration result;
  for (int sample = 1; sample <= max_samples; ++sample) {
    auto cube = order == campion::baseline::CounterexampleOrder::kLexMin
                    ? mgr.MinSat(remaining)
                    : mgr.AnySat(remaining);
    if (!cube) break;
    result.total_samples = sample;
    campion::encode::RouteAdvExample example = layout.Decode(*cube);

    BddRef concrete;
    if (block_mode == BlockMode::kConcrete) {
      // Block every encoding of this concrete advertisement.
      concrete = layout.MatchExactPrefix(example.prefix);
      for (const auto& community : layout.communities()) {
        bool carried = std::find(example.communities.begin(),
                                 example.communities.end(),
                                 community) != example.communities.end();
        BddRef has = layout.HasCommunity(community);
        concrete = mgr.And(concrete, carried ? has : mgr.Not(has));
      }
      concrete = mgr.And(concrete, layout.TagEquals(example.tag));
      concrete = mgr.And(concrete, layout.ProtocolIs(example.protocol));
    } else {
      // Block the satisfying path cube (decided variables only).
      concrete = mgr.True();
      for (std::size_t v = 0; v < cube->size(); ++v) {
        if ((*cube)[v] == 1) {
          concrete = mgr.And(concrete, mgr.VarTrue(static_cast<campion::bdd::Var>(v)));
        } else if ((*cube)[v] == 0 &&
                   order == campion::baseline::CounterexampleOrder::kLexMin) {
          // MinSat cubes are total; keep only the variables the BDD path
          // actually constrained by re-deriving them from AnySat.
          continue;
        } else if ((*cube)[v] == 0) {
          concrete = mgr.And(concrete,
                             mgr.VarFalse(static_cast<campion::bdd::Var>(v)));
        }
      }
    }

    if (mgr.Intersects(concrete, d1)) {
      class1_seen = true;
      if (result.samples_until_first_d1 < 0) {
        result.samples_until_first_d1 = sample;
      }
      for (std::size_t r = 0; r < d1_ranges.size(); ++r) {
        if (mgr.Intersects(concrete, d1_ranges[r])) range_seen[r] = true;
      }
    }
    if (mgr.Intersects(concrete, d2)) class2_seen = true;

    if (class1_seen && class2_seen &&
        result.samples_until_both_classes < 0) {
      result.samples_until_both_classes = sample;
    }
    bool all_ranges = true;
    for (bool seen : range_seen) all_ranges = all_ranges && seen;
    if (all_ranges && result.samples_until_all_d1_ranges < 0) {
      result.samples_until_all_d1_ranges = sample;
    }
    if (result.samples_until_both_classes > 0 &&
        result.samples_until_all_d1_ranges > 0) {
      break;
    }
    remaining = mgr.Diff(remaining, concrete);
  }
  return result;
}

std::string Show(int count) {
  return count < 0 ? "not reached" : std::to_string(count);
}

void PrintExperiment() {
  auto cisco = campion::testing::ParseCiscoOrDie(campion::testing::kFig1Cisco);
  auto juniper =
      campion::testing::ParseJuniperOrDie(campion::testing::kFig1Juniper);

  // The mutated variant: `le 32` -> `le 31` on the second NETS entry.
  std::string mutated_text = campion::testing::kFig1Cisco;
  auto pos = mutated_text.find("10.100.0.0/16 le 32");
  mutated_text.replace(pos, std::string("10.100.0.0/16 le 32").size(),
                       "10.100.0.0/16 le 31");
  auto mutated = campion::testing::ParseCiscoOrDie(mutated_text);

  struct Config {
    campion::baseline::CounterexampleOrder order;
    BlockMode block;
    const char* name;
  };
  const Config configs[] = {
      {campion::baseline::CounterexampleOrder::kFirstPath,
       BlockMode::kPathCube,
       "first-path models, path-cube blocking (Z3-like)"},
      {campion::baseline::CounterexampleOrder::kFirstPath,
       BlockMode::kConcrete,
       "first-path models, concrete blocking (pathological)"},
      {campion::baseline::CounterexampleOrder::kLexMin, BlockMode::kConcrete,
       "lexicographic models, concrete blocking (pathological)"},
  };
  const int kMax = 500;
  for (const Config& config : configs) {
    std::cout << "\n--- " << config.name << " (cap " << kMax
              << " samples) ---\n";
    Enumeration base =
        Enumerate(cisco, juniper, config.order, config.block, kMax);
    std::cout << "original configs:\n"
              << "  samples until both difference classes seen: "
              << Show(base.samples_until_both_classes) << "\n"
              << "  samples until first Difference-1 violation: "
              << Show(base.samples_until_first_d1) << "\n"
              << "  samples until every Difference-1 prefix range seen: "
              << Show(base.samples_until_all_d1_ranges)
              << "  (paper: 7 with Z3)\n";
    Enumeration weak =
        Enumerate(mutated, juniper, config.order, config.block, kMax);
    std::cout << "after le 32 -> le 31 mutation:\n"
              << "  samples until first Difference-1 violation: "
              << Show(weak.samples_until_first_d1)
              << "  (paper: 27 with Z3)\n";
  }
  std::cout << "\nCampion needs exactly 1 run: both classes are reported "
               "completely, with all ranges (Table 2).\n";
}

void BM_EnumerateTenCounterexamples(benchmark::State& state) {
  auto cisco = campion::testing::ParseCiscoOrDie(campion::testing::kFig1Cisco);
  auto juniper =
      campion::testing::ParseJuniperOrDie(campion::testing::kFig1Juniper);
  for (auto _ : state) {
    campion::baseline::MonolithicRouteMapChecker checker(
        cisco, *cisco.FindRouteMap("POL"), juniper,
        *juniper.FindRouteMap("POL"));
    for (int i = 0; i < 10; ++i) {
      auto counterexample = checker.Next();
      if (!counterexample) break;
      benchmark::DoNotOptimize(counterexample);
    }
  }
}
BENCHMARK(BM_EnumerateTenCounterexamples)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv,
      "S2.1 experiment: counterexamples needed vs Campion's complete output",
      PrintExperiment);
}
