#pragma once

// Shared helpers for the benchmark/report binaries. Each bench binary
// regenerates one table or figure of the paper: it first prints the
// reproduced artifact (so `./bench_tableN` output can be compared against
// the paper directly), then runs google-benchmark timings for the
// operations involved.
//
// Binaries may additionally record named metrics (wall times, throughput,
// kernel counters) with BenchMetrics::Record; passing --bench_out=PATH
// writes them as a flat JSON object, giving successive PRs a perf
// trajectory to diff (bench/run_bench.sh drives this).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_report.h"
#include "util/rss.h"

namespace campion::benchutil {

// Collects named numeric metrics in insertion order. One instance per
// bench binary (a function-local singleton keeps the header self-contained).
class BenchMetrics {
 public:
  static BenchMetrics& Instance() {
    static BenchMetrics metrics;
    return metrics;
  }

  void Record(const std::string& name, double value) {
    values_.emplace_back(name, value);
  }

  // Documents what one unit of `name` means (for rates: what one "op" is).
  // Emitted as a sibling `"<name>_unit"` string next to the metric, so a
  // trajectory reader never has to guess why two `*_ops_per_sec` values are
  // orders of magnitude apart.
  void RecordUnit(const std::string& name, const std::string& unit) {
    units_.emplace_back(name, unit);
  }

  // Records a rate and its unit descriptor together.
  void RecordRate(const std::string& name, double value,
                  const std::string& unit) {
    Record(name, value);
    RecordUnit(name, unit);
  }

  bool empty() const { return values_.empty(); }

  // Writes {"name": value, ...}. Integral values print without a decimal
  // point so counters stay grep-friendly. A metric with a registered unit
  // is followed by its `"<name>_unit"` descriptor string.
  std::string ToJson(const std::string& bench_name) const {
    std::ostringstream out;
    out << "{\n  \"bench\": \"" << bench_name << "\"";
    for (const auto& [name, value] : values_) {
      out << ",\n  \"" << name << "\": ";
      if (value == static_cast<double>(static_cast<long long>(value))) {
        out << static_cast<long long>(value);
      } else {
        out << value;
      }
      for (const auto& [unit_name, unit] : units_) {
        if (unit_name == name) {
          out << ",\n  \"" << name << "_unit\": \"" << unit << "\"";
          break;
        }
      }
    }
    out << "\n}\n";
    return out.str();
  }

 private:
  std::vector<std::pair<std::string, double>> values_;
  std::vector<std::pair<std::string, std::string>> units_;
};

// Runs `fn` with tracing enabled and folds the result into BenchMetrics:
// per-phase wall-clock totals as "phase_<span name>_seconds" and the obs
// counter snapshot as "obs_<counter, dots flattened>". This is how the
// BENCH_*.json trajectory files gain per-phase breakdowns — the same
// spans/counters `campion --trace_out` reports (docs/trace_format.md).
// Tracing is switched off again before returning so the google-benchmark
// loops that follow run uninstrumented.
template <typename Fn>
inline void RecordTracedRun(Fn&& fn) {
  obs::ResetThreadTrace();
  obs::ProcessMetrics().Reset();
  obs::SetEnabled(true);
  fn();
  obs::SetEnabled(false);
  auto& metrics = BenchMetrics::Instance();
  std::vector<obs::Span> spans = obs::TakeThreadSpans();
  for (const auto& phase : obs::PhaseTotals(spans)) {
    metrics.Record("phase_" + phase.name + "_seconds",
                   static_cast<double>(phase.total_ns) / 1e9);
  }
  for (const auto& [name, value] :
       obs::ProcessMetrics().Snapshot()) {
    std::string flat = name;
    std::replace(flat.begin(), flat.end(), '.', '_');
    metrics.Record("obs_" + flat, value);
  }
  // Peak-memory fields for the BENCH_*.json trajectory: the process
  // high-water RSS after the traced workload (zero on platforms without
  // /proc/self/status). The BDD byte accounting already rides along above
  // as obs_bdd_mem_*.
  util::MemorySample sample = util::SampleProcessMemory();
  metrics.Record("peak_rss_bytes",
                 static_cast<double>(sample.peak_rss_bytes));
}

inline void PrintHeader(const std::string& title) {
  std::cout << "\n==================================================\n"
            << title << "\n"
            << "==================================================\n";
}

// Extracts --bench_out=PATH from argv (removing it so google-benchmark
// does not reject the unknown flag). Returns the path, or "" if absent.
inline std::string ExtractBenchOutPath(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    constexpr const char* kFlag = "--bench_out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      path = argv[i] + std::strlen(kFlag);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

// Derives the bench name from argv[0] ("/path/to/bench_bdd" -> "bench_bdd").
inline std::string BenchNameFromArgv0(const char* argv0) {
  std::string name = argv0 == nullptr ? "bench" : argv0;
  std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name;
}

// Runs the artifact printer, then benchmark main, then (if --bench_out was
// given) dumps recorded metrics as JSON.
template <typename Fn>
int RunBench(int argc, char** argv, const std::string& title, Fn&& print) {
  std::string bench_out = ExtractBenchOutPath(&argc, argv);
  PrintHeader(title);
  print();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!bench_out.empty()) {
    std::ofstream file(bench_out);
    if (!file) {
      std::cerr << "error: cannot write " << bench_out << "\n";
      return 1;
    }
    file << BenchMetrics::Instance().ToJson(BenchNameFromArgv0(argv[0]));
    std::cout << "metrics written to " << bench_out << "\n";
  }
  return 0;
}

}  // namespace campion::benchutil
