#pragma once

// Shared helpers for the benchmark/report binaries. Each bench binary
// regenerates one table or figure of the paper: it first prints the
// reproduced artifact (so `./bench_tableN` output can be compared against
// the paper directly), then runs google-benchmark timings for the
// operations involved.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

namespace campion::benchutil {

inline void PrintHeader(const std::string& title) {
  std::cout << "\n==================================================\n"
            << title << "\n"
            << "==================================================\n";
}

// Runs the artifact printer, then benchmark main.
template <typename Fn>
int RunBench(int argc, char** argv, const std::string& title, Fn&& print) {
  PrintHeader(title);
  print();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace campion::benchutil
