// Fleet-scale batch benchmark for campion_serve's POST /batch and the
// incremental result cache (src/server/result_cache.h).
//
//   1. Cold batch: a generated 64-pair fleet POSTed as one /batch request
//      against a fresh daemon — every pair pays parse + template + diff +
//      render.
//   2. Warm batch: the identical fleet re-POSTed — every pair replays from
//      the result cache (X-Campion-Result-Cache: hit), byte-identical.
//   3. Incremental re-diff: one pair of the fleet regenerated, the batch
//      re-POSTed — 63 replays + 1 recompute. The acceptance bar is
//      cold / incremental >= --fleet_min_speedup (default 5).
//   4. Parity: the incremental response must be byte-identical to a
//      result-cache-OFF daemon's response to the same batch at
//      http_threads 1 and 4 (the batch merge is declaration-ordered, so
//      neither the cache nor any worker count may change a byte).
//
// Requests go over real loopback HTTP; with --bench_out=PATH the numbers
// land in BENCH_fleet.json. Exits 1 when the speedup bar or parity fails.

#include <chrono>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cisco/cisco_unparser.h"
#include "gen/acl_gen.h"
#include "server/http.h"
#include "server/service.h"
#include "util/json.h"

namespace {

using campion::server::DiffService;
using campion::server::HttpClientResponse;
using campion::server::HttpFetch;
using campion::server::HttpServer;
using campion::server::ServiceOptions;

double g_min_speedup = 5.0;

// An in-process daemon on an ephemeral loopback port.
struct Daemon {
  explicit Daemon(const ServiceOptions& options, int http_threads = 1)
      : service(options),
        server(
            "127.0.0.1", 0,
            [this](const campion::server::HttpRequest& request) {
              return service.Handle(request);
            },
            /*num_workers=*/http_threads) {
    std::string error;
    if (!server.Start(&error)) {
      std::cerr << "error: cannot start daemon: " << error << "\n";
      std::exit(1);
    }
  }
  ~Daemon() { server.Stop(); }

  HttpClientResponse Post(const std::string& target, const std::string& body) {
    HttpClientResponse response;
    std::string error;
    if (!HttpFetch("127.0.0.1", server.port(), "POST", target, body, &response,
                   &error)) {
      std::cerr << "error: request failed: " << error << "\n";
      std::exit(1);
    }
    return response;
  }

  HttpClientResponse Get(const std::string& target) {
    HttpClientResponse response;
    std::string error;
    if (!HttpFetch("127.0.0.1", server.port(), "GET", target, "", &response,
                   &error)) {
      std::cerr << "error: request failed: " << error << "\n";
      std::exit(1);
    }
    return response;
  }

  DiffService service;
  HttpServer server;
};

constexpr int kFleetPairs = 64;

struct FleetPair {
  std::string name;
  std::string config1;
  std::string config2;
};

FleetPair BuildPair(int index, std::uint64_t seed) {
  campion::gen::AclGenOptions options;
  // Varying rule counts and seeds: distinct structural keys per pair, a
  // spread of sizes for the largest-first scheduler to chew on.
  options.rules = 30 + (index % 8) * 10;
  options.seed = seed;
  options.differences = index % 4;  // Some pairs are equivalent.
  options.name = "FLEET_ACL_" + std::to_string(index);
  campion::gen::GeneratedAclPair acls = campion::gen::GenerateAclPair(options);
  const std::string host = "fleet" + std::to_string(index);
  FleetPair pair;
  pair.name = "pair" + std::to_string(index);
  pair.config1 = campion::cisco::UnparseCiscoConfig(campion::gen::WrapAclInConfig(
      acls.acl1, host + "a", campion::ir::Vendor::kCisco));
  pair.config2 = campion::cisco::UnparseCiscoConfig(campion::gen::WrapAclInConfig(
      acls.acl2, host + "b", campion::ir::Vendor::kCisco));
  return pair;
}

std::vector<FleetPair> BuildFleet() {
  std::vector<FleetPair> fleet;
  fleet.reserve(kFleetPairs);
  for (int i = 0; i < kFleetPairs; ++i) {
    fleet.push_back(BuildPair(i, /*seed=*/1000 + i));
  }
  return fleet;
}

std::string BatchBody(const std::vector<FleetPair>& fleet) {
  std::string body = "{\"pairs\":[";
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"name\":\"" + fleet[i].name + "\",\"config1\":\"" +
            campion::util::JsonEscape(fleet[i].config1) +
            "\",\"config2\":\"" +
            campion::util::JsonEscape(fleet[i].config2) + "\"}";
  }
  body += "]}";
  return body;
}

ServiceOptions FleetDefaults(bool result_cache) {
  ServiceOptions options;
  options.diff.reorder = campion::core::DiffOptions::ReorderMode::kSift;
  options.result_cache = result_cache;
  return options;
}

std::string HeaderValue(const HttpClientResponse& response,
                        const std::string& name) {
  for (const auto& [key, value] : response.headers) {
    if (key == name) return value;
  }
  return "";
}

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

double ScrapeMetric(const std::string& metrics, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t pos = metrics.find(needle);
  if (pos == std::string::npos) return 0.0;
  while (pos != 0 && metrics[pos - 1] != '\n') {
    pos = metrics.find(needle, pos + 1);
    if (pos == std::string::npos) return 0.0;
  }
  return std::strtod(metrics.c_str() + pos + needle.size(), nullptr);
}

void PrintSummary() {
  auto& metrics = campion::benchutil::BenchMetrics::Instance();
  std::vector<FleetPair> fleet = BuildFleet();
  const std::string body_full = BatchBody(fleet);
  // The "one router changed" push: pair 0 regenerated from a fresh seed.
  fleet[0] = BuildPair(0, /*seed=*/977001);
  const std::string body_changed = BatchBody(fleet);

  std::cout << kFleetPairs << "-pair fleet, one POST /batch per push:\n";
  metrics.Record("fleet_pairs", kFleetPairs);

  Daemon daemon(FleetDefaults(/*result_cache=*/true));
  auto t0 = std::chrono::steady_clock::now();
  const HttpClientResponse cold = daemon.Post("/batch", body_full);
  auto t1 = std::chrono::steady_clock::now();
  const double cold_seconds = Seconds(t0, t1);

  t0 = std::chrono::steady_clock::now();
  const HttpClientResponse warm = daemon.Post("/batch", body_full);
  t1 = std::chrono::steady_clock::now();
  const double warm_seconds = Seconds(t0, t1);
  const bool warm_parity = warm.body == cold.body;
  const bool warm_all_hits = HeaderValue(warm, "x-campion-result-cache") ==
                             "hit";  // HttpFetch lower-cases header names.

  t0 = std::chrono::steady_clock::now();
  const HttpClientResponse incremental = daemon.Post("/batch", body_changed);
  t1 = std::chrono::steady_clock::now();
  const double incremental_seconds = Seconds(t0, t1);

  const double speedup =
      incremental_seconds > 0 ? cold_seconds / incremental_seconds : 0.0;
  const bool speedup_ok = speedup >= g_min_speedup;
  std::cout << "  cold batch (64 full pipelines):      " << std::fixed
            << std::setprecision(4) << cold_seconds << " s\n"
            << "  warm batch (64 replays):             " << warm_seconds
            << " s, parity "
            << (warm_parity ? "OK" : "BROKEN") << ", header "
            << (warm_all_hits ? "hit" : "NOT-hit") << "\n"
            << "  incremental (1 changed, 63 replays): "
            << incremental_seconds << " s\n"
            << "  cold/incremental speedup: " << std::setprecision(2)
            << speedup << "x (>= " << g_min_speedup << " required: "
            << (speedup_ok ? "PASS" : "FAIL") << ")\n";

  const std::string metrics_body = daemon.Get("/metrics").body;
  const double cache_hits =
      ScrapeMetric(metrics_body, "server.result_cache_hits");
  const double cache_misses =
      ScrapeMetric(metrics_body, "server.result_cache_misses");
  std::cout << "  result cache: " << static_cast<long long>(cache_hits)
            << " hits / " << static_cast<long long>(cache_misses)
            << " misses across the three pushes\n";

  metrics.Record("cold_batch_seconds", cold_seconds);
  metrics.RecordUnit("cold_batch_seconds",
                     "one 64-pair POST /batch against an empty result cache");
  metrics.Record("warm_batch_seconds", warm_seconds);
  metrics.Record("incremental_batch_seconds", incremental_seconds);
  metrics.RecordUnit("incremental_batch_seconds",
                     "the same fleet with 1 of 64 pairs changed: 63 cache "
                     "replays + 1 recompute");
  metrics.Record("incremental_speedup", speedup);
  metrics.RecordUnit("incremental_speedup",
                     "cold batch wall / incremental re-diff wall (>= "
                     "--fleet_min_speedup required)");
  metrics.Record("warm_parity", warm_parity ? 1.0 : 0.0);
  metrics.Record("warm_all_hits", warm_all_hits ? 1.0 : 0.0);
  metrics.Record("result_cache_hits", cache_hits);
  metrics.Record("result_cache_misses", cache_misses);

  // --- parity vs a cache-off daemon at http_threads 1 and 4 -------------
  bool parity_ok = true;
  for (const int http_threads : {1, 4}) {
    Daemon baseline(FleetDefaults(/*result_cache=*/false), http_threads);
    const HttpClientResponse reference =
        baseline.Post("/batch", body_changed);
    const bool parity = reference.body == incremental.body;
    parity_ok = parity_ok && parity;
    std::cout << "  parity vs cache-off @ http_threads=" << http_threads
              << ": " << (parity ? "OK (byte-identical)" : "BROKEN") << "\n";
    metrics.Record(
        "parity_http_threads_" + std::to_string(http_threads),
        parity ? 1.0 : 0.0);
  }

  if (!warm_parity || !warm_all_hits || !parity_ok || !speedup_ok) {
    std::cerr << "bench_fleet: acceptance FAILED (parity or speedup)\n";
    std::exit(1);
  }
}

void BM_WarmBatchRequest(benchmark::State& state) {
  const std::vector<FleetPair> fleet = BuildFleet();
  const std::string body = BatchBody(fleet);
  Daemon daemon(FleetDefaults(/*result_cache=*/true));
  daemon.Post("/batch", body);  // Populate the result cache.
  for (auto _ : state) {
    HttpClientResponse response = daemon.Post("/batch", body);
    benchmark::DoNotOptimize(response.body);
  }
}
BENCHMARK(BM_WarmBatchRequest)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --fleet_min_speedup=X (the acceptance bar; CI passes a generous
  // value so shared-runner noise cannot flake the gate).
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--fleet_min_speedup=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      g_min_speedup = std::strtod(argv[i] + std::strlen(kFlag), nullptr);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return campion::benchutil::RunBench(
      argc, argv,
      "campion_serve fleet batch + incremental result-cache re-diff",
      PrintSummary);
}
