// Regenerates Table 6: data-center network results. Runs Campion over the
// synthesized redundant-router pairs (Scenario 1), router replacements
// (Scenario 2), and gateway ACLs (Scenario 3), and prints the per-scenario
// difference counts. Also reproduces the §5.1 running-time claim (each
// router pair compared well under five seconds).

#include "bench/bench_util.h"
#include "core/config_diff.h"
#include "gen/scenarios.h"
#include "util/text_table.h"

namespace {

using campion::core::ConfigDiff;
using campion::core::DifferenceEntry;

void PrintTable6() {
  campion::gen::DataCenterScenario scenario =
      campion::gen::BuildDataCenterScenario();

  int s1_bgp = 0;
  int s1_static = 0;
  for (const auto& pair : scenario.redundant_pairs) {
    auto report = ConfigDiff(pair.config1, pair.config2);
    s1_bgp += report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic);
    for (const auto& entry : report.entries) {
      if (entry.kind == DifferenceEntry::Kind::kStructural &&
          entry.title.find("Static Route") != std::string::npos) {
        ++s1_static;
      }
    }
  }
  int s2_bgp = 0;
  for (const auto& pair : scenario.replacements) {
    auto report = ConfigDiff(pair.config1, pair.config2);
    s2_bgp += report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic);
  }
  int s3_acl = 0;
  for (const auto& pair : scenario.gateway_pairs) {
    auto report = ConfigDiff(pair.config1, pair.config2);
    if (report.CountOf(DifferenceEntry::Kind::kAclSemantic) > 0) ++s3_acl;
  }

  campion::util::TextTable table(
      {"Scenario", "Component", "Structural or Semantic", "Differences",
       "Paper"});
  table.AddRow({"Scenario 1", "BGP", "Semantic", std::to_string(s1_bgp),
                "5"});
  table.AddRow({"Scenario 1", "Static Routes", "Structural",
                std::to_string(s1_static), "2"});
  table.AddRow({"Scenario 2", "BGP", "Semantic", std::to_string(s2_bgp),
                "4"});
  table.AddRow({"Scenario 3", "ACLs", "Semantic", std::to_string(s3_acl),
                "3"});
  std::cout << table.Render();
  std::cout << "\n(" << scenario.redundant_pairs.size()
            << " redundant pairs, " << scenario.replacements.size()
            << " replacements, " << scenario.gateway_pairs.size()
            << " gateway pairs checked)\n";
}

void BM_CompareRedundantPair(benchmark::State& state) {
  auto scenario = campion::gen::BuildDataCenterScenario();
  const auto& pair = scenario.redundant_pairs[0];
  for (auto _ : state) {
    auto report = ConfigDiff(pair.config1, pair.config2);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CompareRedundantPair)->Unit(benchmark::kMillisecond);

void BM_CompareAllReplacements(benchmark::State& state) {
  auto scenario = campion::gen::BuildDataCenterScenario();
  for (auto _ : state) {
    for (const auto& pair : scenario.replacements) {
      auto report = ConfigDiff(pair.config1, pair.config2);
      benchmark::DoNotOptimize(report);
    }
  }
}
BENCHMARK(BM_CompareAllReplacements)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return campion::benchutil::RunBench(
      argc, argv, "Table 6: data center network results", PrintTable6);
}
