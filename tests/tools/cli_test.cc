// End-to-end tests of the `campion` CLI binary: exit codes, text and JSON
// output, single-component modes, and batch mode. The binary path and a
// scratch directory come from compile definitions set in CMake.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cisco/cisco_unparser.h"
#include "juniper/juniper_unparser.h"
#include "tests/testdata.h"

#ifndef CAMPION_CLI_PATH
#error "CAMPION_CLI_PATH must be defined by the build"
#endif

namespace campion {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunCliRedirected(const std::string& args,
                           const std::string& redirect) {
  std::string command =
      std::string(CAMPION_CLI_PATH) + " " + args + " " + redirect;
  FILE* pipe = popen(command.c_str(), "r");
  RunResult result;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  std::size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

// Captures stdout and stderr interleaved (the historical default).
RunResult RunCli(const std::string& args) {
  return RunCliRedirected(args, "2>&1");
}

// Captures stdout only — for checks that the report stream stays
// byte-identical while --stats writes its tables to stderr.
RunResult RunCliStdout(const std::string& args) {
  return RunCliRedirected(args, "2>/dev/null");
}

// Captures stderr only.
RunResult RunCliStderr(const std::string& args) {
  return RunCliRedirected(args, "2>&1 1>/dev/null");
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One directory per process: ctest runs each test case as its own
    // process, possibly in parallel, and a shared path would let one
    // process truncate a config file while another reads it.
    dir_ = std::filesystem::temp_directory_path() /
           ("campion-cli-test-" + std::to_string(getpid()));
    std::filesystem::create_directories(dir_);
    Write("cisco.cfg", testing::kFig1Cisco);
    Write("juniper.conf", testing::kFig1Juniper);
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static void Write(const std::string& name, const std::string& content) {
    std::ofstream file(dir_ / name);
    file << content;
  }

  static std::string Path(const std::string& name) {
    return (dir_ / name).string();
  }

  static std::filesystem::path dir_;
};

std::filesystem::path CliTest::dir_;

TEST_F(CliTest, EquivalentConfigsExitZero) {
  RunResult result = RunCli(Path("cisco.cfg") + " " + Path("cisco.cfg"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("behaviorally equivalent"),
            std::string::npos);
}

TEST_F(CliTest, DifferentConfigsExitTwoAndLocalize) {
  RunResult result = RunCli(Path("cisco.cfg") + " " + Path("juniper.conf"));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("Included Prefixes"), std::string::npos);
  EXPECT_NE(result.output.find("route-map POL deny 10"), std::string::npos);
  EXPECT_NE(result.output.find("Summary:"), std::string::npos);
}

TEST_F(CliTest, QuietSuppressesOutput) {
  RunResult result =
      RunCli("--quiet " + Path("cisco.cfg") + " " + Path("juniper.conf"));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_TRUE(result.output.empty()) << result.output;
}

TEST_F(CliTest, JsonOutputParsesKeyFields) {
  RunResult result = RunCli("--format=json " + Path("cisco.cfg") + " " +
                         Path("juniper.conf"));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("\"equivalent\": false"), std::string::npos);
  EXPECT_NE(result.output.find("\"kind\": \"route-map\""),
            std::string::npos);
}

TEST_F(CliTest, SingleRouteMapMode) {
  RunResult result = RunCli("--route-map=POL " + Path("cisco.cfg") + " " +
                         Path("juniper.conf"));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("2 difference(s)"), std::string::npos);
}

TEST_F(CliTest, ChecksFilter) {
  // Restricting to admin distances only: the Fig.1 pair is clean there.
  RunResult result = RunCli("--checks=admin " + Path("cisco.cfg") + " " +
                         Path("juniper.conf"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST_F(CliTest, UsageOnBadInvocation) {
  EXPECT_EQ(RunCli("").exit_code, 1);
  EXPECT_EQ(RunCli("onlyone.cfg").exit_code, 1);
  EXPECT_EQ(RunCli("--format=yaml a b").exit_code, 1);
  EXPECT_EQ(RunCli("--no-such-flag a b").exit_code, 1);
}

TEST_F(CliTest, MissingFileFails) {
  RunResult result =
      RunCli(Path("does-not-exist.cfg") + " " + Path("cisco.cfg"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, BatchMode) {
  std::filesystem::create_directories(dir_ / "left");
  std::filesystem::create_directories(dir_ / "right");
  Write("left/pair1.cfg", testing::kFig1Cisco);
  Write("right/pair1.conf", testing::kFig1Juniper);
  Write("left/pair2.cfg", testing::kFig1Cisco);
  Write("right/pair2.cfg", testing::kFig1Cisco);
  RunResult result = RunCli("--batch " + Path("left") + " " + Path("right"));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("pair2: equivalent"), std::string::npos);
  EXPECT_NE(result.output.find("2 pair(s) compared, 1 with differences"),
            std::string::npos);
}

TEST_F(CliTest, HelpExitsZeroAndDocumentsFlags) {
  RunResult result = RunCliStdout("--help");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* flag :
       {"--format=", "--quiet", "--checks=", "--route-map=", "--acl=",
        "--threads=", "--batch", "--trace_out=", "--trace_format=", "--stats",
        "--help"}) {
    EXPECT_NE(result.output.find(flag), std::string::npos)
        << "usage text missing " << flag;
  }
  EXPECT_NE(result.output.find("exit status"), std::string::npos);
}

TEST_F(CliTest, TraceOutWritesVersionedJson) {
  std::string trace = Path("trace.json");
  RunResult result = RunCli("--trace_out=" + trace + " " + Path("cisco.cfg") +
                            " " + Path("juniper.conf"));
  EXPECT_EQ(result.exit_code, 2);
  std::ifstream file(trace);
  ASSERT_TRUE(file.good()) << "trace file not written";
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_NE(buffer.str().find("\"campion_trace_version\": 1"),
            std::string::npos);
  EXPECT_NE(buffer.str().find("\"route_map_pair\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"bdd.cache_hits\""), std::string::npos);
}

TEST_F(CliTest, ChromeTraceFormatWritesTraceEvents) {
  std::string trace = Path("chrome_trace.json");
  RunResult result = RunCli("--trace_format=chrome --trace_out=" + trace +
                            " " + Path("cisco.cfg") + " " +
                            Path("juniper.conf"));
  EXPECT_EQ(result.exit_code, 2);
  std::ifstream file(trace);
  ASSERT_TRUE(file.good()) << "chrome trace file not written";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  // The chrome format is for viewers, not for campion_trace_diff.
  EXPECT_EQ(text.find("campion_trace_version"), std::string::npos);
}

TEST_F(CliTest, UnknownTraceFormatFails) {
  RunResult result = RunCli("--trace_format=bogus " + Path("cisco.cfg") +
                            " " + Path("juniper.conf"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("--trace_format"), std::string::npos);
}

TEST_F(CliTest, TraceOutUnwritablePathFails) {
  RunResult result =
      RunCli("--trace_out=/nonexistent-dir/trace.json " + Path("cisco.cfg") +
             " " + Path("juniper.conf"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, StatsGoToStderrOnly) {
  std::string pair = Path("cisco.cfg") + " " + Path("juniper.conf");
  RunResult err = RunCliStderr("--stats " + pair);
  EXPECT_EQ(err.exit_code, 2);
  EXPECT_NE(err.output.find("Phase timings"), std::string::npos);
  EXPECT_NE(err.output.find("bdd.cache_lookups"), std::string::npos);

  // The report on stdout is byte-identical with and without tracing, and
  // at any thread count — the acceptance bar for the observability layer.
  std::string plain = RunCliStdout(pair).output;
  EXPECT_EQ(RunCliStdout("--stats " + pair).output, plain);
  EXPECT_EQ(RunCliStdout("--trace_out=" + Path("t2.json") + " --stats " + pair)
                .output,
            plain);
  EXPECT_EQ(RunCliStdout("--threads=1 " + pair).output, plain);
  EXPECT_EQ(RunCliStdout("--threads=4 " + pair).output, plain);
  // Memory tracing and the chrome exporter ride the same observability
  // layer, so they must not perturb the report stream either.
  EXPECT_EQ(RunCliStdout("--trace_format=chrome --trace_out=" +
                         Path("t3.json") + " --threads=1 " + pair)
                .output,
            plain);
  EXPECT_EQ(RunCliStdout("--trace_format=chrome --trace_out=" +
                         Path("t4.json") + " --threads=4 --stats " + pair)
                .output,
            plain);
}

}  // namespace
}  // namespace campion
