// End-to-end tests of the `campion_trace_diff` regression gate: structural
// alignment of real traces across thread counts, the wall-time and memory
// gates on doctored traces, and the hard failure paths for bad inputs.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "tests/testdata.h"

#ifndef CAMPION_CLI_PATH
#error "CAMPION_CLI_PATH must be defined by the build"
#endif
#ifndef CAMPION_TRACE_DIFF_PATH
#error "CAMPION_TRACE_DIFF_PATH must be defined by the build"
#endif

namespace campion {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunCommand(const std::string& command) {
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  RunResult result;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  std::size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

RunResult RunTraceDiff(const std::string& args) {
  return RunCommand(std::string(CAMPION_TRACE_DIFF_PATH) + " " + args);
}

// A minimal two-phase campion trace, parameterized on the route_map_pair
// duration and a memory watermark, for doctoring perf/memory regressions.
std::string SyntheticTrace(std::uint64_t pair_duration_ns,
                           std::uint64_t mem_peak_bytes) {
  return "{\n"
         "  \"campion_trace_version\": 1,\n"
         "  \"spans\": [\n"
         "    {\"name\": \"config_diff\", \"detail\": \"r1 vs r2\",\n"
         "     \"start_ns\": 0, \"duration_ns\": " +
         std::to_string(pair_duration_ns + 1000) +
         ",\n"
         "     \"children\": [\n"
         "       {\"name\": \"route_map_pair\", \"detail\": \"POL vs POL\",\n"
         "        \"start_ns\": 500, \"duration_ns\": " +
         std::to_string(pair_duration_ns) +
         ", \"children\": []}\n"
         "     ]}\n"
         "  ],\n"
         "  \"metrics\": {\n"
         "    \"bdd.mem_peak_bytes\": " +
         std::to_string(mem_peak_bytes) +
         ",\n"
         "    \"diff.route_map_pairs\": 1\n"
         "  }\n"
         "}\n";
}

class TraceDiffTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = std::filesystem::temp_directory_path() /
           ("campion-trace-diff-" + std::to_string(getpid()));
    std::filesystem::create_directories(dir_);
    Write("cisco.cfg", testing::kFig1Cisco);
    Write("juniper.conf", testing::kFig1Juniper);
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static void Write(const std::string& name, const std::string& content) {
    std::ofstream file(dir_ / name);
    file << content;
  }

  static std::string Path(const std::string& name) {
    return (dir_ / name).string();
  }

  // Runs the campion CLI over the Fig.1 pair, writing a trace.
  static void MakeTrace(const std::string& extra_flags,
                        const std::string& trace_name) {
    RunResult result = RunCommand(
        std::string(CAMPION_CLI_PATH) + " " + extra_flags +
        " --quiet --trace_out=" + Path(trace_name) + " " + Path("cisco.cfg") +
        " " + Path("juniper.conf"));
    ASSERT_EQ(result.exit_code, 2) << result.output;  // Fig.1 differs.
  }

  static std::filesystem::path dir_;
};

std::filesystem::path TraceDiffTest::dir_;

TEST_F(TraceDiffTest, SameRunAtDifferentThreadCountsAlignsFully) {
  MakeTrace("--threads=1", "t1.json");
  MakeTrace("--threads=4", "t4.json");
  RunResult result = RunTraceDiff("--fail_if_unmatched " + Path("t1.json") +
                                  " " + Path("t4.json"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("(100.0%), 0 baseline-only, 0 current-only"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("route_map_pair"), std::string::npos);
  EXPECT_NE(result.output.find("(total wall)"), std::string::npos);
}

TEST_F(TraceDiffTest, DoctoredSlowTraceTripsSlowerGate) {
  Write("base.json", SyntheticTrace(1'000'000, 1 << 20));
  Write("slow.json", SyntheticTrace(3'000'000, 1 << 20));
  // Report-only mode points out the delta but exits 0.
  RunResult report =
      RunTraceDiff(Path("base.json") + " " + Path("slow.json"));
  EXPECT_EQ(report.exit_code, 0) << report.output;
  // The gate trips: 3x is way past +50%.
  RunResult gated = RunTraceDiff("--fail_if_slower_pct=50 " +
                                 Path("base.json") + " " + Path("slow.json"));
  EXPECT_EQ(gated.exit_code, 2) << gated.output;
  EXPECT_NE(gated.output.find("regression: total wall time grew"),
            std::string::npos)
      << gated.output;
  // The same pair within a generous threshold passes.
  RunResult generous =
      RunTraceDiff("--fail_if_slower_pct=500 " + Path("base.json") + " " +
                   Path("slow.json"));
  EXPECT_EQ(generous.exit_code, 0) << generous.output;
}

// A truncated or doctored baseline with zero wall time must not sail
// through the slower gate: growth from zero is infinite, so any finite
// threshold trips, with a message naming the broken baseline.
TEST_F(TraceDiffTest, ZeroWallBaselineTripsSlowerGateInsteadOfPassing) {
  Write("zero_wall.json",
        "{\"campion_trace_version\": 1, \"spans\": ["
        "{\"name\": \"config_diff\", \"detail\": \"r1 vs r2\","
        " \"start_ns\": 0, \"duration_ns\": 0, \"children\": []}],"
        " \"metrics\": {}}");
  Write("nonzero.json", SyntheticTrace(1'000'000, 1 << 20));
  // Report-only mode shows the infinite delta but still exits 0.
  RunResult report =
      RunTraceDiff(Path("zero_wall.json") + " " + Path("nonzero.json"));
  EXPECT_EQ(report.exit_code, 0) << report.output;
  EXPECT_NE(report.output.find("+inf%"), std::string::npos) << report.output;
  // Even a huge threshold trips: infinite growth exceeds every limit.
  RunResult gated = RunTraceDiff("--fail_if_slower_pct=10000 " +
                                 Path("zero_wall.json") + " " +
                                 Path("nonzero.json"));
  EXPECT_EQ(gated.exit_code, 2) << gated.output;
  EXPECT_NE(gated.output.find("regression: total wall time grew"),
            std::string::npos)
      << gated.output;
  EXPECT_NE(gated.output.find("zero-wall baseline"), std::string::npos)
      << gated.output;
  // Zero against zero is 0% growth, not a regression.
  RunResult same = RunTraceDiff("--fail_if_slower_pct=50 " +
                                Path("zero_wall.json") + " " +
                                Path("zero_wall.json"));
  EXPECT_EQ(same.exit_code, 0) << same.output;
}

// Same guard for the memory gate: a memory metric appearing from a zero
// baseline is infinite growth, not 0%.
TEST_F(TraceDiffTest, MemoryMetricFromZeroBaselineTripsMemoryGate) {
  Write("mem_zero.json", SyntheticTrace(1'000'000, 0));
  Write("mem_nonzero.json", SyntheticTrace(1'000'000, 1 << 20));
  RunResult gated = RunTraceDiff(
      "--fail_if_mem_growth_pct=10000 " + Path("mem_zero.json") + " " +
      Path("mem_nonzero.json"));
  EXPECT_EQ(gated.exit_code, 2) << gated.output;
  EXPECT_NE(
      gated.output.find("regression: bdd.mem_peak_bytes grew from a zero "
                        "baseline"),
      std::string::npos)
      << gated.output;
  // Zero to zero passes.
  RunResult same = RunTraceDiff("--fail_if_mem_growth_pct=20 " +
                                Path("mem_zero.json") + " " +
                                Path("mem_zero.json"));
  EXPECT_EQ(same.exit_code, 0) << same.output;
}

TEST_F(TraceDiffTest, MemoryGrowthTripsMemoryGate) {
  Write("mem_base.json", SyntheticTrace(1'000'000, 10 << 20));
  Write("mem_grown.json", SyntheticTrace(1'000'000, 25 << 20));
  RunResult gated =
      RunTraceDiff("--fail_if_mem_growth_pct=20 " + Path("mem_base.json") +
                   " " + Path("mem_grown.json"));
  EXPECT_EQ(gated.exit_code, 2) << gated.output;
  EXPECT_NE(gated.output.find("regression: bdd.mem_peak_bytes grew"),
            std::string::npos)
      << gated.output;
  // Shrinking memory never trips.
  RunResult shrunk =
      RunTraceDiff("--fail_if_mem_growth_pct=20 " + Path("mem_grown.json") +
                   " " + Path("mem_base.json"));
  EXPECT_EQ(shrunk.exit_code, 0) << shrunk.output;
}

TEST_F(TraceDiffTest, StructuralDivergenceCountsAndOptionallyGates) {
  Write("one_pair.json", SyntheticTrace(1'000'000, 1 << 20));
  Write("two_pairs.json",
        "{\"campion_trace_version\": 1, \"spans\": ["
        "{\"name\": \"config_diff\", \"detail\": \"r1 vs r2\","
        " \"start_ns\": 0, \"duration_ns\": 2000, \"children\": ["
        "{\"name\": \"route_map_pair\", \"detail\": \"POL vs POL\","
        " \"start_ns\": 1, \"duration_ns\": 10, \"children\": []},"
        "{\"name\": \"route_map_pair\", \"detail\": \"EXTRA vs EXTRA\","
        " \"start_ns\": 20, \"duration_ns\": 10, \"children\": []}"
        "]}], \"metrics\": {}}");
  RunResult report = RunTraceDiff(Path("one_pair.json") + " " +
                                  Path("two_pairs.json"));
  EXPECT_EQ(report.exit_code, 0) << report.output;
  EXPECT_NE(report.output.find("1 current-only"), std::string::npos)
      << report.output;
  RunResult gated = RunTraceDiff("--fail_if_unmatched " +
                                 Path("one_pair.json") + " " +
                                 Path("two_pairs.json"));
  EXPECT_EQ(gated.exit_code, 2) << gated.output;
  EXPECT_NE(gated.output.find("regression: unaligned spans"),
            std::string::npos)
      << gated.output;
}

// --allow_new_spans=NAME exempts new-in-candidate spans of that name from
// the unmatched gate (the reorder A/B adds a bdd_sift span, the template
// A/B an encode_template span — deliberate structural growth). Spans that
// exist in the baseline but vanish from the candidate still gate.
TEST_F(TraceDiffTest, AllowNewSpansExemptsOnlyCurrentOnlySpans) {
  Write("allow_base.json", SyntheticTrace(1'000'000, 1 << 20));
  Write("allow_extra.json",
        "{\"campion_trace_version\": 1, \"spans\": ["
        "{\"name\": \"config_diff\", \"detail\": \"r1 vs r2\","
        " \"start_ns\": 0, \"duration_ns\": 2000, \"children\": ["
        "{\"name\": \"bdd_sift\", \"detail\": \"r1 vs r2\","
        " \"start_ns\": 1, \"duration_ns\": 10, \"children\": []},"
        "{\"name\": \"route_map_pair\", \"detail\": \"POL vs POL\","
        " \"start_ns\": 20, \"duration_ns\": 10, \"children\": []}"
        "]}], \"metrics\": {}}");
  // Without the allow-list the extra span gates.
  RunResult gated = RunTraceDiff("--fail_if_unmatched " +
                                 Path("allow_base.json") + " " +
                                 Path("allow_extra.json"));
  EXPECT_EQ(gated.exit_code, 2) << gated.output;
  // Allow-listed, the same pair passes and the report says why.
  RunResult allowed = RunTraceDiff(
      "--fail_if_unmatched --allow_new_spans=bdd_sift " +
      Path("allow_base.json") + " " + Path("allow_extra.json"));
  EXPECT_EQ(allowed.exit_code, 0) << allowed.output;
  EXPECT_NE(allowed.output.find("new-but-allowed"), std::string::npos)
      << allowed.output;
  // The allow-list is one-directional: a span PRESENT in the baseline but
  // missing from the candidate is a real loss and still gates.
  RunResult reversed = RunTraceDiff(
      "--fail_if_unmatched --allow_new_spans=bdd_sift " +
      Path("allow_extra.json") + " " + Path("allow_base.json"));
  EXPECT_EQ(reversed.exit_code, 2) << reversed.output;
  // Several names parse comma-separated; unknown names are inert.
  RunResult multi = RunTraceDiff(
      "--fail_if_unmatched --allow_new_spans=encode_template,bdd_sift " +
      Path("allow_base.json") + " " + Path("allow_extra.json"));
  EXPECT_EQ(multi.exit_code, 0) << multi.output;
  // An empty list is a usage error.
  EXPECT_EQ(RunTraceDiff("--allow_new_spans= a b").exit_code, 1);
}

TEST_F(TraceDiffTest, MissingInputFailsWithClearError) {
  Write("ok.json", SyntheticTrace(1'000'000, 1 << 20));
  RunResult result =
      RunTraceDiff(Path("does-not-exist.json") + " " + Path("ok.json"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("error: cannot read trace file"),
            std::string::npos)
      << result.output;
}

TEST_F(TraceDiffTest, InvalidJsonFailsWithClearError) {
  Write("ok2.json", SyntheticTrace(1'000'000, 1 << 20));
  Write("broken.json", "{\"campion_trace_version\": 1, \"spans\": [");
  RunResult result =
      RunTraceDiff(Path("ok2.json") + " " + Path("broken.json"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("invalid JSON"), std::string::npos)
      << result.output;
}

TEST_F(TraceDiffTest, ChromeFormatInputIsRejected) {
  MakeTrace("--trace_format=chrome", "chrome.json");
  RunResult result =
      RunTraceDiff(Path("chrome.json") + " " + Path("chrome.json"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("not a campion-format trace"),
            std::string::npos)
      << result.output;
}

TEST_F(TraceDiffTest, UsageAndHelp) {
  EXPECT_EQ(RunTraceDiff("").exit_code, 1);
  EXPECT_EQ(RunTraceDiff("only-one.json").exit_code, 1);
  EXPECT_EQ(RunTraceDiff("--no-such-flag a b").exit_code, 1);
  EXPECT_EQ(RunTraceDiff("--fail_if_slower_pct=abc a b").exit_code, 1);
  RunResult help = RunTraceDiff("--help");
  EXPECT_EQ(help.exit_code, 0);
  for (const char* flag : {"--fail_if_slower_pct", "--fail_if_mem_growth_pct",
                           "--fail_if_unmatched", "--quiet", "--help"}) {
    EXPECT_NE(help.output.find(flag), std::string::npos)
        << "usage text missing " << flag;
  }
}

}  // namespace
}  // namespace campion
