// The parallel diff pipeline must be invisible in the output: ConfigDiff
// fans per-pair semantic tasks across a worker pool but merges results in
// pair-declaration order, so any thread count renders a byte-identical
// report. These tests pin that guarantee over the src/gen scenario suite.

#include "core/config_diff.h"

#include <gtest/gtest.h>

#include <string>

#include "core/json_report.h"
#include "gen/scenarios.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace campion::core {
namespace {

DiffOptions WithThreads(unsigned num_threads) {
  DiffOptions options;
  options.num_threads = num_threads;
  return options;
}

// Renders text and JSON with the given thread count.
std::string RenderAll(const ir::RouterConfig& config1,
                      const ir::RouterConfig& config2, unsigned num_threads) {
  DiffReport report = ConfigDiff(config1, config2, WithThreads(num_threads));
  return report.Render() + "\n---\n" +
         ReportToJson(report, config1.hostname, config2.hostname);
}

void ExpectDeterministic(const gen::RouterPair& pair) {
  std::string serial = RenderAll(pair.config1, pair.config2, 1);
  std::string parallel = RenderAll(pair.config1, pair.config2, 8);
  EXPECT_EQ(serial, parallel) << "pair: " << pair.label;
}

TEST(ConfigDiffDeterminismTest, UniversityPairsByteIdentical) {
  gen::UniversityScenario scenario = gen::BuildUniversityScenario();
  ExpectDeterministic(scenario.core);
  ExpectDeterministic(scenario.border);
}

TEST(ConfigDiffDeterminismTest, DataCenterScenarioByteIdentical) {
  gen::DataCenterScenario scenario = gen::BuildDataCenterScenario();
  for (const auto& pair : scenario.redundant_pairs) {
    ExpectDeterministic(pair);
  }
  for (const auto& pair : scenario.gateway_pairs) {
    ExpectDeterministic(pair);
  }
  // The 30 replacement pairs are individually small; a prefix keeps the
  // test fast while still covering the replacement shape.
  for (std::size_t i = 0; i < scenario.replacements.size() && i < 6; ++i) {
    ExpectDeterministic(scenario.replacements[i]);
  }
}

TEST(ConfigDiffDeterminismTest, ZeroMeansHardwareConcurrency) {
  // num_threads=0 resolves to the hardware thread count and must also
  // match the serial rendering.
  gen::UniversityScenario scenario = gen::BuildUniversityScenario();
  std::string serial =
      RenderAll(scenario.core.config1, scenario.core.config2, 1);
  std::string pooled =
      RenderAll(scenario.core.config1, scenario.core.config2, 0);
  EXPECT_EQ(serial, pooled);
}

TEST(ConfigDiffDeterminismTest, TracingAndMemoryAccountingAreInvisible) {
  // With observability on, every pair additionally samples BDD memory
  // accounting and the pipeline samples process RSS; none of that may
  // leak into the report, at any thread count.
  gen::UniversityScenario scenario = gen::BuildUniversityScenario();
  std::string plain =
      RenderAll(scenario.core.config1, scenario.core.config2, 1);
  obs::SetEnabled(true);
  std::string traced_serial =
      RenderAll(scenario.core.config1, scenario.core.config2, 1);
  std::string traced_parallel =
      RenderAll(scenario.core.config1, scenario.core.config2, 8);
  obs::SetEnabled(false);
  obs::ResetThreadTrace();
  obs::ProcessMetrics().Reset();
  EXPECT_EQ(plain, traced_serial);
  EXPECT_EQ(plain, traced_parallel);
}

TEST(ConfigDiffDeterminismTest, RepeatedParallelRunsAgree) {
  // Thread scheduling varies run to run; the report must not.
  gen::UniversityScenario scenario = gen::BuildUniversityScenario();
  std::string first =
      RenderAll(scenario.border.config1, scenario.border.config2, 8);
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(first,
              RenderAll(scenario.border.config1, scenario.border.config2, 8));
  }
}

}  // namespace
}  // namespace campion::core
