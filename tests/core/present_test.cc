#include "core/present.h"

#include <gtest/gtest.h>

#include "core/config_diff.h"
#include "core/semantic_diff.h"
#include "tests/testdata.h"

namespace campion::core {
namespace {

using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

class PresentRouteMapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cisco_ = testing::ParseCiscoOrDie(testing::kFig1Cisco);
    juniper_ = testing::ParseJuniperOrDie(testing::kFig1Juniper);
  }
  ir::RouterConfig cisco_;
  ir::RouterConfig juniper_;
};

TEST_F(PresentRouteMapTest, TableContainsAllRows) {
  auto diffs = DiffRouteMapPair(cisco_, "POL", juniper_, "POL");
  ASSERT_EQ(diffs.size(), 2u);
  for (const auto& diff : diffs) {
    EXPECT_NE(diff.table.find("Included Prefixes"), std::string::npos);
    EXPECT_NE(diff.table.find("Excluded Prefixes"), std::string::npos);
    EXPECT_NE(diff.table.find("Policy Name"), std::string::npos);
    EXPECT_NE(diff.table.find("Action"), std::string::npos);
    EXPECT_NE(diff.table.find("Text"), std::string::npos);
    EXPECT_NE(diff.table.find("cisco_router"), std::string::npos);
    EXPECT_NE(diff.table.find("juniper_router"), std::string::npos);
  }
}

TEST_F(PresentRouteMapTest, CommunityRowOnlyWhenRequired) {
  auto diffs = DiffRouteMapPair(cisco_, "POL", juniper_, "POL");
  ASSERT_EQ(diffs.size(), 2u);
  int with_community = 0;
  for (const auto& diff : diffs) {
    if (diff.example.has_value()) {
      ++with_community;
      EXPECT_NE(diff.table.find("Community"), std::string::npos);
    } else {
      EXPECT_EQ(diff.table.find("Community"), std::string::npos);
    }
  }
  // Exactly the community difference (Table 2b) shows the row.
  EXPECT_EQ(with_community, 1);
}

TEST_F(PresentRouteMapTest, StructuredFieldsMatchTable) {
  auto diffs = DiffRouteMapPair(cisco_, "POL", juniper_, "POL");
  for (const auto& diff : diffs) {
    for (const auto& range : diff.included) {
      EXPECT_NE(diff.table.find(range.ToString()), std::string::npos);
    }
    for (const auto& range : diff.excluded) {
      EXPECT_NE(diff.table.find(range.ToString()), std::string::npos);
    }
  }
}

TEST(PresentAclTest, TableShowsPacketSpacesAndExample) {
  ir::RouterConfig c1, c2;
  c1.hostname = "gw-1";
  c2.hostname = "gw-2";
  ir::Acl acl1;
  acl1.name = "F";
  ir::AclLine line;
  line.action = ir::LineAction::kDeny;
  line.protocol = ir::kProtoIcmp;
  line.src = util::IpWildcard(*Prefix::Parse("9.140.0.0/23"));
  acl1.lines.push_back(line);
  ir::AclLine rest;
  rest.action = ir::LineAction::kPermit;
  acl1.lines.push_back(rest);
  ir::Acl acl2;
  acl2.name = "F";
  acl2.lines.push_back(rest);
  c1.acls["F"] = acl1;
  c2.acls["F"] = acl2;

  auto diffs = DiffAclPair(c1, c2, "F");
  ASSERT_EQ(diffs.size(), 1u);
  const PresentedDifference& diff = diffs[0];
  EXPECT_NE(diff.table.find("Included Packets"), std::string::npos);
  EXPECT_NE(diff.table.find("srcIP: 9.140.0.0/23"), std::string::npos);
  ASSERT_TRUE(diff.example.has_value());
  EXPECT_NE(diff.example->find("icmp"), std::string::npos);
  EXPECT_EQ(diff.action1, "REJECT");
  EXPECT_EQ(diff.action2, "ACCEPT");
}

TEST(PresentStructuralTest, Table4Shape) {
  ir::RouterConfig c1, c2;
  c1.hostname = "r1";
  c2.hostname = "r2";
  StructuralDifference diff;
  diff.component = "Static Route 10.1.1.2/31";
  diff.field = "presence";
  diff.value1 = "configured";
  diff.value2 = "(absent)";
  diff.span1 = {"r1.cfg", 7, 7, "ip route 10.1.1.2 255.255.255.254 10.2.2.2"};
  PresentedDifference presented = PresentStructuralDifference(diff, c1, c2);
  EXPECT_NE(presented.table.find("Static Route 10.1.1.2/31"),
            std::string::npos);
  EXPECT_NE(presented.table.find("ip route 10.1.1.2"), std::string::npos);
  EXPECT_NE(presented.table.find("(none)"), std::string::npos);
  EXPECT_NE(presented.title.find("presence"), std::string::npos);
}

TEST(AclRangeExtractionTest, DstAndSrcRanges) {
  ir::Acl acl;
  acl.name = "F";
  ir::AclLine line;
  line.src = util::IpWildcard(*Prefix::Parse("10.1.0.0/16"));
  line.dst = util::IpWildcard(*Prefix::Parse("10.2.0.0/24"));
  acl.lines.push_back(line);
  // A non-prefix wildcard is skipped.
  ir::AclLine odd;
  odd.src = util::IpWildcard(Ipv4Address(1, 2, 3, 4), 0x00000100u);
  acl.lines.push_back(odd);

  auto dst = AclDstRanges(acl);
  auto src = AclSrcRanges(acl);
  // Line 2's "any" dst (prefix /0) is included; its src is not.
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst[0], PrefixRange(*Prefix::Parse("10.2.0.0/24"), 32, 32));
  ASSERT_EQ(src.size(), 1u);
  EXPECT_EQ(src[0], PrefixRange(*Prefix::Parse("10.1.0.0/16"), 32, 32));
}

}  // namespace
}  // namespace campion::core
