#include "core/route_action.h"

#include <gtest/gtest.h>

namespace campion::core {
namespace {

using util::Community;

ir::RouteMapSet Set(ir::RouteMapSet::Kind kind, std::uint32_t value = 0,
                    std::vector<Community> communities = {}) {
  ir::RouteMapSet s;
  s.kind = kind;
  s.value = value;
  s.communities = std::move(communities);
  return s;
}

TEST(RouteActionTest, RejectIgnoresSets) {
  std::vector<ir::RouteMapSet> sets = {
      Set(ir::RouteMapSet::Kind::kLocalPreference, 200)};
  RouteAction reject = RouteAction::FromPath(false, sets);
  EXPECT_FALSE(reject.accept);
  EXPECT_FALSE(reject.local_pref.has_value());
  EXPECT_EQ(reject, RouteAction::FromPath(false, {}));
  EXPECT_EQ(reject.ToString(), "REJECT");
}

TEST(RouteActionTest, PlainAccept) {
  RouteAction accept = RouteAction::FromPath(true, {});
  EXPECT_TRUE(accept.accept);
  EXPECT_EQ(accept.ToString(), "ACCEPT");
}

TEST(RouteActionTest, LaterSetOverridesEarlier) {
  std::vector<ir::RouteMapSet> sets = {
      Set(ir::RouteMapSet::Kind::kLocalPreference, 100),
      Set(ir::RouteMapSet::Kind::kLocalPreference, 30)};
  RouteAction action = RouteAction::FromPath(true, sets);
  EXPECT_EQ(action.local_pref, 30u);
}

TEST(RouteActionTest, CommunityReplaceClearsAdds) {
  std::vector<ir::RouteMapSet> sets = {
      Set(ir::RouteMapSet::Kind::kCommunityAdd, 0, {Community(1, 1)}),
      Set(ir::RouteMapSet::Kind::kCommunitySet, 0, {Community(2, 2)})};
  RouteAction action = RouteAction::FromPath(true, sets);
  EXPECT_TRUE(action.communities_replaced);
  EXPECT_EQ(action.communities_added,
            (std::set<Community>{Community(2, 2)}));
}

TEST(RouteActionTest, AddThenDeleteCancels) {
  std::vector<ir::RouteMapSet> sets = {
      Set(ir::RouteMapSet::Kind::kCommunityAdd, 0, {Community(1, 1)}),
      Set(ir::RouteMapSet::Kind::kCommunityDelete, 0, {Community(1, 1)})};
  RouteAction action = RouteAction::FromPath(true, sets);
  EXPECT_TRUE(action.communities_added.empty());
  EXPECT_EQ(action.communities_removed,
            (std::set<Community>{Community(1, 1)}));
}

TEST(RouteActionTest, DeleteThenAddCancels) {
  std::vector<ir::RouteMapSet> sets = {
      Set(ir::RouteMapSet::Kind::kCommunityDelete, 0, {Community(1, 1)}),
      Set(ir::RouteMapSet::Kind::kCommunityAdd, 0, {Community(1, 1)})};
  RouteAction action = RouteAction::FromPath(true, sets);
  EXPECT_TRUE(action.communities_removed.empty());
  EXPECT_EQ(action.communities_added,
            (std::set<Community>{Community(1, 1)}));
}

TEST(RouteActionTest, EqualityDistinguishesAttributeValues) {
  std::vector<ir::RouteMapSet> a = {
      Set(ir::RouteMapSet::Kind::kLocalPreference, 200)};
  std::vector<ir::RouteMapSet> b = {
      Set(ir::RouteMapSet::Kind::kLocalPreference, 100)};
  EXPECT_NE(RouteAction::FromPath(true, a), RouteAction::FromPath(true, b));
  EXPECT_EQ(RouteAction::FromPath(true, a), RouteAction::FromPath(true, a));
}

TEST(RouteActionTest, AcceptWithSetsDiffersFromPlainAccept) {
  std::vector<ir::RouteMapSet> sets = {
      Set(ir::RouteMapSet::Kind::kMetric, 10)};
  EXPECT_NE(RouteAction::FromPath(true, sets),
            RouteAction::FromPath(true, {}));
}

TEST(RouteActionTest, ToStringListsAllUpdates) {
  std::vector<ir::RouteMapSet> sets = {
      Set(ir::RouteMapSet::Kind::kLocalPreference, 30),
      Set(ir::RouteMapSet::Kind::kMetric, 50),
      Set(ir::RouteMapSet::Kind::kTag, 7),
      Set(ir::RouteMapSet::Kind::kCommunityAdd, 0, {Community(10, 10)})};
  std::string text = RouteAction::FromPath(true, sets).ToString();
  EXPECT_NE(text.find("SET LOCAL PREF 30"), std::string::npos);
  EXPECT_NE(text.find("SET METRIC 50"), std::string::npos);
  EXPECT_NE(text.find("SET TAG 7"), std::string::npos);
  EXPECT_NE(text.find("ADD COMMUNITIES 10:10"), std::string::npos);
  EXPECT_NE(text.find("ACCEPT"), std::string::npos);
}

}  // namespace
}  // namespace campion::core
