#include "core/json_report.h"

#include <gtest/gtest.h>

#include "tests/testdata.h"

namespace campion::core {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ReportToJsonTest, EquivalentReport) {
  DiffReport report;
  std::string json = ReportToJson(report, "r1", "r2");
  EXPECT_NE(json.find("\"equivalent\": true"), std::string::npos);
  EXPECT_NE(json.find("\"router1\": \"r1\""), std::string::npos);
  EXPECT_NE(json.find("\"differences\": []"), std::string::npos);
}

TEST(ReportToJsonTest, Fig1ReportRoundTripsKeyFields) {
  auto cisco = testing::ParseCiscoOrDie(testing::kFig1Cisco);
  auto juniper = testing::ParseJuniperOrDie(testing::kFig1Juniper);
  DiffReport report = ConfigDiff(cisco, juniper);
  std::string json = ReportToJson(report, cisco.hostname, juniper.hostname);

  EXPECT_NE(json.find("\"equivalent\": false"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"route-map\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"structural\""), std::string::npos);
  EXPECT_NE(json.find("10.9.0.0/16 : 16-32"), std::string::npos);
  EXPECT_NE(json.find("REJECT"), std::string::npos);
  // Multi-line config text is escaped: no raw newlines inside strings.
  auto check_balanced_quotes = [&]() {
    bool in_string = false;
    bool escaped = false;
    for (char c : json) {
      if (in_string) {
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          in_string = false;
        } else if (c == '\n') {
          return false;  // Raw newline inside a string.
        }
      } else if (c == '"') {
        in_string = true;
      }
    }
    return !in_string;
  };
  EXPECT_TRUE(check_balanced_quotes());
}

// Text localization must point at the exact 1-based source lines: the
// structural entries carry "file:line" locations from the parsed spans.
TEST(ReportToJsonTest, StructuralLocationsCarryExactLineNumbers) {
  auto r1 = cisco::ParseCiscoConfig(
                "hostname r1\n"
                "ip route 10.5.0.0 255.255.0.0 10.0.0.1\n",
                "r1.cfg")
                .config;
  auto r2 = cisco::ParseCiscoConfig(
                "hostname r2\n"
                "!\n"
                "ip route 10.5.0.0 255.255.0.0 10.0.0.1 200\n",
                "r2.cfg")
                .config;
  DiffReport report = ConfigDiff(r1, r2);
  std::string json = ReportToJson(report, "r1", "r2");
  EXPECT_NE(json.find("\"location1\": \"r1.cfg:2\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"location2\": \"r2.cfg:3\""), std::string::npos)
      << json;
}

TEST(ReportToJsonTest, WarningEntriesSerialized) {
  DiffReport report;
  DifferenceEntry warning;
  warning.kind = DifferenceEntry::Kind::kWarning;
  warning.title = "Warning";
  warning.rendered = "something odd\n";
  report.entries.push_back(warning);
  std::string json = ReportToJson(report, "a", "b");
  EXPECT_NE(json.find("\"kind\": \"warning\""), std::string::npos);
  // Warnings alone leave the configs equivalent.
  EXPECT_NE(json.find("\"equivalent\": true"), std::string::npos);
}

}  // namespace
}  // namespace campion::core
