#include "core/header_localize.h"

#include <gtest/gtest.h>

#include <random>

#include "encode/route_adv.h"

namespace campion::core {
namespace {

using bdd::BddManager;
using bdd::BddRef;
using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

PrefixRange Range(const char* prefix, int low, int high) {
  return PrefixRange(*Prefix::Parse(prefix), low, high);
}

class HeaderLocalizeTest : public ::testing::Test {
 protected:
  HeaderLocalizeTest() : layout_(mgr_, {}) {}

  RangeToBdd ToBdd() {
    return [this](const PrefixRange& r) { return layout_.MatchPrefixRange(r); };
  }

  // Reconstructs the BDD of a HeaderLocalize result, to verify that the
  // produced representation denotes exactly the input set.
  BddRef Reconstruct(const HeaderLocalizeResult& result) {
    BddRef out = mgr_.False();
    for (const auto& term : result.terms) {
      BddRef t = layout_.MatchPrefixRange(term.include);
      for (const auto& x : term.exclude) {
        t = mgr_.Diff(t, layout_.MatchPrefixRange(x));
      }
      out = mgr_.Or(out, t);
    }
    return out;
  }

  BddManager mgr_;
  encode::RouteAdvLayout layout_;
};

TEST_F(HeaderLocalizeTest, EmptySetYieldsNoTerms) {
  auto result = HeaderLocalize(mgr_, mgr_.False(),
                               {Range("10.9.0.0/16", 16, 32)}, ToBdd());
  EXPECT_TRUE(result.terms.empty());
}

TEST_F(HeaderLocalizeTest, WholeUniverse) {
  BddRef all = layout_.MatchPrefixRange(PrefixRange::Universe());
  auto result =
      HeaderLocalize(mgr_, all, {Range("10.9.0.0/16", 16, 32)}, ToBdd());
  ASSERT_EQ(result.terms.size(), 1u);
  EXPECT_EQ(result.terms[0].include, PrefixRange::Universe());
  EXPECT_TRUE(result.terms[0].exclude.empty());
}

TEST_F(HeaderLocalizeTest, SingleRange) {
  PrefixRange r = Range("10.9.0.0/16", 16, 32);
  auto result = HeaderLocalize(mgr_, layout_.MatchPrefixRange(r), {r}, ToBdd());
  ASSERT_EQ(result.terms.size(), 1u);
  EXPECT_EQ(result.terms[0].include, r);
  EXPECT_TRUE(result.terms[0].exclude.empty());
}

TEST_F(HeaderLocalizeTest, RangeMinusSubrangeAsInTable2a) {
  // S = (10.9/16, 16-32) minus (10.9/16, 16-16): the Figure 1 Difference 1.
  PrefixRange window = Range("10.9.0.0/16", 16, 32);
  PrefixRange exact = Range("10.9.0.0/16", 16, 16);
  BddRef s = mgr_.Diff(layout_.MatchPrefixRange(window),
                       layout_.MatchPrefixRange(exact));
  auto result = HeaderLocalize(mgr_, s, {window, exact}, ToBdd());
  ASSERT_EQ(result.terms.size(), 1u);
  EXPECT_EQ(result.terms[0].include, window);
  EXPECT_EQ(result.terms[0].exclude, std::vector<PrefixRange>{exact});
}

TEST_F(HeaderLocalizeTest, ComplementAsUniverseMinusRanges) {
  // S = NOT (two windows): Table 2(b)'s shape.
  PrefixRange w1 = Range("10.9.0.0/16", 16, 32);
  PrefixRange w2 = Range("10.100.0.0/16", 16, 32);
  BddRef s = mgr_.Diff(
      layout_.MatchPrefixRange(PrefixRange::Universe()),
      mgr_.Or(layout_.MatchPrefixRange(w1), layout_.MatchPrefixRange(w2)));
  auto result = HeaderLocalize(mgr_, s, {w1, w2}, ToBdd());
  ASSERT_EQ(result.terms.size(), 1u);
  EXPECT_EQ(result.terms[0].include, PrefixRange::Universe());
  EXPECT_EQ(result.terms[0].exclude.size(), 2u);
  EXPECT_EQ(Reconstruct(result), s);
}

TEST_F(HeaderLocalizeTest, NestedDifferenceIsFlattened) {
  // S = C - (F - G) must come back as {C - F, G} (the paper's example).
  PrefixRange c = Range("10.0.0.0/8", 24, 32);
  PrefixRange f = Range("10.32.0.0/11", 24, 32);
  PrefixRange g = Range("10.32.0.0/11", 28, 32);
  BddRef s = mgr_.Diff(layout_.MatchPrefixRange(c),
                       mgr_.Diff(layout_.MatchPrefixRange(f),
                                 layout_.MatchPrefixRange(g)));
  auto result = HeaderLocalize(mgr_, s, {c, f, g}, ToBdd());
  ASSERT_EQ(result.terms.size(), 2u);
  // One term is C - F, the other is G with no excludes.
  bool found_c_minus_f = false;
  bool found_g = false;
  for (const auto& term : result.terms) {
    if (term.include == c &&
        term.exclude == std::vector<PrefixRange>{f}) {
      found_c_minus_f = true;
    }
    if (term.include == g && term.exclude.empty()) found_g = true;
  }
  EXPECT_TRUE(found_c_minus_f);
  EXPECT_TRUE(found_g);
  EXPECT_EQ(Reconstruct(result), s);
}

TEST_F(HeaderLocalizeTest, UnionOfDisjointRanges) {
  PrefixRange w1 = Range("10.9.0.0/16", 16, 32);
  PrefixRange w2 = Range("10.100.0.0/16", 16, 32);
  BddRef s =
      mgr_.Or(layout_.MatchPrefixRange(w1), layout_.MatchPrefixRange(w2));
  auto result = HeaderLocalize(mgr_, s, {w1, w2}, ToBdd());
  EXPECT_EQ(result.terms.size(), 2u);
  EXPECT_EQ(Reconstruct(result), s);
  auto included = result.IncludedRanges();
  EXPECT_EQ(included.size(), 2u);
  EXPECT_TRUE(result.ExcludedRanges().empty());
}

TEST_F(HeaderLocalizeTest, MinimalityPrefersSingleRangeOverUnion) {
  // S equals one big range that also equals the union of two halves; the
  // representation should use the single containing range.
  PrefixRange whole = Range("10.0.0.0/8", 9, 9);
  PrefixRange half1 = Range("10.0.0.0/9", 9, 9);
  PrefixRange half2 = Range("10.128.0.0/9", 9, 9);
  BddRef s = layout_.MatchPrefixRange(whole);
  auto result = HeaderLocalize(mgr_, s, {whole, half1, half2}, ToBdd());
  ASSERT_EQ(result.terms.size(), 1u);
  EXPECT_EQ(result.terms[0].include, whole);
}

// Property test: random boolean combinations of a random range pool are
// always reconstructed exactly.
class HeaderLocalizeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HeaderLocalizeRandomTest, ReconstructsExactly) {
  BddManager mgr;
  encode::RouteAdvLayout layout(mgr, {});
  std::mt19937_64 rng(GetParam());

  std::vector<PrefixRange> pool;
  for (int i = 0; i < 6; ++i) {
    std::uint32_t base = (10u << 24) | ((rng() % 4) << 20);
    int length = 8 + static_cast<int>(rng() % 3) * 4;
    int low = length + static_cast<int>(rng() % 4);
    int high = low + static_cast<int>(rng() % (33 - low));
    pool.push_back(
        PrefixRange(Prefix(Ipv4Address(base), length), low, high));
  }
  auto to_bdd = [&](const PrefixRange& r) {
    return layout.MatchPrefixRange(r);
  };

  // A random expression over the pool: unions, intersections, differences.
  BddRef s = to_bdd(pool[0]);
  for (int step = 0; step < 8; ++step) {
    BddRef operand = to_bdd(pool[rng() % pool.size()]);
    switch (rng() % 3) {
      case 0: s = mgr.Or(s, operand); break;
      case 1: s = mgr.And(s, operand); break;
      default: s = mgr.Diff(s, operand); break;
    }
  }

  auto result = HeaderLocalize(mgr, s, pool, to_bdd);
  BddRef rebuilt = mgr.False();
  for (const auto& term : result.terms) {
    BddRef t = to_bdd(term.include);
    for (const auto& x : term.exclude) t = mgr.Diff(t, to_bdd(x));
    rebuilt = mgr.Or(rebuilt, t);
  }
  BddRef clipped = mgr.And(s, to_bdd(PrefixRange::Universe()));
  EXPECT_EQ(rebuilt, clipped) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderLocalizeRandomTest,
                         ::testing::Range(1, 31));

}  // namespace
}  // namespace campion::core
