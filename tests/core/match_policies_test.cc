#include "core/match_policies.h"

#include <gtest/gtest.h>

namespace campion::core {
namespace {

using util::Ipv4Address;

ir::BgpNeighbor Neighbor(const char* ip, const char* import_policy,
                         const char* export_policy) {
  ir::BgpNeighbor n;
  n.ip = *Ipv4Address::Parse(ip);
  n.remote_as = 65001;
  n.import_policy = import_policy;
  n.export_policy = export_policy;
  return n;
}

ir::Interface Iface(const char* name, const char* address, int length) {
  ir::Interface iface;
  iface.name = name;
  iface.address = *Ipv4Address::Parse(address);
  iface.prefix_length = length;
  return iface;
}

TEST(MatchPoliciesTest, PairsPoliciesByNeighborIp) {
  ir::RouterConfig a, b;
  a.hostname = "a";
  b.hostname = "b";
  a.bgp.emplace();
  b.bgp.emplace();
  a.bgp->neighbors = {Neighbor("10.0.0.2", "IMP-A", "EXP-A")};
  b.bgp->neighbors = {Neighbor("10.0.0.2", "IMP-B", "EXP-B")};
  PolicyPairing pairing = MatchPolicies(a, b);
  ASSERT_EQ(pairing.route_maps.size(), 2u);
  EXPECT_EQ(pairing.route_maps[0].direction, PolicyDirection::kImport);
  EXPECT_EQ(pairing.route_maps[0].name1, "IMP-A");
  EXPECT_EQ(pairing.route_maps[0].name2, "IMP-B");
  EXPECT_EQ(pairing.route_maps[1].direction, PolicyDirection::kExport);
  EXPECT_TRUE(pairing.unmatched.empty());
}

TEST(MatchPoliciesTest, AbsentPolicyOnOneSideStillPairs) {
  ir::RouterConfig a, b;
  a.bgp.emplace();
  b.bgp.emplace();
  a.bgp->neighbors = {Neighbor("10.0.0.2", "IMP-A", "")};
  b.bgp->neighbors = {Neighbor("10.0.0.2", "", "")};
  PolicyPairing pairing = MatchPolicies(a, b);
  ASSERT_EQ(pairing.route_maps.size(), 1u);
  EXPECT_EQ(pairing.route_maps[0].name1, "IMP-A");
  EXPECT_EQ(pairing.route_maps[0].name2, "");
}

TEST(MatchPoliciesTest, UnmatchedNeighborsReported) {
  ir::RouterConfig a, b;
  a.hostname = "left";
  b.hostname = "right";
  a.bgp.emplace();
  b.bgp.emplace();
  a.bgp->neighbors = {Neighbor("10.0.0.2", "", "")};
  b.bgp->neighbors = {Neighbor("10.0.0.6", "", "")};
  PolicyPairing pairing = MatchPolicies(a, b);
  EXPECT_TRUE(pairing.route_maps.empty());
  ASSERT_EQ(pairing.unmatched.size(), 2u);
  EXPECT_NE(pairing.unmatched[0].find("10.0.0.2"), std::string::npos);
  EXPECT_NE(pairing.unmatched[0].find("left"), std::string::npos);
  EXPECT_NE(pairing.unmatched[1].find("10.0.0.6"), std::string::npos);
}

TEST(MatchPoliciesTest, AclsPairByName) {
  ir::RouterConfig a, b;
  a.hostname = "a";
  b.hostname = "b";
  a.acls["SHARED"] = {};
  a.acls["ONLY-A"] = {};
  b.acls["SHARED"] = {};
  PolicyPairing pairing = MatchPolicies(a, b);
  ASSERT_EQ(pairing.acls.size(), 1u);
  EXPECT_EQ(pairing.acls[0].name, "SHARED");
  ASSERT_EQ(pairing.unmatched.size(), 1u);
  EXPECT_NE(pairing.unmatched[0].find("ONLY-A"), std::string::npos);
}

TEST(MatchPoliciesTest, InterfacesPairByNameFirst) {
  ir::RouterConfig a, b;
  a.interfaces = {Iface("Ethernet1", "10.0.1.1", 24)};
  b.interfaces = {Iface("Ethernet1", "10.99.1.1", 24)};
  PolicyPairing pairing = MatchPolicies(a, b);
  ASSERT_EQ(pairing.interfaces.size(), 1u);
  EXPECT_EQ(pairing.interfaces[0],
            (std::pair<std::string, std::string>{"Ethernet1", "Ethernet1"}));
}

TEST(MatchPoliciesTest, InterfacesPairBySharedSubnet) {
  // Cross-vendor backups: names differ, subnet matches.
  ir::RouterConfig a, b;
  a.interfaces = {Iface("Ethernet1", "10.0.1.1", 24)};
  b.interfaces = {Iface("xe-0/0/0.0", "10.0.1.2", 24)};
  PolicyPairing pairing = MatchPolicies(a, b);
  ASSERT_EQ(pairing.interfaces.size(), 1u);
  EXPECT_EQ(pairing.interfaces[0].first, "Ethernet1");
  EXPECT_EQ(pairing.interfaces[0].second, "xe-0/0/0.0");
  EXPECT_TRUE(pairing.unmatched.empty());
}

TEST(MatchPoliciesTest, UnmatchableInterfaceReported) {
  ir::RouterConfig a, b;
  a.hostname = "a";
  b.hostname = "b";
  a.interfaces = {Iface("Ethernet1", "10.0.1.1", 24)};
  b.interfaces = {Iface("xe-0/0/0.0", "10.0.9.2", 24)};
  PolicyPairing pairing = MatchPolicies(a, b);
  EXPECT_TRUE(pairing.interfaces.empty());
  EXPECT_EQ(pairing.unmatched.size(), 2u);
}

TEST(MatchPoliciesTest, RedistributionsPairBySourceProtocol) {
  ir::RouterConfig a, b;
  a.ospf.emplace();
  b.ospf.emplace();
  a.ospf->redistributions.push_back({ir::Protocol::kStatic, "RM-A", {}});
  b.ospf->redistributions.push_back({ir::Protocol::kStatic, "RM-B", {}});
  b.ospf->redistributions.push_back({ir::Protocol::kConnected, "RM-C", {}});
  PolicyPairing pairing = MatchPolicies(a, b);
  ASSERT_EQ(pairing.redistributions.size(), 1u);
  EXPECT_EQ(pairing.redistributions[0].from, ir::Protocol::kStatic);
  EXPECT_EQ(pairing.redistributions[0].name1, "RM-A");
  EXPECT_EQ(pairing.redistributions[0].name2, "RM-B");
}

TEST(MatchPoliciesTest, NoBgpMeansNoRouteMapPairs) {
  ir::RouterConfig a, b;
  a.bgp.emplace();
  a.bgp->neighbors = {Neighbor("10.0.0.2", "IMP", "EXP")};
  PolicyPairing pairing = MatchPolicies(a, b);
  EXPECT_TRUE(pairing.route_maps.empty());
}

}  // namespace
}  // namespace campion::core
