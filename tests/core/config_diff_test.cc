#include "core/config_diff.h"

#include <gtest/gtest.h>

#include "tests/testdata.h"

namespace campion::core {
namespace {

class ConfigDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cisco_ = testing::ParseCiscoOrDie(testing::kFig1Cisco);
    juniper_ = testing::ParseJuniperOrDie(testing::kFig1Juniper);
  }
  ir::RouterConfig cisco_;
  ir::RouterConfig juniper_;
};

// Regression: the BDD encoding of a discontiguous wildcard is per-bit, so
// "0.0.255.0" (free third octet) must NOT collapse to the "0.0.255.255"
// prefix approximation — they differ on every packet whose fourth octet
// moves. And two identical discontiguous lines must stay equivalent.
TEST(AclWildcardSemanticsTest, DiscontiguousWildcardNotTreatedAsPrefix) {
  ir::RouterConfig exact = testing::ParseCiscoOrDie(
      "hostname r1\n"
      "ip access-list extended DW\n"
      " permit ip 10.1.0.5 0.0.255.0 any\n"
      " deny ip any any\n");
  ir::RouterConfig widened = testing::ParseCiscoOrDie(
      "hostname r2\n"
      "ip access-list extended DW\n"
      " permit ip 10.1.0.0 0.0.255.255 any\n"
      " deny ip any any\n");
  EXPECT_FALSE(DiffAclPair(exact, widened, "DW").empty());
  EXPECT_TRUE(DiffAclPair(exact, exact, "DW").empty());
}

TEST_F(ConfigDiffTest, OptionsDisableChecks) {
  DiffOptions only_structural;
  only_structural.check_route_maps = false;
  only_structural.check_acls = false;
  DiffReport report = ConfigDiff(cisco_, juniper_, only_structural);
  EXPECT_EQ(report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic), 0);
  EXPECT_GE(report.CountOf(DifferenceEntry::Kind::kStructural), 1);

  DiffOptions only_semantic;
  only_semantic.check_static_routes = false;
  only_semantic.check_connected_routes = false;
  only_semantic.check_ospf = false;
  only_semantic.check_bgp_properties = false;
  only_semantic.check_admin_distances = false;
  DiffReport semantic_report = ConfigDiff(cisco_, juniper_, only_semantic);
  EXPECT_EQ(semantic_report.CountOf(DifferenceEntry::Kind::kStructural), 0);
  EXPECT_EQ(
      semantic_report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic), 2);
}

TEST_F(ConfigDiffTest, SharedPolicyPairDiffedOnce) {
  // Both neighbors of a router using the same policy pair: one diff set.
  ir::RouterConfig a = cisco_;
  ir::RouterConfig b = juniper_;
  // Add a second neighbor using the same export policy on both sides.
  ir::BgpNeighbor extra1 = a.bgp->neighbors[0];
  extra1.ip = *util::Ipv4Address::Parse("10.0.12.13");
  a.bgp->neighbors.push_back(extra1);
  ir::BgpNeighbor extra2 = b.bgp->neighbors[0];
  extra2.ip = *util::Ipv4Address::Parse("10.0.12.13");
  b.bgp->neighbors.push_back(extra2);

  DiffReport report = ConfigDiff(a, b);
  EXPECT_EQ(report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic), 2);
}

TEST_F(ConfigDiffTest, DanglingRouteMapReferenceWarns) {
  ir::RouterConfig broken = cisco_;
  broken.bgp->neighbors[0].export_policy = "NO-SUCH-MAP";
  DiffReport report = ConfigDiff(broken, juniper_);
  int warnings = report.CountOf(DifferenceEntry::Kind::kWarning);
  EXPECT_GE(warnings, 1);
  bool found = false;
  for (const auto& entry : report.entries) {
    if (entry.kind == DifferenceEntry::Kind::kWarning &&
        entry.rendered.find("NO-SUCH-MAP") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ConfigDiffTest, MissingPolicyComparedAgainstPassThrough) {
  // Remove the Juniper export policy: POL vs accept-everything.
  ir::RouterConfig open = juniper_;
  open.bgp->neighbors[0].export_policy = "";
  DiffReport report = ConfigDiff(cisco_, open);
  // The Cisco POL rejects NETS and COMM routes; pass-through accepts all,
  // and accepted routes get no local-pref set: several differences.
  EXPECT_GE(report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic), 2);
}

TEST_F(ConfigDiffTest, UnmatchedNeighborsSurface) {
  ir::RouterConfig extra = cisco_;
  ir::BgpNeighbor neighbor = extra.bgp->neighbors[0];
  neighbor.ip = *util::Ipv4Address::Parse("192.0.2.99");
  extra.bgp->neighbors.push_back(neighbor);
  DiffReport report = ConfigDiff(extra, juniper_);
  EXPECT_GE(report.CountOf(DifferenceEntry::Kind::kUnmatched), 1);
  EXPECT_FALSE(report.Equivalent());
}

TEST_F(ConfigDiffTest, RenderNumbersEntries) {
  DiffReport report = ConfigDiff(cisco_, juniper_);
  std::string rendered = report.Render();
  EXPECT_NE(rendered.find("=== [1]"), std::string::npos);
  EXPECT_NE(rendered.find("=== [2]"), std::string::npos);
}

TEST_F(ConfigDiffTest, EmptyReportRendersEquivalenceMessage) {
  DiffReport report;
  EXPECT_NE(report.Render().find("behaviorally equivalent"),
            std::string::npos);
  EXPECT_TRUE(report.Equivalent());
}

TEST_F(ConfigDiffTest, RedistributionPoliciesDiffed) {
  // Two configs whose redistribution route maps differ semantically.
  ir::RouterConfig a;
  a.hostname = "a";
  ir::RouterConfig b;
  b.hostname = "b";
  for (ir::RouterConfig* config : {&a, &b}) {
    config->ospf.emplace();
    ir::PrefixList list;
    list.name = "STATICS";
    list.entries.push_back(
        {ir::LineAction::kPermit,
         util::PrefixRange(*util::Prefix::Parse("10.5.0.0/16"), 16,
                           config == &a ? 32 : 24),
         {}});
    config->prefix_lists["STATICS"] = list;
    ir::RouteMap map;
    map.name = "REDIST";
    ir::RouteMapClause clause;
    clause.action = ir::ClauseAction::kPermit;
    ir::RouteMapMatch match;
    match.kind = ir::RouteMapMatch::Kind::kPrefixList;
    match.names = {"STATICS"};
    clause.matches.push_back(match);
    map.clauses.push_back(clause);
    map.default_action = ir::ClauseAction::kDeny;
    config->route_maps["REDIST"] = map;
    config->ospf->redistributions.push_back(
        {ir::Protocol::kStatic, "REDIST", {}});
  }
  DiffReport report = ConfigDiff(a, b);
  EXPECT_EQ(report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic), 1);
  bool found = false;
  for (const auto& entry : report.entries) {
    if (entry.title.find("redistribution of static") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace campion::core
