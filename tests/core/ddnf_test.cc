#include "core/ddnf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

namespace campion::core {
namespace {

using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

PrefixRange Range(const char* prefix, int low, int high) {
  return PrefixRange(*Prefix::Parse(prefix), low, high);
}

TEST(PrefixRangeDagTest, EmptyInputHasOnlyRoot) {
  PrefixRangeDag dag({});
  EXPECT_EQ(dag.size(), 1u);
  EXPECT_EQ(dag.label(dag.root()), PrefixRange::Universe());
  EXPECT_TRUE(dag.IsLeaf(dag.root()));
}

TEST(PrefixRangeDagTest, RootReachesAllNodes) {
  PrefixRangeDag dag({Range("10.9.0.0/16", 16, 32),
                      Range("10.100.0.0/16", 16, 32),
                      Range("10.9.0.0/16", 16, 16)});
  // BFS from root must reach every node (invariant 1).
  std::set<std::size_t> reached{dag.root()};
  std::vector<std::size_t> frontier{dag.root()};
  while (!frontier.empty()) {
    std::size_t node = frontier.back();
    frontier.pop_back();
    for (std::size_t child : dag.children(node)) {
      if (reached.insert(child).second) frontier.push_back(child);
    }
  }
  EXPECT_EQ(reached.size(), dag.size());
}

TEST(PrefixRangeDagTest, LabelsAreUnique) {
  PrefixRangeDag dag({Range("10.9.0.0/16", 16, 32),
                      Range("10.9.0.0/16", 16, 32),  // Duplicate.
                      Range("10.9.0.0/16", 0, 32)});  // Same after clamping.
  std::set<PrefixRange> labels(dag.labels().begin(), dag.labels().end());
  EXPECT_EQ(labels.size(), dag.size());
}

TEST(PrefixRangeDagTest, EdgesAreStrictImmediateContainment) {
  PrefixRangeDag dag({Range("10.0.0.0/8", 8, 32), Range("10.9.0.0/16", 16, 32),
                      Range("10.9.0.0/16", 16, 16)});
  for (std::size_t m = 0; m < dag.size(); ++m) {
    for (std::size_t n : dag.children(m)) {
      // Strict containment (invariant 4).
      EXPECT_TRUE(dag.label(m).ContainsRange(dag.label(n)));
      EXPECT_NE(dag.label(m), dag.label(n));
      // No intermediate node between m and n.
      for (std::size_t k = 0; k < dag.size(); ++k) {
        if (k == m || k == n) continue;
        bool between = dag.label(m).ContainsRange(dag.label(k)) &&
                       dag.label(m) != dag.label(k) &&
                       dag.label(k).ContainsRange(dag.label(n)) &&
                       dag.label(k) != dag.label(n);
        EXPECT_FALSE(between)
            << dag.label(k).ToString() << " sits between "
            << dag.label(m).ToString() << " and " << dag.label(n).ToString();
      }
    }
  }
}

TEST(PrefixRangeDagTest, ClosedUnderIntersection) {
  PrefixRangeDag dag({Range("10.0.0.0/8", 8, 20), Range("10.9.0.0/16", 16, 32),
                      Range("0.0.0.0/0", 24, 24)});
  std::set<PrefixRange> labels(dag.labels().begin(), dag.labels().end());
  for (const auto& a : labels) {
    for (const auto& b : labels) {
      auto meet = a.Intersect(b);
      if (meet) {
        EXPECT_TRUE(labels.contains(*meet))
            << a.ToString() << " ^ " << b.ToString() << " = "
            << meet->ToString() << " missing";
      }
    }
  }
}

TEST(PrefixRangeDagTest, MultipleParents) {
  // E = (10.16/12, 24-32) is contained in both B = (10.16/12, 12-32) and
  // C = (10/8, 24-32), which are incomparable — a true DAG, not a tree.
  PrefixRangeDag dag({Range("10.16.0.0/12", 12, 32), Range("10.0.0.0/8", 24, 32),
                      Range("10.16.0.0/12", 24, 32)});
  PrefixRange e = Range("10.16.0.0/12", 24, 32);
  int parent_count = 0;
  for (std::size_t m = 0; m < dag.size(); ++m) {
    for (std::size_t n : dag.children(m)) {
      if (dag.label(n) == e) ++parent_count;
    }
  }
  EXPECT_EQ(parent_count, 2);
}

TEST(PrefixRangeDagTest, EmptyRangesDropped) {
  PrefixRangeDag dag({Range("10.9.0.0/16", 4, 8)});  // Infeasible window.
  EXPECT_EQ(dag.size(), 1u);  // Root only.
}

TEST(PrefixRangeDagTest, CustomUniverseClipsRanges) {
  // An address universe of /32s (ACL localization): length windows clamp.
  PrefixRange universe = Range("0.0.0.0/0", 32, 32);
  PrefixRangeDag dag({Range("10.9.0.0/16", 16, 32)}, universe);
  ASSERT_EQ(dag.size(), 2u);
  EXPECT_EQ(dag.label(1), Range("10.9.0.0/16", 32, 32));
}

TEST(PrefixRangeDagTest, UniverseInInputIsNotDuplicated) {
  PrefixRangeDag dag({PrefixRange::Universe(), Range("10.0.0.0/8", 8, 32)});
  EXPECT_EQ(dag.size(), 2u);
}


TEST(PrefixRangeDagTest, InsertionOrderIndependent) {
  // The DAG is canonical: any permutation of the input ranges yields the
  // same label set and the same edge relation.
  std::vector<PrefixRange> ranges = {
      Range("10.0.0.0/8", 8, 32),   Range("10.9.0.0/16", 16, 32),
      Range("10.9.0.0/16", 16, 16), Range("0.0.0.0/0", 24, 24),
      Range("10.16.0.0/12", 12, 32), Range("10.16.0.0/12", 24, 32)};
  auto edge_set = [](const PrefixRangeDag& dag) {
    std::set<std::pair<PrefixRange, PrefixRange>> edges;
    for (std::size_t m = 0; m < dag.size(); ++m) {
      for (std::size_t n : dag.children(m)) {
        edges.insert({dag.label(m), dag.label(n)});
      }
    }
    return edges;
  };
  PrefixRangeDag reference(ranges);
  std::set<PrefixRange> reference_labels(reference.labels().begin(),
                                         reference.labels().end());
  auto reference_edges = edge_set(reference);
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(ranges.begin(), ranges.end(), rng);
    PrefixRangeDag shuffled(ranges);
    std::set<PrefixRange> labels(shuffled.labels().begin(),
                                 shuffled.labels().end());
    EXPECT_EQ(labels, reference_labels);
    EXPECT_EQ(edge_set(shuffled), reference_edges);
  }
}

}  // namespace
}  // namespace campion::core
