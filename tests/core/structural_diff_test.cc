#include "core/structural_diff.h"

#include <gtest/gtest.h>

namespace campion::core {
namespace {

using util::Ipv4Address;
using util::Prefix;

ir::StaticRoute Static(const char* prefix, const char* next_hop,
                       int distance = 1,
                       std::optional<std::uint32_t> tag = std::nullopt) {
  ir::StaticRoute route;
  route.prefix = *Prefix::Parse(prefix);
  route.next_hop = *Ipv4Address::Parse(next_hop);
  route.admin_distance = distance;
  route.tag = tag;
  return route;
}

ir::Interface Iface(const char* name, const char* address, int length) {
  ir::Interface iface;
  iface.name = name;
  iface.address = *Ipv4Address::Parse(address);
  iface.prefix_length = length;
  return iface;
}

// --- static routes --------------------------------------------------------

TEST(DiffStaticRoutesTest, IdenticalSetsAreEquivalent) {
  ir::RouterConfig a, b;
  a.static_routes = {Static("10.1.0.0/24", "10.0.0.1"),
                     Static("10.2.0.0/24", "10.0.0.2")};
  b.static_routes = a.static_routes;
  EXPECT_TRUE(DiffStaticRoutes(a, b).empty());
}

TEST(DiffStaticRoutesTest, OrderDoesNotMatter) {
  ir::RouterConfig a, b;
  a.static_routes = {Static("10.1.0.0/24", "10.0.0.1"),
                     Static("10.2.0.0/24", "10.0.0.2")};
  b.static_routes = {a.static_routes[1], a.static_routes[0]};
  EXPECT_TRUE(DiffStaticRoutes(a, b).empty());
}

TEST(DiffStaticRoutesTest, MissingRouteIsPresenceDifference) {
  ir::RouterConfig a, b;
  a.static_routes = {Static("10.1.1.2/31", "10.2.2.2")};
  auto diffs = DiffStaticRoutes(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].component, "Static Route 10.1.1.2/31");
  EXPECT_EQ(diffs[0].field, "presence");
  EXPECT_EQ(diffs[0].value1, "configured");
  EXPECT_EQ(diffs[0].value2, "(absent)");
}

TEST(DiffStaticRoutesTest, NextHopMismatch) {
  ir::RouterConfig a, b;
  a.static_routes = {Static("10.1.0.0/24", "10.0.0.1")};
  b.static_routes = {Static("10.1.0.0/24", "10.0.0.9")};
  auto diffs = DiffStaticRoutes(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "next hop");
  EXPECT_EQ(diffs[0].value1, "10.0.0.1");
  EXPECT_EQ(diffs[0].value2, "10.0.0.9");
}

TEST(DiffStaticRoutesTest, AdminDistanceMismatch) {
  ir::RouterConfig a, b;
  a.static_routes = {Static("10.1.0.0/24", "10.0.0.1", 1)};
  b.static_routes = {Static("10.1.0.0/24", "10.0.0.1", 5)};
  auto diffs = DiffStaticRoutes(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "admin distance");
  EXPECT_EQ(diffs[0].value1, "1");
  EXPECT_EQ(diffs[0].value2, "5");
}

TEST(DiffStaticRoutesTest, TagMismatch) {
  // The paper's synthetic replay: two static routes whose tags were
  // configured differently caused a significant outage.
  ir::RouterConfig a, b;
  a.static_routes = {Static("10.1.0.0/24", "10.0.0.1", 1, 100)};
  b.static_routes = {Static("10.1.0.0/24", "10.0.0.1", 1, 200)};
  auto diffs = DiffStaticRoutes(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "tag");
  EXPECT_EQ(diffs[0].value1, "100");
  EXPECT_EQ(diffs[0].value2, "200");
}

TEST(DiffStaticRoutesTest, MultipathSamePrefixMatchedByNextHop) {
  ir::RouterConfig a, b;
  a.static_routes = {Static("10.1.0.0/24", "10.0.0.1"),
                     Static("10.1.0.0/24", "10.0.0.2")};
  b.static_routes = {Static("10.1.0.0/24", "10.0.0.2"),
                     Static("10.1.0.0/24", "10.0.0.1")};
  EXPECT_TRUE(DiffStaticRoutes(a, b).empty());
}

TEST(DiffStaticRoutesTest, InterfaceNextHopRoutes) {
  ir::RouterConfig a, b;
  ir::StaticRoute route;
  route.prefix = *Prefix::Parse("0.0.0.0/0");
  route.next_hop_interface = "Null0";
  a.static_routes = {route};
  b.static_routes = {route};
  EXPECT_TRUE(DiffStaticRoutes(a, b).empty());
  b.static_routes[0].next_hop_interface = "Ethernet1";
  EXPECT_EQ(DiffStaticRoutes(a, b).size(), 1u);
}

// --- connected routes -----------------------------------------------------

TEST(DiffConnectedRoutesTest, SameSubnetsDifferentHosts) {
  // Backup routers on the same subnets with different addresses: no diff.
  ir::RouterConfig a, b;
  a.interfaces = {Iface("Ethernet1", "10.0.1.1", 24)};
  b.interfaces = {Iface("xe-0/0/0.0", "10.0.1.2", 24)};
  EXPECT_TRUE(DiffConnectedRoutes(a, b).empty());
}

TEST(DiffConnectedRoutesTest, MissingSubnet) {
  ir::RouterConfig a, b;
  a.interfaces = {Iface("Ethernet1", "10.0.1.1", 24),
                  Iface("Ethernet2", "10.0.2.1", 24)};
  b.interfaces = {Iface("xe-0/0/0.0", "10.0.1.2", 24)};
  auto diffs = DiffConnectedRoutes(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].component, "Connected Route 10.0.2.0/24");
  EXPECT_EQ(diffs[0].value2, "(absent)");
}

TEST(DiffConnectedRoutesTest, ShutdownInterfaceIgnored) {
  ir::RouterConfig a, b;
  a.interfaces = {Iface("Ethernet1", "10.0.1.1", 24)};
  a.interfaces[0].shutdown = true;
  EXPECT_TRUE(DiffConnectedRoutes(a, b).empty());
}

// --- OSPF ------------------------------------------------------------------

ir::Interface OspfIface(const char* name, std::uint32_t cost,
                        std::uint32_t area) {
  ir::Interface iface = Iface(name, "10.0.1.1", 24);
  iface.ospf_enabled = true;
  iface.ospf_cost = cost;
  iface.ospf_area = area;
  return iface;
}

TEST(DiffOspfTest, EqualLinkAttributes) {
  ir::RouterConfig a, b;
  a.interfaces = {OspfIface("e1", 10, 0)};
  b.interfaces = {OspfIface("x1", 10, 0)};
  a.ospf.emplace();
  b.ospf.emplace();
  EXPECT_TRUE(DiffOspf(a, b, {{"e1", "x1"}}).empty());
}

TEST(DiffOspfTest, CostMismatch) {
  ir::RouterConfig a, b;
  a.interfaces = {OspfIface("e1", 10, 0)};
  b.interfaces = {OspfIface("x1", 20, 0)};
  a.ospf.emplace();
  b.ospf.emplace();
  auto diffs = DiffOspf(a, b, {{"e1", "x1"}});
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "cost");
  EXPECT_EQ(diffs[0].value1, "10");
  EXPECT_EQ(diffs[0].value2, "20");
}

TEST(DiffOspfTest, AreaAndPassiveMismatch) {
  ir::RouterConfig a, b;
  a.interfaces = {OspfIface("e1", 10, 0)};
  b.interfaces = {OspfIface("x1", 10, 1)};
  b.interfaces[0].ospf_passive = true;
  a.ospf.emplace();
  b.ospf.emplace();
  auto diffs = DiffOspf(a, b, {{"e1", "x1"}});
  EXPECT_EQ(diffs.size(), 2u);  // area + passive
}

TEST(DiffOspfTest, EnabledMismatchShortCircuits) {
  ir::RouterConfig a, b;
  a.interfaces = {OspfIface("e1", 10, 0)};
  b.interfaces = {Iface("x1", "10.0.1.2", 24)};  // OSPF disabled.
  a.ospf.emplace();
  b.ospf.emplace();
  auto diffs = DiffOspf(a, b, {{"e1", "x1"}});
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "ospf enabled");
}

TEST(DiffOspfTest, ProcessPresence) {
  ir::RouterConfig a, b;
  a.ospf.emplace();
  auto diffs = DiffOspf(a, b, {});
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].component, "OSPF Process");
  EXPECT_EQ(diffs[0].field, "presence");
}

TEST(DiffOspfTest, ReferenceBandwidthAndRedistribution) {
  ir::RouterConfig a, b;
  a.ospf.emplace();
  b.ospf.emplace();
  a.ospf->reference_bandwidth_mbps = 100000;
  b.ospf->reference_bandwidth_mbps = 100;
  a.ospf->redistributions.push_back({ir::Protocol::kStatic, "RM", {}});
  auto diffs = DiffOspf(a, b, {});
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].field, "reference bandwidth (Mbps)");
  EXPECT_NE(diffs[1].component.find("Redistribution of static"),
            std::string::npos);
}

// --- BGP properties -----------------------------------------------------------

ir::RouterConfig BgpConfig(std::uint32_t asn) {
  ir::RouterConfig config;
  config.bgp.emplace();
  config.bgp->asn = asn;
  return config;
}

ir::BgpNeighbor Neighbor(const char* ip, std::uint32_t remote_as) {
  ir::BgpNeighbor n;
  n.ip = *Ipv4Address::Parse(ip);
  n.remote_as = remote_as;
  return n;
}

TEST(DiffBgpPropertiesTest, EqualProcesses) {
  ir::RouterConfig a = BgpConfig(65000);
  ir::RouterConfig b = BgpConfig(65000);
  a.bgp->neighbors = {Neighbor("10.0.0.2", 65001)};
  b.bgp->neighbors = {Neighbor("10.0.0.2", 65001)};
  EXPECT_TRUE(DiffBgpProperties(a, b).empty());
}

TEST(DiffBgpPropertiesTest, MissingNeighbor) {
  ir::RouterConfig a = BgpConfig(65000);
  ir::RouterConfig b = BgpConfig(65000);
  a.bgp->neighbors = {Neighbor("10.0.0.2", 65001)};
  auto diffs = DiffBgpProperties(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].component, "BGP Neighbor 10.0.0.2");
  EXPECT_EQ(diffs[0].field, "presence");
}

TEST(DiffBgpPropertiesTest, SendCommunityMismatch) {
  // The §5.2 finding: Cisco iBGP neighbors missing `send-community` while
  // JunOS sends communities by default.
  ir::RouterConfig a = BgpConfig(65000);
  ir::RouterConfig b = BgpConfig(65000);
  a.bgp->neighbors = {Neighbor("10.0.0.2", 65000)};
  b.bgp->neighbors = {Neighbor("10.0.0.2", 65000)};
  b.bgp->neighbors[0].send_community = true;
  auto diffs = DiffBgpProperties(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "send-community");
  EXPECT_EQ(diffs[0].value1, "no");
  EXPECT_EQ(diffs[0].value2, "yes");
}

TEST(DiffBgpPropertiesTest, RouteReflectorClientMismatch) {
  ir::RouterConfig a = BgpConfig(65000);
  ir::RouterConfig b = BgpConfig(65000);
  a.bgp->neighbors = {Neighbor("10.0.0.2", 65000)};
  b.bgp->neighbors = {Neighbor("10.0.0.2", 65000)};
  a.bgp->neighbors[0].route_reflector_client = true;
  auto diffs = DiffBgpProperties(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "route-reflector-client");
}

TEST(DiffBgpPropertiesTest, RemoteAsMismatch) {
  ir::RouterConfig a = BgpConfig(65000);
  ir::RouterConfig b = BgpConfig(65000);
  a.bgp->neighbors = {Neighbor("10.0.0.2", 65001)};
  b.bgp->neighbors = {Neighbor("10.0.0.2", 65002)};
  auto diffs = DiffBgpProperties(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "remote AS");
}

TEST(DiffBgpPropertiesTest, NetworkStatementSets) {
  ir::RouterConfig a = BgpConfig(65000);
  ir::RouterConfig b = BgpConfig(65000);
  a.bgp->networks = {*Prefix::Parse("10.1.0.0/24")};
  auto diffs = DiffBgpProperties(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].component, "BGP Network 10.1.0.0/24");
}

TEST(DiffBgpPropertiesTest, ProcessPresence) {
  ir::RouterConfig a = BgpConfig(65000);
  ir::RouterConfig b;
  auto diffs = DiffBgpProperties(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].component, "BGP Process");
}

TEST(DiffBgpPropertiesTest, LocalAsMismatch) {
  ir::RouterConfig a = BgpConfig(65000);
  ir::RouterConfig b = BgpConfig(65001);
  auto diffs = DiffBgpProperties(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "local AS");
}

// --- admin distances -------------------------------------------------------------

TEST(DiffAdminDistancesTest, Defaults) {
  ir::RouterConfig a, b;
  EXPECT_TRUE(DiffAdminDistances(a, b).empty());
}

TEST(DiffAdminDistancesTest, EbgpOverride) {
  ir::RouterConfig a, b;
  a.admin_distances.ebgp = 30;
  auto diffs = DiffAdminDistances(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].field, "ebgp");
  EXPECT_EQ(diffs[0].value1, "30");
  EXPECT_EQ(diffs[0].value2, "20");
}

}  // namespace
}  // namespace campion::core
