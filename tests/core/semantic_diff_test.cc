#include "core/semantic_diff.h"

#include <gtest/gtest.h>

namespace campion::core {
namespace {

using bdd::BddManager;
using bdd::BddRef;
using util::Community;
using util::Prefix;
using util::PrefixRange;

// --- route map helpers -------------------------------------------------------

ir::RouterConfig ConfigWithList(const char* name,
                                std::vector<PrefixRange> ranges) {
  ir::RouterConfig config;
  ir::PrefixList list;
  list.name = name;
  for (const auto& r : ranges) {
    list.entries.push_back({ir::LineAction::kPermit, r, {}});
  }
  config.prefix_lists[name] = std::move(list);
  return config;
}

ir::RouteMapClause Clause(ir::ClauseAction action,
                          std::vector<std::string> prefix_lists,
                          std::vector<ir::RouteMapSet> sets = {}) {
  ir::RouteMapClause clause;
  clause.action = action;
  if (!prefix_lists.empty()) {
    ir::RouteMapMatch match;
    match.kind = ir::RouteMapMatch::Kind::kPrefixList;
    match.names = std::move(prefix_lists);
    clause.matches.push_back(std::move(match));
  }
  clause.sets = std::move(sets);
  return clause;
}

ir::RouteMapSet LocalPref(std::uint32_t value) {
  ir::RouteMapSet set;
  set.kind = ir::RouteMapSet::Kind::kLocalPreference;
  set.value = value;
  return set;
}

class RouteMapClassesTest : public ::testing::Test {
 protected:
  RouteMapClassesTest()
      : config_(ConfigWithList(
            "NETS", {PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32)})),
        layout_(mgr_, {}) {}

  BddManager mgr_;
  ir::RouterConfig config_;
  encode::RouteAdvLayout layout_;
};

TEST_F(RouteMapClassesTest, ClassesPartitionTheValidSpace) {
  ir::RouteMap map;
  map.name = "M";
  map.clauses.push_back(Clause(ir::ClauseAction::kDeny, {"NETS"}));
  map.clauses.push_back(Clause(ir::ClauseAction::kPermit, {}));
  map.default_action = ir::ClauseAction::kDeny;

  encode::PolicyEncoder encoder(layout_, config_);
  auto classes = BuildRouteMapClasses(layout_, encoder, map);
  ASSERT_EQ(classes.size(), 2u);  // Clause 2 swallows the rest: no default.

  // Disjoint and covering Valid().
  BddRef unioned = mgr_.False();
  for (std::size_t i = 0; i < classes.size(); ++i) {
    for (std::size_t j = i + 1; j < classes.size(); ++j) {
      EXPECT_FALSE(
          mgr_.Intersects(classes[i].predicate, classes[j].predicate));
    }
    unioned = mgr_.Or(unioned, classes[i].predicate);
  }
  EXPECT_EQ(unioned, layout_.Valid());
}

TEST_F(RouteMapClassesTest, DefaultClassAppearsWhenReachable) {
  ir::RouteMap map;
  map.name = "M";
  map.clauses.push_back(Clause(ir::ClauseAction::kDeny, {"NETS"}));
  map.default_action = ir::ClauseAction::kPermit;

  encode::PolicyEncoder encoder(layout_, config_);
  auto classes = BuildRouteMapClasses(layout_, encoder, map);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_FALSE(classes[0].is_default);
  EXPECT_FALSE(classes[0].action.accept);
  EXPECT_TRUE(classes[1].is_default);
  EXPECT_TRUE(classes[1].action.accept);
  EXPECT_NE(classes[1].text.find("default accept"), std::string::npos);
}

TEST_F(RouteMapClassesTest, FallThroughAccumulatesSets) {
  // Term 1 sets local-pref and falls through; term 2 accepts.
  ir::RouteMap map;
  map.name = "M";
  map.clauses.push_back(
      Clause(ir::ClauseAction::kFallThrough, {"NETS"}, {LocalPref(200)}));
  map.clauses.push_back(Clause(ir::ClauseAction::kPermit, {}));
  map.default_action = ir::ClauseAction::kDeny;

  encode::PolicyEncoder encoder(layout_, config_);
  auto classes = BuildRouteMapClasses(layout_, encoder, map);
  ASSERT_EQ(classes.size(), 2u);
  // One class accepts with lp=200 (went through term 1), one without.
  bool with_lp = false;
  bool without_lp = false;
  for (const auto& cls : classes) {
    ASSERT_TRUE(cls.action.accept);
    if (cls.action.local_pref == 200u) with_lp = true;
    if (!cls.action.local_pref.has_value()) without_lp = true;
  }
  EXPECT_TRUE(with_lp);
  EXPECT_TRUE(without_lp);
}

TEST_F(RouteMapClassesTest, FallThroughIntoDefaultKeepsSets) {
  ir::RouteMap map;
  map.name = "M";
  map.clauses.push_back(
      Clause(ir::ClauseAction::kFallThrough, {"NETS"}, {LocalPref(70)}));
  map.default_action = ir::ClauseAction::kPermit;

  encode::PolicyEncoder encoder(layout_, config_);
  auto classes = BuildRouteMapClasses(layout_, encoder, map);
  ASSERT_EQ(classes.size(), 2u);
  bool found = false;
  for (const auto& cls : classes) {
    if (cls.action.accept && cls.action.local_pref == 70u) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RouteMapClassesTest, UnreachableClauseProducesNoClass) {
  ir::RouteMap map;
  map.name = "M";
  map.clauses.push_back(Clause(ir::ClauseAction::kDeny, {"NETS"}));
  map.clauses.push_back(Clause(ir::ClauseAction::kPermit, {"NETS"}));  // Dead.
  map.default_action = ir::ClauseAction::kDeny;

  encode::PolicyEncoder encoder(layout_, config_);
  auto classes = BuildRouteMapClasses(layout_, encoder, map);
  // Dead clause contributes nothing; remaining space is the default.
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_TRUE(classes[1].is_default);
}

// --- SemanticDiffRouteMaps ----------------------------------------------------

TEST(SemanticDiffRouteMapsTest, IdenticalMapsHaveNoDifferences) {
  ir::RouterConfig config = ConfigWithList(
      "NETS", {PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32)});
  ir::RouteMap map;
  map.name = "M";
  map.clauses.push_back(Clause(ir::ClauseAction::kDeny, {"NETS"}));
  map.clauses.push_back(Clause(ir::ClauseAction::kPermit, {}));

  BddManager mgr;
  encode::RouteAdvLayout layout(mgr, {});
  auto diffs = SemanticDiffRouteMaps(layout, config, map, config, map);
  EXPECT_TRUE(diffs.empty());
}

TEST(SemanticDiffRouteMapsTest, StructurallyDifferentButEquivalent) {
  // Map A denies NETS then permits all; map B permits NOT-NETS... expressed
  // as: deny NETS, permit rest — split over two equivalent list layouts.
  ir::RouterConfig config1 = ConfigWithList(
      "NETS", {PrefixRange(*Prefix::Parse("10.8.0.0/15"), 16, 32)});
  ir::RouterConfig config2 = ConfigWithList(
      "NETS", {PrefixRange(*Prefix::Parse("10.8.0.0/16"), 16, 32),
               PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32)});
  ir::RouteMap map;
  map.name = "M";
  map.clauses.push_back(Clause(ir::ClauseAction::kDeny, {"NETS"}));
  map.clauses.push_back(Clause(ir::ClauseAction::kPermit, {}));

  BddManager mgr;
  encode::RouteAdvLayout layout(mgr, {});
  auto diffs = SemanticDiffRouteMaps(layout, config1, map, config2, map);
  EXPECT_TRUE(diffs.empty()) << "equivalent lists flagged as different";
}

TEST(SemanticDiffRouteMapsTest, AttributeDifferenceOnAcceptedRoutes) {
  ir::RouterConfig config = ConfigWithList(
      "NETS", {PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32)});
  ir::RouteMap map1;
  map1.name = "M";
  map1.clauses.push_back(
      Clause(ir::ClauseAction::kPermit, {"NETS"}, {LocalPref(200)}));
  ir::RouteMap map2 = map1;
  map2.clauses[0].sets[0].value = 150;

  BddManager mgr;
  encode::RouteAdvLayout layout(mgr, {});
  auto diffs = SemanticDiffRouteMaps(layout, config, map1, config, map2);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_TRUE(diffs[0].action1.accept);
  EXPECT_TRUE(diffs[0].action2.accept);
  EXPECT_EQ(diffs[0].action1.local_pref, 200u);
  EXPECT_EQ(diffs[0].action2.local_pref, 150u);
}

TEST(SemanticDiffRouteMapsTest, DifferenceSetsAreDisjointAndCorrect) {
  // The union of difference input sets must be exactly the set where the
  // two maps disagree on accept/reject or attributes.
  ir::RouterConfig config1 = ConfigWithList(
      "L", {PrefixRange(*Prefix::Parse("10.0.0.0/8"), 8, 32)});
  ir::RouterConfig config2 = ConfigWithList(
      "L", {PrefixRange(*Prefix::Parse("10.0.0.0/8"), 8, 24)});
  ir::RouteMap map;
  map.name = "M";
  map.clauses.push_back(Clause(ir::ClauseAction::kPermit, {"L"}));
  map.default_action = ir::ClauseAction::kDeny;

  BddManager mgr;
  encode::RouteAdvLayout layout(mgr, {});
  auto diffs = SemanticDiffRouteMaps(layout, config1, map, config2, map);
  ASSERT_EQ(diffs.size(), 1u);
  // The disagreement space is lengths 25..32 under 10/8.
  BddRef expected = mgr.Diff(
      layout.MatchPrefixRange(PrefixRange(*Prefix::Parse("10.0.0.0/8"), 8, 32)),
      layout.MatchPrefixRange(
          PrefixRange(*Prefix::Parse("10.0.0.0/8"), 8, 24)));
  EXPECT_EQ(diffs[0].input_set, expected);
}

// --- ACLs ----------------------------------------------------------------------

ir::AclLine Line(ir::LineAction action, const char* dst_prefix,
                 std::optional<std::uint8_t> protocol = std::nullopt) {
  ir::AclLine line;
  line.action = action;
  line.protocol = protocol;
  line.dst = util::IpWildcard(*Prefix::Parse(dst_prefix));
  return line;
}

TEST(AclClassesTest, ImplicitDenyClassIsLast) {
  ir::Acl acl;
  acl.name = "A";
  acl.lines.push_back(Line(ir::LineAction::kPermit, "10.0.0.0/8"));
  BddManager mgr;
  encode::PacketLayout layout(mgr);
  auto classes = BuildAclClasses(layout, acl);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_FALSE(classes[0].is_default);
  EXPECT_TRUE(classes[1].is_default);
  EXPECT_EQ(classes[1].action, ir::LineAction::kDeny);
}

TEST(AclClassesTest, ShadowedLineProducesNoClass) {
  ir::Acl acl;
  acl.name = "A";
  acl.lines.push_back(Line(ir::LineAction::kDeny, "10.0.0.0/8"));
  acl.lines.push_back(Line(ir::LineAction::kPermit, "10.1.0.0/16"));  // Dead.
  BddManager mgr;
  encode::PacketLayout layout(mgr);
  auto classes = BuildAclClasses(layout, acl);
  ASSERT_EQ(classes.size(), 2u);  // The deny line and the implicit deny.
}

TEST(SemanticDiffAclsTest, IdenticalAclsEquivalent) {
  ir::Acl acl;
  acl.name = "A";
  acl.lines.push_back(Line(ir::LineAction::kPermit, "10.0.0.0/8",
                           ir::kProtoTcp));
  acl.lines.push_back(Line(ir::LineAction::kDeny, "0.0.0.0/0"));
  BddManager mgr;
  encode::PacketLayout layout(mgr);
  EXPECT_TRUE(SemanticDiffAcls(layout, acl, acl).empty());
}

TEST(SemanticDiffAclsTest, ReorderedDisjointLinesEquivalent) {
  ir::Acl acl1;
  acl1.name = "A";
  acl1.lines.push_back(Line(ir::LineAction::kPermit, "10.1.0.0/16"));
  acl1.lines.push_back(Line(ir::LineAction::kDeny, "10.2.0.0/16"));
  ir::Acl acl2;
  acl2.name = "A";
  acl2.lines.push_back(Line(ir::LineAction::kDeny, "10.2.0.0/16"));
  acl2.lines.push_back(Line(ir::LineAction::kPermit, "10.1.0.0/16"));
  BddManager mgr;
  encode::PacketLayout layout(mgr);
  EXPECT_TRUE(SemanticDiffAcls(layout, acl1, acl2).empty());
}

TEST(SemanticDiffAclsTest, ActionFlipIsOneDifference) {
  ir::Acl acl1;
  acl1.name = "A";
  acl1.lines.push_back(Line(ir::LineAction::kPermit, "10.1.0.0/16"));
  ir::Acl acl2 = acl1;
  acl2.lines[0].action = ir::LineAction::kDeny;
  BddManager mgr;
  encode::PacketLayout layout(mgr);
  auto diffs = SemanticDiffAcls(layout, acl1, acl2);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].action1, ir::LineAction::kPermit);
  EXPECT_EQ(diffs[0].action2, ir::LineAction::kDeny);
  EXPECT_EQ(diffs[0].input_set,
            layout.MatchLine(acl1.lines[0]));
}

TEST(SemanticDiffAclsTest, OverlappingReorderIsDifference) {
  // Overlapping permit/deny swapped: the overlap behaves differently.
  ir::Acl acl1;
  acl1.name = "A";
  acl1.lines.push_back(Line(ir::LineAction::kPermit, "10.0.0.0/8"));
  acl1.lines.push_back(Line(ir::LineAction::kDeny, "10.1.0.0/16"));  // Dead.
  ir::Acl acl2;
  acl2.name = "A";
  acl2.lines.push_back(Line(ir::LineAction::kDeny, "10.1.0.0/16"));
  acl2.lines.push_back(Line(ir::LineAction::kPermit, "10.0.0.0/8"));
  BddManager mgr;
  encode::PacketLayout layout(mgr);
  auto diffs = SemanticDiffAcls(layout, acl1, acl2);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].input_set,
            layout.MatchDstPrefix(*Prefix::Parse("10.1.0.0/16")));
}

TEST(SemanticDiffAclsTest, DifferencesAreSymmetric) {
  ir::Acl acl1;
  acl1.name = "A";
  acl1.lines.push_back(Line(ir::LineAction::kPermit, "10.1.0.0/16"));
  acl1.lines.push_back(Line(ir::LineAction::kPermit, "10.2.0.0/16"));
  ir::Acl acl2;
  acl2.name = "A";
  acl2.lines.push_back(Line(ir::LineAction::kPermit, "10.1.0.0/16"));
  BddManager mgr;
  encode::PacketLayout layout(mgr);
  auto forward = SemanticDiffAcls(layout, acl1, acl2);
  auto backward = SemanticDiffAcls(layout, acl2, acl1);
  ASSERT_EQ(forward.size(), 1u);
  ASSERT_EQ(backward.size(), 1u);
  EXPECT_EQ(forward[0].input_set, backward[0].input_set);
  EXPECT_EQ(forward[0].action1, backward[0].action2);
}

}  // namespace
}  // namespace campion::core
