// End-to-end daemon tests: HTTP responses byte-identical to the one-shot
// CLI (text and JSON, --threads 1 and 4, cold cache and warm), the session
// commit/rollback lifecycle, the template-cache hit/miss/off metadata
// headers, the /metrics exposition, the obs envelope, and the API's error
// statuses. The server runs in-process on an ephemeral loopback port; the
// CLI reference output comes from the real `campion` binary via
// CAMPION_CLI_PATH, so this is a genuine cross-binary determinism check.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/http.h"
#include "server/service.h"
#include "tests/testdata.h"
#include "util/json.h"

#ifndef CAMPION_CLI_PATH
#error "CAMPION_CLI_PATH must be defined by the build"
#endif

namespace campion::server {
namespace {

std::string RunCommandStdout(const std::string& command_line,
                             int* exit_code = nullptr) {
  std::string command = command_line + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  std::string output;
  if (pipe == nullptr) return output;
  std::array<char, 4096> buffer;
  std::size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  if (exit_code != nullptr) {
    *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return output;
}

std::string RunCliStdout(const std::string& args, int* exit_code = nullptr) {
  return RunCommandStdout(std::string(CAMPION_CLI_PATH) + " " + args,
                          exit_code);
}

std::string JsonString(const std::string& text) {
  return "\"" + util::JsonEscape(text) + "\"";
}

std::string DiffRequestBody(const std::string& config1,
                            const std::string& config2,
                            const std::string& extra = "") {
  return "{\"config1\":" + JsonString(config1) +
         ",\"config2\":" + JsonString(config2) + extra + "}";
}

// One server per fixture instantiation, torn down with the test.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServiceOptions options) {
    service_ = std::make_unique<DiffService>(options);
    server_ = std::make_unique<HttpServer>(
        "127.0.0.1", 0,
        [this](const HttpRequest& request) {
          return service_->Handle(request);
        },
        /*num_workers=*/2);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    // The same wiring campion_serve_main does: /metrics reads the
    // transport's keep-alive reuse counter through the service.
    service_->SetKeepaliveReuses(
        [this] { return server_->keepalive_reuses(); });
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  HttpClientResponse Fetch(const std::string& method,
                           const std::string& target,
                           const std::string& body = "") {
    HttpClientResponse response;
    std::string error;
    EXPECT_TRUE(HttpFetch("127.0.0.1", server_->port(), method, target, body,
                          &response, &error))
        << error;
    return response;
  }

  std::unique_ptr<DiffService> service_;
  std::unique_ptr<HttpServer> server_;
};

// Writes the fig1 pair to disk once so the CLI can read it.
class ServerCliParityTest : public ServerTest {
 protected:
  static void SetUpTestSuite() {
    dir_ = std::filesystem::temp_directory_path() /
           ("campion-server-test-" + std::to_string(getpid()));
    std::filesystem::create_directories(dir_);
    Write("cisco.cfg", testing::kFig1Cisco);
    Write("juniper.conf", testing::kFig1Juniper);
    // The daemon loads POSTed bodies under the synthetic filenames
    // "config1"/"config2" (it has no file paths). JSON reports cite
    // structural locations as <filename>:<line>, so byte-parity for
    // --format=json needs the CLI run against files with those names.
    Write("config1", testing::kFig1Cisco);
    Write("config2", testing::kFig1Juniper);
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static void Write(const std::string& name, const std::string& text) {
    std::ofstream out(dir_ / name);
    out << text;
  }

  static std::string Path(const std::string& name) {
    return (dir_ / name).string();
  }

  static std::filesystem::path dir_;
};

std::filesystem::path ServerCliParityTest::dir_;

TEST_F(ServerCliParityTest, DiffBodyMatchesCliAtThreads1And4) {
  for (const unsigned threads : {1u, 4u}) {
    ServiceOptions options;
    options.diff.num_threads = threads;
    // The daemon's defaults differ from the CLI's (reorder=sift via
    // campion_serve) — assert parity under the daemon-like setup too.
    options.diff.reorder = core::DiffOptions::ReorderMode::kSift;
    // This test exercises the TEMPLATE cache cold/warm; with the result
    // cache on, the warm request would replay before touching it
    // (result_cache_test covers that path).
    options.result_cache = false;
    StartServer(options);

    int cli_exit = 0;
    const std::string cli = RunCliStdout("--threads=" +
                                             std::to_string(threads) + " " +
                                             Path("cisco.cfg") + " " +
                                             Path("juniper.conf"),
                                         &cli_exit);
    ASSERT_EQ(cli_exit, 2);  // fig1 has differences.
    ASSERT_FALSE(cli.empty());

    // Cold cache (miss) and warm cache (hit) must both match the CLI byte
    // for byte.
    const std::string body =
        DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
    HttpClientResponse cold = Fetch("POST", "/diff", body);
    ASSERT_EQ(cold.status, 200);
    EXPECT_EQ(cold.headers["x-campion-template-cache"], "miss");
    EXPECT_EQ(cold.headers["x-campion-equivalent"], "false");
    EXPECT_EQ(cold.body, cli) << "threads=" << threads << " (cold)";

    HttpClientResponse warm = Fetch("POST", "/diff", body);
    ASSERT_EQ(warm.status, 200);
    EXPECT_EQ(warm.headers["x-campion-template-cache"], "hit");
    EXPECT_EQ(warm.body, cli) << "threads=" << threads << " (warm)";

    server_->Stop();
    server_.reset();
    service_.reset();
  }
}

TEST_F(ServerCliParityTest, JsonFormatMatchesCli) {
  StartServer(ServiceOptions{});
  const std::string cli =
      RunCommandStdout("cd " + dir_.string() + " && " + CAMPION_CLI_PATH +
                       " --format=json config1 config2");
  HttpClientResponse response = Fetch(
      "POST", "/diff",
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper,
                      ",\"format\":\"json\""));
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["content-type"], "application/json");
  EXPECT_EQ(response.body, cli);
}

TEST_F(ServerCliParityTest, SessionDiffMatchesOneShotDiff) {
  StartServer(ServiceOptions{});
  ASSERT_EQ(Fetch("PUT", "/sessions/r1/running", testing::kFig1Cisco).status,
            200);
  ASSERT_EQ(
      Fetch("PUT", "/sessions/r1/candidate", testing::kFig1Juniper).status,
      200);
  HttpClientResponse session_diff = Fetch("GET", "/sessions/r1/diff");
  HttpClientResponse oneshot = Fetch(
      "POST", "/diff",
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper));
  ASSERT_EQ(session_diff.status, 200);
  EXPECT_EQ(session_diff.body, oneshot.body);
}

TEST_F(ServerTest, SessionLifecycleCommitAndRollback) {
  StartServer(ServiceOptions{});
  // Missing pieces -> 404 / 409 in order.
  EXPECT_EQ(Fetch("GET", "/sessions/edge/diff").status, 404);
  ASSERT_EQ(Fetch("PUT", "/sessions/edge/running", testing::kFig1Cisco).status,
            200);
  EXPECT_EQ(Fetch("GET", "/sessions/edge/diff").status, 409);
  EXPECT_EQ(Fetch("POST", "/sessions/edge/commit", "").status, 409);

  // Candidate uploaded: diff works, commit promotes, candidate is gone.
  ASSERT_EQ(
      Fetch("PUT", "/sessions/edge/candidate", testing::kFig1Juniper).status,
      200);
  EXPECT_EQ(Fetch("GET", "/sessions/edge/diff").status, 200);
  EXPECT_EQ(Fetch("POST", "/sessions/edge/commit", "").status, 200);
  HttpClientResponse status = Fetch("GET", "/sessions/edge");
  EXPECT_NE(status.body.find("\"has_running\":true"), std::string::npos);
  EXPECT_NE(status.body.find("\"has_candidate\":false"), std::string::npos);

  // After commit, running==old candidate: diffing against the same text is
  // equivalent.
  ASSERT_EQ(
      Fetch("PUT", "/sessions/edge/candidate", testing::kFig1Juniper).status,
      200);
  HttpClientResponse same = Fetch("GET", "/sessions/edge/diff");
  EXPECT_EQ(same.headers["x-campion-equivalent"], "true");

  // Rollback discards the candidate; a second rollback conflicts.
  EXPECT_EQ(Fetch("POST", "/sessions/edge/rollback", "").status, 200);
  EXPECT_EQ(Fetch("POST", "/sessions/edge/rollback", "").status, 409);

  // Listing and deletion.
  HttpClientResponse list = Fetch("GET", "/sessions");
  EXPECT_NE(list.body.find("\"name\":\"edge\""), std::string::npos);
  EXPECT_EQ(Fetch("DELETE", "/sessions/edge").status, 200);
  EXPECT_EQ(Fetch("DELETE", "/sessions/edge").status, 404);
}

TEST_F(ServerTest, MetricsExposesCacheAndRequestCounters) {
  ServiceOptions options;
  StartServer(options);
  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);

  HttpClientResponse metrics = Fetch("GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("server.diff_requests 2"), std::string::npos);
  // The second identical request replays from the result cache before the
  // template cache is consulted: one template miss, one result hit.
  EXPECT_NE(metrics.body.find("server.template_cache_misses 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("server.result_cache_hits 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("server.result_cache_misses 1"),
            std::string::npos);
  // Per-request obs metrics folded into the daemon totals.
  EXPECT_NE(metrics.body.find("diff.route_map_pairs"), std::string::npos);
}

TEST_F(ServerTest, CacheOffReportsOffAndStillMatches) {
  ServiceOptions cached;
  StartServer(cached);
  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  const std::string with_cache = Fetch("POST", "/diff", body).body;
  server_->Stop();
  server_.reset();
  service_.reset();

  ServiceOptions uncached;
  uncached.cache = false;
  StartServer(uncached);
  HttpClientResponse response = Fetch("POST", "/diff", body);
  EXPECT_EQ(response.headers["x-campion-template-cache"], "off");
  EXPECT_EQ(response.body, with_cache);
}

TEST_F(ServerTest, ObsEnvelopeCarriesSpansAndMetrics) {
  StartServer(ServiceOptions{});
  HttpClientResponse response = Fetch(
      "POST", "/diff",
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper,
                      ",\"obs\":true"));
  ASSERT_EQ(response.status, 200);
  util::JsonValue envelope;
  std::string error;
  ASSERT_TRUE(util::ParseJson(response.body, envelope, &error)) << error;
  ASSERT_TRUE(envelope.Find("report") != nullptr);
  const util::JsonValue* obs = envelope.Find("obs");
  ASSERT_TRUE(obs != nullptr);
  EXPECT_TRUE(obs->Find("spans") != nullptr);
  EXPECT_TRUE(obs->Find("metrics") != nullptr);
}

// The concurrency tentpole: with the pipeline no longer serialized,
// simultaneous /diff requests must still each return the exact CLI bytes —
// scoped metrics capture is what keeps concurrent requests from perturbing
// each other (or the report).
TEST_F(ServerCliParityTest, ConcurrentDiffRequestsMatchCliByteParity) {
  ServiceOptions options;
  options.diff.num_threads = 2;  // Fan out inside requests too.
  // Template-dedup assertions below need every request to actually reach
  // the template cache; a result-cache replay would make the counts racy.
  options.result_cache = false;
  StartServer(options);

  int cli_exit = 0;
  const std::string cli = RunCliStdout(
      "--threads=1 " + Path("cisco.cfg") + " " + Path("juniper.conf"),
      &cli_exit);
  ASSERT_EQ(cli_exit, 2);
  ASSERT_FALSE(cli.empty());

  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  constexpr int kClients = 4;
  std::vector<std::string> bodies(kClients);
  std::vector<int> statuses(kClients, 0);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      HttpClientResponse response;
      std::string error;
      if (HttpFetch("127.0.0.1", server_->port(), "POST", "/diff", body,
                    &response, &error)) {
        statuses[i] = response.status;
        bodies[i] = response.body;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(statuses[i], 200) << "client " << i;
    EXPECT_EQ(bodies[i], cli) << "client " << i;
  }
  // Every request's metrics were captured: 4 diffs folded, exactly one
  // template build among them.
  HttpClientResponse metrics = Fetch("GET", "/metrics");
  EXPECT_NE(metrics.body.find("server.diff_requests 4"), std::string::npos);
  const TemplateCache::Stats stats = service_->CacheStats();
  EXPECT_EQ(stats.hits + stats.misses, 4u);
  EXPECT_GE(stats.hits, 3u);  // Concurrent misses dedup through the build lock.
}

TEST_F(ServerTest, KeepAliveConnectionReuseIsCountedAndExposed) {
  StartServer(ServiceOptions{});
  HttpClientConnection connection;
  std::string error;
  ASSERT_TRUE(connection.Connect("127.0.0.1", server_->port(), &error))
      << error;
  HttpClientResponse response;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(connection.Roundtrip("GET", "/healthz", "", &response, &error))
        << error;
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "ok\n");
  }
  // Request 4 on the same connection: three reuses so far, and this
  // request's own reuse is counted before the handler renders /metrics.
  ASSERT_TRUE(connection.Roundtrip("GET", "/metrics", "", &response, &error))
      << error;
  EXPECT_NE(response.body.find("server.keepalive_reuses 3"),
            std::string::npos)
      << response.body;
  EXPECT_EQ(server_->keepalive_reuses(), 3u);
}

TEST_F(ServerTest, PrometheusFormatExposesTypedFamiliesAndHistograms) {
  StartServer(ServiceOptions{});
  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);

  HttpClientResponse metrics = Fetch("GET", "/metrics?format=prometheus");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers["content-type"].find("version=0.0.4"),
            std::string::npos);
  const std::string& text = metrics.body;
  EXPECT_NE(text.find("# TYPE campion_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE campion_request_duration_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("campion_request_duration_ns_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("campion_phase_duration_ns_bucket{phase=\"diff\",le="),
            std::string::npos);
  // Watermark-style metrics expose as gauges, counters as counters.
  EXPECT_NE(text.find("# TYPE campion_bdd_mem_peak_bytes gauge"),
            std::string::npos);

  // Cumulative bucket counts must be non-decreasing in le order, ending at
  // _count (the same invariant the CI smoke job greps for).
  std::uint64_t previous = 0;
  std::uint64_t final_count = 0;
  std::size_t bucket_lines = 0;
  std::istringstream lines(text);
  std::string line;
  const std::string prefix = "campion_request_duration_ns_bucket{le=";
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) == 0) {
      const std::size_t space = line.rfind(' ');
      const std::uint64_t value =
          std::strtoull(line.substr(space + 1).c_str(), nullptr, 10);
      EXPECT_GE(value, previous) << line;
      previous = value;
      ++bucket_lines;
    }
    if (line.rfind("campion_request_duration_ns_count ", 0) == 0) {
      final_count =
          std::strtoull(line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
    }
  }
  EXPECT_GE(bucket_lines, 2u);  // At least one real bucket plus +Inf.
  EXPECT_EQ(previous, final_count);  // +Inf bucket == total count.
  // The two diffs; the scrape itself records only after rendering.
  EXPECT_EQ(final_count, 2u);

  EXPECT_EQ(Fetch("GET", "/metrics?format=yaml").status, 400);
}

TEST_F(ServerTest, PlainMetricsExposeLatencyQuantiles) {
  StartServer(ServiceOptions{});
  ASSERT_EQ(Fetch("POST", "/diff",
                  DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper))
                .status,
            200);
  HttpClientResponse metrics = Fetch("GET", "/metrics");
  for (const char* line :
       {"server.latency.diff.count 1", "server.latency.diff.p50_ns ",
        "server.latency.diff.p95_ns ", "server.latency.diff.p99_ns ",
        "server.phase.parse.count 1", "server.phase.diff.p50_ns ",
        "server.latency.request.count "}) {
    EXPECT_NE(metrics.body.find(line), std::string::npos) << line;
  }
}

TEST_F(ServerTest, DebugRequestsExposeFlightRecorderRing) {
  ServiceOptions options;
  // Both requests must run the full pipeline so both records carry phase
  // timings and a template disposition (the replay path is covered by
  // result_cache_test's FlightRecorderReplaysStoredDisposition).
  options.result_cache = false;
  StartServer(options);
  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);

  HttpClientResponse list = Fetch("GET", "/debug/requests");
  ASSERT_EQ(list.status, 200);
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::ParseJson(list.body, parsed, &error)) << error;
  const util::JsonValue* requests = parsed.Find("requests");
  ASSERT_TRUE(requests != nullptr);
  ASSERT_EQ(requests->array.size(), 2u);
  // Newest first; both diffs retained with phase breakdown and cache
  // disposition.
  const util::JsonValue& newest = requests->array[0];
  EXPECT_EQ(newest.Find("id")->number, 2.0);
  EXPECT_EQ(newest.Find("endpoint")->string, "/diff");
  EXPECT_EQ(newest.Find("cache")->string, "hit");
  EXPECT_EQ(requests->array[1].Find("cache")->string, "miss");
  EXPECT_GT(newest.Find("wall_ns")->number, 0.0);
  EXPECT_GT(newest.Find("phases")->Find("diff_ns")->number, 0.0);
  EXPECT_FALSE(newest.Find("template_key")->string.empty());
  // Both requests hit the same template: identical key digests.
  EXPECT_EQ(newest.Find("template_key")->string,
            requests->array[1].Find("template_key")->string);

  // Detail view carries the span tree while the entry ranks in the
  // slowest-K.
  HttpClientResponse detail = Fetch("GET", "/debug/requests/1");
  ASSERT_EQ(detail.status, 200);
  util::JsonValue entry;
  ASSERT_TRUE(util::ParseJson(detail.body, entry, &error)) << error;
  const util::JsonValue* trace = entry.Find("trace");
  ASSERT_TRUE(trace != nullptr);
  EXPECT_TRUE(trace->Find("spans") != nullptr);

  EXPECT_EQ(Fetch("GET", "/debug/requests/999").status, 404);
  EXPECT_EQ(Fetch("GET", "/debug/requests/bogus").status, 400);
}

TEST_F(ServerTest, DebugCacheAndSessionsViews) {
  ServiceOptions options;
  options.result_cache = false;  // Both diffs must reach the template cache.
  StartServer(options);
  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  ASSERT_EQ(Fetch("PUT", "/sessions/core1/running", testing::kFig1Cisco).status,
            200);

  HttpClientResponse cache = Fetch("GET", "/debug/cache");
  ASSERT_EQ(cache.status, 200);
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::ParseJson(cache.body, parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("misses")->number, 1.0);
  EXPECT_EQ(parsed.Find("hits")->number, 1.0);
  const util::JsonValue* entries = parsed.Find("entries");
  ASSERT_TRUE(entries != nullptr);
  ASSERT_EQ(entries->array.size(), 1u);
  EXPECT_EQ(entries->array[0].Find("key")->string.size(), 16u);  // Hex FNV64.
  EXPECT_EQ(entries->array[0].Find("hits")->number, 1.0);
  EXPECT_GT(entries->array[0].Find("resident_bytes")->number, 0.0);

  HttpClientResponse sessions = Fetch("GET", "/debug/sessions");
  ASSERT_EQ(sessions.status, 200);
  ASSERT_TRUE(util::ParseJson(sessions.body, parsed, &error)) << error;
  const util::JsonValue* list = parsed.Find("sessions");
  ASSERT_TRUE(list != nullptr);
  ASSERT_EQ(list->array.size(), 1u);
  EXPECT_EQ(list->array[0].Find("name")->string, "core1");
  EXPECT_GT(list->array[0].Find("running_bytes")->number, 0.0);
  EXPECT_EQ(list->array[0].Find("candidate_bytes")->number, 0.0);
}

TEST_F(ServerTest, FlightRecorderOffAnswers404) {
  ServiceOptions options;
  options.flight_recorder = false;
  StartServer(options);
  ASSERT_EQ(Fetch("POST", "/diff",
                  DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper))
                .status,
            200);
  EXPECT_EQ(Fetch("GET", "/debug/requests").status, 404);
  EXPECT_EQ(service_->Recorder().size(), 0u);
}

TEST_F(ServerTest, FlightRecorderMemoryStaysBoundedOver200Requests) {
  ServiceOptions options;
  options.flight_recorder_entries = 16;
  options.flight_recorder_spans = 4;
  // The slowest-K assertion needs the repeated requests to actually run
  // the pipeline; with the result cache on, replays would be uniformly
  // fast and the final full diff would not rank.
  options.result_cache = false;
  StartServer(options);
  // Cheap diff executions (static routes only: no BDD work) still flow
  // through the recorder; a couple of full ones salt the slowest-K pool.
  const std::string cheap =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper,
                      ",\"checks\":\"static\"");
  const std::string full =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  ASSERT_EQ(Fetch("POST", "/diff", full).status, 200);
  for (int i = 0; i < 198; ++i) {
    ASSERT_EQ(Fetch("POST", "/diff", cheap).status, 200);
  }
  ASSERT_EQ(Fetch("POST", "/diff", full).status, 200);

  // The ring holds exactly N entries with at most K traces, regardless of
  // how many requests flowed through.
  EXPECT_EQ(service_->Recorder().size(), 16u);
  EXPECT_LE(service_->Recorder().TraceCount(), 4u);

  HttpClientResponse list = Fetch("GET", "/debug/requests");
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::ParseJson(list.body, parsed, &error)) << error;
  const util::JsonValue* requests = parsed.Find("requests");
  ASSERT_EQ(requests->array.size(), 16u);
  EXPECT_EQ(requests->array[0].Find("id")->number, 200.0);  // Newest first.
  // The final full diff is the slowest thing in the ring: its trace
  // survived the shedding.
  EXPECT_EQ(requests->array[0].Find("trace_retained")->boolean, true);
}

TEST_F(ServerTest, ErrorStatuses) {
  StartServer(ServiceOptions{});
  EXPECT_EQ(Fetch("GET", "/nope").status, 404);
  EXPECT_EQ(Fetch("GET", "/diff").status, 405);
  EXPECT_EQ(Fetch("POST", "/diff", "not json").status, 400);
  EXPECT_EQ(Fetch("POST", "/diff", "{\"config1\":\"x\"}").status, 400);
  // Present but unparseable config text.
  EXPECT_EQ(Fetch("POST", "/diff",
                  DiffRequestBody("garbage that is neither vendor", "also"))
                .status,
            422);
  EXPECT_EQ(Fetch("POST", "/diff",
                  DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper,
                                  ",\"format\":\"yaml\""))
                .status,
            400);
  EXPECT_EQ(Fetch("PUT", "/sessions/bad!name/running", "x").status, 400);
  EXPECT_EQ(Fetch("GET", "/healthz").status, 200);
}

}  // namespace
}  // namespace campion::server
