// Result-cache tests: the incremental re-diff cache must be SOUND (a hit
// replays byte-identical output — adversarial structural-key collisions
// included), bounded (LRU eviction under the bytes watermark), and
// invisible in the response body (batch output byte-identical with the
// cache on or off at any worker count).

#include "server/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "server/http.h"
#include "server/service.h"
#include "tests/testdata.h"
#include "util/json.h"

namespace campion::server {
namespace {

std::string JsonString(const std::string& text) {
  return "\"" + util::JsonEscape(text) + "\"";
}

std::string DiffRequestBody(const std::string& config1,
                            const std::string& config2,
                            const std::string& extra = "") {
  return "{\"config1\":" + JsonString(config1) +
         ",\"config2\":" + JsonString(config2) + extra + "}";
}

std::shared_ptr<ResultCache::Result> MakeResult(const std::string& body) {
  auto result = std::make_shared<ResultCache::Result>();
  result->body = body;
  result->content_type = "text/plain; charset=utf-8";
  return result;
}

// --- unit level -----------------------------------------------------------

TEST(ResultCacheTest, HitReplaysAndMissRecords) {
  ResultCache cache{ResultCache::Options{}};
  std::uint64_t hash1 = 0;
  EXPECT_EQ(cache.Get("key-a", &hash1), nullptr);
  cache.Put("key-a", MakeResult("report-a"));
  std::uint64_t hash2 = 0;
  std::shared_ptr<const ResultCache::Result> hit = cache.Get("key-a", &hash2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->body, "report-a");
  EXPECT_EQ(hash1, hash2);  // Same key, same digest, miss or hit.
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(ResultCacheTest, EvictsLruUnderBytesWatermarkButNeverTheNewest) {
  ResultCache::Options options;
  options.max_resident_bytes = 1;  // Tighter than any single entry.
  ResultCache cache{options};
  cache.Put("key-a", MakeResult(std::string(256, 'a')));
  cache.Put("key-b", MakeResult(std::string(256, 'b')));
  cache.Put("key-c", MakeResult(std::string(256, 'c')));

  // Each Put evicted the incumbent: the newest entry always survives, so
  // a hot loop over one oversized pair still caches it.
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(cache.Get("key-a"), nullptr);
  EXPECT_EQ(cache.Get("key-b"), nullptr);
  ASSERT_NE(cache.Get("key-c"), nullptr);
}

TEST(ResultCacheTest, LruOrderRespectsHits) {
  ResultCache::Options options;
  options.max_entries = 2;
  ResultCache cache{options};
  cache.Put("key-a", MakeResult("a"));
  cache.Put("key-b", MakeResult("b"));
  ASSERT_NE(cache.Get("key-a"), nullptr);  // Bump a to MRU.
  cache.Put("key-c", MakeResult("c"));     // Evicts b, the LRU.
  EXPECT_NE(cache.Get("key-a"), nullptr);
  EXPECT_EQ(cache.Get("key-b"), nullptr);
  EXPECT_NE(cache.Get("key-c"), nullptr);
}

// --- daemon level ---------------------------------------------------------

class ResultCacheServerTest : public ::testing::Test {
 protected:
  void StartServer(ServiceOptions options, int http_threads = 2) {
    service_ = std::make_unique<DiffService>(options);
    server_ = std::make_unique<HttpServer>(
        "127.0.0.1", 0,
        [this](const HttpRequest& request) {
          return service_->Handle(request);
        },
        /*num_workers=*/http_threads);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  void StopServer() {
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    service_.reset();
  }

  void TearDown() override { StopServer(); }

  HttpClientResponse Fetch(const std::string& method,
                           const std::string& target,
                           const std::string& body = "") {
    HttpClientResponse response;
    std::string error;
    EXPECT_TRUE(HttpFetch("127.0.0.1", server_->port(), method, target, body,
                          &response, &error))
        << error;
    return response;
  }

  std::unique_ptr<DiffService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ResultCacheServerTest, WarmDiffReplaysByteIdentical) {
  StartServer(ServiceOptions{});
  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  HttpClientResponse cold = Fetch("POST", "/diff", body);
  ASSERT_EQ(cold.status, 200);
  EXPECT_EQ(cold.headers["x-campion-result-cache"], "miss");
  HttpClientResponse warm = Fetch("POST", "/diff", body);
  ASSERT_EQ(warm.status, 200);
  EXPECT_EQ(warm.headers["x-campion-result-cache"], "hit");
  EXPECT_EQ(warm.body, cold.body);
  // Replayed metadata matches the computed request's.
  EXPECT_EQ(warm.headers["x-campion-equivalent"],
            cold.headers["x-campion-equivalent"]);
  EXPECT_EQ(warm.headers["x-campion-template-cache"],
            cold.headers["x-campion-template-cache"]);

  HttpClientResponse metrics = Fetch("GET", "/metrics");
  EXPECT_NE(metrics.body.find("server.result_cache_hits 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("server.result_cache_misses 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("diff.result_cache_hits 1"), std::string::npos);
}

TEST_F(ResultCacheServerTest, ResultCacheOffReportsOffAndStillMatches) {
  StartServer(ServiceOptions{});
  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  const std::string reference = Fetch("POST", "/diff", body).body;
  StopServer();

  ServiceOptions uncached;
  uncached.result_cache = false;
  StartServer(uncached);
  for (int i = 0; i < 2; ++i) {
    HttpClientResponse response = Fetch("POST", "/diff", body);
    EXPECT_EQ(response.headers["x-campion-result-cache"], "off");
    EXPECT_EQ(response.body, reference);
  }
}

// The adversarial collision: two configs whose PR 5 structural keys are
// identical (matches untouched) but whose ACL actions differ. They share
// ONE template-cache entry and must occupy TWO result-cache entries with
// distinct bodies — a fingerprint keyed on the structural key alone would
// replay the wrong report here.
TEST_F(ResultCacheServerTest, StructuralCollisionDoesNotCrossReplay) {
  constexpr const char* kPermitSide =
      "hostname left\n"
      "ip access-list extended FILTER\n"
      " permit tcp 10.0.0.0 0.0.0.255 any eq 80\n"
      " deny ip any any\n"
      "interface GigabitEthernet0/0\n"
      " ip address 192.168.1.1 255.255.255.0\n"
      " ip access-group FILTER in\n";
  constexpr const char* kOtherSide =
      "hostname right\n"
      "ip access-list extended FILTER\n"
      " permit tcp 10.0.0.0 0.0.0.255 any eq 443\n"
      " deny ip any any\n"
      "interface GigabitEthernet0/0\n"
      " ip address 192.168.1.1 255.255.255.0\n"
      " ip access-group FILTER in\n";
  std::string deny_side = kPermitSide;
  deny_side.replace(deny_side.find(" permit tcp"), 11, " deny   tcp");

  StartServer(ServiceOptions{});
  HttpClientResponse first =
      Fetch("POST", "/diff", DiffRequestBody(kPermitSide, kOtherSide));
  HttpClientResponse second =
      Fetch("POST", "/diff", DiffRequestBody(deny_side, kOtherSide));
  ASSERT_EQ(first.status, 200);
  ASSERT_EQ(second.status, 200);
  // Both requests were computed (no cross-replay), and the reports differ:
  // permit-vs-deny flips which packets disagree.
  EXPECT_EQ(second.headers["x-campion-result-cache"], "miss");
  EXPECT_NE(first.body, second.body);

  // Same structural key -> one template entry; different canonical key ->
  // two result entries.
  const TemplateCache::Stats template_stats = service_->CacheStats();
  EXPECT_EQ(template_stats.entries, 1u);
  EXPECT_EQ(template_stats.hits, 1u);
  const ResultCache::Stats result_stats = service_->ResultCacheStats();
  EXPECT_EQ(result_stats.entries, 2u);
  EXPECT_EQ(result_stats.misses, 2u);

  // Replays stay distinct per canonical key.
  HttpClientResponse replay_first =
      Fetch("POST", "/diff", DiffRequestBody(kPermitSide, kOtherSide));
  EXPECT_EQ(replay_first.headers["x-campion-result-cache"], "hit");
  EXPECT_EQ(replay_first.body, first.body);
}

TEST_F(ResultCacheServerTest, SessionDiffSharesTheResultCache) {
  StartServer(ServiceOptions{});
  ASSERT_EQ(Fetch("PUT", "/sessions/r1/running", testing::kFig1Cisco).status,
            200);
  ASSERT_EQ(
      Fetch("PUT", "/sessions/r1/candidate", testing::kFig1Juniper).status,
      200);
  HttpClientResponse first = Fetch("GET", "/sessions/r1/diff");
  ASSERT_EQ(first.status, 200);
  EXPECT_EQ(first.headers["x-campion-result-cache"], "miss");
  HttpClientResponse again = Fetch("GET", "/sessions/r1/diff");
  EXPECT_EQ(again.headers["x-campion-result-cache"], "hit");
  EXPECT_EQ(again.body, first.body);
  // The one-shot endpoint computes the same pair: same cache entry.
  HttpClientResponse oneshot = Fetch(
      "POST", "/diff",
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper));
  EXPECT_EQ(oneshot.headers["x-campion-result-cache"], "hit");
  EXPECT_EQ(oneshot.body, first.body);
}

TEST_F(ResultCacheServerTest, ObsRequestsBypassTheCache) {
  StartServer(ServiceOptions{});
  const std::string body = DiffRequestBody(
      testing::kFig1Cisco, testing::kFig1Juniper, ",\"obs\":true");
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  HttpClientResponse second = Fetch("POST", "/diff", body);
  // Never served from cache: the envelope must carry THIS request's trace.
  EXPECT_EQ(second.headers["x-campion-result-cache"], "bypass");
  EXPECT_EQ(service_->ResultCacheStats().entries, 0u);
}

TEST_F(ResultCacheServerTest, FlightRecorderReplaysStoredDisposition) {
  StartServer(ServiceOptions{});
  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  HttpClientResponse list = Fetch("GET", "/debug/requests");
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::ParseJson(list.body, parsed, &error)) << error;
  const util::JsonValue* requests = parsed.Find("requests");
  ASSERT_TRUE(requests != nullptr);
  ASSERT_EQ(requests->array.size(), 2u);
  const util::JsonValue& replay = requests->array[0];   // Newest first.
  const util::JsonValue& computed = requests->array[1];
  EXPECT_EQ(computed.Find("result_cache")->string, "miss");
  EXPECT_EQ(replay.Find("result_cache")->string, "hit");
  // The template disposition and key are REPLAYED from the computed
  // request — the hit never touched the template cache.
  EXPECT_EQ(replay.Find("cache")->string, "miss");
  EXPECT_EQ(replay.Find("template_key")->string,
            computed.Find("template_key")->string);
  EXPECT_EQ(replay.Find("result_key")->string,
            computed.Find("result_key")->string);
  EXPECT_FALSE(replay.Find("result_key")->string.empty());
}

TEST_F(ResultCacheServerTest, DebugResultCacheViewListsEntries) {
  StartServer(ServiceOptions{});
  const std::string body =
      DiffRequestBody(testing::kFig1Cisco, testing::kFig1Juniper);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  ASSERT_EQ(Fetch("POST", "/diff", body).status, 200);
  HttpClientResponse view = Fetch("GET", "/debug/result_cache");
  ASSERT_EQ(view.status, 200);
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::ParseJson(view.body, parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("hits")->number, 1.0);
  EXPECT_EQ(parsed.Find("misses")->number, 1.0);
  const util::JsonValue* entries = parsed.Find("entries");
  ASSERT_TRUE(entries != nullptr);
  ASSERT_EQ(entries->array.size(), 1u);
  EXPECT_EQ(entries->array[0].Find("key")->string.size(), 16u);  // Hex FNV64.
  EXPECT_EQ(entries->array[0].Find("hits")->number, 1.0);
  EXPECT_GT(entries->array[0].Find("resident_bytes")->number, 0.0);
}

// Batch responses must be byte-identical across worker counts and cache
// modes: the merge is declaration-ordered and dispositions live only in
// headers.
TEST_F(ResultCacheServerTest, BatchParityAcrossThreadsAndCacheModes) {
  const std::vector<std::pair<std::string, std::string>> fleet = {
      {testing::kFig1Cisco, testing::kFig1Juniper},
      {testing::kFig1Juniper, testing::kFig1Cisco},
      {testing::kFig1Cisco, testing::kFig1Cisco},
  };
  std::string batch = "{\"pairs\":[";
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (i > 0) batch += ',';
    batch += "{\"name\":\"pair" + std::to_string(i) +
             "\",\"config1\":" + JsonString(fleet[i].first) +
             ",\"config2\":" + JsonString(fleet[i].second) + "}";
  }
  batch += "]}";

  std::string reference;
  for (const unsigned threads : {1u, 4u}) {
    for (const bool cache_on : {true, false}) {
      ServiceOptions options;
      options.diff.num_threads = threads;
      options.result_cache = cache_on;
      StartServer(options);
      HttpClientResponse cold = Fetch("POST", "/batch", batch);
      ASSERT_EQ(cold.status, 200);
      EXPECT_EQ(cold.headers["x-campion-batch-pairs"], "3");
      EXPECT_EQ(cold.headers["x-campion-result-cache"],
                cache_on ? "miss" : "off");
      if (reference.empty()) {
        reference = cold.body;
      } else {
        EXPECT_EQ(cold.body, reference)
            << "threads=" << threads << " cache=" << cache_on;
      }
      // Warm replay: all pairs hit, byte-identical.
      HttpClientResponse warm = Fetch("POST", "/batch", batch);
      EXPECT_EQ(warm.headers["x-campion-result-cache"],
                cache_on ? "hit" : "off");
      EXPECT_EQ(warm.body, reference);
      StopServer();
    }
  }
  ASSERT_FALSE(reference.empty());

  // The merged body is structurally sound JSON-with-text-reports.
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::ParseJson(reference, parsed, &error)) << error;
  ASSERT_EQ(parsed.Find("pairs")->array.size(), 3u);
  EXPECT_EQ(parsed.Find("pairs")->array[2].Find("equivalent")->boolean, true);
  EXPECT_EQ(parsed.Find("pairs_total")->number, 3.0);
}

TEST_F(ResultCacheServerTest, BatchErrorStatuses) {
  StartServer(ServiceOptions{});
  EXPECT_EQ(Fetch("GET", "/batch").status, 405);
  EXPECT_EQ(Fetch("POST", "/batch", "not json").status, 400);
  EXPECT_EQ(Fetch("POST", "/batch", "{\"pairs\":[]}").status, 400);
  EXPECT_EQ(Fetch("POST", "/batch", "{\"pairs\":[{\"name\":\"x\"}]}").status,
            400);
  // A pair that fails to parse reports per-pair, not whole-batch.
  const std::string mixed =
      "{\"pairs\":[{\"name\":\"ok\",\"config1\":" +
      JsonString(testing::kFig1Cisco) +
      ",\"config2\":" + JsonString(testing::kFig1Juniper) +
      "},{\"name\":\"broken\",\"config1\":\"garbage neither vendor\","
      "\"config2\":\"likewise\"}]}";
  HttpClientResponse response = Fetch("POST", "/batch", mixed);
  ASSERT_EQ(response.status, 200);
  util::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(util::ParseJson(response.body, parsed, &error)) << error;
  const util::JsonValue* pairs = parsed.Find("pairs");
  ASSERT_EQ(pairs->array.size(), 2u);
  EXPECT_EQ(pairs->array[0].Find("status")->number, 200.0);
  EXPECT_EQ(pairs->array[1].Find("status")->number, 422.0);
  EXPECT_FALSE(pairs->array[1].Find("error")->string.empty());
  EXPECT_EQ(parsed.Find("equivalent")->boolean, false);
}

}  // namespace
}  // namespace campion::server
