#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <random>

namespace campion::bdd {
namespace {

TEST(BddTest, Terminals) {
  BddManager mgr(4);
  EXPECT_EQ(mgr.False(), kFalse);
  EXPECT_EQ(mgr.True(), kTrue);
  EXPECT_TRUE(mgr.IsFalse(kFalse));
  EXPECT_TRUE(mgr.IsTrue(kTrue));
  EXPECT_TRUE(mgr.IsTerminal(kFalse));
  EXPECT_TRUE(mgr.IsTerminal(kTrue));
}

TEST(BddTest, VariableCanonicity) {
  BddManager mgr(4);
  EXPECT_EQ(mgr.VarTrue(0), mgr.VarTrue(0));
  EXPECT_NE(mgr.VarTrue(0), mgr.VarTrue(1));
  EXPECT_EQ(mgr.Not(mgr.Not(mgr.VarTrue(2))), mgr.VarTrue(2));
}

TEST(BddTest, BooleanIdentities) {
  BddManager mgr(4);
  BddRef x = mgr.VarTrue(0);
  BddRef y = mgr.VarTrue(1);
  EXPECT_EQ(mgr.And(x, kTrue), x);
  EXPECT_EQ(mgr.And(x, kFalse), kFalse);
  EXPECT_EQ(mgr.Or(x, kFalse), x);
  EXPECT_EQ(mgr.Or(x, kTrue), kTrue);
  EXPECT_EQ(mgr.And(x, x), x);
  EXPECT_EQ(mgr.Or(x, x), x);
  EXPECT_EQ(mgr.And(x, mgr.Not(x)), kFalse);
  EXPECT_EQ(mgr.Or(x, mgr.Not(x)), kTrue);
  EXPECT_EQ(mgr.Xor(x, x), kFalse);
  EXPECT_EQ(mgr.Xor(x, mgr.Not(x)), kTrue);
  EXPECT_EQ(mgr.And(x, y), mgr.And(y, x));
  EXPECT_EQ(mgr.Or(x, y), mgr.Or(y, x));
}

TEST(BddTest, DeMorgan) {
  BddManager mgr(4);
  BddRef x = mgr.VarTrue(0);
  BddRef y = mgr.VarTrue(1);
  EXPECT_EQ(mgr.Not(mgr.And(x, y)), mgr.Or(mgr.Not(x), mgr.Not(y)));
  EXPECT_EQ(mgr.Not(mgr.Or(x, y)), mgr.And(mgr.Not(x), mgr.Not(y)));
}

TEST(BddTest, IteTruthTable) {
  BddManager mgr(4);
  BddRef x = mgr.VarTrue(0);
  BddRef y = mgr.VarTrue(1);
  BddRef z = mgr.VarTrue(2);
  BddRef f = mgr.Ite(x, y, z);
  // f(1, b, c) == b; f(0, b, c) == c -- check via implications.
  EXPECT_EQ(mgr.And(f, x), mgr.And(mgr.And(x, y), kTrue));
  EXPECT_EQ(mgr.And(f, mgr.Not(x)), mgr.And(mgr.Not(x), z));
}

TEST(BddTest, SubsetAndIntersects) {
  BddManager mgr(4);
  BddRef x = mgr.VarTrue(0);
  BddRef y = mgr.VarTrue(1);
  BddRef xy = mgr.And(x, y);
  EXPECT_TRUE(mgr.Subset(xy, x));
  EXPECT_FALSE(mgr.Subset(x, xy));
  EXPECT_TRUE(mgr.Intersects(x, y));
  EXPECT_FALSE(mgr.Intersects(x, mgr.Not(x)));
  EXPECT_TRUE(mgr.Subset(kFalse, xy));
}

TEST(BddTest, SatCountSimple) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.SatCount(kTrue), 8.0);
  EXPECT_EQ(mgr.SatCount(kFalse), 0.0);
  EXPECT_EQ(mgr.SatCount(mgr.VarTrue(0)), 4.0);
  EXPECT_EQ(mgr.SatCount(mgr.And(mgr.VarTrue(0), mgr.VarTrue(2))), 2.0);
  EXPECT_EQ(mgr.SatCount(mgr.Or(mgr.VarTrue(0), mgr.VarTrue(1))), 6.0);
  EXPECT_EQ(mgr.SatCount(mgr.Xor(mgr.VarTrue(0), mgr.VarTrue(1))), 4.0);
}

TEST(BddTest, SatCountIsComplementary) {
  BddManager mgr(10);
  std::mt19937_64 rng(17);
  BddRef f = kFalse;
  for (int i = 0; i < 12; ++i) {
    BddRef cube = kTrue;
    for (Var v = 0; v < 10; ++v) {
      switch (rng() % 3) {
        case 0: cube = mgr.And(cube, mgr.VarTrue(v)); break;
        case 1: cube = mgr.And(cube, mgr.VarFalse(v)); break;
        default: break;
      }
    }
    f = mgr.Or(f, cube);
  }
  EXPECT_EQ(mgr.SatCount(f) + mgr.SatCount(mgr.Not(f)), 1024.0);
}

TEST(BddTest, AnySatSatisfies) {
  BddManager mgr(6);
  BddRef f = mgr.And(mgr.VarTrue(1), mgr.VarFalse(4));
  auto cube = mgr.AnySat(f);
  ASSERT_TRUE(cube.has_value());
  EXPECT_EQ((*cube)[1], 1);
  EXPECT_EQ((*cube)[4], 0);
  EXPECT_FALSE(mgr.AnySat(kFalse).has_value());
}

TEST(BddTest, MinSatIsLexicographicallyLeast) {
  BddManager mgr(4);
  // f = x0 | x1: least total assignment is 0100 (x0=0, x1=1, rest 0).
  BddRef f = mgr.Or(mgr.VarTrue(0), mgr.VarTrue(1));
  auto cube = mgr.MinSat(f);
  ASSERT_TRUE(cube.has_value());
  EXPECT_EQ(*cube, (Cube{0, 1, 0, 0}));
  // f = x0 & !x1: least is 1000.
  auto cube2 = mgr.MinSat(mgr.And(mgr.VarTrue(0), mgr.VarFalse(1)));
  EXPECT_EQ(*cube2, (Cube{1, 0, 0, 0}));
}

TEST(BddTest, ForEachSatPathCoversFunction) {
  BddManager mgr(4);
  BddRef f = mgr.Or(mgr.And(mgr.VarTrue(0), mgr.VarTrue(1)),
                    mgr.And(mgr.VarFalse(0), mgr.VarTrue(3)));
  // Reconstruct f from its paths and compare.
  BddRef rebuilt = kFalse;
  int paths = 0;
  mgr.ForEachSatPath(f, [&](const Cube& cube) {
    ++paths;
    BddRef term = kTrue;
    for (Var v = 0; v < cube.size(); ++v) {
      if (cube[v] == 1) term = mgr.And(term, mgr.VarTrue(v));
      if (cube[v] == 0) term = mgr.And(term, mgr.VarFalse(v));
    }
    rebuilt = mgr.Or(rebuilt, term);
  });
  EXPECT_EQ(rebuilt, f);
  EXPECT_GE(paths, 2);
}

TEST(BddTest, ExistsRemovesVariable) {
  BddManager mgr(4);
  BddRef f = mgr.And(mgr.VarTrue(0), mgr.VarTrue(2));
  std::vector<bool> quantified(4, false);
  quantified[2] = true;
  BddRef g = mgr.Exists(f, quantified);
  EXPECT_EQ(g, mgr.VarTrue(0));
  auto support = mgr.Support(g);
  EXPECT_EQ(support, (std::vector<Var>{0}));
}

TEST(BddTest, ExistsOfDisjunction) {
  BddManager mgr(4);
  // exists x1. (x0 & x1) | (!x1 & x2)  ==  x0 | x2
  BddRef f = mgr.Or(mgr.And(mgr.VarTrue(0), mgr.VarTrue(1)),
                    mgr.And(mgr.VarFalse(1), mgr.VarTrue(2)));
  std::vector<bool> quantified(4, false);
  quantified[1] = true;
  EXPECT_EQ(mgr.Exists(f, quantified),
            mgr.Or(mgr.VarTrue(0), mgr.VarTrue(2)));
}

TEST(BddTest, ExistsIsMonotone) {
  BddManager mgr(8);
  std::mt19937_64 rng(99);
  std::vector<bool> quantified(8, false);
  quantified[3] = quantified[5] = true;
  for (int trial = 0; trial < 20; ++trial) {
    BddRef f = kFalse;
    for (int i = 0; i < 6; ++i) {
      BddRef cube = kTrue;
      for (Var v = 0; v < 8; ++v) {
        switch (rng() % 3) {
          case 0: cube = mgr.And(cube, mgr.VarTrue(v)); break;
          case 1: cube = mgr.And(cube, mgr.VarFalse(v)); break;
          default: break;
        }
      }
      f = mgr.Or(f, cube);
    }
    BddRef g = mgr.Exists(f, quantified);
    EXPECT_TRUE(mgr.Subset(f, g));  // f => exists.f
  }
}

TEST(BddTest, SupportListsDependencies) {
  BddManager mgr(6);
  BddRef f = mgr.Ite(mgr.VarTrue(1), mgr.VarTrue(3), mgr.VarTrue(5));
  EXPECT_EQ(mgr.Support(f), (std::vector<Var>{1, 3, 5}));
  EXPECT_TRUE(mgr.Support(kTrue).empty());
}

TEST(BddTest, NodeCountOfParity) {
  BddManager mgr(8);
  BddRef parity = kFalse;
  for (Var v = 0; v < 8; ++v) parity = mgr.Xor(parity, mgr.VarTrue(v));
  // With complement edges parity needs only one node per level: the two
  // classic per-level nodes are complements of each other and share one
  // arena node. (Without complement edges this function takes 2n - 1.)
  EXPECT_EQ(mgr.NodeCount(parity), 8u);
  // The complement shares the DAG outright.
  EXPECT_EQ(mgr.NodeCount(mgr.Not(parity)), 8u);
}

TEST(BddTest, AddVarsExtendsOrder) {
  BddManager mgr(2);
  Var first = mgr.AddVars(3);
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(mgr.num_vars(), 5u);
  BddRef f = mgr.And(mgr.VarTrue(0), mgr.VarTrue(4));
  EXPECT_NE(f, kFalse);
}

// Property test: random expression pairs evaluated against explicit truth
// tables over 10 variables.
class BddRandomPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomPropertyTest, MatchesTruthTableSemantics) {
  constexpr Var kVars = 10;
  BddManager mgr(kVars);
  std::mt19937_64 rng(GetParam());

  // A random expression tree, plus its truth table of 1024 bits.
  struct Expr {
    BddRef bdd;
    std::vector<bool> table;
  };
  auto leaf = [&](Var v) {
    Expr e;
    e.bdd = mgr.VarTrue(v);
    e.table.resize(1u << kVars);
    for (std::size_t a = 0; a < e.table.size(); ++a) {
      e.table[a] = (a >> (kVars - 1 - v)) & 1u;
    }
    return e;
  };
  std::vector<Expr> pool;
  for (Var v = 0; v < kVars; ++v) pool.push_back(leaf(v));
  for (int step = 0; step < 30; ++step) {
    const Expr& a = pool[rng() % pool.size()];
    const Expr& b = pool[rng() % pool.size()];
    Expr e;
    e.table.resize(1u << kVars);
    switch (rng() % 4) {
      case 0:
        e.bdd = mgr.And(a.bdd, b.bdd);
        for (std::size_t i = 0; i < e.table.size(); ++i) {
          e.table[i] = a.table[i] && b.table[i];
        }
        break;
      case 1:
        e.bdd = mgr.Or(a.bdd, b.bdd);
        for (std::size_t i = 0; i < e.table.size(); ++i) {
          e.table[i] = a.table[i] || b.table[i];
        }
        break;
      case 2:
        e.bdd = mgr.Xor(a.bdd, b.bdd);
        for (std::size_t i = 0; i < e.table.size(); ++i) {
          e.table[i] = a.table[i] != b.table[i];
        }
        break;
      default:
        e.bdd = mgr.Not(a.bdd);
        for (std::size_t i = 0; i < e.table.size(); ++i) {
          e.table[i] = !a.table[i];
        }
        break;
    }
    pool.push_back(std::move(e));
  }

  const Expr& final_expr = pool.back();
  // 1. SatCount matches the table's popcount.
  std::size_t ones = 0;
  for (bool b : final_expr.table) ones += b;
  EXPECT_EQ(mgr.SatCount(final_expr.bdd), static_cast<double>(ones));
  // 2. Canonicity: rebuilding from the truth table gives the same node.
  BddRef rebuilt = kFalse;
  for (std::size_t a = 0; a < final_expr.table.size(); ++a) {
    if (!final_expr.table[a]) continue;
    BddRef cube = kTrue;
    for (Var v = 0; v < kVars; ++v) {
      bool bit = (a >> (kVars - 1 - v)) & 1u;
      cube = mgr.And(cube, bit ? mgr.VarTrue(v) : mgr.VarFalse(v));
    }
    rebuilt = mgr.Or(rebuilt, cube);
  }
  EXPECT_EQ(rebuilt, final_expr.bdd);
  // 3. MinSat decodes to the least set bit of the table.
  auto min_cube = mgr.MinSat(final_expr.bdd);
  if (ones == 0) {
    EXPECT_FALSE(min_cube.has_value());
  } else {
    ASSERT_TRUE(min_cube.has_value());
    std::size_t decoded = 0;
    for (Var v = 0; v < kVars; ++v) {
      decoded = (decoded << 1) | static_cast<std::size_t>((*min_cube)[v]);
    }
    std::size_t least = 0;
    while (!final_expr.table[least]) ++least;
    EXPECT_EQ(decoded, least);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomPropertyTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace campion::bdd
