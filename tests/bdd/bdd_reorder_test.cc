// Dynamic-reordering coverage: adjacent-level swaps (ref stability, the
// regular-then-edge invariant, level bookkeeping), randomized truth-table
// oracles across Sift() in both modes, group sifting keeping declared
// blocks contiguous, root-based dead-node reclamation, the auto-sift
// growth trigger, and order-insensitivity of the satisfying-assignment
// queries through DeclarationOrderView.

#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

namespace campion::bdd {
namespace {

// Evaluates f on the assignment encoded by `bits` (variable v reads bit
// kVars-1-v, matching the other oracle tests). Walks by variable id, so it
// is valid under any level order.
bool Eval(const BddManager& mgr, BddRef f, std::size_t bits, Var num_vars) {
  BddRef node = f;
  while (!mgr.IsTerminal(node)) {
    Var v = mgr.NodeVar(node);
    bool bit = (bits >> (num_vars - 1 - v)) & 1u;
    node = bit ? mgr.NodeHigh(node) : mgr.NodeLow(node);
  }
  return node == kTrue;
}

// Builds a pool of random functions over kVars variables alongside their
// truth tables.
struct Pool {
  std::vector<BddRef> refs;
  std::vector<std::vector<bool>> tables;
};

Pool BuildRandomPool(BddManager& mgr, Var num_vars, int steps,
                     std::uint64_t seed) {
  const std::size_t rows = std::size_t{1} << num_vars;
  std::mt19937_64 rng(seed);
  Pool pool;
  for (Var v = 0; v < num_vars; ++v) {
    pool.refs.push_back(mgr.VarTrue(v));
    std::vector<bool> table(rows);
    for (std::size_t a = 0; a < rows; ++a) {
      table[a] = (a >> (num_vars - 1 - v)) & 1u;
    }
    pool.tables.push_back(std::move(table));
  }
  for (int step = 0; step < steps; ++step) {
    const std::size_t i = rng() % pool.refs.size();
    const std::size_t j = rng() % pool.refs.size();
    BddRef f = kFalse;
    std::vector<bool> table(rows);
    switch (rng() % 4) {
      case 0:
        f = mgr.And(pool.refs[i], pool.refs[j]);
        for (std::size_t a = 0; a < rows; ++a)
          table[a] = pool.tables[i][a] && pool.tables[j][a];
        break;
      case 1:
        f = mgr.Or(pool.refs[i], pool.refs[j]);
        for (std::size_t a = 0; a < rows; ++a)
          table[a] = pool.tables[i][a] || pool.tables[j][a];
        break;
      case 2:
        f = mgr.Xor(pool.refs[i], pool.refs[j]);
        for (std::size_t a = 0; a < rows; ++a)
          table[a] = pool.tables[i][a] != pool.tables[j][a];
        break;
      default:
        f = mgr.Diff(pool.refs[i], pool.refs[j]);
        for (std::size_t a = 0; a < rows; ++a)
          table[a] = pool.tables[i][a] && !pool.tables[j][a];
        break;
    }
    pool.refs.push_back(f);
    pool.tables.push_back(std::move(table));
  }
  return pool;
}

void ExpectPoolMatchesTables(const BddManager& mgr, const Pool& pool,
                             Var num_vars) {
  const std::size_t rows = std::size_t{1} << num_vars;
  for (std::size_t i = 0; i < pool.refs.size(); ++i) {
    for (std::size_t a = 0; a < rows; ++a) {
      ASSERT_EQ(Eval(mgr, pool.refs[i], a, num_vars),
                static_cast<bool>(pool.tables[i][a]))
          << "function " << i << " assignment " << a;
    }
  }
}

TEST(SwapAdjacentLevelsTest, PreservesFunctionsRefsAndInvariants) {
  constexpr Var kVars = 6;
  BddManager mgr(kVars);
  Pool pool = BuildRandomPool(mgr, kVars, 30, /*seed=*/42);
  std::vector<BddRef> before = pool.refs;

  // Bubble variable 0 from the top level to the bottom, one swap at a time.
  for (Var level = 0; level + 1 < kVars; ++level) {
    mgr.SwapAdjacentLevels(level);
    ASSERT_TRUE(mgr.CheckInvariants()) << "after swap at level " << level;
    // Level maps stay mutually inverse.
    for (Var v = 0; v < kVars; ++v) {
      ASSERT_EQ(mgr.VarAtLevel(mgr.LevelOf(v)), v);
    }
    ExpectPoolMatchesTables(mgr, pool, kVars);
  }
  EXPECT_EQ(mgr.LevelOf(0), kVars - 1);
  EXPECT_FALSE(mgr.HasIdentityOrder());
  // Refs are index+parity stable: the vector of refs is untouched.
  EXPECT_EQ(pool.refs, before);

  // Undo the permutation; the order returns to the identity.
  for (Var level = kVars - 1; level > 0; --level) {
    mgr.SwapAdjacentLevels(level - 1);
  }
  EXPECT_TRUE(mgr.HasIdentityOrder());
  ExpectPoolMatchesTables(mgr, pool, kVars);
}

TEST(SwapAdjacentLevelsTest, SwapIsItsOwnInverse) {
  BddManager mgr(4);
  BddRef f = mgr.Or(mgr.And(mgr.VarTrue(0), mgr.VarTrue(1)),
                    mgr.And(mgr.VarTrue(2), mgr.VarFalse(3)));
  std::size_t count = mgr.NodeCount(f);
  mgr.SwapAdjacentLevels(1);
  mgr.SwapAdjacentLevels(1);
  EXPECT_TRUE(mgr.HasIdentityOrder());
  EXPECT_TRUE(mgr.CheckInvariants());
  EXPECT_EQ(mgr.NodeCount(f), count);
  EXPECT_EQ(f, mgr.Or(mgr.And(mgr.VarTrue(0), mgr.VarTrue(1)),
                      mgr.And(mgr.VarTrue(2), mgr.VarFalse(3))));
}

class SiftOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(SiftOracleTest, VarSiftPreservesEveryFunction) {
  constexpr Var kVars = 8;
  BddManager mgr(kVars);
  Pool pool = BuildRandomPool(mgr, kVars, 50,
                              /*seed=*/GetParam() * 6151 + 3);
  SiftResult result = mgr.Sift(SiftMode::kVars, &pool.refs);
  EXPECT_GE(result.passes, 1u);
  EXPECT_LE(result.nodes_after, result.nodes_before);
  EXPECT_TRUE(mgr.CheckInvariants());
  ExpectPoolMatchesTables(mgr, pool, kVars);
  // Sifting again from the settled order can only break even.
  SiftResult again = mgr.Sift(SiftMode::kVars, &pool.refs);
  EXPECT_LE(again.nodes_after, result.nodes_after);
  ExpectPoolMatchesTables(mgr, pool, kVars);
}

TEST_P(SiftOracleTest, GroupSiftKeepsBlocksContiguousAndInOrder) {
  constexpr Var kVars = 8;
  BddManager mgr(kVars);
  mgr.DeclareVarBlock(0, 3);  // {0,1,2} move as one unit.
  mgr.DeclareVarBlock(4, 2);  // {4,5} move as one unit.
  Pool pool = BuildRandomPool(mgr, kVars, 50,
                              /*seed=*/GetParam() * 12289 + 7);
  mgr.Sift(SiftMode::kGroups, &pool.refs);
  EXPECT_TRUE(mgr.CheckInvariants());
  ExpectPoolMatchesTables(mgr, pool, kVars);
  // Each declared block still occupies consecutive levels in declaration
  // order within the block.
  EXPECT_EQ(mgr.LevelOf(1), mgr.LevelOf(0) + 1);
  EXPECT_EQ(mgr.LevelOf(2), mgr.LevelOf(0) + 2);
  EXPECT_EQ(mgr.LevelOf(5), mgr.LevelOf(4) + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiftOracleTest, ::testing::Range(1, 6));

TEST(SiftTest, RootBasedSiftReclaimsDeadNodes) {
  constexpr Var kVars = 10;
  BddManager mgr(kVars);
  // One function to keep, plus a pile of intermediates nothing references.
  BddRef keep = mgr.And(mgr.VarTrue(0), mgr.VarTrue(9));
  for (int i = 0; i < 50; ++i) {
    BddRef junk = mgr.Xor(mgr.VarTrue(i % kVars), keep);
    junk = mgr.And(junk, mgr.VarTrue((i + 3) % kVars));
  }
  std::size_t live_before = mgr.LiveNodeCount();
  std::vector<BddRef> roots{keep};
  SiftResult result = mgr.Sift(SiftMode::kVars, &roots);
  EXPECT_LT(mgr.LiveNodeCount(), live_before);
  EXPECT_LT(result.nodes_after, result.nodes_before);
  EXPECT_TRUE(mgr.CheckInvariants());
  // The kept ref still denotes its function.
  for (std::size_t a = 0; a < (std::size_t{1} << kVars); ++a) {
    bool expected = ((a >> (kVars - 1)) & 1u) && (a & 1u);
    ASSERT_EQ(Eval(mgr, keep, a, kVars), expected);
  }
}

TEST(SiftTest, PinAllSiftKeepsEveryExistingNode) {
  constexpr Var kVars = 6;
  BddManager mgr(kVars);
  Pool pool = BuildRandomPool(mgr, kVars, 30, /*seed=*/99);
  std::size_t live_before = mgr.LiveNodeCount();
  mgr.Sift(SiftMode::kVars, /*roots=*/nullptr);
  // Without roots every pre-existing node is pinned (an unknown caller may
  // hold a ref), so the arena cannot shrink below its starting liveness.
  EXPECT_GE(mgr.LiveNodeCount() + 1, live_before);  // +1: free-slot reuse.
  EXPECT_TRUE(mgr.CheckInvariants());
  ExpectPoolMatchesTables(mgr, pool, kVars);
}

TEST(SiftTest, StatsAccumulateAcrossSifts) {
  BddManager mgr(8);
  Pool pool = BuildRandomPool(mgr, 8, 40, /*seed=*/5);
  mgr.Sift(SiftMode::kVars, &pool.refs);
  BddStats stats = mgr.Stats();
  EXPECT_GE(stats.sift_passes, 1u);
  EXPECT_GT(stats.sift_swaps, 0u);
  EXPECT_GT(stats.sift_nodes_before, 0u);
  mgr.Sift(SiftMode::kVars, &pool.refs);
  BddStats more = mgr.Stats();
  EXPECT_GT(more.sift_passes, stats.sift_passes);
}

TEST(AutoSiftTest, GrowthTriggerFiresAndPreservesFunctions) {
  constexpr Var kVars = 16;
  const std::size_t kRows = std::size_t{1} << kVars;
  BddManager mgr(kVars);
  mgr.SetAutoSift(SiftMode::kVars, /*trigger_ratio=*/1.05);

  // Accumulate random minterms until the arena passes the trigger floor
  // and the growth check fires between two top-level operations.
  std::mt19937_64 rng(17);
  std::vector<bool> table(kRows, false);
  BddRef f = kFalse;
  int added = 0;
  auto add_minterm = [&] {
    std::size_t a = rng() % kRows;
    table[a] = true;
    BddRef m = kTrue;
    for (Var v = 0; v < kVars; ++v) {
      bool bit = (a >> (kVars - 1 - v)) & 1u;
      m = mgr.And(m, bit ? mgr.VarTrue(v) : mgr.VarFalse(v));
    }
    f = mgr.Or(f, m);
    ++added;
  };
  while (mgr.Stats().sift_passes == 0 && added < 4000) add_minterm();
  ASSERT_GE(mgr.Stats().sift_passes, 1u) << "trigger never fired";
  EXPECT_TRUE(mgr.CheckInvariants());
  // The accumulated union still matches the minterm set exactly.
  for (std::size_t a = 0; a < kRows; ++a) {
    ASSERT_EQ(Eval(mgr, f, a, kVars), static_cast<bool>(table[a]));
  }

  // Disabled, further growth never sifts again.
  mgr.DisableAutoSift();
  std::uint64_t passes = mgr.Stats().sift_passes;
  for (int i = 0; i < 200; ++i) add_minterm();
  EXPECT_EQ(mgr.Stats().sift_passes, passes);
  for (std::size_t a = 0; a < kRows; ++a) {
    ASSERT_EQ(Eval(mgr, f, a, kVars), static_cast<bool>(table[a]));
  }
}

TEST(DeclarationOrderViewTest, SatQueriesAreOrderInsensitive) {
  constexpr Var kVars = 8;
  // Reference manager: never reordered.
  BddManager plain(kVars);
  // Subject manager: same functions, then sifted.
  BddManager sifted(kVars);
  Pool plain_pool = BuildRandomPool(plain, kVars, 40, /*seed=*/21);
  Pool sifted_pool = BuildRandomPool(sifted, kVars, 40, /*seed=*/21);
  sifted.Sift(SiftMode::kVars, &sifted_pool.refs);
  ASSERT_FALSE(sifted.HasIdentityOrder());

  for (std::size_t i = 0; i < plain_pool.refs.size(); ++i) {
    // AnySat and MinSat pick branches top-down, so their cubes depend on
    // the order walked; the view pins them to the declaration order.
    EXPECT_EQ(plain.AnySat(plain_pool.refs[i]),
              sifted.AnySat(sifted_pool.refs[i]))
        << "function " << i;
    EXPECT_EQ(plain.MinSat(plain_pool.refs[i]),
              sifted.MinSat(sifted_pool.refs[i]))
        << "function " << i;
    std::vector<Cube> plain_paths;
    std::vector<Cube> sifted_paths;
    plain.ForEachSatPath(plain_pool.refs[i],
                         [&](const Cube& c) { plain_paths.push_back(c); });
    sifted.ForEachSatPath(sifted_pool.refs[i],
                          [&](const Cube& c) { sifted_paths.push_back(c); });
    EXPECT_EQ(plain_paths, sifted_paths) << "function " << i;
  }
}

TEST(DeclarationOrderViewTest, ViewIsIdentityWhenNeverReordered) {
  BddManager mgr(4);
  BddRef f = mgr.And(mgr.VarTrue(0), mgr.VarTrue(3));
  BddManager::OrderedView view = mgr.DeclarationOrderView(f);
  EXPECT_EQ(view.mgr, &mgr);
  EXPECT_EQ(view.ref, f);
}

TEST(SeedFromTest, SeededManagerInheritsSiftedOrder) {
  constexpr Var kVars = 8;
  BddManager tmpl(kVars);
  Pool pool = BuildRandomPool(tmpl, kVars, 40, /*seed=*/33);
  tmpl.Sift(SiftMode::kVars, &pool.refs);
  ASSERT_FALSE(tmpl.HasIdentityOrder());

  BddManager seeded;
  seeded.SeedFrom(tmpl);
  EXPECT_TRUE(seeded.CheckInvariants());
  for (Var v = 0; v < kVars; ++v) {
    EXPECT_EQ(seeded.LevelOf(v), tmpl.LevelOf(v));
  }
  // Template refs denote the same functions in the seeded manager, and
  // re-deriving a pool function interns onto the copied arena node.
  ExpectPoolMatchesTables(seeded, pool, kVars);
  EXPECT_EQ(seeded.And(pool.refs[0], pool.refs[1]),
            tmpl.And(pool.refs[0], pool.refs[1]));
}

}  // namespace
}  // namespace campion::bdd
