// Invariants of the BDD kernel's counters (BddStats) and memory accounting
// (BddMemoryStats): identities between lookups/hits/probes, bytes
// consistent with the reported capacities, monotone peaks, and load-factor
// bounds under the 50%-rehash policy.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bdd/bdd.h"

namespace campion::bdd {
namespace {

// Builds a moderately sized function so the tables do real work: the
// disjunction of conjunction chains over overlapping variable windows.
BddRef BuildWorkload(BddManager& mgr, Var num_vars) {
  BddRef result = mgr.False();
  for (Var start = 0; start + 8 <= num_vars; start += 4) {
    BddRef chain = mgr.True();
    for (Var v = start; v < start + 8; ++v) {
      chain = mgr.And(chain, (v % 3 == 0) ? mgr.VarFalse(v) : mgr.VarTrue(v));
    }
    result = mgr.Or(result, chain);
  }
  return result;
}

TEST(BddMemoryTest, FreshManagerReportsRestingFootprint) {
  BddManager mgr(16);
  BddMemoryStats mem = mgr.MemoryStats();
  // The shared terminal only: the arena holds one node (false is the
  // regular reference to it, true the complemented one), nothing has been
  // interned.
  EXPECT_EQ(mem.peak_live_nodes, 1u);
  EXPECT_EQ(mem.rehash_count, 0u);
  EXPECT_EQ(mem.unique_load_factor, 0.0);
  EXPECT_GT(mem.node_arena_bytes, 0u);
  EXPECT_GT(mem.unique_table_bytes, 0u);
  EXPECT_GT(mem.ite_cache_bytes, 0u);
  EXPECT_EQ(mem.total_bytes, mem.node_arena_bytes + mem.unique_table_bytes +
                                 mem.ite_cache_bytes + mem.scratch_bytes);
}

TEST(BddMemoryTest, BytesConsistentWithReportedCapacities) {
  BddManager mgr(64);
  BuildWorkload(mgr, 64);
  BddStats stats = mgr.Stats();
  BddMemoryStats mem = mgr.MemoryStats();
  // The unique table stores one 4-byte BddRef per slot; the byte figure
  // must cover exactly the reported capacity (capacity == size for a
  // vector assigned in one shot).
  EXPECT_EQ(mem.unique_table_bytes, stats.unique_capacity * sizeof(BddRef));
  // Cache bytes are a whole number of fixed-size entries.
  ASSERT_GT(stats.cache_capacity, 0u);
  EXPECT_EQ(mem.ite_cache_bytes % stats.cache_capacity, 0u);
  // The node arena reserves at least one Node (3 x 4 bytes) per node.
  EXPECT_GE(mem.node_arena_bytes, stats.arena_size * 12);
  EXPECT_EQ(mem.total_bytes, mem.node_arena_bytes + mem.unique_table_bytes +
                                 mem.ite_cache_bytes + mem.scratch_bytes);
}

TEST(BddMemoryTest, CounterIdentitiesHold) {
  BddManager mgr(64);
  BuildWorkload(mgr, 64);
  BddStats stats = mgr.Stats();
  // Every lookup either hit or missed; misses allocated a node, so the
  // arena accounts for them exactly (plus the shared terminal).
  EXPECT_GT(stats.unique_lookups, 0u);
  EXPECT_GE(stats.unique_lookups, stats.unique_hits);
  EXPECT_EQ(stats.arena_size - 1,
            static_cast<std::size_t>(stats.unique_lookups -
                                     stats.unique_hits));
  // Each lookup probes at least once.
  EXPECT_GE(stats.unique_probes, stats.unique_lookups);
  // Cache lookups are hits + misses by construction; hits never exceed
  // lookups.
  EXPECT_GE(stats.cache_lookups, stats.cache_hits);
}

TEST(BddMemoryTest, WarmCacheHitIsCountedAsHitNotMiss) {
  BddManager mgr(32);
  BddRef f = BuildWorkload(mgr, 32);
  BddRef g = mgr.VarTrue(1);
  BddRef first = mgr.Ite(f, g, mgr.False());
  BddStats before = mgr.Stats();
  // The identical top-level ITE resolves in the warm-hit fast path: one
  // more lookup, one more hit, no new misses, no new nodes.
  BddRef second = mgr.Ite(f, g, mgr.False());
  BddStats after = mgr.Stats();
  EXPECT_EQ(first, second);
  EXPECT_EQ(after.cache_lookups, before.cache_lookups + 1);
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1);
  EXPECT_EQ(after.arena_size, before.arena_size);
}

TEST(BddMemoryTest, PeakLiveNodesIsMonotoneAndTracksArena) {
  BddManager mgr(128);
  std::size_t last_peak = 0;
  for (Var v = 0; v + 8 <= 128; v += 8) {
    BddRef chain = mgr.True();
    for (Var w = v; w < v + 8; ++w) chain = mgr.And(chain, mgr.VarTrue(w));
    BddMemoryStats mem = mgr.MemoryStats();
    EXPECT_GE(mem.peak_live_nodes, last_peak);
    last_peak = mem.peak_live_nodes;
    // No garbage collection: the peak equals the arena size.
    EXPECT_EQ(mem.peak_live_nodes, mgr.ArenaSize());
  }
  EXPECT_GT(last_peak, 1u);
}

TEST(BddMemoryTest, RehashCountAndLoadFactorUnderGrowth) {
  BddManager mgr(8192);
  // Interning more nodes than the initial 8192-slot table can hold at 50%
  // load forces at least one rehash (each VarTrue interns one fresh node).
  for (Var v = 0; v < 8192; ++v) mgr.VarTrue(v);
  BddStats stats = mgr.Stats();
  BddMemoryStats mem = mgr.MemoryStats();
  EXPECT_EQ(stats.arena_size, 8192u + 1u);
  EXPECT_GE(mem.rehash_count, 1u);
  // The 50%-load rehash policy keeps the table at most half full.
  EXPECT_GT(mem.unique_load_factor, 0.0);
  EXPECT_LT(mem.unique_load_factor, 0.5);
  // Growth doubles: capacity stays a power of two and the byte figure
  // tracks it.
  EXPECT_EQ(stats.unique_capacity & (stats.unique_capacity - 1), 0u);
  EXPECT_EQ(mem.unique_table_bytes, stats.unique_capacity * sizeof(BddRef));
}

}  // namespace
}  // namespace campion::bdd
