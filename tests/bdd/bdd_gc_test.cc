// Mark-and-compact GC coverage: randomized build/drop/collect cycles with
// truth-table oracles (the roots' denoted functions survive compaction
// bit-for-bit), root remapping (including duplicate root pointers and
// complemented refs), arena/table/cache shrinkage, monotone gc_* counters,
// the watermark trigger, refusal mid-sift, SeedFrom from a compacted
// manager, and EncodingTemplate::Compact keeping template lookups sound.
// The asan-ubsan CI preset runs this harness under both sanitizers, which
// is what makes "no dangling ref survives compaction" a checked claim
// rather than a comment.

#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "encode/encoding_template.h"
#include "frontend/loader.h"
#include "tests/testdata.h"

namespace campion::bdd {
namespace {

// Evaluates f on the assignment encoded by `bits` (variable v reads bit
// num_vars-1-v, matching the reorder tests' oracle). Walks by variable id,
// so it is valid under any level order and any arena layout.
bool Eval(const BddManager& mgr, BddRef f, std::size_t bits, Var num_vars) {
  BddRef node = f;
  while (!mgr.IsTerminal(node)) {
    Var v = mgr.NodeVar(node);
    bool bit = (bits >> (num_vars - 1 - v)) & 1u;
    node = bit ? mgr.NodeHigh(node) : mgr.NodeLow(node);
  }
  return node == kTrue;
}

struct Pool {
  std::vector<BddRef> refs;
  std::vector<std::vector<bool>> tables;
};

Pool BuildRandomPool(BddManager& mgr, Var num_vars, int steps,
                     std::uint64_t seed) {
  const std::size_t rows = std::size_t{1} << num_vars;
  std::mt19937_64 rng(seed);
  Pool pool;
  for (Var v = 0; v < num_vars; ++v) {
    pool.refs.push_back(mgr.VarTrue(v));
    std::vector<bool> table(rows);
    for (std::size_t a = 0; a < rows; ++a) {
      table[a] = (a >> (num_vars - 1 - v)) & 1u;
    }
    pool.tables.push_back(std::move(table));
  }
  for (int step = 0; step < steps; ++step) {
    const std::size_t i = rng() % pool.refs.size();
    const std::size_t j = rng() % pool.refs.size();
    BddRef f = kFalse;
    std::vector<bool> table(rows);
    switch (rng() % 4) {
      case 0:
        f = mgr.And(pool.refs[i], pool.refs[j]);
        for (std::size_t a = 0; a < rows; ++a)
          table[a] = pool.tables[i][a] && pool.tables[j][a];
        break;
      case 1:
        f = mgr.Or(pool.refs[i], pool.refs[j]);
        for (std::size_t a = 0; a < rows; ++a)
          table[a] = pool.tables[i][a] || pool.tables[j][a];
        break;
      case 2:
        f = mgr.Xor(pool.refs[i], pool.refs[j]);
        for (std::size_t a = 0; a < rows; ++a)
          table[a] = pool.tables[i][a] != pool.tables[j][a];
        break;
      default:
        f = mgr.Diff(pool.refs[i], pool.refs[j]);
        for (std::size_t a = 0; a < rows; ++a)
          table[a] = pool.tables[i][a] && !pool.tables[j][a];
        break;
    }
    pool.refs.push_back(f);
    pool.tables.push_back(std::move(table));
  }
  return pool;
}

void ExpectPoolMatchesTables(const BddManager& mgr, const Pool& pool,
                             Var num_vars) {
  const std::size_t rows = std::size_t{1} << num_vars;
  for (std::size_t i = 0; i < pool.refs.size(); ++i) {
    for (std::size_t a = 0; a < rows; ++a) {
      ASSERT_EQ(Eval(mgr, pool.refs[i], a, num_vars),
                static_cast<bool>(pool.tables[i][a]))
          << "function " << i << " assignment " << a;
    }
  }
}

std::vector<BddRef*> RootsOf(Pool& pool) {
  std::vector<BddRef*> roots;
  for (BddRef& r : pool.refs) roots.push_back(&r);
  return roots;
}

TEST(GarbageCollectTest, DropsUnreachableKeepsRootFunctions) {
  constexpr Var kVars = 8;
  BddManager mgr(kVars);
  Pool pool = BuildRandomPool(mgr, kVars, 300, /*seed=*/0xc0ffee);

  // Keep every third function; the rest become garbage the moment their
  // handles leave the root set.
  Pool kept;
  for (std::size_t i = 0; i < pool.refs.size(); i += 3) {
    kept.refs.push_back(pool.refs[i]);
    kept.tables.push_back(pool.tables[i]);
  }
  const std::size_t live_before = mgr.LiveNodeCount();
  GcResult result = mgr.GarbageCollect(RootsOf(kept));

  EXPECT_EQ(result.live_before, live_before - 1);  // Counter excludes the
                                                   // shared terminal node.
  EXPECT_EQ(result.live_before - result.reclaimed, result.live_after);
  EXPECT_GT(result.reclaimed, 0u);
  // Compaction leaves no free slots: the arena IS the live set (+terminal).
  EXPECT_EQ(mgr.ArenaSize(), result.live_after + 1);
  EXPECT_TRUE(mgr.CheckInvariants());
  ExpectPoolMatchesTables(mgr, kept, kVars);

  const BddStats stats = mgr.Stats();
  EXPECT_EQ(stats.gc_runs, 1u);
  EXPECT_EQ(stats.gc_reclaimed, result.reclaimed);
}

TEST(GarbageCollectTest, RandomizedCyclesKeepOraclesAndMonotoneCounters) {
  constexpr Var kVars = 7;
  BddManager mgr(kVars);
  std::mt19937_64 rng(0xfeedface);
  Pool pool = BuildRandomPool(mgr, kVars, 120, /*seed=*/1);

  std::uint64_t last_runs = 0;
  std::uint64_t last_reclaimed = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    // Drop a random half of the pool, grow fresh garbage on top, collect.
    Pool survivors;
    for (std::size_t i = 0; i < pool.refs.size(); ++i) {
      if (rng() % 2 == 0 || i < kVars) {
        survivors.refs.push_back(pool.refs[i]);
        survivors.tables.push_back(pool.tables[i]);
      }
    }
    pool = std::move(survivors);
    Pool extra = BuildRandomPool(mgr, kVars, 60, /*seed=*/rng());
    for (std::size_t i = kVars; i < extra.refs.size(); ++i) {
      pool.refs.push_back(extra.refs[i]);
      pool.tables.push_back(extra.tables[i]);
    }

    GcResult result = mgr.GarbageCollect(RootsOf(pool));
    ASSERT_TRUE(mgr.CheckInvariants()) << "cycle " << cycle;
    ASSERT_EQ(mgr.ArenaSize(), result.live_after + 1);
    ExpectPoolMatchesTables(mgr, pool, kVars);

    // Counters only grow, and exactly by this collection's tally.
    const BddStats stats = mgr.Stats();
    ASSERT_EQ(stats.gc_runs, last_runs + 1);
    ASSERT_EQ(stats.gc_reclaimed, last_reclaimed + result.reclaimed);
    last_runs = stats.gc_runs;
    last_reclaimed = stats.gc_reclaimed;

    // The manager stays fully operational after compaction: keep building.
    Pool post = BuildRandomPool(mgr, kVars, 30, /*seed=*/rng());
    for (std::size_t i = kVars; i < post.refs.size(); ++i) {
      pool.refs.push_back(post.refs[i]);
      pool.tables.push_back(post.tables[i]);
    }
    ExpectPoolMatchesTables(mgr, pool, kVars);
  }
}

TEST(GarbageCollectTest, RemapsDuplicateAndComplementedRoots) {
  BddManager mgr(4);
  BddRef f = mgr.And(mgr.VarTrue(0), mgr.VarTrue(1));
  BddRef g = mgr.Not(f);  // Complement edge onto the same node.
  BddRef f_dup = f;
  // Garbage so the collection actually moves something.
  mgr.Xor(mgr.VarTrue(2), mgr.VarTrue(3));

  // The same pointer twice plus an alias: remapping must be idempotent per
  // pointer (values are read before any write-back).
  std::vector<BddRef*> roots = {&f, &f, &g, &f_dup};
  mgr.GarbageCollect(roots);

  EXPECT_TRUE(mgr.CheckInvariants());
  EXPECT_EQ(f, f_dup);
  EXPECT_EQ(mgr.Not(f), g);
  for (std::size_t bits = 0; bits < 16; ++bits) {
    const bool expect_f = ((bits >> 3) & 1u) && ((bits >> 2) & 1u);
    EXPECT_EQ(Eval(mgr, f, bits, 4), expect_f);
    EXPECT_EQ(Eval(mgr, g, bits, 4), !expect_f);
  }
}

TEST(GarbageCollectTest, ShrinksArenaTableAndCacheCapacity) {
  constexpr Var kVars = 10;
  BddManager mgr(kVars);
  Pool pool = BuildRandomPool(mgr, kVars, 3000, /*seed=*/42);
  const std::size_t bytes_before = mgr.MemoryStats().total_bytes;

  // Keep only the variables: nearly everything is garbage.
  Pool kept;
  for (Var v = 0; v < kVars; ++v) {
    kept.refs.push_back(pool.refs[v]);
    kept.tables.push_back(pool.tables[v]);
  }
  GcResult result = mgr.GarbageCollect(RootsOf(kept));

  EXPECT_EQ(result.live_after, static_cast<std::size_t>(kVars));
  EXPECT_LT(result.arena_bytes_after, result.arena_bytes_before);
  // The whole footprint shrinks, not just the node arena: unique table and
  // ITE cache are rebuilt at capacities sized to the survivors.
  EXPECT_LT(mgr.MemoryStats().total_bytes, bytes_before);
  const BddStats stats = mgr.Stats();
  EXPECT_EQ(stats.gc_compacted_bytes,
            result.arena_bytes_before - result.arena_bytes_after);
  ExpectPoolMatchesTables(mgr, kept, kVars);
}

TEST(GarbageCollectTest, WatermarkTriggersMaybeGarbageCollect) {
  constexpr Var kVars = 8;
  BddManager mgr(kVars);
  Pool pool = BuildRandomPool(mgr, kVars, 50, /*seed=*/7);
  Pool kept;
  for (Var v = 0; v < kVars; ++v) {
    kept.refs.push_back(pool.refs[v]);
    kept.tables.push_back(pool.tables[v]);
  }

  // Disabled watermark: never collects.
  GcResult result = mgr.MaybeGarbageCollect(RootsOf(kept));
  EXPECT_EQ(result.live_after, 0u);
  EXPECT_EQ(mgr.Stats().gc_runs, 0u);

  // Watermark above the arena: still nothing.
  mgr.SetGcWatermark(mgr.ArenaSize() * 2);
  result = mgr.MaybeGarbageCollect(RootsOf(kept));
  EXPECT_EQ(mgr.Stats().gc_runs, 0u);

  // At-or-below the arena: collects.
  mgr.SetGcWatermark(mgr.ArenaSize());
  result = mgr.MaybeGarbageCollect(RootsOf(kept));
  EXPECT_GT(result.reclaimed, 0u);
  EXPECT_EQ(mgr.Stats().gc_runs, 1u);
  ExpectPoolMatchesTables(mgr, kept, kVars);
}

TEST(GarbageCollectTest, SeededManagerInheritsCompactedArena) {
  constexpr Var kVars = 8;
  BddManager tmpl(kVars);
  Pool pool = BuildRandomPool(tmpl, kVars, 200, /*seed=*/11);
  Pool kept;
  for (std::size_t i = 0; i < pool.refs.size(); i += 4) {
    kept.refs.push_back(pool.refs[i]);
    kept.tables.push_back(pool.tables[i]);
  }
  tmpl.GarbageCollect(RootsOf(kept));

  // SeedFrom after compaction: the compacted refs stay valid verbatim in
  // the seeded manager (index+parity stability), and the seeded arena is
  // exactly the compacted one — the daemon's per-request path.
  BddManager seeded(0);
  seeded.SeedFrom(tmpl);
  EXPECT_EQ(seeded.ArenaSize(), tmpl.ArenaSize());
  EXPECT_TRUE(seeded.CheckInvariants());
  ExpectPoolMatchesTables(seeded, kept, kVars);

  // And the seeded manager builds on top without disturbing the template.
  BddRef combined = seeded.And(kept.refs[0], seeded.VarTrue(kVars - 1));
  for (std::size_t bits = 0; bits < (std::size_t{1} << kVars); ++bits) {
    EXPECT_EQ(Eval(seeded, combined, bits, kVars),
              kept.tables[0][bits] && (bits & 1u));
  }
}

TEST(GarbageCollectTest, ReorderedManagerSurvivesCollection) {
  constexpr Var kVars = 8;
  BddManager mgr(kVars);
  Pool pool = BuildRandomPool(mgr, kVars, 250, /*seed=*/23);
  Pool kept;
  for (std::size_t i = 0; i < pool.refs.size(); i += 2) {
    kept.refs.push_back(pool.refs[i]);
    kept.tables.push_back(pool.tables[i]);
  }
  // Sift first (non-identity order), then collect: compaction must keep
  // the level maps untouched while renumbering arena slots.
  mgr.Sift(SiftMode::kVars, &kept.refs);
  GcResult result = mgr.GarbageCollect(RootsOf(kept));
  EXPECT_EQ(mgr.ArenaSize(), result.live_after + 1);
  EXPECT_TRUE(mgr.CheckInvariants());
  ExpectPoolMatchesTables(mgr, kept, kVars);
}

TEST(EncodingTemplateCompactTest, LookupsStayValidAndArenaShrinks) {
  auto loaded1 = frontend::LoadConfig(campion::testing::kFig1Cisco,
                                      "fig1_cisco.cfg");
  auto loaded2 = frontend::LoadConfig(campion::testing::kFig1Juniper,
                                      "fig1_juniper.conf");
  encode::EncodingTemplate tmpl(loaded1.config, loaded2.config);

  // Snapshot the template's lookup surface before compaction.
  std::vector<std::pair<std::string, bdd::BddRef>> before;
  for (const auto& [name, list] : loaded1.config.prefix_lists) {
    if (auto ref = tmpl.PrefixListPermits(list)) {
      before.emplace_back("prefix:" + name, *ref);
    }
  }
  ASSERT_FALSE(before.empty());
  const std::size_t arena_before = tmpl.route_manager().ArenaSize();

  GcResult result = tmpl.Compact();
  EXPECT_GT(result.reclaimed, 0u);
  EXPECT_LE(tmpl.route_manager().ArenaSize(), arena_before);
  EXPECT_TRUE(tmpl.route_manager().CheckInvariants());
  EXPECT_TRUE(tmpl.packet_manager().CheckInvariants());

  // Lookups return the REMAPPED refs (the stored map values were roots),
  // and the functions they denote are unchanged: each still accepts what
  // the uncompacted encoding accepted. Spot-check via satisfiability —
  // identical canonical structure means identical AnySat walk.
  for (const auto& [name, list] : loaded1.config.prefix_lists) {
    auto ref = tmpl.PrefixListPermits(list);
    ASSERT_TRUE(ref.has_value()) << name;
    EXPECT_TRUE(tmpl.route_manager().AnySat(*ref).has_value() ||
                *ref == bdd::kFalse)
        << name;
  }
}

}  // namespace
}  // namespace campion::bdd
