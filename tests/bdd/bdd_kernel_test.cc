// Edge-case and stress coverage for the complement-edge BDD kernel: the
// open-addressing unique table (growth/rehash canonicity), the lossy
// computed cache, AddVars interleaved with node construction, short
// quantifier vectors, terminal-function satisfying assignments, O(1)
// negation, ITE standard-triple symmetries, the regular-then-edge
// canonicality invariant, and randomized oracles comparing the kernel
// against brute-force truth-table evaluation (including complemented
// roots).

#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace campion::bdd {
namespace {

TEST(BddKernelTest, AddVarsAfterNodesExist) {
  BddManager mgr(3);
  BddRef old_fn = mgr.And(mgr.VarTrue(0), mgr.VarTrue(2));
  Var first = mgr.AddVars(2);
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(mgr.num_vars(), 5u);
  // Functions built before the extension are unchanged and still canonical.
  EXPECT_EQ(old_fn, mgr.And(mgr.VarTrue(0), mgr.VarTrue(2)));
  // New variables compose with old ones; the new var sits below in the order.
  BddRef mixed = mgr.And(old_fn, mgr.VarTrue(4));
  EXPECT_EQ(mgr.Support(mixed), (std::vector<Var>{0, 2, 4}));
  // SatCount respects the extended variable count: 3 fixed bits of 5.
  EXPECT_EQ(mgr.SatCount(mixed), 4.0);
  // A second extension after further construction still works.
  mgr.AddVars(1);
  EXPECT_EQ(mgr.SatCount(mixed), 8.0);
}

TEST(BddKernelTest, ExistsWithShortQuantifierVector) {
  BddManager mgr(6);
  BddRef f = mgr.And(mgr.And(mgr.VarTrue(1), mgr.VarTrue(3)),
                     mgr.VarTrue(5));
  // Quantifier vector shorter than num_vars(): missing entries are false.
  std::vector<bool> quantified(2, false);
  quantified[1] = true;
  BddRef g = mgr.Exists(f, quantified);
  EXPECT_EQ(g, mgr.And(mgr.VarTrue(3), mgr.VarTrue(5)));
  // Empty vector quantifies nothing.
  EXPECT_EQ(mgr.Exists(f, {}), f);
  // A short vector never touches variables beyond its length.
  std::vector<bool> all_true(3, true);
  BddRef h = mgr.Exists(f, all_true);
  EXPECT_EQ(h, mgr.And(mgr.VarTrue(3), mgr.VarTrue(5)));
}

TEST(BddKernelTest, SatAssignmentsOnTerminals) {
  BddManager mgr(4);
  // False has no satisfying assignment.
  EXPECT_FALSE(mgr.AnySat(kFalse).has_value());
  EXPECT_FALSE(mgr.MinSat(kFalse).has_value());
  // True: AnySat is all-don't-care, MinSat is the all-zero assignment.
  auto any = mgr.AnySat(kTrue);
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(*any, (Cube{-1, -1, -1, -1}));
  auto min = mgr.MinSat(kTrue);
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(*min, (Cube{0, 0, 0, 0}));
  // Zero-variable manager: cubes are empty but present.
  BddManager empty(0);
  EXPECT_EQ(empty.AnySat(kTrue), Cube{});
  EXPECT_EQ(empty.MinSat(kTrue), Cube{});
  EXPECT_EQ(empty.SatCount(kTrue), 1.0);
}

TEST(BddKernelTest, UniqueTableRehashPreservesCanonicity) {
  // Force several rehashes of the open-addressing table (initial capacity
  // 8192, growth at 50% load) and check functions interned early still
  // dedupe against rebuilds afterwards.
  BddManager mgr(24);
  BddRef early = mgr.And(mgr.VarTrue(0), mgr.VarTrue(23));
  std::mt19937_64 rng(5);
  BddRef junk = kFalse;
  for (int i = 0; i < 400; ++i) {
    BddRef cube = kTrue;
    for (Var v = 0; v < 24; ++v) {
      switch (rng() % 3) {
        case 0: cube = mgr.And(cube, mgr.VarTrue(v)); break;
        case 1: cube = mgr.And(cube, mgr.VarFalse(v)); break;
        default: break;
      }
    }
    junk = mgr.Or(junk, cube);
  }
  ASSERT_GT(mgr.ArenaSize(), 8192u);  // The table must have grown.
  EXPECT_EQ(early, mgr.And(mgr.VarTrue(0), mgr.VarTrue(23)));
  EXPECT_EQ(mgr.Not(mgr.Not(junk)), junk);
}

TEST(BddKernelTest, StatsCountersAreCoherent) {
  BddManager mgr(32);
  BddStats before = mgr.Stats();
  EXPECT_GE(before.arena_size, 1u);  // The shared terminal.
  BddRef f = kFalse;
  for (Var v = 0; v < 32; ++v) f = mgr.Xor(f, mgr.VarTrue(v));
  BddStats after = mgr.Stats();
  EXPECT_GT(after.arena_size, before.arena_size);
  EXPECT_GT(after.unique_lookups, before.unique_lookups);
  EXPECT_GE(after.unique_probes, after.unique_lookups);
  EXPECT_LE(after.unique_hits, after.unique_lookups);
  EXPECT_LE(after.cache_hits, after.cache_lookups);
  EXPECT_GE(after.CacheHitRate(), 0.0);
  EXPECT_LE(after.CacheHitRate(), 1.0);
  EXPECT_GE(after.AvgProbeLength(), 1.0);
  // Repeating an already-computed binary operation hits the lossy cache.
  BddRef g = mgr.And(f, mgr.VarTrue(0));
  BddStats first = mgr.Stats();
  EXPECT_EQ(mgr.And(f, mgr.VarTrue(0)), g);
  BddStats second = mgr.Stats();
  EXPECT_GT(second.cache_hits, first.cache_hits);
}

TEST(BddKernelTest, NotIsFreeOfKernelWork) {
  // With complement edges, negation is a reference bit flip: no node
  // allocation, no unique-table lookups, no cache traffic.
  BddManager mgr(16);
  BddRef f = kFalse;
  for (Var v = 0; v < 16; ++v) f = mgr.Xor(f, mgr.VarTrue(v));
  BddStats before = mgr.Stats();
  BddRef g = mgr.Not(f);
  BddStats after = mgr.Stats();
  EXPECT_NE(g, f);
  EXPECT_EQ(mgr.Not(g), f);  // Involution.
  EXPECT_EQ(after.arena_size, before.arena_size);
  EXPECT_EQ(after.unique_lookups, before.unique_lookups);
  EXPECT_EQ(after.cache_lookups, before.cache_lookups);
  // A function and its complement share one DAG.
  EXPECT_EQ(mgr.NodeCount(g), mgr.NodeCount(f));
}

// Walks every node reachable from `f` and checks the canonical
// complement-edge invariant: no interned node has a complemented then
// (high) edge. Public accessors resolve parity, so the invariant is
// visible through the *regular* reference of each node.
void ExpectRegularThenEdges(const BddManager& mgr, BddRef f,
                            std::vector<BddRef>& seen) {
  if (mgr.IsTerminal(f)) return;
  BddRef regular = BddManager::Regular(f);
  if (std::find(seen.begin(), seen.end(), regular) != seen.end()) return;
  seen.push_back(regular);
  EXPECT_FALSE(BddManager::IsComplement(mgr.NodeHigh(regular)))
      << "complemented then-edge on node ref " << regular;
  ExpectRegularThenEdges(mgr, mgr.NodeLow(regular), seen);
  ExpectRegularThenEdges(mgr, mgr.NodeHigh(regular), seen);
}

TEST(BddKernelTest, IteStandardTripleSymmetries) {
  BddManager mgr(6);
  std::mt19937_64 rng(1234);
  auto random_fn = [&] {
    BddRef f = kFalse;
    for (int i = 0; i < 4; ++i) {
      BddRef cube = kTrue;
      for (Var v = 0; v < 6; ++v) {
        switch (rng() % 3) {
          case 0: cube = mgr.And(cube, mgr.VarTrue(v)); break;
          case 1: cube = mgr.And(cube, mgr.VarFalse(v)); break;
          default: break;
        }
      }
      f = mgr.Or(f, cube);
    }
    return f;
  };
  for (int trial = 0; trial < 50; ++trial) {
    BddRef f = random_fn();
    BddRef g = random_fn();
    BddRef h = random_fn();
    // The standard-triple identities the normalization folds together.
    EXPECT_EQ(mgr.Ite(f, g, h), mgr.Ite(mgr.Not(f), h, g));
    EXPECT_EQ(mgr.Ite(f, g, h), mgr.Not(mgr.Ite(f, mgr.Not(g), mgr.Not(h))));
    EXPECT_EQ(mgr.And(f, g), mgr.And(g, f));
    EXPECT_EQ(mgr.Or(f, g), mgr.Or(g, f));
    EXPECT_EQ(mgr.Not(mgr.And(f, g)), mgr.Or(mgr.Not(f), mgr.Not(g)));
    EXPECT_EQ(mgr.Xor(f, g), mgr.Xor(g, f));
    EXPECT_EQ(mgr.Iff(f, g), mgr.Not(mgr.Xor(f, g)));
    EXPECT_EQ(mgr.Diff(f, g), mgr.And(f, mgr.Not(g)));
    EXPECT_EQ(mgr.Implies(f, g), mgr.Or(mgr.Not(f), g));
    // Degenerate operands.
    EXPECT_EQ(mgr.Ite(f, f, h), mgr.Or(f, h));
    EXPECT_EQ(mgr.Ite(f, mgr.Not(f), h), mgr.And(mgr.Not(f), h));
    EXPECT_EQ(mgr.Ite(f, g, f), mgr.And(f, g));
    EXPECT_EQ(mgr.Ite(f, g, mgr.Not(f)), mgr.Implies(f, g));
    std::vector<BddRef> seen;
    ExpectRegularThenEdges(mgr, mgr.Ite(f, g, h), seen);
  }
}

TEST(BddKernelTest, StandardTriplesShareCacheAcrossComplements) {
  // Or(¬f,¬g) normalizes to the same computed-cache entry as And(f,g)
  // (with a complemented result), so the second call must hit the warm
  // cache and allocate nothing.
  BddManager mgr(12);
  std::mt19937_64 rng(77);
  BddRef f = kFalse;
  BddRef g = kFalse;
  for (int i = 0; i < 5; ++i) {
    BddRef cube_f = kTrue;
    BddRef cube_g = kTrue;
    for (Var v = 0; v < 12; ++v) {
      if (rng() % 2) cube_f = mgr.And(cube_f, mgr.VarTrue(v));
      if (rng() % 2) cube_g = mgr.And(cube_g, mgr.VarFalse(v));
    }
    f = mgr.Or(f, cube_f);
    g = mgr.Or(g, cube_g);
  }
  BddRef conj = mgr.And(f, g);
  BddStats before = mgr.Stats();
  BddRef disj = mgr.Or(mgr.Not(f), mgr.Not(g));
  BddStats after = mgr.Stats();
  EXPECT_EQ(disj, mgr.Not(conj));
  EXPECT_EQ(after.arena_size, before.arena_size);
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1);
  EXPECT_EQ(after.cache_lookups, before.cache_lookups + 1);
}

// Randomized oracle for the complement-edge kernel: random expression
// DAGs (with negation, so roots and intermediates carry complement bits)
// are compared against brute-force truth-table evaluation over all 2^n
// assignments for n <= 8, and every reachable node is checked for the
// regular-then-edge canonicality invariant.
class BddComplementOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(BddComplementOracleTest, MatchesBruteForceTruthTables) {
  constexpr Var kVars = 8;
  constexpr std::size_t kRows = std::size_t{1} << kVars;
  BddManager mgr(kVars);
  std::mt19937_64 rng(GetParam() * 104729 + 13);

  struct Expr {
    BddRef bdd;
    std::vector<bool> table;
  };
  std::vector<Expr> pool;
  pool.push_back({kTrue, std::vector<bool>(kRows, true)});
  pool.push_back({kFalse, std::vector<bool>(kRows, false)});
  for (Var v = 0; v < kVars; ++v) {
    Expr e;
    e.bdd = mgr.VarTrue(v);
    e.table.resize(kRows);
    for (std::size_t a = 0; a < kRows; ++a) {
      e.table[a] = (a >> (kVars - 1 - v)) & 1u;
    }
    pool.push_back(std::move(e));
  }

  for (int step = 0; step < 60; ++step) {
    const Expr& a = pool[rng() % pool.size()];
    const Expr& b = pool[rng() % pool.size()];
    const Expr& c = pool[rng() % pool.size()];
    Expr e;
    e.table.resize(kRows);
    switch (rng() % 7) {
      case 0:
        e.bdd = mgr.And(a.bdd, b.bdd);
        for (std::size_t i = 0; i < kRows; ++i)
          e.table[i] = a.table[i] && b.table[i];
        break;
      case 1:
        e.bdd = mgr.Or(a.bdd, b.bdd);
        for (std::size_t i = 0; i < kRows; ++i)
          e.table[i] = a.table[i] || b.table[i];
        break;
      case 2:
        e.bdd = mgr.Xor(a.bdd, b.bdd);
        for (std::size_t i = 0; i < kRows; ++i)
          e.table[i] = a.table[i] != b.table[i];
        break;
      case 3:
        e.bdd = mgr.Not(a.bdd);
        for (std::size_t i = 0; i < kRows; ++i) e.table[i] = !a.table[i];
        break;
      case 4:
        e.bdd = mgr.Diff(a.bdd, b.bdd);
        for (std::size_t i = 0; i < kRows; ++i)
          e.table[i] = a.table[i] && !b.table[i];
        break;
      case 5:
        e.bdd = mgr.Iff(a.bdd, b.bdd);
        for (std::size_t i = 0; i < kRows; ++i)
          e.table[i] = a.table[i] == b.table[i];
        break;
      default:
        e.bdd = mgr.Ite(a.bdd, b.bdd, c.bdd);
        for (std::size_t i = 0; i < kRows; ++i)
          e.table[i] = a.table[i] ? b.table[i] : c.table[i];
        break;
    }

    // Brute force: evaluate the BDD on every assignment by walking with
    // the parity-resolving structure accessors.
    for (std::size_t a_idx = 0; a_idx < kRows; ++a_idx) {
      BddRef node = e.bdd;
      while (!mgr.IsTerminal(node)) {
        Var v = mgr.NodeVar(node);
        bool bit = (a_idx >> (kVars - 1 - v)) & 1u;
        node = bit ? mgr.NodeHigh(node) : mgr.NodeLow(node);
      }
      ASSERT_EQ(node == kTrue, static_cast<bool>(e.table[a_idx]))
          << "step " << step << " assignment " << a_idx;
    }
    // SatCount agrees with the table's popcount (complement parity is
    // threaded through the count).
    std::size_t ones = 0;
    for (bool bit : e.table) ones += bit;
    ASSERT_EQ(mgr.SatCount(e.bdd), static_cast<double>(ones)) << "step "
                                                              << step;
    // Canonicality: equal tables <=> equal references, including across
    // complemented construction paths.
    for (const Expr& other : pool) {
      if (other.table == e.table) {
        ASSERT_EQ(other.bdd, e.bdd) << "canonicity violated at step " << step;
      }
    }
    std::vector<BddRef> seen;
    ExpectRegularThenEdges(mgr, e.bdd, seen);
    pool.push_back(std::move(e));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddComplementOracleTest,
                         ::testing::Range(1, 7));

// Randomized oracle: three-argument Ite over random operands must agree
// with explicit truth-table evaluation for every assignment.
class BddIteOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(BddIteOracleTest, IteMatchesTruthTable) {
  constexpr Var kVars = 13;  // <= 16 per the kernel contract being tested.
  constexpr std::size_t kRows = std::size_t{1} << kVars;
  BddManager mgr(kVars);
  std::mt19937_64 rng(GetParam() * 7919 + 1);

  struct Expr {
    BddRef bdd;
    std::vector<bool> table;
  };
  std::vector<Expr> pool;
  // Seed the pool with literals and both terminals.
  {
    Expr t{kTrue, std::vector<bool>(kRows, true)};
    Expr f{kFalse, std::vector<bool>(kRows, false)};
    pool.push_back(std::move(t));
    pool.push_back(std::move(f));
  }
  for (Var v = 0; v < kVars; ++v) {
    Expr e;
    e.bdd = mgr.VarTrue(v);
    e.table.resize(kRows);
    for (std::size_t a = 0; a < kRows; ++a) {
      e.table[a] = (a >> (kVars - 1 - v)) & 1u;
    }
    pool.push_back(std::move(e));
  }

  for (int step = 0; step < 40; ++step) {
    const Expr& f = pool[rng() % pool.size()];
    const Expr& g = pool[rng() % pool.size()];
    const Expr& h = pool[rng() % pool.size()];
    Expr e;
    e.bdd = mgr.Ite(f.bdd, g.bdd, h.bdd);
    e.table.resize(kRows);
    for (std::size_t a = 0; a < kRows; ++a) {
      e.table[a] = f.table[a] ? g.table[a] : h.table[a];
    }
    // Spot-check satcount every step (cheap) ...
    std::size_t ones = 0;
    for (bool b : e.table) ones += b;
    ASSERT_EQ(mgr.SatCount(e.bdd), static_cast<double>(ones))
        << "step " << step;
    pool.push_back(std::move(e));
  }

  // ... and fully verify the last expression against its table via
  // evaluation of every assignment.
  const Expr& final_expr = pool.back();
  for (std::size_t a = 0; a < kRows; ++a) {
    BddRef node = final_expr.bdd;
    while (!mgr.IsTerminal(node)) {
      Var v = mgr.NodeVar(node);
      bool bit = (a >> (kVars - 1 - v)) & 1u;
      node = bit ? mgr.NodeHigh(node) : mgr.NodeLow(node);
    }
    ASSERT_EQ(node == kTrue, static_cast<bool>(final_expr.table[a]))
        << "assignment " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddIteOracleTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace campion::bdd
