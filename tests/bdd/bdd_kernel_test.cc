// Edge-case and stress coverage for the rewritten BDD kernel: the
// open-addressing unique table (growth/rehash canonicity), the lossy
// computed cache, AddVars interleaved with node construction, short
// quantifier vectors, terminal-function satisfying assignments, and a
// randomized ITE-vs-truth-table oracle.

#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace campion::bdd {
namespace {

TEST(BddKernelTest, AddVarsAfterNodesExist) {
  BddManager mgr(3);
  BddRef old_fn = mgr.And(mgr.VarTrue(0), mgr.VarTrue(2));
  Var first = mgr.AddVars(2);
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(mgr.num_vars(), 5u);
  // Functions built before the extension are unchanged and still canonical.
  EXPECT_EQ(old_fn, mgr.And(mgr.VarTrue(0), mgr.VarTrue(2)));
  // New variables compose with old ones; the new var sits below in the order.
  BddRef mixed = mgr.And(old_fn, mgr.VarTrue(4));
  EXPECT_EQ(mgr.Support(mixed), (std::vector<Var>{0, 2, 4}));
  // SatCount respects the extended variable count: 3 fixed bits of 5.
  EXPECT_EQ(mgr.SatCount(mixed), 4.0);
  // A second extension after further construction still works.
  mgr.AddVars(1);
  EXPECT_EQ(mgr.SatCount(mixed), 8.0);
}

TEST(BddKernelTest, ExistsWithShortQuantifierVector) {
  BddManager mgr(6);
  BddRef f = mgr.And(mgr.And(mgr.VarTrue(1), mgr.VarTrue(3)),
                     mgr.VarTrue(5));
  // Quantifier vector shorter than num_vars(): missing entries are false.
  std::vector<bool> quantified(2, false);
  quantified[1] = true;
  BddRef g = mgr.Exists(f, quantified);
  EXPECT_EQ(g, mgr.And(mgr.VarTrue(3), mgr.VarTrue(5)));
  // Empty vector quantifies nothing.
  EXPECT_EQ(mgr.Exists(f, {}), f);
  // A short vector never touches variables beyond its length.
  std::vector<bool> all_true(3, true);
  BddRef h = mgr.Exists(f, all_true);
  EXPECT_EQ(h, mgr.And(mgr.VarTrue(3), mgr.VarTrue(5)));
}

TEST(BddKernelTest, SatAssignmentsOnTerminals) {
  BddManager mgr(4);
  // False has no satisfying assignment.
  EXPECT_FALSE(mgr.AnySat(kFalse).has_value());
  EXPECT_FALSE(mgr.MinSat(kFalse).has_value());
  // True: AnySat is all-don't-care, MinSat is the all-zero assignment.
  auto any = mgr.AnySat(kTrue);
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(*any, (Cube{-1, -1, -1, -1}));
  auto min = mgr.MinSat(kTrue);
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(*min, (Cube{0, 0, 0, 0}));
  // Zero-variable manager: cubes are empty but present.
  BddManager empty(0);
  EXPECT_EQ(empty.AnySat(kTrue), Cube{});
  EXPECT_EQ(empty.MinSat(kTrue), Cube{});
  EXPECT_EQ(empty.SatCount(kTrue), 1.0);
}

TEST(BddKernelTest, UniqueTableRehashPreservesCanonicity) {
  // Force several rehashes of the open-addressing table (initial capacity
  // 8192, growth at 50% load) and check functions interned early still
  // dedupe against rebuilds afterwards.
  BddManager mgr(24);
  BddRef early = mgr.And(mgr.VarTrue(0), mgr.VarTrue(23));
  std::mt19937_64 rng(5);
  BddRef junk = kFalse;
  for (int i = 0; i < 400; ++i) {
    BddRef cube = kTrue;
    for (Var v = 0; v < 24; ++v) {
      switch (rng() % 3) {
        case 0: cube = mgr.And(cube, mgr.VarTrue(v)); break;
        case 1: cube = mgr.And(cube, mgr.VarFalse(v)); break;
        default: break;
      }
    }
    junk = mgr.Or(junk, cube);
  }
  ASSERT_GT(mgr.ArenaSize(), 8192u);  // The table must have grown.
  EXPECT_EQ(early, mgr.And(mgr.VarTrue(0), mgr.VarTrue(23)));
  EXPECT_EQ(mgr.Not(mgr.Not(junk)), junk);
}

TEST(BddKernelTest, StatsCountersAreCoherent) {
  BddManager mgr(32);
  BddStats before = mgr.Stats();
  EXPECT_GE(before.arena_size, 2u);  // Terminals.
  BddRef f = kFalse;
  for (Var v = 0; v < 32; ++v) f = mgr.Xor(f, mgr.VarTrue(v));
  BddStats after = mgr.Stats();
  EXPECT_GT(after.arena_size, before.arena_size);
  EXPECT_GT(after.unique_lookups, before.unique_lookups);
  EXPECT_GE(after.unique_probes, after.unique_lookups);
  EXPECT_LE(after.unique_hits, after.unique_lookups);
  EXPECT_LE(after.cache_hits, after.cache_lookups);
  EXPECT_GE(after.CacheHitRate(), 0.0);
  EXPECT_LE(after.CacheHitRate(), 1.0);
  EXPECT_GE(after.AvgProbeLength(), 1.0);
  // Repeating an already-computed operation hits the lossy cache.
  BddRef g = mgr.Not(f);
  BddStats first = mgr.Stats();
  EXPECT_EQ(mgr.Not(f), g);
  BddStats second = mgr.Stats();
  EXPECT_GT(second.cache_hits, first.cache_hits);
}

// Randomized oracle: three-argument Ite over random operands must agree
// with explicit truth-table evaluation for every assignment.
class BddIteOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(BddIteOracleTest, IteMatchesTruthTable) {
  constexpr Var kVars = 13;  // <= 16 per the kernel contract being tested.
  constexpr std::size_t kRows = std::size_t{1} << kVars;
  BddManager mgr(kVars);
  std::mt19937_64 rng(GetParam() * 7919 + 1);

  struct Expr {
    BddRef bdd;
    std::vector<bool> table;
  };
  std::vector<Expr> pool;
  // Seed the pool with literals and both terminals.
  {
    Expr t{kTrue, std::vector<bool>(kRows, true)};
    Expr f{kFalse, std::vector<bool>(kRows, false)};
    pool.push_back(std::move(t));
    pool.push_back(std::move(f));
  }
  for (Var v = 0; v < kVars; ++v) {
    Expr e;
    e.bdd = mgr.VarTrue(v);
    e.table.resize(kRows);
    for (std::size_t a = 0; a < kRows; ++a) {
      e.table[a] = (a >> (kVars - 1 - v)) & 1u;
    }
    pool.push_back(std::move(e));
  }

  for (int step = 0; step < 40; ++step) {
    const Expr& f = pool[rng() % pool.size()];
    const Expr& g = pool[rng() % pool.size()];
    const Expr& h = pool[rng() % pool.size()];
    Expr e;
    e.bdd = mgr.Ite(f.bdd, g.bdd, h.bdd);
    e.table.resize(kRows);
    for (std::size_t a = 0; a < kRows; ++a) {
      e.table[a] = f.table[a] ? g.table[a] : h.table[a];
    }
    // Spot-check satcount every step (cheap) ...
    std::size_t ones = 0;
    for (bool b : e.table) ones += b;
    ASSERT_EQ(mgr.SatCount(e.bdd), static_cast<double>(ones))
        << "step " << step;
    pool.push_back(std::move(e));
  }

  // ... and fully verify the last expression against its table via
  // evaluation of every assignment.
  const Expr& final_expr = pool.back();
  for (std::size_t a = 0; a < kRows; ++a) {
    BddRef node = final_expr.bdd;
    while (!mgr.IsTerminal(node)) {
      Var v = mgr.NodeVar(node);
      bool bit = (a >> (kVars - 1 - v)) & 1u;
      node = bit ? mgr.NodeHigh(node) : mgr.NodeLow(node);
    }
    ASSERT_EQ(node == kTrue, static_cast<bool>(final_expr.table[a]))
        << "assignment " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddIteOracleTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace campion::bdd
