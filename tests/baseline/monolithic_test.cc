#include "baseline/monolithic.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/testdata.h"

namespace campion::baseline {
namespace {

using util::Ipv4Address;
using util::Prefix;

class MonolithicFig1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    cisco_ = testing::ParseCiscoOrDie(testing::kFig1Cisco);
    juniper_ = testing::ParseJuniperOrDie(testing::kFig1Juniper);
  }
  ir::RouterConfig cisco_;
  ir::RouterConfig juniper_;
};

TEST_F(MonolithicFig1Test, DetectsNonEquivalence) {
  MonolithicRouteMapChecker checker(cisco_, *cisco_.FindRouteMap("POL"),
                                    juniper_, *juniper_.FindRouteMap("POL"));
  EXPECT_FALSE(checker.Equivalent());
}

TEST_F(MonolithicFig1Test, IdenticalMapsAreEquivalent) {
  MonolithicRouteMapChecker checker(cisco_, *cisco_.FindRouteMap("POL"),
                                    cisco_, *cisco_.FindRouteMap("POL"));
  EXPECT_TRUE(checker.Equivalent());
  EXPECT_FALSE(checker.Next().has_value());
}

TEST_F(MonolithicFig1Test, CounterexampleIsRealDifference) {
  MonolithicRouteMapChecker checker(cisco_, *cisco_.FindRouteMap("POL"),
                                    juniper_, *juniper_.FindRouteMap("POL"));
  auto counterexample = checker.Next();
  ASSERT_TRUE(counterexample.has_value());
  // The two routers must actually disagree on it.
  EXPECT_NE(counterexample->accepted1, counterexample->accepted2);
}

TEST_F(MonolithicFig1Test, CounterexamplesAreDistinct) {
  MonolithicRouteMapChecker checker(cisco_, *cisco_.FindRouteMap("POL"),
                                    juniper_, *juniper_.FindRouteMap("POL"));
  std::set<std::string> seen;
  for (int i = 0; i < 10; ++i) {
    auto counterexample = checker.Next();
    ASSERT_TRUE(counterexample.has_value()) << "exhausted after " << i;
    std::string key = counterexample->advertisement.ToString();
    EXPECT_TRUE(seen.insert(key).second) << "repeated: " << key;
  }
}

TEST_F(MonolithicFig1Test, DeterministicAcrossRuns) {
  auto run = [&](CounterexampleOrder order) {
    MonolithicRouteMapChecker checker(cisco_, *cisco_.FindRouteMap("POL"),
                                      juniper_, *juniper_.FindRouteMap("POL"),
                                      order);
    std::vector<std::string> out;
    for (int i = 0; i < 5; ++i) {
      auto c = checker.Next();
      if (!c) break;
      out.push_back(c->advertisement.ToString());
    }
    return out;
  };
  EXPECT_EQ(run(CounterexampleOrder::kFirstPath),
            run(CounterexampleOrder::kFirstPath));
  EXPECT_EQ(run(CounterexampleOrder::kLexMin),
            run(CounterexampleOrder::kLexMin));
}

TEST_F(MonolithicFig1Test, LexMinYieldsLexicographicallySmallest) {
  MonolithicRouteMapChecker checker(cisco_, *cisco_.FindRouteMap("POL"),
                                    juniper_, *juniper_.FindRouteMap("POL"),
                                    CounterexampleOrder::kLexMin);
  auto first = checker.Next();
  ASSERT_TRUE(first.has_value());
  auto second = checker.Next();
  ASSERT_TRUE(second.has_value());
  // The least difference is a community-only route at prefix 0.0.0.0/0
  // (Difference 2 covers the all-prefix space).
  EXPECT_EQ(first->advertisement.prefix, Prefix(Ipv4Address(0), 0));
}

TEST_F(MonolithicFig1Test, OutputStringHasNoLocalization) {
  MonolithicRouteMapChecker checker(cisco_, *cisco_.FindRouteMap("POL"),
                                    juniper_, *juniper_.FindRouteMap("POL"));
  auto counterexample = checker.Next();
  ASSERT_TRUE(counterexample.has_value());
  std::string text = counterexample->ToString("cisco", "juniper");
  // A single concrete route, forwarding verdicts, and nothing else — no
  // Included/Excluded ranges, no config text.
  EXPECT_NE(text.find("Route received"), std::string::npos);
  EXPECT_NE(text.find("Forwarding"), std::string::npos);
  EXPECT_EQ(text.find("Included"), std::string::npos);
  EXPECT_EQ(text.find("route-map"), std::string::npos);
}

TEST(MonolithicAclTest, DetectsAndExhaustsDifferences) {
  ir::Acl acl1;
  acl1.name = "A";
  ir::AclLine line;
  line.action = ir::LineAction::kPermit;
  line.protocol = ir::kProtoIcmp;  // Pin every field so the difference
  line.src = util::IpWildcard(*Ipv4Address::Parse("10.0.0.1"));
  line.dst = util::IpWildcard(*Ipv4Address::Parse("10.0.0.2"));
  line.icmp_type = 8;
  acl1.lines.push_back(line);
  ir::Acl acl2;  // Empty: denies everything.
  acl2.name = "A";

  MonolithicAclChecker checker(acl1, acl2);
  EXPECT_FALSE(checker.Equivalent());
  // The difference space is ICMP src->dst with type 8: src/dst/proto/icmp
  // pinned, ports free -> finitely many concrete packets; each Next()
  // consumes at least one.
  auto first = checker.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->permitted1);
  EXPECT_FALSE(first->permitted2);
  EXPECT_EQ(first->packet.src_ip, *Ipv4Address::Parse("10.0.0.1"));
  EXPECT_EQ(first->packet.protocol, ir::kProtoIcmp);
}

TEST(MonolithicAclTest, EquivalentAclsYieldNothing) {
  ir::Acl acl;
  acl.name = "A";
  ir::AclLine line;
  line.action = ir::LineAction::kPermit;
  line.dst = util::IpWildcard(*Prefix::Parse("10.0.0.0/8"));
  acl.lines.push_back(line);
  MonolithicAclChecker checker(acl, acl);
  EXPECT_TRUE(checker.Equivalent());
  EXPECT_FALSE(checker.Next().has_value());
}

TEST(MonolithicStaticTest, FindsMissingRouteAddress) {
  auto cisco = testing::ParseCiscoOrDie(testing::kFig1Cisco);
  auto juniper = testing::ParseJuniperOrDie(testing::kFig1Juniper);
  auto counterexample = MonolithicStaticRouteCheck(cisco, juniper);
  ASSERT_TRUE(counterexample.has_value());
  EXPECT_EQ(counterexample->dst_ip, *Ipv4Address::Parse("10.1.1.2"));
  EXPECT_TRUE(counterexample->forwards1);
  EXPECT_FALSE(counterexample->forwards2);
  // Table 5's shape: an address and verdicts, no prefix/AD/text.
  std::string text = counterexample->ToString("cisco", "juniper");
  EXPECT_NE(text.find("10.1.1.2"), std::string::npos);
  EXPECT_EQ(text.find("255.255.255.254"), std::string::npos);
}

TEST(MonolithicStaticTest, EquivalentWhenCovered) {
  ir::RouterConfig a, b;
  ir::StaticRoute route;
  route.prefix = *Prefix::Parse("10.1.0.0/16");
  route.next_hop = *Ipv4Address::Parse("10.0.0.1");
  a.static_routes.push_back(route);
  b.static_routes.push_back(route);
  EXPECT_FALSE(MonolithicStaticRouteCheck(a, b).has_value());
}

TEST(MonolithicStaticTest, MonolithicMissesAttributeDifferences) {
  // The limitation the paper highlights: a next-hop difference does not
  // change reachability, so the monolithic forwarding check cannot see it
  // while StructuralDiff does.
  ir::RouterConfig a, b;
  ir::StaticRoute route;
  route.prefix = *Prefix::Parse("10.1.0.0/16");
  route.next_hop = *Ipv4Address::Parse("10.0.0.1");
  a.static_routes.push_back(route);
  route.next_hop = *Ipv4Address::Parse("10.0.0.99");
  b.static_routes.push_back(route);
  EXPECT_FALSE(MonolithicStaticRouteCheck(a, b).has_value());
}

}  // namespace
}  // namespace campion::baseline
