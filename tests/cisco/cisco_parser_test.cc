#include "cisco/cisco_parser.h"

#include <gtest/gtest.h>

namespace campion::cisco {
namespace {

using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

ir::RouterConfig Parse(const std::string& text) {
  return ParseCiscoConfig(text, "test.cfg").config;
}

TEST(CiscoParserTest, HostnameAndVendor) {
  auto config = Parse("hostname edge-1\n");
  EXPECT_EQ(config.hostname, "edge-1");
  EXPECT_EQ(config.vendor, ir::Vendor::kCisco);
}

TEST(CiscoParserTest, InterfaceAddressAndMask) {
  auto config = Parse(
      "interface GigabitEthernet0/1\n"
      " ip address 10.0.1.1 255.255.255.0\n"
      "!\n");
  ASSERT_EQ(config.interfaces.size(), 1u);
  const ir::Interface& iface = config.interfaces[0];
  EXPECT_EQ(iface.name, "GigabitEthernet0/1");
  EXPECT_EQ(iface.address, Ipv4Address(10, 0, 1, 1));
  EXPECT_EQ(iface.prefix_length, 24);
  EXPECT_EQ(iface.ConnectedSubnet(), *Prefix::Parse("10.0.1.0/24"));
}

TEST(CiscoParserTest, InterfaceShutdownAndAcls) {
  auto config = Parse(
      "interface Ethernet1\n"
      " ip address 10.0.1.1 255.255.255.254\n"
      " ip access-group FILTER-IN in\n"
      " ip access-group FILTER-OUT out\n"
      " shutdown\n"
      "!\n");
  const ir::Interface& iface = config.interfaces[0];
  EXPECT_TRUE(iface.shutdown);
  EXPECT_EQ(iface.in_acl, "FILTER-IN");
  EXPECT_EQ(iface.out_acl, "FILTER-OUT");
  EXPECT_EQ(iface.prefix_length, 31);
}

TEST(CiscoParserTest, StaticRouteBasic) {
  auto config = Parse("ip route 10.1.1.2 255.255.255.254 10.2.2.2\n");
  ASSERT_EQ(config.static_routes.size(), 1u);
  const ir::StaticRoute& route = config.static_routes[0];
  EXPECT_EQ(route.prefix, *Prefix::Parse("10.1.1.2/31"));
  EXPECT_EQ(route.next_hop, Ipv4Address(10, 2, 2, 2));
  EXPECT_EQ(route.admin_distance, 1);
  EXPECT_FALSE(route.tag.has_value());
  EXPECT_EQ(route.span.first_line, 1);
  EXPECT_NE(route.span.text.find("ip route"), std::string::npos);
}

TEST(CiscoParserTest, StaticRouteWithDistanceAndTag) {
  auto config = Parse("ip route 10.1.0.0 255.255.0.0 10.2.2.2 250 tag 77\n");
  ASSERT_EQ(config.static_routes.size(), 1u);
  EXPECT_EQ(config.static_routes[0].admin_distance, 250);
  EXPECT_EQ(config.static_routes[0].tag, 77u);
}

TEST(CiscoParserTest, StaticRouteViaInterface) {
  auto config = Parse("ip route 0.0.0.0 0.0.0.0 Null0\n");
  ASSERT_EQ(config.static_routes.size(), 1u);
  EXPECT_FALSE(config.static_routes[0].next_hop.has_value());
  EXPECT_EQ(config.static_routes[0].next_hop_interface, "Null0");
}

TEST(CiscoParserTest, PrefixListWindows) {
  auto config = Parse(
      "ip prefix-list PL seq 5 permit 10.9.0.0/16 le 32\n"
      "ip prefix-list PL seq 10 permit 10.10.0.0/16 ge 24\n"
      "ip prefix-list PL seq 15 permit 10.11.0.0/16 ge 20 le 28\n"
      "ip prefix-list PL seq 20 deny 10.12.0.0/16\n");
  const ir::PrefixList* list = config.FindPrefixList("PL");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->entries.size(), 4u);
  EXPECT_EQ(list->entries[0].range,
            PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32));
  EXPECT_EQ(list->entries[1].range,
            PrefixRange(*Prefix::Parse("10.10.0.0/16"), 24, 32));
  EXPECT_EQ(list->entries[2].range,
            PrefixRange(*Prefix::Parse("10.11.0.0/16"), 20, 28));
  EXPECT_EQ(list->entries[3].range,
            PrefixRange(*Prefix::Parse("10.12.0.0/16"), 16, 16));
  EXPECT_EQ(list->entries[3].action, ir::LineAction::kDeny);
}

TEST(CiscoParserTest, CommunityListEntriesAreOrOfAnds) {
  auto config = Parse(
      "ip community-list standard CL permit 10:10\n"
      "ip community-list standard CL permit 10:11 10:12\n"
      "ip community-list standard CL deny 10:13\n");
  const ir::CommunityList* list = config.FindCommunityList("CL");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->entries.size(), 3u);
  EXPECT_EQ(list->entries[0].all_of.size(), 1u);
  EXPECT_EQ(list->entries[1].all_of.size(), 2u);  // AND within one line.
  EXPECT_EQ(list->entries[2].action, ir::LineAction::kDeny);
}

TEST(CiscoParserTest, RouteMapClausesInSequence) {
  auto config = Parse(
      "route-map POL deny 10\n"
      " match ip address prefix-list NETS\n"
      "route-map POL permit 20\n"
      " match community COMM\n"
      " set local-preference 200\n"
      " set community 65000:1 additive\n"
      "route-map POL permit 30\n");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses.size(), 3u);
  EXPECT_EQ(map->default_action, ir::ClauseAction::kDeny);

  EXPECT_EQ(map->clauses[0].sequence, 10);
  EXPECT_EQ(map->clauses[0].action, ir::ClauseAction::kDeny);
  ASSERT_EQ(map->clauses[0].matches.size(), 1u);
  EXPECT_EQ(map->clauses[0].matches[0].kind,
            ir::RouteMapMatch::Kind::kPrefixList);
  EXPECT_EQ(map->clauses[0].matches[0].names,
            std::vector<std::string>{"NETS"});

  ASSERT_EQ(map->clauses[1].sets.size(), 2u);
  EXPECT_EQ(map->clauses[1].sets[0].kind,
            ir::RouteMapSet::Kind::kLocalPreference);
  EXPECT_EQ(map->clauses[1].sets[0].value, 200u);
  EXPECT_EQ(map->clauses[1].sets[1].kind,
            ir::RouteMapSet::Kind::kCommunityAdd);

  EXPECT_TRUE(map->clauses[2].matches.empty());
}

TEST(CiscoParserTest, RouteMapSpanCoversClauseLines) {
  auto config = Parse(
      "route-map POL deny 10\n"
      " match ip address NETS\n");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  const ir::RouteMapClause& clause = map->clauses[0];
  EXPECT_EQ(clause.span.first_line, 1);
  EXPECT_EQ(clause.span.last_line, 2);
  EXPECT_NE(clause.span.text.find("route-map POL deny 10"),
            std::string::npos);
  EXPECT_NE(clause.span.text.find("match ip address NETS"),
            std::string::npos);
}

// Continuation lines (indented mode) must extend the owning span to the
// exact 1-based last line, with comment separators in between not
// shifting the count.
TEST(CiscoParserTest, ContinuationLineNumbersAreExact) {
  auto config = Parse(
      "!\n"                                        // 1
      "hostname r1\n"                              // 2
      "!\n"                                        // 3
      "interface GigabitEthernet0/0\n"             // 4
      " ip address 10.0.0.1 255.255.255.0\n"       // 5
      " shutdown\n"                                // 6
      "!\n"                                        // 7
      "route-map POL permit 10\n"                  // 8
      " match ip address prefix-list NETS\n"       // 9
      " set metric 5\n"                            // 10
      "!\n"                                        // 11
      "router bgp 65000\n"                         // 12
      " neighbor 10.0.0.2 remote-as 65001\n"       // 13
      " neighbor 10.0.0.2 route-map POL out\n");   // 14
  ASSERT_EQ(config.interfaces.size(), 1u);
  EXPECT_EQ(config.interfaces[0].span.first_line, 4);
  EXPECT_EQ(config.interfaces[0].span.last_line, 6);
  EXPECT_EQ(config.interfaces[0].span.LocationString(), "test.cfg:4-6");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  const ir::RouteMapClause& clause = map->clauses[0];
  EXPECT_EQ(clause.span.first_line, 8);
  EXPECT_EQ(clause.span.last_line, 10);
  // Match and set sub-spans point at their own single lines.
  ASSERT_EQ(clause.matches.size(), 1u);
  EXPECT_EQ(clause.matches[0].span.first_line, 9);
  EXPECT_EQ(clause.matches[0].span.last_line, 9);
  ASSERT_EQ(clause.sets.size(), 1u);
  EXPECT_EQ(clause.sets[0].span.first_line, 10);
  EXPECT_EQ(clause.sets[0].span.LocationString(), "test.cfg:10");
  // Neighbor attribute lines extend both the line range and the text.
  ASSERT_TRUE(config.bgp.has_value());
  ASSERT_EQ(config.bgp->neighbors.size(), 1u);
  const util::SourceSpan& nspan = config.bgp->neighbors[0].span;
  EXPECT_EQ(nspan.first_line, 13);
  EXPECT_EQ(nspan.last_line, 14);
  EXPECT_NE(nspan.text.find("remote-as 65001"), std::string::npos);
  EXPECT_NE(nspan.text.find("route-map POL out"), std::string::npos);
}

TEST(CiscoParserTest, RouteMapSetNextHopAndTagAndMetric) {
  auto config = Parse(
      "route-map RM permit 10\n"
      " set ip next-hop 10.0.0.9\n"
      " set tag 42\n"
      " set metric 120\n"
      " match tag 7\n"
      " match metric 99\n"
      " match source-protocol static\n");
  const ir::RouteMap* map = config.FindRouteMap("RM");
  ASSERT_NE(map, nullptr);
  const ir::RouteMapClause& clause = map->clauses[0];
  ASSERT_EQ(clause.sets.size(), 3u);
  EXPECT_EQ(clause.sets[0].kind, ir::RouteMapSet::Kind::kNextHop);
  EXPECT_EQ(clause.sets[0].next_hop, Ipv4Address(10, 0, 0, 9));
  EXPECT_EQ(clause.sets[1].value, 42u);
  EXPECT_EQ(clause.sets[2].value, 120u);
  ASSERT_EQ(clause.matches.size(), 3u);
  EXPECT_EQ(clause.matches[2].protocol, ir::Protocol::kStatic);
}

TEST(CiscoParserTest, NamedExtendedAcl) {
  auto config = Parse(
      "ip access-list extended FILTER\n"
      " permit tcp 10.1.0.0 0.0.255.255 any eq 443\n"
      " deny ip host 10.2.2.2 10.3.0.0 0.0.0.255\n"
      " permit icmp any any echo\n");
  const ir::Acl* acl = config.FindAcl("FILTER");
  ASSERT_NE(acl, nullptr);
  ASSERT_EQ(acl->lines.size(), 3u);

  EXPECT_EQ(acl->lines[0].action, ir::LineAction::kPermit);
  EXPECT_EQ(acl->lines[0].protocol, ir::kProtoTcp);
  EXPECT_EQ(acl->lines[0].src.address(), Ipv4Address(10, 1, 0, 0));
  EXPECT_TRUE(acl->lines[0].dst.IsAny());
  ASSERT_EQ(acl->lines[0].dst_ports.size(), 1u);
  EXPECT_EQ(acl->lines[0].dst_ports[0], (ir::PortRange{443, 443}));

  EXPECT_EQ(acl->lines[1].action, ir::LineAction::kDeny);
  EXPECT_FALSE(acl->lines[1].protocol.has_value());
  EXPECT_EQ(acl->lines[1].src.wildcard_bits(), 0u);

  EXPECT_EQ(acl->lines[2].protocol, ir::kProtoIcmp);
  EXPECT_EQ(acl->lines[2].icmp_type, 8);
}

// A wildcard whose free bits are not a contiguous low suffix ("0.0.255.0"
// frees the third octet only) must survive parsing bit-for-bit; coercing
// it to a prefix length would silently widen or narrow the match.
TEST(CiscoParserTest, DiscontiguousWildcardPreservedBitForBit) {
  auto config = Parse(
      "ip access-list extended DW\n"
      " permit ip 10.1.77.5 0.0.255.0 any\n");
  const ir::Acl* acl = config.FindAcl("DW");
  ASSERT_NE(acl, nullptr);
  ASSERT_EQ(acl->lines.size(), 1u);
  const util::IpWildcard& src = acl->lines[0].src;
  EXPECT_EQ(src.wildcard_bits(), 0x0000FF00u);
  // The constructor zeroes don't-care address bits (third octet, 77).
  EXPECT_EQ(src.address(), Ipv4Address(10, 1, 0, 5));
  // Not expressible as a prefix: the free bits are not a suffix.
  EXPECT_FALSE(src.AsPrefix().has_value());
  // Free third octet matches anything; the care octets are exact.
  EXPECT_TRUE(src.Matches(Ipv4Address(10, 1, 0, 5)));
  EXPECT_TRUE(src.Matches(Ipv4Address(10, 1, 200, 5)));
  EXPECT_FALSE(src.Matches(Ipv4Address(10, 1, 0, 6)));
  EXPECT_FALSE(src.Matches(Ipv4Address(10, 2, 0, 5)));
}

TEST(CiscoParserTest, NumberedAcl) {
  auto config = Parse(
      "access-list 101 permit udp any any eq 53\n"
      "access-list 101 deny ip any any\n");
  const ir::Acl* acl = config.FindAcl("101");
  ASSERT_NE(acl, nullptr);
  EXPECT_EQ(acl->lines.size(), 2u);
}

TEST(CiscoParserTest, AclPortOperators) {
  auto config = Parse(
      "ip access-list extended P\n"
      " permit tcp any any range 1024 2048\n"
      " permit tcp any any gt 1023\n"
      " permit tcp any any lt 512\n"
      " permit tcp any eq 179 any\n");
  const ir::Acl* acl = config.FindAcl("P");
  ASSERT_NE(acl, nullptr);
  ASSERT_EQ(acl->lines.size(), 4u);
  EXPECT_EQ(acl->lines[0].dst_ports[0], (ir::PortRange{1024, 2048}));
  EXPECT_EQ(acl->lines[1].dst_ports[0], (ir::PortRange{1024, 65535}));
  EXPECT_EQ(acl->lines[2].dst_ports[0], (ir::PortRange{0, 511}));
  EXPECT_EQ(acl->lines[3].src_ports[0], (ir::PortRange{179, 179}));
}

TEST(CiscoParserTest, OspfProcessAndNetworks) {
  auto config = Parse(
      "interface Ethernet1\n"
      " ip address 10.0.1.1 255.255.255.0\n"
      "!\n"
      "interface Ethernet2\n"
      " ip address 192.168.0.1 255.255.255.0\n"
      "!\n"
      "router ospf 10\n"
      " router-id 1.1.1.1\n"
      " network 10.0.0.0 0.255.255.255 area 0\n"
      " passive-interface Ethernet2\n"
      " redistribute static route-map RM-STATIC\n"
      " auto-cost reference-bandwidth 100000\n");
  ASSERT_TRUE(config.ospf.has_value());
  EXPECT_EQ(config.ospf->process_id, 10u);
  EXPECT_EQ(config.ospf->router_id, Ipv4Address(1, 1, 1, 1));
  EXPECT_EQ(config.ospf->reference_bandwidth_mbps, 100000u);
  ASSERT_EQ(config.ospf->redistributions.size(), 1u);
  EXPECT_EQ(config.ospf->redistributions[0].from, ir::Protocol::kStatic);
  EXPECT_EQ(config.ospf->redistributions[0].route_map, "RM-STATIC");
  // Network statement enables OSPF on Ethernet1 only.
  EXPECT_TRUE(config.interfaces[0].ospf_enabled);
  EXPECT_EQ(config.interfaces[0].ospf_area, 0u);
  EXPECT_FALSE(config.interfaces[1].ospf_enabled);
  EXPECT_TRUE(config.interfaces[1].ospf_passive);
}

TEST(CiscoParserTest, InterfaceLevelOspf) {
  auto config = Parse(
      "interface Ethernet1\n"
      " ip address 10.0.1.1 255.255.255.0\n"
      " ip ospf cost 55\n"
      " ip ospf 1 area 3\n");
  EXPECT_EQ(config.interfaces[0].ospf_cost, 55u);
  EXPECT_TRUE(config.interfaces[0].ospf_enabled);
  EXPECT_EQ(config.interfaces[0].ospf_area, 3u);
}

TEST(CiscoParserTest, BgpNeighborsAndProperties) {
  auto config = Parse(
      "router bgp 65000\n"
      " bgp router-id 2.2.2.2\n"
      " network 10.1.0.0 mask 255.255.0.0\n"
      " neighbor 10.0.0.2 remote-as 65001\n"
      " neighbor 10.0.0.2 route-map IMP in\n"
      " neighbor 10.0.0.2 route-map EXP out\n"
      " neighbor 10.0.0.2 send-community\n"
      " neighbor 10.0.0.6 remote-as 65000\n"
      " neighbor 10.0.0.6 route-reflector-client\n"
      " neighbor 10.0.0.6 next-hop-self\n"
      " redistribute connected route-map RM-CONN\n"
      " distance bgp 25 210 200\n");
  ASSERT_TRUE(config.bgp.has_value());
  EXPECT_EQ(config.bgp->asn, 65000u);
  EXPECT_EQ(config.bgp->router_id, Ipv4Address(2, 2, 2, 2));
  ASSERT_EQ(config.bgp->networks.size(), 1u);
  EXPECT_EQ(config.bgp->networks[0], *Prefix::Parse("10.1.0.0/16"));
  ASSERT_EQ(config.bgp->neighbors.size(), 2u);
  const ir::BgpNeighbor& ebgp = config.bgp->neighbors[0];
  EXPECT_EQ(ebgp.remote_as, 65001u);
  EXPECT_EQ(ebgp.import_policy, "IMP");
  EXPECT_EQ(ebgp.export_policy, "EXP");
  EXPECT_TRUE(ebgp.send_community);
  const ir::BgpNeighbor& ibgp = config.bgp->neighbors[1];
  EXPECT_TRUE(ibgp.route_reflector_client);
  EXPECT_TRUE(ibgp.next_hop_self);
  EXPECT_FALSE(ibgp.send_community);
  ASSERT_EQ(config.bgp->redistributions.size(), 1u);
  EXPECT_EQ(config.bgp->redistributions[0].from, ir::Protocol::kConnected);
  EXPECT_EQ(config.admin_distances.ebgp, 25);
  EXPECT_EQ(config.admin_distances.ibgp, 210);
}

TEST(CiscoParserTest, DiagnosticsForUnknownLines) {
  auto result = ParseCiscoConfig("frobnicate the network\n", "x.cfg");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_NE(result.diagnostics[0].find("x.cfg:1"), std::string::npos);
}

TEST(CiscoParserTest, MalformedLinesDiagnosedNotFatal) {
  auto result = ParseCiscoConfig(
      "ip route 10.1.1.2 bogus 10.2.2.2\n"
      "ip prefix-list PL permit not-a-prefix\n"
      "hostname ok\n",
      "x.cfg");
  EXPECT_EQ(result.config.hostname, "ok");
  EXPECT_EQ(result.diagnostics.size(), 2u);
  EXPECT_TRUE(result.config.static_routes.empty());
}

TEST(CiscoParserTest, IgnoredDirectivesProduceNoDiagnostics) {
  auto result = ParseCiscoConfig(
      "version 15.2\n"
      "service timestamps debug datetime msec\n"
      "no ip domain lookup\n"
      "logging buffered 4096\n"
      "ntp server 10.0.0.1\n"
      "end\n",
      "x.cfg");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(CiscoParserTest, CarriageReturnsStripped) {
  auto config = Parse("hostname crlf-router\r\n");
  EXPECT_EQ(config.hostname, "crlf-router");
}

TEST(CiscoParserTest, MatchMultiplePrefixListsIsDisjunction) {
  auto config = Parse(
      "route-map RM permit 10\n"
      " match ip address prefix-list A B C\n");
  const ir::RouteMap* map = config.FindRouteMap("RM");
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->clauses[0].matches[0].names,
            (std::vector<std::string>{"A", "B", "C"}));
}


TEST(CiscoParserTest, StandardNumberedAcl) {
  auto config = Parse(
      "access-list 10 permit 10.1.0.0 0.0.255.255\n"
      "access-list 10 deny any\n");
  const ir::Acl* acl = config.FindAcl("10");
  ASSERT_NE(acl, nullptr);
  ASSERT_EQ(acl->lines.size(), 2u);
  // Source-only matching; protocol and destination are wildcards.
  EXPECT_EQ(acl->lines[0].src.address(), Ipv4Address(10, 1, 0, 0));
  EXPECT_TRUE(acl->lines[0].dst.IsAny());
  EXPECT_FALSE(acl->lines[0].protocol.has_value());
  EXPECT_TRUE(acl->lines[1].src.IsAny());
  EXPECT_EQ(acl->lines[1].action, ir::LineAction::kDeny);
}

TEST(CiscoParserTest, StandardNamedAcl) {
  auto config = Parse(
      "ip access-list standard MGMT\n"
      " permit host 10.0.0.5\n"
      " deny any\n");
  const ir::Acl* acl = config.FindAcl("MGMT");
  ASSERT_NE(acl, nullptr);
  ASSERT_EQ(acl->lines.size(), 2u);
  EXPECT_EQ(acl->lines[0].src.wildcard_bits(), 0u);
  EXPECT_EQ(acl->lines[0].src.address(), Ipv4Address(10, 0, 0, 5));
}

TEST(CiscoParserTest, StandardAndExtendedNumberRanges) {
  auto config = Parse(
      "access-list 99 permit 10.0.0.0 0.255.255.255\n"
      "access-list 1300 permit 10.0.0.0 0.255.255.255\n"
      "access-list 101 permit tcp any any eq 80\n");
  ASSERT_NE(config.FindAcl("99"), nullptr);
  EXPECT_FALSE(config.FindAcl("99")->lines[0].protocol.has_value());
  ASSERT_NE(config.FindAcl("1300"), nullptr);
  ASSERT_NE(config.FindAcl("101"), nullptr);
  EXPECT_EQ(config.FindAcl("101")->lines[0].protocol, ir::kProtoTcp);
}

TEST(CiscoParserTest, Ipv6PrefixListWindows) {
  auto config = Parse(
      "ipv6 prefix-list PL6 seq 5 permit 2001:db8::/32 le 128\n"
      "ipv6 prefix-list PL6 seq 10 permit 2001:db8:9::/48 ge 56\n"
      "ipv6 prefix-list PL6 seq 15 deny 2001:db8:bad::/48\n");
  const ir::PrefixList* list = config.FindPrefixList("PL6");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->family, util::AddressFamily::kIpv6);
  ASSERT_EQ(list->entries.size(), 3u);
  EXPECT_EQ(list->entries[0].range,
            PrefixRange(*util::Prefix6::Parse("2001:db8::/32"), 32, 128));
  EXPECT_EQ(list->entries[1].range,
            PrefixRange(*util::Prefix6::Parse("2001:db8:9::/48"), 56, 128));
  // Without ge/le the entry matches the exact length, as in v4.
  EXPECT_EQ(list->entries[2].range,
            PrefixRange(*util::Prefix6::Parse("2001:db8:bad::/48"), 48, 48));
  EXPECT_EQ(list->entries[2].action, ir::LineAction::kDeny);
}

TEST(CiscoParserTest, Ipv6NamedAcl) {
  auto config = Parse(
      "ipv6 access-list V6\n"
      " permit tcp 2001:db8:1::/48 any eq 179\n"
      " permit icmpv6 any any 128\n"
      " deny ipv6 host 2001:db8::dead any\n"
      " permit ipv6 2001:db8::/32 any\n");
  const ir::Acl* acl = config.FindAcl("V6");
  ASSERT_NE(acl, nullptr);
  EXPECT_EQ(acl->family, util::AddressFamily::kIpv6);
  ASSERT_EQ(acl->lines.size(), 4u);

  EXPECT_EQ(acl->lines[0].protocol, ir::kProtoTcp);
  ASSERT_TRUE(acl->lines[0].src.AsIpPrefix().has_value());
  EXPECT_EQ(*acl->lines[0].src.AsIpPrefix(),
            util::IpPrefix(*util::Prefix6::Parse("2001:db8:1::/48")));
  EXPECT_TRUE(acl->lines[0].dst.IsAny());
  ASSERT_EQ(acl->lines[0].dst_ports.size(), 1u);
  EXPECT_EQ(acl->lines[0].dst_ports[0], (ir::PortRange{179, 179}));

  EXPECT_EQ(acl->lines[1].protocol, ir::kProtoIcmpv6);
  EXPECT_EQ(acl->lines[1].icmp_type, 128);

  // "host" form and "ipv6" (any-protocol) keyword.
  EXPECT_EQ(acl->lines[2].action, ir::LineAction::kDeny);
  EXPECT_FALSE(acl->lines[2].protocol.has_value());
  EXPECT_TRUE(acl->lines[2].src.Matches(
      *util::Ipv6Address::Parse("2001:db8::dead")));
  EXPECT_FALSE(acl->lines[2].src.Matches(
      *util::Ipv6Address::Parse("2001:db8::beef")));

  EXPECT_FALSE(acl->lines[3].protocol.has_value());
  EXPECT_EQ(acl->lines[3].src.family(), util::AddressFamily::kIpv6);
}

TEST(CiscoParserTest, Ipv6AclRejectsV4Addresses) {
  auto result = ParseCiscoConfig(
      "ipv6 access-list V6\n"
      " permit tcp 10.0.0.0 0.0.0.255 any\n",
      "test.cfg");
  const ir::Acl* acl = result.config.FindAcl("V6");
  ASSERT_NE(acl, nullptr);
  EXPECT_TRUE(acl->lines.empty());
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST(CiscoParserTest, RouteMapMatchIpv6AddressPrefixList) {
  auto config = Parse(
      "ipv6 prefix-list NETS6 seq 5 permit 2001:db8::/32\n"
      "route-map POL permit 10\n"
      " match ipv6 address prefix-list NETS6\n");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses.size(), 1u);
  ASSERT_EQ(map->clauses[0].matches.size(), 1u);
  EXPECT_EQ(map->clauses[0].matches[0].names,
            std::vector<std::string>{"NETS6"});
}

}  // namespace
}  // namespace campion::cisco
