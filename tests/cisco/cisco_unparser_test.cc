#include "cisco/cisco_unparser.h"

#include <gtest/gtest.h>

#include "cisco/cisco_parser.h"

namespace campion::cisco {
namespace {

using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

TEST(UnparsePrefixListTest, WindowModifiers) {
  ir::PrefixList list;
  list.name = "PL";
  auto base = *Prefix::Parse("10.9.0.0/16");
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 16, 16), {}});
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 16, 32), {}});
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 24, 32), {}});
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 20, 28), {}});
  list.entries.push_back(
      {ir::LineAction::kDeny, PrefixRange(base, 16, 24), {}});
  std::string text = UnparsePrefixList(list);
  EXPECT_NE(text.find("permit 10.9.0.0/16\n"), std::string::npos);
  EXPECT_NE(text.find("permit 10.9.0.0/16 le 32"), std::string::npos);
  EXPECT_NE(text.find("permit 10.9.0.0/16 ge 24"), std::string::npos);
  EXPECT_NE(text.find("permit 10.9.0.0/16 ge 20 le 28"), std::string::npos);
  EXPECT_NE(text.find("deny 10.9.0.0/16 le 24"), std::string::npos);
}

TEST(UnparsePrefixListTest, RoundTripsWindows) {
  ir::PrefixList list;
  list.name = "PL";
  auto base = *Prefix::Parse("172.16.0.0/12");
  for (auto [low, high] : {std::pair{12, 12}, {12, 32}, {20, 32}, {14, 20}}) {
    list.entries.push_back(
        {ir::LineAction::kPermit, PrefixRange(base, low, high), {}});
  }
  auto parsed = ParseCiscoConfig(UnparsePrefixList(list), "t.cfg");
  const ir::PrefixList* back = parsed.config.FindPrefixList("PL");
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->entries.size(), list.entries.size());
  for (std::size_t i = 0; i < list.entries.size(); ++i) {
    EXPECT_EQ(back->entries[i].range, list.entries[i].range) << i;
  }
}

TEST(UnparseRouteMapTest, DefaultPermitGetsCatchAll) {
  ir::RouteMap map;
  map.name = "RM";
  ir::RouteMapClause clause;
  clause.sequence = 10;
  clause.action = ir::ClauseAction::kDeny;
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kTag;
  match.value = 5;
  clause.matches.push_back(match);
  map.clauses.push_back(clause);
  map.default_action = ir::ClauseAction::kPermit;
  std::string text = UnparseRouteMap(map);
  EXPECT_NE(text.find("route-map RM permit 20"), std::string::npos);

  map.default_action = ir::ClauseAction::kDeny;
  std::string text2 = UnparseRouteMap(map);
  EXPECT_EQ(text2.find("permit 20"), std::string::npos);
}

TEST(UnparseRouteMapTest, FallThroughBecomesContinue) {
  ir::RouteMap map;
  map.name = "RM";
  ir::RouteMapClause clause;
  clause.sequence = 10;
  clause.action = ir::ClauseAction::kFallThrough;
  ir::RouteMapSet set;
  set.kind = ir::RouteMapSet::Kind::kMetric;
  set.value = 5;
  clause.sets.push_back(set);
  map.clauses.push_back(clause);
  map.default_action = ir::ClauseAction::kDeny;
  std::string text = UnparseRouteMap(map);
  EXPECT_NE(text.find(" continue"), std::string::npos);

  auto parsed = ParseCiscoConfig(text, "t.cfg");
  const ir::RouteMap* back = parsed.config.FindRouteMap("RM");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->clauses[0].action, ir::ClauseAction::kFallThrough);
}

TEST(UnparseAclTest, WildcardShapes) {
  ir::Acl acl;
  acl.name = "F";
  ir::AclLine any_line;
  acl.lines.push_back(any_line);
  ir::AclLine host_line;
  host_line.src = util::IpWildcard(Ipv4Address(10, 1, 2, 3));
  host_line.protocol = ir::kProtoTcp;
  host_line.dst_ports.push_back({80, 80});
  acl.lines.push_back(host_line);
  ir::AclLine range_line;
  range_line.protocol = ir::kProtoUdp;
  range_line.dst = util::IpWildcard(*Prefix::Parse("10.2.0.0/16"));
  range_line.dst_ports.push_back({1024, 2048});
  acl.lines.push_back(range_line);

  std::string text = UnparseAcl(acl);
  EXPECT_NE(text.find("permit ip any any"), std::string::npos);
  EXPECT_NE(text.find("host 10.1.2.3"), std::string::npos);
  EXPECT_NE(text.find("eq 80"), std::string::npos);
  EXPECT_NE(text.find("10.2.0.0 0.0.255.255 range 1024 2048"),
            std::string::npos);
}

TEST(UnparseStaticRouteTest, AllFields) {
  ir::StaticRoute route;
  route.prefix = *Prefix::Parse("10.1.1.2/31");
  route.next_hop = Ipv4Address(10, 2, 2, 2);
  route.admin_distance = 250;
  route.tag = 99;
  std::string text = UnparseStaticRoute(route);
  EXPECT_EQ(text,
            "ip route 10.1.1.2 255.255.255.254 10.2.2.2 250 tag 99\n");
}

TEST(UnparseConfigTest, EmitsEndMarker) {
  ir::RouterConfig config;
  config.hostname = "r";
  std::string text = UnparseCiscoConfig(config);
  EXPECT_NE(text.find("hostname r"), std::string::npos);
  EXPECT_NE(text.find("end"), std::string::npos);
}

TEST(UnparsePrefixListTest, Ipv6RoundTripsWindows) {
  ir::PrefixList list;
  list.name = "PL6";
  list.family = util::AddressFamily::kIpv6;
  auto base = *util::Prefix6::Parse("2001:db8::/32");
  // The window ceiling is 128, not 32: an "orlonger" v6 entry must emit
  // "le 128" and parse back to [32, 128].
  for (auto [low, high] :
       {std::pair{32, 32}, {32, 128}, {48, 128}, {40, 64}}) {
    list.entries.push_back(
        {ir::LineAction::kPermit, PrefixRange(base, low, high), {}});
  }
  std::string text = UnparsePrefixList(list);
  EXPECT_NE(text.find("ipv6 prefix-list PL6"), std::string::npos);
  EXPECT_NE(text.find("permit 2001:db8::/32 le 128"), std::string::npos);
  auto parsed = ParseCiscoConfig(text, "t.cfg");
  const ir::PrefixList* back = parsed.config.FindPrefixList("PL6");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->family, util::AddressFamily::kIpv6);
  ASSERT_EQ(back->entries.size(), list.entries.size());
  for (std::size_t i = 0; i < list.entries.size(); ++i) {
    EXPECT_EQ(back->entries[i].range, list.entries[i].range) << i;
  }
}

TEST(UnparseAclTest, Ipv6RoundTrips) {
  ir::Acl acl;
  acl.name = "F6";
  acl.family = util::AddressFamily::kIpv6;
  ir::AclLine any_line;
  any_line.src = util::IpWildcard::AnyOf(util::AddressFamily::kIpv6);
  any_line.dst = util::IpWildcard::AnyOf(util::AddressFamily::kIpv6);
  acl.lines.push_back(any_line);
  ir::AclLine host_line = any_line;
  host_line.src =
      util::IpWildcard(*util::Ipv6Address::Parse("2001:db8::dead"));
  host_line.protocol = ir::kProtoTcp;
  host_line.dst_ports.push_back({179, 179});
  acl.lines.push_back(host_line);
  ir::AclLine prefix_line = any_line;
  prefix_line.action = ir::LineAction::kDeny;
  prefix_line.dst = util::IpWildcard(*util::Prefix6::Parse("2001:db8:bad::/48"));
  acl.lines.push_back(prefix_line);

  std::string text = UnparseAcl(acl);
  EXPECT_NE(text.find("ipv6 access-list F6"), std::string::npos);
  EXPECT_NE(text.find("permit ipv6 any any"), std::string::npos);
  EXPECT_NE(text.find("host 2001:db8::dead"), std::string::npos);
  EXPECT_NE(text.find("deny ipv6 any 2001:db8:bad::/48"), std::string::npos);

  auto parsed = ParseCiscoConfig(text, "t.cfg");
  const ir::Acl* back = parsed.config.FindAcl("F6");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->family, util::AddressFamily::kIpv6);
  ASSERT_EQ(back->lines.size(), acl.lines.size());
  for (std::size_t i = 0; i < acl.lines.size(); ++i) {
    EXPECT_EQ(back->lines[i].action, acl.lines[i].action) << i;
    EXPECT_EQ(back->lines[i].protocol, acl.lines[i].protocol) << i;
    EXPECT_EQ(back->lines[i].src, acl.lines[i].src) << i;
    EXPECT_EQ(back->lines[i].dst, acl.lines[i].dst) << i;
    EXPECT_EQ(back->lines[i].dst_ports, acl.lines[i].dst_ports) << i;
  }
}

}  // namespace
}  // namespace campion::cisco
