#!/usr/bin/env bash
# docs_check: keeps the documentation honest.
#
#   1. Extracts every fenced ```sh block from README.md and docs/*.md and
#      runs it line-by-line against the built tree. A line passes when it
#      exits 0 or 2 (2 is the CLI's "differences found" status). Blocks
#      preceded by an HTML comment `<!-- docs-check: skip -->` are not run
#      (use it for illustrative output or heavy commands like full builds).
#      Occurrences of `build/` in a command resolve to the actual build
#      directory, so docs can show the conventional layout.
#   2. Cross-checks docs/cli.md against `campion --help`,
#      `campion_trace_diff --help`, and `campion_serve --help`: every flag
#      a binary advertises must be documented, and every flag the manual
#      documents must exist in one of them.
#   3. Cross-checks docs/daemon.md against the daemon: every campion_serve
#      flag must appear in the API reference, and every documented
#      endpoint path must be one the daemon actually serves (and vice
#      versa for the canonical endpoint list below).
#
# Usage: docs_check.sh <source_dir> <build_dir> <campion_binary> \
#                      <trace_diff_binary> <campion_serve_binary>

set -u

SRC_DIR=$1
BUILD_DIR=$2
CAMPION=$3
TRACE_DIFF=$4
CAMPION_SERVE=$5

failures=0

# Fenced blocks run in a scratch directory that mirrors the repo layout
# for read-only inputs (examples/, docs/) so relative paths in the docs
# work while any files the commands write stay out of the source tree.
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
ln -s "$SRC_DIR/examples" "$WORKDIR/examples"
ln -s "$SRC_DIR/docs" "$WORKDIR/docs"

run_line() {
  local file=$1 lineno=$2 cmd=$3
  # Map the documented `build/...` paths onto the real build directory.
  # Normalize "./build/" first so one substitution covers both spellings
  # (the replacement text of ${var//} is not rescanned, so a BUILD_DIR
  # that itself ends in "build" cannot recurse).
  cmd=${cmd//.\/build\//build\/}
  cmd=${cmd//build\//$BUILD_DIR/}
  ( cd "$WORKDIR" && eval "$cmd" ) >/dev/null 2>&1
  local status=$?
  if [ $status -ne 0 ] && [ $status -ne 2 ]; then
    echo "FAIL $file:$lineno: exit $status: $cmd"
    failures=$((failures + 1))
  else
    echo "ok   $file:$lineno: $cmd"
  fi
}

check_file() {
  local file=$1
  local in_block=0 skip_next=0 lineno=0 pending="" block_skipped=0
  while IFS= read -r line || [ -n "$line" ]; do
    lineno=$((lineno + 1))
    if [ $in_block -eq 0 ]; then
      case $line in
        *'<!-- docs-check: skip -->'*) skip_next=1 ;;
        '```sh'*)
          in_block=1
          block_skipped=$skip_next
          skip_next=0
          ;;
        '```'*) skip_next=0 ;;  # Non-sh fence: the marker, if any, is spent.
      esac
      continue
    fi
    if [ "$line" = '```' ]; then
      in_block=0
      pending=""
      continue
    fi
    [ "$block_skipped" -eq 1 ] && continue
    case $line in
      ''|'#'*) continue ;;  # Blank lines and comments.
    esac
    # Stitch backslash continuations into one command.
    case $line in
      *\\)
        pending="$pending${line%\\} "
        continue
        ;;
    esac
    run_line "${file#"$SRC_DIR"/}" "$lineno" "$pending$line"
    pending=""
  done < "$file"
}

echo "== running fenced sh blocks =="
check_file "$SRC_DIR/README.md"
for doc in "$SRC_DIR"/docs/*.md; do
  check_file "$doc"
done

echo "== cross-checking docs/cli.md against --help =="
help_text=$("$CAMPION" --help; "$TRACE_DIFF" --help; "$CAMPION_SERVE" --help)
help_flags=$(printf '%s\n' "$help_text" | grep -oE -- '--[a-z][a-z0-9_-]*' | sort -u)
doc_flags=$(grep -oE -- '--[a-z][a-z0-9_-]*' "$SRC_DIR/docs/cli.md" | sort -u)
for flag in $help_flags; do
  if ! printf '%s\n' "$doc_flags" | grep -qx -- "$flag"; then
    echo "FAIL docs/cli.md does not document $flag"
    failures=$((failures + 1))
  fi
done
for flag in $doc_flags; do
  case $flag in
    # Flags of the bench binaries, not of campion; cli.md may mention them
    # in its see-also section.
    --bench_out|--benchmark_min_time|--benchmark_filter) continue ;;
  esac
  if ! printf '%s\n' "$help_flags" | grep -qx -- "$flag"; then
    echo "FAIL docs/cli.md documents unknown flag $flag"
    failures=$((failures + 1))
  fi
done

echo "== cross-checking docs/daemon.md against campion_serve =="
DAEMON_MD=$SRC_DIR/docs/daemon.md
if [ ! -f "$DAEMON_MD" ]; then
  echo "FAIL docs/daemon.md is missing"
  failures=$((failures + 1))
else
  serve_flags=$("$CAMPION_SERVE" --help | grep -oE -- '--[a-z][a-z0-9_-]*' | sort -u)
  for flag in $serve_flags; do
    if ! grep -qF -- "$flag" "$DAEMON_MD"; then
      echo "FAIL docs/daemon.md does not document $flag"
      failures=$((failures + 1))
    fi
  done
  # The daemon's endpoint table, kept in sync with DiffService::Handle.
  for endpoint in /healthz /metrics /diff /batch /sessions /debug/requests /debug/cache /debug/result_cache /debug/sessions; do
    if ! grep -qF -- "$endpoint" "$DAEMON_MD"; then
      echo "FAIL docs/daemon.md does not document endpoint $endpoint"
      failures=$((failures + 1))
    fi
  done
  # Conversely, refuse paths documented as endpoints but never implemented:
  # any `/word` rendered in backticks must be a known prefix.
  while IFS= read -r documented; do
    case $documented in
      /healthz|/metrics|/diff|/batch|/sessions|/sessions/*|/debug/requests|/debug/requests/*|/debug/cache|/debug/result_cache|/debug/sessions) ;;
      *)
        echo "FAIL docs/daemon.md documents unknown endpoint $documented"
        failures=$((failures + 1))
        ;;
    esac
  done < <(grep -oE '`(GET|PUT|POST|DELETE) /[^`]*`' "$DAEMON_MD" \
             | sed -E 's/`[A-Z]+ ([^`?]*).*/\1/' | sort -u)
fi

if [ $failures -ne 0 ]; then
  echo "docs_check: $failures failure(s)"
  exit 1
fi
echo "docs_check: all documentation commands and flags verified"
