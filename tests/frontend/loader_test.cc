#include "frontend/loader.h"

#include <gtest/gtest.h>

#include "tests/testdata.h"

namespace campion::frontend {
namespace {

TEST(DetectVendorTest, DetectsCisco) {
  EXPECT_EQ(DetectVendor(testing::kFig1Cisco), ir::Vendor::kCisco);
  EXPECT_EQ(DetectVendor("hostname foo\nip route 0.0.0.0 0.0.0.0 Null0\n"),
            ir::Vendor::kCisco);
}

TEST(DetectVendorTest, DetectsJuniper) {
  EXPECT_EQ(DetectVendor(testing::kFig1Juniper), ir::Vendor::kJuniper);
  EXPECT_EQ(DetectVendor("system {\n    host-name foo;\n}\n"),
            ir::Vendor::kJuniper);
}

TEST(DetectVendorTest, UnknownForEmptyOrGarbage) {
  EXPECT_EQ(DetectVendor(""), ir::Vendor::kUnknown);
  EXPECT_EQ(DetectVendor("once upon a time"), ir::Vendor::kUnknown);
}

TEST(LoadConfigTest, AutoDetectParsesBoth) {
  LoadResult cisco = LoadConfig(testing::kFig1Cisco, "c.cfg");
  EXPECT_EQ(cisco.config.vendor, ir::Vendor::kCisco);
  EXPECT_EQ(cisco.config.hostname, "cisco_router");
  LoadResult juniper = LoadConfig(testing::kFig1Juniper, "j.conf");
  EXPECT_EQ(juniper.config.vendor, ir::Vendor::kJuniper);
  EXPECT_EQ(juniper.config.hostname, "juniper_router");
}

TEST(LoadConfigTest, ExplicitVendorOverridesDetection) {
  // Force Cisco parsing on Juniper text: parses with diagnostics rather
  // than throwing.
  LoadResult result =
      LoadConfig(testing::kFig1Juniper, "j.conf", ir::Vendor::kCisco);
  EXPECT_EQ(result.config.vendor, ir::Vendor::kCisco);
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST(LoadConfigTest, ThrowsWhenUndetectable) {
  EXPECT_THROW(LoadConfig("gibberish", "x"), std::runtime_error);
}

TEST(LoadConfigFileTest, ThrowsOnMissingFile) {
  EXPECT_THROW(LoadConfigFile("/no/such/file.cfg"), std::runtime_error);
}

TEST(LoadConfigFileTest, LoadsExampleConfigs) {
  // The checked-in example configs, when present relative to the repo root.
  try {
    LoadResult result = LoadConfigFile("examples/configs/fig1_cisco.cfg");
    EXPECT_EQ(result.config.hostname, "cisco_router");
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "example configs not reachable from test cwd";
  }
}

}  // namespace
}  // namespace campion::frontend
