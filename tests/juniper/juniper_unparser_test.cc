#include "juniper/juniper_unparser.h"

#include <gtest/gtest.h>

#include "juniper/juniper_parser.h"

namespace campion::juniper {
namespace {

using util::Community;
using util::Prefix;
using util::PrefixRange;

TEST(UnparseRouteFilterTest, AllWindowModes) {
  ir::RouterConfig config;
  ir::PrefixList list;
  list.name = "W";
  auto base = *Prefix::Parse("10.0.0.0/8");
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 8, 8), {}});      // exact
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 8, 32), {}});     // orlonger
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 9, 32), {}});     // longer
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 8, 24), {}});     // upto
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 16, 24), {}});    // range
  config.prefix_lists["W"] = list;

  ir::RouteMap map;
  map.name = "POL";
  ir::RouteMapClause clause;
  clause.action = ir::ClauseAction::kPermit;
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kPrefixList;
  match.names = {"W"};
  clause.matches.push_back(match);
  map.clauses.push_back(clause);
  map.default_action = ir::ClauseAction::kDeny;
  config.route_maps["POL"] = map;
  config.vendor = ir::Vendor::kJuniper;
  config.hostname = "j";

  std::string text = UnparseJuniperConfig(config);
  EXPECT_NE(text.find("route-filter 10.0.0.0/8 exact"), std::string::npos);
  EXPECT_NE(text.find("route-filter 10.0.0.0/8 orlonger"),
            std::string::npos);
  EXPECT_NE(text.find("route-filter 10.0.0.0/8 longer"), std::string::npos);
  EXPECT_NE(text.find("route-filter 10.0.0.0/8 upto /24"),
            std::string::npos);
  EXPECT_NE(text.find("route-filter 10.0.0.0/8 prefix-length-range /16-/24"),
            std::string::npos);

  // And it round-trips to the same windows.
  auto parsed = ParseJuniperConfig(text, "t.conf");
  const ir::RouteMap* back = parsed.config.FindRouteMap("POL");
  ASSERT_NE(back, nullptr);
  const auto& names = back->clauses[0].matches[0].names;
  ASSERT_EQ(names.size(), 5u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    const ir::PrefixList* lowered = parsed.config.FindPrefixList(names[i]);
    ASSERT_NE(lowered, nullptr);
    EXPECT_EQ(lowered->entries[0].range, list.entries[i].range) << i;
  }
}

TEST(UnparseCommunityTest, SingleAndMultiEntry) {
  ir::CommunityList single;
  single.name = "ONE";
  single.entries.push_back(
      {ir::LineAction::kPermit, {Community(10, 10), Community(10, 11)}, {}});
  std::string one = UnparseCommunity(single);
  EXPECT_NE(one.find("community ONE members [ 10:10 10:11 ];"),
            std::string::npos);

  ir::CommunityList multi;
  multi.name = "OR2";
  multi.entries.push_back({ir::LineAction::kPermit, {Community(1, 1)}, {}});
  multi.entries.push_back({ir::LineAction::kPermit, {Community(2, 2)}, {}});
  std::string two = UnparseCommunity(multi);
  EXPECT_NE(two.find("community OR2__0"), std::string::npos);
  EXPECT_NE(two.find("community OR2__1"), std::string::npos);
}

TEST(UnparseDefaultActionTest, ImplicitDenyTermEmittedOnlyForDenyDefault) {
  ir::RouteMap map;
  map.name = "POL";
  map.default_action = ir::ClauseAction::kDeny;
  std::string deny = UnparsePolicyStatement(map);
  EXPECT_NE(deny.find("__implicit-deny__"), std::string::npos);
  map.default_action = ir::ClauseAction::kPermit;
  std::string permit = UnparsePolicyStatement(map);
  EXPECT_EQ(permit.find("__implicit-deny__"), std::string::npos);
}

TEST(UnparseFilterTest, TermsCarryConditionsAndActions) {
  ir::Acl acl;
  acl.name = "F";
  ir::AclLine line;
  line.action = ir::LineAction::kDeny;
  line.protocol = ir::kProtoTcp;
  line.src = util::IpWildcard(*Prefix::Parse("10.1.0.0/16"));
  line.dst_ports.push_back({443, 443});
  acl.lines.push_back(line);
  std::string text = UnparseFilter(acl);
  EXPECT_NE(text.find("source-address 10.1.0.0/16;"), std::string::npos);
  EXPECT_NE(text.find("protocol tcp;"), std::string::npos);
  EXPECT_NE(text.find("destination-port 443;"), std::string::npos);
  EXPECT_NE(text.find("then discard;"), std::string::npos);
}

// A discontiguous wildcard has no single JunOS prefix; dropping the match
// would widen the term to match-any. Small expansions become an OR of
// prefixes (entries in a term OR together), huge ones leave a visible
// marker instead of silently changing behavior.
TEST(UnparseFilterTest, DiscontiguousWildcardExpandsToPrefixUnion) {
  ir::Acl acl;
  acl.name = "DW";
  ir::AclLine line;
  line.action = ir::LineAction::kPermit;
  // Free bit 9 only (third octet, value 2): two /32 hosts.
  line.src = util::IpWildcard(util::Ipv4Address(10, 1, 0, 5), 0x00000200u);
  // Free low octet plus free bit 9: two /24 prefixes.
  line.dst = util::IpWildcard(util::Ipv4Address(10, 9, 0, 0), 0x000002FFu);
  acl.lines.push_back(line);
  std::string text = UnparseFilter(acl);
  EXPECT_NE(text.find("source-address 10.1.0.5/32;"), std::string::npos)
      << text;
  EXPECT_NE(text.find("source-address 10.1.2.5/32;"), std::string::npos)
      << text;
  EXPECT_NE(text.find("destination-address 10.9.0.0/24;"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("destination-address 10.9.2.0/24;"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("unrepresentable"), std::string::npos) << text;
}

TEST(UnparseFilterTest, HugeDiscontiguousWildcardLeavesMarker) {
  ir::Acl acl;
  acl.name = "DW";
  ir::AclLine line;
  line.action = ir::LineAction::kDeny;
  // 0x0F0F0F0F frees 12 non-suffix bits: 4096 prefixes, past the cap.
  line.src = util::IpWildcard(util::Ipv4Address(10, 0, 0, 0), 0x0F0F0F0Fu);
  acl.lines.push_back(line);
  std::string text = UnparseFilter(acl);
  EXPECT_NE(text.find("/* unrepresentable wildcard source-address"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("source-address 10."), std::string::npos) << text;
}

TEST(UnparseConfigTest, GroupsNeighborsByTypeAndAs) {
  ir::RouterConfig config;
  config.hostname = "j";
  config.vendor = ir::Vendor::kJuniper;
  ir::BgpProcess bgp;
  bgp.asn = 65000;
  bgp.router_id = *util::Ipv4Address::Parse("1.1.1.1");
  ir::BgpNeighbor ebgp;
  ebgp.ip = *util::Ipv4Address::Parse("10.0.0.2");
  ebgp.remote_as = 65001;
  bgp.neighbors.push_back(ebgp);
  ir::BgpNeighbor rr_client;
  rr_client.ip = *util::Ipv4Address::Parse("10.255.0.1");
  rr_client.remote_as = 65000;
  rr_client.route_reflector_client = true;
  bgp.neighbors.push_back(rr_client);
  config.bgp = std::move(bgp);

  std::string text = UnparseJuniperConfig(config);
  EXPECT_NE(text.find("type external;"), std::string::npos);
  EXPECT_NE(text.find("peer-as 65001;"), std::string::npos);
  EXPECT_NE(text.find("type internal;"), std::string::npos);
  EXPECT_NE(text.find("cluster 1.1.1.1;"), std::string::npos);

  auto parsed = ParseJuniperConfig(text, "t.conf");
  ASSERT_TRUE(parsed.config.bgp.has_value());
  ASSERT_EQ(parsed.config.bgp->neighbors.size(), 2u);
  const ir::BgpNeighbor* back =
      parsed.config.FindBgpNeighbor(*util::Ipv4Address::Parse("10.255.0.1"));
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->route_reflector_client);
  EXPECT_EQ(back->remote_as, 65000u);
}

TEST(UnparseRouteFilterTest, Ipv6WindowModesRoundTrip) {
  ir::RouterConfig config;
  ir::PrefixList list;
  list.name = "W6";
  list.family = util::AddressFamily::kIpv6;
  auto base = *util::Prefix6::Parse("2001:db8::/32");
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 32, 32), {}});    // exact
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 32, 128), {}});   // orlonger
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 33, 128), {}});   // longer
  list.entries.push_back(
      {ir::LineAction::kPermit, PrefixRange(base, 32, 64), {}});    // upto
  config.prefix_lists["W6"] = list;

  ir::RouteMap map;
  map.name = "POL6";
  ir::RouteMapClause clause;
  clause.action = ir::ClauseAction::kPermit;
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kPrefixList;
  match.names = {"W6"};
  clause.matches.push_back(match);
  map.clauses.push_back(clause);
  map.default_action = ir::ClauseAction::kDeny;
  config.route_maps["POL6"] = map;
  config.vendor = ir::Vendor::kJuniper;
  config.hostname = "j";

  std::string text = UnparseJuniperConfig(config);
  // orlonger/longer are recognized against the v6 ceiling (128), not 32.
  EXPECT_NE(text.find("route-filter 2001:db8::/32 exact"), std::string::npos);
  EXPECT_NE(text.find("route-filter 2001:db8::/32 orlonger"),
            std::string::npos);
  EXPECT_NE(text.find("route-filter 2001:db8::/32 longer"),
            std::string::npos);
  EXPECT_NE(text.find("route-filter 2001:db8::/32 upto /64"),
            std::string::npos);

  auto parsed = ParseJuniperConfig(text, "t.conf");
  const ir::RouteMap* back = parsed.config.FindRouteMap("POL6");
  ASSERT_NE(back, nullptr);
  const auto& names = back->clauses[0].matches[0].names;
  ASSERT_EQ(names.size(), 4u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    const ir::PrefixList* lowered = parsed.config.FindPrefixList(names[i]);
    ASSERT_NE(lowered, nullptr);
    EXPECT_EQ(lowered->family, util::AddressFamily::kIpv6) << i;
    EXPECT_EQ(lowered->entries[0].range, list.entries[i].range) << i;
  }
}

TEST(UnparseFilterTest, Inet6FilterRoundTrips) {
  ir::RouterConfig config;
  config.vendor = ir::Vendor::kJuniper;
  config.hostname = "j";
  ir::Acl acl;
  acl.name = "F6";
  acl.family = util::AddressFamily::kIpv6;
  ir::AclLine line;
  line.src = util::IpWildcard(*util::Prefix6::Parse("2001:db8:1::/48"));
  line.dst = util::IpWildcard::AnyOf(util::AddressFamily::kIpv6);
  line.protocol = ir::kProtoTcp;
  line.dst_ports.push_back({179, 179});
  acl.lines.push_back(line);
  config.acls["F6"] = acl;

  std::string text = UnparseJuniperConfig(config);
  EXPECT_NE(text.find("family inet6"), std::string::npos);
  EXPECT_NE(text.find("source-address 2001:db8:1::/48;"), std::string::npos);

  auto parsed = ParseJuniperConfig(text, "t.conf");
  const ir::Acl* back = parsed.config.FindAcl("F6");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->family, util::AddressFamily::kIpv6);
  ASSERT_EQ(back->lines.size(), 1u);
  EXPECT_EQ(back->lines[0].src, acl.lines[0].src);
  EXPECT_EQ(back->lines[0].dst, acl.lines[0].dst);
  EXPECT_EQ(back->lines[0].protocol, acl.lines[0].protocol);
  EXPECT_EQ(back->lines[0].dst_ports, acl.lines[0].dst_ports);
}

TEST(UnparseFilterTest, V4OnlyConfigEmitsNoInet6Block) {
  ir::RouterConfig config;
  config.vendor = ir::Vendor::kJuniper;
  config.hostname = "j";
  ir::Acl acl;
  acl.name = "F4";
  ir::AclLine line;
  line.src = util::IpWildcard(*Prefix::Parse("10.0.0.0/8"));
  acl.lines.push_back(line);
  config.acls["F4"] = acl;
  std::string text = UnparseJuniperConfig(config);
  EXPECT_NE(text.find("family inet {"), std::string::npos);
  EXPECT_EQ(text.find("family inet6"), std::string::npos);
}

}  // namespace
}  // namespace campion::juniper
