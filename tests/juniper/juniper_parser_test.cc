#include "juniper/juniper_parser.h"

#include <gtest/gtest.h>

namespace campion::juniper {
namespace {

using util::Community;
using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

ir::RouterConfig Parse(const std::string& text) {
  return ParseJuniperConfig(text, "test.conf").config;
}

TEST(JuniperParserTest, HostnameAndVendor) {
  auto config = Parse("system { host-name core-j; }\n");
  EXPECT_EQ(config.hostname, "core-j");
  EXPECT_EQ(config.vendor, ir::Vendor::kJuniper);
}

TEST(JuniperParserTest, InterfaceUnits) {
  auto config = Parse(R"(
interfaces {
    xe-0/0/0 {
        unit 0 {
            family inet {
                address 10.0.1.2/24;
            }
        }
        unit 100 {
            family inet {
                address 10.0.2.2/31;
            }
        }
    }
    xe-0/0/1 {
        disable;
        unit 0 {
            family inet {
                address 10.0.3.2/30;
            }
        }
    }
}
)");
  ASSERT_EQ(config.interfaces.size(), 3u);
  EXPECT_EQ(config.interfaces[0].name, "xe-0/0/0.0");
  EXPECT_EQ(config.interfaces[0].address, Ipv4Address(10, 0, 1, 2));
  EXPECT_EQ(config.interfaces[0].prefix_length, 24);
  EXPECT_EQ(config.interfaces[0].ConnectedSubnet(),
            *Prefix::Parse("10.0.1.0/24"));
  EXPECT_EQ(config.interfaces[1].name, "xe-0/0/0.100");
  EXPECT_EQ(config.interfaces[1].prefix_length, 31);
  // disable on the physical interface shuts all units down.
  EXPECT_TRUE(config.interfaces[2].shutdown);
}

TEST(JuniperParserTest, StaticRoutesBlockAndInline) {
  auto config = Parse(R"(
routing-options {
    static {
        route 10.1.1.2/31 {
            next-hop 10.2.2.2;
            preference 7;
            tag 42;
        }
        route 0.0.0.0/0 next-hop 10.0.0.1;
    }
}
)");
  ASSERT_EQ(config.static_routes.size(), 2u);
  EXPECT_EQ(config.static_routes[0].prefix, *Prefix::Parse("10.1.1.2/31"));
  EXPECT_EQ(config.static_routes[0].next_hop, Ipv4Address(10, 2, 2, 2));
  EXPECT_EQ(config.static_routes[0].admin_distance, 7);
  EXPECT_EQ(config.static_routes[0].tag, 42u);
  EXPECT_EQ(config.static_routes[1].prefix, *Prefix::Parse("0.0.0.0/0"));
  EXPECT_EQ(config.static_routes[1].next_hop, Ipv4Address(10, 0, 0, 1));
  // JunOS default static preference.
  EXPECT_EQ(config.static_routes[1].admin_distance, 5);
}

TEST(JuniperParserTest, PrefixListMatchesExactly) {
  auto config = Parse(R"(
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
}
)");
  const ir::PrefixList* list = config.FindPrefixList("NETS");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->entries.size(), 2u);
  // Exact windows: the crux of the paper's Difference 1.
  EXPECT_EQ(list->entries[0].range,
            PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 16));
}

TEST(JuniperParserTest, CommunityMembersAreConjunction) {
  auto config = Parse(
      "policy-options { community COMM members [ 10:10 10:11 ]; }\n");
  const ir::CommunityList* list = config.FindCommunityList("COMM");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->entries.size(), 1u);
  EXPECT_EQ(list->entries[0].all_of,
            (std::vector<Community>{Community(10, 10), Community(10, 11)}));
}

TEST(JuniperParserTest, SingleMemberCommunityWithoutBrackets) {
  auto config =
      Parse("policy-options { community ONE members 65000:7; }\n");
  const ir::CommunityList* list = config.FindCommunityList("ONE");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->entries[0].all_of,
            std::vector<Community>{Community(65000, 7)});
}

TEST(JuniperParserTest, PolicyStatementTerms) {
  auto config = Parse(R"(
policy-options {
    prefix-list NETS { 10.9.0.0/16; }
    community COMM members [ 10:10 ];
    policy-statement POL {
        term rule1 {
            from {
                prefix-list NETS;
            }
            then reject;
        }
        term rule2 {
            from {
                community COMM;
            }
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
)");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses.size(), 2u);
  EXPECT_EQ(map->default_action, ir::ClauseAction::kPermit);
  EXPECT_EQ(map->clauses[0].term_name, "rule1");
  EXPECT_EQ(map->clauses[0].action, ir::ClauseAction::kDeny);
  EXPECT_EQ(map->clauses[1].action, ir::ClauseAction::kPermit);
  ASSERT_EQ(map->clauses[1].sets.size(), 1u);
  EXPECT_EQ(map->clauses[1].sets[0].kind,
            ir::RouteMapSet::Kind::kLocalPreference);
  EXPECT_EQ(map->clauses[1].sets[0].value, 30u);
}

TEST(JuniperParserTest, TermWithoutTerminatingActionFallsThrough) {
  auto config = Parse(R"(
policy-options {
    policy-statement POL {
        term set-pref {
            then {
                local-preference 200;
            }
        }
        term final {
            then accept;
        }
    }
}
)");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->clauses[0].action, ir::ClauseAction::kFallThrough);
  EXPECT_EQ(map->clauses[1].action, ir::ClauseAction::kPermit);
}

TEST(JuniperParserTest, NextTermIsExplicitFallThrough) {
  auto config = Parse(R"(
policy-options {
    policy-statement POL {
        term t1 {
            then {
                metric 5;
                next term;
            }
        }
    }
}
)");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->clauses[0].action, ir::ClauseAction::kFallThrough);
}

TEST(JuniperParserTest, RouteFilterModes) {
  auto config = Parse(R"(
policy-options {
    policy-statement POL {
        term t1 {
            from {
                route-filter 10.0.0.0/8 exact;
                route-filter 10.1.0.0/16 orlonger;
                route-filter 10.2.0.0/16 longer;
                route-filter 10.3.0.0/16 upto /24;
                route-filter 10.4.0.0/16 prefix-length-range /20-/28;
            }
            then accept;
        }
    }
}
)");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses[0].matches.size(), 1u);
  const auto& names = map->clauses[0].matches[0].names;
  ASSERT_EQ(names.size(), 5u);
  auto range_of = [&](int i) {
    const ir::PrefixList* list = config.FindPrefixList(names[i]);
    EXPECT_NE(list, nullptr);
    return list->entries[0].range;
  };
  EXPECT_EQ(range_of(0), PrefixRange(*Prefix::Parse("10.0.0.0/8"), 8, 8));
  EXPECT_EQ(range_of(1), PrefixRange(*Prefix::Parse("10.1.0.0/16"), 16, 32));
  EXPECT_EQ(range_of(2), PrefixRange(*Prefix::Parse("10.2.0.0/16"), 17, 32));
  EXPECT_EQ(range_of(3), PrefixRange(*Prefix::Parse("10.3.0.0/16"), 16, 24));
  EXPECT_EQ(range_of(4), PrefixRange(*Prefix::Parse("10.4.0.0/16"), 20, 28));
}

TEST(JuniperParserTest, CommunitySetActions) {
  auto config = Parse(R"(
policy-options {
    community TAG members [ 65000:1 65000:2 ];
    policy-statement POL {
        term t1 {
            then {
                community add TAG;
                community delete TAG;
                community set TAG;
                accept;
            }
        }
    }
}
)");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses[0].sets.size(), 3u);
  EXPECT_EQ(map->clauses[0].sets[0].kind,
            ir::RouteMapSet::Kind::kCommunityAdd);
  EXPECT_EQ(map->clauses[0].sets[0].communities.size(), 2u);
  EXPECT_EQ(map->clauses[0].sets[1].kind,
            ir::RouteMapSet::Kind::kCommunityDelete);
  EXPECT_EQ(map->clauses[0].sets[2].kind,
            ir::RouteMapSet::Kind::kCommunitySet);
}

TEST(JuniperParserTest, FirewallFilterTerms) {
  auto config = Parse(R"(
firewall {
    family inet {
        filter VM_FILTER {
            term permit_web {
                from {
                    source-address 10.1.0.0/16;
                    destination-address 10.2.0.0/16;
                    protocol tcp;
                    destination-port 443;
                }
                then accept;
            }
            term deny_rest {
                then discard;
            }
        }
    }
}
)");
  const ir::Acl* acl = config.FindAcl("VM_FILTER");
  ASSERT_NE(acl, nullptr);
  ASSERT_EQ(acl->lines.size(), 2u);
  EXPECT_EQ(acl->lines[0].action, ir::LineAction::kPermit);
  EXPECT_EQ(acl->lines[0].protocol, ir::kProtoTcp);
  EXPECT_EQ(acl->lines[0].dst_ports[0], (ir::PortRange{443, 443}));
  EXPECT_EQ(acl->lines[1].action, ir::LineAction::kDeny);
  EXPECT_TRUE(acl->lines[1].src.IsAny());
}

TEST(JuniperParserTest, FilterTermCartesianExpansion) {
  // Two sources x one destination x two protocols = 4 IR lines.
  auto config = Parse(R"(
firewall {
    family inet {
        filter F {
            term t {
                from {
                    source-address 10.1.0.0/16;
                    source-address 10.2.0.0/16;
                    destination-address 10.3.0.0/16;
                    protocol tcp;
                    protocol udp;
                }
                then accept;
            }
        }
    }
}
)");
  const ir::Acl* acl = config.FindAcl("F");
  ASSERT_NE(acl, nullptr);
  EXPECT_EQ(acl->lines.size(), 4u);
}

TEST(JuniperParserTest, FilterPortRanges) {
  auto config = Parse(R"(
firewall {
    family inet {
        filter F {
            term t {
                from {
                    protocol udp;
                    destination-port 1024-65535;
                }
                then accept;
            }
        }
    }
}
)");
  const ir::Acl* acl = config.FindAcl("F");
  ASSERT_NE(acl, nullptr);
  EXPECT_EQ(acl->lines[0].dst_ports[0], (ir::PortRange{1024, 65535}));
}

TEST(JuniperParserTest, OspfAreasAndInterfaces) {
  auto config = Parse(R"(
interfaces {
    xe-0/0/0 {
        unit 0 { family inet { address 10.0.1.2/24; } }
    }
}
protocols {
    ospf {
        reference-bandwidth 10g;
        area 0.0.0.0 {
            interface xe-0/0/0.0 {
                metric 15;
            }
            interface lo0.0 {
                passive;
            }
        }
    }
}
)");
  ASSERT_TRUE(config.ospf.has_value());
  EXPECT_EQ(config.ospf->reference_bandwidth_mbps, 10000u);
  const ir::Interface* xe = config.FindInterface("xe-0/0/0.0");
  ASSERT_NE(xe, nullptr);
  EXPECT_TRUE(xe->ospf_enabled);
  EXPECT_EQ(xe->ospf_cost, 15u);
  EXPECT_EQ(xe->ospf_area, 0u);
  const ir::Interface* lo = config.FindInterface("lo0.0");
  ASSERT_NE(lo, nullptr);
  EXPECT_TRUE(lo->ospf_passive);
}

TEST(JuniperParserTest, OspfExportBecomesRedistribution) {
  auto config = Parse(R"(
policy-options {
    policy-statement REDIST {
        term statics {
            from {
                protocol static;
            }
            then accept;
        }
    }
}
protocols {
    ospf {
        export REDIST;
    }
}
)");
  ASSERT_TRUE(config.ospf.has_value());
  ASSERT_EQ(config.ospf->redistributions.size(), 1u);
  EXPECT_EQ(config.ospf->redistributions[0].from, ir::Protocol::kStatic);
  EXPECT_EQ(config.ospf->redistributions[0].route_map, "REDIST");
}

TEST(JuniperParserTest, BgpGroupsAndNeighbors) {
  auto config = Parse(R"(
routing-options {
    router-id 3.3.3.3;
    autonomous-system 65000;
}
protocols {
    bgp {
        group ebgp-peers {
            type external;
            peer-as 65001;
            import GROUP-IN;
            neighbor 10.0.0.2 {
                export PEER-OUT;
            }
            neighbor 10.0.0.6 {
                peer-as 65002;
            }
        }
        group rr-clients {
            type internal;
            cluster 3.3.3.3;
            neighbor 10.255.0.1;
        }
    }
}
)");
  ASSERT_TRUE(config.bgp.has_value());
  EXPECT_EQ(config.bgp->asn, 65000u);
  EXPECT_EQ(config.bgp->router_id, Ipv4Address(3, 3, 3, 3));
  ASSERT_EQ(config.bgp->neighbors.size(), 3u);
  const ir::BgpNeighbor& n1 = config.bgp->neighbors[0];
  EXPECT_EQ(n1.remote_as, 65001u);
  EXPECT_EQ(n1.import_policy, "GROUP-IN");  // Inherited from the group.
  EXPECT_EQ(n1.export_policy, "PEER-OUT");  // Neighbor-level.
  EXPECT_TRUE(n1.send_community);           // JunOS default.
  EXPECT_EQ(config.bgp->neighbors[1].remote_as, 65002u);  // Override.
  const ir::BgpNeighbor& rr = config.bgp->neighbors[2];
  EXPECT_EQ(rr.remote_as, 65000u);  // Internal group.
  EXPECT_TRUE(rr.route_reflector_client);
}

TEST(JuniperParserTest, CommentsAndStringsTolerated) {
  auto config = Parse(R"(
# leading comment
system {
    /* block
       comment */
    host-name "quoted name";
}
)");
  EXPECT_EQ(config.hostname, "quoted name");
}

TEST(JuniperParserTest, DiagnosticsForUnsupportedConditions) {
  auto result = ParseJuniperConfig(R"(
policy-options {
    policy-statement POL {
        term t {
            from {
                rib inet.3;
            }
            then accept;
        }
    }
}
)",
                                   "x.conf");
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_NE(result.diagnostics[0].find("rib"), std::string::npos);
}

TEST(JuniperParserTest, SpanCoversTermText) {
  auto result = ParseJuniperConfig(R"(policy-options {
    policy-statement POL {
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
)",
                                   "x.conf");
  const ir::RouteMap* map = result.config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  const ir::RouteMapClause& clause = map->clauses[0];
  EXPECT_NE(clause.span.text.find("term rule3"), std::string::npos);
  EXPECT_NE(clause.span.text.find("local-preference 30"), std::string::npos);
  EXPECT_EQ(clause.span.first_line, 3);
  EXPECT_EQ(clause.span.last_line, 8);
}


// Line numbers must stay exact (1-based) across multi-line /* */ comments,
// '#' comments, and nested multi-line {} blocks — these all advance the
// tokenizer without producing statements, the classic off-by-one source.
TEST(JuniperParserTest, LineNumbersSurviveCommentsAndNestedBlocks) {
  auto result = ParseJuniperConfig(
      "/* header\n"                              // 1
      "   comment */\n"                          // 2
      "firewall {\n"                             // 3
      "    family inet {\n"                      // 4
      "        filter F {\n"                     // 5
      "            # interleaved noise\n"        // 6
      "            term t0 {\n"                  // 7
      "                from {\n"                 // 8
      "                    protocol tcp;\n"      // 9
      "                }\n"                      // 10
      "                then accept;\n"           // 11
      "            }\n"                          // 12
      "        }\n"                              // 13
      "    }\n"                                  // 14
      "}\n",                                     // 15
      "f.conf");
  EXPECT_TRUE(result.diagnostics.empty());
  const ir::Acl* acl = result.config.FindAcl("F");
  ASSERT_NE(acl, nullptr);
  EXPECT_EQ(acl->span.first_line, 5);
  EXPECT_EQ(acl->span.last_line, 13);
  EXPECT_EQ(acl->span.LocationString(), "f.conf:5-13");
  ASSERT_EQ(acl->lines.size(), 1u);
  EXPECT_EQ(acl->lines[0].span.first_line, 7);
  EXPECT_EQ(acl->lines[0].span.last_line, 12);
  // The span text is exactly the covered lines.
  EXPECT_NE(acl->lines[0].span.text.find("term t0 {"), std::string::npos);
  EXPECT_NE(acl->lines[0].span.text.find("then accept;"),
            std::string::npos);
  EXPECT_EQ(acl->lines[0].span.text.find("filter F"), std::string::npos);
}

TEST(JuniperParserTest, PrefixListFilterModes) {
  auto config = Parse(R"(
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    policy-statement POL {
        term t {
            from {
                prefix-list-filter NETS orlonger;
            }
            then accept;
        }
    }
}
)");
  const ir::RouteMap* map = config.FindRouteMap("POL");
  ASSERT_NE(map, nullptr);
  ASSERT_EQ(map->clauses[0].matches.size(), 1u);
  const auto& names = map->clauses[0].matches[0].names;
  ASSERT_EQ(names.size(), 1u);
  const ir::PrefixList* lowered = config.FindPrefixList(names[0]);
  ASSERT_NE(lowered, nullptr);
  ASSERT_EQ(lowered->entries.size(), 2u);
  // orlonger widens each entry to [base, 32] — the JunOS counterpart of
  // Cisco's `le 32` window, making Fig.1-style pairs expressible.
  EXPECT_EQ(lowered->entries[0].range,
            PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32));
}

TEST(JuniperParserTest, PrefixListFilterUndefinedListDiagnosed) {
  auto result = ParseJuniperConfig(R"(
policy-options {
    policy-statement POL {
        term t {
            from {
                prefix-list-filter GHOST exact;
            }
            then accept;
        }
    }
}
)",
                                   "x.conf");
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_NE(result.diagnostics[0].find("GHOST"), std::string::npos);
}

TEST(JuniperParserTest, FamilyInet6FilterTerms) {
  auto config = Parse(R"(
firewall {
    family inet6 {
        filter V6F {
            term bgp {
                from {
                    source-address 2001:db8:1::/48;
                    protocol tcp;
                    destination-port 179;
                }
                then accept;
            }
            term ping {
                from {
                    next-header icmp6;
                    icmpv6-type echo-request;
                }
                then accept;
            }
            term rest {
                then discard;
            }
        }
    }
}
)");
  const ir::Acl* acl = config.FindAcl("V6F");
  ASSERT_NE(acl, nullptr);
  EXPECT_EQ(acl->family, util::AddressFamily::kIpv6);
  ASSERT_EQ(acl->lines.size(), 3u);
  EXPECT_EQ(acl->lines[0].protocol, ir::kProtoTcp);
  EXPECT_EQ(acl->lines[0].src.family(), util::AddressFamily::kIpv6);
  ASSERT_TRUE(acl->lines[0].src.AsIpPrefix().has_value());
  EXPECT_EQ(*acl->lines[0].src.AsIpPrefix(),
            util::IpPrefix(*util::Prefix6::Parse("2001:db8:1::/48")));
  EXPECT_EQ(acl->lines[0].dst_ports[0], (ir::PortRange{179, 179}));
  // next-header is the inet6 spelling of protocol; icmpv6 echo-request is
  // type 128 (not the v4 type 8).
  EXPECT_EQ(acl->lines[1].protocol, ir::kProtoIcmpv6);
  EXPECT_EQ(acl->lines[1].icmp_type, 128);
  // Unconstrained terms default to the filter's family universe.
  EXPECT_TRUE(acl->lines[2].src.IsAny());
  EXPECT_EQ(acl->lines[2].src.family(), util::AddressFamily::kIpv6);
}

TEST(JuniperParserTest, InetAndInet6FiltersCoexist) {
  auto config = Parse(R"(
firewall {
    family inet {
        filter F4 {
            term t { from { source-address 10.0.0.0/8; } then accept; }
        }
    }
    family inet6 {
        filter F6 {
            term t { from { source-address 2001:db8::/32; } then accept; }
        }
    }
}
)");
  const ir::Acl* f4 = config.FindAcl("F4");
  const ir::Acl* f6 = config.FindAcl("F6");
  ASSERT_NE(f4, nullptr);
  ASSERT_NE(f6, nullptr);
  EXPECT_EQ(f4->family, util::AddressFamily::kIpv4);
  EXPECT_EQ(f6->family, util::AddressFamily::kIpv6);
}

TEST(JuniperParserTest, Inet6PrefixListAndRouteFilter) {
  auto config = Parse(R"(
policy-options {
    prefix-list NETS6 {
        2001:db8:9::/48;
        2001:db8:100::/48;
    }
    policy-statement P {
        term a {
            from {
                route-filter 2001:db8::/32 orlonger;
            }
            then accept;
        }
    }
}
)");
  const ir::PrefixList* list = config.FindPrefixList("NETS6");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->family, util::AddressFamily::kIpv6);
  ASSERT_EQ(list->entries.size(), 2u);
  EXPECT_EQ(list->entries[0].range,
            PrefixRange(*util::Prefix6::Parse("2001:db8:9::/48"), 48, 48));
  const ir::RouteMap* map = config.FindRouteMap("P");
  ASSERT_NE(map, nullptr);
  // orlonger on a v6 route-filter must run to /128, not /32. Route filters
  // lower to synthesized prefix lists; follow the reference.
  ASSERT_EQ(map->clauses[0].matches.size(), 1u);
  ASSERT_EQ(map->clauses[0].matches[0].names.size(), 1u);
  const ir::PrefixList* lowered =
      config.FindPrefixList(map->clauses[0].matches[0].names[0]);
  ASSERT_NE(lowered, nullptr);
  EXPECT_EQ(lowered->family, util::AddressFamily::kIpv6);
  ASSERT_EQ(lowered->entries.size(), 1u);
  EXPECT_EQ(lowered->entries[0].range,
            PrefixRange(*util::Prefix6::Parse("2001:db8::/32"), 32, 128));
}

TEST(JuniperParserTest, MixedFamilyPrefixListDiagnosed) {
  auto result = ParseJuniperConfig(R"(
policy-options {
    prefix-list MIXED {
        2001:db8::/32;
        10.0.0.0/8;
    }
}
)",
                                   "x.conf");
  const ir::PrefixList* list = result.config.FindPrefixList("MIXED");
  ASSERT_NE(list, nullptr);
  // First entry fixes the family; the v4 straggler is diagnosed, not kept.
  EXPECT_EQ(list->family, util::AddressFamily::kIpv6);
  EXPECT_EQ(list->entries.size(), 1u);
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_NE(result.diagnostics[0].find("famil"), std::string::npos);
}

TEST(JuniperParserTest, UnsupportedFirewallFamilyDiagnosed) {
  auto result = ParseJuniperConfig(R"(
firewall {
    family mpls {
        filter M {
            term t { then accept; }
        }
    }
}
)",
                                   "x.conf");
  EXPECT_EQ(result.config.FindAcl("M"), nullptr);
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_NE(result.diagnostics[0].find("family"), std::string::npos);
}

}  // namespace
}  // namespace campion::juniper
