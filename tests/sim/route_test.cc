#include "sim/route.h"

#include <gtest/gtest.h>

namespace campion::sim {
namespace {

using util::Community;
using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

ir::RouterConfig MakeConfig() {
  ir::RouterConfig config;
  ir::PrefixList nets;
  nets.name = "NETS";
  nets.entries.push_back(
      {ir::LineAction::kPermit,
       PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32), {}});
  config.prefix_lists["NETS"] = nets;

  ir::CommunityList comm;
  comm.name = "COMM";
  comm.entries.push_back({ir::LineAction::kPermit, {Community(10, 10)}, {}});
  comm.entries.push_back({ir::LineAction::kPermit, {Community(10, 11)}, {}});
  config.community_lists["COMM"] = comm;
  return config;
}

Route BgpRoute(const char* prefix) {
  Route route;
  route.prefix = *Prefix::Parse(prefix);
  route.protocol = ir::Protocol::kBgp;
  route.admin_distance = 20;
  return route;
}

ir::RouteMap DenyNetsThenAccept() {
  ir::RouteMap map;
  map.name = "POL";
  ir::RouteMapClause deny;
  deny.action = ir::ClauseAction::kDeny;
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kPrefixList;
  match.names = {"NETS"};
  deny.matches.push_back(match);
  map.clauses.push_back(deny);
  ir::RouteMapClause accept;
  accept.action = ir::ClauseAction::kPermit;
  ir::RouteMapSet set;
  set.kind = ir::RouteMapSet::Kind::kLocalPreference;
  set.value = 30;
  accept.sets.push_back(set);
  map.clauses.push_back(accept);
  map.default_action = ir::ClauseAction::kDeny;
  return map;
}

TEST(EvalRouteMapTest, DenyMatchingPrefix) {
  ir::RouterConfig config = MakeConfig();
  ir::RouteMap map = DenyNetsThenAccept();
  EXPECT_FALSE(EvalRouteMap(config, map, BgpRoute("10.9.1.0/24")));
  auto accepted = EvalRouteMap(config, map, BgpRoute("192.168.0.0/16"));
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->local_pref, 30u);
}

TEST(EvalRouteMapTest, CommunityListOrSemantics) {
  ir::RouterConfig config = MakeConfig();
  ir::RouteMap map;
  map.name = "M";
  ir::RouteMapClause clause;
  clause.action = ir::ClauseAction::kPermit;
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kCommunityList;
  match.names = {"COMM"};
  clause.matches.push_back(match);
  map.clauses.push_back(clause);
  map.default_action = ir::ClauseAction::kDeny;

  Route with10 = BgpRoute("192.168.0.0/16");
  with10.communities.insert(Community(10, 10));
  EXPECT_TRUE(EvalRouteMap(config, map, with10).has_value());
  Route with_other = BgpRoute("192.168.0.0/16");
  with_other.communities.insert(Community(99, 99));
  EXPECT_FALSE(EvalRouteMap(config, map, with_other).has_value());
  EXPECT_FALSE(EvalRouteMap(config, map, BgpRoute("192.168.0.0/16")));
}

TEST(EvalRouteMapTest, FallThroughAppliesSetsThenContinues) {
  ir::RouterConfig config = MakeConfig();
  ir::RouteMap map;
  map.name = "M";
  ir::RouteMapClause fall;
  fall.action = ir::ClauseAction::kFallThrough;
  ir::RouteMapSet set;
  set.kind = ir::RouteMapSet::Kind::kMetric;
  set.value = 99;
  fall.sets.push_back(set);
  map.clauses.push_back(fall);
  ir::RouteMapClause accept;
  accept.action = ir::ClauseAction::kPermit;
  map.clauses.push_back(accept);
  map.default_action = ir::ClauseAction::kDeny;

  auto result = EvalRouteMap(config, map, BgpRoute("192.168.0.0/16"));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metric, 99u);
}

TEST(EvalRouteMapTest, DefaultActionApplies) {
  ir::RouterConfig config = MakeConfig();
  ir::RouteMap deny_default;
  deny_default.default_action = ir::ClauseAction::kDeny;
  EXPECT_FALSE(
      EvalRouteMap(config, deny_default, BgpRoute("1.0.0.0/8")).has_value());
  ir::RouteMap accept_default;
  accept_default.default_action = ir::ClauseAction::kPermit;
  EXPECT_TRUE(
      EvalRouteMap(config, accept_default, BgpRoute("1.0.0.0/8")).has_value());
}

TEST(EvalRouteMapTest, CommunitySetReplaceAddDelete) {
  ir::RouterConfig config = MakeConfig();
  ir::RouteMap map;
  ir::RouteMapClause clause;
  clause.action = ir::ClauseAction::kPermit;
  ir::RouteMapSet replace;
  replace.kind = ir::RouteMapSet::Kind::kCommunitySet;
  replace.communities = {Community(1, 1)};
  ir::RouteMapSet add;
  add.kind = ir::RouteMapSet::Kind::kCommunityAdd;
  add.communities = {Community(2, 2)};
  ir::RouteMapSet del;
  del.kind = ir::RouteMapSet::Kind::kCommunityDelete;
  del.communities = {Community(1, 1)};
  clause.sets = {replace, add, del};
  map.clauses.push_back(clause);

  Route route = BgpRoute("192.168.0.0/16");
  route.communities.insert(Community(9, 9));
  auto result = EvalRouteMap(config, map, route);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->communities, (std::set<Community>{Community(2, 2)}));
}

TEST(EvalPolicyTest, EmptyNameAcceptsUnmodified) {
  ir::RouterConfig config = MakeConfig();
  Route route = BgpRoute("10.9.1.0/24");
  auto result = EvalPolicy(config, "", route);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, route);
}

TEST(PreferredTest, AdminDistanceFirst) {
  Route static_route = BgpRoute("10.0.0.0/8");
  static_route.protocol = ir::Protocol::kStatic;
  static_route.admin_distance = 1;
  Route bgp = BgpRoute("10.0.0.0/8");
  EXPECT_TRUE(Preferred(static_route, bgp));
  EXPECT_FALSE(Preferred(bgp, static_route));
}

TEST(PreferredTest, BgpLocalPrefThenAsPath) {
  Route high_lp = BgpRoute("10.0.0.0/8");
  high_lp.local_pref = 200;
  high_lp.as_path_length = 5;
  Route low_lp = BgpRoute("10.0.0.0/8");
  low_lp.local_pref = 100;
  low_lp.as_path_length = 1;
  EXPECT_TRUE(Preferred(high_lp, low_lp));

  Route short_path = BgpRoute("10.0.0.0/8");
  short_path.as_path_length = 1;
  Route long_path = BgpRoute("10.0.0.0/8");
  long_path.as_path_length = 3;
  EXPECT_TRUE(Preferred(short_path, long_path));
}

TEST(PreferredTest, MetricBreaksOspfTies) {
  Route cheap = BgpRoute("10.0.0.0/8");
  cheap.protocol = ir::Protocol::kOspf;
  cheap.admin_distance = 110;
  cheap.metric = 10;
  Route costly = cheap;
  costly.metric = 30;
  EXPECT_TRUE(Preferred(cheap, costly));
}

TEST(PreferredTest, DeterministicTieBreak) {
  Route a = BgpRoute("10.0.0.0/8");
  a.learned_from = "alpha";
  Route b = BgpRoute("10.0.0.0/8");
  b.learned_from = "beta";
  EXPECT_TRUE(Preferred(a, b) != Preferred(b, a) || a == b);
}

}  // namespace
}  // namespace campion::sim
