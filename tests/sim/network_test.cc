// Stable-routing-simulator tests, including the empirical Theorem 3.3
// check: Campion-equivalent configurations produce identical routing
// solutions, and Campion-reported differences either manifest or are
// provably latent (§5.3).

#include "sim/network.h"

#include <gtest/gtest.h>

#include "core/config_diff.h"
#include "tests/testdata.h"

namespace campion::sim {
namespace {

using util::Ipv4Address;
using util::Prefix;

// A three-router line: left -(eBGP)- middle -(eBGP)- right.
struct LineTopology {
  Network network;

  LineTopology() {
    network.AddRouter(MakeRouter("left", 65001, 0));
    network.AddRouter(MakeRouter("middle", 65002, 1));
    network.AddRouter(MakeRouter("right", 65003, 2));
    network.AddBgpSession("left", Addr(0, 1), "middle", Addr(0, 2));
    network.AddBgpSession("middle", Addr(1, 1), "right", Addr(1, 2));
  }

  static Ipv4Address Addr(int link, int side) {
    return Ipv4Address(10, 255, static_cast<std::uint8_t>(link),
                       static_cast<std::uint8_t>(side));
  }

  static ir::RouterConfig MakeRouter(const std::string& name,
                                     std::uint32_t asn, int index) {
    ir::RouterConfig config;
    config.hostname = name;
    ir::BgpProcess bgp;
    bgp.asn = asn;
    bgp.networks.push_back(
        Prefix(Ipv4Address(10, static_cast<std::uint8_t>(index), 0, 0), 24));
    if (index > 0) {
      ir::BgpNeighbor left;
      left.ip = Addr(index - 1, 1);
      left.remote_as = asn - 1;
      left.send_community = true;
      bgp.neighbors.push_back(left);
    }
    if (index < 2) {
      ir::BgpNeighbor right;
      right.ip = Addr(index, 2);
      right.remote_as = asn + 1;
      right.send_community = true;
      bgp.neighbors.push_back(right);
    }
    config.bgp = std::move(bgp);
    return config;
  }
};

TEST(SolveTest, BgpPropagatesAlongLine) {
  LineTopology topo;
  RoutingSolution solution = Solve(topo.network);
  // right learns left's network over two eBGP hops.
  Prefix left_net(Ipv4Address(10, 0, 0, 0), 24);
  ASSERT_TRUE(solution.ribs["right"].contains(left_net));
  const Route& route = solution.ribs["right"][left_net];
  EXPECT_EQ(route.protocol, ir::Protocol::kBgp);
  EXPECT_EQ(route.as_path_length, 2);
  EXPECT_EQ(route.learned_from, "middle");
}

TEST(SolveTest, FixedPointIsStable) {
  LineTopology topo;
  RoutingSolution first = Solve(topo.network);
  RoutingSolution second = Solve(topo.network);
  EXPECT_TRUE(first.SameAs(second));
}

TEST(SolveTest, ExportPolicyFilters) {
  LineTopology topo;
  // middle filters left's network toward right.
  ir::RouterConfig middle = *topo.network.FindRouter("middle");
  ir::PrefixList block;
  block.name = "BLOCK";
  block.entries.push_back(
      {ir::LineAction::kPermit,
       util::PrefixRange(Prefix(Ipv4Address(10, 0, 0, 0), 24)), {}});
  middle.prefix_lists["BLOCK"] = block;
  ir::RouteMap policy;
  policy.name = "EXP";
  ir::RouteMapClause deny;
  deny.action = ir::ClauseAction::kDeny;
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kPrefixList;
  match.names = {"BLOCK"};
  deny.matches.push_back(match);
  policy.clauses.push_back(deny);
  policy.default_action = ir::ClauseAction::kPermit;
  middle.route_maps["EXP"] = policy;
  middle.bgp->neighbors[1].export_policy = "EXP";
  topo.network.ReplaceRouter("middle", middle);

  RoutingSolution solution = Solve(topo.network);
  EXPECT_FALSE(
      solution.ribs["right"].contains(Prefix(Ipv4Address(10, 0, 0, 0), 24)));
  // Middle's own network still reaches right.
  EXPECT_TRUE(
      solution.ribs["right"].contains(Prefix(Ipv4Address(10, 1, 0, 0), 24)));
}

TEST(SolveTest, LocalPrefDoesNotCrossEbgp) {
  LineTopology topo;
  RoutingSolution solution = Solve(topo.network);
  Prefix left_net(Ipv4Address(10, 0, 0, 0), 24);
  EXPECT_EQ(solution.ribs["right"][left_net].local_pref, 100u);
}

TEST(SolveTest, SendCommunityControlsPropagation) {
  LineTopology topo;
  // left tags its network with a community on export.
  ir::RouterConfig left = *topo.network.FindRouter("left");
  ir::RouteMap tag;
  tag.name = "TAG";
  ir::RouteMapClause clause;
  clause.action = ir::ClauseAction::kPermit;
  ir::RouteMapSet set;
  set.kind = ir::RouteMapSet::Kind::kCommunityAdd;
  set.communities = {util::Community(65001, 1)};
  clause.sets.push_back(set);
  tag.clauses.push_back(clause);
  tag.default_action = ir::ClauseAction::kPermit;
  left.route_maps["TAG"] = tag;
  left.bgp->neighbors[0].export_policy = "TAG";
  topo.network.ReplaceRouter("left", left);

  RoutingSolution with_send = Solve(topo.network);
  Prefix left_net(Ipv4Address(10, 0, 0, 0), 24);
  EXPECT_TRUE(with_send.ribs["middle"][left_net].communities.contains(
      util::Community(65001, 1)));

  // Now disable send-community on left's session.
  ir::RouterConfig left2 = *topo.network.FindRouter("left");
  left2.bgp->neighbors[0].send_community = false;
  topo.network.ReplaceRouter("left", left2);
  RoutingSolution without_send = Solve(topo.network);
  EXPECT_TRUE(without_send.ribs["middle"][left_net].communities.empty());
}

TEST(SolveTest, StaticAndConnectedRoutesInstall) {
  Network network;
  ir::RouterConfig router;
  router.hostname = "r";
  ir::Interface iface;
  iface.name = "e1";
  iface.address = Ipv4Address(10, 0, 1, 1);
  iface.prefix_length = 24;
  router.interfaces.push_back(iface);
  ir::StaticRoute s;
  s.prefix = Prefix(Ipv4Address(10, 7, 0, 0), 16);
  s.next_hop = Ipv4Address(10, 0, 1, 254);
  router.static_routes.push_back(s);
  network.AddRouter(router);

  RoutingSolution solution = Solve(network);
  EXPECT_TRUE(solution.ribs["r"].contains(Prefix(Ipv4Address(10, 0, 1, 0), 24)));
  EXPECT_TRUE(solution.ribs["r"].contains(Prefix(Ipv4Address(10, 7, 0, 0), 16)));
  EXPECT_EQ(solution.ribs["r"][Prefix(Ipv4Address(10, 7, 0, 0), 16)].protocol,
            ir::Protocol::kStatic);
}

TEST(SolveTest, OspfFloodsWithCost) {
  Network network;
  auto make = [](const std::string& name, std::uint8_t octet,
                 std::uint32_t cost) {
    ir::RouterConfig config;
    config.hostname = name;
    ir::Interface link;
    link.name = "e0";
    link.address = Ipv4Address(10, 200, 0, octet);
    link.prefix_length = 24;
    link.ospf_enabled = true;
    link.ospf_area = 0;
    link.ospf_cost = cost;
    config.interfaces.push_back(link);
    ir::Interface lan;
    lan.name = "e1";
    lan.address = Ipv4Address(10, octet, 0, 1);
    lan.prefix_length = 24;
    lan.ospf_enabled = true;
    lan.ospf_area = 0;
    config.interfaces.push_back(lan);
    return config;
  };
  network.AddRouter(make("a", 1, 10));
  network.AddRouter(make("b", 2, 10));
  network.AddAdjacency("a", "e0", "b", "e0");

  RoutingSolution solution = Solve(network);
  Prefix b_lan(Ipv4Address(10, 2, 0, 0), 24);
  ASSERT_TRUE(solution.ribs["a"].contains(b_lan));
  EXPECT_EQ(solution.ribs["a"][b_lan].protocol, ir::Protocol::kOspf);
  EXPECT_EQ(solution.ribs["a"][b_lan].metric, 10u);
}

TEST(SolveTest, OspfRespectsAreasAndPassive) {
  Network network;
  auto make = [](const std::string& name, std::uint8_t octet,
                 std::uint32_t area, bool passive) {
    ir::RouterConfig config;
    config.hostname = name;
    ir::Interface link;
    link.name = "e0";
    link.address = Ipv4Address(10, 200, 0, octet);
    link.prefix_length = 24;
    link.ospf_enabled = true;
    link.ospf_area = area;
    link.ospf_passive = passive;
    config.interfaces.push_back(link);
    ir::Interface lan;
    lan.name = "e1";
    lan.address = Ipv4Address(10, octet, 0, 1);
    lan.prefix_length = 24;
    lan.ospf_enabled = true;
    lan.ospf_area = area;
    config.interfaces.push_back(lan);
    return config;
  };
  // Different areas: no exchange.
  network.AddRouter(make("a", 1, 0, false));
  network.AddRouter(make("b", 2, 1, false));
  network.AddAdjacency("a", "e0", "b", "e0");
  RoutingSolution different_areas = Solve(network);
  EXPECT_FALSE(different_areas.ribs["a"].contains(
      Prefix(Ipv4Address(10, 2, 0, 0), 24)));

  // Passive interface: no exchange either.
  Network network2;
  network2.AddRouter(make("a", 1, 0, true));
  network2.AddRouter(make("b", 2, 0, false));
  network2.AddAdjacency("a", "e0", "b", "e0");
  RoutingSolution passive = Solve(network2);
  EXPECT_FALSE(
      passive.ribs["a"].contains(Prefix(Ipv4Address(10, 2, 0, 0), 24)));
}

TEST(SolveTest, RouteReflectionRequiresClientFlag) {
  // hub with two iBGP spokes; spoke1 originates. Without reflection spoke2
  // must not learn the route; with the client flags set, it must.
  auto build = [](bool reflector) {
    Network network;
    ir::RouterConfig hub;
    hub.hostname = "hub";
    ir::BgpProcess hub_bgp;
    hub_bgp.asn = 65000;
    for (int i = 1; i <= 2; ++i) {
      ir::BgpNeighbor spoke;
      spoke.ip = Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 2);
      spoke.remote_as = 65000;
      spoke.send_community = true;
      spoke.route_reflector_client = reflector;
      hub_bgp.neighbors.push_back(spoke);
    }
    hub.bgp = std::move(hub_bgp);
    network.AddRouter(hub);

    for (int i = 1; i <= 2; ++i) {
      ir::RouterConfig spoke;
      spoke.hostname = "spoke" + std::to_string(i);
      ir::BgpProcess bgp;
      bgp.asn = 65000;
      ir::BgpNeighbor to_hub;
      to_hub.ip = Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 1);
      to_hub.remote_as = 65000;
      to_hub.send_community = true;
      bgp.neighbors.push_back(to_hub);
      if (i == 1) {
        bgp.networks.push_back(Prefix(Ipv4Address(10, 77, 0, 0), 16));
      }
      spoke.bgp = std::move(bgp);
      network.AddRouter(spoke);
      network.AddBgpSession(
          "hub", Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 1),
          "spoke" + std::to_string(i),
          Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 2));
    }
    return network;
  };

  RoutingSolution no_reflect = Solve(build(false));
  EXPECT_FALSE(no_reflect.ribs["spoke2"].contains(
      Prefix(Ipv4Address(10, 77, 0, 0), 16)));
  RoutingSolution reflect = Solve(build(true));
  EXPECT_TRUE(reflect.ribs["spoke2"].contains(
      Prefix(Ipv4Address(10, 77, 0, 0), 16)));
}

// --- Theorem 3.3 ------------------------------------------------------------

TEST(SoundnessTest, EquivalentConfigsSameSolutions) {
  // Swapping in an IR-identical copy leaves the solution unchanged.
  LineTopology topo;
  ir::RouterConfig variant = *topo.network.FindRouter("middle");
  RoutingSolution base = Solve(topo.network);
  topo.network.ReplaceRouter("middle", variant);
  RoutingSolution swapped = Solve(topo.network);
  EXPECT_TRUE(base.SameAs(swapped));
}

TEST(SoundnessTest, CampionCleanReplacementPreservesSolutions) {
  // Every clean replacement pair of the data-center scenario: swapping the
  // translation into the same topology preserves the solution.
  LineTopology topo;
  RoutingSolution base = Solve(topo.network);

  // Replace middle with a behaviorally identical router whose policies are
  // expressed differently (split prefix list entries).
  ir::RouterConfig middle = *topo.network.FindRouter("middle");
  ir::PrefixList allow;
  allow.name = "ALLOW";
  allow.entries.push_back(
      {ir::LineAction::kPermit,
       util::PrefixRange(Prefix(Ipv4Address(0, 0, 0, 0), 0), 0, 32), {}});
  middle.prefix_lists["ALLOW"] = allow;
  ir::RouteMap pass;
  pass.name = "PASS";
  ir::RouteMapClause clause;
  clause.action = ir::ClauseAction::kPermit;
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kPrefixList;
  match.names = {"ALLOW"};
  clause.matches.push_back(match);
  pass.clauses.push_back(clause);
  pass.default_action = ir::ClauseAction::kDeny;
  middle.route_maps["PASS"] = pass;
  middle.bgp->neighbors[0].export_policy = "PASS";  // Accept-all == none.

  // Campion agrees the replacement is behaviorally equivalent.
  auto diffs = core::DiffRouteMapPair(*topo.network.FindRouter("middle"), "",
                                      middle, "PASS");
  ASSERT_TRUE(diffs.empty());

  topo.network.ReplaceRouter("middle", middle);
  RoutingSolution swapped = Solve(topo.network);
  EXPECT_TRUE(base.SameAs(swapped));
}

TEST(SoundnessTest, ReportedDifferenceManifests) {
  // A local-pref difference Campion reports changes the routing solution in
  // a topology with two paths.
  Network network;
  // dst -(eBGP)- a -(iBGP)- chooser, dst -(eBGP)- b -(iBGP)- chooser:
  // chooser picks by local-pref set on a's/b's import.
  // Simplified: one router with two eBGP sessions to two origins of the
  // same prefix; import policy local-pref decides.
  ir::RouterConfig chooser;
  chooser.hostname = "chooser";
  ir::BgpProcess bgp;
  bgp.asn = 65000;
  for (int i = 1; i <= 2; ++i) {
    ir::BgpNeighbor n;
    n.ip = Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 2);
    n.remote_as = 65000u + static_cast<std::uint32_t>(i);
    n.send_community = true;
    n.import_policy = i == 1 ? "PREF-A" : "";
    bgp.neighbors.push_back(n);
  }
  chooser.bgp = std::move(bgp);
  ir::RouteMap pref;
  pref.name = "PREF-A";
  ir::RouteMapClause clause;
  clause.action = ir::ClauseAction::kPermit;
  ir::RouteMapSet set;
  set.kind = ir::RouteMapSet::Kind::kLocalPreference;
  set.value = 200;
  clause.sets.push_back(set);
  pref.clauses.push_back(clause);
  pref.default_action = ir::ClauseAction::kPermit;
  chooser.route_maps["PREF-A"] = pref;
  network.AddRouter(chooser);

  Prefix target(Ipv4Address(10, 50, 0, 0), 16);
  for (int i = 1; i <= 2; ++i) {
    ir::RouterConfig origin;
    origin.hostname = "origin" + std::to_string(i);
    ir::BgpProcess obgp;
    obgp.asn = 65000u + static_cast<std::uint32_t>(i);
    obgp.networks.push_back(target);
    ir::BgpNeighbor n;
    n.ip = Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 1);
    n.remote_as = 65000;
    n.send_community = true;
    obgp.neighbors.push_back(n);
    origin.bgp = std::move(obgp);
    network.AddRouter(origin);
    network.AddBgpSession(
        "chooser", Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 1),
        "origin" + std::to_string(i),
        Ipv4Address(10, 255, static_cast<std::uint8_t>(i), 2));
  }

  RoutingSolution with_pref = Solve(network);
  ASSERT_TRUE(with_pref.ribs["chooser"].contains(target));
  EXPECT_EQ(with_pref.ribs["chooser"][target].learned_from, "origin1");

  // The "translated" chooser drops the local-pref (Campion flags this);
  // origin2's route now wins the tie-break differently.
  ir::RouterConfig translated = chooser;
  translated.route_maps["PREF-A"].clauses[0].sets.clear();
  auto diffs = core::DiffRouteMapPair(chooser, "PREF-A", translated, "PREF-A");
  ASSERT_EQ(diffs.size(), 1u);

  network.ReplaceRouter("chooser", translated);
  RoutingSolution without_pref = Solve(network);
  EXPECT_FALSE(with_pref.SameAs(without_pref));
}

TEST(SoundnessTest, LatentDifferenceDoesNotManifest) {
  // §5.3: a difference in a component the network never exercises leaves
  // the solution unchanged (but Campion still reports it).
  LineTopology topo;
  RoutingSolution base = Solve(topo.network);

  ir::RouterConfig middle = *topo.network.FindRouter("middle");
  ir::StaticRoute unused;
  unused.prefix = Prefix(Ipv4Address(203, 0, 113, 0), 24);
  unused.next_hop = Ipv4Address(10, 255, 0, 1);
  middle.static_routes.push_back(unused);

  // Campion reports the difference...
  auto diffs =
      core::DiffStaticRoutes(*topo.network.FindRouter("middle"), middle);
  ASSERT_EQ(diffs.size(), 1u);

  // ...but the BGP solution at the neighbors is unchanged (the static
  // route is local to middle and not redistributed).
  topo.network.ReplaceRouter("middle", middle);
  RoutingSolution swapped = Solve(topo.network);
  EXPECT_EQ(base.ribs["left"], swapped.ribs["left"]);
  EXPECT_EQ(base.ribs["right"], swapped.ribs["right"]);
}


TEST(SolveTest, OspfRedistributesStaticRoutes) {
  Network network;
  auto make = [](const std::string& name, std::uint8_t octet) {
    ir::RouterConfig config;
    config.hostname = name;
    ir::Interface link;
    link.name = "e0";
    link.address = Ipv4Address(10, 200, 0, octet);
    link.prefix_length = 24;
    link.ospf_enabled = true;
    link.ospf_area = 0;
    link.ospf_cost = 5;
    config.interfaces.push_back(link);
    return config;
  };
  ir::RouterConfig a = make("a", 1);
  // a redistributes its static route into OSPF through a policy that
  // matches protocol static and sets a tag.
  ir::StaticRoute external;
  external.prefix = Prefix(Ipv4Address(203, 0, 113, 0), 24);
  external.next_hop = Ipv4Address(10, 200, 0, 254);
  a.static_routes.push_back(external);
  ir::RouteMap redist;
  redist.name = "REDIST";
  ir::RouteMapClause clause;
  clause.action = ir::ClauseAction::kPermit;
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kProtocol;
  match.protocol = ir::Protocol::kStatic;
  clause.matches.push_back(match);
  ir::RouteMapSet set_tag;
  set_tag.kind = ir::RouteMapSet::Kind::kTag;
  set_tag.value = 777;
  clause.sets.push_back(set_tag);
  redist.clauses.push_back(clause);
  redist.default_action = ir::ClauseAction::kDeny;
  a.route_maps["REDIST"] = redist;
  a.ospf.emplace();
  a.ospf->redistributions.push_back({ir::Protocol::kStatic, "REDIST", {}});

  network.AddRouter(a);
  network.AddRouter(make("b", 2));
  network.AddAdjacency("a", "e0", "b", "e0");

  RoutingSolution solution = Solve(network);
  Prefix ext(Ipv4Address(203, 0, 113, 0), 24);
  ASSERT_TRUE(solution.ribs["b"].contains(ext));
  const Route& learned = solution.ribs["b"][ext];
  EXPECT_EQ(learned.protocol, ir::Protocol::kOspf);
  EXPECT_EQ(learned.tag, 777u);
  EXPECT_EQ(learned.metric, 5u);

  // Without the redistribution, b must not learn the external prefix.
  ir::RouterConfig no_redist = *network.FindRouter("a");
  no_redist.ospf->redistributions.clear();
  network.ReplaceRouter("a", no_redist);
  RoutingSolution without = Solve(network);
  EXPECT_FALSE(without.ribs["b"].contains(ext));
}

TEST(SolveTest, RedistributionPolicyFilters) {
  // A redistribution policy that rejects the prefix keeps it out of OSPF
  // even with the redistribution statement present.
  Network network;
  ir::RouterConfig a;
  a.hostname = "a";
  ir::Interface link;
  link.name = "e0";
  link.address = Ipv4Address(10, 200, 0, 1);
  link.prefix_length = 24;
  link.ospf_enabled = true;
  link.ospf_area = 0;
  a.interfaces.push_back(link);
  ir::StaticRoute external;
  external.prefix = Prefix(Ipv4Address(203, 0, 113, 0), 24);
  a.static_routes.push_back(external);
  ir::RouteMap deny_all;
  deny_all.name = "NONE";
  deny_all.default_action = ir::ClauseAction::kDeny;
  a.route_maps["NONE"] = deny_all;
  a.ospf.emplace();
  a.ospf->redistributions.push_back({ir::Protocol::kStatic, "NONE", {}});
  network.AddRouter(a);

  ir::RouterConfig b;
  b.hostname = "b";
  ir::Interface blink = link;
  blink.address = Ipv4Address(10, 200, 0, 2);
  b.interfaces.push_back(blink);
  network.AddRouter(b);
  network.AddAdjacency("a", "e0", "b", "e0");

  RoutingSolution solution = Solve(network);
  EXPECT_FALSE(
      solution.ribs["b"].contains(Prefix(Ipv4Address(203, 0, 113, 0), 24)));
}

}  // namespace
}  // namespace campion::sim
