#include "ir/config.h"

#include <gtest/gtest.h>

namespace campion::ir {
namespace {

using util::Community;
using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

RouterConfig MakeConfig() {
  RouterConfig config;
  config.hostname = "r";

  PrefixList list;
  list.name = "PL";
  list.entries.push_back(
      {LineAction::kPermit,
       PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32), {}});
  list.entries.push_back(
      {LineAction::kDeny, PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32),
       {}});  // Duplicate range, different action.
  config.prefix_lists["PL"] = list;

  StaticRoute route;
  route.prefix = *Prefix::Parse("10.7.0.0/16");
  config.static_routes.push_back(route);

  BgpProcess bgp;
  bgp.asn = 65000;
  bgp.networks.push_back(*Prefix::Parse("10.8.0.0/16"));
  config.bgp = std::move(bgp);

  CommunityList comm;
  comm.name = "CL";
  comm.entries.push_back(
      {LineAction::kPermit, {Community(1, 1), Community(2, 2)}, {}});
  config.community_lists["CL"] = comm;

  RouteMap map;
  map.name = "RM";
  RouteMapClause clause;
  RouteMapSet set;
  set.kind = RouteMapSet::Kind::kCommunityAdd;
  set.communities = {Community(3, 3)};
  clause.sets.push_back(set);
  map.clauses.push_back(clause);
  config.route_maps["RM"] = map;
  return config;
}

TEST(RouterConfigTest, AllPrefixRangesDeduplicatesAndCoversSources) {
  RouterConfig config = MakeConfig();
  auto ranges = config.AllPrefixRanges();
  // PL's duplicate range appears once; static route and BGP network appear
  // as exact ranges.
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_TRUE(std::find(ranges.begin(), ranges.end(),
                        PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32)) !=
              ranges.end());
  EXPECT_TRUE(std::find(ranges.begin(), ranges.end(),
                        PrefixRange(*Prefix::Parse("10.7.0.0/16"))) !=
              ranges.end());
  EXPECT_TRUE(std::find(ranges.begin(), ranges.end(),
                        PrefixRange(*Prefix::Parse("10.8.0.0/16"))) !=
              ranges.end());
}

TEST(RouterConfigTest, AllCommunitiesCoversListsAndSets) {
  RouterConfig config = MakeConfig();
  auto communities = config.AllCommunities();
  ASSERT_EQ(communities.size(), 3u);
  EXPECT_EQ(communities[0], Community(1, 1));
  EXPECT_EQ(communities[1], Community(2, 2));
  EXPECT_EQ(communities[2], Community(3, 3));
}

TEST(RouterConfigTest, FindersReturnNullForMissing) {
  RouterConfig config = MakeConfig();
  EXPECT_NE(config.FindPrefixList("PL"), nullptr);
  EXPECT_EQ(config.FindPrefixList("NOPE"), nullptr);
  EXPECT_NE(config.FindCommunityList("CL"), nullptr);
  EXPECT_EQ(config.FindCommunityList("NOPE"), nullptr);
  EXPECT_NE(config.FindRouteMap("RM"), nullptr);
  EXPECT_EQ(config.FindRouteMap("NOPE"), nullptr);
  EXPECT_EQ(config.FindAcl("NOPE"), nullptr);
  EXPECT_EQ(config.FindAsPathList("NOPE"), nullptr);
  EXPECT_EQ(config.FindInterface("NOPE"), nullptr);
  EXPECT_EQ(config.FindBgpNeighbor(Ipv4Address(1, 2, 3, 4)), nullptr);
}

TEST(InterfaceTest, ConnectedSubnetDerivation) {
  Interface iface;
  EXPECT_FALSE(iface.ConnectedSubnet().has_value());
  iface.address = Ipv4Address(10, 0, 1, 7);
  iface.prefix_length = 24;
  EXPECT_EQ(iface.ConnectedSubnet(), *Prefix::Parse("10.0.1.0/24"));
}

TEST(AdminDistancesTest, ForProtocol) {
  AdminDistances distances;
  EXPECT_EQ(distances.For(Protocol::kConnected), 0);
  EXPECT_EQ(distances.For(Protocol::kStatic), 1);
  EXPECT_EQ(distances.For(Protocol::kBgp), 20);
  EXPECT_EQ(distances.For(Protocol::kBgp, /*ibgp_route=*/true), 200);
  EXPECT_EQ(distances.For(Protocol::kOspf), 110);
}

TEST(AsPathListTest, SignatureIsOrderSensitive) {
  AsPathList a;
  a.entries.push_back({LineAction::kPermit, "^1_", {}});
  a.entries.push_back({LineAction::kDeny, ".*", {}});
  AsPathList b;
  b.entries.push_back({LineAction::kDeny, ".*", {}});
  b.entries.push_back({LineAction::kPermit, "^1_", {}});
  EXPECT_NE(a.Signature(), b.Signature());
  AsPathList c = a;
  EXPECT_EQ(a.Signature(), c.Signature());
}

TEST(BgpNeighborTest, IbgpDetection) {
  BgpNeighbor neighbor;
  neighbor.remote_as = 65000;
  EXPECT_TRUE(neighbor.IsIbgp(65000));
  EXPECT_FALSE(neighbor.IsIbgp(65001));
}

}  // namespace
}  // namespace campion::ir
