// Cross-validation of Campion's symbolic analysis against the concrete
// route evaluator: on randomly generated route-map pairs,
//
//   1. if SemanticDiff reports NO differences, the two maps must agree on
//      every sampled concrete route (soundness of "equivalent");
//   2. every difference SemanticDiff reports must contain a concrete
//      witness on which the maps actually disagree (no false differences
//      at the component level);
//   3. whenever the concrete evaluators disagree on a sampled route, that
//      route must lie inside some reported difference set (completeness).
//
// This ties together the BDD encoding (src/encode), the path-class
// construction (src/core) and the concrete semantics (src/sim) — three
// independent implementations of the same route-map meaning.

#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "core/semantic_diff.h"
#include "encode/route_adv.h"
#include "gen/route_map_gen.h"
#include "sim/route.h"

namespace campion {
namespace {

// The observable behavior of a route map on a concrete route.
struct Verdict {
  bool accepted = false;
  std::uint32_t local_pref = 0;
  std::uint32_t metric = 0;
  std::set<util::Community> communities;

  friend bool operator==(const Verdict&, const Verdict&) = default;
};

Verdict Evaluate(const ir::RouterConfig& config, const std::string& map_name,
                 const gen::RandomRoute& input) {
  sim::Route route;
  route.prefix = input.prefix;
  route.communities.insert(input.communities.begin(),
                           input.communities.end());
  route.tag = input.tag;
  route.metric = input.metric;
  route.protocol = ir::Protocol::kBgp;
  route.local_pref = 100;
  auto result =
      sim::EvalRouteMap(config, *config.FindRouteMap(map_name), route);
  Verdict verdict;
  if (!result) return verdict;
  verdict.accepted = true;
  verdict.local_pref = result->local_pref;
  verdict.metric = result->metric;
  verdict.communities = result->communities;
  return verdict;
}

// The exact symbolic predicate of a concrete route.
bdd::BddRef ConcretePredicate(encode::RouteAdvLayout& layout,
                              const gen::RandomRoute& route) {
  bdd::BddManager& mgr = layout.manager();
  bdd::BddRef f = layout.MatchExactPrefix(route.prefix);
  for (const auto& community : layout.communities()) {
    bool carried = false;
    for (const auto& c : route.communities) {
      if (c == community) carried = true;
    }
    bdd::BddRef has = layout.HasCommunity(community);
    f = mgr.And(f, carried ? has : mgr.Not(has));
  }
  f = mgr.And(f, layout.TagEquals(route.tag));
  f = mgr.And(f, layout.MetricEquals(route.metric));
  f = mgr.And(f, layout.ProtocolIs(ir::Protocol::kBgp));
  return f;
}

class CrossValidationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossValidationTest, SymbolicAndConcreteSemanticsAgree) {
  gen::RouteMapGenOptions options;
  options.seed = GetParam();
  options.clauses = 8;
  // Half the seeds get injected differences, half stay equivalent.
  options.differences = GetParam() % 2 == 0 ? 2 : 0;
  gen::GeneratedRouteMapPair pair = gen::GenerateRouteMapPair(options);

  bdd::BddManager mgr;
  std::vector<util::Community> communities = pair.config1.AllCommunities();
  auto more = pair.config2.AllCommunities();
  communities.insert(communities.end(), more.begin(), more.end());
  encode::RouteAdvLayout layout(mgr, std::move(communities));

  auto diffs = core::SemanticDiffRouteMaps(
      layout, pair.config1, *pair.config1.FindRouteMap(pair.map_name),
      pair.config2, *pair.config2.FindRouteMap(pair.map_name));

  // (2) every reported difference has a concrete witness that disagrees.
  for (const auto& diff : diffs) {
    auto cube = mgr.AnySat(diff.input_set);
    ASSERT_TRUE(cube.has_value());
    encode::RouteAdvExample example = layout.Decode(*cube);
    gen::RandomRoute witness;
    witness.prefix = example.prefix.V4();
    witness.communities = example.communities;
    witness.tag = example.tag;
    witness.metric = example.metric;
    Verdict v1 = Evaluate(pair.config1, pair.map_name, witness);
    Verdict v2 = Evaluate(pair.config2, pair.map_name, witness);
    EXPECT_NE(v1, v2) << "reported difference has no concrete witness: "
                      << example.ToString() << "\nactions: "
                      << diff.action1.ToString() << " vs "
                      << diff.action2.ToString();
  }

  // (1) + (3): sample concrete routes; disagreement <=> inside some
  // reported difference set.
  bdd::BddRef union_of_diffs = mgr.False();
  for (const auto& diff : diffs) {
    union_of_diffs = mgr.Or(union_of_diffs, diff.input_set);
  }
  for (const auto& route :
       gen::SampleRoutes(pair, 60, GetParam() * 7919 + 1)) {
    Verdict v1 = Evaluate(pair.config1, pair.map_name, route);
    Verdict v2 = Evaluate(pair.config2, pair.map_name, route);
    bool symbolically_different =
        mgr.Intersects(ConcretePredicate(layout, route), union_of_diffs);
    EXPECT_EQ(v1 != v2, symbolically_different)
        << "prefix " << route.prefix.ToString() << " tag " << route.tag
        << " metric " << route.metric << " communities "
        << route.communities.size() << (v1 != v2 ? " (concrete differs)"
                                                 : " (concrete agrees)");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidationTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace campion
