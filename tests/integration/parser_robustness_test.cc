// Robustness: both parsers must survive arbitrary, malformed, truncated,
// and adversarial inputs without crashing — collecting diagnostics instead
// — because Campion's first contact with any network is a pile of config
// files of uneven quality.

#include <gtest/gtest.h>

#include <random>

#include "cisco/cisco_parser.h"
#include "juniper/juniper_parser.h"
#include "tests/testdata.h"

namespace campion {
namespace {

TEST(CiscoRobustnessTest, EmptyAndWhitespaceInputs) {
  EXPECT_NO_THROW(cisco::ParseCiscoConfig("", "x"));
  EXPECT_NO_THROW(cisco::ParseCiscoConfig("\n\n\n", "x"));
  EXPECT_NO_THROW(cisco::ParseCiscoConfig("   \n\t\n", "x"));
  EXPECT_NO_THROW(cisco::ParseCiscoConfig("!\n!\n!", "x"));
}

TEST(CiscoRobustnessTest, TruncatedDirectives) {
  for (const char* text :
       {"ip", "ip route", "ip route 10.0.0.0", "ip prefix-list",
        "route-map", "route-map X", "route-map X permit", "router",
        "router bgp", "interface", "neighbor", "access-list 101",
        "ip community-list standard", "ip as-path access-list 1"}) {
    EXPECT_NO_THROW(cisco::ParseCiscoConfig(text, "x")) << text;
  }
}

TEST(CiscoRobustnessTest, GarbageValuesDiagnosed) {
  auto result = cisco::ParseCiscoConfig(
      "ip route 999.0.0.1 255.0.0.0 10.0.0.1\n"
      "ip prefix-list P permit 10.0.0.0/99\n"
      "ip community-list standard C permit 99999999:1\n",
      "x");
  EXPECT_EQ(result.diagnostics.size(), 3u);
  EXPECT_TRUE(result.config.static_routes.empty());
  EXPECT_TRUE(result.config.prefix_lists.empty());
}

TEST(CiscoRobustnessTest, RandomLineSoup) {
  std::mt19937_64 rng(42);
  const char* words[] = {"ip",    "route",   "permit", "deny", "10.0.0.1",
                         "match", "set",     "!",      "{",    "}",
                         "bgp",   "neighbor", "999",    "x/y",  "le"};
  for (int trial = 0; trial < 50; ++trial) {
    std::string soup;
    for (int line = 0; line < 30; ++line) {
      int length = 1 + static_cast<int>(rng() % 6);
      for (int w = 0; w < length; ++w) {
        soup += words[rng() % std::size(words)];
        soup += " ";
      }
      soup += "\n";
    }
    EXPECT_NO_THROW(cisco::ParseCiscoConfig(soup, "soup"));
  }
}

TEST(JuniperRobustnessTest, EmptyAndDegenerateInputs) {
  EXPECT_NO_THROW(juniper::ParseJuniperConfig("", "x"));
  EXPECT_NO_THROW(juniper::ParseJuniperConfig("{}", "x"));
  EXPECT_NO_THROW(juniper::ParseJuniperConfig(";;;;", "x"));
  EXPECT_NO_THROW(juniper::ParseJuniperConfig("}}}}", "x"));
  EXPECT_NO_THROW(juniper::ParseJuniperConfig("{{{{", "x"));
}

TEST(JuniperRobustnessTest, UnbalancedBracesAndStrings) {
  EXPECT_NO_THROW(juniper::ParseJuniperConfig(
      "system { host-name foo;\n", "x"));  // Missing closing brace.
  EXPECT_NO_THROW(juniper::ParseJuniperConfig(
      "system { host-name \"unterminated\n}", "x"));
  EXPECT_NO_THROW(juniper::ParseJuniperConfig(
      "policy-options { policy-statement P { term t { from {", "x"));
}

TEST(JuniperRobustnessTest, CommentsEverywhere) {
  auto result = juniper::ParseJuniperConfig(
      "/* header */ system { # inline\n host-name /* mid */ ok; }\n"
      "/* unterminated",
      "x");
  EXPECT_EQ(result.config.hostname, "ok");
}

TEST(JuniperRobustnessTest, RandomTokenSoup) {
  std::mt19937_64 rng(77);
  const char* tokens[] = {"{", "}", ";", "term",   "from", "then",
                          "accept", "reject", "policy-statement",
                          "10.0.0.0/8", "[", "]", "\"s\"", "#c\n"};
  for (int trial = 0; trial < 50; ++trial) {
    std::string soup;
    for (int i = 0; i < 120; ++i) {
      soup += tokens[rng() % std::size(tokens)];
      soup += " ";
    }
    EXPECT_NO_THROW(juniper::ParseJuniperConfig(soup, "soup"));
  }
}

TEST(RobustnessTest, CrossParsing) {
  // Each parser fed the other vendor's config: diagnostics, not crashes.
  EXPECT_NO_THROW(cisco::ParseCiscoConfig(testing::kFig1Juniper, "x"));
  EXPECT_NO_THROW(juniper::ParseJuniperConfig(testing::kFig1Cisco, "x"));
}

TEST(RobustnessTest, VeryLongSingleLine) {
  std::string line = "ip prefix-list P permit 10.0.0.0/8";
  for (int i = 0; i < 5000; ++i) line += " le";
  line += "\n";
  EXPECT_NO_THROW(cisco::ParseCiscoConfig(line, "x"));
}

TEST(RobustnessTest, DeeplyNestedJuniper) {
  std::string text;
  for (int i = 0; i < 2000; ++i) text += "a {\n";
  for (int i = 0; i < 2000; ++i) text += "}\n";
  EXPECT_NO_THROW(juniper::ParseJuniperConfig(text, "x"));
}

}  // namespace
}  // namespace campion
