// Round-trip property: unparsing a configuration to native vendor text and
// re-parsing it must produce a behaviorally equivalent configuration —
// checked with Campion itself (ConfigDiff finds nothing). This exercises
// parser and unparser jointly on generated and scenario configurations.

#include <gtest/gtest.h>

#include "cisco/cisco_parser.h"
#include "cisco/cisco_unparser.h"
#include "core/config_diff.h"
#include "gen/acl_gen.h"
#include "gen/scenarios.h"
#include "juniper/juniper_parser.h"
#include "juniper/juniper_unparser.h"
#include "tests/testdata.h"

namespace campion {
namespace {

void ExpectEquivalent(const ir::RouterConfig& original,
                      const ir::RouterConfig& reparsed,
                      const std::string& label) {
  core::DiffReport report = core::ConfigDiff(original, reparsed);
  for (const auto& entry : report.entries) {
    EXPECT_EQ(entry.kind, core::DifferenceEntry::Kind::kWarning)
        << label << ": " << entry.title << "\n"
        << entry.rendered;
  }
}

TEST(CiscoRoundTripTest, Fig1Config) {
  auto original = testing::ParseCiscoOrDie(testing::kFig1Cisco);
  std::string text = cisco::UnparseCiscoConfig(original);
  auto result = cisco::ParseCiscoConfig(text, "roundtrip.cfg");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.front() << "\n"
      << text;
  ExpectEquivalent(original, result.config, "fig1-cisco");
}

TEST(JuniperRoundTripTest, Fig1Config) {
  auto original = testing::ParseJuniperOrDie(testing::kFig1Juniper);
  std::string text = juniper::UnparseJuniperConfig(original);
  auto result = juniper::ParseJuniperConfig(text, "roundtrip.conf");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.front() << "\n"
      << text;
  ExpectEquivalent(original, result.config, "fig1-juniper");
}

// Cross-vendor round trip of a discontiguous wildcard: the JunOS unparser
// expands it into an OR of source-address prefixes, and re-parsing that
// must be behaviorally identical to the original Cisco ACL (previously the
// match was silently dropped, widening the term to match-any).
TEST(JuniperRoundTripTest, DiscontiguousWildcardAclSurvives) {
  auto original = testing::ParseCiscoOrDie(
      "hostname dw\n"
      "ip access-list extended DW\n"
      " permit ip 10.1.0.5 0.0.255.0 any\n"
      " deny ip 10.2.0.0 0.0.2.255 any\n"
      " permit ip any any\n");
  std::string text = juniper::UnparseJuniperConfig(original);
  auto result = juniper::ParseJuniperConfig(text, "dw.conf");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.front() << "\n"
      << text;
  EXPECT_TRUE(
      core::DiffAclPair(original, result.config, "DW").empty())
      << text;
}

TEST(CiscoRoundTripTest, UniversityCoreConfig) {
  auto scenario = gen::BuildUniversityScenario();
  std::string text = cisco::UnparseCiscoConfig(scenario.core.config1);
  auto result = cisco::ParseCiscoConfig(text, "core.cfg");
  EXPECT_TRUE(result.diagnostics.empty()) << result.diagnostics.front();
  ExpectEquivalent(scenario.core.config1, result.config, "university-core");
}

TEST(JuniperRoundTripTest, UniversityCoreConfig) {
  auto scenario = gen::BuildUniversityScenario();
  std::string text = juniper::UnparseJuniperConfig(scenario.core.config2);
  auto result = juniper::ParseJuniperConfig(text, "core.conf");
  EXPECT_TRUE(result.diagnostics.empty()) << result.diagnostics.front();
  ExpectEquivalent(scenario.core.config2, result.config, "university-core-j");
}

TEST(CiscoRoundTripTest, DataCenterTorConfig) {
  auto scenario = gen::BuildDataCenterScenario();
  const auto& config = scenario.redundant_pairs[7].config1;  // Clean pair.
  std::string text = cisco::UnparseCiscoConfig(config);
  auto result = cisco::ParseCiscoConfig(text, "tor.cfg");
  EXPECT_TRUE(result.diagnostics.empty()) << result.diagnostics.front();
  ExpectEquivalent(config, result.config, "tor-cisco");
}

TEST(JuniperRoundTripTest, DataCenterTorConfig) {
  auto scenario = gen::BuildDataCenterScenario();
  const auto& config = scenario.redundant_pairs[7].config2;
  std::string text = juniper::UnparseJuniperConfig(config);
  auto result = juniper::ParseJuniperConfig(text, "tor.conf");
  EXPECT_TRUE(result.diagnostics.empty()) << result.diagnostics.front();
  ExpectEquivalent(config, result.config, "tor-juniper");
}

// Parameterized round trips of generated ACLs across both vendors.
class AclRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AclRoundTripTest, CiscoAclRoundTrips) {
  gen::AclGenOptions options;
  options.rules = 60;
  options.seed = GetParam();
  options.differences = 0;
  auto pair = gen::GenerateAclPair(options);
  auto config =
      gen::WrapAclInConfig(pair.acl1, "gw", ir::Vendor::kCisco);
  std::string text = cisco::UnparseCiscoConfig(config);
  auto result = cisco::ParseCiscoConfig(text, "acl.cfg");
  EXPECT_TRUE(result.diagnostics.empty()) << result.diagnostics.front();
  auto diffs = core::DiffAclPair(config, result.config, pair.acl1.name);
  EXPECT_TRUE(diffs.empty()) << diffs.front().table;
}

TEST_P(AclRoundTripTest, JuniperAclRoundTrips) {
  gen::AclGenOptions options;
  options.rules = 60;
  options.seed = GetParam();
  options.differences = 0;
  auto pair = gen::GenerateAclPair(options);
  auto config =
      gen::WrapAclInConfig(pair.acl1, "gw", ir::Vendor::kJuniper);
  std::string text = juniper::UnparseJuniperConfig(config);
  auto result = juniper::ParseJuniperConfig(text, "acl.conf");
  EXPECT_TRUE(result.diagnostics.empty()) << result.diagnostics.front();
  auto diffs = core::DiffAclPair(config, result.config, pair.acl1.name);
  EXPECT_TRUE(diffs.empty()) << diffs.front().table;
}

TEST_P(AclRoundTripTest, CrossVendorEquivalentAclsAreEquivalent) {
  // The same ACL emitted as Cisco and as Juniper text parses back into
  // behaviorally equivalent filters.
  gen::AclGenOptions options;
  options.rules = 40;
  options.seed = GetParam();
  options.differences = 0;
  auto pair = gen::GenerateAclPair(options);
  auto cisco_config =
      gen::WrapAclInConfig(pair.acl1, "gw-c", ir::Vendor::kCisco);
  auto juniper_config =
      gen::WrapAclInConfig(pair.acl1, "gw-j", ir::Vendor::kJuniper);
  auto cisco_parsed = cisco::ParseCiscoConfig(
      cisco::UnparseCiscoConfig(cisco_config), "a.cfg");
  auto juniper_parsed = juniper::ParseJuniperConfig(
      juniper::UnparseJuniperConfig(juniper_config), "a.conf");
  auto diffs = core::DiffAclPair(cisco_parsed.config, juniper_parsed.config,
                                 pair.acl1.name);
  EXPECT_TRUE(diffs.empty()) << diffs.front().table;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AclRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace campion
