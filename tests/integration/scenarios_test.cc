// Validates the synthesized evaluation networks against the paper's
// ground truth: the data-center scenarios must surface exactly the Table 6
// difference counts, and the university scenario the Table 8 per-policy
// counts.

#include <gtest/gtest.h>

#include "core/config_diff.h"
#include "core/structural_diff.h"
#include "gen/scenarios.h"

namespace campion {
namespace {

using core::DifferenceEntry;

TEST(DataCenterScenarioTest, Scenario1MatchesTable6) {
  gen::DataCenterScenario scenario = gen::BuildDataCenterScenario();
  int bgp_semantic = 0;
  int static_structural = 0;
  int pairs_with_diffs = 0;
  for (const auto& pair : scenario.redundant_pairs) {
    core::DiffReport report = core::ConfigDiff(pair.config1, pair.config2);
    int semantic =
        report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic);
    int structural = 0;
    for (const auto& entry : report.entries) {
      if (entry.kind == DifferenceEntry::Kind::kStructural &&
          entry.title.find("Static Route") != std::string::npos) {
        ++structural;
      }
    }
    bgp_semantic += semantic;
    static_structural += structural;
    if (semantic + structural > 0) ++pairs_with_diffs;
    // Pairs with no injected bug must be clean.
    if (pair.injected.empty()) {
      EXPECT_TRUE(report.Equivalent())
          << pair.label << "\n"
          << report.Render();
    }
  }
  // Table 6, Scenario 1: 5 semantic BGP differences, 2 structural static
  // route differences, across 7 distinct buggy pairs.
  EXPECT_EQ(bgp_semantic, scenario.scenario1_bgp_bugs);
  EXPECT_EQ(static_structural, scenario.scenario1_static_bugs);
  EXPECT_EQ(pairs_with_diffs, 7);
}

TEST(DataCenterScenarioTest, Scenario2MatchesTable6) {
  gen::DataCenterScenario scenario = gen::BuildDataCenterScenario();
  ASSERT_EQ(scenario.replacements.size(), 30u);
  int bgp_semantic = 0;
  int buggy_pairs = 0;
  for (const auto& pair : scenario.replacements) {
    core::DiffReport report = core::ConfigDiff(pair.config1, pair.config2);
    int semantic =
        report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic);
    bgp_semantic += semantic;
    if (semantic > 0) ++buggy_pairs;
    if (pair.injected.empty()) {
      EXPECT_TRUE(report.Equivalent())
          << pair.label << "\n"
          << report.Render();
    } else {
      EXPECT_GT(semantic, 0) << pair.label;
    }
  }
  // Table 6, Scenario 2: 4 semantic BGP differences across 4 replacements.
  EXPECT_EQ(bgp_semantic, scenario.scenario2_bgp_bugs);
  EXPECT_EQ(buggy_pairs, 4);
}

TEST(DataCenterScenarioTest, Scenario2ReflectorBugIsDetected) {
  gen::DataCenterScenario scenario = gen::BuildDataCenterScenario();
  const gen::RouterPair& reflector = scenario.replacements[12];
  ASSERT_FALSE(reflector.injected.empty());
  core::DiffReport report =
      core::ConfigDiff(reflector.config1, reflector.config2);
  ASSERT_EQ(report.CountOf(DifferenceEntry::Kind::kRouteMapSemantic), 1);
  // The difference is the local-preference mismatch on the reflector's
  // export policy to its clients.
  const DifferenceEntry* semantic = nullptr;
  for (const auto& entry : report.entries) {
    if (entry.kind == DifferenceEntry::Kind::kRouteMapSemantic) {
      semantic = &entry;
    }
  }
  ASSERT_NE(semantic, nullptr);
  EXPECT_NE(semantic->detail.action1.find("SET LOCAL PREF 200"),
            std::string::npos);
  EXPECT_NE(semantic->detail.action2.find("SET LOCAL PREF 100"),
            std::string::npos);
}

TEST(DataCenterScenarioTest, Scenario3MatchesTable6) {
  gen::DataCenterScenario scenario = gen::BuildDataCenterScenario();
  int acl_semantic_pairs = 0;
  for (const auto& pair : scenario.gateway_pairs) {
    core::DiffReport report = core::ConfigDiff(pair.config1, pair.config2);
    int semantic = report.CountOf(DifferenceEntry::Kind::kAclSemantic);
    if (pair.injected.empty()) {
      EXPECT_EQ(semantic, 0) << pair.label << "\n" << report.Render();
    } else {
      EXPECT_GT(semantic, 0) << pair.label;
      ++acl_semantic_pairs;
    }
  }
  // Table 6, Scenario 3: 3 ACL differences (one per gateway pair bugged).
  EXPECT_EQ(acl_semantic_pairs, scenario.scenario3_acl_bugs);
}

TEST(UniversityScenarioTest, RouteMapCountsMatchTable8a) {
  gen::UniversityScenario scenario = gen::BuildUniversityScenario();

  // Core routers.
  auto export1 =
      core::DiffRouteMapPair(scenario.core.config1, "EXPORT-1",
                             scenario.core.config2, "EXPORT-1");
  EXPECT_EQ(export1.size(), 5u);  // Table 8(a): Export 1 -> 5.
  auto export2 =
      core::DiffRouteMapPair(scenario.core.config1, "EXPORT-2",
                             scenario.core.config2, "EXPORT-2");
  EXPECT_EQ(export2.size(), 1u);  // Export 2 -> 1.
  auto import =
      core::DiffRouteMapPair(scenario.core.config1, "IMPORT-CORE",
                             scenario.core.config2, "IMPORT-CORE");
  EXPECT_EQ(import.size(), 0u);  // Import -> 0.

  // Border routers.
  auto export3 =
      core::DiffRouteMapPair(scenario.border.config1, "EXPORT-3",
                             scenario.border.config2, "EXPORT-3");
  EXPECT_EQ(export3.size(), 1u);
  auto export4 =
      core::DiffRouteMapPair(scenario.border.config1, "EXPORT-4",
                             scenario.border.config2, "EXPORT-4");
  EXPECT_EQ(export4.size(), 1u);
  auto export5 =
      core::DiffRouteMapPair(scenario.border.config1, "EXPORT-5",
                             scenario.border.config2, "EXPORT-5");
  EXPECT_EQ(export5.size(), 2u);  // Export 5 -> 2 raw outputs.
}

TEST(UniversityScenarioTest, StructuralCountsMatchTable8b) {
  gen::UniversityScenario scenario = gen::BuildUniversityScenario();

  auto statics =
      core::DiffStaticRoutes(scenario.core.config1, scenario.core.config2);
  // Two classes: the shared prefix with differing next hops (1 diff) and
  // the two Cisco-only workaround routes (2 presence diffs).
  int next_hop_diffs = 0;
  int presence_diffs = 0;
  for (const auto& diff : statics) {
    if (diff.field == "next hop") ++next_hop_diffs;
    if (diff.field == "presence") ++presence_diffs;
  }
  EXPECT_EQ(next_hop_diffs, 1);
  EXPECT_EQ(presence_diffs, 2);

  auto bgp = core::DiffBgpProperties(scenario.core.config1,
                                     scenario.core.config2);
  int send_community_diffs = 0;
  for (const auto& diff : bgp) {
    if (diff.field == "send-community") ++send_community_diffs;
  }
  // One class of error: the two Cisco iBGP neighbors missing
  // send-community.
  EXPECT_EQ(send_community_diffs, 2);
}

TEST(UniversityScenarioTest, Export1DifferencesIncludeFallThrough) {
  gen::UniversityScenario scenario = gen::BuildUniversityScenario();
  auto diffs = core::DiffRouteMapPair(scenario.core.config1, "EXPORT-1",
                                      scenario.core.config2, "EXPORT-1");
  bool found_fall_through = false;
  for (const auto& diff : diffs) {
    if (diff.text1.find("fall-through") != std::string::npos ||
        diff.text2.find("fall-through") != std::string::npos) {
      found_fall_through = true;
    }
  }
  EXPECT_TRUE(found_fall_through)
      << "expected a difference caused by differing default actions";
}

}  // namespace
}  // namespace campion
