// Cross-validation of the symbolic ACL analysis against a directly-written
// concrete packet evaluator: on random generated ACL pairs, a sampled
// packet is treated differently by the two filters exactly when it lies in
// some difference set reported by SemanticDiffAcls.

#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.h"
#include "core/semantic_diff.h"
#include "encode/packet.h"
#include "gen/acl_gen.h"

namespace campion {
namespace {

// Straight-line reference semantics of an ACL on one packet: first match
// wins, implicit deny. Written independently of the symbolic encoder.
bool Permits(const ir::Acl& acl, const encode::PacketExample& packet) {
  for (const auto& line : acl.lines) {
    if (line.protocol && *line.protocol != packet.protocol) continue;
    if (!line.src.Matches(packet.src_ip)) continue;
    if (!line.dst.Matches(packet.dst_ip)) continue;
    auto port_ok = [](const std::vector<ir::PortRange>& ranges,
                      std::uint16_t port) {
      if (ranges.empty()) return true;
      for (const auto& range : ranges) {
        if (port >= range.low && port <= range.high) return true;
      }
      return false;
    };
    if (!port_ok(line.src_ports, packet.src_port)) continue;
    if (!port_ok(line.dst_ports, packet.dst_port)) continue;
    if (line.icmp_type && (packet.protocol != ir::kProtoIcmp ||
                           *line.icmp_type != packet.icmp_type)) {
      continue;
    }
    if (line.established && !packet.established) continue;
    return line.action == ir::LineAction::kPermit;
  }
  return false;
}

encode::PacketExample SamplePacket(std::mt19937_64& rng,
                                   const ir::Acl& acl1, const ir::Acl& acl2) {
  auto uniform = [&](std::uint32_t bound) {
    return std::uniform_int_distribution<std::uint32_t>(0, bound - 1)(rng);
  };
  encode::PacketExample packet;
  // Bias samples toward the ACLs' own address constants so boundaries get
  // exercised; occasionally pick a random address.
  auto pick_addr = [&](bool src) {
    const ir::Acl& from = uniform(2) == 0 ? acl1 : acl2;
    if (!from.lines.empty() && uniform(6) != 0) {
      const ir::AclLine& line = from.lines[uniform(
          static_cast<std::uint32_t>(from.lines.size()))];
      const util::IpWildcard& w = src ? line.src : line.dst;
      std::uint32_t base = w.address().bits();
      // Flip a random don't-care-adjacent bit half the time.
      if (uniform(2) == 0) base ^= 1u << uniform(16);
      return util::Ipv4Address(base);
    }
    return util::Ipv4Address(static_cast<std::uint32_t>(rng()));
  };
  packet.src_ip = pick_addr(true);
  packet.dst_ip = pick_addr(false);
  switch (uniform(4)) {
    case 0: packet.protocol = ir::kProtoTcp; break;
    case 1: packet.protocol = ir::kProtoUdp; break;
    case 2: packet.protocol = ir::kProtoIcmp; break;
    default: packet.protocol = static_cast<std::uint8_t>(uniform(256)); break;
  }
  static constexpr std::uint16_t kPorts[] = {22, 53, 80, 179, 443,
                                             1023, 1024, 8080, 65535};
  packet.src_port = kPorts[uniform(std::size(kPorts))];
  packet.dst_port = kPorts[uniform(std::size(kPorts))];
  packet.icmp_type = static_cast<std::uint8_t>(uniform(2) == 0 ? 8 : 0);
  packet.established = uniform(2) == 0;
  return packet;
}

bdd::BddRef ExactPacket(encode::PacketLayout& layout,
                        const encode::PacketExample& packet) {
  bdd::BddManager& mgr = layout.manager();
  bdd::BddRef f = mgr.True();
  f = mgr.And(f, layout.MatchSrc(util::IpWildcard(packet.src_ip)));
  f = mgr.And(f, layout.MatchDst(util::IpWildcard(packet.dst_ip)));
  f = mgr.And(f, layout.ProtocolIs(packet.protocol));
  f = mgr.And(f, layout.SrcPortIn({packet.src_port, packet.src_port}));
  f = mgr.And(f, layout.DstPortIn({packet.dst_port, packet.dst_port}));
  f = mgr.And(f, layout.IcmpTypeIs(packet.icmp_type));
  f = mgr.And(f, packet.established ? layout.Established()
                                    : mgr.Not(layout.Established()));
  return f;
}

class AclCrossValidationTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AclCrossValidationTest, SymbolicDifferencesMatchConcreteSemantics) {
  gen::AclGenOptions options;
  options.rules = 40;
  options.seed = GetParam();
  options.differences = GetParam() % 2 == 0 ? 4 : 0;
  gen::GeneratedAclPair pair = gen::GenerateAclPair(options);

  bdd::BddManager mgr;
  encode::PacketLayout layout(mgr);
  auto diffs = core::SemanticDiffAcls(layout, pair.acl1, pair.acl2);
  bdd::BddRef union_of_diffs = mgr.False();
  for (const auto& diff : diffs) {
    union_of_diffs = mgr.Or(union_of_diffs, diff.input_set);

    // Every reported difference has a concrete witness that disagrees.
    auto cube = mgr.AnySat(diff.input_set);
    ASSERT_TRUE(cube.has_value());
    encode::PacketExample witness = layout.Decode(*cube);
    EXPECT_NE(Permits(pair.acl1, witness), Permits(pair.acl2, witness))
        << witness.ToString();
  }

  std::mt19937_64 rng(GetParam() * 104729 + 3);
  for (int i = 0; i < 80; ++i) {
    encode::PacketExample packet = SamplePacket(rng, pair.acl1, pair.acl2);
    bool concrete_differs =
        Permits(pair.acl1, packet) != Permits(pair.acl2, packet);
    bool symbolic_differs =
        mgr.Intersects(ExactPacket(layout, packet), union_of_diffs);
    EXPECT_EQ(concrete_differs, symbolic_differs) << packet.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AclCrossValidationTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace campion
