// End-to-end reproduction of the paper's §2 example: parsing the Figure 1
// Cisco and Juniper configurations and checking that Campion reports
// exactly the two differences of Table 2 with the right header and text
// localization, plus the static-route structural difference of Table 4.

#include <gtest/gtest.h>

#include "core/config_diff.h"
#include "core/structural_diff.h"
#include "tests/testdata.h"
#include "util/prefix_range.h"

namespace campion {
namespace {

using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

class Fig1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cisco_result = cisco::ParseCiscoConfig(testing::kFig1Cisco, "c.cfg");
    auto juniper_result =
        juniper::ParseJuniperConfig(testing::kFig1Juniper, "j.conf");
    ASSERT_TRUE(cisco_result.diagnostics.empty())
        << cisco_result.diagnostics.front();
    ASSERT_TRUE(juniper_result.diagnostics.empty())
        << juniper_result.diagnostics.front();
    cisco_ = std::move(cisco_result.config);
    juniper_ = std::move(juniper_result.config);
  }

  ir::RouterConfig cisco_;
  ir::RouterConfig juniper_;
};

TEST_F(Fig1Test, ParsersProduceExpectedComponents) {
  EXPECT_EQ(cisco_.hostname, "cisco_router");
  EXPECT_EQ(juniper_.hostname, "juniper_router");
  ASSERT_TRUE(cisco_.FindRouteMap("POL") != nullptr);
  ASSERT_TRUE(juniper_.FindRouteMap("POL") != nullptr);
  EXPECT_EQ(cisco_.FindRouteMap("POL")->clauses.size(), 3u);
  EXPECT_EQ(juniper_.FindRouteMap("POL")->clauses.size(), 3u);

  // Cisco NETS has 16-32 windows; Juniper NETS matches exactly.
  const ir::PrefixList* cisco_nets = cisco_.FindPrefixList("NETS");
  const ir::PrefixList* juniper_nets = juniper_.FindPrefixList("NETS");
  ASSERT_NE(cisco_nets, nullptr);
  ASSERT_NE(juniper_nets, nullptr);
  EXPECT_EQ(cisco_nets->entries[0].range,
            PrefixRange(Prefix(Ipv4Address(10, 9, 0, 0), 16), 16, 32));
  EXPECT_EQ(juniper_nets->entries[0].range,
            PrefixRange(Prefix(Ipv4Address(10, 9, 0, 0), 16), 16, 16));

  // Cisco COMM: two OR entries. Juniper COMM: one AND entry of both.
  const ir::CommunityList* cisco_comm = cisco_.FindCommunityList("COMM");
  const ir::CommunityList* juniper_comm = juniper_.FindCommunityList("COMM");
  ASSERT_NE(cisco_comm, nullptr);
  ASSERT_NE(juniper_comm, nullptr);
  EXPECT_EQ(cisco_comm->entries.size(), 2u);
  EXPECT_EQ(cisco_comm->entries[0].all_of.size(), 1u);
  EXPECT_EQ(juniper_comm->entries.size(), 1u);
  EXPECT_EQ(juniper_comm->entries[0].all_of.size(), 2u);
}

TEST_F(Fig1Test, SemanticDiffFindsExactlyTwoDifferences) {
  auto diffs = core::DiffRouteMapPair(cisco_, "POL", juniper_, "POL");
  ASSERT_EQ(diffs.size(), 2u);
}

TEST_F(Fig1Test, Difference1LocalizesPrefixRanges) {
  auto diffs = core::DiffRouteMapPair(cisco_, "POL", juniper_, "POL");
  ASSERT_EQ(diffs.size(), 2u);

  // Table 2(a): included = the two 16-32 windows, excluded = the exact /16s.
  // Identify it by its reject-vs-accept action pair on the NETS space.
  const core::PresentedDifference* d1 = nullptr;
  for (const auto& d : diffs) {
    if (d.included.size() == 2) d1 = &d;
  }
  ASSERT_NE(d1, nullptr) << "no difference with two included ranges";
  PrefixRange nets1(Prefix(Ipv4Address(10, 9, 0, 0), 16), 16, 32);
  PrefixRange nets2(Prefix(Ipv4Address(10, 100, 0, 0), 16), 16, 32);
  EXPECT_TRUE(std::find(d1->included.begin(), d1->included.end(), nets1) !=
              d1->included.end());
  EXPECT_TRUE(std::find(d1->included.begin(), d1->included.end(), nets2) !=
              d1->included.end());
  PrefixRange exact1(Prefix(Ipv4Address(10, 9, 0, 0), 16), 16, 16);
  PrefixRange exact2(Prefix(Ipv4Address(10, 100, 0, 0), 16), 16, 16);
  EXPECT_TRUE(std::find(d1->excluded.begin(), d1->excluded.end(), exact1) !=
              d1->excluded.end());
  EXPECT_TRUE(std::find(d1->excluded.begin(), d1->excluded.end(), exact2) !=
              d1->excluded.end());

  // Action localization: Cisco rejects, Juniper sets local-pref 30 and
  // accepts.
  EXPECT_EQ(d1->action1, "REJECT");
  EXPECT_NE(d1->action2.find("SET LOCAL PREF 30"), std::string::npos);
  EXPECT_NE(d1->action2.find("ACCEPT"), std::string::npos);

  // Text localization: the Cisco deny 10 clause and the Juniper rule3 term.
  EXPECT_NE(d1->text1.find("route-map POL deny 10"), std::string::npos);
  EXPECT_NE(d1->text1.find("match ip address NETS"), std::string::npos);
  EXPECT_NE(d1->text2.find("rule3"), std::string::npos);
}

TEST_F(Fig1Test, Difference2LocalizesCommunityDifference) {
  auto diffs = core::DiffRouteMapPair(cisco_, "POL", juniper_, "POL");
  ASSERT_EQ(diffs.size(), 2u);

  // Table 2(b): included = the whole space, excluded = the NETS windows,
  // with a community example (a route carrying one of 10:10/10:11 but not
  // both).
  const core::PresentedDifference* d2 = nullptr;
  for (const auto& d : diffs) {
    if (d.included.size() == 1 &&
        d.included[0] == PrefixRange::Universe()) {
      d2 = &d;
    }
  }
  ASSERT_NE(d2, nullptr) << "no difference covering the whole prefix space";
  PrefixRange nets1(Prefix(Ipv4Address(10, 9, 0, 0), 16), 16, 32);
  PrefixRange nets2(Prefix(Ipv4Address(10, 100, 0, 0), 16), 16, 32);
  EXPECT_TRUE(std::find(d2->excluded.begin(), d2->excluded.end(), nets1) !=
              d2->excluded.end());
  EXPECT_TRUE(std::find(d2->excluded.begin(), d2->excluded.end(), nets2) !=
              d2->excluded.end());

  ASSERT_TRUE(d2->example.has_value());
  // Exhaustive community localization (our extension of the paper's
  // single-example output): the difference affects routes carrying exactly
  // one of the two communities, and both conditions are listed.
  EXPECT_NE(d2->example->find("not 10:10, 10:11"), std::string::npos)
      << *d2->example;
  EXPECT_NE(d2->example->find("10:10, not 10:11"), std::string::npos)
      << *d2->example;

  EXPECT_EQ(d2->action1, "REJECT");
  EXPECT_NE(d2->text1.find("route-map POL deny 20"), std::string::npos);
  EXPECT_NE(d2->text2.find("rule3"), std::string::npos);
}

TEST_F(Fig1Test, StaticRouteStructuralDiffMatchesTable4) {
  auto diffs = core::DiffStaticRoutes(cisco_, juniper_);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].component, "Static Route 10.1.1.2/31");
  EXPECT_EQ(diffs[0].field, "presence");
  EXPECT_EQ(diffs[0].value1, "configured");
  EXPECT_EQ(diffs[0].value2, "(absent)");
  EXPECT_NE(diffs[0].span1.text.find("ip route 10.1.1.2 255.255.255.254"),
            std::string::npos);
}

TEST_F(Fig1Test, FullConfigDiffReportsBothSemanticAndStructural) {
  core::DiffReport report = core::ConfigDiff(cisco_, juniper_);
  EXPECT_EQ(report.CountOf(core::DifferenceEntry::Kind::kRouteMapSemantic),
            2);
  EXPECT_GE(report.CountOf(core::DifferenceEntry::Kind::kStructural), 1);
  EXPECT_FALSE(report.Equivalent());
  // The rendered report contains the Table 2 header rows.
  std::string rendered = report.Render();
  EXPECT_NE(rendered.find("Included Prefixes"), std::string::npos);
  EXPECT_NE(rendered.find("Excluded Prefixes"), std::string::npos);
}

TEST_F(Fig1Test, IdenticalConfigsAreEquivalent) {
  core::DiffReport report = core::ConfigDiff(cisco_, cisco_);
  for (const auto& entry : report.entries) {
    EXPECT_EQ(entry.kind, core::DifferenceEntry::Kind::kWarning)
        << entry.title << "\n"
        << entry.rendered;
  }
  auto diffs = core::DiffRouteMapPair(cisco_, "POL", cisco_, "POL");
  EXPECT_TRUE(diffs.empty());
}

}  // namespace
}  // namespace campion
