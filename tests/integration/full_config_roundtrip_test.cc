// Whole-config round-trip property: a randomly generated router config
// unparsed to either vendor's native format and re-parsed must be
// behaviorally equivalent to the original under ConfigDiff. This sweeps
// every IR feature (interfaces, statics, all list kinds, route maps with
// fall-through, ACLs, OSPF, BGP with reflectors) through both frontends.

#include <gtest/gtest.h>

#include "cisco/cisco_parser.h"
#include "cisco/cisco_unparser.h"
#include "core/config_diff.h"
#include "gen/router_gen.h"
#include "juniper/juniper_parser.h"
#include "juniper/juniper_unparser.h"

namespace campion {
namespace {

void ExpectEquivalent(const ir::RouterConfig& original,
                      const ir::RouterConfig& reparsed,
                      const std::string& text) {
  core::DiffReport report = core::ConfigDiff(original, reparsed);
  for (const auto& entry : report.entries) {
    ASSERT_EQ(entry.kind, core::DifferenceEntry::Kind::kWarning)
        << entry.title << "\n"
        << entry.rendered << "\n--- emitted config ---\n"
        << text;
  }
}

class FullConfigRoundTripTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FullConfigRoundTripTest, CiscoRoundTrip) {
  gen::RouterGenOptions options;
  options.seed = GetParam();
  ir::RouterConfig config = gen::GenerateRouterConfig(options);
  std::string text = cisco::UnparseCiscoConfig(config);
  auto result = cisco::ParseCiscoConfig(text, "gen.cfg");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.front() << "\n"
      << text;
  ExpectEquivalent(config, result.config, text);
}

TEST_P(FullConfigRoundTripTest, JuniperRoundTrip) {
  gen::RouterGenOptions options;
  options.seed = GetParam();
  ir::RouterConfig config = gen::GenerateRouterConfig(options);
  std::string text = juniper::UnparseJuniperConfig(config);
  auto result = juniper::ParseJuniperConfig(text, "gen.conf");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.front() << "\n"
      << text;
  ExpectEquivalent(config, result.config, text);
}

TEST_P(FullConfigRoundTripTest, CrossVendorEquivalence) {
  // The same IR emitted as Cisco and as Juniper parses back to two
  // behaviorally equivalent routers — the correct-translation baseline of
  // the router-replacement scenario.
  gen::RouterGenOptions options;
  options.seed = GetParam();
  ir::RouterConfig config = gen::GenerateRouterConfig(options);
  auto cisco_back = cisco::ParseCiscoConfig(
      cisco::UnparseCiscoConfig(config), "gen.cfg");
  auto juniper_back = juniper::ParseJuniperConfig(
      juniper::UnparseJuniperConfig(config), "gen.conf");
  core::DiffReport report =
      core::ConfigDiff(cisco_back.config, juniper_back.config);
  for (const auto& entry : report.entries) {
    // Vendor-default admin distances for static routes legitimately differ
    // (IOS 1 vs JunOS 5); our unparsers emit explicit values, so even
    // those must align. Everything else must be clean as well.
    ASSERT_EQ(entry.kind, core::DifferenceEntry::Kind::kWarning)
        << entry.title << "\n"
        << entry.rendered;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullConfigRoundTripTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace campion
