// Tests for the feature extensions beyond the Figure 1 subset: AS-path
// list differencing (opaque-regex semantics), bit-precise MED matching,
// and TCP-established ACL matching — each checked end-to-end through the
// parsers and SemanticDiff.

#include <gtest/gtest.h>

#include "cisco/cisco_parser.h"
#include "cisco/cisco_unparser.h"
#include "core/config_diff.h"
#include "core/semantic_diff.h"
#include "juniper/juniper_parser.h"
#include "juniper/juniper_unparser.h"

namespace campion {
namespace {

ir::RouterConfig ParseCisco(const std::string& text) {
  return cisco::ParseCiscoConfig(text, "t.cfg").config;
}

ir::RouterConfig ParseJuniper(const std::string& text) {
  return juniper::ParseJuniperConfig(text, "t.conf").config;
}

// --- AS-path lists ----------------------------------------------------------

TEST(AsPathDiffTest, CiscoParsesAsPathLists) {
  auto config = ParseCisco(
      "ip as-path access-list 10 permit ^65000_\n"
      "ip as-path access-list 10 deny .*\n"
      "route-map RM permit 10\n"
      " match as-path 10\n");
  const ir::AsPathList* list = config.FindAsPathList("10");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->entries.size(), 2u);
  EXPECT_EQ(list->entries[0].regex, "^65000_");
  EXPECT_EQ(list->entries[1].action, ir::LineAction::kDeny);
  const ir::RouteMap* map = config.FindRouteMap("RM");
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->clauses[0].matches[0].kind,
            ir::RouteMapMatch::Kind::kAsPathList);
}

TEST(AsPathDiffTest, JuniperParsesAsPath) {
  auto config = ParseJuniper(R"(
policy-options {
    as-path FROM-PEER "^65000 .*";
    policy-statement POL {
        term t {
            from {
                as-path FROM-PEER;
            }
            then accept;
        }
    }
}
)");
  const ir::AsPathList* list = config.FindAsPathList("FROM-PEER");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->entries[0].regex, "^65000 .*");
}

TEST(AsPathDiffTest, EqualRegexesAreEquivalent) {
  auto make = [](const char* regex) {
    return ParseCisco(std::string("ip as-path access-list 1 permit ") +
                      regex +
                      "\n"
                      "route-map RM permit 10\n"
                      " match as-path 1\n");
  };
  auto a = make("^65000_");
  auto b = make("^65000_");
  auto diffs = core::DiffRouteMapPair(a, "RM", b, "RM");
  EXPECT_TRUE(diffs.empty());
}

TEST(AsPathDiffTest, DifferentRegexesAreDifference) {
  auto make = [](const char* regex) {
    return ParseCisco(std::string("ip as-path access-list 1 permit ") +
                      regex +
                      "\n"
                      "route-map RM permit 10\n"
                      " match as-path 1\n");
  };
  auto a = make("^65000_");
  auto b = make("^65001_");
  auto diffs = core::DiffRouteMapPair(a, "RM", b, "RM");
  // Opaque-atom semantics: differing regexes produce (at least) one
  // potential difference — routes matching one atom but not the other.
  EXPECT_FALSE(diffs.empty());
}

TEST(AsPathDiffTest, CrossVendorEqualRegexesAlign) {
  auto cisco = ParseCisco(
      "ip as-path access-list 1 permit ^65000_\n"
      "route-map POL permit 10\n"
      " match as-path 1\n");
  auto juniper = ParseJuniper(R"(
policy-options {
    as-path P "^65000_";
    policy-statement POL {
        term t {
            from {
                as-path P;
            }
            then accept;
        }
        term end {
            then reject;
        }
    }
}
)");
  auto diffs = core::DiffRouteMapPair(cisco, "POL", juniper, "POL");
  EXPECT_TRUE(diffs.empty());
}

// --- MED / metric -------------------------------------------------------------

TEST(MetricDiffTest, MetricMatchIsBitPrecise) {
  auto make = [](int value) {
    return ParseCisco(
        "route-map RM deny 10\n"
        " match metric " +
        std::to_string(value) +
        "\n"
        "route-map RM permit 20\n");
  };
  auto a = make(50);
  auto same = make(50);
  EXPECT_TRUE(core::DiffRouteMapPair(a, "RM", same, "RM").empty());

  auto b = make(60);
  auto diffs = core::DiffRouteMapPair(a, "RM", b, "RM");
  // Routes with metric 50 or 60 are treated differently.
  ASSERT_EQ(diffs.size(), 2u);
}

TEST(MetricDiffTest, ExampleShowsMetric) {
  auto a = ParseCisco(
      "route-map RM deny 10\n"
      " match metric 50\n"
      "route-map RM permit 20\n");
  auto b = ParseCisco("route-map RM permit 10\n");
  bdd::BddManager mgr;
  encode::RouteAdvLayout layout(mgr, {});
  auto diffs = core::SemanticDiffRouteMaps(layout, a, *a.FindRouteMap("RM"),
                                           b, *b.FindRouteMap("RM"));
  ASSERT_EQ(diffs.size(), 1u);
  auto cube = mgr.AnySat(diffs[0].input_set);
  ASSERT_TRUE(cube.has_value());
  EXPECT_EQ(layout.Decode(*cube).metric, 50u);
}

// --- established ---------------------------------------------------------------

TEST(EstablishedTest, CiscoEstablishedKeyword) {
  auto config = ParseCisco(
      "ip access-list extended F\n"
      " permit tcp any any established\n");
  const ir::Acl* acl = config.FindAcl("F");
  ASSERT_NE(acl, nullptr);
  EXPECT_TRUE(acl->lines[0].established);
}

TEST(EstablishedTest, JuniperTcpEstablished) {
  auto config = ParseJuniper(R"(
firewall {
    family inet {
        filter F {
            term t {
                from {
                    protocol tcp;
                    tcp-established;
                }
                then accept;
            }
        }
    }
}
)");
  const ir::Acl* acl = config.FindAcl("F");
  ASSERT_NE(acl, nullptr);
  EXPECT_TRUE(acl->lines[0].established);
}

TEST(EstablishedTest, EstablishedMismatchIsDifference) {
  auto with = ParseCisco(
      "ip access-list extended F\n"
      " permit tcp any any established\n");
  auto without = ParseCisco(
      "ip access-list extended F\n"
      " permit tcp any any\n");
  auto diffs = core::DiffAclPair(with, without, "F");
  ASSERT_EQ(diffs.size(), 1u);
  // The difference space: TCP packets that are NOT established.
  ASSERT_TRUE(diffs[0].example.has_value());
  EXPECT_EQ(diffs[0].example->find("established"), std::string::npos);
}

TEST(EstablishedTest, EqualEstablishedLinesAreEquivalent) {
  auto a = ParseCisco(
      "ip access-list extended F\n"
      " permit tcp any any established\n"
      " deny ip any any\n");
  EXPECT_TRUE(core::DiffAclPair(a, a, "F").empty());
}

TEST(EstablishedTest, RoundTripsBothVendors) {
  auto config = ParseCisco(
      "ip access-list extended F\n"
      " permit tcp any any established\n");
  std::string cisco_text = cisco::UnparseCiscoConfig(config);
  EXPECT_NE(cisco_text.find("established"), std::string::npos);
  auto back = ParseCisco(cisco_text);
  EXPECT_TRUE(core::DiffAclPair(config, back, "F").empty());

  config.vendor = ir::Vendor::kJuniper;
  std::string juniper_text = juniper::UnparseJuniperConfig(config);
  EXPECT_NE(juniper_text.find("tcp-established"), std::string::npos);
  auto jback = ParseJuniper(juniper_text);
  EXPECT_TRUE(core::DiffAclPair(config, jback, "F").empty());
}

TEST(AsPathDiffTest, RoundTripsBothVendors) {
  auto config = ParseCisco(
      "ip as-path access-list 1 permit ^65000_\n"
      "route-map POL permit 10\n"
      " match as-path 1\n");
  auto cisco_back = ParseCisco(cisco::UnparseCiscoConfig(config));
  EXPECT_TRUE(
      core::DiffRouteMapPair(config, "POL", cisco_back, "POL").empty());

  config.vendor = ir::Vendor::kJuniper;
  auto juniper_back = ParseJuniper(juniper::UnparseJuniperConfig(config));
  EXPECT_TRUE(
      core::DiffRouteMapPair(config, "POL", juniper_back, "POL").empty());
}

}  // namespace
}  // namespace campion

// Appended: peer-group inheritance tests.
#include "core/structural_diff.h"

namespace campion {
namespace {

TEST(PeerGroupTest, MembersInheritGroupAttributes) {
  auto config = cisco::ParseCiscoConfig(
      "router bgp 65000\n"
      " neighbor SPINES peer-group\n"
      " neighbor SPINES remote-as 65001\n"
      " neighbor SPINES route-map IMP in\n"
      " neighbor SPINES send-community\n"
      " neighbor 10.0.0.2 peer-group SPINES\n"
      " neighbor 10.0.0.6 peer-group SPINES\n"
      " neighbor 10.0.0.6 route-map SPECIAL in\n",
      "t.cfg").config;
  ASSERT_TRUE(config.bgp.has_value());
  ASSERT_EQ(config.bgp->neighbors.size(), 2u);
  const ir::BgpNeighbor* n1 =
      config.FindBgpNeighbor(*util::Ipv4Address::Parse("10.0.0.2"));
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->remote_as, 65001u);
  EXPECT_EQ(n1->import_policy, "IMP");
  EXPECT_TRUE(n1->send_community);
  // Per-neighbor settings override the group.
  const ir::BgpNeighbor* n2 =
      config.FindBgpNeighbor(*util::Ipv4Address::Parse("10.0.0.6"));
  ASSERT_NE(n2, nullptr);
  EXPECT_EQ(n2->import_policy, "SPECIAL");
  EXPECT_EQ(n2->remote_as, 65001u);
}

TEST(PeerGroupTest, GroupLinesAfterMembershipStillApply) {
  auto config = cisco::ParseCiscoConfig(
      "router bgp 65000\n"
      " neighbor RR peer-group\n"
      " neighbor 10.255.0.1 peer-group RR\n"
      " neighbor RR remote-as 65000\n"
      " neighbor RR route-reflector-client\n",
      "t.cfg").config;
  const ir::BgpNeighbor* n =
      config.FindBgpNeighbor(*util::Ipv4Address::Parse("10.255.0.1"));
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->remote_as, 65000u);
  EXPECT_TRUE(n->route_reflector_client);
}

TEST(PeerGroupTest, UndefinedGroupDiagnosed) {
  auto result = cisco::ParseCiscoConfig(
      "router bgp 65000\n"
      " neighbor 10.0.0.2 peer-group GHOST\n",
      "t.cfg");
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_NE(result.diagnostics.back().find("GHOST"), std::string::npos);
}

TEST(PeerGroupTest, GroupExpansionEquivalentToExplicitConfig) {
  // A config written with peer groups and the same config written
  // explicitly must be behaviorally equivalent.
  auto grouped = cisco::ParseCiscoConfig(
      "router bgp 65000\n"
      " neighbor PEERS peer-group\n"
      " neighbor PEERS remote-as 65001\n"
      " neighbor PEERS send-community\n"
      " neighbor 10.0.0.2 peer-group PEERS\n",
      "a.cfg").config;
  auto explicit_config = cisco::ParseCiscoConfig(
      "router bgp 65000\n"
      " neighbor 10.0.0.2 remote-as 65001\n"
      " neighbor 10.0.0.2 send-community\n",
      "b.cfg").config;
  auto diffs = core::DiffBgpProperties(grouped, explicit_config);
  EXPECT_TRUE(diffs.empty());
}

}  // namespace
}  // namespace campion

namespace campion {
namespace {

TEST(NextHopSelfTest, ParsesOnBothVendors) {
  auto cisco = cisco::ParseCiscoConfig(
      "route-map RM permit 10\n"
      " set ip next-hop self\n",
      "t.cfg").config;
  const ir::RouteMap* cmap = cisco.FindRouteMap("RM");
  ASSERT_NE(cmap, nullptr);
  ASSERT_EQ(cmap->clauses[0].sets.size(), 1u);
  EXPECT_EQ(cmap->clauses[0].sets[0].kind,
            ir::RouteMapSet::Kind::kNextHopSelf);

  auto juniper = juniper::ParseJuniperConfig(R"(
policy-options {
    policy-statement RM {
        term t {
            then {
                next-hop self;
                accept;
            }
        }
    }
}
)",
                                             "t.conf").config;
  const ir::RouteMap* jmap = juniper.FindRouteMap("RM");
  ASSERT_NE(jmap, nullptr);
  EXPECT_EQ(jmap->clauses[0].sets[0].kind,
            ir::RouteMapSet::Kind::kNextHopSelf);
}

TEST(NextHopSelfTest, CrossVendorAlignsAndDiffers) {
  auto with_self = cisco::ParseCiscoConfig(
      "route-map RM permit 10\n"
      " set ip next-hop self\n",
      "a.cfg").config;
  auto without = cisco::ParseCiscoConfig(
      "route-map RM permit 10\n",
      "b.cfg").config;
  // next-hop self vs nothing is an attribute difference on accepts.
  auto diffs = core::DiffRouteMapPair(with_self, "RM", without, "RM");
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].action1.find("SET NEXT HOP SELF"), std::string::npos);

  // Cross-vendor: Cisco `set ip next-hop self` == JunOS `next-hop self`.
  with_self.vendor = ir::Vendor::kJuniper;
  auto reparsed = juniper::ParseJuniperConfig(
      juniper::UnparseJuniperConfig(with_self), "t.conf").config;
  EXPECT_TRUE(core::DiffRouteMapPair(with_self, "RM", reparsed, "RM").empty());
}

}  // namespace
}  // namespace campion

namespace campion {
namespace {

// The paper's fifth scenario-1 BGP bug used an IOS variant Campion did not
// fully support; Campion still detected the error and produced useful
// localization (input space + actions), with only the text inexact. The
// same degradation path here: unsupported lines are diagnosed and skipped,
// and the remaining clause structure still yields a localized difference.
TEST(PartialSupportTest, UnsupportedMatchStillLocalizes) {
  auto supported = cisco::ParseCiscoConfig(
      "ip prefix-list NETS permit 10.9.0.0/16 le 32\n"
      "route-map POL deny 10\n"
      " match ip address prefix-list NETS\n"
      "route-map POL permit 20\n",
      "a.cfg");
  // The same policy written with an additional unsupported match command.
  auto partial = cisco::ParseCiscoConfig(
      "ip prefix-list NETS permit 10.9.0.0/16 le 24\n"
      "route-map POL deny 10\n"
      " match ip address prefix-list NETS\n"
      " match extcommunity SOME-UNSUPPORTED-THING\n"
      "route-map POL permit 20\n",
      "b.cfg");
  // The unsupported line is diagnosed, not fatal.
  ASSERT_EQ(partial.diagnostics.size(), 1u);
  EXPECT_NE(partial.diagnostics[0].find("extcommunity"), std::string::npos);

  // And the prefix-window difference is still found and localized.
  auto diffs = core::DiffRouteMapPair(supported.config, "POL",
                                      partial.config, "POL");
  ASSERT_FALSE(diffs.empty());
  // HeaderLocalize expresses the lost space in the configs' own ranges:
  // included (10.9/16 : 16-32) minus excluded (10.9/16 : 16-24).
  bool found_window = false;
  for (const auto& diff : diffs) {
    bool includes = false;
    bool excludes = false;
    for (const auto& range : diff.included) {
      if (range == util::PrefixRange(
                       *util::Prefix::Parse("10.9.0.0/16"), 16, 32)) {
        includes = true;
      }
    }
    for (const auto& range : diff.excluded) {
      if (range == util::PrefixRange(
                       *util::Prefix::Parse("10.9.0.0/16"), 16, 24)) {
        excludes = true;
      }
    }
    if (includes && excludes) found_window = true;
  }
  EXPECT_TRUE(found_window)
      << "the window lost by `le 24` should be localized";
}

}  // namespace
}  // namespace campion
