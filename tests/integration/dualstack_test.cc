// End-to-end dual-stack coverage: the committed IPv6 example pair
// (examples/configs/dualstack_edge_{cisco,juniper}) diffs to exact v6
// localization, byte-identically at every thread count, template mode,
// and reorder mode. The configs are embedded so the test runs from any
// working directory.

#include <gtest/gtest.h>

#include <string>

#include "cisco/cisco_parser.h"
#include "core/config_diff.h"
#include "juniper/juniper_parser.h"

namespace campion {
namespace {

constexpr const char* kCiscoConfig = R"(hostname cisco_edge
!
interface Ethernet1
 ip address 10.0.12.1 255.255.255.0
!
ipv6 prefix-list NETS6 seq 5 permit 2001:db8:9::/48 le 128
ipv6 prefix-list NETS6 seq 10 permit 2001:db8:100::/48
!
ipv6 access-list V6FILTER
 permit tcp 2001:db8:1::/48 any eq 179
 permit icmpv6 any any
 deny ipv6 2001:db8:bad::/48 any
 permit ipv6 2001:db8::/32 any
!
route-map POL6 permit 10
 match ipv6 address prefix-list NETS6
 set local-preference 120
route-map POL6 permit 20
!
router bgp 65000
 bgp router-id 10.0.12.1
 neighbor 10.0.12.9 remote-as 65001
 neighbor 10.0.12.9 route-map POL6 out
 neighbor 10.0.12.9 send-community
!
end
)";

constexpr const char* kJuniperConfig = R"(system {
    host-name juniper_edge;
}
interfaces {
    ge-0/0/0 {
        unit 0 {
            family inet {
                address 10.0.12.2/24;
            }
        }
    }
}
routing-options {
    router-id 10.0.12.2;
    autonomous-system 65000;
}
policy-options {
    prefix-list NETS6 {
        2001:db8:9::/48;
        2001:db8:100::/48;
    }
    policy-statement POL6 {
        term rule1 {
            from {
                prefix-list NETS6;
            }
            then {
                local-preference 120;
                accept;
            }
        }
    }
}
firewall {
    family inet6 {
        filter V6FILTER {
            term bgp {
                from {
                    source-address 2001:db8:1::/48;
                    protocol tcp;
                    destination-port 179;
                }
                then accept;
            }
            term icmp {
                from {
                    protocol icmp6;
                }
                then accept;
            }
            term site {
                from {
                    source-address 2001:db8::/32;
                }
                then accept;
            }
        }
    }
}
protocols {
    bgp {
        group ebgp-peers {
            type external;
            peer-as 65001;
            neighbor 10.0.12.9 {
                export POL6;
            }
        }
    }
}
)";

class DualStackDiffTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cisco_ = new ir::RouterConfig(
        cisco::ParseCiscoConfig(kCiscoConfig, "c.cfg").config);
    juniper_ = new ir::RouterConfig(
        juniper::ParseJuniperConfig(kJuniperConfig, "j.conf").config);
  }
  static void TearDownTestSuite() {
    delete cisco_;
    delete juniper_;
    cisco_ = nullptr;
    juniper_ = nullptr;
  }
  static ir::RouterConfig* cisco_;
  static ir::RouterConfig* juniper_;
};

ir::RouterConfig* DualStackDiffTest::cisco_ = nullptr;
ir::RouterConfig* DualStackDiffTest::juniper_ = nullptr;

TEST_F(DualStackDiffTest, LocalizesV6RouteMapAndAclDifferences) {
  core::DiffReport report = core::ConfigDiff(*cisco_, *juniper_, {});
  EXPECT_FALSE(report.Equivalent());
  std::string text = report.Render();
  // Route-map difference: the Cisco "le 128" window includes the longer
  // prefixes the Juniper exact-match list excludes — and the excluded exact
  // set /48-/48 must also be reported (the paper's included/excluded split).
  EXPECT_NE(text.find("POL6"), std::string::npos);
  EXPECT_NE(text.find("2001:db8:9::/48 : 48-128"), std::string::npos);
  EXPECT_NE(text.find("2001:db8:9::/48 : 48-48"), std::string::npos);
  // ACL difference: only the Cisco side denies 2001:db8:bad::/48.
  EXPECT_NE(text.find("V6FILTER"), std::string::npos);
  EXPECT_NE(text.find("srcIP: 2001:db8:bad::/48"), std::string::npos);
  EXPECT_NE(text.find("deny ipv6 2001:db8:bad::/48 any"), std::string::npos);
  // icmpv6 (58) is carved out of the affected protocol set: both sides
  // accept it.
  EXPECT_NE(text.find("0-57, 59-255"), std::string::npos);
}

TEST_F(DualStackDiffTest, ReportByteIdenticalAcrossExecutionModes) {
  auto render = [&](unsigned threads, bool tmpl, core::DiffOptions::ReorderMode reorder) {
    core::DiffOptions options;
    options.num_threads = threads;
    options.use_encoding_template = tmpl;
    options.reorder = reorder;
    return core::ConfigDiff(*cisco_, *juniper_, options).Render();
  };
  const std::string baseline = render(1, true, core::DiffOptions::ReorderMode::kOff);
  EXPECT_EQ(baseline, render(4, true, core::DiffOptions::ReorderMode::kOff));
  EXPECT_EQ(baseline, render(1, false, core::DiffOptions::ReorderMode::kOff));
  EXPECT_EQ(baseline, render(4, false, core::DiffOptions::ReorderMode::kOff));
  EXPECT_EQ(baseline, render(1, true, core::DiffOptions::ReorderMode::kSift));
  EXPECT_EQ(baseline, render(4, true, core::DiffOptions::ReorderMode::kGroupSift));
}

TEST_F(DualStackDiffTest, EquivalentV6PairReportsNoDifferences) {
  // Self-comparison across vendors of the v6-only policy: remove the two
  // deliberate differences and the pair must be equivalent.
  ir::RouterConfig cisco = *cisco_;
  // Align the prefix-list window (drop "le 128" from seq 5)...
  cisco.prefix_lists["NETS6"].entries[0].range =
      util::PrefixRange(*util::Prefix6::Parse("2001:db8:9::/48"), 48, 48);
  // ...and the ACL deny line.
  auto& lines = cisco.acls["V6FILTER"].lines;
  lines.erase(lines.begin() + 2);
  core::DiffReport report = core::ConfigDiff(cisco, *juniper_, {});
  EXPECT_TRUE(report.Equivalent()) << report.Render();
}

}  // namespace
}  // namespace campion
