// Validates real `campion --trace_out` output against the schema documented
// in docs/trace_format.md: runs the built CLI on the Fig.1 pair, parses the
// emitted JSON with a minimal parser written here (the repo deliberately
// has no general JSON dependency), and checks the document shape, the span
// vocabulary, the kernel metrics, and structural determinism across
// `--threads` values.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tests/testdata.h"

#ifndef CAMPION_CLI_PATH
#error "CAMPION_CLI_PATH must be defined by the build"
#endif

namespace campion {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON model + recursive-descent parser (objects keep key order).

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue& out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return ParseString(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      SkipSpace();
      std::string key;
      if (!ParseString(key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.array.push_back(std::move(value));
    } while (Consume(','));
    return Consume(']');
  }

  bool ParseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // The emitter only \u-escapes control characters; decode to '?'.
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;
            out += '?';
            break;
          default: return false;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseNumber(JsonValue& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.type = JsonValue::Type::kNumber;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Test fixture: writes the Fig.1 pair once and runs the CLI per test.

int RunCommand(const std::string& command) {
  int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class TraceSchemaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process scratch dir: parallel ctest runs each case in its own
    // process, and a shared path would race on the config files.
    dir_ = std::filesystem::temp_directory_path() /
           ("campion-trace-schema-" + std::to_string(getpid()));
    std::filesystem::create_directories(dir_);
    std::ofstream(dir_ / "cisco.cfg") << testing::kFig1Cisco;
    std::ofstream(dir_ / "juniper.conf") << testing::kFig1Juniper;
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static std::string Path(const std::string& name) {
    return (dir_ / name).string();
  }

  // Runs the CLI with --trace_out and returns the parsed trace document.
  static JsonValue TraceFor(const std::string& extra_flags,
                            const std::string& trace_name) {
    std::string trace_path = Path(trace_name);
    std::string command = std::string(CAMPION_CLI_PATH) + " " + extra_flags +
                          " --trace_out=" + trace_path + " " +
                          Path("cisco.cfg") + " " + Path("juniper.conf") +
                          " > /dev/null 2>&1";
    EXPECT_EQ(RunCommand(command), 2);  // Fig.1 pair has differences.
    std::ifstream file(trace_path);
    std::stringstream buffer;
    buffer << file.rdbuf();
    JsonValue doc;
    EXPECT_TRUE(JsonParser(buffer.str()).Parse(doc))
        << "trace is not valid JSON: " << trace_path;
    return doc;
  }

  static std::filesystem::path dir_;
};

std::filesystem::path TraceSchemaTest::dir_;

// Recursively checks one span object against the documented schema and
// collects the names seen.
void ValidateSpan(const JsonValue& span, std::set<std::string>& names) {
  ASSERT_EQ(span.type, JsonValue::Type::kObject);
  const JsonValue* name = span.Find("name");
  ASSERT_NE(name, nullptr);
  ASSERT_EQ(name->type, JsonValue::Type::kString);
  EXPECT_FALSE(name->string.empty());
  names.insert(name->string);

  const JsonValue* start = span.Find("start_ns");
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->type, JsonValue::Type::kNumber);
  EXPECT_GE(start->number, 0.0);
  const JsonValue* duration = span.Find("duration_ns");
  ASSERT_NE(duration, nullptr);
  EXPECT_EQ(duration->type, JsonValue::Type::kNumber);
  EXPECT_GE(duration->number, 0.0);

  // detail and attrs are optional; when present they must have the right
  // shape (string, and object of numbers, respectively).
  if (const JsonValue* detail = span.Find("detail")) {
    EXPECT_EQ(detail->type, JsonValue::Type::kString);
  }
  if (const JsonValue* attrs = span.Find("attrs")) {
    ASSERT_EQ(attrs->type, JsonValue::Type::kObject);
    for (const auto& [key, value] : attrs->object) {
      EXPECT_FALSE(key.empty());
      EXPECT_EQ(value.type, JsonValue::Type::kNumber);
    }
  }

  const JsonValue* children = span.Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->type, JsonValue::Type::kArray);
  for (const JsonValue& child : children->array) ValidateSpan(child, names);
}

TEST_F(TraceSchemaTest, DocumentMatchesDocumentedSchema) {
  JsonValue doc = TraceFor("", "trace.json");
  ASSERT_EQ(doc.type, JsonValue::Type::kObject);

  const JsonValue* version = doc.Find("campion_trace_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, 1.0);

  const JsonValue* spans = doc.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->type, JsonValue::Type::kArray);
  ASSERT_FALSE(spans->array.empty());

  std::set<std::string> names;
  for (const JsonValue& span : spans->array) ValidateSpan(span, names);
  // The documented pipeline phases all appear for the Fig.1 pair.
  for (const char* required :
       {"parse", "config_diff", "match_policies", "route_map_pair", "encode",
        "class_intersect", "header_localize", "structural"}) {
    EXPECT_TRUE(names.count(required)) << "missing span name: " << required;
  }

  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->type, JsonValue::Type::kObject);
  std::map<std::string, double> flat;
  for (const auto& [key, value] : metrics->object) {
    ASSERT_EQ(value.type, JsonValue::Type::kNumber) << key;
    flat[key] = value.number;
  }
  EXPECT_EQ(flat["parse.files"], 2.0);
  EXPECT_GT(flat["parse.lines"], 0.0);
  EXPECT_GT(flat["bdd.cache_lookups"], 0.0);
  EXPECT_GT(flat["bdd.unique_lookups"], 0.0);
  EXPECT_GT(flat["bdd.unique_table_peak_slots"], 0.0);
  EXPECT_GE(flat["bdd.cache_lookups"], flat["bdd.cache_hits"]);
  EXPECT_GE(flat["bdd.unique_probes"], flat["bdd.unique_lookups"]);
  EXPECT_EQ(flat["diff.route_map_pairs"], 1.0);
  // Metric keys are emitted in sorted order (the registry snapshot).
  for (std::size_t i = 1; i < metrics->object.size(); ++i) {
    EXPECT_LT(metrics->object[i - 1].first, metrics->object[i].first);
  }
}

// Structure-only rendering of a parsed trace: name/detail/nesting, no
// timings — the part docs/trace_format.md guarantees is deterministic.
void StructureOf(const JsonValue& span, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += span.Find("name")->string;
  if (const JsonValue* detail = span.Find("detail")) {
    out += " [" + detail->string + "]";
  }
  out += "\n";
  for (const JsonValue& child : span.Find("children")->array) {
    StructureOf(child, depth + 1, out);
  }
}

TEST_F(TraceSchemaTest, StructureIsIdenticalAcrossThreadCounts) {
  JsonValue serial = TraceFor("--threads=1", "trace_t1.json");
  JsonValue pooled = TraceFor("--threads=4", "trace_t4.json");
  std::string serial_structure, pooled_structure;
  for (const JsonValue& span : serial.Find("spans")->array) {
    StructureOf(span, 0, serial_structure);
  }
  for (const JsonValue& span : pooled.Find("spans")->array) {
    StructureOf(span, 0, pooled_structure);
  }
  EXPECT_EQ(serial_structure, pooled_structure);
  EXPECT_FALSE(serial_structure.empty());

  // Counters (everything except wall-clock) also agree exactly. The one
  // exception is the `mem.` RSS watermarks: resident-set sizes are an OS
  // artifact and vary run to run, so docs/trace_format.md exempts them
  // from the determinism guarantee. Every `mem.` key must still be present
  // in both traces — only its value may differ.
  auto metrics_of = [](const JsonValue& doc, bool keep_mem) {
    std::map<std::string, double> flat;
    for (const auto& [key, value] : doc.Find("metrics")->object) {
      if (!keep_mem && key.rfind("mem.", 0) == 0) continue;
      flat[key] = keep_mem ? 1.0 : value.number;  // keep_mem: keys only.
    }
    return flat;
  };
  EXPECT_EQ(metrics_of(serial, false), metrics_of(pooled, false));
  auto key_set = [&](const JsonValue& doc) { return metrics_of(doc, true); };
  EXPECT_EQ(key_set(serial), key_set(pooled));
}

// ---------------------------------------------------------------------------
// Chrome Trace Event export.

// Flattens a chrome trace into (name [detail]) -> tid for the complete
// ("X") events and validates the event shapes along the way.
std::map<std::string, std::set<double>> ChromeEventLanes(
    const JsonValue& doc) {
  std::map<std::string, std::set<double>> lanes;
  const JsonValue* events = doc.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr) return lanes;
  EXPECT_EQ(events->type, JsonValue::Type::kArray);
  double last_ts = -1.0;
  for (const JsonValue& event : events->array) {
    EXPECT_EQ(event.type, JsonValue::Type::kObject);
    const JsonValue* ph = event.Find("ph");
    EXPECT_NE(ph, nullptr);
    if (ph == nullptr) continue;
    if (ph->string == "M") continue;  // Metadata: process/thread names.
    // Spans export as complete events: one "X" with ts + dur, never
    // unbalanced B/E pairs.
    EXPECT_EQ(ph->string, "X");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    const JsonValue* tid = event.Find("tid");
    EXPECT_NE(ts, nullptr);
    EXPECT_NE(dur, nullptr);
    EXPECT_NE(tid, nullptr);
    if (ts == nullptr || dur == nullptr || tid == nullptr) continue;
    EXPECT_GE(ts->number, 0.0);
    EXPECT_GE(dur->number, 0.0);
    EXPECT_EQ(event.Find("pid")->number, 1.0);
    // Events are emitted in timestamp order so viewers need no re-sort.
    EXPECT_GE(ts->number, last_ts);
    last_ts = ts->number;
    std::string key = event.Find("name")->string;
    if (const JsonValue* args = event.Find("args")) {
      if (const JsonValue* detail = args->Find("detail")) {
        key += " [" + detail->string + "]";
      }
    }
    lanes[key].insert(tid->number);
  }
  return lanes;
}

TEST_F(TraceSchemaTest, ChromeExportIsValidAndThreadCountIndependent) {
  JsonValue serial = TraceFor("--trace_format=chrome --threads=1",
                              "chrome_t1.json");
  JsonValue pooled = TraceFor("--trace_format=chrome --threads=4",
                              "chrome_t4.json");

  std::map<std::string, std::set<double>> serial_lanes =
      ChromeEventLanes(serial);
  std::map<std::string, std::set<double>> pooled_lanes =
      ChromeEventLanes(pooled);
  ASSERT_FALSE(serial_lanes.empty());

  // The (name, detail) -> tid mapping is synthetic (pair-declaration
  // order), so the lane layout is byte-identical at any thread count.
  EXPECT_EQ(serial_lanes, pooled_lanes);

  // Worker pair spans leave the main lane; their subtrees ride along.
  bool saw_worker_lane = false;
  for (const auto& [key, tids] : serial_lanes) {
    for (double tid : tids) {
      if (tid > 0.0) saw_worker_lane = true;
    }
  }
  EXPECT_TRUE(saw_worker_lane);

  // Kernel metrics ride in otherData, minus nothing: the chrome export
  // carries the same registry snapshot as the campion format.
  const JsonValue* other = serial.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_GT(other->object.size(), 0u);
  bool saw_bdd_metric = false;
  for (const auto& [key, value] : other->object) {
    if (key.rfind("bdd.", 0) == 0) saw_bdd_metric = true;
  }
  EXPECT_TRUE(saw_bdd_metric);
}

}  // namespace
}  // namespace campion
