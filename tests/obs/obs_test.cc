// Unit tests for the observability layer (src/obs): disabled-mode no-op
// behavior, span nesting, concurrent counter updates from the worker pool,
// and determinism of the merged trace when the same task set runs inline
// (threads=1) versus fanned out (threads=4).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_report.h"
#include "util/thread_pool.h"

namespace campion::obs {
namespace {

// Every test starts from a clean slate: tracing off, buffers and registry
// empty. Worker threads spawned inside a test carry their own thread-local
// buffers that die with the pool, so only the main thread needs clearing.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    ResetThreadTrace();
    ProcessMetrics().Reset();
  }
  void TearDown() override {
    SetEnabled(false);
    ResetThreadTrace();
    ProcessMetrics().Reset();
  }
};

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(Enabled());
  {
    ScopedSpan outer("outer", "detail");
    outer.AddAttr("k", 1.0);
    ScopedSpan inner("inner");
    Count("some.counter", 5.0);
    MaxGauge("some.watermark", 7.0);
  }
  EXPECT_TRUE(TakeThreadSpans().empty());
  EXPECT_TRUE(ProcessMetrics().Snapshot().empty());
}

TEST_F(ObsTest, SpansNestAndCarryAttrs) {
  SetEnabled(true);
  {
    ScopedSpan outer("pipeline", "r1 vs r2");
    {
      ScopedSpan first("parse", "a.cfg");
      first.AddAttr("lines", 12.0);
    }
    { ScopedSpan second("parse", "b.cfg"); }
  }
  std::vector<Span> roots = TakeThreadSpans();
  ASSERT_EQ(roots.size(), 1u);
  const Span& outer = roots[0];
  EXPECT_EQ(outer.name, "pipeline");
  EXPECT_EQ(outer.detail, "r1 vs r2");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0].detail, "a.cfg");
  EXPECT_EQ(outer.children[1].detail, "b.cfg");
  ASSERT_EQ(outer.children[0].attrs.size(), 1u);
  EXPECT_EQ(outer.children[0].attrs[0].first, "lines");
  EXPECT_EQ(outer.children[0].attrs[0].second, 12.0);
  // Children start inside the parent and the parent lasts at least as
  // long as the span from its start to each child's end.
  for (const Span& child : outer.children) {
    EXPECT_GE(child.start_ns, outer.start_ns);
    EXPECT_LE(child.start_ns + child.duration_ns,
              outer.start_ns + outer.duration_ns);
  }
}

TEST_F(ObsTest, SpanOpenedWhileDisabledStaysInert) {
  // Toggling tracing on mid-span must not corrupt the stack: the span only
  // records if tracing was on when it opened.
  ScopedSpan outer("outer");
  SetEnabled(true);
  { ScopedSpan inner("inner"); }
  SetEnabled(false);
  std::vector<Span> roots = TakeThreadSpans();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "inner");
}

TEST_F(ObsTest, ConcurrentCounterUpdatesFromPool) {
  SetEnabled(true);
  constexpr std::size_t kTasks = 64;
  util::RunParallel(4, kTasks, [](std::size_t i) {
    for (int j = 0; j < 100; ++j) Count("test.adds");
    MaxGauge("test.watermark", static_cast<double>(i));
  });
  auto snapshot = ProcessMetrics().Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "test.adds");
  EXPECT_EQ(snapshot[0].second, kTasks * 100.0);
  EXPECT_EQ(snapshot[1].first, "test.watermark");
  EXPECT_EQ(snapshot[1].second, kTasks - 1.0);
}

// The ConfigDiff merge pattern, in miniature: each task records one span
// with children; captures are re-attached in task-declaration order.
std::vector<Span> RunMergedTasks(unsigned num_threads, std::size_t n) {
  ScopedSpan root("root");
  std::vector<std::vector<Span>> captured(n);
  util::RunParallel(num_threads, n, [&](std::size_t i) {
    TaskCapture capture;
    {
      ScopedSpan task("task", "t" + std::to_string(i));
      ScopedSpan child("work");
    }
    captured[i] = capture.Finish();
  });
  for (std::size_t i = 0; i < n; ++i) AttachSpans(std::move(captured[i]));
  return {};
}

TEST_F(ObsTest, MergedTraceIsDeterministicAcrossThreadCounts) {
  SetEnabled(true);
  RunMergedTasks(1, 8);
  std::string serial = TraceStructure(TakeThreadSpans());
  ResetThreadTrace();
  RunMergedTasks(4, 8);
  std::string pooled = TraceStructure(TakeThreadSpans());
  EXPECT_EQ(serial, pooled);
  // Sanity: the structure lists the root and all eight tasks in order.
  EXPECT_NE(serial.find("root"), std::string::npos);
  EXPECT_LT(serial.find("task [t0]"), serial.find("task [t7]"));
  EXPECT_NE(serial.find("work"), std::string::npos);
}

TEST_F(ObsTest, PhaseTotalsAggregateAcrossDepths) {
  SetEnabled(true);
  {
    ScopedSpan outer("diff");
    { ScopedSpan a("encode"); }
    { ScopedSpan b("encode"); }
  }
  { ScopedSpan lone("encode"); }
  std::vector<PhaseTotal> totals = PhaseTotals(TakeThreadSpans());
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].name, "diff");
  EXPECT_EQ(totals[0].count, 1u);
  EXPECT_EQ(totals[1].name, "encode");
  EXPECT_EQ(totals[1].count, 3u);
  // Self time excludes direct children.
  EXPECT_LE(totals[0].self_ns, totals[0].total_ns);
}

TEST_F(ObsTest, TraceJsonContainsVersionSpansAndMetrics) {
  SetEnabled(true);
  {
    ScopedSpan span("parse", "path \"quoted\".cfg");
    span.AddAttr("lines", 3.0);
  }
  Count("parse.files");
  std::string json = TraceToJson(TakeThreadSpans(),
                                 ProcessMetrics().Snapshot());
  EXPECT_NE(json.find("\"campion_trace_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"parse\""), std::string::npos);
  // Quotes in the detail are escaped.
  EXPECT_NE(json.find("path \\\"quoted\\\".cfg"), std::string::npos);
  EXPECT_NE(json.find("\"parse.files\": 1"), std::string::npos);
  // Integral attrs serialize without a decimal point.
  EXPECT_NE(json.find("\"lines\": 3"), std::string::npos);
  EXPECT_EQ(json.find("\"lines\": 3."), std::string::npos);
}

TEST_F(ObsTest, ChromeJsonMapsWorkerSpansToSyntheticLanes) {
  SetEnabled(true);
  {
    ScopedSpan root("config_diff", "r1 vs r2");
    {
      ScopedSpan pair1("route_map_pair", "A vs A");
      { ScopedSpan child("encode"); }
    }
    { ScopedSpan pair2("acl_pair", "B vs B"); }
  }
  Count("bdd.unique_lookups", 5.0);
  std::string json = TraceToChromeJson(TakeThreadSpans(),
                                       ProcessMetrics().Snapshot());
  // Complete events only, with the metadata naming the synthetic lanes.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"pair-1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"pair-2\""), std::string::npos);
  // Worker spans leave lane 0; their subtrees inherit the lane. The encode
  // child sits under the first pair, so tid 1 appears at least twice.
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 2"), std::string::npos);
  // Metrics ride along in otherData.
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"bdd.unique_lookups\": 5"), std::string::npos);
  // No campion version marker: this format is for chrome://tracing.
  EXPECT_EQ(json.find("campion_trace_version"), std::string::npos);
}

TEST_F(ObsTest, ChromeJsonWithNoSpansIsStillWellFormed) {
  SetEnabled(true);
  std::string json =
      TraceToChromeJson({}, ProcessMetrics().Snapshot());
  // The metadata lines must not leave a dangling comma before the close.
  EXPECT_EQ(json.find(",\n  ]"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(ObsTest, StatsSummaryRendersTables) {
  SetEnabled(true);
  { ScopedSpan span("parse"); }
  Count("bdd.cache_lookups", 10.0);
  Count("bdd.cache_hits", 4.0);
  std::string stats = RenderStatsSummary(TakeThreadSpans(),
                                         ProcessMetrics().Snapshot());
  EXPECT_NE(stats.find("Phase"), std::string::npos);
  EXPECT_NE(stats.find("parse"), std::string::npos);
  EXPECT_NE(stats.find("bdd.cache_hit_rate"), std::string::npos);
  EXPECT_NE(stats.find("0.4"), std::string::npos);
}

}  // namespace
}  // namespace campion::obs
