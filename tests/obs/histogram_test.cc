// Tests for obs/histogram.h: exact bucket boundaries, merge algebra,
// quantile error bounds, and the allocation-free record path.

#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <random>
#include <thread>
#include <vector>

namespace campion::obs {
namespace {

// Counts every global operator new hit so the zero-allocation test can
// pin the Record path. gtest and the runtime allocate freely around the
// measured section; only the delta across Record calls matters.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace
}  // namespace campion::obs

void* operator new(std::size_t size) {
  campion::obs::g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace campion::obs {
namespace {

TEST(HistogramTest, FirstFourBucketsAreExactValues) {
  for (std::uint64_t ns = 0; ns < 4; ++ns) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(ns), static_cast<int>(ns));
    EXPECT_EQ(LatencyHistogram::BucketLowerNs(static_cast<int>(ns)), ns);
    EXPECT_EQ(LatencyHistogram::BucketUpperNs(static_cast<int>(ns)), ns + 1);
  }
}

TEST(HistogramTest, BucketBoundariesAreExactIntegers) {
  // Every bucket's lower bound must land in that bucket, and lower-1 in
  // the previous one: the boundary (4 + sub) << (octave - 1) is exact.
  for (int index = 4; index < LatencyHistogram::kBucketCount; ++index) {
    const std::uint64_t lower = LatencyHistogram::BucketLowerNs(index);
    if (lower == ~0ull) break;  // Beyond the 64-bit range.
    EXPECT_EQ(LatencyHistogram::BucketIndex(lower), index)
        << "lower bound of bucket " << index;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lower - 1), index - 1)
        << "one below bucket " << index;
    const std::uint64_t upper = LatencyHistogram::BucketUpperNs(index);
    if (upper != ~0ull) {
      EXPECT_EQ(LatencyHistogram::BucketIndex(upper - 1), index)
          << "last value of bucket " << index;
    }
  }
}

TEST(HistogramTest, KnownBucketValues) {
  // Spot checks computed by hand from the layout comment.
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 4);     // [4,5)
  EXPECT_EQ(LatencyHistogram::BucketIndex(7), 7);     // [7,8)
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 8);     // [8,10)
  EXPECT_EQ(LatencyHistogram::BucketIndex(9), 8);
  EXPECT_EQ(LatencyHistogram::BucketIndex(15), 11);   // [14,16)
  EXPECT_EQ(LatencyHistogram::BucketIndex(16), 12);   // [16,20)
  EXPECT_EQ(LatencyHistogram::BucketIndex(1000), LatencyHistogram::BucketIndex(896));
  EXPECT_EQ(LatencyHistogram::BucketLowerNs(LatencyHistogram::BucketIndex(1000)),
            896u);
  EXPECT_EQ(LatencyHistogram::BucketUpperNs(LatencyHistogram::BucketIndex(1000)),
            1024u);
}

TEST(HistogramTest, RelativeBucketWidthIsAtMostAQuarter) {
  for (int index = 4; index < LatencyHistogram::kBucketCount; ++index) {
    const std::uint64_t lower = LatencyHistogram::BucketLowerNs(index);
    const std::uint64_t upper = LatencyHistogram::BucketUpperNs(index);
    if (lower == ~0ull || upper == ~0ull) break;
    EXPECT_LE(upper - lower, lower / 4)
        << "bucket " << index << " [" << lower << ", " << upper << ")";
  }
}

TEST(HistogramTest, ExtremesLandInTheEndBuckets) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0);
  const int top = LatencyHistogram::BucketIndex(~0ull);
  EXPECT_LT(top, LatencyHistogram::kBucketCount);
  EXPECT_EQ(LatencyHistogram::BucketUpperNs(top), ~0ull);
  LatencyHistogram histogram;
  histogram.Record(~0ull);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_EQ(snapshot.counts[static_cast<std::size_t>(top)], 1u);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(42);
  auto random_snapshot = [&] {
    LatencyHistogram histogram;
    for (int i = 0; i < 200; ++i) {
      histogram.Record(rng() % 1'000'000);
    }
    return histogram.Snapshot();
  };
  const HistogramSnapshot a = random_snapshot();
  const HistogramSnapshot b = random_snapshot();
  const HistogramSnapshot c = random_snapshot();

  HistogramSnapshot ab = a;
  ab.Merge(b);
  HistogramSnapshot ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab.counts, ba.counts);  // Commutative.
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.sum_ns, ba.sum_ns);

  HistogramSnapshot ab_c = ab;
  ab_c.Merge(c);
  HistogramSnapshot bc = b;
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);
  EXPECT_EQ(ab_c.counts, a_bc.counts);  // Associative.
  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum_ns, a_bc.sum_ns);
}

TEST(HistogramTest, QuantileWithinOneBucketWidth) {
  LatencyHistogram histogram;
  std::vector<std::uint64_t> values;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t ns = rng() % 10'000'000;
    values.push_back(ns);
    histogram.Record(ns);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snapshot = histogram.Snapshot();
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    if (rank == 0) rank = 1;
    const std::uint64_t exact = values[rank - 1];
    const std::uint64_t estimate = snapshot.QuantileNs(q);
    // The estimate is the inclusive upper bound of the exact value's
    // bucket: never below the true value, within one bucket width above.
    const int bucket = LatencyHistogram::BucketIndex(exact);
    EXPECT_GE(estimate, exact) << "q=" << q;
    EXPECT_LE(estimate, LatencyHistogram::BucketUpperNs(bucket) - 1)
        << "q=" << q;
  }
}

TEST(HistogramTest, QuantilesOfPointMassAreExactForSmallValues) {
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(3);  // Exact bucket 3.
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.QuantileNs(0.5), 3u);
  EXPECT_EQ(snapshot.QuantileNs(0.99), 3u);
  EXPECT_DOUBLE_EQ(snapshot.MeanNs(), 3.0);
}

TEST(HistogramTest, EmptySnapshotQuantilesAreZero) {
  const HistogramSnapshot snapshot = LatencyHistogram().Snapshot();
  EXPECT_EQ(snapshot.QuantileNs(0.5), 0u);
  EXPECT_DOUBLE_EQ(snapshot.MeanNs(), 0.0);
}

TEST(HistogramTest, RecordPathDoesNotAllocate) {
  LatencyHistogram histogram;
  histogram.Record(1);  // Warm anything lazy before measuring.
  const std::uint64_t before = g_allocations.load();
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    histogram.Record(i * 37);
  }
  EXPECT_EQ(g_allocations.load(), before);
}

TEST(HistogramTest, ConcurrentRecordsAreAllCounted) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<std::uint64_t>(t) * 1000 + 5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (std::uint64_t bucket : snapshot.counts) total += bucket;
  EXPECT_EQ(total, snapshot.count);
}

}  // namespace
}  // namespace campion::obs
