#include "util/community.h"

#include <gtest/gtest.h>

namespace campion::util {
namespace {

TEST(CommunityTest, ParseColonForm) {
  auto c = Community::Parse("10:11");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->high(), 10);
  EXPECT_EQ(c->low(), 11);
  EXPECT_EQ(c->ToString(), "10:11");
}

TEST(CommunityTest, ParseNumericForm) {
  auto c = Community::Parse("655370");  // 10 * 65536 + 10
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, Community(10, 10));
}

TEST(CommunityTest, ParseBoundaries) {
  EXPECT_TRUE(Community::Parse("0:0").has_value());
  EXPECT_TRUE(Community::Parse("65535:65535").has_value());
  EXPECT_FALSE(Community::Parse("65536:0").has_value());
  EXPECT_FALSE(Community::Parse("0:65536").has_value());
}

TEST(CommunityTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Community::Parse("").has_value());
  EXPECT_FALSE(Community::Parse(":").has_value());
  EXPECT_FALSE(Community::Parse("10:").has_value());
  EXPECT_FALSE(Community::Parse(":10").has_value());
  EXPECT_FALSE(Community::Parse("a:b").has_value());
  EXPECT_FALSE(Community::Parse("10:11:12").has_value());
}

TEST(CommunityTest, OrderingByValue) {
  EXPECT_LT(Community(10, 10), Community(10, 11));
  EXPECT_LT(Community(10, 65535), Community(11, 0));
}

TEST(CommunityTest, RoundTrip) {
  for (auto c : {Community(0, 0), Community(65000, 100),
                 Community(65535, 65535)}) {
    auto back = Community::Parse(c.ToString());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
}

}  // namespace
}  // namespace campion::util
