#include "util/u128.h"

#include <gtest/gtest.h>

#include <random>

namespace campion::util {
namespace {

TEST(U128Test, DefaultIsZero) {
  EXPECT_EQ(U128(), U128(0, 0));
  EXPECT_EQ(U128().hi(), 0u);
  EXPECT_EQ(U128().lo(), 0u);
}

TEST(U128Test, ImplicitFromNarrow) {
  U128 v = 42u;
  EXPECT_EQ(v.hi(), 0u);
  EXPECT_EQ(v.lo(), 42u);
}

TEST(U128Test, Ones) {
  EXPECT_EQ(U128::Ones(0), U128());
  EXPECT_EQ(U128::Ones(1), U128(0, 1));
  EXPECT_EQ(U128::Ones(64), U128(0, ~0ull));
  EXPECT_EQ(U128::Ones(65), U128(1, ~0ull));
  EXPECT_EQ(U128::Ones(128), U128::Max());
}

// Regression: Ones(64) used to shift a uint64_t by 64 — undefined, and on
// x86 the runtime result was ~0ull, making Ones(64) == Max() while constant
// folding of literal arguments gave the right answer. The literal test
// above therefore passed even when every *runtime* call (as made by
// SymbolicField::Intervals) was wrong, silently deleting 64-bit-wide
// blocks from 128-bit interval extraction. The volatile read keeps the
// argument out of the constant folder.
TEST(U128Test, OnesWithRuntimeWidth) {
  for (int i = 0; i <= 128; ++i) {
    volatile int laundered = i;
    int n = laundered;
    U128 expected = n >= 128 ? U128::Max() : (U128(1) << n) - U128(1);
    EXPECT_EQ(U128::Ones(n), expected) << "n=" << n;
  }
}

TEST(U128Test, BitIndexing) {
  U128 v(1ull << 3, 1ull << 5);
  EXPECT_TRUE(v.Bit(5));
  EXPECT_FALSE(v.Bit(6));
  EXPECT_TRUE(v.Bit(67));
  EXPECT_FALSE(v.Bit(127));
}

TEST(U128Test, ShiftAcrossLimbBoundary) {
  EXPECT_EQ(U128(0, 1) << 64, U128(1, 0));
  EXPECT_EQ(U128(1, 0) >> 64, U128(0, 1));
  EXPECT_EQ(U128(0, 1) << 127, U128(1ull << 63, 0));
  EXPECT_EQ(U128(0, 1) << 128, U128());
  EXPECT_EQ(U128::Max() >> 128, U128());
}

TEST(U128Test, AddCarriesAcrossLimbs) {
  EXPECT_EQ(U128(0, ~0ull) + U128(1), U128(1, 0));
  EXPECT_EQ(U128::Max() + U128(1), U128());  // Wraps mod 2^128.
}

TEST(U128Test, SubBorrowsAcrossLimbs) {
  EXPECT_EQ(U128(1, 0) - U128(1), U128(0, ~0ull));
  EXPECT_EQ(U128() - U128(1), U128::Max());  // Wraps mod 2^128.
}

TEST(U128Test, OrderingComparesHiFirst) {
  EXPECT_LT(U128(0, ~0ull), U128(1, 0));
  EXPECT_LT(U128(1, 5), U128(1, 6));
  EXPECT_GT(U128::Max(), U128(~0ull, 0));
}

TEST(U128Test, ToStringDecimal) {
  EXPECT_EQ(U128().ToString(), "0");
  EXPECT_EQ(U128(12345).ToString(), "12345");
  EXPECT_EQ(U128(0, ~0ull).ToString(), "18446744073709551615");
  EXPECT_EQ(U128(1, 0).ToString(), "18446744073709551616");
  EXPECT_EQ(U128::Max().ToString(),
            "340282366920938463463374607431768211455");
}

#ifdef __SIZEOF_INT128__

// Randomized oracle against the compiler's native 128-bit integer: every
// operator U128 defines must agree with `unsigned __int128` bit-for-bit,
// including the mod-2^128 wraparound of + and -.
TEST(U128Test, RandomizedOracleAgainstNativeInt128) {
  using N = unsigned __int128;
  auto to_native = [](U128 v) {
    return (static_cast<N>(v.hi()) << 64) | v.lo();
  };
  auto from_native = [](N v) {
    return U128(static_cast<std::uint64_t>(v >> 64),
                static_cast<std::uint64_t>(v));
  };
  std::mt19937_64 rng(20210823);  // Campion's SIGCOMM presentation date.
  for (int trial = 0; trial < 2000; ++trial) {
    // Mix full-entropy values with sparse ones so limb boundaries and
    // carry/borrow chains get hit often.
    auto draw = [&]() -> U128 {
      switch (rng() % 4) {
        case 0: return U128(rng(), rng());
        case 1: return U128(0, rng());
        case 2: return U128::Ones(static_cast<int>(rng() % 129));
        default: return U128(1) << static_cast<int>(rng() % 128);
      }
    };
    U128 a = draw(), b = draw();
    N na = to_native(a), nb = to_native(b);
    EXPECT_EQ(a & b, from_native(na & nb));
    EXPECT_EQ(a | b, from_native(na | nb));
    EXPECT_EQ(a ^ b, from_native(na ^ nb));
    EXPECT_EQ(~a, from_native(~na));
    EXPECT_EQ(a + b, from_native(na + nb));
    EXPECT_EQ(a - b, from_native(na - nb));
    EXPECT_EQ(a == b, na == nb);
    EXPECT_EQ(a < b, na < nb);
    EXPECT_EQ(a > b, na > nb);
    int shift = static_cast<int>(rng() % 128);
    EXPECT_EQ(a << shift, from_native(na << shift));
    EXPECT_EQ(a >> shift, from_native(na >> shift));
    int bit = static_cast<int>(rng() % 128);
    EXPECT_EQ(a.Bit(bit), ((na >> bit) & 1) != 0);
  }
}

#endif  // __SIZEOF_INT128__

}  // namespace
}  // namespace campion::util
