#include "util/prefix_range.h"

#include <gtest/gtest.h>

namespace campion::util {
namespace {

PrefixRange Range(const char* prefix, int low, int high) {
  return PrefixRange(*Prefix::Parse(prefix), low, high);
}

TEST(PrefixRangeTest, UniverseContainsEverything) {
  PrefixRange u = PrefixRange::Universe();
  EXPECT_TRUE(u.Contains(*Prefix::Parse("0.0.0.0/0")));
  EXPECT_TRUE(u.Contains(*Prefix::Parse("10.9.1.0/24")));
  EXPECT_TRUE(u.Contains(*Prefix::Parse("255.255.255.255/32")));
}

TEST(PrefixRangeTest, MembershipPaperExamples) {
  // From §3.2: 1.2.3.0/24 is a member of (1.2.0.0/16, 16-32).
  EXPECT_TRUE(Range("1.2.0.0/16", 16, 32).Contains(*Prefix::Parse("1.2.3.0/24")));
  // (1.0.0.0/8, 24-24) is the set of prefixes of length 24 starting with 1.
  PrefixRange slash24s = Range("1.0.0.0/8", 24, 24);
  EXPECT_TRUE(slash24s.Contains(*Prefix::Parse("1.2.3.0/24")));
  EXPECT_FALSE(slash24s.Contains(*Prefix::Parse("1.2.0.0/16")));
  EXPECT_FALSE(slash24s.Contains(*Prefix::Parse("2.2.3.0/24")));
}

TEST(PrefixRangeTest, ExactRangeMatchesOnlyItself) {
  PrefixRange exact(*Prefix::Parse("10.9.0.0/16"));
  EXPECT_TRUE(exact.Contains(*Prefix::Parse("10.9.0.0/16")));
  EXPECT_FALSE(exact.Contains(*Prefix::Parse("10.9.1.0/24")));
  EXPECT_FALSE(exact.Contains(*Prefix::Parse("10.8.0.0/15")));
}

TEST(PrefixRangeTest, LengthWindowBoundaries) {
  PrefixRange r = Range("10.0.0.0/8", 16, 24);
  EXPECT_FALSE(r.Contains(*Prefix::Parse("10.1.0.0/15")));
  EXPECT_TRUE(r.Contains(*Prefix::Parse("10.1.0.0/16")));
  EXPECT_TRUE(r.Contains(*Prefix::Parse("10.1.2.0/24")));
  EXPECT_FALSE(r.Contains(*Prefix::Parse("10.1.2.0/25")));
}

TEST(PrefixRangeTest, EmptyWindow) {
  EXPECT_TRUE(Range("10.0.0.0/8", 20, 16).IsEmpty());
  // Window entirely below the base length is infeasible.
  EXPECT_TRUE(Range("10.9.0.0/16", 4, 10).IsEmpty());
  EXPECT_FALSE(Range("10.9.0.0/16", 4, 16).IsEmpty());
}

TEST(PrefixRangeTest, ContainsRangeSameBase) {
  EXPECT_TRUE(Range("10.0.0.0/8", 8, 32).ContainsRange(Range("10.0.0.0/8", 16, 24)));
  EXPECT_FALSE(Range("10.0.0.0/8", 16, 24).ContainsRange(Range("10.0.0.0/8", 8, 32)));
  EXPECT_TRUE(Range("10.0.0.0/8", 16, 24).ContainsRange(Range("10.0.0.0/8", 16, 24)));
}

TEST(PrefixRangeTest, ContainsRangeNestedBase) {
  EXPECT_TRUE(
      Range("10.0.0.0/8", 8, 32).ContainsRange(Range("10.9.0.0/16", 16, 32)));
  // A longer base never contains a shorter one (free bits escape).
  EXPECT_FALSE(
      Range("10.9.0.0/16", 16, 32).ContainsRange(Range("10.0.0.0/8", 16, 32)));
}

TEST(PrefixRangeTest, ContainsRangeDisjointBases) {
  EXPECT_FALSE(
      Range("10.9.0.0/16", 16, 32).ContainsRange(Range("10.100.0.0/16", 16, 32)));
}

TEST(PrefixRangeTest, ContainsRangeWindowEscapes) {
  // Same base but the contained window reaches below: not contained.
  EXPECT_FALSE(
      Range("10.0.0.0/8", 16, 32).ContainsRange(Range("10.0.0.0/8", 10, 20)));
}

TEST(PrefixRangeTest, EmptyRangeContainedInEverything) {
  PrefixRange empty = Range("10.9.0.0/16", 4, 8);
  ASSERT_TRUE(empty.IsEmpty());
  EXPECT_TRUE(Range("99.0.0.0/8", 8, 8).ContainsRange(empty));
  EXPECT_FALSE(empty.ContainsRange(Range("99.0.0.0/8", 8, 8)));
}

TEST(PrefixRangeTest, IntersectSameBase) {
  auto meet = Range("10.0.0.0/8", 8, 20).Intersect(Range("10.0.0.0/8", 16, 32));
  ASSERT_TRUE(meet.has_value());
  EXPECT_EQ(*meet, Range("10.0.0.0/8", 16, 20));
}

TEST(PrefixRangeTest, IntersectNestedBaseTakesLonger) {
  auto meet =
      Range("10.0.0.0/8", 8, 32).Intersect(Range("10.9.0.0/16", 16, 24));
  ASSERT_TRUE(meet.has_value());
  EXPECT_EQ(meet->prefix(), *Prefix::Parse("10.9.0.0/16"));
  EXPECT_EQ(meet->low(), 16);
  EXPECT_EQ(meet->high(), 24);
}

TEST(PrefixRangeTest, IntersectDisjointBases) {
  EXPECT_FALSE(
      Range("10.9.0.0/16", 16, 32).Intersect(Range("10.100.0.0/16", 16, 32)));
}

TEST(PrefixRangeTest, IntersectEmptyWindow) {
  EXPECT_FALSE(
      Range("10.0.0.0/8", 8, 12).Intersect(Range("10.0.0.0/8", 16, 32)));
}

TEST(PrefixRangeTest, IntersectIsCommutative) {
  auto a = Range("10.0.0.0/8", 10, 28);
  auto b = Range("10.64.0.0/10", 12, 32);
  auto ab = a.Intersect(b);
  auto ba = b.Intersect(a);
  ASSERT_TRUE(ab.has_value());
  ASSERT_TRUE(ba.has_value());
  EXPECT_EQ(*ab, *ba);
}

TEST(PrefixRangeTest, ToStringMatchesPaperFormat) {
  EXPECT_EQ(Range("10.9.0.0/16", 16, 32).ToString(), "10.9.0.0/16 : 16-32");
}

TEST(PrefixRangeTest, IntersectionMembershipIsConjunction) {
  // Property: p in (a ^ b) iff p in a and p in b, over a sample of prefixes.
  auto a = Range("10.0.0.0/8", 12, 24);
  auto b = Range("10.16.0.0/12", 14, 30);
  auto meet = a.Intersect(b);
  ASSERT_TRUE(meet.has_value());
  for (std::uint32_t addr : {0x0A100000u, 0x0A180000u, 0x0A000000u,
                             0x0B000000u, 0x0A1F0000u}) {
    for (int len : {8, 12, 13, 14, 20, 24, 25, 30, 32}) {
      Prefix p(Ipv4Address(addr), len);
      EXPECT_EQ(meet->Contains(p), a.Contains(p) && b.Contains(p))
          << p.ToString();
    }
  }
}

TEST(PrefixRangeTermTest, ToStringWithExcludes) {
  PrefixRangeTerm term{Range("10.0.0.0/8", 8, 32),
                       {Range("10.9.0.0/16", 16, 32)}};
  EXPECT_EQ(term.ToString(),
            "10.0.0.0/8 : 8-32  minus  10.9.0.0/16 : 16-32");
}

}  // namespace
}  // namespace campion::util
