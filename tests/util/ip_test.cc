#include "util/ip.h"

#include <gtest/gtest.h>

#include <random>

namespace campion::util {
namespace {

TEST(Ipv4AddressTest, ParseValid) {
  auto addr = Ipv4Address::Parse("10.9.0.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->bits(), 0x0A090001u);
  EXPECT_EQ(addr->ToString(), "10.9.0.1");
}

TEST(Ipv4AddressTest, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::Parse("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255")->bits(), 0xFFFFFFFFu);
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0.1.2").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0.256").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0.-1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9..1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0.1 ").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
}

TEST(Ipv4AddressTest, ConstructorFromOctets) {
  Ipv4Address addr(192, 168, 1, 200);
  EXPECT_EQ(addr.ToString(), "192.168.1.200");
}

TEST(Ipv4AddressTest, BitIndexing) {
  Ipv4Address addr(0x80000001u);
  EXPECT_TRUE(addr.Bit(0));
  EXPECT_FALSE(addr.Bit(1));
  EXPECT_FALSE(addr.Bit(30));
  EXPECT_TRUE(addr.Bit(31));
}

TEST(Ipv4AddressTest, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

TEST(MaskTest, MaskBits) {
  EXPECT_EQ(MaskBits(0), 0u);
  EXPECT_EQ(MaskBits(8), 0xFF000000u);
  EXPECT_EQ(MaskBits(24), 0xFFFFFF00u);
  EXPECT_EQ(MaskBits(31), 0xFFFFFFFEu);
  EXPECT_EQ(MaskBits(32), 0xFFFFFFFFu);
}

TEST(MaskTest, MaskToLengthRoundTrip) {
  for (int len = 0; len <= 32; ++len) {
    auto back = MaskToLength(MaskBits(len));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, len);
  }
}

TEST(MaskTest, MaskToLengthRejectsNonContiguous) {
  EXPECT_FALSE(MaskToLength(0xFF00FF00u).has_value());
  EXPECT_FALSE(MaskToLength(0x00000001u).has_value());
  EXPECT_FALSE(MaskToLength(0xFFFFFF01u).has_value());
}

TEST(PrefixTest, HostBitsAreZeroed) {
  Prefix p(Ipv4Address(10, 9, 200, 77), 16);
  EXPECT_EQ(p.address().ToString(), "10.9.0.0");
  EXPECT_EQ(p.ToString(), "10.9.0.0/16");
}

TEST(PrefixTest, ParseValid) {
  auto p = Prefix::Parse("10.100.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->address(), Ipv4Address(10, 100, 0, 0));
}

TEST(PrefixTest, ParseCanonicalizes) {
  auto p = Prefix::Parse("10.100.3.7/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "10.100.0.0/16");
}

TEST(PrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::Parse("10.100.0.0").has_value());
  EXPECT_FALSE(Prefix::Parse("10.100.0.0/33").has_value());
  EXPECT_FALSE(Prefix::Parse("10.100.0.0/").has_value());
  EXPECT_FALSE(Prefix::Parse("10.100.0.0/16x").has_value());
  EXPECT_FALSE(Prefix::Parse("/16").has_value());
}

TEST(PrefixTest, ContainsAddress) {
  Prefix p(Ipv4Address(10, 9, 0, 0), 16);
  EXPECT_TRUE(p.Contains(Ipv4Address(10, 9, 1, 2)));
  EXPECT_TRUE(p.Contains(Ipv4Address(10, 9, 255, 255)));
  EXPECT_FALSE(p.Contains(Ipv4Address(10, 10, 0, 0)));
}

TEST(PrefixTest, ContainsPrefix) {
  Prefix wide(Ipv4Address(10, 0, 0, 0), 8);
  Prefix narrow(Ipv4Address(10, 9, 1, 0), 24);
  EXPECT_TRUE(wide.Contains(narrow));
  EXPECT_FALSE(narrow.Contains(wide));
  EXPECT_TRUE(wide.Contains(wide));
}

TEST(PrefixTest, ZeroLengthContainsEverything) {
  Prefix all(Ipv4Address(0), 0);
  EXPECT_TRUE(all.Contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(all.Contains(Prefix(Ipv4Address(1, 2, 3, 4), 32)));
}

TEST(IpWildcardTest, PrefixWildcardMatches) {
  IpWildcard w(Prefix(Ipv4Address(10, 9, 0, 0), 16));
  EXPECT_TRUE(w.Matches(Ipv4Address(10, 9, 42, 1)));
  EXPECT_FALSE(w.Matches(Ipv4Address(10, 8, 42, 1)));
}

TEST(IpWildcardTest, HostWildcard) {
  IpWildcard w(Ipv4Address(10, 1, 2, 3));
  EXPECT_TRUE(w.Matches(Ipv4Address(10, 1, 2, 3)));
  EXPECT_FALSE(w.Matches(Ipv4Address(10, 1, 2, 4)));
}

TEST(IpWildcardTest, AnyMatchesEverything) {
  EXPECT_TRUE(IpWildcard::Any().Matches(Ipv4Address(0)));
  EXPECT_TRUE(IpWildcard::Any().Matches(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(IpWildcard::Any().IsAny());
}

TEST(IpWildcardTest, ContiguousWildcardIsPrefixShaped) {
  // 9.140.0.0 with wildcard 0.0.1.255 is exactly the prefix 9.140.0.0/23.
  IpWildcard w(Ipv4Address(9, 140, 0, 0), 0x000001FFu);
  EXPECT_TRUE(w.Matches(Ipv4Address(9, 140, 0, 7)));
  EXPECT_TRUE(w.Matches(Ipv4Address(9, 140, 1, 200)));
  EXPECT_FALSE(w.Matches(Ipv4Address(9, 140, 2, 0)));
  auto p = w.AsPrefix();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "9.140.0.0/23");
}

TEST(IpWildcardTest, NonContiguousWildcard) {
  // Don't-care hole in the third octet only: matches 9.140.0.9 and
  // 9.140.1.9 but no other last octet.
  IpWildcard w(Ipv4Address(9, 140, 0, 9), 0x00000100u);
  EXPECT_TRUE(w.Matches(Ipv4Address(9, 140, 0, 9)));
  EXPECT_TRUE(w.Matches(Ipv4Address(9, 140, 1, 9)));
  EXPECT_FALSE(w.Matches(Ipv4Address(9, 140, 0, 8)));
  EXPECT_FALSE(w.AsPrefix().has_value());
}

TEST(IpWildcardTest, AsPrefixRoundTrip) {
  Prefix p(Ipv4Address(172, 16, 0, 0), 12);
  auto back = IpWildcard(p).AsPrefix();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(IpWildcardTest, ToStringFormat) {
  IpWildcard w(Ipv4Address(9, 140, 0, 0), 0x000001FFu);
  EXPECT_EQ(w.ToString(), "9.140.0.0 0.0.1.255");
}

// Regression: dotted-quad octets and prefix lengths with leading zeros
// ("010" reads as octal to historic tools) must be rejected, matching
// inet_pton. ParseDecimal previously accepted them as decimal, so
// "010.0.0.1" silently parsed as 10.0.0.1.
TEST(Ipv4AddressTest, ParseRejectsLeadingZeros) {
  EXPECT_FALSE(Ipv4Address::Parse("010.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.01.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.0.0.00").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/08").has_value());
  EXPECT_TRUE(Ipv4Address::Parse("0.0.0.0").has_value());  // Bare zero is fine.
  EXPECT_TRUE(Prefix::Parse("0.0.0.0/0").has_value());
}

TEST(Ipv6AddressTest, ParseBasicForms) {
  auto a = Ipv6Address::Parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->bits(), U128(0x20010db800000000ull, 1));

  EXPECT_EQ(Ipv6Address::Parse("::")->bits(), U128());
  EXPECT_EQ(Ipv6Address::Parse("::1")->bits(), U128(0, 1));
  EXPECT_EQ(Ipv6Address::Parse("ff02::")->bits(),
            U128(0xff02000000000000ull, 0));
  // All eight groups, no compression.
  EXPECT_EQ(Ipv6Address::Parse("1:2:3:4:5:6:7:8")->bits(),
            U128(0x0001000200030004ull, 0x0005000600070008ull));
  // Embedded dotted-quad in the last two groups.
  EXPECT_EQ(Ipv6Address::Parse("::ffff:10.0.0.1")->bits(),
            U128(0, 0xffff0a000001ull));
}

TEST(Ipv6AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::Parse("").has_value());
  EXPECT_FALSE(Ipv6Address::Parse(":").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("1::2::3").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("12345::").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("g::").has_value());
  EXPECT_FALSE(Ipv6Address::Parse("2001:db8::1 ").has_value());
}

TEST(Ipv6AddressTest, ToStringRfc5952Canonical) {
  // Lowercase, longest zero run compressed, leftmost on ties, no
  // compression of a single zero group.
  EXPECT_EQ(Ipv6Address().ToString(), "::");
  EXPECT_EQ(Ipv6Address(U128(0, 1)).ToString(), "::1");
  EXPECT_EQ(Ipv6Address::Parse("2001:DB8::1")->ToString(), "2001:db8::1");
  EXPECT_EQ(Ipv6Address::Parse("2001:db8:0:1:1:1:1:1")->ToString(),
            "2001:db8:0:1:1:1:1:1");
  EXPECT_EQ(Ipv6Address::Parse("2001:0:0:1:0:0:0:1")->ToString(),
            "2001:0:0:1::1");
  EXPECT_EQ(Ipv6Address::Parse("1:0:0:2:0:0:3:4")->ToString(),
            "1::2:0:0:3:4");
}

// Randomized RFC 5952 round-trip oracle: for any 128-bit value, ToString
// must re-parse to the same bits (canonical text is lossless).
TEST(Ipv6AddressTest, RandomizedRoundTrip) {
  std::mt19937_64 rng(5952);
  for (int trial = 0; trial < 2000; ++trial) {
    // Bias toward sparse group patterns so zero-run compression runs often.
    std::uint64_t hi = rng(), lo = rng();
    switch (rng() % 4) {
      case 0: break;                     // Full entropy.
      case 1: hi &= rng(); lo &= rng(); [[fallthrough]];
      case 2: hi &= rng(); lo &= rng(); break;
      default: {                         // A few nonzero groups only.
        hi = lo = 0;
        for (int g = 0; g < 3; ++g) {
          int slot = static_cast<int>(rng() % 8);
          std::uint64_t group = rng() & 0xffff;
          if (slot < 4) hi |= group << (48 - 16 * slot);
          else lo |= group << (48 - 16 * (slot - 4));
        }
        break;
      }
    }
    Ipv6Address addr(U128(hi, lo));
    auto back = Ipv6Address::Parse(addr.ToString());
    ASSERT_TRUE(back.has_value()) << addr.ToString();
    EXPECT_EQ(back->bits(), addr.bits()) << addr.ToString();
  }
}

TEST(Prefix6Test, ParseAndCanonicalize) {
  auto p = Prefix6::Parse("2001:db8::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(p->ToString(), "2001:db8::/32");
  // Host bits are zeroed.
  EXPECT_EQ(Prefix6::Parse("2001:db8::ff/32")->address().bits(),
            Prefix6::Parse("2001:db8::/32")->address().bits());
  EXPECT_FALSE(Prefix6::Parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Prefix6::Parse("2001:db8::").has_value());
}

TEST(IpPrefixTest, ParseEitherFamily) {
  auto v4 = IpPrefix::Parse("10.0.0.0/8");
  ASSERT_TRUE(v4.has_value());
  EXPECT_EQ(v4->family(), AddressFamily::kIpv4);
  EXPECT_EQ(v4->ToString(), "10.0.0.0/8");

  auto v6 = IpPrefix::Parse("2001:db8::/32");
  ASSERT_TRUE(v6.has_value());
  EXPECT_EQ(v6->family(), AddressFamily::kIpv6);
  EXPECT_EQ(v6->ToString(), "2001:db8::/32");

  // Containment never crosses families even when the bit patterns align.
  EXPECT_FALSE(v4->Contains(*v6));
  EXPECT_FALSE(v6->Contains(*v4));
}

TEST(IpWildcardTest, Ipv6PrefixShapedWildcard) {
  IpWildcard w(*Prefix6::Parse("2001:db8::/32"));
  EXPECT_EQ(w.family(), AddressFamily::kIpv6);
  EXPECT_TRUE(w.Matches(*Ipv6Address::Parse("2001:db8::1")));
  EXPECT_FALSE(w.Matches(*Ipv6Address::Parse("2001:db9::1")));
  // A v4 address never matches a v6 wildcard.
  EXPECT_FALSE(w.Matches(Ipv4Address(10, 0, 0, 1)));
  auto back = w.AsIpPrefix();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ToString(), "2001:db8::/32");
  EXPECT_FALSE(w.AsPrefix().has_value());  // 32-bit view is v4-only.
}

TEST(IpWildcardTest, AnyOfEachFamily) {
  EXPECT_TRUE(IpWildcard::AnyOf(AddressFamily::kIpv4).IsAny());
  EXPECT_TRUE(IpWildcard::AnyOf(AddressFamily::kIpv6).IsAny());
  EXPECT_EQ(IpWildcard::AnyOf(AddressFamily::kIpv4).family(),
            AddressFamily::kIpv4);
  EXPECT_EQ(IpWildcard::AnyOf(AddressFamily::kIpv6).family(),
            AddressFamily::kIpv6);
}

}  // namespace
}  // namespace campion::util
