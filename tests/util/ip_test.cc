#include "util/ip.h"

#include <gtest/gtest.h>

namespace campion::util {
namespace {

TEST(Ipv4AddressTest, ParseValid) {
  auto addr = Ipv4Address::Parse("10.9.0.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->bits(), 0x0A090001u);
  EXPECT_EQ(addr->ToString(), "10.9.0.1");
}

TEST(Ipv4AddressTest, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::Parse("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255")->bits(), 0xFFFFFFFFu);
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0.1.2").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0.256").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0.-1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9..1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("10.9.0.1 ").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
}

TEST(Ipv4AddressTest, ConstructorFromOctets) {
  Ipv4Address addr(192, 168, 1, 200);
  EXPECT_EQ(addr.ToString(), "192.168.1.200");
}

TEST(Ipv4AddressTest, BitIndexing) {
  Ipv4Address addr(0x80000001u);
  EXPECT_TRUE(addr.Bit(0));
  EXPECT_FALSE(addr.Bit(1));
  EXPECT_FALSE(addr.Bit(30));
  EXPECT_TRUE(addr.Bit(31));
}

TEST(Ipv4AddressTest, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

TEST(MaskTest, MaskBits) {
  EXPECT_EQ(MaskBits(0), 0u);
  EXPECT_EQ(MaskBits(8), 0xFF000000u);
  EXPECT_EQ(MaskBits(24), 0xFFFFFF00u);
  EXPECT_EQ(MaskBits(31), 0xFFFFFFFEu);
  EXPECT_EQ(MaskBits(32), 0xFFFFFFFFu);
}

TEST(MaskTest, MaskToLengthRoundTrip) {
  for (int len = 0; len <= 32; ++len) {
    auto back = MaskToLength(MaskBits(len));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, len);
  }
}

TEST(MaskTest, MaskToLengthRejectsNonContiguous) {
  EXPECT_FALSE(MaskToLength(0xFF00FF00u).has_value());
  EXPECT_FALSE(MaskToLength(0x00000001u).has_value());
  EXPECT_FALSE(MaskToLength(0xFFFFFF01u).has_value());
}

TEST(PrefixTest, HostBitsAreZeroed) {
  Prefix p(Ipv4Address(10, 9, 200, 77), 16);
  EXPECT_EQ(p.address().ToString(), "10.9.0.0");
  EXPECT_EQ(p.ToString(), "10.9.0.0/16");
}

TEST(PrefixTest, ParseValid) {
  auto p = Prefix::Parse("10.100.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->address(), Ipv4Address(10, 100, 0, 0));
}

TEST(PrefixTest, ParseCanonicalizes) {
  auto p = Prefix::Parse("10.100.3.7/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "10.100.0.0/16");
}

TEST(PrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::Parse("10.100.0.0").has_value());
  EXPECT_FALSE(Prefix::Parse("10.100.0.0/33").has_value());
  EXPECT_FALSE(Prefix::Parse("10.100.0.0/").has_value());
  EXPECT_FALSE(Prefix::Parse("10.100.0.0/16x").has_value());
  EXPECT_FALSE(Prefix::Parse("/16").has_value());
}

TEST(PrefixTest, ContainsAddress) {
  Prefix p(Ipv4Address(10, 9, 0, 0), 16);
  EXPECT_TRUE(p.Contains(Ipv4Address(10, 9, 1, 2)));
  EXPECT_TRUE(p.Contains(Ipv4Address(10, 9, 255, 255)));
  EXPECT_FALSE(p.Contains(Ipv4Address(10, 10, 0, 0)));
}

TEST(PrefixTest, ContainsPrefix) {
  Prefix wide(Ipv4Address(10, 0, 0, 0), 8);
  Prefix narrow(Ipv4Address(10, 9, 1, 0), 24);
  EXPECT_TRUE(wide.Contains(narrow));
  EXPECT_FALSE(narrow.Contains(wide));
  EXPECT_TRUE(wide.Contains(wide));
}

TEST(PrefixTest, ZeroLengthContainsEverything) {
  Prefix all(Ipv4Address(0), 0);
  EXPECT_TRUE(all.Contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(all.Contains(Prefix(Ipv4Address(1, 2, 3, 4), 32)));
}

TEST(IpWildcardTest, PrefixWildcardMatches) {
  IpWildcard w(Prefix(Ipv4Address(10, 9, 0, 0), 16));
  EXPECT_TRUE(w.Matches(Ipv4Address(10, 9, 42, 1)));
  EXPECT_FALSE(w.Matches(Ipv4Address(10, 8, 42, 1)));
}

TEST(IpWildcardTest, HostWildcard) {
  IpWildcard w(Ipv4Address(10, 1, 2, 3));
  EXPECT_TRUE(w.Matches(Ipv4Address(10, 1, 2, 3)));
  EXPECT_FALSE(w.Matches(Ipv4Address(10, 1, 2, 4)));
}

TEST(IpWildcardTest, AnyMatchesEverything) {
  EXPECT_TRUE(IpWildcard::Any().Matches(Ipv4Address(0)));
  EXPECT_TRUE(IpWildcard::Any().Matches(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(IpWildcard::Any().IsAny());
}

TEST(IpWildcardTest, ContiguousWildcardIsPrefixShaped) {
  // 9.140.0.0 with wildcard 0.0.1.255 is exactly the prefix 9.140.0.0/23.
  IpWildcard w(Ipv4Address(9, 140, 0, 0), 0x000001FFu);
  EXPECT_TRUE(w.Matches(Ipv4Address(9, 140, 0, 7)));
  EXPECT_TRUE(w.Matches(Ipv4Address(9, 140, 1, 200)));
  EXPECT_FALSE(w.Matches(Ipv4Address(9, 140, 2, 0)));
  auto p = w.AsPrefix();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "9.140.0.0/23");
}

TEST(IpWildcardTest, NonContiguousWildcard) {
  // Don't-care hole in the third octet only: matches 9.140.0.9 and
  // 9.140.1.9 but no other last octet.
  IpWildcard w(Ipv4Address(9, 140, 0, 9), 0x00000100u);
  EXPECT_TRUE(w.Matches(Ipv4Address(9, 140, 0, 9)));
  EXPECT_TRUE(w.Matches(Ipv4Address(9, 140, 1, 9)));
  EXPECT_FALSE(w.Matches(Ipv4Address(9, 140, 0, 8)));
  EXPECT_FALSE(w.AsPrefix().has_value());
}

TEST(IpWildcardTest, AsPrefixRoundTrip) {
  Prefix p(Ipv4Address(172, 16, 0, 0), 12);
  auto back = IpWildcard(p).AsPrefix();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(IpWildcardTest, ToStringFormat) {
  IpWildcard w(Ipv4Address(9, 140, 0, 0), 0x000001FFu);
  EXPECT_EQ(w.ToString(), "9.140.0.0 0.0.1.255");
}

}  // namespace
}  // namespace campion::util
