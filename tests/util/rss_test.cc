// Tests for the process-memory sampler. On Linux /proc/self/status is
// always present, so a real sample must come back; elsewhere the sampler
// degrades to zeros and Available() is false.

#include <gtest/gtest.h>

#include <vector>

#include "util/rss.h"

namespace campion::util {
namespace {

TEST(RssTest, SampleIsInternallyConsistent) {
  MemorySample sample = SampleProcessMemory();
#ifdef __linux__
  ASSERT_TRUE(sample.Available());
  EXPECT_GT(sample.rss_bytes, 0u);
  // The high-water mark can never be below the current resident size.
  EXPECT_GE(sample.peak_rss_bytes, sample.rss_bytes);
#else
  EXPECT_FALSE(sample.Available());
  EXPECT_EQ(sample.rss_bytes, 0u);
  EXPECT_EQ(sample.peak_rss_bytes, 0u);
#endif
}

TEST(RssTest, PeakIsMonotoneAcrossSamples) {
  MemorySample first = SampleProcessMemory();
  // Touch some memory so the second sample has at least as much history.
  std::vector<char> ballast(1 << 20, 'x');
  MemorySample second = SampleProcessMemory();
  EXPECT_EQ(ballast[12345], 'x');  // Keeps the allocation live.
  EXPECT_GE(second.peak_rss_bytes, first.peak_rss_bytes);
}

}  // namespace
}  // namespace campion::util
