// Tests for the minimal JSON reader in util/json: round-trips of the
// document shapes this repo emits (traces, metric dumps), key-order
// preservation, escape handling, and the malformed-input error paths the
// trace-diff tool relies on.

#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace campion::util {
namespace {

JsonValue ParseOrDie(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, value, &error)) << error << "\n" << text;
  return value;
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_EQ(ParseOrDie("null").type, JsonValue::Type::kNull);
  EXPECT_TRUE(ParseOrDie("true").boolean);
  EXPECT_FALSE(ParseOrDie("false").boolean);
  EXPECT_DOUBLE_EQ(ParseOrDie("42").number, 42.0);
  EXPECT_DOUBLE_EQ(ParseOrDie("-3.5e2").number, -350.0);
  EXPECT_EQ(ParseOrDie("\"hi\"").string, "hi");
}

TEST(JsonTest, ParsesNestedContainers) {
  JsonValue value = ParseOrDie(
      "{\"spans\": [{\"name\": \"config_diff\", \"duration_ns\": 12}],"
      " \"metrics\": {\"bdd.nodes\": 7}}");
  ASSERT_TRUE(value.IsObject());
  const JsonValue* spans = value.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->IsArray());
  ASSERT_EQ(spans->array.size(), 1u);
  const JsonValue& span = spans->array[0];
  ASSERT_NE(span.Find("name"), nullptr);
  EXPECT_EQ(span.Find("name")->string, "config_diff");
  EXPECT_DOUBLE_EQ(span.NumberOr("duration_ns", -1), 12.0);
  EXPECT_DOUBLE_EQ(span.NumberOr("absent", -1), -1.0);
  const JsonValue* metrics = value.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->NumberOr("bdd.nodes", 0), 7.0);
}

TEST(JsonTest, ObjectsPreserveKeyOrderAsWritten) {
  JsonValue value = ParseOrDie("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_EQ(value.object.size(), 3u);
  EXPECT_EQ(value.object[0].first, "z");
  EXPECT_EQ(value.object[1].first, "a");
  EXPECT_EQ(value.object[2].first, "m");
}

TEST(JsonTest, RoundTripsEscapedStrings) {
  // What JsonEscape produces, ParseJson must read back verbatim.
  const std::string original = "tab\there \"quoted\" back\\slash\nnewline";
  JsonValue value = ParseOrDie("\"" + JsonEscape(original) + "\"");
  EXPECT_EQ(value.string, original);
}

TEST(JsonTest, UnicodeEscapesDecodeToPlaceholder) {
  // Non-control \u escapes decode to '?' — enough for our own documents,
  // which never emit them (documented in util/json.h).
  EXPECT_EQ(ParseOrDie("\"a\\u00e9b\"").string, "a?b");
}

TEST(JsonTest, RejectsMalformedInputWithOffset) {
  const char* bad[] = {
      "",                      // empty
      "{",                     // unterminated object
      "[1, 2",                 // unterminated array
      "{\"a\" 1}",             // missing colon
      "{\"a\": 1,}",           // trailing comma
      "\"unterminated",        // unterminated string
      "nul",                   // bad literal
      "1 2",                   // trailing garbage
      "{\"a\": 1} x",          // trailing garbage after object
  };
  for (const char* text : bad) {
    JsonValue value;
    std::string error;
    EXPECT_FALSE(ParseJson(text, value, &error)) << text;
    EXPECT_NE(error.find("at byte"), std::string::npos)
        << "error lacks byte offset for: " << text << " -> " << error;
  }
}

TEST(JsonTest, ErrorPointerIsOptional) {
  JsonValue value;
  EXPECT_FALSE(ParseJson("{", value));  // must not crash with null error.
}

TEST(JsonTest, JsonNumberSpellsIntegersWithoutDecimalPoint) {
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-7.0), "-7");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
}

}  // namespace
}  // namespace campion::util
