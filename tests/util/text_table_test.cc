#include "util/text_table.h"

#include <gtest/gtest.h>

#include "util/source_span.h"

namespace campion::util {
namespace {

TEST(SplitLinesTest, Basic) {
  EXPECT_EQ(SplitLines("a\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitLines("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(SplitLines(""), (std::vector<std::string>{""}));
}

TEST(SplitLinesTest, TrailingNewlineDropsEmptyTail) {
  EXPECT_EQ(SplitLines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
}

TEST(SplitLinesTest, EmbeddedEmptyLinesKept) {
  EXPECT_EQ(SplitLines("a\n\nb"), (std::vector<std::string>{"a", "", "b"}));
}

TEST(JoinLinesTest, Basic) {
  EXPECT_EQ(JoinLines({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinLines({}, ", "), "");
  EXPECT_EQ(JoinLines({"solo"}, ", "), "solo");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"", "left", "right"});
  table.AddRow({"Field", "x", "yyyy"});
  std::string out = table.Render();
  // Every rendered line has the same width.
  auto lines = SplitLines(out);
  ASSERT_GE(lines.size(), 5u);
  for (const auto& line : lines) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), lines[0].size()) << line;
    }
  }
  EXPECT_NE(out.find("| Field |"), std::string::npos);
}

TEST(TextTableTest, MultiLineCells) {
  TextTable table({"", "a", "b"});
  table.AddRow({"Ranges", "1.0.0.0/8\n2.0.0.0/8", "one-liner"});
  std::string out = table.Render();
  EXPECT_NE(out.find("1.0.0.0/8"), std::string::npos);
  EXPECT_NE(out.find("2.0.0.0/8"), std::string::npos);
  // The two range lines occupy separate rendered lines.
  EXPECT_LT(out.find("1.0.0.0/8"), out.find("2.0.0.0/8"));
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable table({"", "a", "b"});
  table.AddRow({"OnlyField"});
  std::string out = table.Render();
  EXPECT_NE(out.find("OnlyField"), std::string::npos);
}

TEST(SourceSpanTest, LocationString) {
  SourceSpan span{"router.cfg", 7, 8, "line7\nline8"};
  EXPECT_EQ(span.LocationString(), "router.cfg:7-8");
  SourceSpan single{"router.cfg", 7, 7, "line7"};
  EXPECT_EQ(single.LocationString(), "router.cfg:7");
  SourceSpan generated;
  EXPECT_EQ(generated.LocationString(), "<generated>");
  EXPECT_FALSE(generated.HasLocation());
}

}  // namespace
}  // namespace campion::util
