#include "gen/acl_gen.h"

#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "core/semantic_diff.h"
#include "encode/packet.h"

namespace campion::gen {
namespace {

TEST(AclGenTest, GeneratesRequestedRuleCount) {
  AclGenOptions options;
  options.rules = 120;
  options.differences = 0;
  auto pair = GenerateAclPair(options);
  EXPECT_EQ(pair.acl1.lines.size(), 120u);
  EXPECT_EQ(pair.acl2.lines.size(), 120u);
  EXPECT_TRUE(pair.injected.empty());
}

TEST(AclGenTest, ZeroDifferencesMeansEquivalent) {
  AclGenOptions options;
  options.rules = 150;
  options.differences = 0;
  auto pair = GenerateAclPair(options);
  bdd::BddManager mgr;
  encode::PacketLayout layout(mgr);
  EXPECT_TRUE(core::SemanticDiffAcls(layout, pair.acl1, pair.acl2).empty());
}

TEST(AclGenTest, DeterministicForSeed) {
  AclGenOptions options;
  options.rules = 80;
  options.differences = 5;
  options.seed = 123;
  auto a = GenerateAclPair(options);
  auto b = GenerateAclPair(options);
  ASSERT_EQ(a.acl1.lines.size(), b.acl1.lines.size());
  for (std::size_t i = 0; i < a.acl1.lines.size(); ++i) {
    EXPECT_EQ(a.acl1.lines[i].src, b.acl1.lines[i].src);
    EXPECT_EQ(a.acl1.lines[i].dst, b.acl1.lines[i].dst);
    EXPECT_EQ(a.acl1.lines[i].action, b.acl1.lines[i].action);
  }
  EXPECT_EQ(a.injected, b.injected);
}

TEST(AclGenTest, DifferentSeedsDiffer) {
  AclGenOptions options;
  options.rules = 80;
  options.differences = 0;
  options.seed = 1;
  auto a = GenerateAclPair(options);
  options.seed = 2;
  auto b = GenerateAclPair(options);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.acl1.lines.size(); ++i) {
    if (!(a.acl1.lines[i].src == b.acl1.lines[i].src)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(AclGenTest, InjectedDifferencesAreDetectable) {
  AclGenOptions options;
  options.rules = 100;
  options.differences = 10;
  options.seed = 7;
  auto pair = GenerateAclPair(options);
  EXPECT_EQ(pair.injected.size(), 10u);
  bdd::BddManager mgr;
  encode::PacketLayout layout(mgr);
  auto diffs = core::SemanticDiffAcls(layout, pair.acl1, pair.acl2);
  EXPECT_FALSE(diffs.empty());
}

TEST(AclGenTest, WrapBindsAclToInterface) {
  AclGenOptions options;
  options.rules = 10;
  options.differences = 0;
  auto pair = GenerateAclPair(options);
  auto cisco = WrapAclInConfig(pair.acl1, "gw-1", ir::Vendor::kCisco);
  EXPECT_EQ(cisco.hostname, "gw-1");
  EXPECT_EQ(cisco.vendor, ir::Vendor::kCisco);
  ASSERT_NE(cisco.FindAcl(pair.acl1.name), nullptr);
  ASSERT_EQ(cisco.interfaces.size(), 1u);
  EXPECT_EQ(cisco.interfaces[0].in_acl, pair.acl1.name);
}

TEST(AclGenTest, GeneratedLinesHavePrefixShapedAddresses) {
  AclGenOptions options;
  options.rules = 50;
  options.differences = 0;
  auto pair = GenerateAclPair(options);
  for (const auto& line : pair.acl1.lines) {
    EXPECT_TRUE(line.src.AsPrefix().has_value());
    EXPECT_TRUE(line.dst.AsPrefix().has_value());
  }
}

}  // namespace
}  // namespace campion::gen
