// ConfigCanonicalKey / ConfigFingerprint: the result-cache key must cover
// everything the rendered report can depend on — in particular the fields
// the PR 5 structural keys deliberately omit (ACL actions, object names,
// source spans, hostnames). Two configs whose structural keys collide must
// still fingerprint apart whenever their reports could differ by a byte.

#include "encode/fingerprint.h"

#include <gtest/gtest.h>

#include <string>

#include "encode/encoding_template.h"
#include "frontend/loader.h"
#include "ir/config.h"

namespace campion::encode {
namespace {

ir::RouterConfig Load(const std::string& text) {
  return frontend::LoadConfig(text, "config1", ir::Vendor::kCisco).config;
}

constexpr const char* kBase =
    "hostname r1\n"
    "!\n"
    "ip access-list extended FILTER\n"
    " permit tcp 10.0.0.0 0.0.0.255 any eq 80\n"
    " deny ip any any\n"
    "!\n"
    "interface GigabitEthernet0/0\n"
    " ip address 192.168.1.1 255.255.255.0\n"
    " ip access-group FILTER in\n"
    "!\n";

TEST(ConfigFingerprintTest, IdenticalTextsProduceIdenticalKeys) {
  EXPECT_EQ(ConfigCanonicalKey(Load(kBase)), ConfigCanonicalKey(Load(kBase)));
  EXPECT_EQ(ConfigFingerprint(Load(kBase)), ConfigFingerprint(Load(kBase)));
}

// The adversarial collision from the PR 5 key: identical match fields,
// flipped action. AclLineMatchKey cannot see the flip (by design — the
// template only encodes matches); the canonical key must.
TEST(ConfigFingerprintTest, AclActionFlipChangesKeyDespiteStructuralCollision) {
  ir::RouterConfig permit = Load(kBase);
  std::string flipped_text = kBase;
  flipped_text.replace(flipped_text.find(" permit tcp"), 11, " deny   tcp");
  ir::RouterConfig deny = Load(flipped_text);

  // Same structural (template) key: matches are untouched.
  ASSERT_EQ(AclLineMatchKey(permit.acls.at("FILTER").lines[0]),
            AclLineMatchKey(deny.acls.at("FILTER").lines[0]));
  // Different canonical key: the report renders the action.
  EXPECT_NE(ConfigCanonicalKey(permit), ConfigCanonicalKey(deny));
  EXPECT_NE(ConfigFingerprint(permit), ConfigFingerprint(deny));
}

TEST(ConfigFingerprintTest, RenamedAclChangesKey) {
  std::string renamed = kBase;
  while (renamed.find("FILTER") != std::string::npos) {
    renamed.replace(renamed.find("FILTER"), 6, "GUARD2");
  }
  EXPECT_NE(ConfigCanonicalKey(Load(kBase)), ConfigCanonicalKey(Load(renamed)));
}

TEST(ConfigFingerprintTest, HostnameChangesKey) {
  std::string renamed = kBase;
  renamed.replace(renamed.find("hostname r1"), 11, "hostname r2");
  EXPECT_NE(ConfigCanonicalKey(Load(kBase)), ConfigCanonicalKey(Load(renamed)));
}

// Reports cite <file>:<line> locations, so a pure layout change (an extra
// comment line shifting every subsequent span) must miss the cache even
// though the semantics are untouched.
TEST(ConfigFingerprintTest, LineShiftChangesKey) {
  const std::string shifted = "! leading comment\n" + std::string(kBase);
  EXPECT_NE(ConfigCanonicalKey(Load(kBase)), ConfigCanonicalKey(Load(shifted)));
}

TEST(ConfigFingerprintTest, KeyIsInsensitiveToPerformanceIrrelevantCopies) {
  // A config copied through the IR (not reparsed) keys identically.
  ir::RouterConfig original = Load(kBase);
  ir::RouterConfig copy = original;
  EXPECT_EQ(ConfigCanonicalKey(original), ConfigCanonicalKey(copy));
}

}  // namespace
}  // namespace campion::encode
