#include "encode/symbolic_field.h"

#include <gtest/gtest.h>

namespace campion::encode {
namespace {

using bdd::BddManager;
using bdd::BddRef;

class SymbolicFieldTest : public ::testing::Test {
 protected:
  SymbolicFieldTest() : mgr_(8), field_(0, 8) {}

  // Evaluates f on the assignment where the field carries `value`.
  bool Eval(BddRef f, std::uint32_t value) {
    BddRef point = field_.EqualsConst(mgr_, value);
    return mgr_.Intersects(point, f);
  }

  BddManager mgr_;
  SymbolicField field_;
};

TEST_F(SymbolicFieldTest, EqualsConst) {
  BddRef f = field_.EqualsConst(mgr_, 42);
  for (std::uint32_t v = 0; v < 256; ++v) {
    EXPECT_EQ(Eval(f, v), v == 42) << v;
  }
}

TEST_F(SymbolicFieldTest, LeqExhaustive) {
  for (std::uint32_t bound : {0u, 1u, 7u, 128u, 254u, 255u}) {
    BddRef f = field_.Leq(mgr_, bound);
    for (std::uint32_t v = 0; v < 256; ++v) {
      EXPECT_EQ(Eval(f, v), v <= bound) << "bound=" << bound << " v=" << v;
    }
  }
}

TEST_F(SymbolicFieldTest, GeqExhaustive) {
  for (std::uint32_t bound : {0u, 1u, 100u, 255u}) {
    BddRef f = field_.Geq(mgr_, bound);
    for (std::uint32_t v = 0; v < 256; ++v) {
      EXPECT_EQ(Eval(f, v), v >= bound) << "bound=" << bound << " v=" << v;
    }
  }
}

TEST_F(SymbolicFieldTest, InRangeExhaustive) {
  BddRef f = field_.InRange(mgr_, 16, 32);
  for (std::uint32_t v = 0; v < 256; ++v) {
    EXPECT_EQ(Eval(f, v), v >= 16 && v <= 32) << v;
  }
}

TEST_F(SymbolicFieldTest, InRangeEmptyWhenInverted) {
  EXPECT_EQ(field_.InRange(mgr_, 32, 16), mgr_.False());
}

TEST_F(SymbolicFieldTest, InRangeFullWidth) {
  EXPECT_EQ(field_.InRange(mgr_, 0, 255), mgr_.True());
}

TEST_F(SymbolicFieldTest, MatchPrefixBits) {
  // Top 4 bits equal to 0b1010 (value 0xA0 left-aligned).
  BddRef f = field_.MatchPrefixBits(mgr_, 0xA0, 4);
  for (std::uint32_t v = 0; v < 256; ++v) {
    EXPECT_EQ(Eval(f, v), (v >> 4) == 0xA) << v;
  }
}

TEST_F(SymbolicFieldTest, MatchPrefixBitsZeroLengthIsTrue) {
  EXPECT_EQ(field_.MatchPrefixBits(mgr_, 0xFF, 0), mgr_.True());
}

TEST_F(SymbolicFieldTest, MatchMaskedWildcard) {
  // Care only about bits 0 and 7 (MSB and LSB): value 0x81.
  BddRef f = field_.MatchMasked(mgr_, 0x81, 0x81);
  for (std::uint32_t v = 0; v < 256; ++v) {
    EXPECT_EQ(Eval(f, v), (v & 0x81) == 0x81) << v;
  }
}

TEST_F(SymbolicFieldTest, DecodeReadsCube) {
  BddRef f = field_.EqualsConst(mgr_, 0xC3);
  auto cube = mgr_.AnySat(f);
  ASSERT_TRUE(cube.has_value());
  EXPECT_EQ(field_.Decode(*cube), 0xC3u);
}

TEST_F(SymbolicFieldTest, DecodeDontCaresAsZero) {
  bdd::Cube cube(8, -1);
  cube[0] = 1;  // MSB set, everything else don't-care.
  EXPECT_EQ(field_.Decode(cube), 0x80u);
}

TEST(SymbolicFieldOffsetTest, FieldsAtNonZeroOffset) {
  BddManager mgr(20);
  SymbolicField a(4, 8);
  SymbolicField b(12, 8);
  BddRef f = mgr.And(a.EqualsConst(mgr, 7), b.EqualsConst(mgr, 200));
  auto cube = mgr.AnySat(f);
  ASSERT_TRUE(cube.has_value());
  EXPECT_EQ(a.Decode(*cube), 7u);
  EXPECT_EQ(b.Decode(*cube), 200u);
}

}  // namespace
}  // namespace campion::encode
