#include "encode/encoding_template.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bdd/bdd.h"
#include "core/config_diff.h"
#include "encode/packet.h"
#include "encode/policy_encoder.h"
#include "encode/route_adv.h"
#include "gen/acl_gen.h"
#include "gen/route_map_gen.h"
#include "ir/config.h"
#include "obs/trace.h"
#include "util/ip.h"

namespace campion::encode {
namespace {

// The route-map generator emits the map and its lists but no BGP session;
// ConfigDiff only diffs maps that a paired neighbor references, so wire
// the generated map up as an import policy on both sides.
void AttachMapToNeighbor(ir::RouterConfig* config, const std::string& map) {
  ir::BgpProcess bgp;
  bgp.asn = 65000;
  ir::BgpNeighbor neighbor;
  neighbor.ip = util::Ipv4Address(10, 0, 0, 1);
  neighbor.remote_as = 65001;
  neighbor.import_policy = map;
  bgp.neighbors.push_back(neighbor);
  config->bgp = bgp;
}

// SeedFrom is the load-bearing primitive: template refs are only reusable
// in a pair manager because the seeded arena keeps every node at its
// original index with its original parity.
TEST(SeedFromTest, SeededRefsDenoteSameFunctions) {
  bdd::BddManager a(8);
  bdd::BddRef f = a.And(a.VarTrue(0), a.VarTrue(3));
  bdd::BddRef g = a.Or(f, a.VarFalse(5));
  bdd::BddRef h = a.Xor(g, a.VarTrue(7));

  bdd::BddManager b;
  b.SeedFrom(a);
  EXPECT_TRUE(b.CheckInvariants());
  EXPECT_EQ(b.num_vars(), a.num_vars());
  EXPECT_EQ(b.ArenaSize(), a.ArenaSize());

  // Re-deriving the same functions re-interns to the identical refs.
  EXPECT_EQ(b.And(b.VarTrue(0), b.VarTrue(3)), f);
  EXPECT_EQ(b.Or(f, b.VarFalse(5)), g);
  EXPECT_EQ(b.Xor(g, b.VarTrue(7)), h);

  // New work on top of the snapshot keeps the structure sound and leaves
  // the donor untouched.
  bdd::BddRef extra = b.And(h, b.VarTrue(1));
  EXPECT_NE(extra, bdd::kFalse);
  EXPECT_TRUE(b.CheckInvariants());
  EXPECT_TRUE(a.CheckInvariants());
  EXPECT_GE(b.ArenaSize(), a.ArenaSize());
}

// A template lookup must hand back exactly the ref a seeded pair manager
// would reach by encoding the object from scratch — that equality is what
// lets BuildAclClasses / PolicyEncoder substitute lookups for encodings
// without changing any downstream BDD.
TEST(EncodingTemplateTest, RouteLookupsMatchFreshEncodingsInSeededManager) {
  gen::RouteMapGenOptions options;
  options.seed = 7;
  options.clauses = 8;
  options.differences = 2;
  auto pair = gen::GenerateRouteMapPair(options);
  EncodingTemplate tmpl(pair.config1, pair.config2);
  ASSERT_TRUE(tmpl.has_route_side());
  ASSERT_GT(tmpl.unique_prefix_lists(), 0u);

  for (const ir::RouterConfig* config : {&pair.config1, &pair.config2}) {
    bdd::BddManager mgr;
    mgr.SeedFrom(tmpl.route_manager());
    RouteAdvLayout layout(mgr, tmpl.route_layout());
    PolicyEncoder fresh(layout, *config);  // No template: encodes anew.
    for (const auto& [name, list] : config->prefix_lists) {
      auto templated = tmpl.PrefixListPermits(list);
      ASSERT_TRUE(templated.has_value()) << "prefix list " << name;
      EXPECT_EQ(fresh.PrefixListPermits(list), *templated)
          << "prefix list " << name;
    }
    for (const auto& [name, list] : config->community_lists) {
      auto templated = tmpl.CommunityListPermits(list);
      ASSERT_TRUE(templated.has_value()) << "community list " << name;
      EXPECT_EQ(fresh.CommunityListPermits(list), *templated)
          << "community list " << name;
    }
    EXPECT_TRUE(mgr.CheckInvariants());
  }
}

TEST(EncodingTemplateTest, AclLineLookupsMatchFreshEncodings) {
  gen::AclGenOptions options;
  options.rules = 60;
  options.seed = 11;
  options.differences = 4;
  auto pair = gen::GenerateAclPair(options);
  auto config1 = gen::WrapAclInConfig(pair.acl1, "r1", ir::Vendor::kCisco);
  auto config2 = gen::WrapAclInConfig(pair.acl2, "r2", ir::Vendor::kCisco);
  EncodingTemplate tmpl(config1, config2);
  ASSERT_TRUE(tmpl.has_packet_side());
  ASSERT_GT(tmpl.unique_acl_lines(), 0u);

  bdd::BddManager mgr;
  mgr.SeedFrom(tmpl.packet_manager());
  PacketLayout layout(mgr, tmpl.packet_layout());
  for (const ir::Acl* acl : {&pair.acl1, &pair.acl2}) {
    for (const auto& line : acl->lines) {
      auto templated = tmpl.AclLineMatch(line);
      ASSERT_TRUE(templated.has_value());
      EXPECT_EQ(layout.MatchLine(line), *templated);
    }
  }
  EXPECT_TRUE(mgr.CheckInvariants());
}

// The headline guarantee: the template is purely a performance lever.
// Randomized pairs with injected differences must render byte-identically
// with the template on or off, serial or parallel.
TEST(EncodingTemplateTest, RouteMapReportsByteIdenticalOnOff) {
  for (std::uint64_t seed : {1, 2, 3}) {
    gen::RouteMapGenOptions options;
    options.seed = seed;
    options.clauses = 6;
    options.differences = 2;
    auto pair = gen::GenerateRouteMapPair(options);
    AttachMapToNeighbor(&pair.config1, pair.map_name);
    AttachMapToNeighbor(&pair.config2, pair.map_name);

    auto render = [&](bool with_template, unsigned threads) {
      core::DiffOptions diff_options;
      diff_options.use_encoding_template = with_template;
      diff_options.num_threads = threads;
      return core::ConfigDiff(pair.config1, pair.config2, diff_options)
          .Render();
    };
    std::string base = render(false, 1);
    EXPECT_FALSE(base.empty()) << "seed " << seed;
    EXPECT_EQ(render(true, 1), base) << "seed " << seed;
    EXPECT_EQ(render(false, 4), base) << "seed " << seed;
    EXPECT_EQ(render(true, 4), base) << "seed " << seed;
  }
}

TEST(EncodingTemplateTest, AclReportsByteIdenticalOnOff) {
  for (std::uint64_t seed : {5, 6}) {
    gen::AclGenOptions options;
    options.rules = 40;
    options.seed = seed;
    options.differences = 3;
    auto pair = gen::GenerateAclPair(options);
    auto config1 = gen::WrapAclInConfig(pair.acl1, "r1", ir::Vendor::kCisco);
    auto config2 = gen::WrapAclInConfig(pair.acl2, "r2", ir::Vendor::kCisco);

    auto render = [&](bool with_template, unsigned threads) {
      core::DiffOptions diff_options;
      diff_options.use_encoding_template = with_template;
      diff_options.num_threads = threads;
      return core::ConfigDiff(config1, config2, diff_options).Render();
    };
    std::string base = render(false, 1);
    EXPECT_FALSE(base.empty()) << "seed " << seed;
    EXPECT_EQ(render(true, 1), base) << "seed " << seed;
    EXPECT_EQ(render(false, 4), base) << "seed " << seed;
    EXPECT_EQ(render(true, 4), base) << "seed " << seed;
  }
}

// Collects (span name + detail, bdd_nodes attr) for every per-pair span in
// the trace tree, in tree order. The tree is deterministic across thread
// counts, so the flattened list is directly comparable.
void CollectPairNodes(const obs::Span& span,
                      std::vector<std::pair<std::string, double>>* out) {
  if (span.name == "route_map_pair" || span.name == "acl_pair") {
    for (const auto& [key, value] : span.attrs) {
      if (key == "bdd_nodes") {
        out->push_back({span.name + " " + span.detail, value});
      }
    }
  }
  for (const auto& child : span.children) CollectPairNodes(child, out);
}

// With the template off every pair encodes from scratch, and the per-pair
// arena sizes must be identical run to run and at any thread count — the
// BDD workload is deterministic, and this pin is what makes a template-on
// trace comparable against a template-off baseline pair by pair.
TEST(EncodingTemplateTest, PairArenaSizesDeterministicWithTemplateOff) {
  gen::RouteMapGenOptions options;
  options.seed = 9;
  options.clauses = 8;
  options.differences = 2;
  auto pair = gen::GenerateRouteMapPair(options);
  AttachMapToNeighbor(&pair.config1, pair.map_name);
  AttachMapToNeighbor(&pair.config2, pair.map_name);

  auto run = [&](unsigned threads) {
    obs::ResetThreadTrace();
    obs::SetEnabled(true);
    core::DiffOptions diff_options;
    diff_options.use_encoding_template = false;
    diff_options.num_threads = threads;
    core::ConfigDiff(pair.config1, pair.config2, diff_options);
    obs::SetEnabled(false);
    std::vector<std::pair<std::string, double>> nodes;
    for (const obs::Span& span : obs::TakeThreadSpans()) {
      CollectPairNodes(span, &nodes);
    }
    return nodes;
  };

  auto serial = run(1);
  ASSERT_FALSE(serial.empty());
  for (const auto& [key, value] : serial) EXPECT_GT(value, 0.0) << key;
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(1), serial);  // Run-to-run, not just across thread counts.
}

}  // namespace
}  // namespace campion::encode
