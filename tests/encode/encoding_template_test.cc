#include "encode/encoding_template.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bdd/bdd.h"
#include "core/config_diff.h"
#include "encode/packet.h"
#include "encode/policy_encoder.h"
#include "encode/route_adv.h"
#include "gen/acl_gen.h"
#include "gen/route_map_gen.h"
#include "ir/config.h"
#include "obs/trace.h"
#include "util/ip.h"

namespace campion::encode {
namespace {

// The route-map generator emits the map and its lists but no BGP session;
// ConfigDiff only diffs maps that a paired neighbor references, so wire
// the generated map up as an import policy on both sides.
void AttachMapToNeighbor(ir::RouterConfig* config, const std::string& map) {
  ir::BgpProcess bgp;
  bgp.asn = 65000;
  ir::BgpNeighbor neighbor;
  neighbor.ip = util::Ipv4Address(10, 0, 0, 1);
  neighbor.remote_as = 65001;
  neighbor.import_policy = map;
  bgp.neighbors.push_back(neighbor);
  config->bgp = bgp;
}

// SeedFrom is the load-bearing primitive: template refs are only reusable
// in a pair manager because the seeded arena keeps every node at its
// original index with its original parity.
TEST(SeedFromTest, SeededRefsDenoteSameFunctions) {
  bdd::BddManager a(8);
  bdd::BddRef f = a.And(a.VarTrue(0), a.VarTrue(3));
  bdd::BddRef g = a.Or(f, a.VarFalse(5));
  bdd::BddRef h = a.Xor(g, a.VarTrue(7));

  bdd::BddManager b;
  b.SeedFrom(a);
  EXPECT_TRUE(b.CheckInvariants());
  EXPECT_EQ(b.num_vars(), a.num_vars());
  EXPECT_EQ(b.ArenaSize(), a.ArenaSize());

  // Re-deriving the same functions re-interns to the identical refs.
  EXPECT_EQ(b.And(b.VarTrue(0), b.VarTrue(3)), f);
  EXPECT_EQ(b.Or(f, b.VarFalse(5)), g);
  EXPECT_EQ(b.Xor(g, b.VarTrue(7)), h);

  // New work on top of the snapshot keeps the structure sound and leaves
  // the donor untouched.
  bdd::BddRef extra = b.And(h, b.VarTrue(1));
  EXPECT_NE(extra, bdd::kFalse);
  EXPECT_TRUE(b.CheckInvariants());
  EXPECT_TRUE(a.CheckInvariants());
  EXPECT_GE(b.ArenaSize(), a.ArenaSize());
}

// A template lookup must hand back exactly the ref a seeded pair manager
// would reach by encoding the object from scratch — that equality is what
// lets BuildAclClasses / PolicyEncoder substitute lookups for encodings
// without changing any downstream BDD.
TEST(EncodingTemplateTest, RouteLookupsMatchFreshEncodingsInSeededManager) {
  gen::RouteMapGenOptions options;
  options.seed = 7;
  options.clauses = 8;
  options.differences = 2;
  auto pair = gen::GenerateRouteMapPair(options);
  EncodingTemplate tmpl(pair.config1, pair.config2);
  ASSERT_TRUE(tmpl.has_route_side());
  ASSERT_GT(tmpl.unique_prefix_lists(), 0u);

  for (const ir::RouterConfig* config : {&pair.config1, &pair.config2}) {
    bdd::BddManager mgr;
    mgr.SeedFrom(tmpl.route_manager());
    RouteAdvLayout layout(mgr, tmpl.route_layout());
    PolicyEncoder fresh(layout, *config);  // No template: encodes anew.
    for (const auto& [name, list] : config->prefix_lists) {
      auto templated = tmpl.PrefixListPermits(list);
      ASSERT_TRUE(templated.has_value()) << "prefix list " << name;
      EXPECT_EQ(fresh.PrefixListPermits(list), *templated)
          << "prefix list " << name;
    }
    for (const auto& [name, list] : config->community_lists) {
      auto templated = tmpl.CommunityListPermits(list);
      ASSERT_TRUE(templated.has_value()) << "community list " << name;
      EXPECT_EQ(fresh.CommunityListPermits(list), *templated)
          << "community list " << name;
    }
    EXPECT_TRUE(mgr.CheckInvariants());
  }
}

TEST(EncodingTemplateTest, AclLineLookupsMatchFreshEncodings) {
  gen::AclGenOptions options;
  options.rules = 60;
  options.seed = 11;
  options.differences = 4;
  auto pair = gen::GenerateAclPair(options);
  auto config1 = gen::WrapAclInConfig(pair.acl1, "r1", ir::Vendor::kCisco);
  auto config2 = gen::WrapAclInConfig(pair.acl2, "r2", ir::Vendor::kCisco);
  EncodingTemplate tmpl(config1, config2);
  ASSERT_TRUE(tmpl.has_packet_side());
  ASSERT_GT(tmpl.unique_acl_lines(), 0u);

  bdd::BddManager mgr;
  mgr.SeedFrom(tmpl.packet_manager());
  PacketLayout layout(mgr, tmpl.packet_layout());
  for (const ir::Acl* acl : {&pair.acl1, &pair.acl2}) {
    for (const auto& line : acl->lines) {
      auto templated = tmpl.AclLineMatch(line);
      ASSERT_TRUE(templated.has_value());
      EXPECT_EQ(layout.MatchLine(line), *templated);
    }
  }
  EXPECT_TRUE(mgr.CheckInvariants());
}

// The headline guarantee: the template is purely a performance lever.
// Randomized pairs with injected differences must render byte-identically
// with the template on or off, serial or parallel.
TEST(EncodingTemplateTest, RouteMapReportsByteIdenticalOnOff) {
  for (std::uint64_t seed : {1, 2, 3}) {
    gen::RouteMapGenOptions options;
    options.seed = seed;
    options.clauses = 6;
    options.differences = 2;
    auto pair = gen::GenerateRouteMapPair(options);
    AttachMapToNeighbor(&pair.config1, pair.map_name);
    AttachMapToNeighbor(&pair.config2, pair.map_name);

    auto render = [&](bool with_template, unsigned threads) {
      core::DiffOptions diff_options;
      diff_options.use_encoding_template = with_template;
      diff_options.num_threads = threads;
      return core::ConfigDiff(pair.config1, pair.config2, diff_options)
          .Render();
    };
    std::string base = render(false, 1);
    EXPECT_FALSE(base.empty()) << "seed " << seed;
    EXPECT_EQ(render(true, 1), base) << "seed " << seed;
    EXPECT_EQ(render(false, 4), base) << "seed " << seed;
    EXPECT_EQ(render(true, 4), base) << "seed " << seed;
  }
}

TEST(EncodingTemplateTest, AclReportsByteIdenticalOnOff) {
  for (std::uint64_t seed : {5, 6}) {
    gen::AclGenOptions options;
    options.rules = 40;
    options.seed = seed;
    options.differences = 3;
    auto pair = gen::GenerateAclPair(options);
    auto config1 = gen::WrapAclInConfig(pair.acl1, "r1", ir::Vendor::kCisco);
    auto config2 = gen::WrapAclInConfig(pair.acl2, "r2", ir::Vendor::kCisco);

    auto render = [&](bool with_template, unsigned threads) {
      core::DiffOptions diff_options;
      diff_options.use_encoding_template = with_template;
      diff_options.num_threads = threads;
      return core::ConfigDiff(config1, config2, diff_options).Render();
    };
    std::string base = render(false, 1);
    EXPECT_FALSE(base.empty()) << "seed " << seed;
    EXPECT_EQ(render(true, 1), base) << "seed " << seed;
    EXPECT_EQ(render(false, 4), base) << "seed " << seed;
    EXPECT_EQ(render(true, 4), base) << "seed " << seed;
  }
}

// Reordering happens ONCE, on the template, before any pair seeds from it.
// The whole scheme only works if (a) template lookup refs survive the sift
// unchanged (index+parity stability), (b) a manager seeded afterwards
// inherits the sifted order, and (c) a fresh encoding inside the seeded
// manager re-interns onto exactly the looked-up nodes.
TEST(EncodingTemplateTest, RouteLookupsSurviveReorderAndSeeding) {
  gen::RouteMapGenOptions options;
  options.seed = 7;
  options.clauses = 8;
  options.differences = 2;
  auto pair = gen::GenerateRouteMapPair(options);
  EncodingTemplate tmpl(pair.config1, pair.config2, /*route_side=*/true,
                        /*packet_side=*/true, /*sift_witnesses=*/true);

  // Snapshot lookups before the sift; they must be identical after.
  std::vector<std::pair<std::string, bdd::BddRef>> before;
  for (const auto& [name, list] : pair.config1.prefix_lists) {
    before.emplace_back(name, *tmpl.PrefixListPermits(list));
  }
  ASSERT_FALSE(before.empty());

  bdd::SiftResult sift = tmpl.Reorder(bdd::SiftMode::kVars);
  EXPECT_GE(sift.passes, 1u);
  EXPECT_LE(sift.nodes_after, sift.nodes_before);
  EXPECT_TRUE(tmpl.route_manager().CheckInvariants());
  for (const auto& [name, ref] : before) {
    EXPECT_EQ(*tmpl.PrefixListPermits(pair.config1.prefix_lists.at(name)),
              ref)
        << "prefix list " << name << " ref changed across Reorder";
  }

  for (const ir::RouterConfig* config : {&pair.config1, &pair.config2}) {
    bdd::BddManager mgr;
    mgr.SeedFrom(tmpl.route_manager());
    // The seeded manager carries the sifted order, not the declaration
    // order.
    for (bdd::Var v = 0; v < mgr.num_vars(); ++v) {
      ASSERT_EQ(mgr.LevelOf(v), tmpl.route_manager().LevelOf(v));
    }
    RouteAdvLayout layout(mgr, tmpl.route_layout());
    PolicyEncoder fresh(layout, *config);  // No template: encodes anew.
    for (const auto& [name, list] : config->prefix_lists) {
      auto templated = tmpl.PrefixListPermits(list);
      ASSERT_TRUE(templated.has_value()) << "prefix list " << name;
      EXPECT_EQ(fresh.PrefixListPermits(list), *templated)
          << "prefix list " << name;
    }
    for (const auto& [name, list] : config->community_lists) {
      auto templated = tmpl.CommunityListPermits(list);
      ASSERT_TRUE(templated.has_value()) << "community list " << name;
      EXPECT_EQ(fresh.CommunityListPermits(list), *templated)
          << "community list " << name;
    }
    EXPECT_TRUE(mgr.CheckInvariants());
  }
}

TEST(EncodingTemplateTest, AclLookupsSurviveReorderAndSeeding) {
  gen::AclGenOptions options;
  options.rules = 60;
  options.seed = 11;
  options.differences = 4;
  auto pair = gen::GenerateAclPair(options);
  auto config1 = gen::WrapAclInConfig(pair.acl1, "r1", ir::Vendor::kCisco);
  auto config2 = gen::WrapAclInConfig(pair.acl2, "r2", ir::Vendor::kCisco);
  EncodingTemplate tmpl(config1, config2, /*route_side=*/true,
                        /*packet_side=*/true, /*sift_witnesses=*/true);
  tmpl.Reorder(bdd::SiftMode::kGroups);
  EXPECT_TRUE(tmpl.packet_manager().CheckInvariants());

  bdd::BddManager mgr;
  mgr.SeedFrom(tmpl.packet_manager());
  PacketLayout layout(mgr, tmpl.packet_layout());
  for (const ir::Acl* acl : {&pair.acl1, &pair.acl2}) {
    for (const auto& line : acl->lines) {
      auto templated = tmpl.AclLineMatch(line);
      ASSERT_TRUE(templated.has_value());
      EXPECT_EQ(layout.MatchLine(line), *templated);
    }
  }
  EXPECT_TRUE(mgr.CheckInvariants());
}

// The reorder analogue of the template's headline guarantee: a pure
// performance lever, byte-invisible in the report at any thread count.
TEST(EncodingTemplateTest, ReportsByteIdenticalAcrossReorderModes) {
  gen::RouteMapGenOptions rm_options;
  rm_options.seed = 3;
  rm_options.clauses = 6;
  rm_options.differences = 2;
  auto rm = gen::GenerateRouteMapPair(rm_options);
  AttachMapToNeighbor(&rm.config1, rm.map_name);
  AttachMapToNeighbor(&rm.config2, rm.map_name);
  gen::AclGenOptions acl_options;
  acl_options.rules = 40;
  acl_options.seed = 5;
  acl_options.differences = 3;
  auto acl = gen::GenerateAclPair(acl_options);
  // Bind the generated ACLs to matching interfaces so the pairing picks
  // them up (same wiring WrapAclInConfig does).
  for (auto [config, acl_ptr] : {std::pair{&rm.config1, &acl.acl1},
                                 std::pair{&rm.config2, &acl.acl2}}) {
    config->acls[acl_ptr->name] = *acl_ptr;
    ir::Interface iface;
    iface.name = "Ethernet1";
    iface.address = util::Ipv4Address(10, 0, 1, 1);
    iface.prefix_length = 24;
    iface.in_acl = acl_ptr->name;
    config->interfaces.push_back(std::move(iface));
  }

  auto render = [&](core::DiffOptions::ReorderMode mode, unsigned threads) {
    core::DiffOptions diff_options;
    diff_options.reorder = mode;
    diff_options.num_threads = threads;
    return core::ConfigDiff(rm.config1, rm.config2, diff_options).Render();
  };
  std::string base = render(core::DiffOptions::ReorderMode::kOff, 1);
  EXPECT_FALSE(base.empty());
  for (unsigned threads : {1u, 4u}) {
    EXPECT_EQ(render(core::DiffOptions::ReorderMode::kOff, threads), base)
        << "threads " << threads;
    EXPECT_EQ(render(core::DiffOptions::ReorderMode::kSift, threads), base)
        << "threads " << threads;
    EXPECT_EQ(render(core::DiffOptions::ReorderMode::kGroupSift, threads),
              base)
        << "threads " << threads;
  }
}

// Collects (span name + detail, bdd_nodes attr) for every per-pair span in
// the trace tree, in tree order. The tree is deterministic across thread
// counts, so the flattened list is directly comparable.
void CollectPairNodes(const obs::Span& span,
                      std::vector<std::pair<std::string, double>>* out) {
  if (span.name == "route_map_pair" || span.name == "acl_pair") {
    for (const auto& [key, value] : span.attrs) {
      if (key == "bdd_nodes") {
        out->push_back({span.name + " " + span.detail, value});
      }
    }
  }
  for (const auto& child : span.children) CollectPairNodes(child, out);
}

// With the template off every pair encodes from scratch, and the per-pair
// arena sizes must be identical run to run and at any thread count — the
// BDD workload is deterministic, and this pin is what makes a template-on
// trace comparable against a template-off baseline pair by pair.
TEST(EncodingTemplateTest, PairArenaSizesDeterministicWithTemplateOff) {
  gen::RouteMapGenOptions options;
  options.seed = 9;
  options.clauses = 8;
  options.differences = 2;
  auto pair = gen::GenerateRouteMapPair(options);
  AttachMapToNeighbor(&pair.config1, pair.map_name);
  AttachMapToNeighbor(&pair.config2, pair.map_name);

  auto run = [&](unsigned threads) {
    obs::ResetThreadTrace();
    obs::SetEnabled(true);
    core::DiffOptions diff_options;
    diff_options.use_encoding_template = false;
    diff_options.num_threads = threads;
    core::ConfigDiff(pair.config1, pair.config2, diff_options);
    obs::SetEnabled(false);
    std::vector<std::pair<std::string, double>> nodes;
    for (const obs::Span& span : obs::TakeThreadSpans()) {
      CollectPairNodes(span, &nodes);
    }
    return nodes;
  };

  auto serial = run(1);
  ASSERT_FALSE(serial.empty());
  for (const auto& [key, value] : serial) EXPECT_GT(value, 0.0) << key;
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(1), serial);  // Run-to-run, not just across thread counts.
}

}  // namespace
}  // namespace campion::encode
