#include "encode/policy_encoder.h"

#include <gtest/gtest.h>

namespace campion::encode {
namespace {

using bdd::BddManager;
using bdd::BddRef;
using util::Community;
using util::Prefix;
using util::PrefixRange;

class PolicyEncoderTest : public ::testing::Test {
 protected:
  PolicyEncoderTest() : layout_(mgr_, {Community(10, 10), Community(10, 11)}) {
    // NETS: two permit windows, like Figure 1(a).
    ir::PrefixList nets;
    nets.name = "NETS";
    nets.entries.push_back(
        {ir::LineAction::kPermit,
         PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32), {}});
    nets.entries.push_back(
        {ir::LineAction::kPermit,
         PrefixRange(*Prefix::Parse("10.100.0.0/16"), 16, 32), {}});
    config_.prefix_lists["NETS"] = nets;

    // COMM: OR of two single-community entries (Cisco semantics).
    ir::CommunityList comm;
    comm.name = "COMM";
    comm.entries.push_back(
        {ir::LineAction::kPermit, {Community(10, 10)}, {}});
    comm.entries.push_back(
        {ir::LineAction::kPermit, {Community(10, 11)}, {}});
    config_.community_lists["COMM"] = comm;

    // BOTH: one AND entry (Juniper semantics).
    ir::CommunityList both;
    both.name = "BOTH";
    both.entries.push_back(
        {ir::LineAction::kPermit,
         {Community(10, 10), Community(10, 11)}, {}});
    config_.community_lists["BOTH"] = both;
  }

  bool ContainsPrefix(BddRef set, const char* prefix) {
    return mgr_.Intersects(set,
                           layout_.MatchExactPrefix(*Prefix::Parse(prefix)));
  }

  BddManager mgr_;
  RouteAdvLayout layout_;
  ir::RouterConfig config_;
};

TEST_F(PolicyEncoderTest, PrefixListFirstMatchWins) {
  ir::PrefixList list;
  list.name = "L";
  list.entries.push_back(
      {ir::LineAction::kDeny,
       PrefixRange(*Prefix::Parse("10.9.1.0/24"), 24, 32), {}});
  list.entries.push_back(
      {ir::LineAction::kPermit,
       PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32), {}});
  PolicyEncoder encoder(layout_, config_);
  BddRef permits = encoder.PrefixListPermits(list);
  // 10.9.1.0/24 hits the deny first; 10.9.2.0/24 falls to the permit.
  EXPECT_FALSE(ContainsPrefix(permits, "10.9.1.0/24"));
  EXPECT_FALSE(ContainsPrefix(permits, "10.9.1.128/25"));
  EXPECT_TRUE(ContainsPrefix(permits, "10.9.2.0/24"));
  EXPECT_TRUE(ContainsPrefix(permits, "10.9.0.0/16"));
}

TEST_F(PolicyEncoderTest, PrefixListImplicitDeny) {
  PolicyEncoder encoder(layout_, config_);
  BddRef permits =
      encoder.PrefixListPermits(config_.prefix_lists["NETS"]);
  EXPECT_FALSE(ContainsPrefix(permits, "192.168.0.0/16"));
  EXPECT_FALSE(ContainsPrefix(permits, "10.9.0.0/8"));  // Too short.
}

TEST_F(PolicyEncoderTest, CommunityListOrSemantics) {
  PolicyEncoder encoder(layout_, config_);
  BddRef permits =
      encoder.CommunityListPermits(config_.community_lists["COMM"]);
  BddRef only10 = mgr_.And(layout_.HasCommunity(Community(10, 10)),
                           mgr_.Not(layout_.HasCommunity(Community(10, 11))));
  BddRef only11 = mgr_.And(layout_.HasCommunity(Community(10, 11)),
                           mgr_.Not(layout_.HasCommunity(Community(10, 10))));
  EXPECT_TRUE(mgr_.Subset(only10, permits));
  EXPECT_TRUE(mgr_.Subset(only11, permits));
  EXPECT_FALSE(mgr_.Intersects(layout_.NoCommunities(), permits));
}

TEST_F(PolicyEncoderTest, CommunityListAndSemantics) {
  PolicyEncoder encoder(layout_, config_);
  BddRef permits =
      encoder.CommunityListPermits(config_.community_lists["BOTH"]);
  BddRef only10 = mgr_.And(layout_.HasCommunity(Community(10, 10)),
                           mgr_.Not(layout_.HasCommunity(Community(10, 11))));
  BddRef both = mgr_.And(layout_.HasCommunity(Community(10, 10)),
                         layout_.HasCommunity(Community(10, 11)));
  EXPECT_FALSE(mgr_.Intersects(only10, permits));
  EXPECT_TRUE(mgr_.Subset(both, permits));
}

TEST_F(PolicyEncoderTest, CommunityListDenyEntryShadows) {
  ir::CommunityList list;
  list.name = "L";
  list.entries.push_back({ir::LineAction::kDeny, {Community(10, 10)}, {}});
  list.entries.push_back({ir::LineAction::kPermit, {}, {}});  // Match all.
  PolicyEncoder encoder(layout_, config_);
  BddRef permits = encoder.CommunityListPermits(list);
  EXPECT_FALSE(
      mgr_.Intersects(layout_.HasCommunity(Community(10, 10)), permits));
  EXPECT_TRUE(mgr_.Intersects(layout_.NoCommunities(), permits));
}

TEST_F(PolicyEncoderTest, MatchDisjunctionAcrossNames) {
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kCommunityList;
  match.names = {"COMM", "BOTH"};
  PolicyEncoder encoder(layout_, config_);
  BddRef matched = encoder.MatchToBdd(match);
  // Union: anything matching either list.
  EXPECT_TRUE(mgr_.Intersects(layout_.HasCommunity(Community(10, 10)),
                              matched));
}

TEST_F(PolicyEncoderTest, UndefinedListMatchesNothingAndWarns) {
  ir::RouteMapMatch match;
  match.kind = ir::RouteMapMatch::Kind::kPrefixList;
  match.names = {"NO-SUCH-LIST"};
  PolicyEncoder encoder(layout_, config_);
  EXPECT_EQ(encoder.MatchToBdd(match), mgr_.False());
  ASSERT_EQ(encoder.warnings().size(), 1u);
  EXPECT_NE(encoder.warnings()[0].find("NO-SUCH-LIST"), std::string::npos);
}

TEST_F(PolicyEncoderTest, ClauseGuardIsConjunction) {
  ir::RouteMapClause clause;
  ir::RouteMapMatch prefix_match;
  prefix_match.kind = ir::RouteMapMatch::Kind::kPrefixList;
  prefix_match.names = {"NETS"};
  ir::RouteMapMatch community_match;
  community_match.kind = ir::RouteMapMatch::Kind::kCommunityList;
  community_match.names = {"COMM"};
  clause.matches = {prefix_match, community_match};
  PolicyEncoder encoder(layout_, config_);
  BddRef guard = encoder.ClauseGuard(clause);
  // Matching prefix but no community fails the guard.
  BddRef in_nets_no_comm =
      mgr_.And(layout_.MatchExactPrefix(*Prefix::Parse("10.9.1.0/24")),
               layout_.NoCommunities());
  EXPECT_FALSE(mgr_.Intersects(guard, in_nets_no_comm));
  BddRef in_nets_comm =
      mgr_.And(layout_.MatchExactPrefix(*Prefix::Parse("10.9.1.0/24")),
               layout_.HasCommunity(Community(10, 10)));
  EXPECT_TRUE(mgr_.Intersects(guard, in_nets_comm));
}

TEST_F(PolicyEncoderTest, EmptyClauseGuardMatchesEverything) {
  ir::RouteMapClause clause;
  PolicyEncoder encoder(layout_, config_);
  EXPECT_EQ(encoder.ClauseGuard(clause), mgr_.True());
}

TEST_F(PolicyEncoderTest, ProtocolAndTagMatches) {
  PolicyEncoder encoder(layout_, config_);
  ir::RouteMapMatch protocol_match;
  protocol_match.kind = ir::RouteMapMatch::Kind::kProtocol;
  protocol_match.protocol = ir::Protocol::kStatic;
  EXPECT_EQ(encoder.MatchToBdd(protocol_match),
            layout_.ProtocolIs(ir::Protocol::kStatic));

  ir::RouteMapMatch tag_match;
  tag_match.kind = ir::RouteMapMatch::Kind::kTag;
  tag_match.value = 1234;
  EXPECT_EQ(encoder.MatchToBdd(tag_match), layout_.TagEquals(1234));
}

}  // namespace
}  // namespace campion::encode
