#include "encode/route_adv.h"

#include <gtest/gtest.h>

namespace campion::encode {
namespace {

using bdd::BddManager;
using bdd::BddRef;
using util::Community;
using util::Ipv4Address;
using util::Prefix;
using util::PrefixRange;

class RouteAdvTest : public ::testing::Test {
 protected:
  RouteAdvTest()
      : layout_(mgr_, {Community(10, 10), Community(10, 11)}) {}

  // Membership of a concrete prefix in a symbolic set.
  bool Contains(BddRef set, const Prefix& p) {
    return mgr_.Intersects(set, layout_.MatchExactPrefix(p));
  }

  BddManager mgr_;
  RouteAdvLayout layout_;
};

TEST_F(RouteAdvTest, ExactPrefixMembership) {
  BddRef set = layout_.MatchExactPrefix(*Prefix::Parse("10.9.0.0/16"));
  EXPECT_TRUE(Contains(set, *Prefix::Parse("10.9.0.0/16")));
  EXPECT_FALSE(Contains(set, *Prefix::Parse("10.9.1.0/24")));
  EXPECT_FALSE(Contains(set, *Prefix::Parse("10.8.0.0/16")));
}

TEST_F(RouteAdvTest, PrefixRangeWindowMembership) {
  BddRef set = layout_.MatchPrefixRange(
      PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32));
  EXPECT_TRUE(Contains(set, *Prefix::Parse("10.9.0.0/16")));
  EXPECT_TRUE(Contains(set, *Prefix::Parse("10.9.1.0/24")));
  EXPECT_TRUE(Contains(set, *Prefix::Parse("10.9.1.1/32")));
  EXPECT_FALSE(Contains(set, *Prefix::Parse("10.8.0.0/15")));
  EXPECT_FALSE(Contains(set, *Prefix::Parse("10.100.0.0/16")));
}

TEST_F(RouteAdvTest, SymbolicContainmentMatchesRangeContainment) {
  // Symbolic subset agrees with PrefixRange::ContainsRange on samples.
  struct Sample {
    PrefixRange a, b;
  };
  std::vector<Sample> samples = {
      {PrefixRange(*Prefix::Parse("10.0.0.0/8"), 8, 32),
       PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32)},
      {PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32),
       PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 16)},
      {PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 24),
       PrefixRange(*Prefix::Parse("10.9.0.0/16"), 20, 32)},
      {PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32),
       PrefixRange(*Prefix::Parse("10.100.0.0/16"), 16, 32)},
  };
  for (const auto& [a, b] : samples) {
    BddRef sa = layout_.MatchPrefixRange(a);
    BddRef sb = layout_.MatchPrefixRange(b);
    EXPECT_EQ(mgr_.Subset(sb, sa), a.ContainsRange(b))
        << a.ToString() << " vs " << b.ToString();
    EXPECT_EQ(mgr_.Intersects(sa, sb), a.Intersect(b).has_value())
        << a.ToString() << " vs " << b.ToString();
  }
}

TEST_F(RouteAdvTest, EmptyRangeIsFalse) {
  EXPECT_EQ(layout_.MatchPrefixRange(
                PrefixRange(*Prefix::Parse("10.9.0.0/16"), 4, 8)),
            mgr_.False());
}

TEST_F(RouteAdvTest, CommunityVariables) {
  BddRef has10 = layout_.HasCommunity(Community(10, 10));
  BddRef has11 = layout_.HasCommunity(Community(10, 11));
  EXPECT_NE(has10, has11);
  EXPECT_NE(has10, mgr_.False());
  // A community outside the universe matches nothing.
  EXPECT_EQ(layout_.HasCommunity(Community(99, 99)), mgr_.False());
}

TEST_F(RouteAdvTest, NoCommunitiesExcludesAll) {
  BddRef none = layout_.NoCommunities();
  EXPECT_FALSE(
      mgr_.Intersects(none, layout_.HasCommunity(Community(10, 10))));
  EXPECT_FALSE(
      mgr_.Intersects(none, layout_.HasCommunity(Community(10, 11))));
  EXPECT_NE(none, mgr_.False());
}

TEST_F(RouteAdvTest, ProtocolsAreMutuallyExclusive) {
  for (auto p : {ir::Protocol::kConnected, ir::Protocol::kStatic,
                 ir::Protocol::kOspf, ir::Protocol::kBgp}) {
    for (auto q : {ir::Protocol::kConnected, ir::Protocol::kStatic,
                   ir::Protocol::kOspf, ir::Protocol::kBgp}) {
      EXPECT_EQ(mgr_.Intersects(layout_.ProtocolIs(p), layout_.ProtocolIs(q)),
                p == q);
    }
  }
}

TEST_F(RouteAdvTest, TagEquality) {
  BddRef t100 = layout_.TagEquals(100);
  BddRef t200 = layout_.TagEquals(200);
  EXPECT_FALSE(mgr_.Intersects(t100, t200));
  EXPECT_NE(t100, mgr_.False());
}

TEST_F(RouteAdvTest, DecodeRoundTrip) {
  BddRef set = mgr_.And(
      layout_.MatchExactPrefix(*Prefix::Parse("10.9.1.0/24")),
      mgr_.And(layout_.HasCommunity(Community(10, 10)),
               mgr_.Not(layout_.HasCommunity(Community(10, 11)))));
  set = mgr_.And(set, layout_.TagEquals(77));
  set = mgr_.And(set, layout_.ProtocolIs(ir::Protocol::kStatic));
  auto cube = mgr_.AnySat(set);
  ASSERT_TRUE(cube.has_value());
  RouteAdvExample example = layout_.Decode(*cube);
  EXPECT_EQ(example.prefix, *Prefix::Parse("10.9.1.0/24"));
  EXPECT_EQ(example.communities,
            std::vector<Community>{Community(10, 10)});
  EXPECT_EQ(example.tag, 77u);
  EXPECT_EQ(example.protocol, ir::Protocol::kStatic);
}

TEST_F(RouteAdvTest, ProjectionOntoPrefixVars) {
  BddRef set = mgr_.And(
      layout_.MatchPrefixRange(
          PrefixRange(*Prefix::Parse("10.9.0.0/16"), 16, 32)),
      layout_.HasCommunity(Community(10, 10)));
  BddRef projected = mgr_.Exists(set, layout_.NonPrefixVarMask());
  // The projection is exactly the prefix range predicate.
  EXPECT_EQ(projected, layout_.MatchPrefixRange(PrefixRange(
                           *Prefix::Parse("10.9.0.0/16"), 16, 32)));
}

TEST_F(RouteAdvTest, UninterpretedPredicatesAreStable) {
  BddRef a = layout_.UninterpretedPredicate("metric==5");
  BddRef b = layout_.UninterpretedPredicate("metric==5");
  BddRef c = layout_.UninterpretedPredicate("metric==6");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_F(RouteAdvTest, ValidBoundsLength) {
  // Everything below the Valid() predicate decodes to length <= 32.
  for (int i = 0; i < 10; ++i) {
    auto cube = mgr_.AnySat(layout_.Valid());
    ASSERT_TRUE(cube.has_value());
    EXPECT_LE(layout_.Decode(*cube).prefix.length(), 32);
  }
}

TEST_F(RouteAdvTest, ExampleToStringMentionsFields) {
  RouteAdvExample example;
  example.prefix = *Prefix::Parse("10.9.1.0/24");
  example.communities = {Community(10, 10)};
  example.tag = 5;
  std::string text = example.ToString();
  EXPECT_NE(text.find("10.9.1.0/24"), std::string::npos);
  EXPECT_NE(text.find("10:10"), std::string::npos);
  EXPECT_NE(text.find("tag: 5"), std::string::npos);
}

}  // namespace
}  // namespace campion::encode
