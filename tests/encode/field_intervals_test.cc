// Tests for the exact field-interval extraction (SymbolicField::Intervals)
// and its use in ACL port/protocol localization.

#include <gtest/gtest.h>

#include <random>

#include "core/config_diff.h"
#include "encode/packet.h"
#include "encode/symbolic_field.h"

namespace campion::encode {
namespace {

using bdd::BddManager;
using bdd::BddRef;
using Interval = SymbolicField::Interval;

class FieldIntervalsTest : public ::testing::Test {
 protected:
  FieldIntervalsTest() : mgr_(8), field_(0, 8) {}
  BddManager mgr_;
  SymbolicField field_;
};

TEST_F(FieldIntervalsTest, EmptyAndFull) {
  EXPECT_TRUE(field_.Intervals(mgr_, mgr_.False()).empty());
  auto full = field_.Intervals(mgr_, mgr_.True());
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0], (Interval{0, 255}));
}

TEST_F(FieldIntervalsTest, SingleValue) {
  auto one = field_.Intervals(mgr_, field_.EqualsConst(mgr_, 42));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (Interval{42, 42}));
}

TEST_F(FieldIntervalsTest, Range) {
  auto range = field_.Intervals(mgr_, field_.InRange(mgr_, 17, 200));
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(range[0], (Interval{17, 200}));
}

TEST_F(FieldIntervalsTest, UnionMergesAdjacent) {
  BddRef set = mgr_.Or(field_.InRange(mgr_, 10, 19),
                       field_.InRange(mgr_, 20, 30));
  auto merged = field_.Intervals(mgr_, set);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Interval{10, 30}));
}

TEST_F(FieldIntervalsTest, DisjointRangesStaySplit) {
  BddRef set = mgr_.Or(field_.EqualsConst(mgr_, 5),
                       field_.InRange(mgr_, 100, 120));
  auto intervals = field_.Intervals(mgr_, set);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (Interval{5, 5}));
  EXPECT_EQ(intervals[1], (Interval{100, 120}));
}

TEST_F(FieldIntervalsTest, ComplementOfValue) {
  auto holes = field_.Intervals(mgr_, mgr_.Not(field_.EqualsConst(mgr_, 0)));
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes[0], (Interval{1, 255}));
  auto middle =
      field_.Intervals(mgr_, mgr_.Not(field_.EqualsConst(mgr_, 77)));
  ASSERT_EQ(middle.size(), 2u);
  EXPECT_EQ(middle[0], (Interval{0, 76}));
  EXPECT_EQ(middle[1], (Interval{78, 255}));
}

TEST_F(FieldIntervalsTest, RandomSetsRoundTrip) {
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> member(256, false);
    BddRef set = mgr_.False();
    for (int i = 0; i < 5; ++i) {
      std::uint32_t low = rng() % 256;
      std::uint32_t high = low + rng() % (256 - low);
      set = mgr_.Or(set, field_.InRange(mgr_, low, high));
      for (std::uint32_t v = low; v <= high; ++v) member[v] = true;
    }
    auto intervals = field_.Intervals(mgr_, set);
    std::vector<bool> rebuilt(256, false);
    for (const auto& interval : intervals) {
      // Intervals must be sorted, disjoint, non-adjacent.
      for (std::uint32_t v = static_cast<std::uint32_t>(interval.low.lo());
           v <= static_cast<std::uint32_t>(interval.high.lo()); ++v) {
        EXPECT_FALSE(rebuilt[v]);
        rebuilt[v] = true;
      }
    }
    EXPECT_EQ(rebuilt, member) << "trial " << trial;
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GT(intervals[i].low, intervals[i - 1].high + 1);
    }
  }
}

// Regression: AppendInterval tested adjacency as `back.high + 1 == low`.
// With back.high at the maximum field value the increment wraps to 0, so a
// later append starting at 0 spuriously merged and corrupted the sorted
// list. The fixed form (`back.high == low - 1` guarded by low != 0) must
// keep the two intervals apart.
TEST(AppendIntervalTest, NoWraparoundMergeAtMaxFieldValue) {
  std::vector<Interval> intervals;
  SymbolicField::AppendInterval(intervals, util::U128(5), util::U128::Max());
  SymbolicField::AppendInterval(intervals, util::U128(), util::U128(3));
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (Interval{util::U128(5), util::U128::Max()}));
  EXPECT_EQ(intervals[1], (Interval{util::U128(), util::U128(3)}));
}

TEST(AppendIntervalTest, StillMergesGenuinelyAdjacent) {
  std::vector<Interval> intervals;
  SymbolicField::AppendInterval(intervals, util::U128(), util::U128(9));
  SymbolicField::AppendInterval(intervals, util::U128(10), util::U128(20));
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (Interval{util::U128(), util::U128(20)}));
}

// A full-width 128-bit field whose set is True must come back as the single
// interval [0, 2^128 - 1]; pre-fix, block arithmetic at the top of the walk
// wrapped and split or corrupted it.
TEST(FieldIntervals128Test, FullRangeIsOneInterval) {
  BddManager mgr(128);
  SymbolicField field(0, 128);
  auto full = field.Intervals(mgr, mgr.True());
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].low, util::U128());
  EXPECT_EQ(full[0].high, util::U128::Max());
}

// Randomized 128-bit oracle: Intervals(InRange(a, b)) must reproduce
// exactly [a, b] for arbitrary 128-bit bounds.
TEST(FieldIntervals128Test, RandomRangesRoundTrip) {
  BddManager mgr(128);
  SymbolicField field(0, 128);
  std::mt19937_64 rng(128);
  for (int trial = 0; trial < 25; ++trial) {
    util::U128 a(rng(), rng());
    util::U128 b(rng(), rng());
    if (b < a) std::swap(a, b);
    auto intervals = field.Intervals(mgr, field.InRange(mgr, a, b));
    ASSERT_EQ(intervals.size(), 1u) << "trial " << trial;
    EXPECT_EQ(intervals[0], (Interval{a, b})) << "trial " << trial;
  }
}

// Sift survival: extracting intervals from a reordered 128-bit manager
// must give the same answer as from the declaration order (Intervals
// routes reordered managers through DeclarationOrderView). Mirrors the
// 32-bit reorder-parity tests, at the width where limb-boundary
// arithmetic bugs live.
TEST(FieldIntervals128Test, IntervalsSurviveSifting) {
  BddManager mgr(128);
  SymbolicField field(0, 128);
  std::mt19937_64 rng(4291);  // RFC 4291.
  for (int trial = 0; trial < 5; ++trial) {
    util::U128 a(rng(), rng());
    util::U128 b(rng(), rng());
    if (b < a) std::swap(a, b);
    BddRef set = mgr.Or(field.InRange(mgr, a, b),
                        field.EqualsConst(mgr, util::U128(rng(), rng())));
    auto before = field.Intervals(mgr, set);
    std::vector<BddRef> roots = {set};
    mgr.Sift(bdd::SiftMode::kVars, &roots);
    auto after = field.Intervals(mgr, set);
    EXPECT_EQ(before, after) << "trial " << trial;
  }
}

// Regression: a predicate over a variable *beyond* the field previously
// fell through to the depth-driven descent, which emitted one single-value
// interval per field value — 2^32 appends for a 32-bit field (an effective
// hang). The out-of-field check now runs on the node's variable before the
// descent, so the whole block is emitted in one step.
TEST(FieldIntervalsOutOfFieldTest, VariableBeyondFieldEmitsWholeBlock) {
  BddManager mgr(33);
  SymbolicField field(0, 32);
  auto intervals = field.Intervals(mgr, mgr.VarTrue(32));
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (Interval{util::U128(), util::U128::Ones(32)}));
}

TEST(FieldIntervalsOutOfFieldTest, MixedInAndOutOfFieldVariables) {
  BddManager mgr(34);
  SymbolicField field(0, 32);
  // (field == 7) OR (an out-of-field variable): projected onto the field,
  // everything is reachable, but the walk must not enumerate values.
  BddRef set = mgr.Or(field.EqualsConst(mgr, 7), mgr.VarTrue(33));
  auto intervals = field.Intervals(mgr, set);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (Interval{util::U128(), util::U128::Ones(32)}));
}

TEST(PacketPortLocalizationTest, AffectedDstPorts) {
  BddManager mgr;
  PacketLayout layout(mgr);
  BddRef set = mgr.Or(layout.DstPortIn({80, 80}),
                      layout.DstPortIn({443, 443}));
  set = mgr.And(set, layout.ProtocolIs(ir::kProtoTcp));
  auto ports = layout.AffectedDstPorts(set);
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], (ir::PortRange{80, 80}));
  EXPECT_EQ(ports[1], (ir::PortRange{443, 443}));
  auto protocols = layout.AffectedProtocols(set);
  ASSERT_EQ(protocols.size(), 1u);
  EXPECT_EQ(protocols[0].low, ir::kProtoTcp);
}

TEST(PacketPortLocalizationTest, PresentedAclDifferenceShowsPorts) {
  ir::RouterConfig c1, c2;
  c1.hostname = "a";
  c2.hostname = "b";
  ir::Acl acl1;
  acl1.name = "F";
  ir::AclLine line;
  line.action = ir::LineAction::kPermit;
  line.protocol = ir::kProtoTcp;
  line.dst_ports.push_back({8080, 8088});
  acl1.lines.push_back(line);
  ir::Acl acl2;
  acl2.name = "F";  // Empty: denies everything.
  c1.acls["F"] = acl1;
  c2.acls["F"] = acl2;

  auto diffs = core::DiffAclPair(c1, c2, "F");
  ASSERT_EQ(diffs.size(), 1u);
  ASSERT_EQ(diffs[0].dst_ports.size(), 1u);
  EXPECT_EQ(diffs[0].dst_ports[0], (ir::PortRange{8080, 8088}));
  ASSERT_EQ(diffs[0].protocols.size(), 1u);
  EXPECT_EQ(diffs[0].protocols[0].low, ir::kProtoTcp);
  EXPECT_NE(diffs[0].table.find("Dst Ports"), std::string::npos);
  EXPECT_NE(diffs[0].table.find("8080-8088"), std::string::npos);
  EXPECT_NE(diffs[0].table.find("Protocols"), std::string::npos);
  EXPECT_NE(diffs[0].table.find("tcp"), std::string::npos);
}

TEST(PacketPortLocalizationTest, UnconstrainedFieldsOmitted) {
  ir::RouterConfig c1, c2;
  c1.hostname = "a";
  c2.hostname = "b";
  ir::Acl acl1;
  acl1.name = "F";
  ir::AclLine line;  // Matches every packet.
  line.action = ir::LineAction::kPermit;
  acl1.lines.push_back(line);
  ir::Acl acl2;
  acl2.name = "F";
  c1.acls["F"] = acl1;
  c2.acls["F"] = acl2;

  auto diffs = core::DiffAclPair(c1, c2, "F");
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_TRUE(diffs[0].dst_ports.empty());
  EXPECT_TRUE(diffs[0].protocols.empty());
  EXPECT_EQ(diffs[0].table.find("Dst Ports"), std::string::npos);
}

}  // namespace
}  // namespace campion::encode
