// Tests for the exact field-interval extraction (SymbolicField::Intervals)
// and its use in ACL port/protocol localization.

#include <gtest/gtest.h>

#include <random>

#include "core/config_diff.h"
#include "encode/packet.h"
#include "encode/symbolic_field.h"

namespace campion::encode {
namespace {

using bdd::BddManager;
using bdd::BddRef;
using Interval = SymbolicField::Interval;

class FieldIntervalsTest : public ::testing::Test {
 protected:
  FieldIntervalsTest() : mgr_(8), field_(0, 8) {}
  BddManager mgr_;
  SymbolicField field_;
};

TEST_F(FieldIntervalsTest, EmptyAndFull) {
  EXPECT_TRUE(field_.Intervals(mgr_, mgr_.False()).empty());
  auto full = field_.Intervals(mgr_, mgr_.True());
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0], (Interval{0, 255}));
}

TEST_F(FieldIntervalsTest, SingleValue) {
  auto one = field_.Intervals(mgr_, field_.EqualsConst(mgr_, 42));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (Interval{42, 42}));
}

TEST_F(FieldIntervalsTest, Range) {
  auto range = field_.Intervals(mgr_, field_.InRange(mgr_, 17, 200));
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(range[0], (Interval{17, 200}));
}

TEST_F(FieldIntervalsTest, UnionMergesAdjacent) {
  BddRef set = mgr_.Or(field_.InRange(mgr_, 10, 19),
                       field_.InRange(mgr_, 20, 30));
  auto merged = field_.Intervals(mgr_, set);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Interval{10, 30}));
}

TEST_F(FieldIntervalsTest, DisjointRangesStaySplit) {
  BddRef set = mgr_.Or(field_.EqualsConst(mgr_, 5),
                       field_.InRange(mgr_, 100, 120));
  auto intervals = field_.Intervals(mgr_, set);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (Interval{5, 5}));
  EXPECT_EQ(intervals[1], (Interval{100, 120}));
}

TEST_F(FieldIntervalsTest, ComplementOfValue) {
  auto holes = field_.Intervals(mgr_, mgr_.Not(field_.EqualsConst(mgr_, 0)));
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes[0], (Interval{1, 255}));
  auto middle =
      field_.Intervals(mgr_, mgr_.Not(field_.EqualsConst(mgr_, 77)));
  ASSERT_EQ(middle.size(), 2u);
  EXPECT_EQ(middle[0], (Interval{0, 76}));
  EXPECT_EQ(middle[1], (Interval{78, 255}));
}

TEST_F(FieldIntervalsTest, RandomSetsRoundTrip) {
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> member(256, false);
    BddRef set = mgr_.False();
    for (int i = 0; i < 5; ++i) {
      std::uint32_t low = rng() % 256;
      std::uint32_t high = low + rng() % (256 - low);
      set = mgr_.Or(set, field_.InRange(mgr_, low, high));
      for (std::uint32_t v = low; v <= high; ++v) member[v] = true;
    }
    auto intervals = field_.Intervals(mgr_, set);
    std::vector<bool> rebuilt(256, false);
    for (const auto& interval : intervals) {
      // Intervals must be sorted, disjoint, non-adjacent.
      for (std::uint32_t v = interval.low; v <= interval.high; ++v) {
        EXPECT_FALSE(rebuilt[v]);
        rebuilt[v] = true;
      }
    }
    EXPECT_EQ(rebuilt, member) << "trial " << trial;
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GT(intervals[i].low, intervals[i - 1].high + 1);
    }
  }
}

TEST(PacketPortLocalizationTest, AffectedDstPorts) {
  BddManager mgr;
  PacketLayout layout(mgr);
  BddRef set = mgr.Or(layout.DstPortIn({80, 80}),
                      layout.DstPortIn({443, 443}));
  set = mgr.And(set, layout.ProtocolIs(ir::kProtoTcp));
  auto ports = layout.AffectedDstPorts(set);
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], (ir::PortRange{80, 80}));
  EXPECT_EQ(ports[1], (ir::PortRange{443, 443}));
  auto protocols = layout.AffectedProtocols(set);
  ASSERT_EQ(protocols.size(), 1u);
  EXPECT_EQ(protocols[0].low, ir::kProtoTcp);
}

TEST(PacketPortLocalizationTest, PresentedAclDifferenceShowsPorts) {
  ir::RouterConfig c1, c2;
  c1.hostname = "a";
  c2.hostname = "b";
  ir::Acl acl1;
  acl1.name = "F";
  ir::AclLine line;
  line.action = ir::LineAction::kPermit;
  line.protocol = ir::kProtoTcp;
  line.dst_ports.push_back({8080, 8088});
  acl1.lines.push_back(line);
  ir::Acl acl2;
  acl2.name = "F";  // Empty: denies everything.
  c1.acls["F"] = acl1;
  c2.acls["F"] = acl2;

  auto diffs = core::DiffAclPair(c1, c2, "F");
  ASSERT_EQ(diffs.size(), 1u);
  ASSERT_EQ(diffs[0].dst_ports.size(), 1u);
  EXPECT_EQ(diffs[0].dst_ports[0], (ir::PortRange{8080, 8088}));
  ASSERT_EQ(diffs[0].protocols.size(), 1u);
  EXPECT_EQ(diffs[0].protocols[0].low, ir::kProtoTcp);
  EXPECT_NE(diffs[0].table.find("Dst Ports"), std::string::npos);
  EXPECT_NE(diffs[0].table.find("8080-8088"), std::string::npos);
  EXPECT_NE(diffs[0].table.find("Protocols"), std::string::npos);
  EXPECT_NE(diffs[0].table.find("tcp"), std::string::npos);
}

TEST(PacketPortLocalizationTest, UnconstrainedFieldsOmitted) {
  ir::RouterConfig c1, c2;
  c1.hostname = "a";
  c2.hostname = "b";
  ir::Acl acl1;
  acl1.name = "F";
  ir::AclLine line;  // Matches every packet.
  line.action = ir::LineAction::kPermit;
  acl1.lines.push_back(line);
  ir::Acl acl2;
  acl2.name = "F";
  c1.acls["F"] = acl1;
  c2.acls["F"] = acl2;

  auto diffs = core::DiffAclPair(c1, c2, "F");
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_TRUE(diffs[0].dst_ports.empty());
  EXPECT_TRUE(diffs[0].protocols.empty());
  EXPECT_EQ(diffs[0].table.find("Dst Ports"), std::string::npos);
}

}  // namespace
}  // namespace campion::encode
