#include "encode/packet.h"

#include <gtest/gtest.h>

namespace campion::encode {
namespace {

using bdd::BddManager;
using bdd::BddRef;
using util::Ipv4Address;
using util::IpWildcard;
using util::Prefix;

class PacketTest : public ::testing::Test {
 protected:
  PacketTest() : layout_(mgr_) {}

  // The exact predicate of a concrete packet.
  BddRef Exact(const PacketExample& p) {
    BddRef f = mgr_.True();
    f = mgr_.And(f, layout_.MatchSrc(IpWildcard(p.src_ip)));
    f = mgr_.And(f, layout_.MatchDst(IpWildcard(p.dst_ip)));
    f = mgr_.And(f, layout_.ProtocolIs(p.protocol));
    f = mgr_.And(f, layout_.SrcPortIn({p.src_port, p.src_port}));
    f = mgr_.And(f, layout_.DstPortIn({p.dst_port, p.dst_port}));
    f = mgr_.And(f, layout_.IcmpTypeIs(p.icmp_type));
    return f;
  }

  bool Matches(const ir::AclLine& line, const PacketExample& p) {
    return mgr_.Intersects(layout_.MatchLine(line), Exact(p));
  }

  BddManager mgr_;
  PacketLayout layout_;
};

PacketExample Tcp(const char* src, const char* dst, std::uint16_t dport) {
  PacketExample p;
  p.src_ip = *Ipv4Address::Parse(src);
  p.dst_ip = *Ipv4Address::Parse(dst);
  p.protocol = ir::kProtoTcp;
  p.src_port = 32768;
  p.dst_port = dport;
  return p;
}

TEST_F(PacketTest, MatchLineFullTuple) {
  ir::AclLine line;
  line.action = ir::LineAction::kPermit;
  line.protocol = ir::kProtoTcp;
  line.src = IpWildcard(*Prefix::Parse("10.1.0.0/16"));
  line.dst = IpWildcard(*Prefix::Parse("10.2.0.0/16"));
  line.dst_ports.push_back({443, 443});

  EXPECT_TRUE(Matches(line, Tcp("10.1.5.5", "10.2.1.1", 443)));
  EXPECT_FALSE(Matches(line, Tcp("10.3.5.5", "10.2.1.1", 443)));  // src
  EXPECT_FALSE(Matches(line, Tcp("10.1.5.5", "10.9.1.1", 443)));  // dst
  EXPECT_FALSE(Matches(line, Tcp("10.1.5.5", "10.2.1.1", 80)));   // port
  PacketExample udp = Tcp("10.1.5.5", "10.2.1.1", 443);
  udp.protocol = ir::kProtoUdp;
  EXPECT_FALSE(Matches(line, udp));  // protocol
}

TEST_F(PacketTest, AnyProtocolLineMatchesAll) {
  ir::AclLine line;  // protocol nullopt = "ip", src/dst any.
  EXPECT_TRUE(Matches(line, Tcp("1.2.3.4", "5.6.7.8", 80)));
  PacketExample icmp;
  icmp.protocol = ir::kProtoIcmp;
  icmp.icmp_type = 8;
  EXPECT_TRUE(Matches(line, icmp));
}

TEST_F(PacketTest, PortDisjunction) {
  ir::AclLine line;
  line.protocol = ir::kProtoTcp;
  line.dst_ports.push_back({80, 80});
  line.dst_ports.push_back({443, 443});
  EXPECT_TRUE(Matches(line, Tcp("1.1.1.1", "2.2.2.2", 80)));
  EXPECT_TRUE(Matches(line, Tcp("1.1.1.1", "2.2.2.2", 443)));
  EXPECT_FALSE(Matches(line, Tcp("1.1.1.1", "2.2.2.2", 8080)));
}

TEST_F(PacketTest, PortRange) {
  ir::AclLine line;
  line.protocol = ir::kProtoUdp;
  line.dst_ports.push_back({1024, 65535});
  PacketExample p = Tcp("1.1.1.1", "2.2.2.2", 1024);
  p.protocol = ir::kProtoUdp;
  EXPECT_TRUE(Matches(line, p));
  p.dst_port = 1023;
  EXPECT_FALSE(Matches(line, p));
  p.dst_port = 65535;
  EXPECT_TRUE(Matches(line, p));
}

TEST_F(PacketTest, IcmpTypeMatch) {
  ir::AclLine line;
  line.protocol = ir::kProtoIcmp;
  line.icmp_type = 8;
  PacketExample echo;
  echo.protocol = ir::kProtoIcmp;
  echo.icmp_type = 8;
  EXPECT_TRUE(Matches(line, echo));
  echo.icmp_type = 0;
  EXPECT_FALSE(Matches(line, echo));
}

TEST_F(PacketTest, NonContiguousWildcardLine) {
  ir::AclLine line;
  line.src = IpWildcard(Ipv4Address(9, 140, 0, 0), 0x00000100u);
  PacketExample p;
  p.src_ip = Ipv4Address(9, 140, 1, 0);
  EXPECT_TRUE(Matches(line, p));
  p.src_ip = Ipv4Address(9, 140, 2, 0);
  EXPECT_FALSE(Matches(line, p));
}

TEST_F(PacketTest, DecodeRoundTrip) {
  PacketExample p = Tcp("10.1.5.5", "10.2.1.1", 443);
  p.src_port = 55555;
  auto cube = mgr_.AnySat(Exact(p));
  ASSERT_TRUE(cube.has_value());
  PacketExample decoded = layout_.Decode(*cube);
  EXPECT_EQ(decoded.src_ip, p.src_ip);
  EXPECT_EQ(decoded.dst_ip, p.dst_ip);
  EXPECT_EQ(decoded.protocol, p.protocol);
  EXPECT_EQ(decoded.src_port, p.src_port);
  EXPECT_EQ(decoded.dst_port, p.dst_port);
}

TEST_F(PacketTest, DstProjectionMask) {
  BddRef set = mgr_.And(layout_.MatchDstPrefix(*Prefix::Parse("10.2.0.0/16")),
                        layout_.ProtocolIs(ir::kProtoTcp));
  BddRef projected = mgr_.Exists(set, layout_.NonDstIpVarMask());
  EXPECT_EQ(projected, layout_.MatchDstPrefix(*Prefix::Parse("10.2.0.0/16")));
}

TEST_F(PacketTest, ExampleToStringShowsPortsOnlyForTcpUdp) {
  PacketExample tcp = Tcp("1.1.1.1", "2.2.2.2", 80);
  EXPECT_NE(tcp.ToString().find("dstPort: 80"), std::string::npos);
  PacketExample icmp;
  icmp.protocol = ir::kProtoIcmp;
  icmp.icmp_type = 3;
  std::string text = icmp.ToString();
  EXPECT_EQ(text.find("dstPort"), std::string::npos);
  EXPECT_NE(text.find("icmpType: 3"), std::string::npos);
}

}  // namespace
}  // namespace campion::encode
