#pragma once

// Shared fixtures for Campion's test suite: the Figure 1 configurations
// from the paper (as inline text, so the tests do not depend on data-file
// paths) and helpers to build small IR components programmatically.

#include <string>

#include "cisco/cisco_parser.h"
#include "ir/config.h"
#include "juniper/juniper_parser.h"

namespace campion::testing {

// Figure 1(a): the Cisco route map with `le 32` prefix windows and an
// OR-semantics community list.
inline const char* kFig1Cisco = R"(hostname cisco_router
!
interface Ethernet1
 ip address 10.0.12.1 255.255.255.0
!
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
!
ip route 10.1.1.2 255.255.255.254 10.2.2.2
!
router bgp 65000
 bgp router-id 10.0.12.1
 neighbor 10.0.12.9 remote-as 65001
 neighbor 10.0.12.9 route-map POL out
 neighbor 10.0.12.9 send-community
!
end
)";

// Figure 1(b): the Juniper policy with exact-match prefix list and an
// AND-semantics community.
inline const char* kFig1Juniper = R"(system {
    host-name juniper_router;
}
interfaces {
    ge-0/0/0 {
        unit 0 {
            family inet {
                address 10.0.12.2/24;
            }
        }
    }
}
routing-options {
    router-id 10.0.12.2;
    autonomous-system 65000;
}
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 {
            from {
                prefix-list NETS;
            }
            then reject;
        }
        term rule2 {
            from {
                community COMM;
            }
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
protocols {
    bgp {
        group ebgp-peers {
            type external;
            peer-as 65001;
            neighbor 10.0.12.9 {
                export POL;
            }
        }
    }
}
)";

inline ir::RouterConfig ParseCiscoOrDie(const std::string& text) {
  auto result = cisco::ParseCiscoConfig(text, "test.cfg");
  return result.config;
}

inline ir::RouterConfig ParseJuniperOrDie(const std::string& text) {
  auto result = juniper::ParseJuniperConfig(text, "test.conf");
  return result.config;
}

}  // namespace campion::testing
