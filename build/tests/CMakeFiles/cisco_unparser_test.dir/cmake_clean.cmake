file(REMOVE_RECURSE
  "CMakeFiles/cisco_unparser_test.dir/cisco/cisco_unparser_test.cc.o"
  "CMakeFiles/cisco_unparser_test.dir/cisco/cisco_unparser_test.cc.o.d"
  "cisco_unparser_test"
  "cisco_unparser_test.pdb"
  "cisco_unparser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisco_unparser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
