# Empty compiler generated dependencies file for cisco_unparser_test.
# This may be replaced when dependencies are built.
