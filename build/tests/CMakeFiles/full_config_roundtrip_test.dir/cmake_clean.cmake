file(REMOVE_RECURSE
  "CMakeFiles/full_config_roundtrip_test.dir/integration/full_config_roundtrip_test.cc.o"
  "CMakeFiles/full_config_roundtrip_test.dir/integration/full_config_roundtrip_test.cc.o.d"
  "full_config_roundtrip_test"
  "full_config_roundtrip_test.pdb"
  "full_config_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_config_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
