# Empty dependencies file for full_config_roundtrip_test.
# This may be replaced when dependencies are built.
