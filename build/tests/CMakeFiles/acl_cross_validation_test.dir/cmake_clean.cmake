file(REMOVE_RECURSE
  "CMakeFiles/acl_cross_validation_test.dir/integration/acl_cross_validation_test.cc.o"
  "CMakeFiles/acl_cross_validation_test.dir/integration/acl_cross_validation_test.cc.o.d"
  "acl_cross_validation_test"
  "acl_cross_validation_test.pdb"
  "acl_cross_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_cross_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
