# Empty compiler generated dependencies file for semantic_diff_test.
# This may be replaced when dependencies are built.
