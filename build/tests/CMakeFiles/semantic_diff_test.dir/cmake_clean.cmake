file(REMOVE_RECURSE
  "CMakeFiles/semantic_diff_test.dir/core/semantic_diff_test.cc.o"
  "CMakeFiles/semantic_diff_test.dir/core/semantic_diff_test.cc.o.d"
  "semantic_diff_test"
  "semantic_diff_test.pdb"
  "semantic_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
