file(REMOVE_RECURSE
  "CMakeFiles/cisco_parser_test.dir/cisco/cisco_parser_test.cc.o"
  "CMakeFiles/cisco_parser_test.dir/cisco/cisco_parser_test.cc.o.d"
  "cisco_parser_test"
  "cisco_parser_test.pdb"
  "cisco_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisco_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
