# Empty dependencies file for cisco_parser_test.
# This may be replaced when dependencies are built.
