file(REMOVE_RECURSE
  "CMakeFiles/ir_config_test.dir/ir/config_test.cc.o"
  "CMakeFiles/ir_config_test.dir/ir/config_test.cc.o.d"
  "ir_config_test"
  "ir_config_test.pdb"
  "ir_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
