# Empty compiler generated dependencies file for symbolic_field_test.
# This may be replaced when dependencies are built.
