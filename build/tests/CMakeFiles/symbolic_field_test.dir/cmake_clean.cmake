file(REMOVE_RECURSE
  "CMakeFiles/symbolic_field_test.dir/encode/symbolic_field_test.cc.o"
  "CMakeFiles/symbolic_field_test.dir/encode/symbolic_field_test.cc.o.d"
  "symbolic_field_test"
  "symbolic_field_test.pdb"
  "symbolic_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
