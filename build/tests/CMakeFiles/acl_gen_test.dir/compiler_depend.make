# Empty compiler generated dependencies file for acl_gen_test.
# This may be replaced when dependencies are built.
