file(REMOVE_RECURSE
  "CMakeFiles/acl_gen_test.dir/gen/acl_gen_test.cc.o"
  "CMakeFiles/acl_gen_test.dir/gen/acl_gen_test.cc.o.d"
  "acl_gen_test"
  "acl_gen_test.pdb"
  "acl_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
