file(REMOVE_RECURSE
  "CMakeFiles/juniper_unparser_test.dir/juniper/juniper_unparser_test.cc.o"
  "CMakeFiles/juniper_unparser_test.dir/juniper/juniper_unparser_test.cc.o.d"
  "juniper_unparser_test"
  "juniper_unparser_test.pdb"
  "juniper_unparser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juniper_unparser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
