# Empty compiler generated dependencies file for juniper_unparser_test.
# This may be replaced when dependencies are built.
