# Empty dependencies file for juniper_parser_test.
# This may be replaced when dependencies are built.
