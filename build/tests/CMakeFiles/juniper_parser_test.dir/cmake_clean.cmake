file(REMOVE_RECURSE
  "CMakeFiles/juniper_parser_test.dir/juniper/juniper_parser_test.cc.o"
  "CMakeFiles/juniper_parser_test.dir/juniper/juniper_parser_test.cc.o.d"
  "juniper_parser_test"
  "juniper_parser_test.pdb"
  "juniper_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juniper_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
