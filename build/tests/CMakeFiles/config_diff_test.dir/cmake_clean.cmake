file(REMOVE_RECURSE
  "CMakeFiles/config_diff_test.dir/core/config_diff_test.cc.o"
  "CMakeFiles/config_diff_test.dir/core/config_diff_test.cc.o.d"
  "config_diff_test"
  "config_diff_test.pdb"
  "config_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
