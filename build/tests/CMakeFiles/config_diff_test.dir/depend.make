# Empty dependencies file for config_diff_test.
# This may be replaced when dependencies are built.
