file(REMOVE_RECURSE
  "CMakeFiles/extended_features_test.dir/integration/extended_features_test.cc.o"
  "CMakeFiles/extended_features_test.dir/integration/extended_features_test.cc.o.d"
  "extended_features_test"
  "extended_features_test.pdb"
  "extended_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
