
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/present_test.cc" "tests/CMakeFiles/present_test.dir/core/present_test.cc.o" "gcc" "tests/CMakeFiles/present_test.dir/core/present_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/campion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/campion_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/campion_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/campion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/campion_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/cisco/CMakeFiles/campion_cisco.dir/DependInfo.cmake"
  "/root/repo/build/src/juniper/CMakeFiles/campion_juniper.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/campion_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/campion_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/campion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/campion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
