# Empty dependencies file for policy_encoder_test.
# This may be replaced when dependencies are built.
