file(REMOVE_RECURSE
  "CMakeFiles/policy_encoder_test.dir/encode/policy_encoder_test.cc.o"
  "CMakeFiles/policy_encoder_test.dir/encode/policy_encoder_test.cc.o.d"
  "policy_encoder_test"
  "policy_encoder_test.pdb"
  "policy_encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
