# Empty compiler generated dependencies file for header_localize_test.
# This may be replaced when dependencies are built.
