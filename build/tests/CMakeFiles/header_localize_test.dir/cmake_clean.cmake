file(REMOVE_RECURSE
  "CMakeFiles/header_localize_test.dir/core/header_localize_test.cc.o"
  "CMakeFiles/header_localize_test.dir/core/header_localize_test.cc.o.d"
  "header_localize_test"
  "header_localize_test.pdb"
  "header_localize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/header_localize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
