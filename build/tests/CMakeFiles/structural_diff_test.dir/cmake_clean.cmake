file(REMOVE_RECURSE
  "CMakeFiles/structural_diff_test.dir/core/structural_diff_test.cc.o"
  "CMakeFiles/structural_diff_test.dir/core/structural_diff_test.cc.o.d"
  "structural_diff_test"
  "structural_diff_test.pdb"
  "structural_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
