# Empty dependencies file for structural_diff_test.
# This may be replaced when dependencies are built.
