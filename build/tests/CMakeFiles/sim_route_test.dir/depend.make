# Empty dependencies file for sim_route_test.
# This may be replaced when dependencies are built.
