# Empty compiler generated dependencies file for prefix_range_test.
# This may be replaced when dependencies are built.
