file(REMOVE_RECURSE
  "CMakeFiles/prefix_range_test.dir/util/prefix_range_test.cc.o"
  "CMakeFiles/prefix_range_test.dir/util/prefix_range_test.cc.o.d"
  "prefix_range_test"
  "prefix_range_test.pdb"
  "prefix_range_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
