# Empty dependencies file for prefix_range_test.
# This may be replaced when dependencies are built.
