file(REMOVE_RECURSE
  "CMakeFiles/ddnf_test.dir/core/ddnf_test.cc.o"
  "CMakeFiles/ddnf_test.dir/core/ddnf_test.cc.o.d"
  "ddnf_test"
  "ddnf_test.pdb"
  "ddnf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
