# Empty dependencies file for ddnf_test.
# This may be replaced when dependencies are built.
