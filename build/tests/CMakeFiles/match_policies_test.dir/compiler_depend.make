# Empty compiler generated dependencies file for match_policies_test.
# This may be replaced when dependencies are built.
