file(REMOVE_RECURSE
  "CMakeFiles/match_policies_test.dir/core/match_policies_test.cc.o"
  "CMakeFiles/match_policies_test.dir/core/match_policies_test.cc.o.d"
  "match_policies_test"
  "match_policies_test.pdb"
  "match_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
