# Empty dependencies file for route_adv_test.
# This may be replaced when dependencies are built.
