file(REMOVE_RECURSE
  "CMakeFiles/route_adv_test.dir/encode/route_adv_test.cc.o"
  "CMakeFiles/route_adv_test.dir/encode/route_adv_test.cc.o.d"
  "route_adv_test"
  "route_adv_test.pdb"
  "route_adv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_adv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
