file(REMOVE_RECURSE
  "CMakeFiles/route_action_test.dir/core/route_action_test.cc.o"
  "CMakeFiles/route_action_test.dir/core/route_action_test.cc.o.d"
  "route_action_test"
  "route_action_test.pdb"
  "route_action_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_action_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
