# Empty dependencies file for route_action_test.
# This may be replaced when dependencies are built.
