file(REMOVE_RECURSE
  "CMakeFiles/field_intervals_test.dir/encode/field_intervals_test.cc.o"
  "CMakeFiles/field_intervals_test.dir/encode/field_intervals_test.cc.o.d"
  "field_intervals_test"
  "field_intervals_test.pdb"
  "field_intervals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_intervals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
