# Empty compiler generated dependencies file for field_intervals_test.
# This may be replaced when dependencies are built.
