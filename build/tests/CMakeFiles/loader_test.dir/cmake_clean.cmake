file(REMOVE_RECURSE
  "CMakeFiles/loader_test.dir/frontend/loader_test.cc.o"
  "CMakeFiles/loader_test.dir/frontend/loader_test.cc.o.d"
  "loader_test"
  "loader_test.pdb"
  "loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
