# Empty compiler generated dependencies file for router_replacement.
# This may be replaced when dependencies are built.
