file(REMOVE_RECURSE
  "CMakeFiles/router_replacement.dir/router_replacement.cpp.o"
  "CMakeFiles/router_replacement.dir/router_replacement.cpp.o.d"
  "router_replacement"
  "router_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
