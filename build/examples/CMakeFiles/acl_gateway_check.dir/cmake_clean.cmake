file(REMOVE_RECURSE
  "CMakeFiles/acl_gateway_check.dir/acl_gateway_check.cpp.o"
  "CMakeFiles/acl_gateway_check.dir/acl_gateway_check.cpp.o.d"
  "acl_gateway_check"
  "acl_gateway_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_gateway_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
