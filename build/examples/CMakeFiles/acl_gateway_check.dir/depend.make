# Empty dependencies file for acl_gateway_check.
# This may be replaced when dependencies are built.
