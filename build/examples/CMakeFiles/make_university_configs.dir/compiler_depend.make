# Empty compiler generated dependencies file for make_university_configs.
# This may be replaced when dependencies are built.
