file(REMOVE_RECURSE
  "CMakeFiles/make_university_configs.dir/make_university_configs.cpp.o"
  "CMakeFiles/make_university_configs.dir/make_university_configs.cpp.o.d"
  "make_university_configs"
  "make_university_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_university_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
