file(REMOVE_RECURSE
  "CMakeFiles/backup_router_audit.dir/backup_router_audit.cpp.o"
  "CMakeFiles/backup_router_audit.dir/backup_router_audit.cpp.o.d"
  "backup_router_audit"
  "backup_router_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_router_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
