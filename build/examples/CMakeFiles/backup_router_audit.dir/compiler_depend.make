# Empty compiler generated dependencies file for backup_router_audit.
# This may be replaced when dependencies are built.
