# Empty dependencies file for campion_core.
# This may be replaced when dependencies are built.
