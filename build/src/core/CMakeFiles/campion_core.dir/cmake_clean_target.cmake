file(REMOVE_RECURSE
  "libcampion_core.a"
)
