file(REMOVE_RECURSE
  "CMakeFiles/campion_core.dir/config_diff.cc.o"
  "CMakeFiles/campion_core.dir/config_diff.cc.o.d"
  "CMakeFiles/campion_core.dir/ddnf.cc.o"
  "CMakeFiles/campion_core.dir/ddnf.cc.o.d"
  "CMakeFiles/campion_core.dir/header_localize.cc.o"
  "CMakeFiles/campion_core.dir/header_localize.cc.o.d"
  "CMakeFiles/campion_core.dir/json_report.cc.o"
  "CMakeFiles/campion_core.dir/json_report.cc.o.d"
  "CMakeFiles/campion_core.dir/match_policies.cc.o"
  "CMakeFiles/campion_core.dir/match_policies.cc.o.d"
  "CMakeFiles/campion_core.dir/present.cc.o"
  "CMakeFiles/campion_core.dir/present.cc.o.d"
  "CMakeFiles/campion_core.dir/route_action.cc.o"
  "CMakeFiles/campion_core.dir/route_action.cc.o.d"
  "CMakeFiles/campion_core.dir/semantic_diff.cc.o"
  "CMakeFiles/campion_core.dir/semantic_diff.cc.o.d"
  "CMakeFiles/campion_core.dir/structural_diff.cc.o"
  "CMakeFiles/campion_core.dir/structural_diff.cc.o.d"
  "libcampion_core.a"
  "libcampion_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
