
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_diff.cc" "src/core/CMakeFiles/campion_core.dir/config_diff.cc.o" "gcc" "src/core/CMakeFiles/campion_core.dir/config_diff.cc.o.d"
  "/root/repo/src/core/ddnf.cc" "src/core/CMakeFiles/campion_core.dir/ddnf.cc.o" "gcc" "src/core/CMakeFiles/campion_core.dir/ddnf.cc.o.d"
  "/root/repo/src/core/header_localize.cc" "src/core/CMakeFiles/campion_core.dir/header_localize.cc.o" "gcc" "src/core/CMakeFiles/campion_core.dir/header_localize.cc.o.d"
  "/root/repo/src/core/json_report.cc" "src/core/CMakeFiles/campion_core.dir/json_report.cc.o" "gcc" "src/core/CMakeFiles/campion_core.dir/json_report.cc.o.d"
  "/root/repo/src/core/match_policies.cc" "src/core/CMakeFiles/campion_core.dir/match_policies.cc.o" "gcc" "src/core/CMakeFiles/campion_core.dir/match_policies.cc.o.d"
  "/root/repo/src/core/present.cc" "src/core/CMakeFiles/campion_core.dir/present.cc.o" "gcc" "src/core/CMakeFiles/campion_core.dir/present.cc.o.d"
  "/root/repo/src/core/route_action.cc" "src/core/CMakeFiles/campion_core.dir/route_action.cc.o" "gcc" "src/core/CMakeFiles/campion_core.dir/route_action.cc.o.d"
  "/root/repo/src/core/semantic_diff.cc" "src/core/CMakeFiles/campion_core.dir/semantic_diff.cc.o" "gcc" "src/core/CMakeFiles/campion_core.dir/semantic_diff.cc.o.d"
  "/root/repo/src/core/structural_diff.cc" "src/core/CMakeFiles/campion_core.dir/structural_diff.cc.o" "gcc" "src/core/CMakeFiles/campion_core.dir/structural_diff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/encode/CMakeFiles/campion_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/campion_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/campion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/campion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
