
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/community.cc" "src/util/CMakeFiles/campion_util.dir/community.cc.o" "gcc" "src/util/CMakeFiles/campion_util.dir/community.cc.o.d"
  "/root/repo/src/util/ip.cc" "src/util/CMakeFiles/campion_util.dir/ip.cc.o" "gcc" "src/util/CMakeFiles/campion_util.dir/ip.cc.o.d"
  "/root/repo/src/util/prefix_range.cc" "src/util/CMakeFiles/campion_util.dir/prefix_range.cc.o" "gcc" "src/util/CMakeFiles/campion_util.dir/prefix_range.cc.o.d"
  "/root/repo/src/util/source_span.cc" "src/util/CMakeFiles/campion_util.dir/source_span.cc.o" "gcc" "src/util/CMakeFiles/campion_util.dir/source_span.cc.o.d"
  "/root/repo/src/util/text_table.cc" "src/util/CMakeFiles/campion_util.dir/text_table.cc.o" "gcc" "src/util/CMakeFiles/campion_util.dir/text_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
