file(REMOVE_RECURSE
  "CMakeFiles/campion_util.dir/community.cc.o"
  "CMakeFiles/campion_util.dir/community.cc.o.d"
  "CMakeFiles/campion_util.dir/ip.cc.o"
  "CMakeFiles/campion_util.dir/ip.cc.o.d"
  "CMakeFiles/campion_util.dir/prefix_range.cc.o"
  "CMakeFiles/campion_util.dir/prefix_range.cc.o.d"
  "CMakeFiles/campion_util.dir/source_span.cc.o"
  "CMakeFiles/campion_util.dir/source_span.cc.o.d"
  "CMakeFiles/campion_util.dir/text_table.cc.o"
  "CMakeFiles/campion_util.dir/text_table.cc.o.d"
  "libcampion_util.a"
  "libcampion_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
