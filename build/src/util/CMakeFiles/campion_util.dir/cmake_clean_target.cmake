file(REMOVE_RECURSE
  "libcampion_util.a"
)
