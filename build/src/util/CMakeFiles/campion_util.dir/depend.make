# Empty dependencies file for campion_util.
# This may be replaced when dependencies are built.
