file(REMOVE_RECURSE
  "CMakeFiles/campion_encode.dir/packet.cc.o"
  "CMakeFiles/campion_encode.dir/packet.cc.o.d"
  "CMakeFiles/campion_encode.dir/policy_encoder.cc.o"
  "CMakeFiles/campion_encode.dir/policy_encoder.cc.o.d"
  "CMakeFiles/campion_encode.dir/route_adv.cc.o"
  "CMakeFiles/campion_encode.dir/route_adv.cc.o.d"
  "CMakeFiles/campion_encode.dir/symbolic_field.cc.o"
  "CMakeFiles/campion_encode.dir/symbolic_field.cc.o.d"
  "libcampion_encode.a"
  "libcampion_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
