# Empty compiler generated dependencies file for campion_encode.
# This may be replaced when dependencies are built.
