file(REMOVE_RECURSE
  "libcampion_encode.a"
)
