
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encode/packet.cc" "src/encode/CMakeFiles/campion_encode.dir/packet.cc.o" "gcc" "src/encode/CMakeFiles/campion_encode.dir/packet.cc.o.d"
  "/root/repo/src/encode/policy_encoder.cc" "src/encode/CMakeFiles/campion_encode.dir/policy_encoder.cc.o" "gcc" "src/encode/CMakeFiles/campion_encode.dir/policy_encoder.cc.o.d"
  "/root/repo/src/encode/route_adv.cc" "src/encode/CMakeFiles/campion_encode.dir/route_adv.cc.o" "gcc" "src/encode/CMakeFiles/campion_encode.dir/route_adv.cc.o.d"
  "/root/repo/src/encode/symbolic_field.cc" "src/encode/CMakeFiles/campion_encode.dir/symbolic_field.cc.o" "gcc" "src/encode/CMakeFiles/campion_encode.dir/symbolic_field.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdd/CMakeFiles/campion_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/campion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/campion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
