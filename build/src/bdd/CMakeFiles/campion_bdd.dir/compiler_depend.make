# Empty compiler generated dependencies file for campion_bdd.
# This may be replaced when dependencies are built.
