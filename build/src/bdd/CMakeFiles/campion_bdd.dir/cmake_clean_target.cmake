file(REMOVE_RECURSE
  "libcampion_bdd.a"
)
