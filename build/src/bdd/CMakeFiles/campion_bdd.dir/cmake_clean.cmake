file(REMOVE_RECURSE
  "CMakeFiles/campion_bdd.dir/bdd.cc.o"
  "CMakeFiles/campion_bdd.dir/bdd.cc.o.d"
  "libcampion_bdd.a"
  "libcampion_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
