# CMake generated Testfile for 
# Source directory: /root/repo/src/juniper
# Build directory: /root/repo/build/src/juniper
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
