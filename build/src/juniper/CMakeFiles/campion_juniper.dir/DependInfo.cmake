
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/juniper/juniper_parser.cc" "src/juniper/CMakeFiles/campion_juniper.dir/juniper_parser.cc.o" "gcc" "src/juniper/CMakeFiles/campion_juniper.dir/juniper_parser.cc.o.d"
  "/root/repo/src/juniper/juniper_unparser.cc" "src/juniper/CMakeFiles/campion_juniper.dir/juniper_unparser.cc.o" "gcc" "src/juniper/CMakeFiles/campion_juniper.dir/juniper_unparser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/campion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/campion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
