file(REMOVE_RECURSE
  "libcampion_juniper.a"
)
