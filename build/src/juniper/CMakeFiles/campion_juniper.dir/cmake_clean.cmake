file(REMOVE_RECURSE
  "CMakeFiles/campion_juniper.dir/juniper_parser.cc.o"
  "CMakeFiles/campion_juniper.dir/juniper_parser.cc.o.d"
  "CMakeFiles/campion_juniper.dir/juniper_unparser.cc.o"
  "CMakeFiles/campion_juniper.dir/juniper_unparser.cc.o.d"
  "libcampion_juniper.a"
  "libcampion_juniper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_juniper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
