# Empty compiler generated dependencies file for campion_juniper.
# This may be replaced when dependencies are built.
