file(REMOVE_RECURSE
  "CMakeFiles/campion.dir/campion_main.cc.o"
  "CMakeFiles/campion.dir/campion_main.cc.o.d"
  "campion"
  "campion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
