# Empty dependencies file for campion.
# This may be replaced when dependencies are built.
