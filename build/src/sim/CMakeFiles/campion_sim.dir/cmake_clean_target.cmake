file(REMOVE_RECURSE
  "libcampion_sim.a"
)
