# Empty compiler generated dependencies file for campion_sim.
# This may be replaced when dependencies are built.
