file(REMOVE_RECURSE
  "CMakeFiles/campion_sim.dir/network.cc.o"
  "CMakeFiles/campion_sim.dir/network.cc.o.d"
  "CMakeFiles/campion_sim.dir/route.cc.o"
  "CMakeFiles/campion_sim.dir/route.cc.o.d"
  "libcampion_sim.a"
  "libcampion_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
