# Empty compiler generated dependencies file for campion_frontend.
# This may be replaced when dependencies are built.
