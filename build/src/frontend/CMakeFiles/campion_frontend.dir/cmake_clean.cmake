file(REMOVE_RECURSE
  "CMakeFiles/campion_frontend.dir/loader.cc.o"
  "CMakeFiles/campion_frontend.dir/loader.cc.o.d"
  "libcampion_frontend.a"
  "libcampion_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
