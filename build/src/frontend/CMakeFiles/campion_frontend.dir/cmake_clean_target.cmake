file(REMOVE_RECURSE
  "libcampion_frontend.a"
)
