# Empty dependencies file for campion_ir.
# This may be replaced when dependencies are built.
