file(REMOVE_RECURSE
  "libcampion_ir.a"
)
