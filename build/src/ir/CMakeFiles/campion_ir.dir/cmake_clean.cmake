file(REMOVE_RECURSE
  "CMakeFiles/campion_ir.dir/config.cc.o"
  "CMakeFiles/campion_ir.dir/config.cc.o.d"
  "CMakeFiles/campion_ir.dir/policy.cc.o"
  "CMakeFiles/campion_ir.dir/policy.cc.o.d"
  "libcampion_ir.a"
  "libcampion_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
