# Empty compiler generated dependencies file for campion_baseline.
# This may be replaced when dependencies are built.
