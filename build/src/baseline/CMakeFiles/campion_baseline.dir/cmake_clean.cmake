file(REMOVE_RECURSE
  "CMakeFiles/campion_baseline.dir/monolithic.cc.o"
  "CMakeFiles/campion_baseline.dir/monolithic.cc.o.d"
  "libcampion_baseline.a"
  "libcampion_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
