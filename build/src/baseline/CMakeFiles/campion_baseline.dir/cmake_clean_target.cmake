file(REMOVE_RECURSE
  "libcampion_baseline.a"
)
