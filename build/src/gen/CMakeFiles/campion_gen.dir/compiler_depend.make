# Empty compiler generated dependencies file for campion_gen.
# This may be replaced when dependencies are built.
