file(REMOVE_RECURSE
  "libcampion_gen.a"
)
