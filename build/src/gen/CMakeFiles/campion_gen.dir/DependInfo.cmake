
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/acl_gen.cc" "src/gen/CMakeFiles/campion_gen.dir/acl_gen.cc.o" "gcc" "src/gen/CMakeFiles/campion_gen.dir/acl_gen.cc.o.d"
  "/root/repo/src/gen/route_map_gen.cc" "src/gen/CMakeFiles/campion_gen.dir/route_map_gen.cc.o" "gcc" "src/gen/CMakeFiles/campion_gen.dir/route_map_gen.cc.o.d"
  "/root/repo/src/gen/router_gen.cc" "src/gen/CMakeFiles/campion_gen.dir/router_gen.cc.o" "gcc" "src/gen/CMakeFiles/campion_gen.dir/router_gen.cc.o.d"
  "/root/repo/src/gen/scenarios.cc" "src/gen/CMakeFiles/campion_gen.dir/scenarios.cc.o" "gcc" "src/gen/CMakeFiles/campion_gen.dir/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/campion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/campion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
