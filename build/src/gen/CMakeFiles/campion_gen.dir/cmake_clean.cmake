file(REMOVE_RECURSE
  "CMakeFiles/campion_gen.dir/acl_gen.cc.o"
  "CMakeFiles/campion_gen.dir/acl_gen.cc.o.d"
  "CMakeFiles/campion_gen.dir/route_map_gen.cc.o"
  "CMakeFiles/campion_gen.dir/route_map_gen.cc.o.d"
  "CMakeFiles/campion_gen.dir/router_gen.cc.o"
  "CMakeFiles/campion_gen.dir/router_gen.cc.o.d"
  "CMakeFiles/campion_gen.dir/scenarios.cc.o"
  "CMakeFiles/campion_gen.dir/scenarios.cc.o.d"
  "libcampion_gen.a"
  "libcampion_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
