file(REMOVE_RECURSE
  "libcampion_cisco.a"
)
