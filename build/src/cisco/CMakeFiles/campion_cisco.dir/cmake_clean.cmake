file(REMOVE_RECURSE
  "CMakeFiles/campion_cisco.dir/cisco_parser.cc.o"
  "CMakeFiles/campion_cisco.dir/cisco_parser.cc.o.d"
  "CMakeFiles/campion_cisco.dir/cisco_unparser.cc.o"
  "CMakeFiles/campion_cisco.dir/cisco_unparser.cc.o.d"
  "libcampion_cisco.a"
  "libcampion_cisco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campion_cisco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
