# Empty dependencies file for campion_cisco.
# This may be replaced when dependencies are built.
