
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cisco/cisco_parser.cc" "src/cisco/CMakeFiles/campion_cisco.dir/cisco_parser.cc.o" "gcc" "src/cisco/CMakeFiles/campion_cisco.dir/cisco_parser.cc.o.d"
  "/root/repo/src/cisco/cisco_unparser.cc" "src/cisco/CMakeFiles/campion_cisco.dir/cisco_unparser.cc.o" "gcc" "src/cisco/CMakeFiles/campion_cisco.dir/cisco_unparser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/campion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/campion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
