# Empty compiler generated dependencies file for bench_counterexample_enumeration.
# This may be replaced when dependencies are built.
