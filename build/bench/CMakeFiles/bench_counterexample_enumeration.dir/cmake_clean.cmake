file(REMOVE_RECURSE
  "CMakeFiles/bench_counterexample_enumeration.dir/bench_counterexample_enumeration.cc.o"
  "CMakeFiles/bench_counterexample_enumeration.dir/bench_counterexample_enumeration.cc.o.d"
  "bench_counterexample_enumeration"
  "bench_counterexample_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counterexample_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
