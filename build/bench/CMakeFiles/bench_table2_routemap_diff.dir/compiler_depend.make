# Empty compiler generated dependencies file for bench_table2_routemap_diff.
# This may be replaced when dependencies are built.
