file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_routemap_diff.dir/bench_table2_routemap_diff.cc.o"
  "CMakeFiles/bench_table2_routemap_diff.dir/bench_table2_routemap_diff.cc.o.d"
  "bench_table2_routemap_diff"
  "bench_table2_routemap_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_routemap_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
