file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_acl.dir/bench_scalability_acl.cc.o"
  "CMakeFiles/bench_scalability_acl.dir/bench_scalability_acl.cc.o.d"
  "bench_scalability_acl"
  "bench_scalability_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
