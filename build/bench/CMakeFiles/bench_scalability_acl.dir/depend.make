# Empty dependencies file for bench_scalability_acl.
# This may be replaced when dependencies are built.
