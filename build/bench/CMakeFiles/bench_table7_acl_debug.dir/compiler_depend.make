# Empty compiler generated dependencies file for bench_table7_acl_debug.
# This may be replaced when dependencies are built.
