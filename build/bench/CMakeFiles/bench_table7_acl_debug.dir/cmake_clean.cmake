file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_acl_debug.dir/bench_table7_acl_debug.cc.o"
  "CMakeFiles/bench_table7_acl_debug.dir/bench_table7_acl_debug.cc.o.d"
  "bench_table7_acl_debug"
  "bench_table7_acl_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_acl_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
