file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_minesweeper.dir/bench_table3_minesweeper.cc.o"
  "CMakeFiles/bench_table3_minesweeper.dir/bench_table3_minesweeper.cc.o.d"
  "bench_table3_minesweeper"
  "bench_table3_minesweeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_minesweeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
