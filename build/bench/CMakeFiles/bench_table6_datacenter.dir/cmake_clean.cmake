file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_datacenter.dir/bench_table6_datacenter.cc.o"
  "CMakeFiles/bench_table6_datacenter.dir/bench_table6_datacenter.cc.o.d"
  "bench_table6_datacenter"
  "bench_table6_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
