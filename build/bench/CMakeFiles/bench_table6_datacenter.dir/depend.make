# Empty dependencies file for bench_table6_datacenter.
# This may be replaced when dependencies are built.
