file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_university.dir/bench_table8_university.cc.o"
  "CMakeFiles/bench_table8_university.dir/bench_table8_university.cc.o.d"
  "bench_table8_university"
  "bench_table8_university.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_university.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
