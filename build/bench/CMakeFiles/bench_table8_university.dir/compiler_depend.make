# Empty compiler generated dependencies file for bench_table8_university.
# This may be replaced when dependencies are built.
