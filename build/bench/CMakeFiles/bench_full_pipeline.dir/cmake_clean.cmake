file(REMOVE_RECURSE
  "CMakeFiles/bench_full_pipeline.dir/bench_full_pipeline.cc.o"
  "CMakeFiles/bench_full_pipeline.dir/bench_full_pipeline.cc.o.d"
  "bench_full_pipeline"
  "bench_full_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
