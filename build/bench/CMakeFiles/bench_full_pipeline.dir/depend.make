# Empty dependencies file for bench_full_pipeline.
# This may be replaced when dependencies are built.
