file(REMOVE_RECURSE
  "CMakeFiles/bench_localization_efficiency.dir/bench_localization_efficiency.cc.o"
  "CMakeFiles/bench_localization_efficiency.dir/bench_localization_efficiency.cc.o.d"
  "bench_localization_efficiency"
  "bench_localization_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_localization_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
