# Empty dependencies file for bench_table4_static_structural.
# This may be replaced when dependencies are built.
