file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_static_structural.dir/bench_table4_static_structural.cc.o"
  "CMakeFiles/bench_table4_static_structural.dir/bench_table4_static_structural.cc.o.d"
  "bench_table4_static_structural"
  "bench_table4_static_structural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_static_structural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
