# Empty dependencies file for bench_soundness_sim.
# This may be replaced when dependencies are built.
