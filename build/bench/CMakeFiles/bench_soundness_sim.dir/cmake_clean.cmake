file(REMOVE_RECURSE
  "CMakeFiles/bench_soundness_sim.dir/bench_soundness_sim.cc.o"
  "CMakeFiles/bench_soundness_sim.dir/bench_soundness_sim.cc.o.d"
  "bench_soundness_sim"
  "bench_soundness_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soundness_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
