file(REMOVE_RECURSE
  "CMakeFiles/bench_headerlocalize.dir/bench_headerlocalize.cc.o"
  "CMakeFiles/bench_headerlocalize.dir/bench_headerlocalize.cc.o.d"
  "bench_headerlocalize"
  "bench_headerlocalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headerlocalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
