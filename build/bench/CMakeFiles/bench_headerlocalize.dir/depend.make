# Empty dependencies file for bench_headerlocalize.
# This may be replaced when dependencies are built.
