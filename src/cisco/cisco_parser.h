#pragma once

// Cisco IOS configuration frontend. Parses the IOS feature subset exercised
// by the paper — prefix lists, standard community lists, route maps,
// extended ACLs (named and numbered), static routes, interfaces, OSPF, and
// BGP — into the vendor-independent IR, recording source line spans on
// every component for text localization.
//
// Lines the parser does not understand are collected as diagnostics rather
// than failing the parse: real configurations are full of directives
// irrelevant to routing behavior.

#include <string>
#include <vector>

#include "ir/config.h"

namespace campion::cisco {

struct ParseResult {
  ir::RouterConfig config;
  // Unrecognized or malformed lines ("file:line: message").
  std::vector<std::string> diagnostics;
};

ParseResult ParseCiscoConfig(const std::string& text,
                             const std::string& filename = "<input>");

// Convenience: reads the file and parses it. Throws std::runtime_error if
// the file cannot be read.
ParseResult ParseCiscoFile(const std::string& path);

}  // namespace campion::cisco
