#pragma once

// Emits canonical Cisco IOS configuration text from the vendor-independent
// IR. Used by the workload generator (which builds IR directly) and by the
// round-trip tests (unparse → parse → compare). The emitted text parses
// back to an equivalent RouterConfig.

#include <string>

#include "ir/config.h"

namespace campion::cisco {

std::string UnparseCiscoConfig(const ir::RouterConfig& config);

// Individual components (useful for synthesizing partial configs).
std::string UnparsePrefixList(const ir::PrefixList& list);
std::string UnparseCommunityList(const ir::CommunityList& list);
std::string UnparseRouteMap(const ir::RouteMap& map);
std::string UnparseAcl(const ir::Acl& acl);
std::string UnparseStaticRoute(const ir::StaticRoute& route);

}  // namespace campion::cisco
