#include "cisco/cisco_parser.h"

#include <charconv>
#include <map>
#include <fstream>
#include <optional>
#include <sstream>

#include "util/community.h"
#include "util/text_table.h"

namespace campion::cisco {
namespace {

using ir::LineAction;
using ir::Protocol;
using util::Ipv4Address;
using util::IpWildcard;
using util::Prefix;

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

std::optional<std::uint32_t> ParseNumber(const std::string& token) {
  std::uint32_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<Protocol> ParseProtocolName(const std::string& token) {
  if (token == "static") return Protocol::kStatic;
  if (token == "connected") return Protocol::kConnected;
  if (token == "ospf") return Protocol::kOspf;
  if (token == "bgp") return Protocol::kBgp;
  return std::nullopt;
}

std::optional<std::uint8_t> ParseIpProtocol(const std::string& token) {
  if (token == "ip" || token == "ipv6") return std::nullopt;  // Any protocol.
  if (token == "icmp") return ir::kProtoIcmp;
  if (token == "icmpv6") return ir::kProtoIcmpv6;
  if (token == "tcp") return ir::kProtoTcp;
  if (token == "udp") return ir::kProtoUdp;
  if (token == "ospf") return ir::kProtoOspf;
  if (auto n = ParseNumber(token); n && *n <= 255) {
    return static_cast<std::uint8_t>(*n);
  }
  return std::nullopt;
}

// The parser proper: a line-oriented state machine over IOS "modes"
// (interface, route-map clause, router bgp, ...).
class Parser {
 public:
  Parser(const std::string& text, std::string filename)
      : filename_(std::move(filename)) {
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines_.push_back(line);
    }
    result_.config.vendor = ir::Vendor::kCisco;
    result_.config.source_file = filename_;
  }

  ParseResult Run() {
    for (line_no_ = 1; line_no_ <= static_cast<int>(lines_.size());
         ++line_no_) {
      const std::string& raw = lines_[line_no_ - 1];
      std::vector<std::string> tokens = Tokenize(raw);
      if (tokens.empty() || tokens[0] == "!") {
        // Comment / separator: ends any indented mode.
        mode_ = Mode::kTop;
        continue;
      }
      bool indented = raw[0] == ' ' || raw[0] == '\t';
      if (!indented) mode_ = Mode::kTop;
      ParseLine(tokens, raw, indented);
    }
    ApplyOspfNetworks();
    ApplyPeerGroups();
    return std::move(result_);
  }

 private:
  enum class Mode {
    kTop,
    kInterface,
    kRouteMap,
    kRouterOspf,
    kRouterBgp,
    kAcl,
  };

  util::SourceSpan Span(const std::string& raw) const {
    return {filename_, line_no_, line_no_, raw};
  }

  void Diagnose(const std::string& message) {
    result_.diagnostics.push_back(filename_ + ":" + std::to_string(line_no_) +
                                  ": " + message);
  }

  ir::RouterConfig& config() { return result_.config; }

  void ParseLine(const std::vector<std::string>& t, const std::string& raw,
                 bool indented) {
    if (!indented) {
      ParseTopLevel(t, raw);
      return;
    }
    switch (mode_) {
      case Mode::kInterface: ParseInterfaceLine(t, raw); break;
      case Mode::kRouteMap: ParseRouteMapLine(t, raw); break;
      case Mode::kRouterOspf: ParseOspfLine(t, raw); break;
      case Mode::kRouterBgp: ParseBgpLine(t, raw); break;
      case Mode::kAcl: ParseAclLine(t, raw); break;
      case Mode::kTop:
        Diagnose("unexpected indented line: " + raw);
        break;
    }
  }

  void ParseTopLevel(const std::vector<std::string>& t,
                     const std::string& raw) {
    if (t[0] == "hostname" && t.size() >= 2) {
      config().hostname = t[1];
    } else if (t[0] == "interface" && t.size() >= 2) {
      config().interfaces.push_back({});
      config().interfaces.back().name = t[1];
      config().interfaces.back().span = Span(raw);
      mode_ = Mode::kInterface;
    } else if (t[0] == "ip" && t.size() >= 2 && t[1] == "route") {
      ParseStaticRoute(t, raw);
    } else if (t[0] == "ip" && t.size() >= 2 && t[1] == "prefix-list") {
      ParsePrefixListLine(t, raw, util::AddressFamily::kIpv4);
    } else if (t[0] == "ipv6" && t.size() >= 2 && t[1] == "prefix-list") {
      ParsePrefixListLine(t, raw, util::AddressFamily::kIpv6);
    } else if (t[0] == "ipv6" && t.size() >= 3 && t[1] == "access-list") {
      // IOS IPv6 ACLs are always named (no standard/extended keyword).
      current_acl_ = t[2];
      current_acl_standard_ = false;
      current_acl_family_ = util::AddressFamily::kIpv6;
      auto [it, inserted] = config().acls.try_emplace(current_acl_);
      if (inserted) {
        it->second.name = current_acl_;
        it->second.family = util::AddressFamily::kIpv6;
        it->second.span = Span(raw);
      }
      mode_ = Mode::kAcl;
    } else if (t[0] == "ip" && t.size() >= 3 && t[1] == "community-list") {
      ParseCommunityListLine(t, raw);
    } else if (t[0] == "ip" && t.size() >= 5 && t[1] == "as-path" &&
               t[2] == "access-list") {
      ParseAsPathListLine(t, raw);
    } else if (t[0] == "ip" && t.size() >= 4 && t[1] == "access-list" &&
               (t[2] == "extended" || t[2] == "standard")) {
      current_acl_ = t[3];
      current_acl_standard_ = t[2] == "standard";
      current_acl_family_ = util::AddressFamily::kIpv4;
      auto [it, inserted] = config().acls.try_emplace(current_acl_);
      if (inserted) {
        it->second.name = current_acl_;
        it->second.span = Span(raw);
      }
      mode_ = Mode::kAcl;
    } else if (t[0] == "access-list" && t.size() >= 3) {
      // Numbered ACL, one line per entry. IOS reserves 1-99 (and
      // 1300-1999) for standard source-only ACLs.
      current_acl_ = t[1];
      auto number = ParseNumber(t[1]);
      current_acl_standard_ =
          number && (*number < 100 || (*number >= 1300 && *number < 2000));
      current_acl_family_ = util::AddressFamily::kIpv4;
      auto [it, inserted] = config().acls.try_emplace(current_acl_);
      if (inserted) {
        it->second.name = current_acl_;
        it->second.span = Span(raw);
      }
      std::vector<std::string> rest(t.begin() + 2, t.end());
      ParseAclLine(rest, raw);
      mode_ = Mode::kTop;
    } else if (t[0] == "route-map" && t.size() >= 4) {
      ParseRouteMapHeader(t, raw);
    } else if (t[0] == "router" && t.size() >= 2 && t[1] == "ospf") {
      if (!config().ospf) {
        config().ospf.emplace();
        config().ospf->span = Span(raw);
        if (t.size() >= 3) {
          if (auto id = ParseNumber(t[2])) config().ospf->process_id = *id;
        }
      }
      mode_ = Mode::kRouterOspf;
    } else if (t[0] == "router" && t.size() >= 3 && t[1] == "bgp") {
      if (!config().bgp) {
        config().bgp.emplace();
        config().bgp->span = Span(raw);
        if (auto asn = ParseNumber(t[2])) config().bgp->asn = *asn;
      }
      mode_ = Mode::kRouterBgp;
    } else if (t[0] == "ipv6" && t.size() >= 2 && t[1] == "unicast-routing") {
      // Enables v6 forwarding; no behavioral content for diffing.
    } else if (t[0] == "end" || t[0] == "exit" || t[0] == "version" ||
               t[0] == "no" || t[0] == "boot" || t[0] == "service" ||
               t[0] == "enable" || t[0] == "line" || t[0] == "logging" ||
               t[0] == "ntp" || t[0] == "snmp-server" || t[0] == "banner" ||
               t[0] == "aaa" || t[0] == "clock" || t[0] == "spanning-tree" ||
               t[0] == "vlan" || t[0] == "username" || t[0] == "vrf") {
      // Non-routing directives: silently ignored.
    } else {
      Diagnose("unrecognized top-level line: " + raw);
    }
  }

  // --- interface mode ------------------------------------------------------

  void ParseInterfaceLine(const std::vector<std::string>& t,
                          const std::string& raw) {
    ir::Interface& iface = config().interfaces.back();
    // Every continuation line belongs to the interface's span (like route-map
    // clauses); extending only on some branches loses lines — e.g. a
    // `shutdown` difference whose report text omitted the shutdown line.
    iface.span.last_line = line_no_;
    iface.span.text += "\n" + raw;
    if (t[0] == "ip" && t.size() >= 4 && t[1] == "address") {
      auto addr = Ipv4Address::Parse(t[2]);
      auto mask = Ipv4Address::Parse(t[3]);
      if (!addr || !mask) {
        Diagnose("bad ip address: " + raw);
        return;
      }
      auto len = util::MaskToLength(mask->bits());
      if (!len) {
        Diagnose("non-contiguous interface mask: " + raw);
        return;
      }
      iface.address = *addr;
      iface.prefix_length = *len;
    } else if (t[0] == "ip" && t.size() >= 4 && t[1] == "ospf" &&
               t[2] == "cost") {
      if (auto cost = ParseNumber(t[3])) iface.ospf_cost = *cost;
    } else if (t[0] == "ip" && t.size() >= 5 && t[1] == "ospf" &&
               t[3] == "area") {
      // "ip ospf <proc> area <n>": enables OSPF directly on the interface.
      iface.ospf_enabled = true;
      if (auto area = ParseNumber(t[4])) iface.ospf_area = *area;
    } else if (t[0] == "ip" && t.size() >= 4 && t[1] == "access-group") {
      if (t[3] == "in") {
        iface.in_acl = t[2];
      } else if (t[3] == "out") {
        iface.out_acl = t[2];
      }
    } else if (t[0] == "shutdown") {
      iface.shutdown = true;
    } else if (t[0] == "no" && t.size() >= 2 && t[1] == "shutdown") {
      iface.shutdown = false;
    } else if (t[0] == "description" || t[0] == "speed" ||
               t[0] == "duplex" || t[0] == "mtu" || t[0] == "negotiation" ||
               t[0] == "switchport" || t[0] == "no") {
      // Ignored interface attributes.
    } else {
      Diagnose("unrecognized interface line: " + raw);
    }
  }

  // --- static routes ---------------------------------------------------------

  void ParseStaticRoute(const std::vector<std::string>& t,
                        const std::string& raw) {
    // ip route <addr> <mask> (<next-hop>|<interface>) [<distance>] [tag <t>]
    if (t.size() < 5) {
      Diagnose("short static route: " + raw);
      return;
    }
    auto addr = Ipv4Address::Parse(t[2]);
    auto mask = Ipv4Address::Parse(t[3]);
    if (!addr || !mask) {
      Diagnose("bad static route destination: " + raw);
      return;
    }
    auto len = util::MaskToLength(mask->bits());
    if (!len) {
      Diagnose("non-contiguous static route mask: " + raw);
      return;
    }
    ir::StaticRoute route;
    route.prefix = Prefix(*addr, *len);
    route.span = Span(raw);
    std::size_t i = 4;
    if (auto next_hop = Ipv4Address::Parse(t[i])) {
      route.next_hop = *next_hop;
    } else {
      route.next_hop_interface = t[i];
    }
    ++i;
    if (i < t.size()) {
      if (auto distance = ParseNumber(t[i])) {
        route.admin_distance = static_cast<int>(*distance);
        ++i;
      }
    }
    while (i + 1 < t.size()) {
      if (t[i] == "tag") {
        if (auto tag = ParseNumber(t[i + 1])) route.tag = *tag;
        i += 2;
      } else if (t[i] == "name") {
        i += 2;
      } else {
        break;
      }
    }
    config().static_routes.push_back(std::move(route));
  }

  // --- prefix lists -----------------------------------------------------------

  void ParsePrefixListLine(const std::vector<std::string>& t,
                           const std::string& raw,
                           util::AddressFamily family) {
    // ip|ipv6 prefix-list NAME [seq N] permit|deny P/L [ge X] [le Y]
    const int max_len = util::MaxPrefixLength(family);
    std::size_t i = 2;
    if (i >= t.size()) return Diagnose("short prefix-list: " + raw);
    std::string name = t[i++];
    if (i + 1 < t.size() && t[i] == "seq") i += 2;
    if (i >= t.size()) return Diagnose("short prefix-list: " + raw);
    LineAction action;
    if (t[i] == "permit") {
      action = LineAction::kPermit;
    } else if (t[i] == "deny") {
      action = LineAction::kDeny;
    } else {
      return Diagnose("bad prefix-list action: " + raw);
    }
    ++i;
    if (i >= t.size()) return Diagnose("missing prefix: " + raw);
    std::optional<util::IpPrefix> prefix;
    if (family == util::AddressFamily::kIpv4) {
      if (auto p = Prefix::Parse(t[i])) prefix = util::IpPrefix(*p);
    } else {
      if (auto p = util::Prefix6::Parse(t[i])) prefix = util::IpPrefix(*p);
    }
    ++i;
    if (!prefix) return Diagnose("bad prefix: " + raw);
    int low = prefix->length();
    int high = prefix->length();
    while (i + 1 < t.size()) {
      if (t[i] == "ge") {
        if (auto ge = ParseNumber(t[i + 1])) {
          low = static_cast<int>(*ge);
          if (high < low) high = max_len;  // "ge" alone implies family max.
        }
        i += 2;
      } else if (t[i] == "le") {
        if (auto le = ParseNumber(t[i + 1])) high = static_cast<int>(*le);
        i += 2;
      } else {
        Diagnose("unexpected prefix-list token: " + t[i]);
        break;
      }
    }
    auto [it, inserted] = config().prefix_lists.try_emplace(name);
    if (inserted) {
      it->second.name = name;
      it->second.family = family;
      it->second.span = Span(raw);
    } else if (it->second.family != family) {
      // Both vendors keep the v4 and v6 prefix-list namespaces separate;
      // the shared-name collision cannot be represented in the IR.
      return Diagnose("prefix-list " + name +
                      " redeclared with a different address family: " + raw);
    }
    it->second.entries.push_back(
        {action, util::PrefixRange(*prefix, low, high), Span(raw)});
  }

  // --- community lists ----------------------------------------------------------

  void ParseCommunityListLine(const std::vector<std::string>& t,
                              const std::string& raw) {
    // ip community-list standard NAME permit|deny c1 c2 ...
    std::size_t i = 2;
    if (t[i] == "standard" || t[i] == "expanded") ++i;
    if (i + 1 >= t.size()) return Diagnose("short community-list: " + raw);
    std::string name = t[i++];
    LineAction action;
    if (t[i] == "permit") {
      action = LineAction::kPermit;
    } else if (t[i] == "deny") {
      action = LineAction::kDeny;
    } else {
      return Diagnose("bad community-list action: " + raw);
    }
    ++i;
    ir::CommunityListEntry entry;
    entry.action = action;
    entry.span = Span(raw);
    for (; i < t.size(); ++i) {
      auto community = util::Community::Parse(t[i]);
      if (!community) return Diagnose("bad community: " + t[i]);
      entry.all_of.push_back(*community);
    }
    auto [it, inserted] = config().community_lists.try_emplace(name);
    if (inserted) {
      it->second.name = name;
      it->second.span = Span(raw);
    }
    it->second.entries.push_back(std::move(entry));
  }

  void ParseAsPathListLine(const std::vector<std::string>& t,
                           const std::string& raw) {
    // ip as-path access-list NAME permit|deny REGEX...
    std::string name = t[3];
    LineAction action;
    if (t[4] == "permit") {
      action = LineAction::kPermit;
    } else if (t[4] == "deny") {
      action = LineAction::kDeny;
    } else {
      return Diagnose("bad as-path action: " + raw);
    }
    std::string regex;
    for (std::size_t i = 5; i < t.size(); ++i) {
      if (!regex.empty()) regex += " ";
      regex += t[i];
    }
    auto [it, inserted] = config().as_path_lists.try_emplace(name);
    if (inserted) {
      it->second.name = name;
      it->second.span = Span(raw);
    }
    it->second.entries.push_back({action, regex, Span(raw)});
  }

  // --- route maps -------------------------------------------------------------

  void ParseRouteMapHeader(const std::vector<std::string>& t,
                           const std::string& raw) {
    // route-map NAME permit|deny SEQ
    std::string name = t[1];
    LineAction action;
    if (t[2] == "permit") {
      action = LineAction::kPermit;
    } else if (t[2] == "deny") {
      action = LineAction::kDeny;
    } else {
      return Diagnose("bad route-map action: " + raw);
    }
    auto seq = ParseNumber(t[3]);
    if (!seq) return Diagnose("bad route-map sequence: " + raw);

    auto [it, inserted] = config().route_maps.try_emplace(name);
    if (inserted) {
      it->second.name = name;
      it->second.default_action = ir::ClauseAction::kDeny;  // IOS implicit.
      it->second.span = Span(raw);
    }
    ir::RouteMapClause clause;
    clause.sequence = static_cast<int>(*seq);
    clause.action = action == LineAction::kPermit ? ir::ClauseAction::kPermit
                                                  : ir::ClauseAction::kDeny;
    clause.span = Span(raw);
    it->second.clauses.push_back(std::move(clause));
    current_route_map_ = name;
    mode_ = Mode::kRouteMap;
  }

  void ParseRouteMapLine(const std::vector<std::string>& t,
                         const std::string& raw) {
    ir::RouteMapClause& clause =
        config().route_maps[current_route_map_].clauses.back();
    clause.span.last_line = line_no_;
    clause.span.text += "\n" + raw;

    if (t[0] == "match") {
      ParseRouteMapMatch(t, raw, clause);
    } else if (t[0] == "set") {
      ParseRouteMapSet(t, raw, clause);
    } else if (t[0] == "continue") {
      // IOS `continue`: apply sets and keep evaluating later clauses.
      clause.action = ir::ClauseAction::kFallThrough;
    } else if (t[0] == "description") {
      // Ignored.
    } else {
      Diagnose("unrecognized route-map line: " + raw);
    }
  }

  void ParseRouteMapMatch(const std::vector<std::string>& t,
                          const std::string& raw,
                          ir::RouteMapClause& clause) {
    ir::RouteMapMatch match;
    match.span = Span(raw);
    if (t.size() >= 3 && (t[1] == "ip" || t[1] == "ipv6") &&
        t[2] == "address") {
      // v4 and v6 lists resolve through the same name table; the referenced
      // list's declared family decides the pair's advertisement space.
      match.kind = ir::RouteMapMatch::Kind::kPrefixList;
      std::size_t i = 3;
      if (i < t.size() && t[i] == "prefix-list") ++i;
      for (; i < t.size(); ++i) match.names.push_back(t[i]);
      if (match.names.empty()) return Diagnose("empty match: " + raw);
    } else if (t.size() >= 3 && t[1] == "community") {
      match.kind = ir::RouteMapMatch::Kind::kCommunityList;
      for (std::size_t i = 2; i < t.size(); ++i) {
        if (t[i] == "exact-match") continue;  // Not modeled; names suffice.
        match.names.push_back(t[i]);
      }
    } else if (t.size() >= 3 && t[1] == "as-path") {
      match.kind = ir::RouteMapMatch::Kind::kAsPathList;
      for (std::size_t i = 2; i < t.size(); ++i) match.names.push_back(t[i]);
    } else if (t.size() >= 3 && t[1] == "tag") {
      match.kind = ir::RouteMapMatch::Kind::kTag;
      if (auto tag = ParseNumber(t[2])) match.value = *tag;
    } else if (t.size() >= 3 && t[1] == "metric") {
      match.kind = ir::RouteMapMatch::Kind::kMetric;
      if (auto metric = ParseNumber(t[2])) match.value = *metric;
    } else if (t.size() >= 3 && t[1] == "source-protocol") {
      match.kind = ir::RouteMapMatch::Kind::kProtocol;
      if (auto protocol = ParseProtocolName(t[2])) {
        match.protocol = *protocol;
      } else {
        return Diagnose("bad source-protocol: " + raw);
      }
    } else {
      return Diagnose("unrecognized match: " + raw);
    }
    clause.matches.push_back(std::move(match));
  }

  void ParseRouteMapSet(const std::vector<std::string>& t,
                        const std::string& raw, ir::RouteMapClause& clause) {
    ir::RouteMapSet set;
    set.span = Span(raw);
    if (t.size() >= 3 && t[1] == "local-preference") {
      set.kind = ir::RouteMapSet::Kind::kLocalPreference;
      if (auto v = ParseNumber(t[2])) set.value = *v;
    } else if (t.size() >= 3 && t[1] == "metric") {
      set.kind = ir::RouteMapSet::Kind::kMetric;
      if (auto v = ParseNumber(t[2])) set.value = *v;
    } else if (t.size() >= 3 && t[1] == "tag") {
      set.kind = ir::RouteMapSet::Kind::kTag;
      if (auto v = ParseNumber(t[2])) set.value = *v;
    } else if (t.size() >= 3 && t[1] == "weight") {
      return;  // Weight is local to the router; not modeled.
    } else if (t.size() >= 3 && t[1] == "community") {
      bool additive = t.back() == "additive";
      set.kind = additive ? ir::RouteMapSet::Kind::kCommunityAdd
                          : ir::RouteMapSet::Kind::kCommunitySet;
      for (std::size_t i = 2; i < t.size(); ++i) {
        if (t[i] == "additive") continue;
        auto community = util::Community::Parse(t[i]);
        if (!community) return Diagnose("bad community: " + t[i]);
        set.communities.push_back(*community);
      }
    } else if (t.size() >= 4 && t[1] == "ip" && t[2] == "next-hop") {
      if (t[3] == "self") {
        set.kind = ir::RouteMapSet::Kind::kNextHopSelf;
      } else if (auto ip = Ipv4Address::Parse(t[3])) {
        set.kind = ir::RouteMapSet::Kind::kNextHop;
        set.next_hop = *ip;
      } else {
        return Diagnose("bad next-hop: " + raw);
      }
    } else {
      return Diagnose("unrecognized set: " + raw);
    }
    clause.sets.push_back(std::move(set));
  }

  // --- OSPF ---------------------------------------------------------------------

  void ParseOspfLine(const std::vector<std::string>& t,
                     const std::string& raw) {
    ir::OspfProcess& ospf = *config().ospf;
    if (t[0] == "router-id" && t.size() >= 2) {
      ospf.router_id = Ipv4Address::Parse(t[1]);
    } else if (t[0] == "network" && t.size() >= 5 && t[3] == "area") {
      auto addr = Ipv4Address::Parse(t[1]);
      auto wildcard = Ipv4Address::Parse(t[2]);
      auto area = ParseNumber(t[4]);
      if (!addr || !wildcard || !area) {
        return Diagnose("bad ospf network: " + raw);
      }
      ospf_networks_.push_back(
          {IpWildcard(*addr, wildcard->bits()), *area});
    } else if (t[0] == "passive-interface" && t.size() >= 2) {
      passive_interfaces_.push_back(t[1]);
    } else if (t[0] == "redistribute" && t.size() >= 2) {
      auto protocol = ParseProtocolName(t[1]);
      if (!protocol) return Diagnose("bad redistribute: " + raw);
      ir::Redistribution redist;
      redist.from = *protocol;
      redist.span = Span(raw);
      for (std::size_t i = 2; i + 1 < t.size(); ++i) {
        if (t[i] == "route-map") redist.route_map = t[i + 1];
      }
      ospf.redistributions.push_back(std::move(redist));
    } else if (t[0] == "auto-cost" && t.size() >= 2 &&
               t[1] == "reference-bandwidth" && t.size() >= 3) {
      if (auto bw = ParseNumber(t[2])) ospf.reference_bandwidth_mbps = *bw;
    } else if (t[0] == "log-adjacency-changes" || t[0] == "maximum-paths") {
      // Ignored.
    } else {
      Diagnose("unrecognized ospf line: " + raw);
    }
  }

  // --- BGP -----------------------------------------------------------------------

  ir::BgpNeighbor& NeighborFor(Ipv4Address ip, const std::string& raw) {
    for (auto& n : config().bgp->neighbors) {
      if (n.ip == ip) return n;
    }
    config().bgp->neighbors.push_back({});
    config().bgp->neighbors.back().ip = ip;
    config().bgp->neighbors.back().span = Span(raw);
    return config().bgp->neighbors.back();
  }

  // Applies one `neighbor X <attribute...>` line (t[2] onward) to a
  // neighbor or peer-group template. Returns false if unrecognized.
  bool ApplyNeighborAttribute(ir::BgpNeighbor& neighbor,
                              const std::vector<std::string>& t,
                              const std::string& raw) {
    (void)raw;
    if (t[2] == "remote-as" && t.size() >= 4) {
      if (auto asn = ParseNumber(t[3])) neighbor.remote_as = *asn;
    } else if (t[2] == "route-map" && t.size() >= 5) {
      if (t[4] == "in") {
        neighbor.import_policy = t[3];
      } else if (t[4] == "out") {
        neighbor.export_policy = t[3];
      }
    } else if (t[2] == "route-reflector-client") {
      neighbor.route_reflector_client = true;
    } else if (t[2] == "send-community") {
      neighbor.send_community = true;
    } else if (t[2] == "next-hop-self") {
      neighbor.next_hop_self = true;
    } else if (t[2] == "description") {
      std::string description;
      for (std::size_t i = 3; i < t.size(); ++i) {
        if (i > 3) description += " ";
        description += t[i];
      }
      neighbor.description = description;
    } else if (t[2] == "update-source" || t[2] == "soft-reconfiguration" ||
               t[2] == "timers" || t[2] == "activate" ||
               t[2] == "password" || t[2] == "ebgp-multihop") {
      // Ignored.
    } else {
      return false;
    }
    return true;
  }

  // Resolves peer-group membership after the whole file is parsed: a
  // member inherits every group attribute it did not set explicitly
  // (explicit settings are detectable as non-default values because the
  // attributes are set-only in IOS).
  void ApplyPeerGroups() {
    if (!config().bgp) return;
    for (auto& neighbor : config().bgp->neighbors) {
      auto membership = peer_group_members_.find(neighbor.ip);
      if (membership == peer_group_members_.end()) continue;
      auto group_it = peer_groups_.find(membership->second);
      if (group_it == peer_groups_.end()) {
        result_.diagnostics.push_back(
            filename_ + ": neighbor " + neighbor.ip.ToString() +
            " references undefined peer-group " + membership->second);
        continue;
      }
      const ir::BgpNeighbor& group = group_it->second;
      if (neighbor.remote_as == 0) neighbor.remote_as = group.remote_as;
      if (neighbor.import_policy.empty()) {
        neighbor.import_policy = group.import_policy;
      }
      if (neighbor.export_policy.empty()) {
        neighbor.export_policy = group.export_policy;
      }
      if (neighbor.description.empty()) {
        neighbor.description = group.description;
      }
      neighbor.route_reflector_client |= group.route_reflector_client;
      neighbor.send_community |= group.send_community;
      neighbor.next_hop_self |= group.next_hop_self;
    }
  }

  void ParseBgpLine(const std::vector<std::string>& t,
                    const std::string& raw) {
    ir::BgpProcess& bgp = *config().bgp;
    if (t[0] == "bgp" && t.size() >= 3 && t[1] == "router-id") {
      bgp.router_id = Ipv4Address::Parse(t[2]);
    } else if (t[0] == "bgp" && t.size() >= 2 &&
               (t[1] == "log-neighbor-changes" || t[1] == "bestpath")) {
      // Ignored.
    } else if (t[0] == "network" && t.size() >= 2) {
      auto addr = Ipv4Address::Parse(t[1]);
      if (!addr) return Diagnose("bad network: " + raw);
      int length = 8;  // Classful default, overridden by "mask".
      if (t.size() >= 4 && t[2] == "mask") {
        auto mask = Ipv4Address::Parse(t[3]);
        if (!mask) return Diagnose("bad network mask: " + raw);
        auto len = util::MaskToLength(mask->bits());
        if (!len) return Diagnose("non-contiguous network mask: " + raw);
        length = *len;
      }
      bgp.networks.emplace_back(*addr, length);
    } else if (t[0] == "neighbor" && t.size() >= 3) {
      auto ip = Ipv4Address::Parse(t[1]);
      if (!ip) {
        // A peer-group template: `neighbor PG peer-group` declares it;
        // other attribute lines configure the template.
        ir::BgpNeighbor& group = peer_groups_[t[1]];
        if (t[2] == "peer-group" && t.size() == 3) return;
        if (!ApplyNeighborAttribute(group, t, raw)) {
          Diagnose("unrecognized peer-group line: " + raw);
        }
        return;
      }
      ir::BgpNeighbor& neighbor = NeighborFor(*ip, raw);
      // Later attribute lines extend the span; keep the text in step with
      // the claimed line range (NeighborFor already recorded the first
      // line, so only genuinely new lines append).
      if (line_no_ > neighbor.span.last_line) {
        neighbor.span.last_line = line_no_;
        neighbor.span.text += "\n" + raw;
      }
      if (t[2] == "peer-group" && t.size() >= 4) {
        // Membership: inherited attributes are resolved in a post-pass so
        // group lines appearing later in the file still apply.
        peer_group_members_[*ip] = t[3];
      } else if (!ApplyNeighborAttribute(neighbor, t, raw)) {
        Diagnose("unrecognized neighbor line: " + raw);
      }
    } else if (t[0] == "redistribute" && t.size() >= 2) {
      auto protocol = ParseProtocolName(t[1]);
      if (!protocol) return Diagnose("bad redistribute: " + raw);
      ir::Redistribution redist;
      redist.from = *protocol;
      redist.span = Span(raw);
      for (std::size_t i = 2; i + 1 < t.size(); ++i) {
        if (t[i] == "route-map") redist.route_map = t[i + 1];
      }
      bgp.redistributions.push_back(std::move(redist));
    } else if (t[0] == "distance" && t.size() >= 5 && t[1] == "bgp") {
      auto ebgp = ParseNumber(t[2]);
      auto ibgp = ParseNumber(t[3]);
      if (ebgp) config().admin_distances.ebgp = static_cast<int>(*ebgp);
      if (ibgp) config().admin_distances.ibgp = static_cast<int>(*ibgp);
    } else if (t[0] == "address-family" || t[0] == "exit-address-family") {
      // IPv4 unicast assumed; ignored.
    } else {
      Diagnose("unrecognized bgp line: " + raw);
    }
  }

  // --- ACLs ----------------------------------------------------------------------

  // Parses an address spec starting at t[i]; advances i. IPv4 ACLs accept
  // any | host A | A WILDCARD | A; IPv6 ACLs (prefix-shaped in IOS syntax)
  // accept any | host A6 | P6/LEN | A6.
  std::optional<IpWildcard> ParseAddressSpec(const std::vector<std::string>& t,
                                             std::size_t& i,
                                             util::AddressFamily family) {
    if (i >= t.size()) return std::nullopt;
    if (t[i] == "any") {
      ++i;
      return IpWildcard::AnyOf(family);
    }
    if (family == util::AddressFamily::kIpv6) {
      if (t[i] == "host") {
        if (i + 1 >= t.size()) return std::nullopt;
        auto ip = util::Ipv6Address::Parse(t[i + 1]);
        if (!ip) return std::nullopt;
        i += 2;
        return IpWildcard(*ip);
      }
      if (auto prefix = util::Prefix6::Parse(t[i])) {
        ++i;
        return IpWildcard(*prefix);
      }
      auto addr = util::Ipv6Address::Parse(t[i]);
      if (!addr) return std::nullopt;
      ++i;
      return IpWildcard(*addr);  // Bare address: host match.
    }
    if (t[i] == "host") {
      if (i + 1 >= t.size()) return std::nullopt;
      auto ip = Ipv4Address::Parse(t[i + 1]);
      if (!ip) return std::nullopt;
      i += 2;
      return IpWildcard(*ip);
    }
    auto addr = Ipv4Address::Parse(t[i]);
    if (!addr) return std::nullopt;
    if (i + 1 < t.size()) {
      if (auto wildcard = Ipv4Address::Parse(t[i + 1])) {
        i += 2;
        return IpWildcard(*addr, wildcard->bits());
      }
    }
    ++i;
    return IpWildcard(*addr);  // Bare address: host match.
  }

  // Parses an optional port spec at t[i]; advances i.
  std::vector<ir::PortRange> ParsePortSpec(const std::vector<std::string>& t,
                                           std::size_t& i) {
    std::vector<ir::PortRange> ports;
    if (i >= t.size()) return ports;
    auto port_number = [&](const std::string& token) -> std::uint16_t {
      if (auto n = ParseNumber(token); n && *n <= 65535) {
        return static_cast<std::uint16_t>(*n);
      }
      // A handful of well-known service names.
      if (token == "bgp") return 179;
      if (token == "domain") return 53;
      if (token == "ftp") return 21;
      if (token == "ssh") return 22;
      if (token == "telnet") return 23;
      if (token == "smtp") return 25;
      if (token == "www") return 80;
      if (token == "snmp") return 161;
      return 0;
    };
    if (t[i] == "eq" && i + 1 < t.size()) {
      std::uint16_t p = port_number(t[i + 1]);
      ports.push_back({p, p});
      i += 2;
    } else if (t[i] == "range" && i + 2 < t.size()) {
      ports.push_back({port_number(t[i + 1]), port_number(t[i + 2])});
      i += 3;
    } else if (t[i] == "gt" && i + 1 < t.size()) {
      std::uint16_t p = port_number(t[i + 1]);
      ports.push_back({static_cast<std::uint16_t>(p == 65535 ? 65535 : p + 1),
                       65535});
      i += 2;
    } else if (t[i] == "lt" && i + 1 < t.size()) {
      std::uint16_t p = port_number(t[i + 1]);
      ports.push_back({0, static_cast<std::uint16_t>(p == 0 ? 0 : p - 1)});
      i += 2;
    }
    return ports;
  }

  void ParseAclLine(const std::vector<std::string>& t,
                    const std::string& raw) {
    std::size_t i = 0;
    // Optional leading sequence number (IOS XR style numbered entries).
    if (ParseNumber(t[i]).has_value()) ++i;
    if (i >= t.size()) return;
    if (t[i] == "remark") return;
    ir::AclLine line;
    line.span = Span(raw);
    if (t[i] == "permit") {
      line.action = LineAction::kPermit;
    } else if (t[i] == "deny") {
      line.action = LineAction::kDeny;
    } else {
      return Diagnose("bad acl action: " + raw);
    }
    ++i;
    const util::AddressFamily family = current_acl_family_;
    if (current_acl_standard_) {
      // Standard ACLs match on source address only.
      auto src = ParseAddressSpec(t, i, family);
      if (!src) return Diagnose("bad standard acl source: " + raw);
      line.src = *src;
      line.dst = IpWildcard::AnyOf(family);
      config().acls[current_acl_].lines.push_back(std::move(line));
      return;
    }
    if (i >= t.size()) return Diagnose("short acl line: " + raw);
    std::string protocol_token = t[i];
    if (protocol_token == "ipv4") protocol_token = "ip";  // IOS XR spelling.
    line.protocol = ParseIpProtocol(protocol_token);
    if (!line.protocol && protocol_token != "ip" && protocol_token != "ipv6") {
      return Diagnose("bad acl protocol: " + raw);
    }
    ++i;
    auto src = ParseAddressSpec(t, i, family);
    if (!src) return Diagnose("bad acl source: " + raw);
    line.src = *src;
    line.src_ports = ParsePortSpec(t, i);
    auto dst = ParseAddressSpec(t, i, family);
    if (!dst) return Diagnose("bad acl destination: " + raw);
    line.dst = *dst;
    line.dst_ports = ParsePortSpec(t, i);
    if ((line.protocol == ir::kProtoIcmp ||
         line.protocol == ir::kProtoIcmpv6) &&
        i < t.size()) {
      if (auto type = ParseNumber(t[i]); type && *type <= 255) {
        line.icmp_type = static_cast<std::uint8_t>(*type);
      } else if (t[i] == "echo") {
        line.icmp_type = 8;
      } else if (t[i] == "echo-reply") {
        line.icmp_type = 0;
      }
    }
    for (; i < t.size(); ++i) {
      if (t[i] == "established") line.established = true;
      // "log" and counters are irrelevant to forwarding behavior.
    }
    config().acls[current_acl_].lines.push_back(std::move(line));
  }

  // OSPF "network" statements enable OSPF on every interface whose address
  // matches the wildcard; resolve them once the whole file is parsed.
  void ApplyOspfNetworks() {
    if (ospf_networks_.empty() && passive_interfaces_.empty()) return;
    for (auto& iface : config().interfaces) {
      if (iface.address) {
        for (const auto& [wildcard, area] : ospf_networks_) {
          if (wildcard.Matches(*iface.address)) {
            iface.ospf_enabled = true;
            iface.ospf_area = area;
            break;
          }
        }
      }
      for (const auto& passive : passive_interfaces_) {
        if (iface.name == passive) iface.ospf_passive = true;
      }
    }
  }

  std::string filename_;
  std::vector<std::string> lines_;
  int line_no_ = 0;
  Mode mode_ = Mode::kTop;
  std::string current_route_map_;
  std::string current_acl_;
  bool current_acl_standard_ = false;
  util::AddressFamily current_acl_family_ = util::AddressFamily::kIpv4;
  std::vector<std::pair<IpWildcard, std::uint32_t>> ospf_networks_;
  std::vector<std::string> passive_interfaces_;
  std::map<std::string, ir::BgpNeighbor> peer_groups_;
  std::map<Ipv4Address, std::string> peer_group_members_;
  ParseResult result_;
};

}  // namespace

ParseResult ParseCiscoConfig(const std::string& text,
                             const std::string& filename) {
  return Parser(text, filename).Run();
}

ParseResult ParseCiscoFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCiscoConfig(buffer.str(), path);
}

}  // namespace campion::cisco
