#include "cisco/cisco_unparser.h"

#include <algorithm>

namespace campion::cisco {
namespace {

std::string MaskString(int length) {
  return util::Ipv4Address(util::MaskBits(length)).ToString();
}

std::string WildcardString(const util::IpWildcard& w) {
  if (w.IsAny()) return "any";
  if (w.family() == util::AddressFamily::kIpv6) {
    // IOS v6 ACL address specs are prefix-shaped: host A6 or P6/LEN.
    if (w.wildcard_wide() == util::U128()) {
      return "host " + util::Ipv6Address(w.address_wide()).ToString();
    }
    if (auto prefix = w.AsIpPrefix()) return prefix->ToString();
    // Non-contiguous v6 wildcards are inexpressible in IOS syntax; emit the
    // nearest prefix over the cared-about leading bits.
    return util::Ipv6Address(w.address_wide()).ToString() + "/128";
  }
  if (w.wildcard_bits() == 0) return "host " + w.address().ToString();
  return w.address().ToString() + " " +
         util::Ipv4Address(w.wildcard_bits()).ToString();
}

std::string PortSpecString(const std::vector<ir::PortRange>& ports) {
  // The IR allows several ranges per side; IOS expresses one per line, so
  // the unparser emits the first (the generator only ever uses one).
  if (ports.empty()) return "";
  const ir::PortRange& r = ports.front();
  if (r.IsAny()) return "";
  if (r.low == r.high) return " eq " + std::to_string(r.low);
  return " range " + std::to_string(r.low) + " " + std::to_string(r.high);
}

}  // namespace

std::string UnparsePrefixList(const ir::PrefixList& list) {
  const bool v6 = list.family == util::AddressFamily::kIpv6;
  const int max_len = util::MaxPrefixLength(list.family);
  std::string out;
  int seq = 5;
  for (const auto& entry : list.entries) {
    out += std::string(v6 ? "ipv6" : "ip") + " prefix-list " + list.name +
           " seq " + std::to_string(seq) + " " + ir::ToString(entry.action) +
           " " + entry.range.prefix().ToString();
    // IOS length-window semantics: "ge X" alone means [X, family max],
    // "le Y" alone means [base, Y], both together mean [X, Y], neither
    // means exact.
    int base = entry.range.prefix().length();
    int low = entry.range.low();
    int high = entry.range.high();
    if (low == base && high == base) {
      // Exact match: no modifier.
    } else if (low == base) {
      out += " le " + std::to_string(high);
    } else if (high == max_len) {
      out += " ge " + std::to_string(low);
    } else {
      out += " ge " + std::to_string(low) + " le " + std::to_string(high);
    }
    out += "\n";
    seq += 5;
  }
  return out;
}

std::string UnparseCommunityList(const ir::CommunityList& list) {
  std::string out;
  for (const auto& entry : list.entries) {
    out += "ip community-list standard " + list.name + " " +
           ir::ToString(entry.action);
    for (const auto& community : entry.all_of) {
      out += " " + community.ToString();
    }
    out += "\n";
  }
  return out;
}

std::string UnparseRouteMap(const ir::RouteMap& map) {
  std::string out;
  int max_sequence = 0;
  for (const auto& clause : map.clauses) {
    // Fall-through is IOS `continue`: a permit clause that keeps matching.
    const char* action =
        clause.action == ir::ClauseAction::kDeny ? "deny" : "permit";
    out += "route-map " + map.name + " " + action + " " +
           std::to_string(clause.sequence) + "\n";
    max_sequence = std::max(max_sequence, clause.sequence);
    for (const auto& match : clause.matches) {
      switch (match.kind) {
        case ir::RouteMapMatch::Kind::kPrefixList:
          out += " match ip address prefix-list";
          for (const auto& name : match.names) out += " " + name;
          out += "\n";
          break;
        case ir::RouteMapMatch::Kind::kCommunityList:
          out += " match community";
          for (const auto& name : match.names) out += " " + name;
          out += "\n";
          break;
        case ir::RouteMapMatch::Kind::kAsPathList:
          out += " match as-path";
          for (const auto& name : match.names) out += " " + name;
          out += "\n";
          break;
        case ir::RouteMapMatch::Kind::kTag:
          out += " match tag " + std::to_string(match.value) + "\n";
          break;
        case ir::RouteMapMatch::Kind::kMetric:
          out += " match metric " + std::to_string(match.value) + "\n";
          break;
        case ir::RouteMapMatch::Kind::kProtocol:
          out += " match source-protocol " + ir::ToString(match.protocol) +
                 "\n";
          break;
      }
    }
    for (const auto& set : clause.sets) {
      switch (set.kind) {
        case ir::RouteMapSet::Kind::kLocalPreference:
          out += " set local-preference " + std::to_string(set.value) + "\n";
          break;
        case ir::RouteMapSet::Kind::kMetric:
          out += " set metric " + std::to_string(set.value) + "\n";
          break;
        case ir::RouteMapSet::Kind::kTag:
          out += " set tag " + std::to_string(set.value) + "\n";
          break;
        case ir::RouteMapSet::Kind::kNextHop:
          out += " set ip next-hop " + set.next_hop.ToString() + "\n";
          break;
        case ir::RouteMapSet::Kind::kNextHopSelf:
          out += " set ip next-hop self\n";
          break;
        case ir::RouteMapSet::Kind::kCommunitySet:
        case ir::RouteMapSet::Kind::kCommunityAdd: {
          out += " set community";
          for (const auto& community : set.communities) {
            out += " " + community.ToString();
          }
          if (set.kind == ir::RouteMapSet::Kind::kCommunityAdd) {
            out += " additive";
          }
          out += "\n";
          break;
        }
        case ir::RouteMapSet::Kind::kCommunityDelete:
          // "set comm-list ... delete" needs a named list; not emitted.
          break;
      }
    }
    if (clause.action == ir::ClauseAction::kFallThrough) {
      out += " continue\n";
    }
  }
  // IOS route maps implicitly deny; an IR default-permit needs an explicit
  // catch-all clause to survive the round trip.
  if (map.default_action == ir::ClauseAction::kPermit) {
    out += "route-map " + map.name + " permit " +
           std::to_string(max_sequence + 10) + "\n";
  }
  return out;
}

std::string UnparseAcl(const ir::Acl& acl) {
  const bool v6 = acl.family == util::AddressFamily::kIpv6;
  std::string out = v6 ? "ipv6 access-list " + acl.name + "\n"
                       : "ip access-list extended " + acl.name + "\n";
  for (const auto& line : acl.lines) {
    out += " " + ir::ToString(line.action) + " ";
    out += line.protocol ? ir::ProtocolNumberToString(*line.protocol)
                         : (v6 ? "ipv6" : "ip");
    out += " " + WildcardString(line.src) + PortSpecString(line.src_ports);
    out += " " + WildcardString(line.dst) + PortSpecString(line.dst_ports);
    if (line.icmp_type) out += " " + std::to_string(*line.icmp_type);
    if (line.established) out += " established";
    out += "\n";
  }
  return out;
}

std::string UnparseStaticRoute(const ir::StaticRoute& route) {
  std::string out = "ip route " + route.prefix.address().ToString() + " " +
                    MaskString(route.prefix.length());
  if (route.next_hop) {
    out += " " + route.next_hop->ToString();
  } else {
    out += " " + route.next_hop_interface;
  }
  if (route.admin_distance != 1) {
    out += " " + std::to_string(route.admin_distance);
  }
  if (route.tag) out += " tag " + std::to_string(*route.tag);
  return out + "\n";
}

std::string UnparseCiscoConfig(const ir::RouterConfig& config) {
  std::string out;
  out += "hostname " + (config.hostname.empty() ? "router" : config.hostname) +
         "\n!\n";

  for (const auto& iface : config.interfaces) {
    out += "interface " + iface.name + "\n";
    if (iface.address) {
      out += " ip address " + iface.address->ToString() + " " +
             MaskString(iface.prefix_length) + "\n";
    }
    if (iface.ospf_cost) {
      out += " ip ospf cost " + std::to_string(*iface.ospf_cost) + "\n";
    }
    if (iface.ospf_enabled) {
      out += " ip ospf 1 area " +
             std::to_string(iface.ospf_area.value_or(0)) + "\n";
    }
    if (!iface.in_acl.empty()) {
      out += " ip access-group " + iface.in_acl + " in\n";
    }
    if (!iface.out_acl.empty()) {
      out += " ip access-group " + iface.out_acl + " out\n";
    }
    if (iface.shutdown) out += " shutdown\n";
    out += "!\n";
  }

  for (const auto& [name, list] : config.prefix_lists) {
    out += UnparsePrefixList(list);
  }
  if (!config.prefix_lists.empty()) out += "!\n";
  for (const auto& [name, list] : config.community_lists) {
    out += UnparseCommunityList(list);
  }
  if (!config.community_lists.empty()) out += "!\n";
  for (const auto& [name, list] : config.as_path_lists) {
    for (const auto& entry : list.entries) {
      out += "ip as-path access-list " + list.name + " " +
             ir::ToString(entry.action) + " " + entry.regex + "\n";
    }
  }
  if (!config.as_path_lists.empty()) out += "!\n";
  for (const auto& [name, acl] : config.acls) {
    out += UnparseAcl(acl) + "!\n";
  }
  for (const auto& [name, map] : config.route_maps) {
    out += UnparseRouteMap(map) + "!\n";
  }
  for (const auto& route : config.static_routes) {
    out += UnparseStaticRoute(route);
  }
  if (!config.static_routes.empty()) out += "!\n";

  if (config.ospf) {
    out += "router ospf " + std::to_string(config.ospf->process_id) + "\n";
    if (config.ospf->router_id) {
      out += " router-id " + config.ospf->router_id->ToString() + "\n";
    }
    if (config.ospf->reference_bandwidth_mbps != 100) {
      out += " auto-cost reference-bandwidth " +
             std::to_string(config.ospf->reference_bandwidth_mbps) + "\n";
    }
    for (const auto& iface : config.interfaces) {
      if (iface.ospf_passive) {
        out += " passive-interface " + iface.name + "\n";
      }
    }
    for (const auto& redist : config.ospf->redistributions) {
      out += " redistribute " + ir::ToString(redist.from);
      if (!redist.route_map.empty()) {
        out += " route-map " + redist.route_map;
      }
      out += "\n";
    }
    out += "!\n";
  }

  if (config.bgp) {
    out += "router bgp " + std::to_string(config.bgp->asn) + "\n";
    if (config.bgp->router_id) {
      out += " bgp router-id " + config.bgp->router_id->ToString() + "\n";
    }
    for (const auto& network : config.bgp->networks) {
      out += " network " + network.address().ToString() + " mask " +
             MaskString(network.length()) + "\n";
    }
    for (const auto& neighbor : config.bgp->neighbors) {
      std::string prefix = " neighbor " + neighbor.ip.ToString() + " ";
      out += prefix + "remote-as " + std::to_string(neighbor.remote_as) + "\n";
      if (!neighbor.description.empty()) {
        out += prefix + "description " + neighbor.description + "\n";
      }
      if (neighbor.route_reflector_client) {
        out += prefix + "route-reflector-client\n";
      }
      if (neighbor.send_community) out += prefix + "send-community\n";
      if (neighbor.next_hop_self) out += prefix + "next-hop-self\n";
      if (!neighbor.import_policy.empty()) {
        out += prefix + "route-map " + neighbor.import_policy + " in\n";
      }
      if (!neighbor.export_policy.empty()) {
        out += prefix + "route-map " + neighbor.export_policy + " out\n";
      }
    }
    for (const auto& redist : config.bgp->redistributions) {
      out += " redistribute " + ir::ToString(redist.from);
      if (!redist.route_map.empty()) {
        out += " route-map " + redist.route_map;
      }
      out += "\n";
    }
    if (config.admin_distances.ebgp != 20 ||
        config.admin_distances.ibgp != 200) {
      out += " distance bgp " + std::to_string(config.admin_distances.ebgp) +
             " " + std::to_string(config.admin_distances.ibgp) + " 200\n";
    }
    out += "!\n";
  }
  out += "end\n";
  return out;
}

}  // namespace campion::cisco
