#pragma once

// A from-scratch reduced ordered binary decision diagram (ROBDD) package
// with complement (attributed) edges.
//
// This is Campion's symbolic substrate, standing in for the JavaBDD library
// used by the paper. Sets of packets, route advertisements, and IP prefix
// ranges are all encoded as BDDs over a variable order (see src/encode).
// Managers are cheap and each differencing task owns one, so nodes live
// for the task and nothing needs collecting; the reordering pass below
// reclaims provably dead nodes through a free list. Long-lived managers —
// the resident daemon's cached encoding templates — additionally get an
// explicit mark-and-compact collector (GarbageCollect below): callers that
// can name their live roots hand them in as mutable pointers, dead nodes
// are dropped, survivors slide down to a dense prefix of the arena, and
// the caller's roots are rewritten through the move. Compaction never
// touches the level↔index indirection (nodes carry variable ids; levels
// are a property of variables, not of arena slots), and a manager seeded
// from a compacted template (SeedFrom) copies the compacted arena
// verbatim, so the remapped template refs stay valid in every seeded
// manager — the same index+parity stability contract SeedFrom has always
// had, just against the post-compaction arena.
//
// The kernel is laid out for speed, CUDD-style:
//   * references carry a complement bit: a BddRef packs a node-arena index
//     in its upper 31 bits and a complement flag in bit 0, so negation is a
//     single XOR — no traversal, no cache traffic — and a function and its
//     complement share one DAG (roughly halving live nodes on
//     negation-heavy workloads such as Campion's A ∧ ¬B difference checks);
//   * canonicity is kept by the regular-then-edge invariant: MakeNode never
//     interns a node whose high (then) edge is complemented — it interns
//     the complemented function instead and flips the returned reference;
//   * Ite normalizes every call to a CUDD-style standard triple (trivial
//     and constant-operand rewrites, commutative argument reordering by
//     top-variable rank, then complement canonicalization so the first and
//     second operands are regular) before consulting the computed cache,
//     so Ite(f,g,h), Ite(¬f,h,g), and complemented-result variants such as
//     Or(¬f,¬g) vs ¬And(f,g) all fold into one cache entry;
//   * the unique table is a single flat open-addressing array (power-of-two
//     capacity, linear probing, amortized doubling) whose slots are node
//     indices — keys live in the node arena itself, so a probe touches at
//     most two cache lines;
//   * the ITE computed table is a lossy direct-mapped cache (fixed-size
//     power-of-two array, overwrite on collision) so memoization costs O(1)
//     with zero allocation on the hot path;
//   * ITE itself runs on an explicit frame stack, so pathological inputs
//     cannot overflow the machine stack;
//   * traversals (NodeCount, Support) reuse a per-manager visited-stamp
//     vector instead of allocating set containers.
//
// Dynamic variable reordering (Rudell sifting). The variable order is no
// longer fixed at declaration time: the manager keeps a level↔index
// indirection (level_of_ / var_at_level_), nodes store variable *ids*, and
// all order-sensitive decisions (Ite's top-variable selection, invariant
// checks) compare levels. The reorder primitive is an in-place adjacent
// level swap: a node labeled x whose children branch on the variable y
// directly below is rewritten to branch on y first, keeping its arena
// index, its complement parity, and — critically — the exact Boolean
// function it denotes, so every outstanding BddRef (including refs held by
// managers seeded from this one) survives any sequence of swaps untouched.
// The rewrite preserves the regular-then-edge invariant by construction:
// the new then-child (x ? T|y=1 : E|y=1) has a regular then-edge because
// the original then-edge T is regular and the y=1 cofactor of a regular
// edge is regular. Sift() runs Rudell's algorithm over single variables or
// declared variable blocks (DeclareVarBlock), reclaiming dead nodes when
// the caller can name its live roots; an auto-sift trigger (SetAutoSift)
// reorders CUDD-style when the arena grows past a ratio since the last
// sift, checked only between top-level operations so no in-flight
// recursion ever observes the order changing.
//
// Ordering changes node counts, never semantics — but a few queries walk
// the DAG in level order and would otherwise *present* differently
// (AnySat/MinSat/ForEachSatPath pick branches top-down). Those are routed
// through DeclarationOrderView(), which lazily rebuilds the queried
// function inside a private identity-order manager; by canonicity the
// rebuilt DAG is exactly what an unreordered manager would hold, so
// reports stay byte-identical whether reordering ran or not.
//
// Node references (BddRef) are only meaningful with respect to the manager
// that produced them. There is a single terminal node at arena index 0;
// reference 0 (the terminal, regular) is false and reference 1 (the
// terminal, complemented) is true. Equal references denote equal Boolean
// functions (canonicity), so equivalence checks are O(1), and
// Not(f) == f ^ 1 for every f. Functions touching node structure directly
// (NodeLow/NodeHigh) resolve the complement parity for the caller: they
// return the cofactors of the *function* the reference denotes, so
// structural walks in src/encode and tests need no parity bookkeeping.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace campion::bdd {

using BddRef = std::uint32_t;
using Var = std::uint32_t;

// Bit 0 of a BddRef is the complement flag; the node index is ref >> 1.
inline constexpr BddRef kComplementBit = 1;

inline constexpr BddRef kFalse = 0;  // Terminal node 0, regular.
inline constexpr BddRef kTrue = 1;   // Terminal node 0, complemented.

// A (possibly partial) truth assignment: one entry per variable,
// -1 = don't care, 0 = false, 1 = true.
using Cube = std::vector<std::int8_t>;

// What Sift() moves: single variables, or the blocks declared with
// DeclareVarBlock as indivisible units (variables without a block still
// move alone). Group sifting keeps multi-bit encoded fields (addresses,
// ports) contiguous, which the interval-extraction walks in src/encode
// are fastest on.
enum class SiftMode {
  kVars,
  kGroups,
};

// One Sift() invocation's outcome. Node counts are live internal nodes
// (the terminal and free-listed slots excluded).
struct SiftResult {
  std::size_t passes = 0;        // Rudell passes executed.
  std::size_t swaps = 0;         // Adjacent-level swaps performed.
  std::size_t nodes_before = 0;  // Live nodes entering the sift.
  std::size_t nodes_after = 0;   // Live nodes after settling at the best order.
};

// One GarbageCollect() invocation's outcome. Node counts are live internal
// nodes; byte counts are the node arena's reserved capacity (the dominant
// term of a frozen template's footprint — the unique table and computed
// cache are resized alongside and show up in MemoryStats()).
struct GcResult {
  std::size_t live_before = 0;        // Live internal nodes entering the GC.
  std::size_t live_after = 0;         // == nodes reachable from the roots.
  std::size_t reclaimed = 0;          // Dead nodes dropped (before - after).
  std::size_t arena_bytes_before = 0; // Node arena capacity entering.
  std::size_t arena_bytes_after = 0;  // Node arena capacity after compaction.
};

// Kernel instrumentation, exposed through BddManager::Stats(). Counters
// accumulate over the manager's lifetime; benchmarks snapshot them before
// and after a workload to report per-phase numbers.
struct BddStats {
  std::size_t arena_size = 0;       // Live nodes, including the terminal
                                    // (free-listed slots excluded).
  std::size_t arena_free = 0;       // Reclaimed slots awaiting reuse.
  std::size_t unique_capacity = 0;  // Open-addressing table slots.
  std::uint64_t unique_lookups = 0; // MakeNode calls that consulted the table.
  std::uint64_t unique_probes = 0;  // Total probe steps across all lookups.
  std::uint64_t unique_hits = 0;    // Lookups that found an existing node.
  std::size_t cache_capacity = 0;   // Computed-cache slots.
  std::uint64_t cache_lookups = 0;  // ITE cache probes.
  std::uint64_t cache_hits = 0;     // ITE cache hits.
  std::uint64_t sift_passes = 0;    // Rudell passes across all Sift() calls.
  std::uint64_t sift_swaps = 0;     // Adjacent-level swaps ever performed.
  std::uint64_t sift_nodes_before = 0;  // Sum of live nodes entering sifts.
  std::uint64_t sift_nodes_after = 0;   // Sum of live nodes after sifts.
  std::uint64_t gc_runs = 0;            // GarbageCollect() invocations.
  std::uint64_t gc_reclaimed = 0;       // Dead nodes dropped across all GCs.
  std::uint64_t gc_compacted_bytes = 0; // Arena bytes released across all GCs.

  double CacheHitRate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
  double AvgProbeLength() const {
    return unique_lookups == 0
               ? 0.0
               : static_cast<double>(unique_probes) /
                     static_cast<double>(unique_lookups);
  }
};

// Memory accounting, exposed through BddManager::MemoryStats(). Bytes are
// computed from container capacities (what the manager actually reserved,
// not just what it filled), so the numbers add up to the manager's real
// heap footprint. All fields are deterministic for a deterministic
// workload — the same sequence of operations reports the same bytes at any
// thread count, which keeps traces comparable across runs.
struct BddMemoryStats {
  std::size_t node_arena_bytes = 0;    // nodes_ capacity, in bytes.
  std::size_t unique_table_bytes = 0;  // Open-addressing slot array.
  double unique_load_factor = 0.0;     // Interned nodes / slots (< 0.5).
  std::size_t ite_cache_bytes = 0;     // Direct-mapped computed cache.
  std::size_t scratch_bytes = 0;       // Stacks, stamps, per-var caches.
  std::size_t total_bytes = 0;         // Sum of the byte fields above.
  std::size_t peak_live_nodes = 0;     // High-water live node count.
  std::uint64_t rehash_count = 0;      // Unique-table growth events.
};

class BddManager {
 public:
  // `num_vars` fixes the declaration order up front (variables
  // 0..num_vars-1, variable 0 at the top). More variables may be added
  // later with AddVars; Sift() may rearrange levels afterwards.
  explicit BddManager(Var num_vars = 0);

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // Seeds this manager with a copy-on-write snapshot of `other`'s arena:
  // copies the node arena, unique table, free list, block declarations,
  // and variable order verbatim, so every BddRef produced by `other`
  // denotes the same function here — refs are index+parity stable because
  // nodes keep their arena indices. If `other` was sifted, the sifted
  // order is inherited (this is why the encoding template reorders once,
  // before seeding). The ITE computed cache is NOT copied (it is a lossy
  // performance structure whose contents depend on `other`'s call history;
  // a fresh cache sized to the seeded arena behaves identically and keeps
  // managers independent), and all instrumentation counters restart at
  // zero so per-task stats measure only post-seed work. This manager must
  // be freshly constructed (no variables, no nodes beyond the terminal);
  // `other` is typically a frozen encoding template shared read-only
  // across concurrent seeds.
  void SeedFrom(const BddManager& other);

  // Structural self-check: terminal at index 0, level_of_/var_at_level_
  // mutually inverse, every live node obeys the regular-then-edge
  // invariant and sits strictly above its children in the current level
  // order, free-listed slots are marked and unreferenced by the unique
  // table, and the unique table indexes exactly the live arena. Used by
  // tests and (in debug builds) by SeedFrom/Sift to prove refs stay
  // index+parity stable.
  bool CheckInvariants() const;

  Var num_vars() const { return num_vars_; }
  // Extends the order with `count` fresh variables at the bottom levels;
  // returns the index of the first new variable.
  Var AddVars(Var count);

  // --- Variable order ------------------------------------------------------
  // Declares variables [first, first+count) an indivisible block for
  // SiftMode::kGroups: group sifting moves the block as a unit and never
  // reorders within it. Blocks must not overlap. Declared once, at layout
  // construction time, while the order is still the declaration order.
  void DeclareVarBlock(Var first, Var count);

  // Current level of a variable / variable at a level. Levels permute
  // under Sift(); variable ids (and therefore refs) never change.
  Var LevelOf(Var v) const { return level_of_[v]; }
  Var VarAtLevel(Var level) const { return var_at_level_[level]; }
  bool HasIdentityOrder() const { return order_is_identity_; }

  // Swaps the variables at `level` and `level+1` by rewriting the upper
  // level's nodes in place. Every outstanding ref keeps its index, parity,
  // and denoted function; canonicity and the regular-then-edge invariant
  // are preserved. Exposed for tests; Sift() is the intended driver (when
  // called outside a sift no dead-node reclamation happens, so the swap
  // can only grow the arena).
  void SwapAdjacentLevels(Var level);

  // Rudell sifting: moves each variable (or declared block, in kGroups
  // mode) through every level, settling at the position minimizing live
  // nodes, processing the largest variables first and aborting a direction
  // when the arena grows past a ratio of its starting size. When `roots`
  // is given, only nodes reachable from `roots` (plus the single-variable
  // cache) are kept live and everything else is reclaimed to the free
  // list — callers that can name their roots (the encoding template) get
  // dead-node collection for free. Without roots every existing node is
  // pinned (an unknown caller may hold a ref to it), so only nodes created
  // and orphaned during the sift itself are reclaimed. The ITE computed
  // cache is invalidated (reclaimed indices may be reused by later
  // MakeNode calls, so stale entries could alias new nodes).
  SiftResult Sift(SiftMode mode, const std::vector<BddRef>* roots = nullptr);

  // Enables the CUDD-style growth trigger: before a top-level Ite/Exists,
  // if live nodes exceed `trigger_ratio` times the live count at the last
  // sift (and a small floor), Sift(mode) runs in pin-all mode. The check
  // never fires inside an in-flight operation (a reentrancy counter guards
  // it), so recursions never observe the order changing under them.
  void SetAutoSift(SiftMode mode, double trigger_ratio);
  void DisableAutoSift() { auto_sift_enabled_ = false; }

  // --- Garbage collection --------------------------------------------------
  // Mark-and-compact collection for long-lived managers (the daemon's
  // cached encoding templates). Marks every node reachable from `roots`
  // (plus the single-variable cache, so VarTrue handles stay valid), drops
  // the rest, and compacts survivors into a dense arena prefix in
  // ascending-index order. Because compaction moves nodes, every
  // outstanding reference must be reachable through `roots`: each root is
  // rewritten in place to the moved node (same parity, same denoted
  // function). References NOT handed in as roots are invalidated — this is
  // the one operation in the kernel that breaks ref stability, which is
  // why per-task managers never call it and the template compacts strictly
  // before any SeedFrom snapshot is taken. The unique table, computed
  // cache, and scratch vectors are rebuilt at capacities sized to the
  // surviving arena (memory actually shrinks, not just the live count);
  // the level↔index indirection is untouched. No-op (zeros) when called
  // mid-sift or mid-operation.
  GcResult GarbageCollect(const std::vector<BddRef*>& roots);

  // Watermark trigger for GarbageCollect: MaybeGarbageCollect runs a
  // collection only once the arena (live + free-listed slots) has grown to
  // at least `arena_slots`. 0 disables the trigger. Unlike the auto-sift
  // trigger this is never consulted inside kernel operations — only the
  // explicit MaybeGarbageCollect safepoint checks it, because only callers
  // who can name their roots may collect.
  void SetGcWatermark(std::size_t arena_slots) {
    gc_watermark_slots_ = arena_slots;
  }
  std::size_t GcWatermark() const { return gc_watermark_slots_; }
  // Runs GarbageCollect(roots) if the watermark is set and reached;
  // returns the result (zeros when the collection did not run).
  GcResult MaybeGarbageCollect(const std::vector<BddRef*>& roots);

  // An order-insensitive handle on f: `mgr->...(ref)` queried on the
  // returned pair behaves exactly as `this` would with reordering off.
  // When the order is the declaration order this is {this, f}; otherwise
  // f is rebuilt (lazily, memoized) inside a private identity-order
  // manager — by canonicity the rebuilt DAG is byte-for-byte the one an
  // unreordered manager would hold, which keeps AnySat/MinSat/
  // ForEachSatPath/interval extraction output independent of reordering.
  struct OrderedView {
    const BddManager* mgr;
    BddRef ref;
  };
  OrderedView DeclarationOrderView(BddRef f) const;

  // --- Leaf constructors -------------------------------------------------
  BddRef False() const { return kFalse; }
  BddRef True() const { return kTrue; }
  BddRef VarTrue(Var v);   // The function "variable v is 1".
  BddRef VarFalse(Var v);  // The function "variable v is 0".

  // --- Boolean connectives ------------------------------------------------
  // With complement edges, negation is a bit flip and every binary
  // connective is exactly one Ite call — no intermediate Not traversals,
  // and the standard-triple normalization inside Ite folds the symmetric
  // and complemented variants into shared computed-cache entries.
  BddRef Ite(BddRef f, BddRef g, BddRef h);
  BddRef Not(BddRef f) const { return f ^ kComplementBit; }
  BddRef And(BddRef f, BddRef g) { return Ite(f, g, kFalse); }
  BddRef Or(BddRef f, BddRef g) { return Ite(f, kTrue, g); }
  BddRef Xor(BddRef f, BddRef g) { return Ite(f, Not(g), g); }
  BddRef Diff(BddRef f, BddRef g) { return Ite(g, kFalse, f); }
  BddRef Implies(BddRef f, BddRef g) { return Ite(f, g, kTrue); }
  BddRef Iff(BddRef f, BddRef g) { return Ite(f, g, Not(g)); }

  // --- Queries -------------------------------------------------------------
  bool IsFalse(BddRef f) const { return f == kFalse; }
  bool IsTrue(BddRef f) const { return f == kTrue; }
  // f => g, i.e. f ∧ ¬g is empty. One Ite; the negation is free.
  bool Subset(BddRef f, BddRef g) { return And(f, Not(g)) == kFalse; }
  // f ∧ g non-empty.
  bool Intersects(BddRef f, BddRef g) { return And(f, g) != kFalse; }

  // Number of satisfying total assignments over all num_vars() variables.
  // Exact for up to 2^53 assignments; beyond that, the usual double rounding.
  double SatCount(BddRef f);

  // Number of internal (non-terminal) nodes reachable from f. A function
  // and its complement share the same nodes, so this is the size of the
  // shared DAG, not of a complement-free expansion.
  std::size_t NodeCount(BddRef f) const;
  // Total node slots allocated in this manager (including the terminal and
  // any free-listed slots awaiting reuse); LiveNodeCount excludes the
  // reclaimed slots.
  std::size_t ArenaSize() const { return nodes_.size(); }
  std::size_t LiveNodeCount() const { return nodes_.size() - free_list_.size(); }

  // Kernel counters (live nodes, probe lengths, cache hit rate, sift work).
  BddStats Stats() const;

  // Memory accounting: reserved bytes per structure, unique-table load
  // factor, peak live node count, and rehash count.
  BddMemoryStats MemoryStats() const;

  // The set of variables f depends on (ascending variable id).
  std::vector<Var> Support(BddRef f) const;

  // --- Satisfying assignments ----------------------------------------------
  // These walk the DAG top-down, so their output depends on the variable
  // order; all three run on the declaration-order view, which makes them
  // byte-identical whether or not Sift() ever ran.
  // One satisfying path as a partial cube, or nullopt if f is false.
  std::optional<Cube> AnySat(BddRef f) const;
  // The lexicographically least *total* satisfying assignment (variable 0 is
  // the most significant position, false < true). Deterministic: this is the
  // baseline checker's stand-in for an SMT solver's model order.
  std::optional<Cube> MinSat(BddRef f) const;
  // Invokes `fn` for every satisfying path (partial cube). Paths are visited
  // in BDD order; the number of paths can be exponential in pathological
  // cases, so callers use this only on localized difference sets.
  void ForEachSatPath(BddRef f, const std::function<void(const Cube&)>& fn) const;

  // --- Quantification -------------------------------------------------------
  // Existentially quantifies every variable for which `quantified[v]` holds.
  // `quantified` may be shorter than num_vars(); missing entries are false.
  BddRef Exists(BddRef f, const std::vector<bool>& quantified);

  // Structure access (used by encode/ for prefix extraction). The accessors
  // resolve complement parity: NodeLow/NodeHigh return the cofactors of the
  // *function* f denotes (the stored child edges XOR f's complement bit),
  // so f == Ite(VarTrue(NodeVar(f)), NodeHigh(f), NodeLow(f)) always holds.
  Var NodeVar(BddRef f) const { return nodes_[f >> 1].var; }
  BddRef NodeLow(BddRef f) const {
    return nodes_[f >> 1].low ^ (f & kComplementBit);
  }
  BddRef NodeHigh(BddRef f) const {
    return nodes_[f >> 1].high ^ (f & kComplementBit);
  }
  bool IsTerminal(BddRef f) const { return f <= kTrue; }
  static bool IsComplement(BddRef f) { return (f & kComplementBit) != 0; }
  // The reference with the complement bit cleared (the stored node's own
  // function). Exposed so tests can check the regular-then-edge invariant.
  static BddRef Regular(BddRef f) { return f & ~kComplementBit; }

 private:
  struct Node {
    Var var;      // kTerminalVar for the terminal, kFreeVar for a
                  // free-listed slot.
    BddRef low;   // Else edge; may carry a complement bit.
    BddRef high;  // Then edge; always regular (canonical invariant).
  };
  static constexpr Var kTerminalVar = ~Var{0};
  static constexpr Var kFreeVar = ~Var{0} - 1;
  static constexpr Var kTerminalLevel = ~Var{0};

  // Lossy computed-cache entry for a *standardized* triple
  // Ite(f, g, h) = result: f is regular and non-terminal (so f >= 2 and
  // f == 0 marks an empty slot) and g is regular.
  struct CacheEntry {
    BddRef f = 0;
    BddRef g = 0;
    BddRef h = 0;
    BddRef result = 0;
  };

  // An ITE activation record for the explicit evaluation stack.
  struct IteFrame {
    BddRef f, g, h;      // Standardized triple (cache key) once state > 0.
    BddRef f1, g1, h1;   // High cofactors, saved for the second visit.
    BddRef low;          // Result of the low branch.
    Var top;             // Branching variable.
    std::uint8_t state;  // 0 = enter, 1 = low done, 2 = high done,
                         // 3 = expand (pre-standardized root).
    std::uint8_t negate; // Standardization complemented the result.
  };

  // Level of the node a (non-terminal-checked) edge points to.
  Var LevelOfNode(const Node& n) const {
    return n.var == kTerminalVar ? kTerminalLevel : level_of_[n.var];
  }

  BddRef MakeNode(Var var, BddRef low, BddRef high);
  void RehashUnique(std::size_t new_capacity);
  void MaybeGrowCache();
  // Applies the ITE standard-triple rules in place: constant-operand
  // substitution, trivial-result detection, commutative argument reordering
  // by rank, and complement canonicalization (f and g regular). Returns
  // true when the call resolves without recursion (result in *result);
  // otherwise leaves the canonical triple in f/g/h and sets *negate when
  // the recursion's result must be complemented on return.
  bool NormalizeIte(BddRef& f, BddRef& g, BddRef& h, bool& negate,
                    BddRef& result) const;
  // Deterministic operand order for commutative standard triples:
  // complement-insensitive arena-index comparison (no node loads).
  bool RankBefore(BddRef a, BddRef b) const;
  BddRef ExistsRec(BddRef f, const std::vector<bool>& quantified,
                   std::unordered_map<BddRef, BddRef>& memo);
  double SatCountRec(BddRef f, std::unordered_map<BddRef, double>& memo);
  // Starts a stamped traversal: bumps the visit stamp (resetting marks on
  // wraparound) and sizes the mark vector to the arena. Marks are per node
  // *index*, so a function and its complement share one mark.
  void BeginVisit() const;
  bool Visited(BddRef index) const {
    return visit_mark_[index] == visit_stamp_;
  }
  void MarkVisited(BddRef index) const { visit_mark_[index] = visit_stamp_; }

  // --- Reordering internals ------------------------------------------------
  // Unique-table insert/erase for a node whose fields are already in the
  // arena (used by the swap rewrite; erase is backward-shift deletion so
  // linear probe chains stay intact).
  void UniqueInsert(BddRef index);
  void UniqueErase(BddRef index);
  // MakeNode for the swap path: interns (var, low, high), reusing
  // free-listed slots, maintaining per-var node lists and — during a
  // sift — edge reference counts.
  BddRef SwapMakeNode(Var var, BddRef low, BddRef high);
  // Edge-refcount helpers, active only while sifting_ is set.
  void IncRef(BddRef edge);
  void DecRef(BddRef edge);
  void FreeNodeSlot(BddRef index);
  // Fills var_nodes_ from a full arena scan (bare SwapAdjacentLevels calls
  // outside a sift rebuild it per call; Sift builds it once).
  void BuildVarNodeLists();
  // Exchanges the adjacent sift units at positions i and i+1 of `units`,
  // returning the number of adjacent-level swaps performed.
  std::size_t ExchangeUnits(std::vector<std::vector<Var>>& units,
                            std::size_t i);
  // Moves the unit at `pos` to its best position (Rudell single sift).
  void SiftUnitToBest(std::vector<std::vector<Var>>& units, std::size_t pos,
                      SiftResult& result);
  void MaybeAutoSift();
  // Rebuilds f inside the identity-order view manager, memoized by regular
  // ref (depth is bounded by the number of levels).
  BddRef TransferToView(BddRef f) const;

  Var num_vars_;
  std::vector<Node> nodes_;
  std::vector<BddRef> var_true_;  // Cache of single-variable functions.

  // Level↔index indirection: mutually inverse permutations. The identity
  // until the first swap. order_is_identity_ is kept exact (a sequence of
  // swaps that lands back on the identity restores it) via an O(1)
  // fixpoint-mismatch counter updated per swap.
  std::vector<Var> level_of_;      // variable id -> level.
  std::vector<Var> var_at_level_;  // level -> variable id.
  bool order_is_identity_ = true;
  std::size_t identity_mismatches_ = 0;  // Levels with var_at_level_[l] != l.

  // Reclaimed arena slots (var == kFreeVar), reused by MakeNode before the
  // arena grows. Slots are never compacted, so live indices are stable.
  std::vector<BddRef> free_list_;

  // Indivisible variable blocks for group sifting: (first, count) pairs,
  // disjoint, sorted by first.
  std::vector<std::pair<Var, Var>> var_blocks_;

  // Open-addressing unique table: power-of-two capacity, linear probing,
  // slot value 0 (the terminal's index, never interned) means empty.
  std::vector<BddRef> unique_slots_;
  std::size_t unique_mask_ = 0;
  std::size_t unique_size_ = 0;  // Live interned nodes (== live internal).

  // Direct-mapped lossy ITE cache.
  std::vector<CacheEntry> ite_cache_;
  std::size_t cache_mask_ = 0;

  // Reusable scratch for Ite (cleared, not reallocated, between calls).
  std::vector<IteFrame> ite_frames_;
  std::vector<BddRef> ite_values_;

  // Reusable visited stamps for NodeCount/Support.
  mutable std::vector<std::uint32_t> visit_mark_;
  mutable std::uint32_t visit_stamp_ = 0;
  mutable std::vector<BddRef> visit_stack_;

  // Sift state: per-index edge reference counts (in-degree plus pins) and
  // per-variable node lists, alive only during a Sift() call (lists are
  // rebuilt per bare SwapAdjacentLevels call).
  std::vector<std::uint32_t> sift_refs_;
  std::vector<std::vector<BddRef>> var_nodes_;
  bool sifting_ = false;

  // Auto-sift trigger (SetAutoSift).
  bool auto_sift_enabled_ = false;
  SiftMode auto_sift_mode_ = SiftMode::kVars;
  double auto_sift_ratio_ = 2.0;
  std::size_t nodes_at_last_sift_ = 0;
  std::uint32_t op_depth_ = 0;  // Reentrancy counter for Ite/Exists.

  // Lazily built identity-order view (DeclarationOrderView). The memo maps
  // this manager's regular refs to view refs; cleared by Sift() because
  // reclaimed indices may be reused.
  mutable std::unique_ptr<BddManager> decl_view_;
  mutable std::unordered_map<BddRef, BddRef> decl_view_memo_;

  // Instrumentation.
  std::size_t peak_live_nodes_ = 0;
  std::uint64_t stat_rehashes_ = 0;
  mutable std::uint64_t stat_unique_lookups_ = 0;
  mutable std::uint64_t stat_unique_probes_ = 0;
  mutable std::uint64_t stat_unique_hits_ = 0;
  // Hits and misses are counted separately (lookups = hits + misses) so
  // the warm-hit fast path in Ite costs a single increment.
  mutable std::uint64_t stat_cache_misses_ = 0;
  mutable std::uint64_t stat_cache_hits_ = 0;
  std::uint64_t stat_sift_passes_ = 0;
  std::uint64_t stat_sift_swaps_ = 0;
  std::uint64_t stat_sift_nodes_before_ = 0;
  std::uint64_t stat_sift_nodes_after_ = 0;

  // Garbage collection (SetGcWatermark / GarbageCollect).
  std::size_t gc_watermark_slots_ = 0;  // 0 = watermark trigger disabled.
  std::uint64_t stat_gc_runs_ = 0;
  std::uint64_t stat_gc_reclaimed_ = 0;
  std::uint64_t stat_gc_compacted_bytes_ = 0;
};

}  // namespace campion::bdd
