#pragma once

// A from-scratch reduced ordered binary decision diagram (ROBDD) package.
//
// This is Campion's symbolic substrate, standing in for the JavaBDD library
// used by the paper. Sets of packets, route advertisements, and IP prefix
// ranges are all encoded as BDDs over a fixed variable order (see
// src/encode). The kernel is deliberately classic: a grow-only node arena,
// a unique table guaranteeing canonicity, and an ITE operation with a
// computed-table cache. There is no garbage collection; managers are cheap
// and each differencing task owns one, so nodes live for the task.
//
// Node references (BddRef) are indices into the manager's arena and are only
// meaningful with respect to the manager that produced them. Reference 0 is
// the false terminal and 1 is the true terminal; equal references denote
// equal Boolean functions (canonicity), so equivalence checks are O(1).

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace campion::bdd {

using BddRef = std::uint32_t;
using Var = std::uint32_t;

inline constexpr BddRef kFalse = 0;
inline constexpr BddRef kTrue = 1;

// A (possibly partial) truth assignment: one entry per variable,
// -1 = don't care, 0 = false, 1 = true.
using Cube = std::vector<std::int8_t>;

class BddManager {
 public:
  // `num_vars` fixes the variable order up front (variables 0..num_vars-1,
  // variable 0 at the top). More variables may be added later with AddVars.
  explicit BddManager(Var num_vars = 0);

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  Var num_vars() const { return num_vars_; }
  // Extends the order with `count` fresh variables below the existing ones;
  // returns the index of the first new variable.
  Var AddVars(Var count);

  // --- Leaf constructors -------------------------------------------------
  BddRef False() const { return kFalse; }
  BddRef True() const { return kTrue; }
  BddRef VarTrue(Var v);   // The function "variable v is 1".
  BddRef VarFalse(Var v);  // The function "variable v is 0".

  // --- Boolean connectives ------------------------------------------------
  BddRef Ite(BddRef f, BddRef g, BddRef h);
  BddRef And(BddRef f, BddRef g) { return Ite(f, g, kFalse); }
  BddRef Or(BddRef f, BddRef g) { return Ite(f, kTrue, g); }
  BddRef Not(BddRef f) { return Ite(f, kFalse, kTrue); }
  BddRef Xor(BddRef f, BddRef g) { return Ite(f, Not(g), g); }
  BddRef Diff(BddRef f, BddRef g) { return Ite(g, kFalse, f); }
  BddRef Implies(BddRef f, BddRef g) { return Ite(f, g, kTrue); }
  BddRef Iff(BddRef f, BddRef g) { return Ite(f, g, Not(g)); }

  // --- Queries -------------------------------------------------------------
  bool IsFalse(BddRef f) const { return f == kFalse; }
  bool IsTrue(BddRef f) const { return f == kTrue; }
  // f => g, i.e. f ∧ ¬g is empty.
  bool Subset(BddRef f, BddRef g) { return And(f, Not(g)) == kFalse; }
  // f ∧ g non-empty.
  bool Intersects(BddRef f, BddRef g) { return And(f, g) != kFalse; }

  // Number of satisfying total assignments over all num_vars() variables.
  // Exact for up to 2^53 assignments; beyond that, the usual double rounding.
  double SatCount(BddRef f);

  // Number of internal (non-terminal) nodes reachable from f.
  std::size_t NodeCount(BddRef f) const;
  // Total nodes allocated in this manager (arena size, including terminals).
  std::size_t ArenaSize() const { return nodes_.size(); }

  // The set of variables f depends on.
  std::vector<Var> Support(BddRef f) const;

  // --- Satisfying assignments ----------------------------------------------
  // One satisfying path as a partial cube, or nullopt if f is false.
  std::optional<Cube> AnySat(BddRef f) const;
  // The lexicographically least *total* satisfying assignment (variable 0 is
  // the most significant position, false < true). Deterministic: this is the
  // baseline checker's stand-in for an SMT solver's model order.
  std::optional<Cube> MinSat(BddRef f) const;
  // Invokes `fn` for every satisfying path (partial cube). Paths are visited
  // in BDD order; the number of paths can be exponential in pathological
  // cases, so callers use this only on localized difference sets.
  void ForEachSatPath(BddRef f, const std::function<void(const Cube&)>& fn) const;

  // --- Quantification -------------------------------------------------------
  // Existentially quantifies every variable for which `quantified[v]` holds.
  // `quantified` may be shorter than num_vars(); missing entries are false.
  BddRef Exists(BddRef f, const std::vector<bool>& quantified);

  // Structure access (used by encode/ for prefix extraction).
  Var NodeVar(BddRef f) const { return nodes_[f].var; }
  BddRef NodeLow(BddRef f) const { return nodes_[f].low; }
  BddRef NodeHigh(BddRef f) const { return nodes_[f].high; }
  bool IsTerminal(BddRef f) const { return f <= kTrue; }

 private:
  struct Node {
    Var var;  // kTerminalVar for terminals.
    BddRef low;
    BddRef high;
  };
  static constexpr Var kTerminalVar = ~Var{0};

  struct NodeKey {
    Var var;
    BddRef low;
    BddRef high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::size_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ull + k.low;
      h = h * 0x9e3779b97f4a7c15ull + k.high;
      return h;
    }
  };
  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::size_t h = k.f;
      h = h * 0x9e3779b97f4a7c15ull + k.g;
      h = h * 0x9e3779b97f4a7c15ull + k.h;
      return h;
    }
  };

  BddRef MakeNode(Var var, BddRef low, BddRef high);
  BddRef IteRec(BddRef f, BddRef g, BddRef h);
  BddRef ExistsRec(BddRef f, const std::vector<bool>& quantified,
                   std::unordered_map<BddRef, BddRef>& memo);
  double SatCountRec(BddRef f, std::unordered_map<BddRef, double>& memo);

  Var num_vars_;
  std::vector<Node> nodes_;
  std::vector<BddRef> var_true_;  // Cache of single-variable functions.
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
};

}  // namespace campion::bdd
