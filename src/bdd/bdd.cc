#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace campion::bdd {
namespace {

// Initial capacities. Managers are created per differencing task, so the
// footprint at rest stays small; both tables grow with the workload.
constexpr std::size_t kInitialUniqueCapacity = 1u << 13;
constexpr std::size_t kInitialCacheCapacity = 1u << 12;
constexpr std::size_t kMaxCacheCapacity = 1u << 21;

// IteFrame::state value for a frame whose triple is already standardized
// and whose cache miss is already counted (the root of each Ite call);
// states 0..2 are the raw-enter / low-done / high-done progression.
constexpr std::uint8_t kStateExpand = 3;

// 64-bit avalanche mix (splitmix64 finalizer) over the node key. The
// unique table and the computed cache both need well-spread low bits
// because capacity is a power of two.
inline std::uint64_t MixHash(std::uint64_t a, std::uint64_t b,
                             std::uint64_t c) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
  h ^= b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= c + 0x94d049bb133111ebull + (h << 6) + (h >> 2);
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 29;
  return h;
}

}  // namespace

BddManager::BddManager(Var num_vars) : num_vars_(num_vars) {
  // A single terminal node at index 0: reference 0 (regular) is false,
  // reference 1 (complemented) is true.
  nodes_.push_back({kTerminalVar, kFalse, kFalse});
  peak_live_nodes_ = nodes_.size();
  var_true_.resize(num_vars_, kFalse);
  unique_slots_.assign(kInitialUniqueCapacity, 0);
  unique_mask_ = kInitialUniqueCapacity - 1;
  ite_cache_.assign(kInitialCacheCapacity, CacheEntry{});
  cache_mask_ = kInitialCacheCapacity - 1;
}

void BddManager::SeedFrom(const BddManager& other) {
  // Only a freshly constructed manager may be seeded: anything already
  // interned here would collide with the copied arena's indices.
  assert(num_vars_ == 0 && nodes_.size() == 1 && unique_size_ == 0);
  num_vars_ = other.num_vars_;
  nodes_ = other.nodes_;
  var_true_ = other.var_true_;
  unique_slots_ = other.unique_slots_;
  unique_mask_ = other.unique_mask_;
  unique_size_ = other.unique_size_;
  // Fresh ITE cache, pre-sized to what MaybeGrowCache would have reached
  // for this arena, so the first post-seed workload does not thrash a
  // too-small cache (growth normally rides on unique-table rehashes, which
  // the copied, already-grown table makes rare).
  std::size_t cache_capacity = kInitialCacheCapacity;
  while (cache_capacity < kMaxCacheCapacity && cache_capacity <= nodes_.size()) {
    cache_capacity *= 2;
  }
  ite_cache_.assign(cache_capacity, CacheEntry{});
  cache_mask_ = cache_capacity - 1;
  // Counters restart: stats and memory accounting describe this manager's
  // own work, with the seeded arena as the baseline.
  peak_live_nodes_ = nodes_.size();
  stat_rehashes_ = 0;
  stat_unique_lookups_ = 0;
  stat_unique_probes_ = 0;
  stat_unique_hits_ = 0;
  stat_cache_misses_ = 0;
  stat_cache_hits_ = 0;
  visit_mark_.clear();
  visit_stamp_ = 0;
  assert(CheckInvariants());
}

bool BddManager::CheckInvariants() const {
  if (nodes_.empty() || nodes_[0].var != kTerminalVar) return false;
  if (unique_size_ != nodes_.size() - 1) return false;
  if ((unique_mask_ + 1) != unique_slots_.size()) return false;
  for (BddRef index = 1; index < nodes_.size(); ++index) {
    const Node& n = nodes_[index];
    if (n.var >= num_vars_) return false;
    if ((n.high & kComplementBit) != 0) return false;  // Regular-then-edge.
    if (n.low == n.high) return false;                 // Reduced.
    // Children sit strictly below the node in the variable order.
    if ((n.low >> 1) != 0 && nodes_[n.low >> 1].var <= n.var) return false;
    if ((n.high >> 1) != 0 && nodes_[n.high >> 1].var <= n.var) return false;
  }
  // Every interned node is findable through the unique table (so seeded
  // managers intern new nodes without duplicating copied ones).
  for (BddRef index = 1; index < nodes_.size(); ++index) {
    const Node& n = nodes_[index];
    std::size_t idx = MixHash(n.var, n.low, n.high) & unique_mask_;
    bool found = false;
    while (unique_slots_[idx] != 0) {
      if (unique_slots_[idx] == index) {
        found = true;
        break;
      }
      idx = (idx + 1) & unique_mask_;
    }
    if (!found) return false;
  }
  return true;
}

Var BddManager::AddVars(Var count) {
  Var first = num_vars_;
  num_vars_ += count;
  var_true_.resize(num_vars_, kFalse);
  return first;
}

BddRef BddManager::VarTrue(Var v) {
  assert(v < num_vars_);
  if (var_true_[v] == kFalse) {
    var_true_[v] = MakeNode(v, kFalse, kTrue);
  }
  return var_true_[v];
}

BddRef BddManager::VarFalse(Var v) { return Not(VarTrue(v)); }

BddRef BddManager::MakeNode(Var var, BddRef low, BddRef high) {
  if (low == high) return low;
  // Canonical regular-then-edge invariant: never intern a node whose high
  // edge is complemented. Intern the complemented function instead
  // (¬(v ? h : l) == v ? ¬h : ¬l) and flip the returned reference.
  BddRef out_complement = high & kComplementBit;
  low ^= out_complement;
  high ^= out_complement;
  ++stat_unique_lookups_;
  std::size_t idx = MixHash(var, low, high) & unique_mask_;
  while (true) {
    ++stat_unique_probes_;
    BddRef slot = unique_slots_[idx];
    if (slot == 0) break;  // Empty: the node is new.
    const Node& n = nodes_[slot];
    if (n.var == var && n.low == low && n.high == high) {
      ++stat_unique_hits_;
      return (slot << 1) | out_complement;
    }
    idx = (idx + 1) & unique_mask_;
  }
  BddRef index = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, low, high});
  if (nodes_.size() > peak_live_nodes_) peak_live_nodes_ = nodes_.size();
  unique_slots_[idx] = index;
  // Rehash at 50% load: linear probing stays short and slots are 4 bytes.
  if (++unique_size_ * 2 >= unique_slots_.size()) {
    RehashUnique(unique_slots_.size() * 2);
    MaybeGrowCache();
  }
  return (index << 1) | out_complement;
}

void BddManager::RehashUnique(std::size_t new_capacity) {
  ++stat_rehashes_;
  unique_slots_.assign(new_capacity, 0);
  unique_mask_ = new_capacity - 1;
  for (BddRef index = 1; index < nodes_.size(); ++index) {
    const Node& n = nodes_[index];
    std::size_t idx = MixHash(n.var, n.low, n.high) & unique_mask_;
    while (unique_slots_[idx] != 0) idx = (idx + 1) & unique_mask_;
    unique_slots_[idx] = index;
  }
}

void BddManager::MaybeGrowCache() {
  // Track the arena: a cache much smaller than the working set thrashes.
  // Entries stay valid across growth (results are canonical refs), so
  // reinsert them; collisions overwrite, which is fine for a lossy cache.
  if (ite_cache_.size() >= kMaxCacheCapacity) return;
  if (nodes_.size() < ite_cache_.size()) return;
  std::vector<CacheEntry> old = std::move(ite_cache_);
  std::size_t new_capacity = old.size() * 2;
  ite_cache_.assign(new_capacity, CacheEntry{});
  cache_mask_ = new_capacity - 1;
  for (const CacheEntry& e : old) {
    if (e.f == 0) continue;
    ite_cache_[MixHash(e.f, e.g, e.h) & cache_mask_] = e;
  }
}

bool BddManager::RankBefore(BddRef a, BddRef b) const {
  // Any deterministic, complement-insensitive total order canonicalizes
  // the commutative triples; comparing arena indices does it without
  // touching node memory, which keeps normalization load-free on the
  // computed-cache hit path (ranking by top variable instead would cost
  // two dependent node loads per And/Or call).
  return (a >> 1) < (b >> 1);
}

bool BddManager::NormalizeIte(BddRef& f, BddRef& g, BddRef& h, bool& negate,
                              BddRef& result) const {
  negate = false;
  // Constant condition.
  if (f == kTrue) { result = g; return true; }
  if (f == kFalse) { result = h; return true; }
  // Operands equal (or complementary) to the condition collapse to
  // constants: Ite(f,f,h)=Ite(f,1,h), Ite(f,¬f,h)=Ite(f,0,h),
  // Ite(f,g,f)=Ite(f,g,0), Ite(f,g,¬f)=Ite(f,g,1).
  if (g == f) {
    g = kTrue;
  } else if (g == Not(f)) {
    g = kFalse;
  }
  if (h == f) {
    h = kFalse;
  } else if (h == Not(f)) {
    h = kTrue;
  }
  // Trivial results.
  if (g == h) { result = g; return true; }
  if (g == kTrue && h == kFalse) { result = f; return true; }
  if (g == kFalse && h == kTrue) { result = Not(f); return true; }
  // Commutative forms: order the two interchangeable operands by rank so
  // e.g. Or(f,h) and Or(h,f) share one cache key. Each rewrite below is an
  // identity on the denoted function; the swapped-in condition is never a
  // terminal (the trivial checks above removed those cases).
  if (g == kTrue) {  // Ite(f,1,h) == Ite(h,1,f)            (f ∨ h)
    if (RankBefore(h, f)) std::swap(f, h);
  } else if (h == kFalse) {  // Ite(f,g,0) == Ite(g,f,0)    (f ∧ g)
    if (RankBefore(g, f)) std::swap(f, g);
  } else if (g == kFalse) {  // Ite(f,0,h) == Ite(¬h,0,¬f)  (¬f ∧ h)
    if (RankBefore(h, f)) {
      BddRef t = f;
      f = Not(h);
      h = Not(t);
    }
  } else if (h == kTrue) {  // Ite(f,g,1) == Ite(¬g,¬f,1)   (¬f ∨ g)
    if (RankBefore(g, f)) {
      BddRef t = f;
      f = Not(g);
      g = Not(t);
    }
  } else if (g == Not(h)) {  // Ite(f,g,¬g) == Ite(g,f,¬f)  (f ⟺ g)
    if (RankBefore(g, f)) {
      BddRef t = f;
      f = g;
      g = t;
      h = Not(t);
    }
  }
  // Complement canonicalization: make the condition regular
  // (Ite(¬f,g,h) == Ite(f,h,g)), then the then-operand
  // (Ite(f,g,h) == ¬Ite(f,¬g,¬h)), recording the pending negation.
  if (IsComplement(f)) {
    f = Regular(f);
    std::swap(g, h);
  }
  if (IsComplement(g)) {
    g = Regular(g);
    h = Not(h);
    negate = true;
  }
  return false;
}

BddRef BddManager::Ite(BddRef f, BddRef g, BddRef h) {
  // Standardize up front: trivial calls (including every Not/constant
  // form) resolve here without touching the frame stack, and the
  // canonical triple gives warm calls a single cache probe.
  bool negate;
  BddRef resolved;
  if (NormalizeIte(f, g, h, negate, resolved)) return resolved;
  {
    const CacheEntry& e = ite_cache_[MixHash(f, g, h) & cache_mask_];
    if (e.f == f && e.g == g && e.h == h) {
      ++stat_cache_hits_;
      return negate ? Not(e.result) : e.result;
    }
  }
  ++stat_cache_misses_;

  ite_frames_.clear();
  ite_values_.clear();
  // The root triple is already standardized and its miss counted, so it
  // enters at the expansion state; its pending negation is applied on
  // return below rather than carried in the frame.
  ite_frames_.push_back({f, g, h, 0, 0, 0, 0, 0, kStateExpand, 0});

  while (!ite_frames_.empty()) {
    IteFrame& fr = ite_frames_.back();
    switch (fr.state) {
      case 0: {
        bool sub_negate;
        BddRef sub_resolved;
        if (NormalizeIte(fr.f, fr.g, fr.h, sub_negate, sub_resolved)) {
          ite_values_.push_back(sub_resolved);
          ite_frames_.pop_back();
          break;
        }
        fr.negate = sub_negate ? kComplementBit : 0;
        const CacheEntry& e =
            ite_cache_[MixHash(fr.f, fr.g, fr.h) & cache_mask_];
        if (e.f == fr.f && e.g == fr.g && e.h == fr.h) {
          ++stat_cache_hits_;
          ite_values_.push_back(e.result ^ fr.negate);
          ite_frames_.pop_back();
          break;
        }
        ++stat_cache_misses_;
        [[fallthrough]];
      }
      case kStateExpand: {
        // Cofactor at the top variable. The condition is regular after
        // normalization; g and h may carry complement bits, which
        // propagate onto their child edges.
        const Node& nf = nodes_[fr.f >> 1];
        const Node& ng = nodes_[fr.g >> 1];
        const Node& nh = nodes_[fr.h >> 1];
        Var top = std::min({nf.var, ng.var, nh.var});

        BddRef cg = fr.g & kComplementBit;
        BddRef ch = fr.h & kComplementBit;
        BddRef f0 = nf.var == top ? nf.low : fr.f;
        BddRef g0 = ng.var == top ? ng.low ^ cg : fr.g;
        BddRef h0 = nh.var == top ? nh.low ^ ch : fr.h;
        fr.f1 = nf.var == top ? nf.high : fr.f;
        fr.g1 = ng.var == top ? ng.high ^ cg : fr.g;
        fr.h1 = nh.var == top ? nh.high ^ ch : fr.h;
        fr.top = top;
        fr.state = 1;
        // push_back may invalidate `fr`; it is not used past this point.
        ite_frames_.push_back({f0, g0, h0, 0, 0, 0, 0, 0, 0, 0});
        break;
      }
      case 1: {
        fr.low = ite_values_.back();
        ite_values_.pop_back();
        fr.state = 2;
        ite_frames_.push_back({fr.f1, fr.g1, fr.h1, 0, 0, 0, 0, 0, 0, 0});
        break;
      }
      default: {  // state 2: both cofactors resolved.
        BddRef high = ite_values_.back();
        ite_values_.pop_back();
        BddRef result = MakeNode(fr.top, fr.low, high);
        ite_cache_[MixHash(fr.f, fr.g, fr.h) & cache_mask_] = {fr.f, fr.g,
                                                               fr.h, result};
        ite_values_.push_back(result ^ fr.negate);
        ite_frames_.pop_back();
        break;
      }
    }
  }
  assert(ite_values_.size() == 1);
  return negate ? Not(ite_values_.back()) : ite_values_.back();
}

BddStats BddManager::Stats() const {
  BddStats stats;
  stats.arena_size = nodes_.size();
  stats.unique_capacity = unique_slots_.size();
  stats.unique_lookups = stat_unique_lookups_;
  stats.unique_probes = stat_unique_probes_;
  stats.unique_hits = stat_unique_hits_;
  stats.cache_capacity = ite_cache_.size();
  stats.cache_lookups = stat_cache_hits_ + stat_cache_misses_;
  stats.cache_hits = stat_cache_hits_;
  return stats;
}

BddMemoryStats BddManager::MemoryStats() const {
  BddMemoryStats mem;
  mem.node_arena_bytes = nodes_.capacity() * sizeof(Node);
  mem.unique_table_bytes = unique_slots_.capacity() * sizeof(BddRef);
  mem.unique_load_factor =
      unique_slots_.empty()
          ? 0.0
          : static_cast<double>(unique_size_) /
                static_cast<double>(unique_slots_.size());
  mem.ite_cache_bytes = ite_cache_.capacity() * sizeof(CacheEntry);
  mem.scratch_bytes = var_true_.capacity() * sizeof(BddRef) +
                      ite_frames_.capacity() * sizeof(IteFrame) +
                      ite_values_.capacity() * sizeof(BddRef) +
                      visit_mark_.capacity() * sizeof(std::uint32_t) +
                      visit_stack_.capacity() * sizeof(BddRef);
  mem.total_bytes = mem.node_arena_bytes + mem.unique_table_bytes +
                    mem.ite_cache_bytes + mem.scratch_bytes;
  mem.peak_live_nodes = peak_live_nodes_;
  mem.rehash_count = stat_rehashes_;
  return mem;
}

double BddManager::SatCount(BddRef f) {
  std::unordered_map<BddRef, double> memo;
  return SatCountRec(f, memo);
}

// Counts assignments over all num_vars_ variables. The memo is keyed by
// node *index* and stores the count of the node's regular function; a
// complemented reference reads the same entry and returns the complement
// against 2^num_vars. Counts of a node's children are always even (each
// child is independent of the parent's variable), so the halving below is
// exact in double precision up to the documented 2^53 bound.
double BddManager::SatCountRec(BddRef f,
                               std::unordered_map<BddRef, double>& memo) {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return std::ldexp(1.0, static_cast<int>(num_vars_));
  const BddRef index = f >> 1;
  double regular;
  if (auto it = memo.find(index); it != memo.end()) {
    regular = it->second;
  } else {
    const Node& n = nodes_[index];
    regular = 0.5 * (SatCountRec(n.low, memo) + SatCountRec(n.high, memo));
    memo.emplace(index, regular);
  }
  return (f & kComplementBit) != 0
             ? std::ldexp(1.0, static_cast<int>(num_vars_)) - regular
             : regular;
}

void BddManager::BeginVisit() const {
  if (visit_mark_.size() < nodes_.size()) {
    visit_mark_.resize(nodes_.size(), 0);
  }
  if (++visit_stamp_ == 0) {  // Stamp wrapped: reset all marks once.
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0);
    visit_stamp_ = 1;
  }
}

std::size_t BddManager::NodeCount(BddRef f) const {
  BeginVisit();
  std::size_t count = 0;
  visit_stack_.clear();
  visit_stack_.push_back(f);
  while (!visit_stack_.empty()) {
    BddRef n = visit_stack_.back();
    visit_stack_.pop_back();
    if (IsTerminal(n) || Visited(n >> 1)) continue;
    MarkVisited(n >> 1);
    ++count;
    visit_stack_.push_back(nodes_[n >> 1].low);
    visit_stack_.push_back(nodes_[n >> 1].high);
  }
  return count;
}

std::vector<Var> BddManager::Support(BddRef f) const {
  BeginVisit();
  std::vector<Var> vars;
  visit_stack_.clear();
  visit_stack_.push_back(f);
  while (!visit_stack_.empty()) {
    BddRef n = visit_stack_.back();
    visit_stack_.pop_back();
    if (IsTerminal(n) || Visited(n >> 1)) continue;
    MarkVisited(n >> 1);
    vars.push_back(nodes_[n >> 1].var);
    visit_stack_.push_back(nodes_[n >> 1].low);
    visit_stack_.push_back(nodes_[n >> 1].high);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::optional<Cube> BddManager::AnySat(BddRef f) const {
  if (f == kFalse) return std::nullopt;
  Cube cube(num_vars_, -1);
  while (f != kTrue) {
    BddRef high = NodeHigh(f);
    if (high != kFalse) {
      cube[NodeVar(f)] = 1;
      f = high;
    } else {
      cube[NodeVar(f)] = 0;
      f = NodeLow(f);
    }
  }
  return cube;
}

std::optional<Cube> BddManager::MinSat(BddRef f) const {
  if (f == kFalse) return std::nullopt;
  Cube cube(num_vars_, 0);  // Don't-cares resolve to 0 (lexicographic least).
  while (f != kTrue) {
    BddRef low = NodeLow(f);
    if (low != kFalse) {
      cube[NodeVar(f)] = 0;
      f = low;
    } else {
      cube[NodeVar(f)] = 1;
      f = NodeHigh(f);
    }
  }
  return cube;
}

void BddManager::ForEachSatPath(
    BddRef f, const std::function<void(const Cube&)>& fn) const {
  if (f == kFalse) return;
  Cube cube(num_vars_, -1);
  std::function<void(BddRef)> rec = [&](BddRef g) {
    if (g == kFalse) return;
    if (g == kTrue) {
      fn(cube);
      return;
    }
    Var v = NodeVar(g);
    cube[v] = 0;
    rec(NodeLow(g));
    cube[v] = 1;
    rec(NodeHigh(g));
    cube[v] = -1;
  };
  rec(f);
}

BddRef BddManager::Exists(BddRef f, const std::vector<bool>& quantified) {
  std::unordered_map<BddRef, BddRef> memo;
  return ExistsRec(f, quantified, memo);
}

BddRef BddManager::ExistsRec(BddRef f, const std::vector<bool>& quantified,
                             std::unordered_map<BddRef, BddRef>& memo) {
  if (IsTerminal(f)) return f;
  // The memo is keyed by the full reference: quantification does not
  // commute with complement (∃v.¬f ≠ ¬∃v.f), so f and ¬f memoize
  // separately even though they share nodes.
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const BddRef c = f & kComplementBit;
  const Node n = nodes_[f >> 1];  // Copy: nodes_ may reallocate during recursion.
  BddRef low = ExistsRec(n.low ^ c, quantified, memo);
  BddRef high = ExistsRec(n.high ^ c, quantified, memo);
  BddRef result = (n.var < quantified.size() && quantified[n.var])
                      ? Or(low, high)
                      : MakeNode(n.var, low, high);
  memo.emplace(f, result);
  return result;
}

}  // namespace campion::bdd
