#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace campion::bdd {
namespace {

// Initial capacities. Managers are created per differencing task, so the
// footprint at rest stays small; both tables grow with the workload.
constexpr std::size_t kInitialUniqueCapacity = 1u << 13;
constexpr std::size_t kInitialCacheCapacity = 1u << 12;
constexpr std::size_t kMaxCacheCapacity = 1u << 21;

// 64-bit avalanche mix (splitmix64 finalizer) over the node key. The
// unique table and the computed cache both need well-spread low bits
// because capacity is a power of two.
inline std::uint64_t MixHash(std::uint64_t a, std::uint64_t b,
                             std::uint64_t c) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
  h ^= b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= c + 0x94d049bb133111ebull + (h << 6) + (h >> 2);
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 29;
  return h;
}

}  // namespace

BddManager::BddManager(Var num_vars) : num_vars_(num_vars) {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0: false terminal
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1: true terminal
  peak_live_nodes_ = nodes_.size();
  var_true_.resize(num_vars_, kFalse);
  unique_slots_.assign(kInitialUniqueCapacity, kFalse);
  unique_mask_ = kInitialUniqueCapacity - 1;
  ite_cache_.assign(kInitialCacheCapacity, CacheEntry{});
  cache_mask_ = kInitialCacheCapacity - 1;
}

Var BddManager::AddVars(Var count) {
  Var first = num_vars_;
  num_vars_ += count;
  var_true_.resize(num_vars_, kFalse);
  return first;
}

BddRef BddManager::VarTrue(Var v) {
  assert(v < num_vars_);
  if (var_true_[v] == kFalse) {
    var_true_[v] = MakeNode(v, kFalse, kTrue);
  }
  return var_true_[v];
}

BddRef BddManager::VarFalse(Var v) { return Not(VarTrue(v)); }

BddRef BddManager::MakeNode(Var var, BddRef low, BddRef high) {
  if (low == high) return low;
  ++stat_unique_lookups_;
  std::size_t idx = MixHash(var, low, high) & unique_mask_;
  while (true) {
    ++stat_unique_probes_;
    BddRef slot = unique_slots_[idx];
    if (slot == kFalse) break;  // Empty: the node is new.
    const Node& n = nodes_[slot];
    if (n.var == var && n.low == low && n.high == high) {
      ++stat_unique_hits_;
      return slot;
    }
    idx = (idx + 1) & unique_mask_;
  }
  BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, low, high});
  if (nodes_.size() > peak_live_nodes_) peak_live_nodes_ = nodes_.size();
  unique_slots_[idx] = ref;
  // Rehash at 50% load: linear probing stays short and slots are 4 bytes.
  if (++unique_size_ * 2 >= unique_slots_.size()) {
    RehashUnique(unique_slots_.size() * 2);
    MaybeGrowCache();
  }
  return ref;
}

void BddManager::RehashUnique(std::size_t new_capacity) {
  ++stat_rehashes_;
  unique_slots_.assign(new_capacity, kFalse);
  unique_mask_ = new_capacity - 1;
  for (BddRef ref = kTrue + 1; ref < nodes_.size(); ++ref) {
    const Node& n = nodes_[ref];
    std::size_t idx = MixHash(n.var, n.low, n.high) & unique_mask_;
    while (unique_slots_[idx] != kFalse) idx = (idx + 1) & unique_mask_;
    unique_slots_[idx] = ref;
  }
}

void BddManager::MaybeGrowCache() {
  // Track the arena: a cache much smaller than the working set thrashes.
  // Entries stay valid across growth (results are canonical refs), so
  // reinsert them; collisions overwrite, which is fine for a lossy cache.
  if (ite_cache_.size() >= kMaxCacheCapacity) return;
  if (nodes_.size() < ite_cache_.size()) return;
  std::vector<CacheEntry> old = std::move(ite_cache_);
  std::size_t new_capacity = old.size() * 2;
  ite_cache_.assign(new_capacity, CacheEntry{});
  cache_mask_ = new_capacity - 1;
  for (const CacheEntry& e : old) {
    if (e.f == kFalse) continue;
    ite_cache_[MixHash(e.f, e.g, e.h) & cache_mask_] = e;
  }
}

BddRef BddManager::Ite(BddRef f, BddRef g, BddRef h) {
  // Terminal fast path: most calls from the And/Or/Not wrappers resolve
  // here without touching the frame stack.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  // Top-level cache probe: a warm hit returns without stack setup. A miss
  // is not counted here — the root frame's probe below counts it.
  {
    const CacheEntry& e = ite_cache_[MixHash(f, g, h) & cache_mask_];
    if (e.f == f && e.g == g && e.h == h) {
      ++stat_cache_hits_;
      return e.result;
    }
  }

  ite_frames_.clear();
  ite_values_.clear();
  ite_frames_.push_back({f, g, h, 0, 0, 0, 0, 0, 0});

  while (!ite_frames_.empty()) {
    IteFrame& fr = ite_frames_.back();
    switch (fr.state) {
      case 0: {
        // Terminal cases produce a value immediately.
        if (fr.f == kTrue) {
          ite_values_.push_back(fr.g);
          ite_frames_.pop_back();
          break;
        }
        if (fr.f == kFalse) {
          ite_values_.push_back(fr.h);
          ite_frames_.pop_back();
          break;
        }
        if (fr.g == fr.h) {
          ite_values_.push_back(fr.g);
          ite_frames_.pop_back();
          break;
        }
        if (fr.g == kTrue && fr.h == kFalse) {
          ite_values_.push_back(fr.f);
          ite_frames_.pop_back();
          break;
        }
        const CacheEntry& e =
            ite_cache_[MixHash(fr.f, fr.g, fr.h) & cache_mask_];
        if (e.f == fr.f && e.g == fr.g && e.h == fr.h) {
          ++stat_cache_hits_;
          ite_values_.push_back(e.result);
          ite_frames_.pop_back();
          break;
        }
        ++stat_cache_misses_;

        Var vf = nodes_[fr.f].var;
        Var vg = nodes_[fr.g].var;  // kTerminalVar sorts after all vars.
        Var vh = nodes_[fr.h].var;
        Var top = std::min({vf, vg, vh});

        BddRef f0 = vf == top ? nodes_[fr.f].low : fr.f;
        BddRef g0 = vg == top ? nodes_[fr.g].low : fr.g;
        BddRef h0 = vh == top ? nodes_[fr.h].low : fr.h;
        fr.f1 = vf == top ? nodes_[fr.f].high : fr.f;
        fr.g1 = vg == top ? nodes_[fr.g].high : fr.g;
        fr.h1 = vh == top ? nodes_[fr.h].high : fr.h;
        fr.top = top;
        fr.state = 1;
        // push_back may invalidate `fr`; it is not used past this point.
        ite_frames_.push_back({f0, g0, h0, 0, 0, 0, 0, 0, 0});
        break;
      }
      case 1: {
        fr.low = ite_values_.back();
        ite_values_.pop_back();
        fr.state = 2;
        ite_frames_.push_back({fr.f1, fr.g1, fr.h1, 0, 0, 0, 0, 0, 0});
        break;
      }
      default: {  // state 2: both cofactors resolved.
        BddRef high = ite_values_.back();
        ite_values_.pop_back();
        BddRef result = MakeNode(fr.top, fr.low, high);
        ite_cache_[MixHash(fr.f, fr.g, fr.h) & cache_mask_] = {fr.f, fr.g,
                                                               fr.h, result};
        ite_values_.push_back(result);
        ite_frames_.pop_back();
        break;
      }
    }
  }
  assert(ite_values_.size() == 1);
  return ite_values_.back();
}

BddStats BddManager::Stats() const {
  BddStats stats;
  stats.arena_size = nodes_.size();
  stats.unique_capacity = unique_slots_.size();
  stats.unique_lookups = stat_unique_lookups_;
  stats.unique_probes = stat_unique_probes_;
  stats.unique_hits = stat_unique_hits_;
  stats.cache_capacity = ite_cache_.size();
  stats.cache_lookups = stat_cache_hits_ + stat_cache_misses_;
  stats.cache_hits = stat_cache_hits_;
  return stats;
}

BddMemoryStats BddManager::MemoryStats() const {
  BddMemoryStats mem;
  mem.node_arena_bytes = nodes_.capacity() * sizeof(Node);
  mem.unique_table_bytes = unique_slots_.capacity() * sizeof(BddRef);
  mem.unique_load_factor =
      unique_slots_.empty()
          ? 0.0
          : static_cast<double>(unique_size_) /
                static_cast<double>(unique_slots_.size());
  mem.ite_cache_bytes = ite_cache_.capacity() * sizeof(CacheEntry);
  mem.scratch_bytes = var_true_.capacity() * sizeof(BddRef) +
                      ite_frames_.capacity() * sizeof(IteFrame) +
                      ite_values_.capacity() * sizeof(BddRef) +
                      visit_mark_.capacity() * sizeof(std::uint32_t) +
                      visit_stack_.capacity() * sizeof(BddRef);
  mem.total_bytes = mem.node_arena_bytes + mem.unique_table_bytes +
                    mem.ite_cache_bytes + mem.scratch_bytes;
  mem.peak_live_nodes = peak_live_nodes_;
  mem.rehash_count = stat_rehashes_;
  return mem;
}

double BddManager::SatCount(BddRef f) {
  std::unordered_map<BddRef, double> memo;
  // SatCountRec counts assignments to variables strictly below the node's
  // own variable; scale by the free variables above the root. Exponents are
  // computed in int so terminal sentinels (kTerminalVar) can never wrap the
  // unsigned subtraction into a huge power.
  double below = SatCountRec(f, memo);
  int root_var = IsTerminal(f) ? static_cast<int>(num_vars_)
                               : static_cast<int>(nodes_[f].var);
  return std::ldexp(below, root_var);
}

double BddManager::SatCountRec(BddRef f,
                               std::unordered_map<BddRef, double>& memo) {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const Node& n = nodes_[f];
  auto weight = [&](BddRef child) {
    int child_var = IsTerminal(child) ? static_cast<int>(num_vars_)
                                      : static_cast<int>(nodes_[child].var);
    int exponent = child_var - static_cast<int>(n.var) - 1;
    assert(exponent >= 0);  // Children are strictly below their parent.
    return std::ldexp(SatCountRec(child, memo), exponent);
  };
  double count = weight(n.low) + weight(n.high);
  memo.emplace(f, count);
  return count;
}

void BddManager::BeginVisit() const {
  if (visit_mark_.size() < nodes_.size()) {
    visit_mark_.resize(nodes_.size(), 0);
  }
  if (++visit_stamp_ == 0) {  // Stamp wrapped: reset all marks once.
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0);
    visit_stamp_ = 1;
  }
}

std::size_t BddManager::NodeCount(BddRef f) const {
  BeginVisit();
  std::size_t count = 0;
  visit_stack_.clear();
  visit_stack_.push_back(f);
  while (!visit_stack_.empty()) {
    BddRef n = visit_stack_.back();
    visit_stack_.pop_back();
    if (IsTerminal(n) || Visited(n)) continue;
    MarkVisited(n);
    ++count;
    visit_stack_.push_back(nodes_[n].low);
    visit_stack_.push_back(nodes_[n].high);
  }
  return count;
}

std::vector<Var> BddManager::Support(BddRef f) const {
  BeginVisit();
  std::vector<Var> vars;
  visit_stack_.clear();
  visit_stack_.push_back(f);
  while (!visit_stack_.empty()) {
    BddRef n = visit_stack_.back();
    visit_stack_.pop_back();
    if (IsTerminal(n) || Visited(n)) continue;
    MarkVisited(n);
    vars.push_back(nodes_[n].var);
    visit_stack_.push_back(nodes_[n].low);
    visit_stack_.push_back(nodes_[n].high);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::optional<Cube> BddManager::AnySat(BddRef f) const {
  if (f == kFalse) return std::nullopt;
  Cube cube(num_vars_, -1);
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.high != kFalse) {
      cube[n.var] = 1;
      f = n.high;
    } else {
      cube[n.var] = 0;
      f = n.low;
    }
  }
  return cube;
}

std::optional<Cube> BddManager::MinSat(BddRef f) const {
  if (f == kFalse) return std::nullopt;
  Cube cube(num_vars_, 0);  // Don't-cares resolve to 0 (lexicographic least).
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.low != kFalse) {
      cube[n.var] = 0;
      f = n.low;
    } else {
      cube[n.var] = 1;
      f = n.high;
    }
  }
  return cube;
}

void BddManager::ForEachSatPath(
    BddRef f, const std::function<void(const Cube&)>& fn) const {
  if (f == kFalse) return;
  Cube cube(num_vars_, -1);
  std::function<void(BddRef)> rec = [&](BddRef g) {
    if (g == kFalse) return;
    if (g == kTrue) {
      fn(cube);
      return;
    }
    const Node& n = nodes_[g];
    cube[n.var] = 0;
    rec(n.low);
    cube[n.var] = 1;
    rec(n.high);
    cube[n.var] = -1;
  };
  rec(f);
}

BddRef BddManager::Exists(BddRef f, const std::vector<bool>& quantified) {
  std::unordered_map<BddRef, BddRef> memo;
  return ExistsRec(f, quantified, memo);
}

BddRef BddManager::ExistsRec(BddRef f, const std::vector<bool>& quantified,
                             std::unordered_map<BddRef, BddRef>& memo) {
  if (IsTerminal(f)) return f;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const Node n = nodes_[f];  // Copy: nodes_ may reallocate during recursion.
  BddRef low = ExistsRec(n.low, quantified, memo);
  BddRef high = ExistsRec(n.high, quantified, memo);
  BddRef result = (n.var < quantified.size() && quantified[n.var])
                      ? Or(low, high)
                      : MakeNode(n.var, low, high);
  memo.emplace(f, result);
  return result;
}

}  // namespace campion::bdd
