#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace campion::bdd {
namespace {

// Initial capacities. Managers are created per differencing task, so the
// footprint at rest stays small; both tables grow with the workload.
constexpr std::size_t kInitialUniqueCapacity = 1u << 13;
constexpr std::size_t kInitialCacheCapacity = 1u << 12;
constexpr std::size_t kMaxCacheCapacity = 1u << 21;

// IteFrame::state value for a frame whose triple is already standardized
// and whose cache miss is already counted (the root of each Ite call);
// states 0..2 are the raw-enter / low-done / high-done progression.
constexpr std::uint8_t kStateExpand = 3;

// Sifting tuning. A direction aborts once the arena grows past
// kSiftMaxGrowth times its size at the start of the variable's sift
// (Rudell's bound); passes repeat while a pass shrinks the arena by more
// than ~2%, capped at kMaxSiftPasses. The auto-sift trigger never fires
// below kAutoSiftMinNodes live nodes — tiny managers reorder in microseconds
// but also gain nothing.
constexpr double kSiftMaxGrowth = 1.2;
constexpr std::size_t kMaxSiftPasses = 2;
constexpr std::size_t kAutoSiftMinNodes = 1u << 12;

// 64-bit avalanche mix (splitmix64 finalizer) over the node key. The
// unique table and the computed cache both need well-spread low bits
// because capacity is a power of two.
inline std::uint64_t MixHash(std::uint64_t a, std::uint64_t b,
                             std::uint64_t c) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
  h ^= b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= c + 0x94d049bb133111ebull + (h << 6) + (h >> 2);
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 29;
  return h;
}

}  // namespace

BddManager::BddManager(Var num_vars) : num_vars_(num_vars) {
  // A single terminal node at index 0: reference 0 (regular) is false,
  // reference 1 (complemented) is true.
  nodes_.push_back({kTerminalVar, kFalse, kFalse});
  peak_live_nodes_ = nodes_.size();
  var_true_.resize(num_vars_, kFalse);
  level_of_.resize(num_vars_);
  var_at_level_.resize(num_vars_);
  for (Var v = 0; v < num_vars_; ++v) {
    level_of_[v] = v;
    var_at_level_[v] = v;
  }
  unique_slots_.assign(kInitialUniqueCapacity, 0);
  unique_mask_ = kInitialUniqueCapacity - 1;
  ite_cache_.assign(kInitialCacheCapacity, CacheEntry{});
  cache_mask_ = kInitialCacheCapacity - 1;
}

void BddManager::SeedFrom(const BddManager& other) {
  // Only a freshly constructed manager may be seeded: anything already
  // interned here would collide with the copied arena's indices.
  assert(num_vars_ == 0 && nodes_.size() == 1 && unique_size_ == 0);
  num_vars_ = other.num_vars_;
  nodes_ = other.nodes_;
  var_true_ = other.var_true_;
  unique_slots_ = other.unique_slots_;
  unique_mask_ = other.unique_mask_;
  unique_size_ = other.unique_size_;
  // The variable order travels with the arena: if the template was sifted
  // before freezing, every seeded manager inherits the sifted order, so
  // copied refs and template lookups stay valid with no per-manager fixup.
  level_of_ = other.level_of_;
  var_at_level_ = other.var_at_level_;
  order_is_identity_ = other.order_is_identity_;
  identity_mismatches_ = other.identity_mismatches_;
  free_list_ = other.free_list_;
  var_blocks_ = other.var_blocks_;
  nodes_at_last_sift_ = other.unique_size_;
  // Fresh ITE cache, pre-sized to what MaybeGrowCache would have reached
  // for this arena, so the first post-seed workload does not thrash a
  // too-small cache (growth normally rides on unique-table rehashes, which
  // the copied, already-grown table makes rare).
  std::size_t cache_capacity = kInitialCacheCapacity;
  while (cache_capacity < kMaxCacheCapacity && cache_capacity <= nodes_.size()) {
    cache_capacity *= 2;
  }
  ite_cache_.assign(cache_capacity, CacheEntry{});
  cache_mask_ = cache_capacity - 1;
  // Counters restart: stats and memory accounting describe this manager's
  // own work, with the seeded arena as the baseline.
  peak_live_nodes_ = nodes_.size() - free_list_.size();
  stat_rehashes_ = 0;
  stat_unique_lookups_ = 0;
  stat_unique_probes_ = 0;
  stat_unique_hits_ = 0;
  stat_cache_misses_ = 0;
  stat_cache_hits_ = 0;
  visit_mark_.clear();
  visit_stamp_ = 0;
  assert(CheckInvariants());
}

bool BddManager::CheckInvariants() const {
  if (nodes_.empty() || nodes_[0].var != kTerminalVar) return false;
  // The level maps are mutually inverse permutations of 0..num_vars-1.
  if (level_of_.size() != num_vars_ || var_at_level_.size() != num_vars_) {
    return false;
  }
  for (Var v = 0; v < num_vars_; ++v) {
    if (level_of_[v] >= num_vars_) return false;
    if (var_at_level_[level_of_[v]] != v) return false;
  }
  std::size_t live = 0;
  std::size_t free_count = 0;
  for (BddRef index = 1; index < nodes_.size(); ++index) {
    const Node& n = nodes_[index];
    if (n.var == kFreeVar) {
      ++free_count;
      continue;
    }
    ++live;
    if (n.var >= num_vars_) return false;
    if ((n.high & kComplementBit) != 0) return false;  // Regular-then-edge.
    if (n.low == n.high) return false;                 // Reduced.
    // Children are live and sit strictly below the node in level order.
    const Node& nl = nodes_[n.low >> 1];
    const Node& nh = nodes_[n.high >> 1];
    if ((n.low >> 1) != 0 &&
        (nl.var == kFreeVar || LevelOfNode(nl) <= level_of_[n.var])) {
      return false;
    }
    if ((n.high >> 1) != 0 &&
        (nh.var == kFreeVar || LevelOfNode(nh) <= level_of_[n.var])) {
      return false;
    }
  }
  if (unique_size_ != live) return false;
  if (free_count != free_list_.size()) return false;
  if ((unique_mask_ + 1) != unique_slots_.size()) return false;
  // The table holds exactly the live nodes: no freed slots, no duplicates
  // (count matches), and every live node findable under its key (so seeded
  // managers intern new nodes without duplicating copied ones).
  std::size_t slots_used = 0;
  for (BddRef slot : unique_slots_) {
    if (slot == 0) continue;
    ++slots_used;
    if (slot >= nodes_.size() || nodes_[slot].var == kFreeVar) return false;
  }
  if (slots_used != unique_size_) return false;
  for (BddRef index = 1; index < nodes_.size(); ++index) {
    const Node& n = nodes_[index];
    if (n.var == kFreeVar) continue;
    std::size_t idx = MixHash(n.var, n.low, n.high) & unique_mask_;
    bool found = false;
    while (unique_slots_[idx] != 0) {
      if (unique_slots_[idx] == index) {
        found = true;
        break;
      }
      idx = (idx + 1) & unique_mask_;
    }
    if (!found) return false;
  }
  return true;
}

Var BddManager::AddVars(Var count) {
  Var first = num_vars_;
  num_vars_ += count;
  var_true_.resize(num_vars_, kFalse);
  level_of_.resize(num_vars_);
  var_at_level_.resize(num_vars_);
  // Existing variables occupy levels 0..first-1 (in whatever permutation
  // sifting left), so each new variable takes the level equal to its id.
  for (Var v = first; v < num_vars_; ++v) {
    level_of_[v] = v;
    var_at_level_[v] = v;
  }
  return first;
}

void BddManager::DeclareVarBlock(Var first, Var count) {
  if (count < 2) return;  // A one-variable block is just a variable.
  assert(first + count <= num_vars_);
  var_blocks_.emplace_back(first, count);
}

BddRef BddManager::VarTrue(Var v) {
  assert(v < num_vars_);
  if (var_true_[v] == kFalse) {
    var_true_[v] = MakeNode(v, kFalse, kTrue);
  }
  return var_true_[v];
}

BddRef BddManager::VarFalse(Var v) { return Not(VarTrue(v)); }

BddRef BddManager::MakeNode(Var var, BddRef low, BddRef high) {
  if (low == high) return low;
  // Canonical regular-then-edge invariant: never intern a node whose high
  // edge is complemented. Intern the complemented function instead
  // (¬(v ? h : l) == v ? ¬h : ¬l) and flip the returned reference.
  BddRef out_complement = high & kComplementBit;
  low ^= out_complement;
  high ^= out_complement;
  ++stat_unique_lookups_;
  std::size_t idx = MixHash(var, low, high) & unique_mask_;
  while (true) {
    ++stat_unique_probes_;
    BddRef slot = unique_slots_[idx];
    if (slot == 0) break;  // Empty: the node is new.
    const Node& n = nodes_[slot];
    if (n.var == var && n.low == low && n.high == high) {
      ++stat_unique_hits_;
      return (slot << 1) | out_complement;
    }
    idx = (idx + 1) & unique_mask_;
  }
  BddRef index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
    nodes_[index] = {var, low, high};
  } else {
    index = static_cast<BddRef>(nodes_.size());
    nodes_.push_back({var, low, high});
  }
  const std::size_t live = nodes_.size() - free_list_.size();
  if (live > peak_live_nodes_) peak_live_nodes_ = live;
  unique_slots_[idx] = index;
  // Rehash at 50% load: linear probing stays short and slots are 4 bytes.
  if (++unique_size_ * 2 >= unique_slots_.size()) {
    RehashUnique(unique_slots_.size() * 2);
    MaybeGrowCache();
  }
  return (index << 1) | out_complement;
}

void BddManager::RehashUnique(std::size_t new_capacity) {
  ++stat_rehashes_;
  // Rebuild from the old slot array, not from an arena scan: mid-swap the
  // arena can hold erased or not-yet-rekeyed nodes that must not be
  // reinserted, and after reclamation it holds free slots.
  std::vector<BddRef> old = std::move(unique_slots_);
  unique_slots_.assign(new_capacity, 0);
  unique_mask_ = new_capacity - 1;
  for (BddRef index : old) {
    if (index == 0) continue;
    const Node& n = nodes_[index];
    std::size_t idx = MixHash(n.var, n.low, n.high) & unique_mask_;
    while (unique_slots_[idx] != 0) idx = (idx + 1) & unique_mask_;
    unique_slots_[idx] = index;
  }
}

void BddManager::MaybeGrowCache() {
  // Track the arena: a cache much smaller than the working set thrashes.
  // Entries stay valid across growth (results are canonical refs), so
  // reinsert them; collisions overwrite, which is fine for a lossy cache.
  if (ite_cache_.size() >= kMaxCacheCapacity) return;
  if (nodes_.size() < ite_cache_.size()) return;
  std::vector<CacheEntry> old = std::move(ite_cache_);
  std::size_t new_capacity = old.size() * 2;
  ite_cache_.assign(new_capacity, CacheEntry{});
  cache_mask_ = new_capacity - 1;
  for (const CacheEntry& e : old) {
    if (e.f == 0) continue;
    ite_cache_[MixHash(e.f, e.g, e.h) & cache_mask_] = e;
  }
}

// --- Reordering ------------------------------------------------------------

void BddManager::UniqueInsert(BddRef index) {
  const Node& n = nodes_[index];
  std::size_t idx = MixHash(n.var, n.low, n.high) & unique_mask_;
  while (unique_slots_[idx] != 0) idx = (idx + 1) & unique_mask_;
  unique_slots_[idx] = index;
  if (++unique_size_ * 2 >= unique_slots_.size()) {
    RehashUnique(unique_slots_.size() * 2);
    MaybeGrowCache();
  }
}

void BddManager::UniqueErase(BddRef index) {
  const Node& n = nodes_[index];
  std::size_t hole = MixHash(n.var, n.low, n.high) & unique_mask_;
  while (unique_slots_[hole] != index) hole = (hole + 1) & unique_mask_;
  --unique_size_;
  // Backward-shift deletion: walk the probe chain after the hole and slide
  // back every entry whose home position lies at or before the hole, so
  // linear probing never sees a gap it should have crossed.
  std::size_t probe = hole;
  while (true) {
    unique_slots_[hole] = 0;
    while (true) {
      probe = (probe + 1) & unique_mask_;
      const BddRef slot = unique_slots_[probe];
      if (slot == 0) return;
      const Node& m = nodes_[slot];
      const std::size_t home = MixHash(m.var, m.low, m.high) & unique_mask_;
      if (((probe - home) & unique_mask_) >= ((probe - hole) & unique_mask_)) {
        unique_slots_[hole] = slot;
        hole = probe;
        break;
      }
    }
  }
}

void BddManager::IncRef(BddRef edge) {
  if (!sifting_) return;
  const BddRef idx = edge >> 1;
  if (idx == 0) return;
  ++sift_refs_[idx];
}

void BddManager::DecRef(BddRef edge) {
  if (!sifting_) return;
  const BddRef idx = edge >> 1;
  if (idx == 0) return;
  if (--sift_refs_[idx] != 0) return;
  // Dead: drop it from the table, reclaim the slot, release its children.
  // Recursion depth is bounded by the number of levels below the node.
  UniqueErase(idx);
  const Node dead = nodes_[idx];
  FreeNodeSlot(idx);
  DecRef(dead.low);
  DecRef(dead.high);
}

void BddManager::FreeNodeSlot(BddRef index) {
  nodes_[index] = {kFreeVar, 0, 0};
  free_list_.push_back(index);
}

BddRef BddManager::SwapMakeNode(Var var, BddRef low, BddRef high) {
  if (low == high) {
    IncRef(low);
    return low;
  }
  const BddRef out_complement = high & kComplementBit;
  low ^= out_complement;
  high ^= out_complement;
  std::size_t idx = MixHash(var, low, high) & unique_mask_;
  while (true) {
    const BddRef slot = unique_slots_[idx];
    if (slot == 0) break;
    const Node& n = nodes_[slot];
    if (n.var == var && n.low == low && n.high == high) {
      IncRef(slot << 1);
      return (slot << 1) | out_complement;
    }
    idx = (idx + 1) & unique_mask_;
  }
  BddRef index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
    nodes_[index] = {var, low, high};
  } else {
    index = static_cast<BddRef>(nodes_.size());
    nodes_.push_back({var, low, high});
    if (sifting_) sift_refs_.push_back(0);
  }
  const std::size_t live = nodes_.size() - free_list_.size();
  if (live > peak_live_nodes_) peak_live_nodes_ = live;
  if (sifting_) {
    sift_refs_[index] = 1;  // The caller's edge.
    IncRef(low);
    IncRef(high);
  }
  var_nodes_[var].push_back(index);
  unique_slots_[idx] = index;
  if (++unique_size_ * 2 >= unique_slots_.size()) {
    RehashUnique(unique_slots_.size() * 2);
    MaybeGrowCache();
  }
  return (index << 1) | out_complement;
}

void BddManager::BuildVarNodeLists() {
  var_nodes_.assign(num_vars_, {});
  for (BddRef idx = 1; idx < nodes_.size(); ++idx) {
    const Var v = nodes_[idx].var;
    if (v == kFreeVar) continue;
    var_nodes_[v].push_back(idx);
  }
}

void BddManager::SwapAdjacentLevels(Var level) {
  assert(level + 1 < num_vars_);
  const Var x = var_at_level_[level];
  const Var y = var_at_level_[level + 1];
  // Outside a sift there is no maintained bookkeeping: rebuild the lists
  // for this one swap (and skip refcounting — nothing gets reclaimed).
  if (!sifting_) BuildVarNodeLists();
  std::vector<BddRef> old_x;
  old_x.swap(var_nodes_[x]);
  for (const BddRef idx : old_x) {
    if (nodes_[idx].var != x) continue;  // Stale entry: died or was moved.
    const BddRef t = nodes_[idx].high;
    const BddRef e = nodes_[idx].low;
    const Node& tn = nodes_[t >> 1];
    const Node& en = nodes_[e >> 1];
    const bool t_dep = tn.var == y;
    const bool e_dep = en.var == y;
    if (!t_dep && !e_dep) {
      // Does not touch y: the node rides along to the lower level as-is.
      var_nodes_[x].push_back(idx);
      continue;
    }
    // y-cofactors of the two edges. The then edge t is regular, so its
    // cofactors read straight off its node; the else edge's complement
    // parity propagates onto its children.
    const BddRef t1 = t_dep ? tn.high : t;
    const BddRef t0 = t_dep ? tn.low : t;
    const BddRef ec = e & kComplementBit;
    const BddRef e1 = e_dep ? (en.high ^ ec) : e;
    const BddRef e0 = e_dep ? (en.low ^ ec) : e;
    UniqueErase(idx);
    // n denotes y ? (x ? t1 : e1) : (x ? t0 : e0). The new then child has
    // then-edge t1 — regular, because the y=1 cofactor of a regular edge
    // is regular — so rewriting in place preserves n's stored function
    // exactly: index, parity, and semantics of every outstanding ref to n
    // survive. (A complemented h1 would have forced a parity flip.)
    const BddRef h1 = SwapMakeNode(x, e1, t1);
    const BddRef h0 = SwapMakeNode(x, e0, t0);
    assert(!IsComplement(h1));
    assert(h0 != h1);  // n was reduced, so its swapped form is too.
    if (sifting_) {
      // New edges were counted by SwapMakeNode; release the old ones.
      DecRef(t);
      DecRef(e);
    }
    Node& n = nodes_[idx];  // Re-resolve: SwapMakeNode may reallocate.
    n.var = y;
    n.low = h0;
    n.high = h1;
    UniqueInsert(idx);
    var_nodes_[y].push_back(idx);
  }
  identity_mismatches_ -= (var_at_level_[level] != level) +
                          (var_at_level_[level + 1] != level + 1);
  var_at_level_[level] = y;
  var_at_level_[level + 1] = x;
  level_of_[x] = level + 1;
  level_of_[y] = level;
  identity_mismatches_ +=
      (y != level) + (x != static_cast<Var>(level + 1));
  order_is_identity_ = identity_mismatches_ == 0;
  ++stat_sift_swaps_;
}

std::size_t BddManager::ExchangeUnits(std::vector<std::vector<Var>>& units,
                                      std::size_t i) {
  std::size_t s = 0;  // Top level of unit i.
  for (std::size_t k = 0; k < i; ++k) s += units[k].size();
  const std::size_t a = units[i].size();
  const std::size_t b = units[i + 1].size();
  std::size_t swaps = 0;
  // Bubble each variable of the lower unit up past the upper unit; both
  // units keep their internal order, so blocks stay intact.
  for (std::size_t j = 0; j < b; ++j) {
    for (std::size_t l = s + a + j; l > s + j; --l) {
      SwapAdjacentLevels(static_cast<Var>(l - 1));
      ++swaps;
    }
  }
  std::swap(units[i], units[i + 1]);
  return swaps;
}

void BddManager::SiftUnitToBest(std::vector<std::vector<Var>>& units,
                                std::size_t pos, SiftResult& result) {
  const std::size_t initial = unique_size_;
  const std::size_t limit =
      static_cast<std::size_t>(kSiftMaxGrowth * static_cast<double>(initial)) +
      16;
  std::size_t best = initial;
  std::size_t best_pos = pos;
  std::size_t p = pos;
  // Down to the bottom, then up to the top, recording the live count at
  // every position; abort a direction when the arena balloons.
  while (p + 1 < units.size()) {
    result.swaps += ExchangeUnits(units, p);
    ++p;
    if (unique_size_ < best) {
      best = unique_size_;
      best_pos = p;
    }
    if (unique_size_ > limit) break;
  }
  while (p > 0) {
    result.swaps += ExchangeUnits(units, p - 1);
    --p;
    if (unique_size_ < best) {
      best = unique_size_;
      best_pos = p;
    }
    if (unique_size_ > limit) break;
  }
  // Settle at the best recorded position (ties keep the earliest, so a
  // variable with no strict improvement returns exactly where it started).
  while (p < best_pos) {
    result.swaps += ExchangeUnits(units, p);
    ++p;
  }
  while (p > best_pos) {
    result.swaps += ExchangeUnits(units, p - 1);
    --p;
  }
}

SiftResult BddManager::Sift(SiftMode mode, const std::vector<BddRef>* roots) {
  SiftResult result;
  result.nodes_before = unique_size_;
  result.nodes_after = unique_size_;
  if (num_vars_ < 2 || sifting_) return result;
  sifting_ = true;
  sift_refs_.assign(nodes_.size(), 0);
  if (roots != nullptr) {
    // Mark-and-count from the declared roots (plus the single-variable
    // cache, which VarTrue hands out): reachable nodes get their internal
    // in-degree plus one pin per root occurrence; everything else is dead
    // and reclaimed before any swapping starts.
    BeginVisit();
    visit_stack_.clear();
    auto pin = [&](BddRef r) {
      if (IsTerminal(r)) return;
      ++sift_refs_[r >> 1];  // External pin; never released.
      visit_stack_.push_back(r);
    };
    for (const BddRef r : *roots) pin(r);
    for (const BddRef r : var_true_) {
      if (r != kFalse) pin(r);
    }
    while (!visit_stack_.empty()) {
      const BddRef f = visit_stack_.back();
      visit_stack_.pop_back();
      const BddRef idx = f >> 1;
      if (Visited(idx)) continue;
      MarkVisited(idx);
      const Node& n = nodes_[idx];
      if ((n.low >> 1) != 0) {
        ++sift_refs_[n.low >> 1];
        visit_stack_.push_back(n.low);
      }
      if ((n.high >> 1) != 0) {
        ++sift_refs_[n.high >> 1];
        visit_stack_.push_back(n.high);
      }
    }
    for (BddRef idx = 1; idx < nodes_.size(); ++idx) {
      if (nodes_[idx].var == kFreeVar || Visited(idx)) continue;
      UniqueErase(idx);
      FreeNodeSlot(idx);
    }
  } else {
    // No root information: pin every existing node (an unknown caller may
    // hold a ref to it); only nodes created and orphaned by the sift
    // itself get reclaimed.
    for (BddRef idx = 1; idx < nodes_.size(); ++idx) {
      if (nodes_[idx].var == kFreeVar) continue;
      const Node& n = nodes_[idx];
      ++sift_refs_[idx];
      if ((n.low >> 1) != 0) ++sift_refs_[n.low >> 1];
      if ((n.high >> 1) != 0) ++sift_refs_[n.high >> 1];
    }
  }
  BuildVarNodeLists();

  // Sift units: declared blocks (when contiguous and in group mode) move
  // as indivisible wholes; every other variable moves alone.
  std::vector<int> block_of_var(num_vars_, -1);
  if (mode == SiftMode::kGroups) {
    for (std::size_t b = 0; b < var_blocks_.size(); ++b) {
      const Var first = var_blocks_[b].first;
      const Var count = var_blocks_[b].second;
      Var lo = level_of_[first];
      Var hi = level_of_[first];
      for (Var v = first; v < first + count; ++v) {
        lo = std::min(lo, level_of_[v]);
        hi = std::max(hi, level_of_[v]);
      }
      // A block scattered by an earlier per-variable sift cannot move as a
      // unit; its variables fall back to sifting alone.
      if (hi - lo + 1 != count) continue;
      for (Var v = first; v < first + count; ++v) {
        block_of_var[v] = static_cast<int>(b);
      }
    }
  }
  std::vector<std::vector<Var>> units;
  for (Var level = 0; level < num_vars_;) {
    const Var v = var_at_level_[level];
    const int b = block_of_var[v];
    if (b < 0) {
      units.push_back({v});
      ++level;
    } else {
      const Var count = var_blocks_[static_cast<std::size_t>(b)].second;
      std::vector<Var> unit;
      unit.reserve(count);
      for (Var l = level; l < level + count; ++l) {
        unit.push_back(var_at_level_[l]);
      }
      units.push_back(std::move(unit));
      level += count;
    }
  }

  while (result.passes < kMaxSiftPasses) {
    const std::size_t pass_start = unique_size_;
    // Rudell order: largest units first. Count live nodes per unit through
    // the (lazily filtered) per-var lists; the representative first
    // variable identifies a unit across position changes.
    std::vector<std::pair<std::size_t, Var>> by_size;
    by_size.reserve(units.size());
    for (const auto& unit : units) {
      std::size_t count = 0;
      for (const Var v : unit) {
        for (const BddRef idx : var_nodes_[v]) {
          if (nodes_[idx].var == v) ++count;
        }
      }
      by_size.emplace_back(count, unit.front());
    }
    std::stable_sort(by_size.begin(), by_size.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first != b.first) return a.first > b.first;
                       return a.second < b.second;
                     });
    for (const auto& [count, rep] : by_size) {
      std::size_t pos = 0;
      while (pos < units.size() && units[pos].front() != rep) ++pos;
      if (pos == units.size()) continue;  // Unreachable; defensive.
      SiftUnitToBest(units, pos, result);
    }
    ++result.passes;
    // Converged: the pass bought less than ~2%.
    if (unique_size_ * 50 >= pass_start * 49) break;
  }

  // Reclaimed indices may be reused by later MakeNode calls, so every
  // structure keyed by ref must drop: the computed cache and the
  // declaration-order view's transfer memo. Visit stamps self-invalidate
  // (each traversal bumps the stamp).
  std::fill(ite_cache_.begin(), ite_cache_.end(), CacheEntry{});
  decl_view_memo_.clear();
  decl_view_.reset();
  var_nodes_.clear();
  sift_refs_.clear();
  sifting_ = false;
  nodes_at_last_sift_ = unique_size_;
  result.nodes_after = unique_size_;
  stat_sift_passes_ += result.passes;
  stat_sift_swaps_ += result.swaps;
  stat_sift_nodes_before_ += result.nodes_before;
  stat_sift_nodes_after_ += result.nodes_after;
  assert(CheckInvariants());
  return result;
}

void BddManager::SetAutoSift(SiftMode mode, double trigger_ratio) {
  auto_sift_enabled_ = true;
  auto_sift_mode_ = mode;
  auto_sift_ratio_ = trigger_ratio < 1.1 ? 1.1 : trigger_ratio;
  nodes_at_last_sift_ = unique_size_;
}

void BddManager::MaybeAutoSift() {
  if (!auto_sift_enabled_ || sifting_) return;
  const std::size_t live = unique_size_;
  if (live < kAutoSiftMinNodes) return;
  const std::size_t base =
      std::max<std::size_t>(nodes_at_last_sift_, kAutoSiftMinNodes);
  if (static_cast<double>(live) <
      auto_sift_ratio_ * static_cast<double>(base)) {
    return;
  }
  Sift(auto_sift_mode_, nullptr);
}

// --- Garbage collection -----------------------------------------------------

GcResult BddManager::GarbageCollect(const std::vector<BddRef*>& roots) {
  GcResult result;
  // Refuse to move nodes while a sift or an in-flight operation holds raw
  // indices; the caller sees zeros and can retry at a real safepoint.
  if (sifting_ || op_depth_ != 0) return result;
  result.live_before = unique_size_;
  result.arena_bytes_before = nodes_.capacity() * sizeof(Node);

  // Mark phase: everything reachable from the declared roots plus the
  // single-variable cache (VarTrue handles are external refs too).
  BeginVisit();
  visit_stack_.clear();
  auto push = [&](BddRef r) {
    if (!IsTerminal(r)) visit_stack_.push_back(r);
  };
  for (const BddRef* r : roots) push(*r);
  for (const BddRef r : var_true_) {
    if (r != kFalse) push(r);
  }
  while (!visit_stack_.empty()) {
    const BddRef f = visit_stack_.back();
    visit_stack_.pop_back();
    const BddRef idx = f >> 1;
    if (Visited(idx)) continue;
    MarkVisited(idx);
    const Node& n = nodes_[idx];
    if ((n.low >> 1) != 0) visit_stack_.push_back(n.low);
    if ((n.high >> 1) != 0) visit_stack_.push_back(n.high);
  }

  // Remap table: survivor at old index i moves to the count of survivors
  // at or below it, preserving ascending index order (and therefore the
  // RankBefore triple canonicalization of any function rebuilt from the
  // survivors alone). remap[0] stays 0, so terminal edges pass through.
  std::vector<BddRef> remap(nodes_.size(), 0);
  BddRef next = 1;
  for (BddRef idx = 1; idx < nodes_.size(); ++idx) {
    if (nodes_[idx].var != kFreeVar && Visited(idx)) remap[idx] = next++;
  }
  result.live_after = static_cast<std::size_t>(next) - 1;
  result.reclaimed = result.live_before - result.live_after;

  // Compact into a fresh arena sized exactly to the survivors (the swap
  // releases the old capacity — the whole point for a resident process).
  // Children are survivors whenever the parent is (reachability is closed
  // downward), so every child remap is already assigned; parity rides along
  // untouched on bit 0.
  {
    std::vector<Node> compact;
    compact.reserve(next);
    compact.push_back(nodes_[0]);
    for (BddRef idx = 1; idx < nodes_.size(); ++idx) {
      if (remap[idx] == 0) continue;
      Node n = nodes_[idx];
      n.low = (remap[n.low >> 1] << 1) | (n.low & kComplementBit);
      n.high = (remap[n.high >> 1] << 1) | (n.high & kComplementBit);
      compact.push_back(n);
    }
    nodes_ = std::move(compact);
  }
  std::vector<BddRef>().swap(free_list_);

  // Rewrite external handles. Values are read before any is written back,
  // so a pointer listed twice is remapped once, not twice.
  auto remap_edge = [&](BddRef e) {
    return (remap[e >> 1] << 1) | (e & kComplementBit);
  };
  std::vector<BddRef> remapped;
  remapped.reserve(roots.size());
  for (const BddRef* r : roots) remapped.push_back(remap_edge(*r));
  for (std::size_t i = 0; i < roots.size(); ++i) *roots[i] = remapped[i];
  for (BddRef& r : var_true_) r = remap_edge(r);

  // Rebuild the unique table at the smallest power of two that keeps the
  // survivors under the 50% rehash threshold, and the computed cache at
  // what MaybeGrowCache would reach for the compacted arena. Both use the
  // swap idiom so capacity actually shrinks.
  std::size_t unique_capacity = kInitialUniqueCapacity;
  while (unique_capacity <= 2 * result.live_after) unique_capacity *= 2;
  std::vector<BddRef>(unique_capacity, 0).swap(unique_slots_);
  unique_mask_ = unique_capacity - 1;
  unique_size_ = result.live_after;
  for (BddRef idx = 1; idx < nodes_.size(); ++idx) {
    const Node& n = nodes_[idx];
    std::size_t slot = MixHash(n.var, n.low, n.high) & unique_mask_;
    while (unique_slots_[slot] != 0) slot = (slot + 1) & unique_mask_;
    unique_slots_[slot] = idx;
  }
  std::size_t cache_capacity = kInitialCacheCapacity;
  while (cache_capacity < kMaxCacheCapacity &&
         cache_capacity <= nodes_.size()) {
    cache_capacity *= 2;
  }
  std::vector<CacheEntry>(cache_capacity).swap(ite_cache_);
  cache_mask_ = cache_capacity - 1;

  // Every structure keyed by arena index is stale: the transfer memo, the
  // view built from it, the visit stamps (also sized to the old arena),
  // and the operation scratch vectors.
  decl_view_memo_.clear();
  decl_view_.reset();
  std::vector<std::uint32_t>().swap(visit_mark_);
  visit_stamp_ = 0;
  std::vector<BddRef>().swap(visit_stack_);
  std::vector<IteFrame>().swap(ite_frames_);
  std::vector<BddRef>().swap(ite_values_);
  std::vector<std::uint32_t>().swap(sift_refs_);

  result.arena_bytes_after = nodes_.capacity() * sizeof(Node);
  ++stat_gc_runs_;
  stat_gc_reclaimed_ += result.reclaimed;
  if (result.arena_bytes_before > result.arena_bytes_after) {
    stat_gc_compacted_bytes_ +=
        result.arena_bytes_before - result.arena_bytes_after;
  }
  assert(CheckInvariants());
  return result;
}

GcResult BddManager::MaybeGarbageCollect(const std::vector<BddRef*>& roots) {
  if (gc_watermark_slots_ == 0 || nodes_.size() < gc_watermark_slots_) {
    return GcResult{};
  }
  return GarbageCollect(roots);
}

BddManager::OrderedView BddManager::DeclarationOrderView(BddRef f) const {
  if (order_is_identity_) return {this, f};
  if (!decl_view_) {
    decl_view_ = std::make_unique<BddManager>(num_vars_);
  } else if (decl_view_->num_vars() < num_vars_) {
    decl_view_->AddVars(num_vars_ - decl_view_->num_vars());
  }
  return {decl_view_.get(), TransferToView(f)};
}

BddRef BddManager::TransferToView(BddRef f) const {
  if (IsTerminal(f)) return f;
  const BddRef parity = f & kComplementBit;
  const BddRef reg = Regular(f);
  if (auto it = decl_view_memo_.find(reg); it != decl_view_memo_.end()) {
    return it->second ^ parity;
  }
  // Rebuild bottom-up; the view's Ite re-canonicalizes under the identity
  // order, so the result is byte-for-byte the DAG an unreordered manager
  // would hold. Recursion depth is bounded by the number of levels.
  const Node& n = nodes_[reg >> 1];
  const BddRef low = TransferToView(n.low);
  const BddRef high = TransferToView(n.high);
  const BddRef r = decl_view_->Ite(decl_view_->VarTrue(n.var), high, low);
  decl_view_memo_.emplace(reg, r);
  return r ^ parity;
}

// --- Boolean operations ----------------------------------------------------

bool BddManager::RankBefore(BddRef a, BddRef b) const {
  // Any deterministic, complement-insensitive total order canonicalizes
  // the commutative triples; comparing arena indices does it without
  // touching node memory, which keeps normalization load-free on the
  // computed-cache hit path (ranking by top variable instead would cost
  // two dependent node loads per And/Or call).
  return (a >> 1) < (b >> 1);
}

bool BddManager::NormalizeIte(BddRef& f, BddRef& g, BddRef& h, bool& negate,
                              BddRef& result) const {
  negate = false;
  // Constant condition.
  if (f == kTrue) { result = g; return true; }
  if (f == kFalse) { result = h; return true; }
  // Operands equal (or complementary) to the condition collapse to
  // constants: Ite(f,f,h)=Ite(f,1,h), Ite(f,¬f,h)=Ite(f,0,h),
  // Ite(f,g,f)=Ite(f,g,0), Ite(f,g,¬f)=Ite(f,g,1).
  if (g == f) {
    g = kTrue;
  } else if (g == Not(f)) {
    g = kFalse;
  }
  if (h == f) {
    h = kFalse;
  } else if (h == Not(f)) {
    h = kTrue;
  }
  // Trivial results.
  if (g == h) { result = g; return true; }
  if (g == kTrue && h == kFalse) { result = f; return true; }
  if (g == kFalse && h == kTrue) { result = Not(f); return true; }
  // Commutative forms: order the two interchangeable operands by rank so
  // e.g. Or(f,h) and Or(h,f) share one cache key. Each rewrite below is an
  // identity on the denoted function; the swapped-in condition is never a
  // terminal (the trivial checks above removed those cases).
  if (g == kTrue) {  // Ite(f,1,h) == Ite(h,1,f)            (f ∨ h)
    if (RankBefore(h, f)) std::swap(f, h);
  } else if (h == kFalse) {  // Ite(f,g,0) == Ite(g,f,0)    (f ∧ g)
    if (RankBefore(g, f)) std::swap(f, g);
  } else if (g == kFalse) {  // Ite(f,0,h) == Ite(¬h,0,¬f)  (¬f ∧ h)
    if (RankBefore(h, f)) {
      BddRef t = f;
      f = Not(h);
      h = Not(t);
    }
  } else if (h == kTrue) {  // Ite(f,g,1) == Ite(¬g,¬f,1)   (¬f ∨ g)
    if (RankBefore(g, f)) {
      BddRef t = f;
      f = Not(g);
      g = Not(t);
    }
  } else if (g == Not(h)) {  // Ite(f,g,¬g) == Ite(g,f,¬f)  (f ⟺ g)
    if (RankBefore(g, f)) {
      BddRef t = f;
      f = g;
      g = t;
      h = Not(t);
    }
  }
  // Complement canonicalization: make the condition regular
  // (Ite(¬f,g,h) == Ite(f,h,g)), then the then-operand
  // (Ite(f,g,h) == ¬Ite(f,¬g,¬h)), recording the pending negation.
  if (IsComplement(f)) {
    f = Regular(f);
    std::swap(g, h);
  }
  if (IsComplement(g)) {
    g = Regular(g);
    h = Not(h);
    negate = true;
  }
  return false;
}

BddRef BddManager::Ite(BddRef f, BddRef g, BddRef h) {
  // The growth trigger runs only between top-level operations: a sift
  // mid-recursion would invalidate cofactors and branch variables held in
  // in-flight frames (Exists reenters through Or, hence the depth count).
  if (op_depth_ == 0) MaybeAutoSift();
  ++op_depth_;
  struct DepthGuard {
    std::uint32_t& depth;
    ~DepthGuard() { --depth; }
  } depth_guard{op_depth_};
  // Standardize up front: trivial calls (including every Not/constant
  // form) resolve here without touching the frame stack, and the
  // canonical triple gives warm calls a single cache probe.
  bool negate;
  BddRef resolved;
  if (NormalizeIte(f, g, h, negate, resolved)) return resolved;
  {
    const CacheEntry& e = ite_cache_[MixHash(f, g, h) & cache_mask_];
    if (e.f == f && e.g == g && e.h == h) {
      ++stat_cache_hits_;
      return negate ? Not(e.result) : e.result;
    }
  }
  ++stat_cache_misses_;

  ite_frames_.clear();
  ite_values_.clear();
  // The root triple is already standardized and its miss counted, so it
  // enters at the expansion state; its pending negation is applied on
  // return below rather than carried in the frame.
  ite_frames_.push_back({f, g, h, 0, 0, 0, 0, 0, kStateExpand, 0});

  while (!ite_frames_.empty()) {
    IteFrame& fr = ite_frames_.back();
    switch (fr.state) {
      case 0: {
        bool sub_negate;
        BddRef sub_resolved;
        if (NormalizeIte(fr.f, fr.g, fr.h, sub_negate, sub_resolved)) {
          ite_values_.push_back(sub_resolved);
          ite_frames_.pop_back();
          break;
        }
        fr.negate = sub_negate ? kComplementBit : 0;
        const CacheEntry& e =
            ite_cache_[MixHash(fr.f, fr.g, fr.h) & cache_mask_];
        if (e.f == fr.f && e.g == fr.g && e.h == fr.h) {
          ++stat_cache_hits_;
          ite_values_.push_back(e.result ^ fr.negate);
          ite_frames_.pop_back();
          break;
        }
        ++stat_cache_misses_;
        [[fallthrough]];
      }
      case kStateExpand: {
        // Cofactor at the variable topmost in the *current level order*
        // (under reordering, variable ids no longer rank levels). The
        // condition is regular after normalization; g and h may carry
        // complement bits, which propagate onto their child edges.
        const Node& nf = nodes_[fr.f >> 1];
        const Node& ng = nodes_[fr.g >> 1];
        const Node& nh = nodes_[fr.h >> 1];
        const Var lf = level_of_[nf.var];  // f is never terminal here.
        const Var lg = LevelOfNode(ng);
        const Var lh = LevelOfNode(nh);
        const Var top_level = std::min({lf, lg, lh});
        const Var top = var_at_level_[top_level];

        BddRef cg = fr.g & kComplementBit;
        BddRef ch = fr.h & kComplementBit;
        BddRef f0 = lf == top_level ? nf.low : fr.f;
        BddRef g0 = lg == top_level ? ng.low ^ cg : fr.g;
        BddRef h0 = lh == top_level ? nh.low ^ ch : fr.h;
        fr.f1 = lf == top_level ? nf.high : fr.f;
        fr.g1 = lg == top_level ? ng.high ^ cg : fr.g;
        fr.h1 = lh == top_level ? nh.high ^ ch : fr.h;
        fr.top = top;
        fr.state = 1;
        // push_back may invalidate `fr`; it is not used past this point.
        ite_frames_.push_back({f0, g0, h0, 0, 0, 0, 0, 0, 0, 0});
        break;
      }
      case 1: {
        fr.low = ite_values_.back();
        ite_values_.pop_back();
        fr.state = 2;
        ite_frames_.push_back({fr.f1, fr.g1, fr.h1, 0, 0, 0, 0, 0, 0, 0});
        break;
      }
      default: {  // state 2: both cofactors resolved.
        BddRef high = ite_values_.back();
        ite_values_.pop_back();
        BddRef result = MakeNode(fr.top, fr.low, high);
        ite_cache_[MixHash(fr.f, fr.g, fr.h) & cache_mask_] = {fr.f, fr.g,
                                                               fr.h, result};
        ite_values_.push_back(result ^ fr.negate);
        ite_frames_.pop_back();
        break;
      }
    }
  }
  assert(ite_values_.size() == 1);
  return negate ? Not(ite_values_.back()) : ite_values_.back();
}

BddStats BddManager::Stats() const {
  BddStats stats;
  stats.arena_size = nodes_.size() - free_list_.size();
  stats.arena_free = free_list_.size();
  stats.unique_capacity = unique_slots_.size();
  stats.unique_lookups = stat_unique_lookups_;
  stats.unique_probes = stat_unique_probes_;
  stats.unique_hits = stat_unique_hits_;
  stats.cache_capacity = ite_cache_.size();
  stats.cache_lookups = stat_cache_hits_ + stat_cache_misses_;
  stats.cache_hits = stat_cache_hits_;
  stats.sift_passes = stat_sift_passes_;
  stats.sift_swaps = stat_sift_swaps_;
  stats.sift_nodes_before = stat_sift_nodes_before_;
  stats.sift_nodes_after = stat_sift_nodes_after_;
  stats.gc_runs = stat_gc_runs_;
  stats.gc_reclaimed = stat_gc_reclaimed_;
  stats.gc_compacted_bytes = stat_gc_compacted_bytes_;
  return stats;
}

BddMemoryStats BddManager::MemoryStats() const {
  BddMemoryStats mem;
  mem.node_arena_bytes = nodes_.capacity() * sizeof(Node);
  mem.unique_table_bytes = unique_slots_.capacity() * sizeof(BddRef);
  mem.unique_load_factor =
      unique_slots_.empty()
          ? 0.0
          : static_cast<double>(unique_size_) /
                static_cast<double>(unique_slots_.size());
  mem.ite_cache_bytes = ite_cache_.capacity() * sizeof(CacheEntry);
  mem.scratch_bytes = var_true_.capacity() * sizeof(BddRef) +
                      level_of_.capacity() * sizeof(Var) +
                      var_at_level_.capacity() * sizeof(Var) +
                      free_list_.capacity() * sizeof(BddRef) +
                      sift_refs_.capacity() * sizeof(std::uint32_t) +
                      ite_frames_.capacity() * sizeof(IteFrame) +
                      ite_values_.capacity() * sizeof(BddRef) +
                      visit_mark_.capacity() * sizeof(std::uint32_t) +
                      visit_stack_.capacity() * sizeof(BddRef);
  if (decl_view_) {
    mem.scratch_bytes += decl_view_->MemoryStats().total_bytes;
  }
  mem.total_bytes = mem.node_arena_bytes + mem.unique_table_bytes +
                    mem.ite_cache_bytes + mem.scratch_bytes;
  mem.peak_live_nodes = peak_live_nodes_;
  mem.rehash_count = stat_rehashes_;
  return mem;
}

double BddManager::SatCount(BddRef f) {
  std::unordered_map<BddRef, double> memo;
  return SatCountRec(f, memo);
}

// Counts assignments over all num_vars_ variables. The memo is keyed by
// node *index* and stores the count of the node's regular function; a
// complemented reference reads the same entry and returns the complement
// against 2^num_vars. Counts of a node's children are always even (each
// child is independent of the parent's variable), so the halving below is
// exact in double precision up to the documented 2^53 bound. The 0.5 ×
// (low + high) form needs no level arithmetic at all, which makes the
// count independent of the variable order.
double BddManager::SatCountRec(BddRef f,
                               std::unordered_map<BddRef, double>& memo) {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return std::ldexp(1.0, static_cast<int>(num_vars_));
  const BddRef index = f >> 1;
  double regular;
  if (auto it = memo.find(index); it != memo.end()) {
    regular = it->second;
  } else {
    const Node& n = nodes_[index];
    regular = 0.5 * (SatCountRec(n.low, memo) + SatCountRec(n.high, memo));
    memo.emplace(index, regular);
  }
  return (f & kComplementBit) != 0
             ? std::ldexp(1.0, static_cast<int>(num_vars_)) - regular
             : regular;
}

void BddManager::BeginVisit() const {
  if (visit_mark_.size() < nodes_.size()) {
    visit_mark_.resize(nodes_.size(), 0);
  }
  if (++visit_stamp_ == 0) {  // Stamp wrapped: reset all marks once.
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0);
    visit_stamp_ = 1;
  }
}

std::size_t BddManager::NodeCount(BddRef f) const {
  BeginVisit();
  std::size_t count = 0;
  visit_stack_.clear();
  visit_stack_.push_back(f);
  while (!visit_stack_.empty()) {
    BddRef n = visit_stack_.back();
    visit_stack_.pop_back();
    if (IsTerminal(n) || Visited(n >> 1)) continue;
    MarkVisited(n >> 1);
    ++count;
    visit_stack_.push_back(nodes_[n >> 1].low);
    visit_stack_.push_back(nodes_[n >> 1].high);
  }
  return count;
}

std::vector<Var> BddManager::Support(BddRef f) const {
  BeginVisit();
  std::vector<Var> vars;
  visit_stack_.clear();
  visit_stack_.push_back(f);
  while (!visit_stack_.empty()) {
    BddRef n = visit_stack_.back();
    visit_stack_.pop_back();
    if (IsTerminal(n) || Visited(n >> 1)) continue;
    MarkVisited(n >> 1);
    vars.push_back(nodes_[n >> 1].var);
    visit_stack_.push_back(nodes_[n >> 1].low);
    visit_stack_.push_back(nodes_[n >> 1].high);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::optional<Cube> BddManager::AnySat(BddRef f) const {
  // Branch picking is level-order-sensitive: run on the declaration-order
  // view so the chosen cube matches an unreordered manager bit for bit.
  if (!order_is_identity_) {
    const OrderedView view = DeclarationOrderView(f);
    return view.mgr->AnySat(view.ref);
  }
  if (f == kFalse) return std::nullopt;
  Cube cube(num_vars_, -1);
  while (f != kTrue) {
    BddRef high = NodeHigh(f);
    if (high != kFalse) {
      cube[NodeVar(f)] = 1;
      f = high;
    } else {
      cube[NodeVar(f)] = 0;
      f = NodeLow(f);
    }
  }
  return cube;
}

std::optional<Cube> BddManager::MinSat(BddRef f) const {
  // The "prefer low, top variable first" walk is only lexicographic in the
  // declaration order; reordered managers answer through the view.
  if (!order_is_identity_) {
    const OrderedView view = DeclarationOrderView(f);
    return view.mgr->MinSat(view.ref);
  }
  if (f == kFalse) return std::nullopt;
  Cube cube(num_vars_, 0);  // Don't-cares resolve to 0 (lexicographic least).
  while (f != kTrue) {
    BddRef low = NodeLow(f);
    if (low != kFalse) {
      cube[NodeVar(f)] = 0;
      f = low;
    } else {
      cube[NodeVar(f)] = 1;
      f = NodeHigh(f);
    }
  }
  return cube;
}

void BddManager::ForEachSatPath(
    BddRef f, const std::function<void(const Cube&)>& fn) const {
  // Path enumeration order and the paths themselves (which variables
  // appear in each partial cube) depend on the level order; the view keeps
  // both identical to an unreordered run.
  if (!order_is_identity_) {
    const OrderedView view = DeclarationOrderView(f);
    view.mgr->ForEachSatPath(view.ref, fn);
    return;
  }
  if (f == kFalse) return;
  Cube cube(num_vars_, -1);
  std::function<void(BddRef)> rec = [&](BddRef g) {
    if (g == kFalse) return;
    if (g == kTrue) {
      fn(cube);
      return;
    }
    Var v = NodeVar(g);
    cube[v] = 0;
    rec(NodeLow(g));
    cube[v] = 1;
    rec(NodeHigh(g));
    cube[v] = -1;
  };
  rec(f);
}

BddRef BddManager::Exists(BddRef f, const std::vector<bool>& quantified) {
  // Same safepoint discipline as Ite: the recursion below assumes a frozen
  // order (its MakeNode(n.var, ...) rebuild relies on cofactor levels), so
  // the trigger runs only here, never inside the nested Or calls.
  if (op_depth_ == 0) MaybeAutoSift();
  ++op_depth_;
  struct DepthGuard {
    std::uint32_t& depth;
    ~DepthGuard() { --depth; }
  } depth_guard{op_depth_};
  std::unordered_map<BddRef, BddRef> memo;
  return ExistsRec(f, quantified, memo);
}

BddRef BddManager::ExistsRec(BddRef f, const std::vector<bool>& quantified,
                             std::unordered_map<BddRef, BddRef>& memo) {
  if (IsTerminal(f)) return f;
  // The memo is keyed by the full reference: quantification does not
  // commute with complement (∃v.¬f ≠ ¬∃v.f), so f and ¬f memoize
  // separately even though they share nodes.
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const BddRef c = f & kComplementBit;
  const Node n = nodes_[f >> 1];  // Copy: nodes_ may reallocate during recursion.
  BddRef low = ExistsRec(n.low ^ c, quantified, memo);
  BddRef high = ExistsRec(n.high ^ c, quantified, memo);
  BddRef result = (n.var < quantified.size() && quantified[n.var])
                      ? Or(low, high)
                      : MakeNode(n.var, low, high);
  memo.emplace(f, result);
  return result;
}

}  // namespace campion::bdd
