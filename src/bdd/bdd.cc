#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace campion::bdd {

BddManager::BddManager(Var num_vars) : num_vars_(num_vars) {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0: false terminal
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1: true terminal
  var_true_.resize(num_vars_, kFalse);
}

Var BddManager::AddVars(Var count) {
  Var first = num_vars_;
  num_vars_ += count;
  var_true_.resize(num_vars_, kFalse);
  return first;
}

BddRef BddManager::VarTrue(Var v) {
  assert(v < num_vars_);
  if (var_true_[v] == kFalse) {
    var_true_[v] = MakeNode(v, kFalse, kTrue);
  }
  return var_true_[v];
}

BddRef BddManager::VarFalse(Var v) { return Not(VarTrue(v)); }

BddRef BddManager::MakeNode(Var var, BddRef low, BddRef high) {
  if (low == high) return low;
  NodeKey key{var, low, high};
  auto [it, inserted] = unique_.try_emplace(key, 0);
  if (inserted) {
    it->second = static_cast<BddRef>(nodes_.size());
    nodes_.push_back({var, low, high});
  }
  return it->second;
}

BddRef BddManager::Ite(BddRef f, BddRef g, BddRef h) { return IteRec(f, g, h); }

BddRef BddManager::IteRec(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  IteKey key{f, g, h};
  if (auto it = ite_cache_.find(key); it != ite_cache_.end()) {
    return it->second;
  }

  Var vf = nodes_[f].var;
  Var vg = nodes_[g].var;  // kTerminalVar if terminal, sorts after all vars.
  Var vh = nodes_[h].var;
  Var top = std::min({vf, vg, vh});

  BddRef f0 = vf == top ? nodes_[f].low : f;
  BddRef f1 = vf == top ? nodes_[f].high : f;
  BddRef g0 = vg == top ? nodes_[g].low : g;
  BddRef g1 = vg == top ? nodes_[g].high : g;
  BddRef h0 = vh == top ? nodes_[h].low : h;
  BddRef h1 = vh == top ? nodes_[h].high : h;

  BddRef low = IteRec(f0, g0, h0);
  BddRef high = IteRec(f1, g1, h1);
  BddRef result = MakeNode(top, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

double BddManager::SatCount(BddRef f) {
  std::unordered_map<BddRef, double> memo;
  // SatCountRec counts assignments to variables strictly below the node's
  // own variable; scale by the free variables above the root.
  double below = SatCountRec(f, memo);
  Var root_var = IsTerminal(f) ? num_vars_ : nodes_[f].var;
  return below * std::pow(2.0, static_cast<double>(root_var));
}

double BddManager::SatCountRec(BddRef f,
                               std::unordered_map<BddRef, double>& memo) {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const Node& n = nodes_[f];
  auto weight = [&](BddRef child) {
    Var child_var = IsTerminal(child) ? num_vars_ : nodes_[child].var;
    return SatCountRec(child, memo) *
           std::pow(2.0, static_cast<double>(child_var - n.var - 1));
  };
  double count = weight(n.low) + weight(n.high);
  memo.emplace(f, count);
  return count;
}

std::size_t BddManager::NodeCount(BddRef f) const {
  std::set<BddRef> seen;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    BddRef n = stack.back();
    stack.pop_back();
    if (IsTerminal(n) || !seen.insert(n).second) continue;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return seen.size();
}

std::vector<Var> BddManager::Support(BddRef f) const {
  std::set<Var> vars;
  std::set<BddRef> seen;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    BddRef n = stack.back();
    stack.pop_back();
    if (IsTerminal(n) || !seen.insert(n).second) continue;
    vars.insert(nodes_[n].var);
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return {vars.begin(), vars.end()};
}

std::optional<Cube> BddManager::AnySat(BddRef f) const {
  if (f == kFalse) return std::nullopt;
  Cube cube(num_vars_, -1);
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.high != kFalse) {
      cube[n.var] = 1;
      f = n.high;
    } else {
      cube[n.var] = 0;
      f = n.low;
    }
  }
  return cube;
}

std::optional<Cube> BddManager::MinSat(BddRef f) const {
  if (f == kFalse) return std::nullopt;
  Cube cube(num_vars_, 0);  // Don't-cares resolve to 0 (lexicographic least).
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.low != kFalse) {
      cube[n.var] = 0;
      f = n.low;
    } else {
      cube[n.var] = 1;
      f = n.high;
    }
  }
  return cube;
}

void BddManager::ForEachSatPath(
    BddRef f, const std::function<void(const Cube&)>& fn) const {
  if (f == kFalse) return;
  Cube cube(num_vars_, -1);
  std::function<void(BddRef)> rec = [&](BddRef g) {
    if (g == kFalse) return;
    if (g == kTrue) {
      fn(cube);
      return;
    }
    const Node& n = nodes_[g];
    cube[n.var] = 0;
    rec(n.low);
    cube[n.var] = 1;
    rec(n.high);
    cube[n.var] = -1;
  };
  rec(f);
}

BddRef BddManager::Exists(BddRef f, const std::vector<bool>& quantified) {
  std::unordered_map<BddRef, BddRef> memo;
  return ExistsRec(f, quantified, memo);
}

BddRef BddManager::ExistsRec(BddRef f, const std::vector<bool>& quantified,
                             std::unordered_map<BddRef, BddRef>& memo) {
  if (IsTerminal(f)) return f;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const Node n = nodes_[f];  // Copy: nodes_ may reallocate during recursion.
  BddRef low = ExistsRec(n.low, quantified, memo);
  BddRef high = ExistsRec(n.high, quantified, memo);
  BddRef result = (n.var < quantified.size() && quantified[n.var])
                      ? Or(low, high)
                      : MakeNode(n.var, low, high);
  memo.emplace(f, result);
  return result;
}

}  // namespace campion::bdd
