#include "frontend/loader.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "cisco/cisco_parser.h"
#include "juniper/juniper_parser.h"
#include "obs/mem_metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace campion::frontend {
namespace {

bool ContainsToken(const std::string& text, const std::string& token) {
  return text.find(token) != std::string::npos;
}

std::size_t CountLines(const std::string& text) {
  std::size_t newlines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  // A final line without a trailing newline still counts.
  return newlines + (!text.empty() && text.back() != '\n' ? 1 : 0);
}

}  // namespace

ir::Vendor DetectVendor(const std::string& text) {
  // JunOS structure markers.
  int juniper_score = 0;
  for (const char* marker :
       {"policy-options", "routing-options", "host-name", "policy-statement",
        "family inet", "prefix-length-range"}) {
    if (ContainsToken(text, marker)) ++juniper_score;
  }
  // Braces with semicolons are a strong JunOS signal.
  if (ContainsToken(text, "{") && ContainsToken(text, ";")) ++juniper_score;

  int cisco_score = 0;
  for (const char* marker :
       {"hostname ", "ip route ", "router bgp", "router ospf",
        "route-map ", "ip prefix-list", "access-list", "ip community-list"}) {
    if (ContainsToken(text, marker)) ++cisco_score;
  }

  if (juniper_score == 0 && cisco_score == 0) return ir::Vendor::kUnknown;
  return juniper_score > cisco_score ? ir::Vendor::kJuniper
                                     : ir::Vendor::kCisco;
}

LoadResult LoadConfig(const std::string& text, const std::string& filename,
                      ir::Vendor vendor) {
  obs::ScopedSpan span("parse", filename);
  if (vendor == ir::Vendor::kUnknown) {
    vendor = DetectVendor(text);
    if (vendor == ir::Vendor::kUnknown) {
      throw std::runtime_error(filename +
                               ": cannot detect configuration format");
    }
  }
  std::size_t lines = CountLines(text);
  span.AddAttr("lines", static_cast<double>(lines));
  span.AddAttr("bytes", static_cast<double>(text.size()));
  obs::Count("parse.files");
  obs::Count("parse.lines", static_cast<double>(lines));
  obs::Count("parse.bytes", static_cast<double>(text.size()));
  LoadResult result;
  if (vendor == ir::Vendor::kCisco) {
    auto parsed = cisco::ParseCiscoConfig(text, filename);
    result.config = std::move(parsed.config);
    result.diagnostics = std::move(parsed.diagnostics);
  } else {
    auto parsed = juniper::ParseJuniperConfig(text, filename);
    result.config = std::move(parsed.config);
    result.diagnostics = std::move(parsed.diagnostics);
  }
  span.AddAttr("diagnostics", static_cast<double>(result.diagnostics.size()));
  obs::RecordSpanMemory(span);
  return result;
}

LoadResult LoadConfigFile(const std::string& path, ir::Vendor vendor) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return LoadConfig(buffer.str(), path, vendor);
}

}  // namespace campion::frontend
