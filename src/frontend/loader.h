#pragma once

// Unified configuration loading: detects the vendor format (Cisco IOS's
// line-oriented directives vs JunOS's brace hierarchy) and dispatches to
// the right parser. This is the entry point the CLI and examples use.

#include <string>
#include <vector>

#include "ir/config.h"

namespace campion::frontend {

struct LoadResult {
  ir::RouterConfig config;
  std::vector<std::string> diagnostics;
};

// Guesses the vendor from configuration text. JunOS configurations are
// brace-structured ("policy-options {", "system {"); IOS configurations
// are flat directives ("router bgp", "ip route"). kUnknown when neither
// signal is present.
ir::Vendor DetectVendor(const std::string& text);

// Parses `text` as the given vendor; kUnknown means detect first.
// Throws std::runtime_error if detection fails.
LoadResult LoadConfig(const std::string& text, const std::string& filename,
                      ir::Vendor vendor = ir::Vendor::kUnknown);

// Reads and parses a file. Throws std::runtime_error on I/O errors or
// failed detection.
LoadResult LoadConfigFile(const std::string& path,
                          ir::Vendor vendor = ir::Vendor::kUnknown);

}  // namespace campion::frontend
