#pragma once

// JSON serialization of Campion's difference reports, for integration into
// operator tooling and CI pipelines (the cloud provider in §5.1 ran
// Campion inside their own change workflow; a machine-readable report is
// what that requires).

#include <string>

#include "core/config_diff.h"

namespace campion::core {

// Renders a full report as a JSON object:
// {
//   "router1": "...", "router2": "...",
//   "equivalent": bool,
//   "differences": [ {
//       "kind": "route-map" | "acl" | "structural" | "unmatched" | "warning",
//       "title": "...",
//       "included_prefixes": ["10.9.0.0/16 : 16-32", ...],
//       "excluded_prefixes": [...],
//       "example": "...",            (optional)
//       "action1": "...", "action2": "...",
//       "text1": "...", "text2": "..."
//   }, ... ]
// }
std::string ReportToJson(const DiffReport& report,
                         const std::string& router1,
                         const std::string& router2);

// Escapes a string for embedding in JSON (quotes, backslashes, control
// characters).
std::string JsonEscape(const std::string& text);

// Renders an already-formatted report body as a JSON fragment for
// embedding in composite responses (the daemon's obs envelope and per-pair
// /batch items): the object verbatim when the body is ReportToJson output,
// otherwise a JSON string literal of the text rendering.
std::string ReportJsonFragment(const std::string& rendered, bool is_json);

}  // namespace campion::core
