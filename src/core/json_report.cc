#include "core/json_report.h"

#include "util/json.h"

namespace campion::core {
namespace {

const char* KindName(DifferenceEntry::Kind kind) {
  switch (kind) {
    case DifferenceEntry::Kind::kRouteMapSemantic: return "route-map";
    case DifferenceEntry::Kind::kAclSemantic: return "acl";
    case DifferenceEntry::Kind::kStructural: return "structural";
    case DifferenceEntry::Kind::kUnmatched: return "unmatched";
    case DifferenceEntry::Kind::kWarning: return "warning";
  }
  return "unknown";
}

std::string Quoted(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

std::string RangeArray(const std::vector<util::PrefixRange>& ranges) {
  std::string out = "[";
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i > 0) out += ",";
    out += Quoted(ranges[i].ToString());
  }
  return out + "]";
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  return util::JsonEscape(text);
}

std::string ReportJsonFragment(const std::string& rendered, bool is_json) {
  if (is_json) return rendered;
  return "\"" + util::JsonEscape(rendered) + "\"";
}

std::string ReportToJson(const DiffReport& report, const std::string& router1,
                         const std::string& router2) {
  std::string out = "{\n";
  out += "  \"router1\": " + Quoted(router1) + ",\n";
  out += "  \"router2\": " + Quoted(router2) + ",\n";
  out += std::string("  \"equivalent\": ") +
         (report.Equivalent() ? "true" : "false") + ",\n";
  if (report.entries.empty()) {
    out += "  \"differences\": []\n}\n";
    return out;
  }
  out += "  \"differences\": [";
  bool first = true;
  for (const auto& entry : report.entries) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\n";
    out += std::string("      \"kind\": \"") + KindName(entry.kind) + "\",\n";
    out += "      \"title\": " + Quoted(entry.title) + ",\n";
    const PresentedDifference& d = entry.detail;
    if (!d.included.empty() || !d.excluded.empty()) {
      out += "      \"included_prefixes\": " + RangeArray(d.included) + ",\n";
      out += "      \"excluded_prefixes\": " + RangeArray(d.excluded) + ",\n";
    }
    if (!d.src_included.empty() || !d.src_excluded.empty()) {
      out += "      \"src_included_prefixes\": " + RangeArray(d.src_included) +
             ",\n";
      out += "      \"src_excluded_prefixes\": " + RangeArray(d.src_excluded) +
             ",\n";
    }
    auto port_array = [&](const std::vector<ir::PortRange>& ranges) {
      std::string array = "[";
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (i > 0) array += ",";
        array += Quoted(ranges[i].ToString());
      }
      return array + "]";
    };
    if (!d.protocols.empty()) {
      out += "      \"protocols\": " + port_array(d.protocols) + ",\n";
    }
    if (!d.dst_ports.empty()) {
      out += "      \"dst_ports\": " + port_array(d.dst_ports) + ",\n";
    }
    if (d.example) {
      out += "      \"example\": " + Quoted(*d.example) + ",\n";
    }
    if (!d.location1.empty() || !d.location2.empty()) {
      out += "      \"location1\": " + Quoted(d.location1) + ",\n";
      out += "      \"location2\": " + Quoted(d.location2) + ",\n";
    }
    out += "      \"action1\": " + Quoted(d.action1) + ",\n";
    out += "      \"action2\": " + Quoted(d.action2) + ",\n";
    out += "      \"text1\": " + Quoted(d.text1) + ",\n";
    out += "      \"text2\": " + Quoted(d.text2) + ",\n";
    out += "      \"rendered\": " + Quoted(entry.rendered) + "\n";
    out += "    }";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace campion::core
