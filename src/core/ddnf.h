#pragma once

// The prefix-range containment DAG used by HeaderLocalize (§3.2), analogous
// to the ddNF data structure of Bjørner et al. but labeled with prefix
// ranges instead of tri-state bit vectors.
//
// Invariants (paper §3.2):
//   1. The root is labeled with the universe and reaches every node.
//   2. Labels are unique (ranges are normalized before insertion).
//   3. The label set contains every supplied range and is closed under
//      intersection.
//   4. There is an edge (m, n) exactly when label(n) ⊊ label(m) with no
//      intermediate node between them.

#include <cstddef>
#include <vector>

#include "util/prefix_range.h"

namespace campion::core {

class PrefixRangeDag {
 public:
  // Builds the DAG over `ranges`, with `universe` as the root (added if
  // missing) and the label set closed under intersection. Ranges are
  // normalized (length window clamped to [base length, 32] and intersected
  // with the universe) and de-duplicated; empty ranges are dropped.
  PrefixRangeDag(std::vector<util::PrefixRange> ranges,
                 util::PrefixRange universe = util::PrefixRange::Universe());

  std::size_t size() const { return labels_.size(); }
  std::size_t root() const { return 0; }
  const util::PrefixRange& label(std::size_t node) const {
    return labels_[node];
  }
  const std::vector<std::size_t>& children(std::size_t node) const {
    return children_[node];
  }
  bool IsLeaf(std::size_t node) const { return children_[node].empty(); }

  // All labels in insertion (generality) order; index == node id.
  const std::vector<util::PrefixRange>& labels() const { return labels_; }

 private:
  std::vector<util::PrefixRange> labels_;
  std::vector<std::vector<std::size_t>> children_;
};

}  // namespace campion::core
