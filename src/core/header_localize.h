#pragma once

// HeaderLocalize (§3.2): turns the BDD of a difference's input set into a
// minimal, human-readable union of configuration prefix ranges and range
// differences — the "Included Prefixes" / "Excluded Prefixes" rows of the
// paper's output tables.
//
// The algorithm builds the prefix-range containment DAG (core/ddnf.h) over
// every range constant appearing in the two configurations, associates each
// node with its symbolic member set, and runs the recursive GetMatch
// traversal: a node whose remainder lies inside S contributes its range
// minus the children not in S (computed by recursing on ¬S); otherwise the
// children are visited and their results unioned. A final pass removes
// nested differences, e.g. C − (F − G) becomes {C − F, G}.

#include <functional>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "core/ddnf.h"
#include "util/prefix_range.h"

namespace campion::core {

// Maps a prefix range to the BDD of its member set. HeaderLocalize is
// encoding-agnostic: route advertisements supply RouteAdvLayout's
// MatchPrefixRange, dataplane ACLs supply a destination-address encoding
// where ranges are (prefix, 32-32) address sets.
using RangeToBdd = std::function<bdd::BddRef(const util::PrefixRange&)>;

struct HeaderLocalizeResult {
  // S as a union of difference terms (include minus excludes).
  std::vector<util::PrefixRangeTerm> terms;

  // Flattened views for presentation: the union of all included ranges and
  // of all excluded ranges, as in the paper's tables.
  std::vector<util::PrefixRange> IncludedRanges() const;
  std::vector<util::PrefixRange> ExcludedRanges() const;

  std::string ToString() const;
};

// `set` must be a predicate over the prefix encoding only (project other
// variables out first); `ranges` must include every range constant used to
// build it. `universe` is the root range (the whole advertisement space for
// route maps; the all-/32s space for ACL destination addresses).
HeaderLocalizeResult HeaderLocalize(
    bdd::BddManager& mgr, bdd::BddRef set,
    std::vector<util::PrefixRange> ranges, const RangeToBdd& range_to_bdd,
    util::PrefixRange universe = util::PrefixRange::Universe());

}  // namespace campion::core
