#pragma once

// SemanticDiff (§3.1): exhaustive behavioral differencing of route maps and
// ACLs via path equivalence classes.
//
// Each component is compiled into an ordered list of path classes — one
// logical predicate (BDD) per path through the component's if-then-else
// structure, paired with the normalized action taken on that path and the
// configuration text responsible. Two components differ exactly on the
// pairwise intersections of their classes whose actions disagree; each such
// intersection becomes one difference quintuple (i, a1, a2, t1, t2).

#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "core/route_action.h"
#include "encode/encoding_template.h"
#include "encode/packet.h"
#include "encode/policy_encoder.h"
#include "encode/route_adv.h"
#include "ir/config.h"
#include "ir/policy.h"

namespace campion::core {

// ---------------------------------------------------------------------------
// Route maps
// ---------------------------------------------------------------------------

// One path equivalence class of a route map (Figure 2 of the paper).
struct RouteMapPathClass {
  bdd::BddRef predicate = bdd::kFalse;
  RouteAction action;
  std::string text;        // Configuration lines along the path.
  bool is_default = false;  // The fall-off-the-end class.
};

// Partitions the advertisement space by paths through `map`. Classes are
// disjoint and cover the whole (valid) space; a final default class carries
// the route map's fall-through action. Fall-through (Juniper terms without
// a terminating action) forks the state, so the class count can exceed the
// clause count.
std::vector<RouteMapPathClass> BuildRouteMapClasses(
    encode::RouteAdvLayout& layout, encode::PolicyEncoder& encoder,
    const ir::RouteMap& map);

// One behavioral difference between two route maps.
struct RouteMapDifference {
  bdd::BddRef input_set = bdd::kFalse;  // Advertisements treated differently.
  RouteAction action1;
  RouteAction action2;
  std::string text1;
  std::string text2;
};

// All behavioral differences between two route maps, which may come from
// different routers (`config1`/`config2` resolve the named lists each map
// references). Both maps must be encoded against the same layout. `tmpl`,
// when given, must have seeded the layout's manager; structurally known
// lists then resolve by template lookup instead of re-encoding.
std::vector<RouteMapDifference> SemanticDiffRouteMaps(
    encode::RouteAdvLayout& layout, const ir::RouterConfig& config1,
    const ir::RouteMap& map1, const ir::RouterConfig& config2,
    const ir::RouteMap& map2,
    const encode::EncodingTemplate* tmpl = nullptr);

// ---------------------------------------------------------------------------
// ACLs
// ---------------------------------------------------------------------------

struct AclPathClass {
  bdd::BddRef predicate = bdd::kFalse;
  ir::LineAction action = ir::LineAction::kDeny;
  std::string text;
  bool is_default = false;
};

std::vector<AclPathClass> BuildAclClasses(
    encode::PacketLayout& layout, const ir::Acl& acl,
    const encode::EncodingTemplate* tmpl = nullptr);

struct AclDifference {
  bdd::BddRef input_set = bdd::kFalse;
  ir::LineAction action1 = ir::LineAction::kPermit;
  ir::LineAction action2 = ir::LineAction::kPermit;
  std::string text1;
  std::string text2;
};

struct AclDiffOptions {
  // Restrict the pairwise class comparison to classes overlapping the
  // symmetric difference of the permit sets. Sound and complete (any
  // differing pair lies inside it); disabling is for ablation only.
  bool prune_with_disagreement_set = true;
};

std::vector<AclDifference> SemanticDiffAcls(
    encode::PacketLayout& layout, const ir::Acl& acl1, const ir::Acl& acl2,
    const AclDiffOptions& options = {},
    const encode::EncodingTemplate* tmpl = nullptr);

}  // namespace campion::core
