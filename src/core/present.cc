#include "core/present.h"

#include <algorithm>

#include "util/text_table.h"

namespace campion::core {
namespace {

std::string RangesToCell(const std::vector<util::PrefixRange>& ranges) {
  if (ranges.empty()) return "(none)";
  std::string out;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i > 0) out += "\n";
    out += ranges[i].ToString();
  }
  return out;
}

// The universe of destination addresses as a prefix range: every host
// prefix (/32 for IPv4, /128 for IPv6).
util::PrefixRange AddressUniverse(util::AddressFamily family) {
  const int width = util::AddressWidth(family);
  return util::PrefixRange(util::IpPrefix(family, util::U128(), 0), width,
                           width);
}

std::vector<util::PrefixRange> AclRanges(const ir::Acl& acl, bool dst) {
  const int width = util::AddressWidth(acl.family);
  std::vector<util::PrefixRange> ranges;
  for (const auto& line : acl.lines) {
    const util::IpWildcard& w = dst ? line.dst : line.src;
    if (auto prefix = w.AsIpPrefix()) {
      ranges.emplace_back(*prefix, width, width);
    }
  }
  return ranges;
}

}  // namespace

std::vector<util::PrefixRange> AclDstRanges(const ir::Acl& acl) {
  return AclRanges(acl, /*dst=*/true);
}

std::vector<util::PrefixRange> AclSrcRanges(const ir::Acl& acl) {
  return AclRanges(acl, /*dst=*/false);
}

PresentedDifference PresentRouteMapDifference(
    encode::RouteAdvLayout& layout, const RouteMapDifference& diff,
    const ir::RouterConfig& config1, const ir::RouterConfig& config2,
    const std::string& policy1, const std::string& policy2) {
  bdd::BddManager& mgr = layout.manager();
  PresentedDifference out;

  // Header localization over the advertised prefix: project the input set
  // onto the prefix variables and express it over the configurations'
  // prefix-range constants.
  bdd::BddRef prefix_set = mgr.Exists(diff.input_set,
                                      layout.NonPrefixVarMask());
  std::vector<util::PrefixRange> ranges = config1.AllPrefixRanges();
  auto ranges2 = config2.AllPrefixRanges();
  ranges.insert(ranges.end(), ranges2.begin(), ranges2.end());
  // Range constants of the other family match nothing on this layout; the
  // DAG drops them (they have no intersection with the universe).
  std::erase_if(ranges, [&](const util::PrefixRange& r) {
    return r.family() != layout.family();
  });
  HeaderLocalizeResult localized = HeaderLocalize(
      mgr, prefix_set, std::move(ranges),
      [&](const util::PrefixRange& r) { return layout.MatchPrefixRange(r); },
      util::PrefixRange::UniverseOf(layout.family()));
  out.included = localized.IncludedRanges();
  out.excluded = localized.ExcludedRanges();

  // Communities are shown only when they are *required* for the
  // difference: if some community-free route already exhibits it, the
  // Included/Excluded prefix rows characterize it and the row would be
  // noise (the paper's Table 2(a) omits it for this reason). When they are
  // required, we go beyond the paper's single example (its §4 sketches
  // this as future work): the difference set is projected onto the
  // community variables and, if the projection has few enough distinct
  // conditions, all of them are listed; otherwise one example is shown
  // with a "+N more" marker, Table 7-style.
  if (!mgr.Intersects(diff.input_set, layout.NoCommunities())) {
    std::vector<bool> community_vars = layout.CommunityVarMask();
    std::vector<bool> non_community = community_vars;
    non_community.flip();
    bdd::BddRef community_set = mgr.Exists(diff.input_set, non_community);
    std::vector<std::string> conditions;
    std::size_t total_conditions = 0;
    constexpr std::size_t kMaxConditions = 6;
    mgr.ForEachSatPath(community_set, [&](const bdd::Cube& cube) {
      ++total_conditions;
      if (conditions.size() < kMaxConditions) {
        conditions.push_back(layout.DescribeCommunityCube(cube));
      }
    });
    if (total_conditions > kMaxConditions) {
      conditions.resize(1);
      conditions[0] += "  (+" + std::to_string(total_conditions - 1) +
                       " more conditions)";
    }
    out.example = util::JoinLines(conditions, "\n");
  }

  out.action1 = diff.action1.ToString();
  out.action2 = diff.action2.ToString();
  out.text1 = diff.text1;
  out.text2 = diff.text2;

  util::TextTable table({"", config1.hostname, config2.hostname});
  table.AddRow({"Included Prefixes", RangesToCell(out.included), ""});
  table.AddRow({"Excluded Prefixes", RangesToCell(out.excluded), ""});
  if (out.example) table.AddRow({"Community", *out.example, ""});
  table.AddRow({"Policy Name", policy1, policy2});
  table.AddRow({"Action", out.action1, out.action2});
  table.AddRow({"Text", out.text1, out.text2});
  out.table = table.Render();
  out.title = "Route map difference: " + policy1 + " vs " + policy2;
  return out;
}

PresentedDifference PresentAclDifference(encode::PacketLayout& layout,
                                         const AclDifference& diff,
                                         const ir::Acl& acl1,
                                         const ir::Acl& acl2,
                                         const ir::RouterConfig& config1,
                                         const ir::RouterConfig& config2) {
  bdd::BddManager& mgr = layout.manager();
  PresentedDifference out;

  auto localize = [&](const std::vector<bool>& keep_mask,
                      std::vector<util::PrefixRange> ranges,
                      auto range_to_bdd) {
    std::vector<bool> quantified = keep_mask;
    quantified.flip();
    bdd::BddRef projected = mgr.Exists(diff.input_set, quantified);
    return HeaderLocalize(mgr, projected, std::move(ranges), range_to_bdd,
                          AddressUniverse(layout.family()));
  };

  std::vector<util::PrefixRange> dst_ranges = AclDstRanges(acl1);
  auto dst2 = AclDstRanges(acl2);
  dst_ranges.insert(dst_ranges.end(), dst2.begin(), dst2.end());
  HeaderLocalizeResult dst = localize(
      layout.DstIpVarMask(), std::move(dst_ranges),
      [&](const util::PrefixRange& r) {
        return layout.MatchDstPrefix(r.prefix());
      });
  out.included = dst.IncludedRanges();
  out.excluded = dst.ExcludedRanges();

  std::vector<util::PrefixRange> src_ranges = AclSrcRanges(acl1);
  auto src2 = AclSrcRanges(acl2);
  src_ranges.insert(src_ranges.end(), src2.begin(), src2.end());
  HeaderLocalizeResult src = localize(
      layout.SrcIpVarMask(), std::move(src_ranges),
      [&](const util::PrefixRange& r) {
        return layout.MatchSrcPrefix(r.prefix());
      });
  out.src_included = src.IncludedRanges();
  out.src_excluded = src.ExcludedRanges();

  // Exact protocol / destination-port localization; rows are shown only
  // when the difference actually constrains the field.
  auto protocols = layout.AffectedProtocols(diff.input_set);
  if (!(protocols.size() == 1 && protocols[0].low == 0 &&
        protocols[0].high == 255)) {
    out.protocols = std::move(protocols);
  }
  auto dst_ports = layout.AffectedDstPorts(diff.input_set);
  if (!(dst_ports.size() == 1 && dst_ports[0].IsAny())) {
    out.dst_ports = std::move(dst_ports);
  }

  if (auto cube = mgr.AnySat(diff.input_set)) {
    out.example = layout.Decode(*cube).ToString();
  }

  out.action1 = ir::ToString(diff.action1 == ir::LineAction::kPermit
                                 ? ir::ClauseAction::kPermit
                                 : ir::ClauseAction::kDeny);
  out.action2 = ir::ToString(diff.action2 == ir::LineAction::kPermit
                                 ? ir::ClauseAction::kPermit
                                 : ir::ClauseAction::kDeny);
  out.text1 = diff.text1;
  out.text2 = diff.text2;

  // Render srcIP/dstIP localizations as prefixes (the window is always
  // exactly /32s, so show just the base prefix).
  auto as_prefixes = [](const std::vector<util::PrefixRange>& ranges) {
    std::vector<std::string> lines;
    lines.reserve(ranges.size());
    for (const auto& r : ranges) lines.push_back(r.prefix().ToString());
    return util::JoinLines(lines, "\n");
  };
  std::string included_cell;
  if (!out.src_included.empty()) {
    included_cell += "srcIP: " + as_prefixes(out.src_included);
  }
  if (!out.included.empty()) {
    if (!included_cell.empty()) included_cell += "\n";
    included_cell += "dstIP: " + as_prefixes(out.included);
  }
  std::string excluded_cell;
  if (!out.src_excluded.empty()) {
    excluded_cell += "srcIP: " + as_prefixes(out.src_excluded);
  }
  if (!out.excluded.empty()) {
    if (!excluded_cell.empty()) excluded_cell += "\n";
    excluded_cell += "dstIP: " + as_prefixes(out.excluded);
  }
  if (excluded_cell.empty()) excluded_cell = "(none)";

  auto ranges_cell = [](const std::vector<ir::PortRange>& ranges,
                        bool protocol_names) {
    std::string cell;
    for (const auto& range : ranges) {
      if (!cell.empty()) cell += ", ";
      if (protocol_names && range.low == range.high) {
        cell += ir::ProtocolNumberToString(
            static_cast<std::uint8_t>(range.low));
      } else {
        cell += range.ToString();
      }
    }
    return cell;
  };

  util::TextTable table({"", config1.hostname, config2.hostname});
  table.AddRow({"Included Packets", included_cell, ""});
  table.AddRow({"Excluded Packets", excluded_cell, ""});
  if (!out.protocols.empty()) {
    table.AddRow({"Protocols", ranges_cell(out.protocols, true), ""});
  }
  if (!out.dst_ports.empty()) {
    table.AddRow({"Dst Ports", ranges_cell(out.dst_ports, false), ""});
  }
  if (out.example) table.AddRow({"Example", *out.example, ""});
  table.AddRow({"ACL Name", acl1.name, acl2.name});
  table.AddRow({"Action", out.action1, out.action2});
  table.AddRow({"Text", out.text1, out.text2});
  out.table = table.Render();
  out.title = "ACL difference: " + acl1.name;
  return out;
}

PresentedDifference PresentStructuralDifference(
    const StructuralDifference& diff, const ir::RouterConfig& config1,
    const ir::RouterConfig& config2) {
  PresentedDifference out;
  out.action1 = diff.value1;
  out.action2 = diff.value2;
  out.text1 = diff.span1.text.empty() ? "(none)" : diff.span1.text;
  out.text2 = diff.span2.text.empty() ? "(none)" : diff.span2.text;
  if (diff.span1.HasLocation()) out.location1 = diff.span1.LocationString();
  if (diff.span2.HasLocation()) out.location2 = diff.span2.LocationString();

  util::TextTable table({"", config1.hostname, config2.hostname});
  table.AddRow({"Component", diff.component, diff.component});
  table.AddRow({diff.field, diff.value1, diff.value2});
  table.AddRow({"Text", out.text1, out.text2});
  out.table = table.Render();
  out.title = "Structural difference: " + diff.component + " (" + diff.field +
              ")";
  return out;
}

}  // namespace campion::core
