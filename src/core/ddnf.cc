#include "core/ddnf.h"

#include <algorithm>
#include <set>

namespace campion::core {
namespace {

// Clamps the length window to the feasible [base length, family max] band so
// that semantically equal ranges have equal representations.
util::PrefixRange Normalize(const util::PrefixRange& r) {
  int low = std::max(r.low(), r.prefix().length());
  int high = std::min(r.high(), util::MaxPrefixLength(r.family()));
  return util::PrefixRange(r.prefix(), low, high);
}

}  // namespace

PrefixRangeDag::PrefixRangeDag(std::vector<util::PrefixRange> ranges,
                               util::PrefixRange universe) {
  universe = Normalize(universe);

  // Normalize against the universe and drop empties/duplicates.
  std::set<util::PrefixRange> pool;
  for (const auto& r : ranges) {
    auto clipped = Normalize(r).Intersect(universe);
    if (clipped) pool.insert(*clipped);
  }
  pool.erase(universe);

  // Close under intersection (a fixed point: intersecting two ranges can
  // produce a window that intersects further ranges in new ways).
  std::vector<util::PrefixRange> worklist(pool.begin(), pool.end());
  while (!worklist.empty()) {
    util::PrefixRange r = worklist.back();
    worklist.pop_back();
    std::vector<util::PrefixRange> fresh;
    for (const auto& other : pool) {
      auto meet = r.Intersect(other);
      if (meet && !pool.contains(*meet) && *meet != universe) {
        fresh.push_back(*meet);
      }
    }
    for (auto& m : fresh) {
      pool.insert(m);
      worklist.push_back(m);
    }
  }

  // Insert in generality order — containers before containees — so every
  // strict container of a range already exists when the range is inserted.
  // Containment implies base length is <= and the window is wider, so
  // sorting by (base length asc, window width desc) is a topological order.
  std::vector<util::PrefixRange> ordered(pool.begin(), pool.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const util::PrefixRange& a, const util::PrefixRange& b) {
              if (a.prefix().length() != b.prefix().length()) {
                return a.prefix().length() < b.prefix().length();
              }
              int wa = a.high() - a.low();
              int wb = b.high() - b.low();
              if (wa != wb) return wa > wb;
              return a < b;
            });

  labels_.push_back(universe);
  children_.emplace_back();
  for (const auto& r : ordered) {
    std::size_t node = labels_.size();
    labels_.push_back(r);
    children_.emplace_back();
    // Immediate parents: strict containers with no other strict container
    // of r strictly below them.
    std::vector<std::size_t> containers;
    for (std::size_t m = 0; m < node; ++m) {
      if (labels_[m] != r && labels_[m].ContainsRange(r)) {
        containers.push_back(m);
      }
    }
    for (std::size_t m : containers) {
      bool immediate = true;
      for (std::size_t k : containers) {
        if (k != m && labels_[m] != labels_[k] &&
            labels_[m].ContainsRange(labels_[k])) {
          immediate = false;
          break;
        }
      }
      if (immediate) children_[m].push_back(node);
    }
  }
}

}  // namespace campion::core
