#pragma once

// StructuralDiff (§3.3): equivalence checking for configuration components
// whose structure determines their behavior — static routes, connected
// routes, OSPF link attributes, BGP properties not expressed as route maps,
// and administrative distances. When checked modularly, any structural
// mismatch in these components is a possible behavioral difference, so a
// structural comparison is exactly as precise as a semantic one while being
// cheaper and trivially localizable.
//
// Components are compared as atomic values, tuples of values, or unordered
// sets of tuples: atoms by equality, tuples field-wise, sets by set
// difference keyed on an identifying field.

#include <string>
#include <vector>

#include "ir/config.h"
#include "util/source_span.h"

namespace campion::core {

// One structural mismatch. `value1`/`value2` are rendered field values;
// "(absent)" marks an element present on only one side.
struct StructuralDifference {
  std::string component;  // e.g. "Static Route 10.1.1.2/31", "BGP Neighbor 10.0.0.2"
  std::string field;      // e.g. "next hop", "presence", "send-community"
  std::string value1;
  std::string value2;
  util::SourceSpan span1;
  util::SourceSpan span2;
};

// Static routes: keyed by destination prefix. A prefix present on one side
// only is a presence difference; a prefix on both sides is compared as the
// set of (next hop, admin distance, tag) tuples configured for it.
std::vector<StructuralDifference> DiffStaticRoutes(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2);

// Connected routes: the sets of interface subnets.
std::vector<StructuralDifference> DiffConnectedRoutes(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2);

// OSPF link attributes, compared per interface pair. `interface_pairs`
// comes from MatchPolicies (backup routers' interfaces rarely share
// addresses, so matching is heuristic). Also compares process-level
// attributes (reference bandwidth, redistribution presence).
std::vector<StructuralDifference> DiffOspf(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2,
    const std::vector<std::pair<std::string, std::string>>& interface_pairs);

// BGP properties not implemented with route maps: neighbor presence,
// remote AS, route-reflector-client, send-community, next-hop-self, and
// the sets of locally originated networks.
std::vector<StructuralDifference> DiffBgpProperties(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2);

// Administrative distances per protocol.
std::vector<StructuralDifference> DiffAdminDistances(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2);

}  // namespace campion::core
