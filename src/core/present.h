#pragma once

// Present (§3): formats differences for the user. Semantic differences get
// header localization — the Included/Excluded Prefixes rows of the paper's
// Table 2 — plus a single concrete example for route fields HeaderLocalize
// does not enumerate (communities, and protocol/ports for ACLs), then the
// Action and Text rows for text localization.

#include <optional>
#include <string>
#include <vector>

#include "core/header_localize.h"
#include "core/semantic_diff.h"
#include "core/structural_diff.h"
#include "encode/packet.h"
#include "encode/route_adv.h"
#include "ir/config.h"

namespace campion::core {

// A fully rendered difference plus its structured fields, so tests and
// downstream tooling can assert on content without re-parsing tables.
struct PresentedDifference {
  std::string title;
  std::string table;  // Rendered fixed-width table.

  std::vector<util::PrefixRange> included;
  std::vector<util::PrefixRange> excluded;
  // For ACL differences, the source-address localization.
  std::vector<util::PrefixRange> src_included;
  std::vector<util::PrefixRange> src_excluded;
  // For ACL differences, the exact affected protocols and destination
  // ports (empty when the whole space is affected — then the row is
  // omitted as uninformative).
  std::vector<ir::PortRange> protocols;
  std::vector<ir::PortRange> dst_ports;
  std::optional<std::string> example;  // Concrete example for other fields.
  std::string action1, action2;
  std::string text1, text2;
  // Source locations ("router.cfg:7-8") of the responsible text, when the
  // IR carries spans with line numbers (parsed configs do; generated IR
  // leaves these empty). Surfaced in the JSON report.
  std::string location1, location2;
};

PresentedDifference PresentRouteMapDifference(
    encode::RouteAdvLayout& layout, const RouteMapDifference& diff,
    const ir::RouterConfig& config1, const ir::RouterConfig& config2,
    const std::string& policy1, const std::string& policy2);

PresentedDifference PresentAclDifference(encode::PacketLayout& layout,
                                         const AclDifference& diff,
                                         const ir::Acl& acl1,
                                         const ir::Acl& acl2,
                                         const ir::RouterConfig& config1,
                                         const ir::RouterConfig& config2);

PresentedDifference PresentStructuralDifference(
    const StructuralDifference& diff, const ir::RouterConfig& config1,
    const ir::RouterConfig& config2);

// The destination (or source) prefixes mentioned by an ACL, as /32-window
// prefix ranges for HeaderLocalize. Non-prefix wildcards are skipped.
std::vector<util::PrefixRange> AclDstRanges(const ir::Acl& acl);
std::vector<util::PrefixRange> AclSrcRanges(const ir::Acl& acl);

}  // namespace campion::core
