#pragma once

// MatchPolicies (§3, §4): pairs up the corresponding components of two
// router configurations before differencing. BGP policies are matched by
// neighbor IP, ACLs by name, redistribution policies by source protocol,
// and interfaces by name or shared subnet (backup routers' interfaces
// usually have different addresses on the same subnet). Components present
// on one side only are reported so ConfigDiff can surface them.

#include <string>
#include <utility>
#include <vector>

#include "ir/config.h"
#include "util/ip.h"

namespace campion::core {

enum class PolicyDirection { kImport, kExport };

std::string ToString(PolicyDirection direction);

struct RouteMapPairing {
  util::Ipv4Address neighbor;  // The BGP neighbor both policies apply to.
  PolicyDirection direction = PolicyDirection::kImport;
  // Route map names; empty means "no policy configured" on that side (the
  // differ models it as an accept-everything map).
  std::string name1;
  std::string name2;
};

struct AclPairing {
  std::string name;  // ACLs are matched by identical name.
};

struct RedistributionPairing {
  ir::Protocol via = ir::Protocol::kOspf;   // The receiving protocol.
  ir::Protocol from = ir::Protocol::kStatic;  // The redistributed protocol.
  std::string name1;
  std::string name2;
};

struct PolicyPairing {
  std::vector<RouteMapPairing> route_maps;
  std::vector<AclPairing> acls;
  std::vector<RedistributionPairing> redistributions;
  std::vector<std::pair<std::string, std::string>> interfaces;
  // Human-readable notes for components that could not be paired (BGP
  // neighbors, ACLs, or interfaces present on one side only).
  std::vector<std::string> unmatched;
};

PolicyPairing MatchPolicies(const ir::RouterConfig& config1,
                            const ir::RouterConfig& config2);

}  // namespace campion::core
