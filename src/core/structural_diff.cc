#include "core/structural_diff.h"

#include <algorithm>
#include <map>
#include <set>

namespace campion::core {
namespace {

constexpr const char* kAbsent = "(absent)";

std::string OptIpToString(const std::optional<util::Ipv4Address>& ip,
                          const std::string& iface) {
  if (ip) return ip->ToString();
  if (!iface.empty()) return "interface " + iface;
  return "none";
}

std::string OptToString(const std::optional<std::uint32_t>& v) {
  return v ? std::to_string(*v) : "none";
}

std::string BoolToString(bool b) { return b ? "yes" : "no"; }

}  // namespace

std::vector<StructuralDifference> DiffStaticRoutes(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2) {
  std::vector<StructuralDifference> diffs;

  // Group each side's routes by destination prefix.
  auto group = [](const ir::RouterConfig& config) {
    std::map<util::Prefix, std::vector<const ir::StaticRoute*>> routes;
    for (const auto& r : config.static_routes) routes[r.prefix].push_back(&r);
    return routes;
  };
  auto routes1 = group(config1);
  auto routes2 = group(config2);

  std::set<util::Prefix> prefixes;
  for (const auto& [p, r] : routes1) prefixes.insert(p);
  for (const auto& [p, r] : routes2) prefixes.insert(p);

  for (const auto& prefix : prefixes) {
    auto it1 = routes1.find(prefix);
    auto it2 = routes2.find(prefix);
    std::string component = "Static Route " + prefix.ToString();
    if (it1 == routes1.end() || it2 == routes2.end()) {
      const ir::StaticRoute* present =
          it1 != routes1.end() ? it1->second.front() : it2->second.front();
      StructuralDifference d;
      d.component = component;
      d.field = "presence";
      d.value1 = it1 != routes1.end() ? "configured" : kAbsent;
      d.value2 = it2 != routes2.end() ? "configured" : kAbsent;
      (it1 != routes1.end() ? d.span1 : d.span2) = present->span;
      diffs.push_back(std::move(d));
      continue;
    }
    // Both sides configure the prefix: compare the route attribute tuples,
    // keyed by next hop so multipath static routes line up.
    auto tuple_key = [](const ir::StaticRoute* r) {
      return OptIpToString(r->next_hop, r->next_hop_interface);
    };
    std::map<std::string, const ir::StaticRoute*> side1, side2;
    for (const auto* r : it1->second) side1[tuple_key(r)] = r;
    for (const auto* r : it2->second) side2[tuple_key(r)] = r;

    bool next_hops_match = true;
    for (const auto& [key, r] : side1) {
      if (!side2.contains(key)) next_hops_match = false;
    }
    for (const auto& [key, r] : side2) {
      if (!side1.contains(key)) next_hops_match = false;
    }
    if (!next_hops_match) {
      StructuralDifference d;
      d.component = component;
      d.field = "next hop";
      for (const auto& [key, r] : side1) {
        if (!d.value1.empty()) d.value1 += "\n";
        d.value1 += key;
        d.span1 = r->span;
      }
      for (const auto& [key, r] : side2) {
        if (!d.value2.empty()) d.value2 += "\n";
        d.value2 += key;
        d.span2 = r->span;
      }
      diffs.push_back(std::move(d));
      continue;
    }
    for (const auto& [key, r1] : side1) {
      const ir::StaticRoute* r2 = side2.at(key);
      if (r1->admin_distance != r2->admin_distance) {
        diffs.push_back({component + " via " + key, "admin distance",
                         std::to_string(r1->admin_distance),
                         std::to_string(r2->admin_distance), r1->span,
                         r2->span});
      }
      if (r1->tag != r2->tag) {
        diffs.push_back({component + " via " + key, "tag",
                         OptToString(r1->tag), OptToString(r2->tag), r1->span,
                         r2->span});
      }
    }
  }
  return diffs;
}

std::vector<StructuralDifference> DiffConnectedRoutes(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2) {
  auto subnets = [](const ir::RouterConfig& config) {
    std::map<util::Prefix, const ir::Interface*> out;
    for (const auto& iface : config.interfaces) {
      if (auto subnet = iface.ConnectedSubnet(); subnet && !iface.shutdown) {
        out.emplace(*subnet, &iface);
      }
    }
    return out;
  };
  auto s1 = subnets(config1);
  auto s2 = subnets(config2);

  std::vector<StructuralDifference> diffs;
  for (const auto& [subnet, iface] : s1) {
    if (!s2.contains(subnet)) {
      diffs.push_back({"Connected Route " + subnet.ToString(), "presence",
                       "interface " + iface->name, kAbsent, iface->span,
                       {}});
    }
  }
  for (const auto& [subnet, iface] : s2) {
    if (!s1.contains(subnet)) {
      diffs.push_back({"Connected Route " + subnet.ToString(), "presence",
                       kAbsent, "interface " + iface->name, {},
                       iface->span});
    }
  }
  return diffs;
}

std::vector<StructuralDifference> DiffOspf(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2,
    const std::vector<std::pair<std::string, std::string>>& interface_pairs) {
  std::vector<StructuralDifference> diffs;

  for (const auto& [name1, name2] : interface_pairs) {
    const ir::Interface* i1 = config1.FindInterface(name1);
    const ir::Interface* i2 = config2.FindInterface(name2);
    if (i1 == nullptr || i2 == nullptr) continue;
    std::string component = "OSPF Interface " + name1 + " / " + name2;
    if (i1->ospf_enabled != i2->ospf_enabled) {
      diffs.push_back({component, "ospf enabled",
                       BoolToString(i1->ospf_enabled),
                       BoolToString(i2->ospf_enabled), i1->span, i2->span});
      continue;
    }
    if (!i1->ospf_enabled) continue;
    if (i1->ospf_cost != i2->ospf_cost) {
      diffs.push_back({component, "cost", OptToString(i1->ospf_cost),
                       OptToString(i2->ospf_cost), i1->span, i2->span});
    }
    if (i1->ospf_area != i2->ospf_area) {
      diffs.push_back({component, "area", OptToString(i1->ospf_area),
                       OptToString(i2->ospf_area), i1->span, i2->span});
    }
    if (i1->ospf_passive != i2->ospf_passive) {
      diffs.push_back({component, "passive", BoolToString(i1->ospf_passive),
                       BoolToString(i2->ospf_passive), i1->span, i2->span});
    }
  }

  const bool has1 = config1.ospf.has_value();
  const bool has2 = config2.ospf.has_value();
  if (has1 != has2) {
    diffs.push_back({"OSPF Process", "presence",
                     has1 ? "configured" : kAbsent,
                     has2 ? "configured" : kAbsent,
                     has1 ? config1.ospf->span : util::SourceSpan{},
                     has2 ? config2.ospf->span : util::SourceSpan{}});
    return diffs;
  }
  if (!has1) return diffs;

  const ir::OspfProcess& p1 = *config1.ospf;
  const ir::OspfProcess& p2 = *config2.ospf;
  if (p1.reference_bandwidth_mbps != p2.reference_bandwidth_mbps) {
    diffs.push_back({"OSPF Process", "reference bandwidth (Mbps)",
                     std::to_string(p1.reference_bandwidth_mbps),
                     std::to_string(p2.reference_bandwidth_mbps), p1.span,
                     p2.span});
  }
  // Redistribution *presence* per source protocol is structural; the route
  // maps applied to redistribution are checked by SemanticDiff.
  auto redist_protocols = [](const ir::OspfProcess& p) {
    std::map<ir::Protocol, const ir::Redistribution*> out;
    for (const auto& r : p.redistributions) out.emplace(r.from, &r);
    return out;
  };
  auto r1 = redist_protocols(p1);
  auto r2 = redist_protocols(p2);
  for (const auto& [proto, redist] : r1) {
    if (!r2.contains(proto)) {
      diffs.push_back({"OSPF Redistribution of " + ir::ToString(proto),
                       "presence", "configured", kAbsent, redist->span, {}});
    }
  }
  for (const auto& [proto, redist] : r2) {
    if (!r1.contains(proto)) {
      diffs.push_back({"OSPF Redistribution of " + ir::ToString(proto),
                       "presence", kAbsent, "configured", {}, redist->span});
    }
  }
  return diffs;
}

std::vector<StructuralDifference> DiffBgpProperties(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2) {
  std::vector<StructuralDifference> diffs;
  const bool has1 = config1.bgp.has_value();
  const bool has2 = config2.bgp.has_value();
  if (has1 != has2) {
    diffs.push_back({"BGP Process", "presence",
                     has1 ? "configured" : kAbsent,
                     has2 ? "configured" : kAbsent,
                     has1 ? config1.bgp->span : util::SourceSpan{},
                     has2 ? config2.bgp->span : util::SourceSpan{}});
    return diffs;
  }
  if (!has1) return diffs;

  const ir::BgpProcess& b1 = *config1.bgp;
  const ir::BgpProcess& b2 = *config2.bgp;
  if (b1.asn != b2.asn) {
    diffs.push_back({"BGP Process", "local AS", std::to_string(b1.asn),
                     std::to_string(b2.asn), b1.span, b2.span});
  }

  std::map<util::Ipv4Address, const ir::BgpNeighbor*> n1, n2;
  for (const auto& n : b1.neighbors) n1.emplace(n.ip, &n);
  for (const auto& n : b2.neighbors) n2.emplace(n.ip, &n);

  for (const auto& [ip, neighbor] : n1) {
    if (!n2.contains(ip)) {
      diffs.push_back({"BGP Neighbor " + ip.ToString(), "presence",
                       "configured", kAbsent, neighbor->span, {}});
    }
  }
  for (const auto& [ip, neighbor] : n2) {
    if (!n1.contains(ip)) {
      diffs.push_back({"BGP Neighbor " + ip.ToString(), "presence", kAbsent,
                       "configured", {}, neighbor->span});
    }
  }
  for (const auto& [ip, x1] : n1) {
    auto it = n2.find(ip);
    if (it == n2.end()) continue;
    const ir::BgpNeighbor* x2 = it->second;
    std::string component = "BGP Neighbor " + ip.ToString();
    if (x1->remote_as != x2->remote_as) {
      diffs.push_back({component, "remote AS", std::to_string(x1->remote_as),
                       std::to_string(x2->remote_as), x1->span, x2->span});
    }
    if (x1->route_reflector_client != x2->route_reflector_client) {
      diffs.push_back({component, "route-reflector-client",
                       BoolToString(x1->route_reflector_client),
                       BoolToString(x2->route_reflector_client), x1->span,
                       x2->span});
    }
    if (x1->send_community != x2->send_community) {
      diffs.push_back({component, "send-community",
                       BoolToString(x1->send_community),
                       BoolToString(x2->send_community), x1->span, x2->span});
    }
    if (x1->next_hop_self != x2->next_hop_self) {
      diffs.push_back({component, "next-hop-self",
                       BoolToString(x1->next_hop_self),
                       BoolToString(x2->next_hop_self), x1->span, x2->span});
    }
  }

  std::set<util::Prefix> nets1(b1.networks.begin(), b1.networks.end());
  std::set<util::Prefix> nets2(b2.networks.begin(), b2.networks.end());
  for (const auto& net : nets1) {
    if (!nets2.contains(net)) {
      diffs.push_back({"BGP Network " + net.ToString(), "presence",
                       "configured", kAbsent, b1.span, {}});
    }
  }
  for (const auto& net : nets2) {
    if (!nets1.contains(net)) {
      diffs.push_back({"BGP Network " + net.ToString(), "presence", kAbsent,
                       "configured", {}, b2.span});
    }
  }
  return diffs;
}

std::vector<StructuralDifference> DiffAdminDistances(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2) {
  std::vector<StructuralDifference> diffs;
  const ir::AdminDistances& a1 = config1.admin_distances;
  const ir::AdminDistances& a2 = config2.admin_distances;
  auto compare = [&](const char* field, int v1, int v2) {
    if (v1 != v2) {
      diffs.push_back({"Administrative Distances", field, std::to_string(v1),
                       std::to_string(v2), {}, {}});
    }
  };
  compare("connected", a1.connected, a2.connected);
  compare("static", a1.static_route, a2.static_route);
  compare("ebgp", a1.ebgp, a2.ebgp);
  compare("ospf", a1.ospf, a2.ospf);
  compare("ibgp", a1.ibgp, a2.ibgp);
  return diffs;
}

}  // namespace campion::core
