#pragma once

// ConfigDiff (§3): the top-level driver. Pairs the two configurations'
// components with MatchPolicies, runs SemanticDiff on every route-map and
// ACL pair and StructuralDiff on everything else, and renders each
// difference with Present. This is the function behind Campion's
// command-line output.

#include <string>
#include <vector>

#include "core/match_policies.h"
#include "core/present.h"
#include "ir/config.h"

namespace campion::encode {
class EncodingTemplate;
}  // namespace campion::encode

namespace campion::obs {
class MetricsSink;
}  // namespace campion::obs

namespace campion::core {

struct DifferenceEntry {
  enum class Kind {
    kRouteMapSemantic,
    kAclSemantic,
    kStructural,
    kUnmatched,  // A component exists on one side only.
    kWarning,    // E.g. an undefined list referenced by a route map.
  };
  Kind kind = Kind::kRouteMapSemantic;
  std::string title;
  std::string rendered;  // Full table or message text.
  PresentedDifference detail;  // Structured fields (semantic/structural).
};

struct DiffOptions {
  bool check_route_maps = true;
  bool check_acls = true;
  bool check_static_routes = true;
  bool check_connected_routes = true;
  bool check_ospf = true;
  bool check_bgp_properties = true;
  bool check_admin_distances = true;
  // Worker threads for the per-pair semantic diffs: 0 = hardware
  // concurrency, 1 = fully serial. Each policy pair runs against its own
  // BddManager, and results are merged back in pair-declaration order, so
  // the report is byte-identical for every thread count.
  unsigned num_threads = 0;
  // Build a shared read-only encoding template before the pair fan-out:
  // each structurally distinct prefix list, community list, and ACL match
  // clause is encoded once, and every pair task seeds its manager from the
  // frozen template arena (src/encode/encoding_template.h). Purely a
  // performance lever — the report is byte-identical either way at every
  // thread count (CLI `--encoding_template=on|off` A/Bs it).
  bool use_encoding_template = true;
  // Dynamic variable reordering (Rudell sifting). kSift sifts individual
  // variables; kGroupSift moves each declared field block (32-bit address,
  // 16-bit port, ...) as one unit. When enabled and the encoding template
  // is in use, the template sifts ONCE on the main thread after it is
  // built — before it is frozen and shared — so every pair manager seeded
  // from it inherits the improved order; pair managers additionally
  // auto-sift when their live-node count grows past
  // `reorder_trigger_ratio` x the count at the last sift. Like the
  // template, reordering is purely a performance lever: the report is
  // byte-identical to kOff at every thread count (CLI `--reorder=...`
  // A/Bs it).
  enum class ReorderMode { kOff, kSift, kGroupSift };
  ReorderMode reorder = ReorderMode::kOff;
  // Auto-sift growth trigger for pair managers (clamped to >= 1.1 by the
  // kernel); only consulted when `reorder` is not kOff.
  double reorder_trigger_ratio = 2.0;
  // A pre-built frozen template to seed pair managers from, instead of
  // building one inside ConfigDiff. The daemon's cross-request cache hands
  // in the same template for every request that hits it, which is how the
  // one-time sift and compaction amortize. Must outlive the call, must
  // have been built for these two configurations (same structural keys and
  // community universe — the cache key guarantees it), and must have both
  // sides the enabled checks need. Ignored when null or when
  // `use_encoding_template` is false. Because any sound template yields
  // the same canonical BDDs, the report stays byte-identical to an
  // internally built template and to no template at all.
  const encode::EncodingTemplate* external_template = nullptr;
  // Scoped metrics capture: when set, ConfigDiff installs this sink on the
  // calling thread AND on every worker-pool task it fans out, so the whole
  // run's metrics land here instead of in the ambient sink
  // (obs::CurrentMetrics()). The daemon hands each request its own sink,
  // which is what lets requests run concurrently without interleaving
  // their counters; when null, ConfigDiff still propagates the calling
  // thread's current sink into its tasks, so a MetricsScope installed by
  // the caller captures the pooled work too. Purely observability — the
  // report is byte-identical either way.
  obs::MetricsSink* metrics_sink = nullptr;
};

struct DiffReport {
  std::vector<DifferenceEntry> entries;

  int CountOf(DifferenceEntry::Kind kind) const;
  bool Equivalent() const;  // No differences of any kind (warnings aside).
  std::string Render() const;
};

DiffReport ConfigDiff(const ir::RouterConfig& config1,
                      const ir::RouterConfig& config2,
                      const DiffOptions& options = {});

// Diffs a single route-map pair (used directly by benchmarks and tests; an
// empty name stands for "no policy" = accept everything unmodified).
std::vector<PresentedDifference> DiffRouteMapPair(
    const ir::RouterConfig& config1, const std::string& name1,
    const ir::RouterConfig& config2, const std::string& name2);

// Diffs a single ACL pair by name.
std::vector<PresentedDifference> DiffAclPair(const ir::RouterConfig& config1,
                                             const ir::RouterConfig& config2,
                                             const std::string& name);

}  // namespace campion::core
