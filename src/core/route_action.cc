#include "core/route_action.h"

namespace campion::core {

RouteAction RouteAction::FromPath(bool accept,
                                  std::span<const ir::RouteMapSet> sets) {
  RouteAction action;
  action.accept = accept;
  if (!accept) return action;  // A rejected route's attributes are moot.
  for (const auto& set : sets) {
    switch (set.kind) {
      case ir::RouteMapSet::Kind::kLocalPreference:
        action.local_pref = set.value;
        break;
      case ir::RouteMapSet::Kind::kMetric:
        action.metric = set.value;
        break;
      case ir::RouteMapSet::Kind::kTag:
        action.tag = set.value;
        break;
      case ir::RouteMapSet::Kind::kNextHop:
        action.next_hop = set.next_hop;
        action.next_hop_self = false;
        break;
      case ir::RouteMapSet::Kind::kNextHopSelf:
        action.next_hop_self = true;
        action.next_hop.reset();
        break;
      case ir::RouteMapSet::Kind::kCommunitySet:
        action.communities_replaced = true;
        action.communities_added.clear();
        action.communities_removed.clear();
        action.communities_added.insert(set.communities.begin(),
                                        set.communities.end());
        break;
      case ir::RouteMapSet::Kind::kCommunityAdd:
        for (const auto& c : set.communities) {
          action.communities_added.insert(c);
          action.communities_removed.erase(c);
        }
        break;
      case ir::RouteMapSet::Kind::kCommunityDelete:
        for (const auto& c : set.communities) {
          action.communities_removed.insert(c);
          action.communities_added.erase(c);
        }
        break;
    }
  }
  return action;
}

std::string RouteAction::ToString() const {
  if (!accept) return "REJECT";
  std::string out;
  if (local_pref) {
    out += "SET LOCAL PREF " + std::to_string(*local_pref) + "\n";
  }
  if (metric) out += "SET METRIC " + std::to_string(*metric) + "\n";
  if (tag) out += "SET TAG " + std::to_string(*tag) + "\n";
  if (next_hop) out += "SET NEXT HOP " + next_hop->ToString() + "\n";
  if (next_hop_self) out += "SET NEXT HOP SELF\n";
  if (communities_replaced) {
    out += "SET COMMUNITIES";
    for (const auto& c : communities_added) out += " " + c.ToString();
    out += "\n";
  } else {
    if (!communities_added.empty()) {
      out += "ADD COMMUNITIES";
      for (const auto& c : communities_added) out += " " + c.ToString();
      out += "\n";
    }
    if (!communities_removed.empty()) {
      out += "REMOVE COMMUNITIES";
      for (const auto& c : communities_removed) out += " " + c.ToString();
      out += "\n";
    }
  }
  out += "ACCEPT";
  return out;
}

}  // namespace campion::core
