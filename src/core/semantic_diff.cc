#include "core/semantic_diff.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace campion::core {
namespace {

// The configuration text responsible for a clause: its recorded source
// span when the IR came from a parser, or a canonical one-liner otherwise.
std::string ClauseText(const ir::RouteMapClause& clause) {
  if (!clause.span.text.empty()) return clause.span.text;
  std::string out = clause.term_name.empty()
                        ? "clause " + std::to_string(clause.sequence)
                        : "term " + clause.term_name;
  out += " (" + ir::ToString(clause.action) + ")";
  return out;
}

std::string LineText(const ir::AclLine& line) {
  if (!line.span.text.empty()) return line.span.text;
  std::string out = ir::ToString(line.action);
  out += line.protocol ? " " + ir::ProtocolNumberToString(*line.protocol)
                       : " ip";
  out += " " + line.src.ToString() + " " + line.dst.ToString();
  return out;
}

}  // namespace

std::vector<RouteMapPathClass> BuildRouteMapClasses(
    encode::RouteAdvLayout& layout, encode::PolicyEncoder& encoder,
    const ir::RouteMap& map) {
  bdd::BddManager& mgr = layout.manager();
  obs::ScopedSpan span("encode", map.name);

  // A pending state: advertisements that have reached the current clause
  // with `sets` already applied by earlier fall-through terms.
  struct Pending {
    bdd::BddRef predicate;
    std::vector<ir::RouteMapSet> sets;
    std::string text;  // Text of the fall-through terms already traversed.
  };

  std::vector<RouteMapPathClass> classes;
  std::vector<Pending> pending;
  pending.push_back({layout.Valid(), {}, ""});

  auto path_text = [](const Pending& state, const std::string& terminal) {
    return state.text.empty() ? terminal : state.text + "\n" + terminal;
  };

  for (const auto& clause : map.clauses) {
    bdd::BddRef guard = encoder.ClauseGuard(clause);
    std::vector<Pending> next;
    next.reserve(pending.size());
    for (auto& state : pending) {
      bdd::BddRef taken = mgr.And(state.predicate, guard);
      bdd::BddRef missed = mgr.Diff(state.predicate, guard);
      if (taken != bdd::kFalse) {
        std::vector<ir::RouteMapSet> sets = state.sets;
        sets.insert(sets.end(), clause.sets.begin(), clause.sets.end());
        if (clause.action == ir::ClauseAction::kFallThrough) {
          next.push_back({taken, std::move(sets),
                          path_text(state, ClauseText(clause))});
        } else {
          RouteMapPathClass cls;
          cls.predicate = taken;
          cls.action = RouteAction::FromPath(
              clause.action == ir::ClauseAction::kPermit, sets);
          cls.text = path_text(state, ClauseText(clause));
          classes.push_back(std::move(cls));
        }
      }
      if (missed != bdd::kFalse) {
        next.push_back({missed, std::move(state.sets), std::move(state.text)});
      }
    }
    pending = std::move(next);
  }

  // Whatever is left falls off the end: the vendor-specific default action.
  for (auto& state : pending) {
    RouteMapPathClass cls;
    cls.predicate = state.predicate;
    cls.action = RouteAction::FromPath(
        map.default_action == ir::ClauseAction::kPermit, state.sets);
    std::string terminal =
        "<fall-through: default " +
        std::string(map.default_action == ir::ClauseAction::kPermit
                        ? "accept"
                        : "reject") +
        ">";
    cls.text = path_text(state, terminal);
    cls.is_default = true;
    classes.push_back(std::move(cls));
  }
  span.AddAttr("classes", static_cast<double>(classes.size()));
  span.AddAttr("clauses", static_cast<double>(map.clauses.size()));
  span.AddAttr("bdd_vars", static_cast<double>(mgr.num_vars()));
  obs::Count("encode.route_map_classes", static_cast<double>(classes.size()));
  return classes;
}

std::vector<RouteMapDifference> SemanticDiffRouteMaps(
    encode::RouteAdvLayout& layout, const ir::RouterConfig& config1,
    const ir::RouteMap& map1, const ir::RouterConfig& config2,
    const ir::RouteMap& map2, const encode::EncodingTemplate* tmpl) {
  bdd::BddManager& mgr = layout.manager();
  encode::PolicyEncoder encoder1(layout, config1, tmpl);
  encode::PolicyEncoder encoder2(layout, config2, tmpl);
  std::vector<RouteMapPathClass> classes1 =
      BuildRouteMapClasses(layout, encoder1, map1);
  std::vector<RouteMapPathClass> classes2 =
      BuildRouteMapClasses(layout, encoder2, map2);

  std::vector<RouteMapDifference> differences;
  {
    obs::ScopedSpan span("class_intersect",
                         map1.name + " vs " + map2.name);
    for (const auto& c1 : classes1) {
      for (const auto& c2 : classes2) {
        if (c1.action == c2.action) continue;
        bdd::BddRef overlap = mgr.And(c1.predicate, c2.predicate);
        if (overlap == bdd::kFalse) continue;
        differences.push_back(
            {overlap, c1.action, c2.action, c1.text, c2.text});
      }
    }
    span.AddAttr("class_pairs",
                 static_cast<double>(classes1.size() * classes2.size()));
    span.AddAttr("differences", static_cast<double>(differences.size()));
  }
  obs::Count("diff.route_map_differences",
             static_cast<double>(differences.size()));
  return differences;
}

std::vector<AclPathClass> BuildAclClasses(encode::PacketLayout& layout,
                                          const ir::Acl& acl,
                                          const encode::EncodingTemplate* tmpl) {
  bdd::BddManager& mgr = layout.manager();
  obs::ScopedSpan span("encode", acl.name);
  auto line_match = [&](const ir::AclLine& line) {
    if (tmpl != nullptr) {
      if (auto ref = tmpl->AclLineMatch(line)) {
        obs::Count("encode.template_hits");
        return *ref;
      }
      obs::Count("encode.template_misses");
    }
    return layout.MatchLine(line);
  };
  std::vector<AclPathClass> classes;
  bdd::BddRef remaining = mgr.True();
  for (const auto& line : acl.lines) {
    bdd::BddRef here = mgr.And(remaining, line_match(line));
    if (here != bdd::kFalse) {
      classes.push_back({here, line.action, LineText(line), false});
    }
    remaining = mgr.Diff(remaining, here);
  }
  if (remaining != bdd::kFalse) {
    classes.push_back({remaining, ir::LineAction::kDeny,
                       "<implicit deny at end of ACL>", true});
  }
  span.AddAttr("classes", static_cast<double>(classes.size()));
  span.AddAttr("lines", static_cast<double>(acl.lines.size()));
  span.AddAttr("bdd_vars", static_cast<double>(mgr.num_vars()));
  obs::Count("encode.acl_classes", static_cast<double>(classes.size()));
  return classes;
}

std::vector<AclDifference> SemanticDiffAcls(encode::PacketLayout& layout,
                                            const ir::Acl& acl1,
                                            const ir::Acl& acl2,
                                            const AclDiffOptions& options,
                                            const encode::EncodingTemplate* tmpl) {
  bdd::BddManager& mgr = layout.manager();
  std::vector<AclPathClass> classes1 = BuildAclClasses(layout, acl1, tmpl);
  std::vector<AclPathClass> classes2 = BuildAclClasses(layout, acl2, tmpl);

  // Pruning: any differing class pair lies inside the symmetric difference
  // of the two permit sets, so only classes overlapping it can contribute.
  // This turns the pairwise comparison from quadratic in the ACL size into
  // quadratic in the number of classes actually touched by a difference.
  auto permit_set = [&](const std::vector<AclPathClass>& classes) {
    bdd::BddRef permitted = mgr.False();
    for (const auto& cls : classes) {
      if (cls.action == ir::LineAction::kPermit) {
        permitted = mgr.Or(permitted, cls.predicate);
      }
    }
    return permitted;
  };
  bdd::BddRef disagreement =
      mgr.Xor(permit_set(classes1), permit_set(classes2));
  if (disagreement == bdd::kFalse) return {};
  if (!options.prune_with_disagreement_set) {
    disagreement = mgr.True();  // Ablation: consider every class pair.
  }

  auto touched = [&](const std::vector<AclPathClass>& classes) {
    std::vector<const AclPathClass*> relevant;
    for (const auto& cls : classes) {
      if (mgr.Intersects(cls.predicate, disagreement)) {
        relevant.push_back(&cls);
      }
    }
    return relevant;
  };
  std::vector<const AclPathClass*> relevant1 = touched(classes1);
  std::vector<const AclPathClass*> relevant2 = touched(classes2);

  std::vector<AclDifference> differences;
  {
    obs::ScopedSpan span("class_intersect", acl1.name + " vs " + acl2.name);
    for (const AclPathClass* c1 : relevant1) {
      for (const AclPathClass* c2 : relevant2) {
        if (c1->action == c2->action) continue;
        bdd::BddRef overlap = mgr.And(c1->predicate, c2->predicate);
        if (overlap == bdd::kFalse) continue;
        differences.push_back(
            {overlap, c1->action, c2->action, c1->text, c2->text});
      }
    }
    span.AddAttr("class_pairs", static_cast<double>(relevant1.size() *
                                                    relevant2.size()));
    span.AddAttr("differences", static_cast<double>(differences.size()));
  }
  obs::Count("diff.acl_differences", static_cast<double>(differences.size()));
  return differences;
}

}  // namespace campion::core
