#pragma once

// The normalized effect of a route map on an accepted route. SemanticDiff
// compares path equivalence classes by their *behavior*, so the sequence of
// set statements accumulated along a path (including fall-through terms) is
// normalized here: later sets of the same attribute win, community
// replace/add/delete compose, and rejected routes compare equal regardless
// of any sets on the path.

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <string>

#include "ir/policy.h"
#include "util/community.h"
#include "util/ip.h"

namespace campion::core {

struct RouteAction {
  bool accept = false;
  std::optional<std::uint32_t> local_pref;
  std::optional<std::uint32_t> metric;
  std::optional<std::uint32_t> tag;
  std::optional<util::Ipv4Address> next_hop;
  bool next_hop_self = false;
  // When true, the route's communities are replaced by communities_added.
  bool communities_replaced = false;
  std::set<util::Community> communities_added;
  std::set<util::Community> communities_removed;

  friend bool operator==(const RouteAction&, const RouteAction&) = default;

  // "REJECT" or "ACCEPT" plus the attribute updates, one per line, as in
  // the Action rows of the paper's Table 2.
  std::string ToString() const;

  // Folds a path's accumulated set statements into a normalized action.
  // `accept` is whether the path's terminal action permits the route.
  static RouteAction FromPath(bool accept,
                              std::span<const ir::RouteMapSet> sets);
};

}  // namespace campion::core
