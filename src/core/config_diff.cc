#include "core/config_diff.h"

#include <cstddef>
#include <functional>
#include <iterator>
#include <optional>
#include <set>
#include <utility>

#include "bdd/bdd.h"
#include "core/semantic_diff.h"
#include "core/structural_diff.h"
#include "encode/encoding_template.h"
#include "encode/packet.h"
#include "encode/route_adv.h"
#include "obs/bdd_metrics.h"
#include "obs/mem_metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace campion::core {
namespace {

// The accept-everything route map that models "no policy configured".
ir::RouteMap PassThroughMap() {
  ir::RouteMap map;
  map.name = "(no policy)";
  map.default_action = ir::ClauseAction::kPermit;
  return map;
}

// Resolves a route map by name, falling back to pass-through for the empty
// name and recording a warning for a dangling reference.
// Records a pair manager's kernel + memory accounting on the pair's span
// and into the metrics registry. One call per manager, at task end — the
// MemoryStats() walk is cheap but not free, so it stays off when tracing
// is disabled.
void RecordPairBddObservability(obs::ScopedSpan& span,
                                const bdd::BddManager& mgr) {
  if (!obs::Enabled()) return;
  span.AddAttr("bdd_nodes", static_cast<double>(mgr.ArenaSize()));
  obs::RecordBddStats(mgr.Stats());
  bdd::BddMemoryStats mem = mgr.MemoryStats();
  span.AddAttr("bdd_mem_bytes", static_cast<double>(mem.total_bytes));
  span.AddAttr("bdd_rehashes", static_cast<double>(mem.rehash_count));
  obs::RecordBddMemory(mem);
}

const ir::RouteMap* ResolveMap(const ir::RouterConfig& config,
                               const std::string& name,
                               const ir::RouteMap& fallback,
                               std::vector<std::string>* warnings) {
  if (name.empty()) return &fallback;
  const ir::RouteMap* map = config.FindRouteMap(name);
  if (map == nullptr) {
    if (warnings != nullptr) {
      warnings->push_back("route map " + name + " referenced but not defined in " +
                          config.hostname + "; treating as accept-all");
    }
    return &fallback;
  }
  return map;
}

// The address family a route-map pair's advertisement space uses: IPv6 iff
// either map matches on an IPv6 prefix list. (Both vendors keep v4 and v6
// policy in separate namespaces/terms; a map whose prefix matches are all
// v4 — or that matches no prefixes at all — diffs over the v4 space,
// byte-identical to the pre-dual-stack behavior.)
util::AddressFamily RouteMapPairFamily(const ir::RouterConfig& config,
                                       const ir::RouteMap& map) {
  for (const auto& clause : map.clauses) {
    for (const auto& match : clause.matches) {
      if (match.kind != ir::RouteMapMatch::Kind::kPrefixList) continue;
      for (const auto& name : match.names) {
        const ir::PrefixList* list = config.FindPrefixList(name);
        if (list != nullptr && list->family == util::AddressFamily::kIpv6) {
          return util::AddressFamily::kIpv6;
        }
      }
    }
  }
  return util::AddressFamily::kIpv4;
}

// Maps the driver-level reorder option onto a kernel sift mode; nullopt =
// reordering off.
std::optional<bdd::SiftMode> SiftModeFor(DiffOptions::ReorderMode mode) {
  switch (mode) {
    case DiffOptions::ReorderMode::kOff:
      return std::nullopt;
    case DiffOptions::ReorderMode::kSift:
      return bdd::SiftMode::kVars;
    case DiffOptions::ReorderMode::kGroupSift:
      return bdd::SiftMode::kGroups;
  }
  return std::nullopt;
}

// Arms a pair manager's growth-triggered auto-sift when reordering is on.
// Runs after SeedFrom / layout construction so the trigger baseline is the
// seeded (already-sifted) arena, not an empty one.
void ArmAutoSift(bdd::BddManager& mgr, const DiffOptions& options) {
  if (std::optional<bdd::SiftMode> mode = SiftModeFor(options.reorder)) {
    mgr.SetAutoSift(*mode, options.reorder_trigger_ratio);
  }
}

std::vector<PresentedDifference> DiffRouteMapPairImpl(
    const ir::RouterConfig& config1, const std::string& name1,
    const ir::RouterConfig& config2, const std::string& name2,
    std::vector<std::string>* warnings,
    const encode::EncodingTemplate* tmpl = nullptr,
    const DiffOptions& options = {}) {
  ir::RouteMap fallback = PassThroughMap();
  const ir::RouteMap* map1 = ResolveMap(config1, name1, fallback, warnings);
  const ir::RouteMap* map2 = ResolveMap(config2, name2, fallback, warnings);
  obs::ScopedSpan span("route_map_pair",
                       map1->name + " vs " + map2->name);

  // An IPv6 pair diffs over the 128-bit advertisement space. The shared
  // template's layouts are IPv4, so v6 pairs build from scratch — template
  // on and off are trivially identical for them.
  util::AddressFamily family = RouteMapPairFamily(config1, *map1);
  if (family == util::AddressFamily::kIpv4) {
    family = RouteMapPairFamily(config2, *map2);
  }
  if (family != util::AddressFamily::kIpv4) tmpl = nullptr;

  // One manager per pair keeps arenas small and lifetimes obvious. With a
  // template, the manager starts as a snapshot of the shared arena (same
  // variable order, common list BDDs pre-built) instead of empty; either
  // way, the pair owns its manager outright from here on.
  bdd::BddManager mgr;
  std::optional<encode::RouteAdvLayout> layout;
  if (tmpl != nullptr) {
    mgr.SeedFrom(tmpl->route_manager());
    layout.emplace(mgr, tmpl->route_layout());
  } else {
    std::vector<util::Community> communities = config1.AllCommunities();
    auto more = config2.AllCommunities();
    communities.insert(communities.end(), more.begin(), more.end());
    layout.emplace(mgr, std::move(communities), family);
  }
  ArmAutoSift(mgr, options);

  std::vector<RouteMapDifference> diffs =
      SemanticDiffRouteMaps(*layout, config1, *map1, config2, *map2, tmpl);
  std::vector<PresentedDifference> presented;
  presented.reserve(diffs.size());
  for (const auto& diff : diffs) {
    presented.push_back(PresentRouteMapDifference(
        *layout, diff, config1, config2, map1->name, map2->name));
  }
  span.AddAttr("differences", static_cast<double>(presented.size()));
  obs::Count("diff.route_map_pairs");
  RecordPairBddObservability(span, mgr);
  return presented;
}

std::vector<PresentedDifference> DiffAclPairImpl(
    const ir::RouterConfig& config1, const ir::RouterConfig& config2,
    const std::string& name, const encode::EncodingTemplate* tmpl = nullptr,
    const DiffOptions& options = {}) {
  const ir::Acl* acl1 = config1.FindAcl(name);
  const ir::Acl* acl2 = config2.FindAcl(name);
  if (acl1 == nullptr || acl2 == nullptr) return {};
  // Family mismatches are reported as unmatched components by
  // MatchPolicies; a pair reaching here shares one family.
  if (acl1->family != acl2->family) return {};
  obs::ScopedSpan span("acl_pair", name);

  // IPv6 ACLs diff over the 256-bit-address packet space; the shared
  // template's packet layout is IPv4, so v6 pairs build from scratch.
  if (acl1->family != util::AddressFamily::kIpv4) tmpl = nullptr;
  bdd::BddManager mgr;
  std::optional<encode::PacketLayout> layout;
  if (tmpl != nullptr) {
    mgr.SeedFrom(tmpl->packet_manager());
    layout.emplace(mgr, tmpl->packet_layout());
  } else {
    layout.emplace(mgr, acl1->family);
  }
  ArmAutoSift(mgr, options);
  std::vector<AclDifference> diffs =
      SemanticDiffAcls(*layout, *acl1, *acl2, {}, tmpl);
  std::vector<PresentedDifference> presented;
  presented.reserve(diffs.size());
  for (const auto& diff : diffs) {
    presented.push_back(
        PresentAclDifference(*layout, diff, *acl1, *acl2, config1, config2));
  }
  span.AddAttr("differences", static_cast<double>(presented.size()));
  obs::Count("diff.acl_pairs");
  RecordPairBddObservability(span, mgr);
  return presented;
}

}  // namespace

int DiffReport::CountOf(DifferenceEntry::Kind kind) const {
  int count = 0;
  for (const auto& entry : entries) {
    if (entry.kind == kind) ++count;
  }
  return count;
}

bool DiffReport::Equivalent() const {
  for (const auto& entry : entries) {
    if (entry.kind != DifferenceEntry::Kind::kWarning) return false;
  }
  return true;
}

std::string DiffReport::Render() const {
  if (entries.empty()) {
    return "No differences found: the configurations are behaviorally "
           "equivalent for all supported components.\n";
  }
  std::string out;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out += "=== [" + std::to_string(i + 1) + "] " + entries[i].title + " ===\n";
    out += entries[i].rendered;
    if (!out.empty() && out.back() != '\n') out += "\n";
    out += "\n";
  }
  out += "Summary: " +
         std::to_string(CountOf(DifferenceEntry::Kind::kRouteMapSemantic)) +
         " route-map, " +
         std::to_string(CountOf(DifferenceEntry::Kind::kAclSemantic)) +
         " ACL, " +
         std::to_string(CountOf(DifferenceEntry::Kind::kStructural)) +
         " structural difference(s); " +
         std::to_string(CountOf(DifferenceEntry::Kind::kUnmatched)) +
         " unmatched component(s), " +
         std::to_string(CountOf(DifferenceEntry::Kind::kWarning)) +
         " warning(s)\n";
  return out;
}

std::vector<PresentedDifference> DiffRouteMapPair(
    const ir::RouterConfig& config1, const std::string& name1,
    const ir::RouterConfig& config2, const std::string& name2) {
  return DiffRouteMapPairImpl(config1, name1, config2, name2, nullptr);
}

std::vector<PresentedDifference> DiffAclPair(const ir::RouterConfig& config1,
                                             const ir::RouterConfig& config2,
                                             const std::string& name) {
  return DiffAclPairImpl(config1, config2, name);
}

DiffReport ConfigDiff(const ir::RouterConfig& config1,
                      const ir::RouterConfig& config2,
                      const DiffOptions& options) {
  // Scoped metrics capture: resolve the run's sink once — the caller's
  // explicit per-request sink, or whatever is ambient on this thread —
  // and install it here and on every pooled task below, so the capture is
  // complete and request-private at any thread count.
  std::optional<obs::MetricsScope> metrics_scope;
  if (options.metrics_sink != nullptr) {
    metrics_scope.emplace(*options.metrics_sink);
  }
  obs::MetricsSink* metrics_sink = &obs::CurrentMetrics();
  obs::ScopedSpan pipeline_span("config_diff",
                                config1.hostname + " vs " + config2.hostname);
  DiffReport report;
  std::vector<std::string> warnings;
  PolicyPairing pairing;
  {
    obs::ScopedSpan span("match_policies");
    pairing = MatchPolicies(config1, config2);
    span.AddAttr("route_map_pairs",
                 static_cast<double>(pairing.route_maps.size()));
    span.AddAttr("acl_pairs", static_cast<double>(pairing.acls.size()));
    span.AddAttr("unmatched", static_cast<double>(pairing.unmatched.size()));
  }

  auto add_semantic = [&](DifferenceEntry::Kind kind,
                          std::vector<PresentedDifference> diffs) {
    for (auto& d : diffs) {
      DifferenceEntry entry;
      entry.kind = kind;
      entry.title = d.title;
      entry.rendered = d.table;
      entry.detail = std::move(d);
      report.entries.push_back(std::move(entry));
    }
  };
  auto add_structural = [&](std::vector<StructuralDifference> diffs) {
    for (const auto& d : diffs) {
      PresentedDifference presented =
          PresentStructuralDifference(d, config1, config2);
      DifferenceEntry entry;
      entry.kind = DifferenceEntry::Kind::kStructural;
      entry.title = presented.title;
      entry.rendered = presented.table;
      entry.detail = std::move(presented);
      report.entries.push_back(std::move(entry));
    }
  };

  // Shared read-only encoding template: encode each structurally distinct
  // prefix list, community list, and ACL match clause once, before the
  // fan-out, so pair tasks seed their managers from the frozen arena
  // instead of re-encoding the common library. Built on the main thread
  // (its span lands at a fixed position in the trace tree at any thread
  // count) and only read — never mutated — by the tasks.
  bool want_route_maps =
      options.check_route_maps &&
      (!pairing.route_maps.empty() || !pairing.redistributions.empty());
  bool want_acls = options.check_acls && !pairing.acls.empty();
  std::optional<encode::EncodingTemplate> template_storage;
  const encode::EncodingTemplate* tmpl = nullptr;
  // A caller-provided template (the daemon's cross-request cache) replaces
  // the per-call build AND the per-call sift below: the cache already
  // sifted and compacted it once for its generation, which is the whole
  // amortization. Build/sift spans and template-manager stats are then the
  // cache's to report, not this request's — this call did not do that
  // work, and per-request metrics must say so.
  const bool external_template =
      options.external_template != nullptr && options.use_encoding_template &&
      (want_route_maps || want_acls);
  if (external_template) {
    tmpl = options.external_template;
  } else if (options.use_encoding_template && (want_route_maps || want_acls)) {
    obs::ScopedSpan span("encode_template",
                         config1.hostname + " vs " + config2.hostname);
    template_storage.emplace(config1, config2, want_route_maps, want_acls,
                             /*sift_witnesses=*/SiftModeFor(options.reorder)
                                 .has_value());
    tmpl = &*template_storage;
    if (obs::Enabled()) {
      span.AddAttr("unique_prefix_lists",
                   static_cast<double>(tmpl->unique_prefix_lists()));
      span.AddAttr("unique_community_lists",
                   static_cast<double>(tmpl->unique_community_lists()));
      span.AddAttr("unique_acl_lines",
                   static_cast<double>(tmpl->unique_acl_lines()));
      double template_nodes = 0.0;
      if (tmpl->has_route_side()) {
        template_nodes +=
            static_cast<double>(tmpl->route_manager().ArenaSize());
      }
      if (tmpl->has_packet_side()) {
        template_nodes +=
            static_cast<double>(tmpl->packet_manager().ArenaSize());
      }
      span.AddAttr("bdd_nodes", template_nodes);
    }
  }
  // Reorder the shared template ONCE, on the main thread, before any pair
  // seeds from it: every seeded manager inherits the sifted order and the
  // template's lookup refs stay valid everywhere. (The alternative —
  // letting each pair sift privately and invalidating the template's refs
  // per manager — would re-pay the sift per pair and forfeit ref sharing.)
  if (tmpl != nullptr && !external_template) {
    if (std::optional<bdd::SiftMode> mode = SiftModeFor(options.reorder)) {
      obs::ScopedSpan span("bdd_sift",
                           config1.hostname + " vs " + config2.hostname);
      bdd::SiftResult sift = template_storage->Reorder(*mode);
      span.AddAttr("sift_passes", static_cast<double>(sift.passes));
      span.AddAttr("sift_swaps", static_cast<double>(sift.swaps));
      span.AddAttr("sift_nodes_before",
                   static_cast<double>(sift.nodes_before));
      span.AddAttr("sift_nodes_after",
                   static_cast<double>(sift.nodes_after));
    }
    // Record the template managers' kernel stats only now, after the
    // optional sift: bdd.arena_nodes then counts the arena pairs actually
    // seed from (post-reclamation), and the managers' sift tallies ride
    // along as bdd.sift_* — absent when no sift ran, keeping reorder-off
    // runs byte-identical.
    if (obs::Enabled()) {
      if (tmpl->has_route_side()) {
        obs::RecordBddStats(tmpl->route_manager().Stats());
        obs::RecordBddMemory(tmpl->route_manager().MemoryStats());
      }
      if (tmpl->has_packet_side()) {
        obs::RecordBddStats(tmpl->packet_manager().Stats());
        obs::RecordBddMemory(tmpl->packet_manager().MemoryStats());
      }
    }
  }

  // The semantic checks are the expensive part (each pair builds and
  // compares BDDs), and every pair is independent: each task constructs its
  // own BddManager and layout, so tasks share no mutable state. Fan the
  // distinct pairs out across the worker pool, then merge results back in
  // pair-declaration order so the report is byte-identical to a serial run.
  struct SemanticTask {
    DifferenceEntry::Kind kind;
    std::function<std::vector<PresentedDifference>(std::vector<std::string>*)>
        run;
  };
  std::vector<SemanticTask> tasks;
  if (options.check_route_maps) {
    // Several neighbors often share one policy pair (e.g. both uplinks use
    // the same import map); each distinct (name1, name2) pair is diffed
    // once.
    std::set<std::pair<std::string, std::string>> seen_pairs;
    for (const auto& pair : pairing.route_maps) {
      if (!seen_pairs.insert({pair.name1, pair.name2}).second) continue;
      tasks.push_back(
          {DifferenceEntry::Kind::kRouteMapSemantic,
           [&config1, &config2, &options, pair,
            tmpl](std::vector<std::string>* task_warnings) {
             auto diffs =
                 DiffRouteMapPairImpl(config1, pair.name1, config2, pair.name2,
                                      task_warnings, tmpl, options);
             for (auto& d : diffs) {
               d.title += " (neighbor " + pair.neighbor.ToString() + ", " +
                          ToString(pair.direction) + ")";
             }
             return diffs;
           }});
    }
    for (const auto& pair : pairing.redistributions) {
      tasks.push_back(
          {DifferenceEntry::Kind::kRouteMapSemantic,
           [&config1, &config2, &options, pair,
            tmpl](std::vector<std::string>* task_warnings) {
             auto diffs =
                 DiffRouteMapPairImpl(config1, pair.name1, config2, pair.name2,
                                      task_warnings, tmpl, options);
             for (auto& d : diffs) {
               d.title += " (redistribution of " + ir::ToString(pair.from) +
                          " into " + ir::ToString(pair.via) + ")";
             }
             return diffs;
           }});
    }
  }
  if (options.check_acls) {
    for (const auto& pair : pairing.acls) {
      tasks.push_back(
          {DifferenceEntry::Kind::kAclSemantic,
           [&config1, &config2, &options, pair,
            tmpl](std::vector<std::string>*) {
             return DiffAclPairImpl(config1, config2, pair.name, tmpl,
                                    options);
           }});
    }
  }

  std::vector<std::vector<PresentedDifference>> task_results(tasks.size());
  std::vector<std::vector<std::string>> task_warnings(tasks.size());
  // Each task's spans are captured on whichever thread ran it and attached
  // back below in task-declaration order, so the trace tree — like the
  // report — is structurally identical at every thread count.
  std::vector<std::vector<obs::Span>> task_spans(tasks.size());
  util::RunParallel(options.num_threads, tasks.size(), [&](std::size_t i) {
    // Pool threads have no ambient scope of their own: route this task's
    // metrics into the run's sink (re-installing the same sink is a no-op
    // when the task runs inline on the submitting thread).
    obs::MetricsScope task_metrics(*metrics_sink);
    obs::TaskCapture capture;
    task_results[i] = tasks[i].run(&task_warnings[i]);
    task_spans[i] = capture.Finish();
  });
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    obs::AttachSpans(std::move(task_spans[i]));
    add_semantic(tasks[i].kind, std::move(task_results[i]));
    warnings.insert(warnings.end(),
                    std::make_move_iterator(task_warnings[i].begin()),
                    std::make_move_iterator(task_warnings[i].end()));
  }
  auto structural_check = [&](bool enabled, const char* detail,
                              const std::function<
                                  std::vector<StructuralDifference>()>& run) {
    if (!enabled) return;
    obs::ScopedSpan span("structural", detail);
    std::vector<StructuralDifference> diffs = run();
    span.AddAttr("differences", static_cast<double>(diffs.size()));
    obs::Count("diff.structural_differences",
               static_cast<double>(diffs.size()));
    add_structural(std::move(diffs));
  };
  structural_check(options.check_static_routes, "static",
                   [&] { return DiffStaticRoutes(config1, config2); });
  structural_check(options.check_connected_routes, "connected",
                   [&] { return DiffConnectedRoutes(config1, config2); });
  structural_check(options.check_ospf, "ospf", [&] {
    return DiffOspf(config1, config2, pairing.interfaces);
  });
  structural_check(options.check_bgp_properties, "bgp",
                   [&] { return DiffBgpProperties(config1, config2); });
  structural_check(options.check_admin_distances, "admin",
                   [&] { return DiffAdminDistances(config1, config2); });

  for (const auto& note : pairing.unmatched) {
    DifferenceEntry entry;
    entry.kind = DifferenceEntry::Kind::kUnmatched;
    entry.title = "Unmatched component";
    entry.rendered = note + "\n";
    report.entries.push_back(std::move(entry));
  }
  for (const auto& warning : warnings) {
    DifferenceEntry entry;
    entry.kind = DifferenceEntry::Kind::kWarning;
    entry.title = "Warning";
    entry.rendered = warning + "\n";
    report.entries.push_back(std::move(entry));
  }
  obs::RecordSpanMemory(pipeline_span);
  return report;
}

}  // namespace campion::core
