#include "core/match_policies.h"

#include <map>
#include <set>

namespace campion::core {

std::string ToString(PolicyDirection direction) {
  return direction == PolicyDirection::kImport ? "import" : "export";
}

namespace {

void MatchBgpNeighbors(const ir::RouterConfig& config1,
                       const ir::RouterConfig& config2,
                       PolicyPairing& pairing) {
  if (!config1.bgp || !config2.bgp) return;
  std::map<util::Ipv4Address, const ir::BgpNeighbor*> n1, n2;
  for (const auto& n : config1.bgp->neighbors) n1.emplace(n.ip, &n);
  for (const auto& n : config2.bgp->neighbors) n2.emplace(n.ip, &n);

  for (const auto& [ip, x1] : n1) {
    auto it = n2.find(ip);
    if (it == n2.end()) {
      pairing.unmatched.push_back("BGP neighbor " + ip.ToString() +
                                  " exists only in " + config1.hostname);
      continue;
    }
    const ir::BgpNeighbor* x2 = it->second;
    // Pair policies whenever either side has one (an absent policy is an
    // accept-everything map, which SemanticDiff handles uniformly).
    if (!x1->import_policy.empty() || !x2->import_policy.empty()) {
      pairing.route_maps.push_back({ip, PolicyDirection::kImport,
                                    x1->import_policy, x2->import_policy});
    }
    if (!x1->export_policy.empty() || !x2->export_policy.empty()) {
      pairing.route_maps.push_back({ip, PolicyDirection::kExport,
                                    x1->export_policy, x2->export_policy});
    }
  }
  for (const auto& [ip, x2] : n2) {
    if (!n1.contains(ip)) {
      pairing.unmatched.push_back("BGP neighbor " + ip.ToString() +
                                  " exists only in " + config2.hostname);
    }
  }
}

void MatchAcls(const ir::RouterConfig& config1,
               const ir::RouterConfig& config2, PolicyPairing& pairing) {
  for (const auto& [name, acl] : config1.acls) {
    if (auto it = config2.acls.find(name); it != config2.acls.end()) {
      if (acl.family != it->second.family) {
        pairing.unmatched.push_back(
            "ACL " + name + " is " +
            (acl.family == util::AddressFamily::kIpv4 ? "IPv4" : "IPv6") +
            " in " + config1.hostname + " but " +
            (it->second.family == util::AddressFamily::kIpv4 ? "IPv4"
                                                             : "IPv6") +
            " in " + config2.hostname + "; not compared");
        continue;
      }
      pairing.acls.push_back({name});
    } else {
      pairing.unmatched.push_back("ACL " + name + " exists only in " +
                                  config1.hostname);
    }
  }
  for (const auto& [name, acl] : config2.acls) {
    if (!config1.acls.contains(name)) {
      pairing.unmatched.push_back("ACL " + name + " exists only in " +
                                  config2.hostname);
    }
  }
}

void MatchRedistributions(const ir::RouterConfig& config1,
                          const ir::RouterConfig& config2,
                          PolicyPairing& pairing) {
  auto match_process = [&](ir::Protocol via,
                           const std::vector<ir::Redistribution>& r1,
                           const std::vector<ir::Redistribution>& r2) {
    std::map<ir::Protocol, const ir::Redistribution*> m1, m2;
    for (const auto& r : r1) m1.emplace(r.from, &r);
    for (const auto& r : r2) m2.emplace(r.from, &r);
    for (const auto& [from, x1] : m1) {
      auto it = m2.find(from);
      // Presence mismatches are reported by StructuralDiff; here we only
      // pair the policies of redistributions both sides configure.
      if (it == m2.end()) continue;
      if (!x1->route_map.empty() || !it->second->route_map.empty()) {
        pairing.redistributions.push_back(
            {via, from, x1->route_map, it->second->route_map});
      }
    }
  };
  if (config1.ospf && config2.ospf) {
    match_process(ir::Protocol::kOspf, config1.ospf->redistributions,
                  config2.ospf->redistributions);
  }
  if (config1.bgp && config2.bgp) {
    match_process(ir::Protocol::kBgp, config1.bgp->redistributions,
                  config2.bgp->redistributions);
  }
}

void MatchInterfaces(const ir::RouterConfig& config1,
                     const ir::RouterConfig& config2,
                     PolicyPairing& pairing) {
  std::set<std::string> used2;
  // Pass 1: identical names.
  for (const auto& i1 : config1.interfaces) {
    if (config2.FindInterface(i1.name) != nullptr) {
      pairing.interfaces.emplace_back(i1.name, i1.name);
      used2.insert(i1.name);
    }
  }
  // Pass 2: shared subnet (backup routers sit on the same subnets with
  // different host addresses).
  for (const auto& i1 : config1.interfaces) {
    if (config2.FindInterface(i1.name) != nullptr) continue;
    auto subnet1 = i1.ConnectedSubnet();
    if (!subnet1) continue;
    bool matched = false;
    for (const auto& i2 : config2.interfaces) {
      if (used2.contains(i2.name)) continue;
      auto subnet2 = i2.ConnectedSubnet();
      if (subnet2 && *subnet1 == *subnet2) {
        pairing.interfaces.emplace_back(i1.name, i2.name);
        used2.insert(i2.name);
        matched = true;
        break;
      }
    }
    if (!matched) {
      pairing.unmatched.push_back("interface " + i1.name +
                                  " exists only in " + config1.hostname);
    }
  }
  for (const auto& i2 : config2.interfaces) {
    if (config1.FindInterface(i2.name) != nullptr || used2.contains(i2.name)) {
      continue;
    }
    pairing.unmatched.push_back("interface " + i2.name + " exists only in " +
                                config2.hostname);
  }
}

}  // namespace

PolicyPairing MatchPolicies(const ir::RouterConfig& config1,
                            const ir::RouterConfig& config2) {
  PolicyPairing pairing;
  MatchBgpNeighbors(config1, config2, pairing);
  MatchAcls(config1, config2, pairing);
  MatchRedistributions(config1, config2, pairing);
  MatchInterfaces(config1, config2, pairing);
  return pairing;
}

}  // namespace campion::core
