#include "core/header_localize.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace campion::core {
namespace {

// GetMatch's intermediate result: a range minus nested terms.
struct MatchTerm {
  util::PrefixRange range;
  std::vector<MatchTerm> subtracted;
};

class Localizer {
 public:
  Localizer(bdd::BddManager& mgr, const PrefixRangeDag& dag,
            const RangeToBdd& range_to_bdd)
      : mgr_(mgr), dag_(dag) {
    node_bdds_.reserve(dag.size());
    for (std::size_t n = 0; n < dag.size(); ++n) {
      node_bdds_.push_back(range_to_bdd(dag.label(n)));
    }
  }

  // The GetMatch recursion of §3.2.
  std::vector<MatchTerm> GetMatch(bdd::BddRef set, std::size_t node) {
    bdd::BddRef node_bdd = node_bdds_[node];
    // Short-circuits (these also keep the output minimal): a node disjoint
    // from S contributes nothing; a node fully inside S is itself a term.
    if (!mgr_.Intersects(node_bdd, set)) return {};
    if (mgr_.Subset(node_bdd, set)) return {{dag_.label(node), {}}};

    if (dag_.IsLeaf(node)) {
      // By construction (S built from the DAG's ranges) a leaf is contained
      // in S or disjoint from it; both cases were handled above. If S used a
      // range we were not given, fall back to reporting the overlap.
      return {{dag_.label(node), {}}};
    }

    if (mgr_.Subset(Remainder(node), set)) {
      // R's remainder is in S: include R, minus the child parts not in S.
      MatchTerm term{dag_.label(node), {}};
      for (std::size_t child : dag_.children(node)) {
        auto nonmatches = GetMatch(mgr_.Not(set), child);
        term.subtracted.insert(term.subtracted.end(), nonmatches.begin(),
                               nonmatches.end());
      }
      return {std::move(term)};
    }
    // Otherwise recurse and union the children's results.
    std::vector<MatchTerm> result;
    for (std::size_t child : dag_.children(node)) {
      auto sub = GetMatch(set, child);
      result.insert(result.end(), sub.begin(), sub.end());
    }
    return result;
  }

 private:
  // The remainder set of an internal node: its range minus its children.
  bdd::BddRef Remainder(std::size_t node) {
    constexpr bdd::BddRef kUncomputed = ~bdd::BddRef{0};
    if (remainders_.empty()) remainders_.assign(dag_.size(), kUncomputed);
    if (remainders_[node] != kUncomputed) return remainders_[node];
    bdd::BddRef rem = node_bdds_[node];
    for (std::size_t child : dag_.children(node)) {
      rem = mgr_.Diff(rem, node_bdds_[child]);
    }
    remainders_[node] = rem;
    return rem;
  }

  bdd::BddManager& mgr_;
  const PrefixRangeDag& dag_;
  std::vector<bdd::BddRef> node_bdds_;
  std::vector<bdd::BddRef> remainders_;
};

// Removes nested differences: R − (X − Y) becomes {R − X, Y} (Y ⊆ X ⊆ R and
// Y ⊆ S make this sound). One pass over the term tree, as in the paper.
void FlattenInto(const MatchTerm& term,
                 std::vector<util::PrefixRangeTerm>& out) {
  util::PrefixRangeTerm flat{term.range, {}};
  for (const auto& sub : term.subtracted) {
    flat.exclude.push_back(sub.range);
  }
  std::sort(flat.exclude.begin(), flat.exclude.end());
  out.push_back(std::move(flat));
  for (const auto& sub : term.subtracted) {
    for (const auto& nested : sub.subtracted) {
      FlattenInto(nested, out);
    }
  }
}

}  // namespace

std::vector<util::PrefixRange> HeaderLocalizeResult::IncludedRanges() const {
  std::set<util::PrefixRange> seen;
  std::vector<util::PrefixRange> out;
  for (const auto& term : terms) {
    if (seen.insert(term.include).second) out.push_back(term.include);
  }
  return out;
}

std::vector<util::PrefixRange> HeaderLocalizeResult::ExcludedRanges() const {
  std::set<util::PrefixRange> seen;
  std::vector<util::PrefixRange> out;
  for (const auto& term : terms) {
    for (const auto& x : term.exclude) {
      if (seen.insert(x).second) out.push_back(x);
    }
  }
  return out;
}

std::string HeaderLocalizeResult::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += "\n";
    out += terms[i].ToString();
  }
  return out;
}

HeaderLocalizeResult HeaderLocalize(bdd::BddManager& mgr, bdd::BddRef set,
                                    std::vector<util::PrefixRange> ranges,
                                    const RangeToBdd& range_to_bdd,
                                    util::PrefixRange universe) {
  obs::ScopedSpan span("header_localize");
  span.AddAttr("ranges", static_cast<double>(ranges.size()));
  PrefixRangeDag dag(std::move(ranges), universe);
  Localizer localizer(mgr, dag, range_to_bdd);
  // Work within the universe: S may be a complement reaching outside it.
  bdd::BddRef clipped = mgr.And(set, range_to_bdd(dag.label(dag.root())));
  HeaderLocalizeResult result;
  obs::Count("localize.calls");
  if (clipped == bdd::kFalse) return result;
  for (const auto& term : localizer.GetMatch(clipped, dag.root())) {
    FlattenInto(term, result.terms);
  }
  span.AddAttr("dag_nodes", static_cast<double>(dag.size()));
  span.AddAttr("terms", static_cast<double>(result.terms.size()));
  obs::Count("localize.terms", static_cast<double>(result.terms.size()));
  return result;
}

}  // namespace campion::core
