#include "obs/trace.h"

#include <atomic>
#include <chrono>

namespace campion::obs {
namespace {

std::atomic<bool> g_enabled{false};

// Per-thread span state. `open` is the stack of spans currently being
// recorded (innermost last); `roots` holds spans that finished with no
// enclosing span. Both are plain vectors — spans nest strictly, so no
// other bookkeeping is needed, and nothing here is shared across threads.
struct ThreadTrace {
  std::vector<Span> open;
  std::vector<Span> roots;
};

ThreadTrace& Tls() {
  thread_local ThreadTrace trace;
  return trace;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point anchor = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           anchor)
          .count());
}

ScopedSpan::ScopedSpan(const char* name, std::string detail) {
  if (!Enabled()) return;
  ThreadTrace& trace = Tls();
  depth_ = trace.open.size();
  Span span;
  span.name = name;
  span.detail = std::move(detail);
  span.start_ns = NowNs();
  trace.open.push_back(std::move(span));
  active_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  ThreadTrace& trace = Tls();
  Span span = std::move(trace.open.back());
  trace.open.pop_back();
  span.duration_ns = NowNs() - span.start_ns;
  if (trace.open.empty()) {
    trace.roots.push_back(std::move(span));
  } else {
    trace.open.back().children.push_back(std::move(span));
  }
}

void ScopedSpan::AddAttr(const char* key, double value) {
  if (!active_) return;
  Tls().open[depth_].attrs.emplace_back(key, value);
}

TaskCapture::TaskCapture() : mark_(Tls().roots.size()) {}

std::vector<Span> TaskCapture::Finish() {
  ThreadTrace& trace = Tls();
  std::vector<Span> captured;
  if (trace.roots.size() > mark_) {
    captured.assign(std::make_move_iterator(trace.roots.begin() + mark_),
                    std::make_move_iterator(trace.roots.end()));
    trace.roots.resize(mark_);
  }
  return captured;
}

void AttachSpans(std::vector<Span> spans) {
  if (spans.empty()) return;
  ThreadTrace& trace = Tls();
  std::vector<Span>& sink =
      trace.open.empty() ? trace.roots : trace.open.back().children;
  for (Span& span : spans) sink.push_back(std::move(span));
}

std::vector<Span> TakeThreadSpans() {
  std::vector<Span> roots = std::move(Tls().roots);
  Tls().roots.clear();
  return roots;
}

void ResetThreadTrace() {
  Tls().open.clear();
  Tls().roots.clear();
}

}  // namespace campion::obs
