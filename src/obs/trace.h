#pragma once

// Tracing for the differencing pipeline: scoped phase spans with
// monotonic-clock timings, buffered per thread and assembled into one
// deterministic tree.
//
// Design constraints (see docs/trace_format.md and DESIGN.md):
//   * Zero overhead when disabled. Tracing is off by default; every entry
//     point checks one relaxed atomic load and touches nothing else, so
//     instrumented library code is safe to leave in hot paths.
//   * Per-thread buffering. Spans are recorded into thread-local storage
//     with no locking. Worker-pool tasks capture their subtrees with
//     TaskCapture and the caller re-attaches them in task-declaration
//     order (AttachSpan), so the assembled tree has the same structure at
//     every `--threads` value — only the timing values differ.
//   * Spans nest strictly (RAII), so the open-span state per thread is a
//     simple stack.
//
// Typical instrumentation:
//
//   void Parse(...) {
//     obs::ScopedSpan span("parse", filename);
//     ...
//     span.AddAttr("lines", line_count);
//   }
//
// and, around pooled per-pair work (the merge pattern ConfigDiff uses):
//
//   RunParallel(threads, n, [&](size_t i) {
//     obs::TaskCapture capture;
//     task_spans[i] = ...;       // work records spans as usual
//     captured[i] = capture.Finish();
//   });
//   for (i in declaration order) obs::AttachSpans(std::move(captured[i]));

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace campion::obs {

// One recorded phase: a stable name (see docs/trace_format.md for the
// vocabulary), an optional free-form detail label, monotonic timing, flat
// numeric attributes, and nested child spans.
struct Span {
  std::string name;
  std::string detail;
  std::uint64_t start_ns = 0;     // Monotonic, relative to process start.
  std::uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, double>> attrs;
  std::vector<Span> children;
};

// Process-wide tracing switch (off by default). Reading is one relaxed
// atomic load; enabling mid-span is safe (a span only records if tracing
// was enabled when it opened).
bool Enabled();
void SetEnabled(bool enabled);

// Nanoseconds on the monotonic clock, relative to a process-start anchor.
std::uint64_t NowNs();

// RAII span. When tracing is enabled at construction, opens a span on the
// calling thread; the destructor closes it and attaches it to the
// enclosing open span, or to the thread's finished-root list if none is
// open. `name` must outlive the scope (string literals in practice).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::string detail = "");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Records a numeric attribute on this span. No-op when inactive.
  void AddAttr(const char* key, double value);

 private:
  bool active_ = false;
  std::size_t depth_ = 0;  // Index of this span in the thread's open stack.
};

// Captures the top-level spans a pool task records, so the caller can move
// them back into the main tree in a deterministic order. Construct at task
// start (no span may be open on the task's thread above it); Finish()
// returns every span finished at top level since construction and removes
// them from the thread's root list. When the task actually ran inline on
// the submitting thread (serial mode), its spans attached to the open
// parent directly and Finish() returns nothing — attaching the (empty)
// result keeps both modes structurally identical.
class TaskCapture {
 public:
  TaskCapture();
  std::vector<Span> Finish();

  TaskCapture(const TaskCapture&) = delete;
  TaskCapture& operator=(const TaskCapture&) = delete;

 private:
  std::size_t mark_ = 0;  // Thread root-list size at construction.
};

// Appends already-finished spans under the calling thread's innermost open
// span (or to its root list). Used to merge TaskCapture results back in
// task-declaration order.
void AttachSpans(std::vector<Span> spans);

// Returns and clears the finished top-level spans of the calling thread.
// The CLI calls this once at exit to serialize the trace.
std::vector<Span> TakeThreadSpans();

// Clears the calling thread's span buffers (open stack included). Tests
// and long-lived embedders call this between traced runs.
void ResetThreadTrace();

}  // namespace campion::obs
