#pragma once

// Records process resident-set samples (util::SampleProcessMemory) as
// span attributes on the big pipeline phases and as mem.* watermarks in
// the metrics registry. Header-only, like obs/bdd_metrics.h.
//
// RSS depends on allocator and scheduler state, so — unlike the BDD byte
// accounting — these values legitimately vary run to run and across
// thread counts. docs/trace_format.md documents them as non-deterministic;
// determinism checks must exclude the mem.* keys and rss attrs. On
// platforms without /proc/self/status the sampler reports zeros and
// nothing is recorded.

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rss.h"

namespace campion::obs {

// Samples RSS once and records it on `span` (attrs `rss_bytes`,
// `peak_rss_bytes`) and in the registry (watermarks `mem.rss_bytes`,
// `mem.peak_rss_bytes`). Call at the end of a big phase; sampling reads
// /proc, so this is not for hot loops. No-op while tracing is disabled.
inline void RecordSpanMemory(ScopedSpan& span) {
  if (!Enabled()) return;
  util::MemorySample sample = util::SampleProcessMemory();
  if (!sample.Available()) return;
  span.AddAttr("rss_bytes", static_cast<double>(sample.rss_bytes));
  span.AddAttr("peak_rss_bytes", static_cast<double>(sample.peak_rss_bytes));
  MaxGauge("mem.rss_bytes", static_cast<double>(sample.rss_bytes));
  MaxGauge("mem.peak_rss_bytes",
           static_cast<double>(sample.peak_rss_bytes));
}

}  // namespace campion::obs
