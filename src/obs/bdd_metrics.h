#pragma once

// Exports a BddManager's kernel counters (bdd::BddStats) into the calling
// thread's current metrics sink (obs::CurrentMetrics() — the request's
// capture in the daemon, the process sink in the one-shot CLI). Each
// differencing task owns its own manager; calling this once
// when the task finishes accumulates the kernel's work across every pair
// of the run, so `--trace_out` / `--stats` can report unique-table and
// ITE-cache behavior for the whole pipeline. Header-only so obs does not
// link against the BDD library.

#include "bdd/bdd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace campion::obs {

inline void RecordBddStats(const bdd::BddStats& stats) {
  if (!Enabled()) return;
  MetricsSink& registry = CurrentMetrics();
  registry.Add("bdd.managers", 1.0);
  registry.Add("bdd.arena_nodes", static_cast<double>(stats.arena_size));
  registry.Add("bdd.unique_lookups",
               static_cast<double>(stats.unique_lookups));
  registry.Add("bdd.unique_probes", static_cast<double>(stats.unique_probes));
  registry.Add("bdd.unique_hits", static_cast<double>(stats.unique_hits));
  registry.Add("bdd.cache_lookups", static_cast<double>(stats.cache_lookups));
  registry.Add("bdd.cache_hits", static_cast<double>(stats.cache_hits));
  registry.Max("bdd.unique_table_peak_slots",
               static_cast<double>(stats.unique_capacity));
  registry.Max("bdd.cache_peak_slots",
               static_cast<double>(stats.cache_capacity));
  registry.Max("bdd.arena_peak_nodes", static_cast<double>(stats.arena_size));
  // Sifting tallies are zero (and the metrics therefore absent from the
  // report) unless a reorder ran in this manager — keeps reorder-off traces
  // byte-identical to pre-reorder builds.
  if (stats.sift_passes > 0) {
    registry.Add("bdd.sift_passes", static_cast<double>(stats.sift_passes));
    registry.Add("bdd.sift_swaps", static_cast<double>(stats.sift_swaps));
    registry.Add("bdd.sift_nodes_before",
                 static_cast<double>(stats.sift_nodes_before));
    registry.Add("bdd.sift_nodes_after",
                 static_cast<double>(stats.sift_nodes_after));
  }
  // Same contract for the collector: absent unless a GC actually ran in
  // this manager, so one-shot CLI traces stay byte-identical.
  if (stats.gc_runs > 0) {
    registry.Add("bdd.gc_runs", static_cast<double>(stats.gc_runs));
    registry.Add("bdd.gc_reclaimed_nodes",
                 static_cast<double>(stats.gc_reclaimed));
    registry.Add("bdd.gc_compacted_bytes",
                 static_cast<double>(stats.gc_compacted_bytes));
  }
}

// Exports a manager's memory accounting (bdd::BddMemoryStats). Counters
// (`bdd.mem_bytes`, `bdd.rehashes`) accumulate across managers so the run
// total reflects every arena the pipeline allocated; watermarks
// (`bdd.mem_peak_*`) keep the largest single manager. All fields derive
// from container capacities, so — unlike the RSS samples — they are
// deterministic for a deterministic workload at any thread count.
inline void RecordBddMemory(const bdd::BddMemoryStats& mem) {
  if (!Enabled()) return;
  MetricsSink& registry = CurrentMetrics();
  registry.Add("bdd.mem_bytes", static_cast<double>(mem.total_bytes));
  registry.Add("bdd.rehashes", static_cast<double>(mem.rehash_count));
  registry.Max("bdd.mem_peak_bytes", static_cast<double>(mem.total_bytes));
  registry.Max("bdd.mem_peak_node_arena_bytes",
               static_cast<double>(mem.node_arena_bytes));
  registry.Max("bdd.mem_peak_unique_table_bytes",
               static_cast<double>(mem.unique_table_bytes));
  registry.Max("bdd.mem_peak_ite_cache_bytes",
               static_cast<double>(mem.ite_cache_bytes));
  registry.Max("bdd.peak_live_nodes",
               static_cast<double>(mem.peak_live_nodes));
  registry.Max("bdd.unique_load_factor", mem.unique_load_factor);
}

}  // namespace campion::obs
