#pragma once

// Rendering of collected traces: the machine-readable JSON document behind
// `--trace_out` (schema in docs/trace_format.md), the human-readable
// summary tables behind `--stats`, and the per-phase aggregations the
// bench binaries record into BENCH_*.json.

#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace campion::obs {

// Serializes the span forest plus a metrics snapshot as the versioned JSON
// document documented in docs/trace_format.md.
std::string TraceToJson(
    const std::vector<Span>& roots,
    const std::vector<std::pair<std::string, double>>& metrics);

// Serializes the same forest as Chrome Trace Event JSON (complete "X"
// events, microsecond timestamps) loadable in Perfetto or chrome://tracing.
// Spans from the per-pair worker tasks ("route_map_pair" / "acl_pair", and
// everything nested under them) are laid out on synthetic tids numbered in
// pair-declaration order, so two traces of the same comparison get the
// same visual layout at any `--threads` value; all other spans render on
// tid 0 ("main"). Events are sorted by timestamp. The metrics snapshot
// rides along under "otherData". docs/trace_format.md documents the
// mapping.
std::string TraceToChromeJson(
    const std::vector<Span>& roots,
    const std::vector<std::pair<std::string, double>>& metrics);

// Totals aggregated per span name across the whole forest, every depth
// included, in first-appearance order (deterministic for a deterministic
// tree).
struct PhaseTotal {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // Sum of span durations.
  std::uint64_t self_ns = 0;   // Durations minus direct children's.
};
std::vector<PhaseTotal> PhaseTotals(const std::vector<Span>& roots);

// The `--stats` summary: a phase-timing table and a metrics table
// (rendered with util::TextTable), plus derived BDD rates when the
// underlying counters are present.
std::string RenderStatsSummary(
    const std::vector<Span>& roots,
    const std::vector<std::pair<std::string, double>>& metrics);

// Structure-only view of the forest (names, details, nesting — no timings
// or attrs): one span per line, two-space indentation per level. This is
// the part of a trace that is guaranteed byte-identical across
// `--threads` values; the determinism tests compare it.
std::string TraceStructure(const std::vector<Span>& roots);

}  // namespace campion::obs
