#include "obs/histogram.h"

#include <cmath>

namespace campion::obs {

namespace {

// Index of the highest set bit (ns > 0).
inline int HighBit(std::uint64_t ns) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(ns);
#else
  int bit = 0;
  while (ns >>= 1) ++bit;
  return bit;
#endif
}

// The last index whose bounds fit in 64 bits: octave 62, sub 3. Anything
// above would need a lower bound of at least 2^64.
constexpr int kTopIndex =
    (62 << LatencyHistogram::kSubBucketBits) | (LatencyHistogram::kSubBuckets - 1);

}  // namespace

int LatencyHistogram::BucketIndex(std::uint64_t ns) {
  if (ns < kSubBuckets) return static_cast<int>(ns);
  const int e = HighBit(ns);
  const int sub =
      static_cast<int>((ns >> (e - kSubBucketBits)) & (kSubBuckets - 1));
  return ((e - kSubBucketBits + 1) << kSubBucketBits) | sub;
}

std::uint64_t LatencyHistogram::BucketLowerNs(int index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  if (index > kTopIndex) return ~0ull;
  const int octave = index >> kSubBucketBits;
  const int sub = index & (kSubBuckets - 1);
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (octave - 1);
}

std::uint64_t LatencyHistogram::BucketUpperNs(int index) {
  if (index >= kTopIndex) return ~0ull;
  return BucketLowerNs(index + 1);
}

void LatencyHistogram::Record(std::uint64_t ns) {
  counts_[static_cast<std::size_t>(BucketIndex(ns))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (int i = 0; i < kBucketCount; ++i) {
    snapshot.counts[static_cast<std::size_t>(i)] =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return snapshot;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    counts[static_cast<std::size_t>(i)] +=
        other.counts[static_cast<std::size_t>(i)];
  }
  count += other.count;
  sum_ns += other.sum_ns;
}

std::uint64_t HistogramSnapshot::QuantileNs(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The rank-th smallest observation, 1-based; q = 0 means the minimum.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += counts[static_cast<std::size_t>(i)];
    if (cumulative >= rank) {
      // Inclusive upper bound of the bucket: for the exact buckets 0..3
      // this IS the recorded value; beyond, it overestimates by less than
      // one bucket width.
      const std::uint64_t upper = LatencyHistogram::BucketUpperNs(i);
      return upper == ~0ull ? upper : upper - 1;
    }
  }
  return 0;  // Unreachable: cumulative == count covers rank <= count.
}

}  // namespace campion::obs
