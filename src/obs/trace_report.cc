#include "obs/trace_report.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "util/json.h"
#include "util/text_table.h"

namespace campion::obs {
namespace {

std::string Quoted(const std::string& text) {
  return "\"" + util::JsonEscape(text) + "\"";
}

void SpanToJson(const Span& span, int indent, std::string& out) {
  std::string pad(static_cast<std::size_t>(indent), ' ');
  out += pad + "{\n";
  out += pad + "  \"name\": " + Quoted(span.name) + ",\n";
  if (!span.detail.empty()) {
    out += pad + "  \"detail\": " + Quoted(span.detail) + ",\n";
  }
  out += pad + "  \"start_ns\": " + std::to_string(span.start_ns) + ",\n";
  out += pad + "  \"duration_ns\": " + std::to_string(span.duration_ns) +
         ",\n";
  if (!span.attrs.empty()) {
    out += pad + "  \"attrs\": {";
    for (std::size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) out += ", ";
      out += Quoted(span.attrs[i].first) + ": " +
             util::JsonNumber(span.attrs[i].second);
    }
    out += "},\n";
  }
  out += pad + "  \"children\": [";
  for (std::size_t i = 0; i < span.children.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    SpanToJson(span.children[i], indent + 4, out);
  }
  out += span.children.empty() ? "]\n" : "\n" + pad + "  ]\n";
  out += pad + "}";
}

void AccumulatePhases(const Span& span, std::vector<PhaseTotal>& totals) {
  PhaseTotal* total = nullptr;
  for (auto& existing : totals) {
    if (existing.name == span.name) {
      total = &existing;
      break;
    }
  }
  if (total == nullptr) {
    totals.push_back({span.name, 0, 0, 0});
    total = &totals.back();
  }
  std::uint64_t child_ns = 0;
  for (const Span& child : span.children) child_ns += child.duration_ns;
  total->count += 1;
  total->total_ns += span.duration_ns;
  total->self_ns +=
      span.duration_ns > child_ns ? span.duration_ns - child_ns : 0;
  for (const Span& child : span.children) AccumulatePhases(child, totals);
}

std::string Milliseconds(std::uint64_t ns) {
  char buffer[32];
  snprintf(buffer, sizeof(buffer), "%.3f", static_cast<double>(ns) / 1e6);
  return buffer;
}

std::string MetricValue(double value) { return util::JsonNumber(value); }

// Looks up a metric by name; returns 0 when absent.
double Metric(const std::vector<std::pair<std::string, double>>& metrics,
              const std::string& name) {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// Chrome Trace Event export.

// Span names that mark the root of one pooled per-pair task. Each gets its
// own synthetic thread lane, numbered in pair-declaration order — the
// declaration order is what the deterministic tree preserves, so the lane
// assignment is identical at any actual thread count.
bool IsWorkerSpanName(const std::string& name) {
  return name == "route_map_pair" || name == "acl_pair";
}

struct ChromeEvent {
  const Span* span;
  int tid;
};

// Pre-order walk assigning lanes: worker task roots open a fresh lane,
// their subtrees inherit it, everything else stays on the caller's lane.
void CollectChromeEvents(const Span& span, int tid, int& next_worker_tid,
                         std::vector<ChromeEvent>& events) {
  if (IsWorkerSpanName(span.name)) tid = next_worker_tid++;
  events.push_back({&span, tid});
  for (const Span& child : span.children) {
    CollectChromeEvents(child, tid, next_worker_tid, events);
  }
}

std::string Microseconds(std::uint64_t ns) {
  char buffer[40];
  snprintf(buffer, sizeof(buffer), "%.3f", static_cast<double>(ns) / 1e3);
  return buffer;
}

void AppendChromeMetadata(int tid, const std::string& thread_name,
                          std::string& out) {
  out += "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": " +
         std::to_string(tid) + ", \"args\": {\"name\": " + Quoted(thread_name) +
         "}},\n";
}

void StructureLines(const Span& span, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += span.name;
  if (!span.detail.empty()) out += " [" + span.detail + "]";
  out += "\n";
  for (const Span& child : span.children) {
    StructureLines(child, depth + 1, out);
  }
}

}  // namespace

std::string TraceToJson(
    const std::vector<Span>& roots,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::string out = "{\n";
  out += "  \"campion_trace_version\": 1,\n";
  out += "  \"spans\": [";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    SpanToJson(roots[i], 4, out);
  }
  out += roots.empty() ? "],\n" : "\n  ],\n";
  out += "  \"metrics\": {";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + Quoted(metrics[i].first) + ": " +
           util::JsonNumber(metrics[i].second);
  }
  out += metrics.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string TraceToChromeJson(
    const std::vector<Span>& roots,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::vector<ChromeEvent> events;
  int next_worker_tid = 1;  // 0 is the main lane.
  for (const Span& root : roots) {
    CollectChromeEvents(root, 0, next_worker_tid, events);
  }
  // Viewers expect events in timestamp order; under the pool, sibling
  // spans can finish out of start order. stable_sort keeps the pre-order
  // (parent before child) for equal timestamps.
  std::stable_sort(events.begin(), events.end(),
                   [](const ChromeEvent& a, const ChromeEvent& b) {
                     return a.span->start_ns < b.span->start_ns;
                   });

  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"traceEvents\": [\n";
  out += "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": 0, \"args\": {\"name\": \"campion\"}},\n";
  AppendChromeMetadata(0, "main", out);
  for (int tid = 1; tid < next_worker_tid; ++tid) {
    AppendChromeMetadata(tid, "pair-" + std::to_string(tid), out);
  }
  // The metadata lines above always end ",\n"; with no span events the
  // last comma would dangle before the closing bracket.
  if (events.empty()) out.erase(out.size() - 2, 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Span& span = *events[i].span;
    out += "    {\"name\": " + Quoted(span.name) +
           ", \"cat\": \"campion\", \"ph\": \"X\", \"ts\": " +
           Microseconds(span.start_ns) +
           ", \"dur\": " + Microseconds(span.duration_ns) +
           ", \"pid\": 1, \"tid\": " + std::to_string(events[i].tid);
    out += ", \"args\": {";
    bool first_arg = true;
    if (!span.detail.empty()) {
      out += "\"detail\": " + Quoted(span.detail);
      first_arg = false;
    }
    for (const auto& [key, value] : span.attrs) {
      if (!first_arg) out += ", ";
      out += Quoted(key) + ": " + util::JsonNumber(value);
      first_arg = false;
    }
    out += "}}";
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"otherData\": {";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + Quoted(metrics[i].first) + ": " +
           util::JsonNumber(metrics[i].second);
  }
  out += metrics.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::vector<PhaseTotal> PhaseTotals(const std::vector<Span>& roots) {
  std::vector<PhaseTotal> totals;
  for (const Span& root : roots) AccumulatePhases(root, totals);
  return totals;
}

std::string RenderStatsSummary(
    const std::vector<Span>& roots,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::string out = "Phase timings (wall clock, aggregated by span name):\n";
  util::TextTable phases({"Phase", "Count", "Total (ms)", "Self (ms)"});
  for (const PhaseTotal& total : PhaseTotals(roots)) {
    phases.AddRow({total.name, std::to_string(total.count),
                   Milliseconds(total.total_ns),
                   Milliseconds(total.self_ns)});
  }
  out += phases.Render();

  util::TextTable table({"Metric", "Value"});
  for (const auto& [name, value] : metrics) {
    table.AddRow({name, MetricValue(value)});
  }
  // Derived BDD rates, when the raw counters were collected.
  double cache_lookups = Metric(metrics, "bdd.cache_lookups");
  if (cache_lookups > 0) {
    char buffer[32];
    snprintf(buffer, sizeof(buffer), "%.4f",
             Metric(metrics, "bdd.cache_hits") / cache_lookups);
    table.AddRow({"bdd.cache_hit_rate (derived)", buffer});
  }
  double unique_lookups = Metric(metrics, "bdd.unique_lookups");
  if (unique_lookups > 0) {
    char buffer[32];
    snprintf(buffer, sizeof(buffer), "%.4f",
             Metric(metrics, "bdd.unique_hits") / unique_lookups);
    table.AddRow({"bdd.unique_hit_rate (derived)", buffer});
    snprintf(buffer, sizeof(buffer), "%.4f",
             Metric(metrics, "bdd.unique_probes") / unique_lookups);
    table.AddRow({"bdd.unique_avg_probe_len (derived)", buffer});
  }
  out += "\nMetrics (counters and watermarks):\n";
  out += table.Render();
  return out;
}

std::string TraceStructure(const std::vector<Span>& roots) {
  std::string out;
  for (const Span& root : roots) StructureLines(root, 0, out);
  return out;
}

}  // namespace campion::obs
