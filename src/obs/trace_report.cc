#include "obs/trace_report.h"

#include <cstdio>
#include <string>

#include "util/json.h"
#include "util/text_table.h"

namespace campion::obs {
namespace {

std::string Quoted(const std::string& text) {
  return "\"" + util::JsonEscape(text) + "\"";
}

void SpanToJson(const Span& span, int indent, std::string& out) {
  std::string pad(static_cast<std::size_t>(indent), ' ');
  out += pad + "{\n";
  out += pad + "  \"name\": " + Quoted(span.name) + ",\n";
  if (!span.detail.empty()) {
    out += pad + "  \"detail\": " + Quoted(span.detail) + ",\n";
  }
  out += pad + "  \"start_ns\": " + std::to_string(span.start_ns) + ",\n";
  out += pad + "  \"duration_ns\": " + std::to_string(span.duration_ns) +
         ",\n";
  if (!span.attrs.empty()) {
    out += pad + "  \"attrs\": {";
    for (std::size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) out += ", ";
      out += Quoted(span.attrs[i].first) + ": " +
             util::JsonNumber(span.attrs[i].second);
    }
    out += "},\n";
  }
  out += pad + "  \"children\": [";
  for (std::size_t i = 0; i < span.children.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    SpanToJson(span.children[i], indent + 4, out);
  }
  out += span.children.empty() ? "]\n" : "\n" + pad + "  ]\n";
  out += pad + "}";
}

void AccumulatePhases(const Span& span, std::vector<PhaseTotal>& totals) {
  PhaseTotal* total = nullptr;
  for (auto& existing : totals) {
    if (existing.name == span.name) {
      total = &existing;
      break;
    }
  }
  if (total == nullptr) {
    totals.push_back({span.name, 0, 0, 0});
    total = &totals.back();
  }
  std::uint64_t child_ns = 0;
  for (const Span& child : span.children) child_ns += child.duration_ns;
  total->count += 1;
  total->total_ns += span.duration_ns;
  total->self_ns +=
      span.duration_ns > child_ns ? span.duration_ns - child_ns : 0;
  for (const Span& child : span.children) AccumulatePhases(child, totals);
}

std::string Milliseconds(std::uint64_t ns) {
  char buffer[32];
  snprintf(buffer, sizeof(buffer), "%.3f", static_cast<double>(ns) / 1e6);
  return buffer;
}

std::string MetricValue(double value) { return util::JsonNumber(value); }

// Looks up a metric by name; returns 0 when absent.
double Metric(const std::vector<std::pair<std::string, double>>& metrics,
              const std::string& name) {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return 0.0;
}

void StructureLines(const Span& span, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += span.name;
  if (!span.detail.empty()) out += " [" + span.detail + "]";
  out += "\n";
  for (const Span& child : span.children) {
    StructureLines(child, depth + 1, out);
  }
}

}  // namespace

std::string TraceToJson(
    const std::vector<Span>& roots,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::string out = "{\n";
  out += "  \"campion_trace_version\": 1,\n";
  out += "  \"spans\": [";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    SpanToJson(roots[i], 4, out);
  }
  out += roots.empty() ? "],\n" : "\n  ],\n";
  out += "  \"metrics\": {";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + Quoted(metrics[i].first) + ": " +
           util::JsonNumber(metrics[i].second);
  }
  out += metrics.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::vector<PhaseTotal> PhaseTotals(const std::vector<Span>& roots) {
  std::vector<PhaseTotal> totals;
  for (const Span& root : roots) AccumulatePhases(root, totals);
  return totals;
}

std::string RenderStatsSummary(
    const std::vector<Span>& roots,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::string out = "Phase timings (wall clock, aggregated by span name):\n";
  util::TextTable phases({"Phase", "Count", "Total (ms)", "Self (ms)"});
  for (const PhaseTotal& total : PhaseTotals(roots)) {
    phases.AddRow({total.name, std::to_string(total.count),
                   Milliseconds(total.total_ns),
                   Milliseconds(total.self_ns)});
  }
  out += phases.Render();

  util::TextTable table({"Metric", "Value"});
  for (const auto& [name, value] : metrics) {
    table.AddRow({name, MetricValue(value)});
  }
  // Derived BDD rates, when the raw counters were collected.
  double cache_lookups = Metric(metrics, "bdd.cache_lookups");
  if (cache_lookups > 0) {
    char buffer[32];
    snprintf(buffer, sizeof(buffer), "%.4f",
             Metric(metrics, "bdd.cache_hits") / cache_lookups);
    table.AddRow({"bdd.cache_hit_rate (derived)", buffer});
  }
  double unique_lookups = Metric(metrics, "bdd.unique_lookups");
  if (unique_lookups > 0) {
    char buffer[32];
    snprintf(buffer, sizeof(buffer), "%.4f",
             Metric(metrics, "bdd.unique_hits") / unique_lookups);
    table.AddRow({"bdd.unique_hit_rate (derived)", buffer});
    snprintf(buffer, sizeof(buffer), "%.4f",
             Metric(metrics, "bdd.unique_probes") / unique_lookups);
    table.AddRow({"bdd.unique_avg_probe_len (derived)", buffer});
  }
  out += "\nMetrics (counters and watermarks):\n";
  out += table.Render();
  return out;
}

std::string TraceStructure(const std::vector<Span>& roots) {
  std::string out;
  for (const Span& root : roots) StructureLines(root, 0, out);
  return out;
}

}  // namespace campion::obs
