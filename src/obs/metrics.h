#pragma once

// Named numeric metrics, the companion to the span tree in obs/trace.h.
// Counters accumulate deltas and watermarks keep maxima — both are
// order-independent, so concurrent updates from the worker pool produce
// the same snapshot regardless of scheduling, keeping `--trace_out`
// deterministic in everything but the timing values.
//
// Capture is SCOPED, not process-global: a MetricsSink is a plain
// container, and every recording helper routes through the calling
// thread's *current* sink. The process keeps one default sink
// (ProcessMetrics()) for the one-shot CLI and the bench binaries; a
// long-lived embedder — the campion_serve daemon — instead installs a
// private per-request sink with MetricsScope, so two requests in flight
// on different connection threads record into disjoint arenas and never
// serialize on (or contaminate) shared state. ConfigDiff propagates the
// installing thread's sink into its worker-pool tasks (via
// DiffOptions::metrics_sink), so the capture is complete at any
// `--threads` value.
//
//   obs::MetricsSink sink;                // this request's arena
//   obs::MetricsScope scope(sink);        // install on this thread
//   ... run the pipeline ...
//   auto snapshot = sink.Snapshot();      // only THIS request's metrics
//
// Updates are coarse-grained by design: the BDD kernel keeps its own plain
// counters (bdd::BddStats) and exports them here once per differencing
// task (obs/bdd_metrics.h), parsers record once per file, and so on. A
// mutex-protected map is therefore plenty; nothing here sits on a hot
// path. As with spans, every entry point is a no-op while tracing is
// disabled.
//
// Counter naming: dotted lowercase paths, "<subsystem>.<counter>"
// (e.g. "bdd.cache_hits", "parse.lines"). docs/trace_format.md documents
// the stable vocabulary.

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace campion::obs {

// One metrics arena. The mutex covers concurrent updates from a request's
// *internal* worker pool; distinct sinks share nothing.
class MetricsSink {
 public:
  MetricsSink() = default;
  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  // Adds `delta` to the named counter (creating it at zero).
  void Add(const std::string& name, double delta);
  // Raises the named watermark to at least `value`.
  void Max(const std::string& name, double value);

  // All metrics, sorted by name.
  std::vector<std::pair<std::string, double>> Snapshot() const;

  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> values_;
};

// The process-default sink: what records when no MetricsScope is
// installed on the calling thread. The CLI and the bench binaries sample
// and reset it between runs; the daemon never touches it.
MetricsSink& ProcessMetrics();

// The calling thread's effective sink: the innermost installed
// MetricsScope's, falling back to ProcessMetrics().
MetricsSink& CurrentMetrics();

// RAII: installs `sink` as the calling thread's current sink, restoring
// the previous one (possibly another scope's) on destruction. Scopes
// nest; installation is thread-local, so concurrent scopes on different
// threads are fully independent.
class MetricsScope {
 public:
  explicit MetricsScope(MetricsSink& sink);
  ~MetricsScope();

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  MetricsSink* previous_;
};

// Convenience wrappers, gated on obs::Enabled(); they record into
// CurrentMetrics().
void Count(const std::string& name, double delta = 1.0);
void MaxGauge(const std::string& name, double value);

}  // namespace campion::obs
