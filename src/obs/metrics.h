#pragma once

// A process-wide registry of named numeric metrics, the companion to the
// span tree in obs/trace.h. Counters accumulate deltas and watermarks keep
// maxima — both are order-independent, so concurrent updates from the
// worker pool produce the same snapshot regardless of scheduling, keeping
// `--trace_out` deterministic in everything but the timing values.
//
// Updates are coarse-grained by design: the BDD kernel keeps its own plain
// counters (bdd::BddStats) and exports them here once per differencing
// task (obs/bdd_metrics.h), parsers record once per file, and so on. A
// mutex-protected map is therefore plenty; nothing here sits on a hot
// path. As with spans, every entry point is a no-op while tracing is
// disabled.
//
// Counter naming: dotted lowercase paths, "<subsystem>.<counter>"
// (e.g. "bdd.cache_hits", "parse.lines"). docs/trace_format.md documents
// the stable vocabulary.

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace campion::obs {

class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  // Adds `delta` to the named counter (creating it at zero).
  void Add(const std::string& name, double delta);
  // Raises the named watermark to at least `value`.
  void Max(const std::string& name, double value);

  // All metrics, sorted by name.
  std::vector<std::pair<std::string, double>> Snapshot() const;

  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, double> values_;
};

// Convenience wrappers, gated on obs::Enabled().
void Count(const std::string& name, double delta = 1.0);
void MaxGauge(const std::string& name, double value);

}  // namespace campion::obs
