#include "obs/metrics.h"

#include <algorithm>

#include "obs/trace.h"

namespace campion::obs {
namespace {

// The calling thread's installed sink; null = use ProcessMetrics().
thread_local MetricsSink* t_current_sink = nullptr;

}  // namespace

void MetricsSink::Add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  values_[name] += delta;
}

void MetricsSink::Max(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = values_.emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

std::vector<std::pair<std::string, double>> MetricsSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {values_.begin(), values_.end()};  // std::map is already name-sorted.
}

void MetricsSink::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
}

MetricsSink& ProcessMetrics() {
  static MetricsSink sink;
  return sink;
}

MetricsSink& CurrentMetrics() {
  return t_current_sink != nullptr ? *t_current_sink : ProcessMetrics();
}

MetricsScope::MetricsScope(MetricsSink& sink) : previous_(t_current_sink) {
  t_current_sink = &sink;
}

MetricsScope::~MetricsScope() { t_current_sink = previous_; }

void Count(const std::string& name, double delta) {
  if (!Enabled()) return;
  CurrentMetrics().Add(name, delta);
}

void MaxGauge(const std::string& name, double value) {
  if (!Enabled()) return;
  CurrentMetrics().Max(name, value);
}

}  // namespace campion::obs
